// stab_metrics_scrape — minimal scrape client for the MetricsEndpoint.
//
//   stab_metrics_scrape [--host H] [--retries N] [--jsonl] PORT
//
// Connects to the endpoint, issues GET /metrics (or /jsonl), prints the
// response body to stdout, and exits 0 on a 200 response. With --retries,
// connection refusals are retried with a short sleep — ci.sh starts the
// demo node in the background and scrapes as soon as the port is up.
//
// Deliberately dependency-free (raw sockets, no HTTP library): the tool is
// the reference consumer of the endpoint's line protocol and doubles as a
// smoke test that a stock HTTP client (curl) would see the same bytes.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace {

int dial(const char* host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    hostent* he = ::gethostbyname(host);
    if (he == nullptr || he->h_addrtype != AF_INET) {
      ::close(fd);
      return -1;
    }
    std::memcpy(&addr.sin_addr, he->h_addr, sizeof(addr.sin_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool scrape(const char* host, uint16_t port, const char* path,
            std::string* out) {
  int fd = dial(host, port);
  if (fd < 0) return false;
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string req = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) != ssize_t(req.size())) {
    ::close(fd);
    return false;
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    resp.append(buf, size_t(n));
  ::close(fd);
  if (resp.rfind("HTTP/1.0 200", 0) != 0 &&
      resp.rfind("HTTP/1.1 200", 0) != 0)
    return false;
  size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return false;
  *out = resp.substr(body + 4);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = "127.0.0.1";
  const char* path = "/metrics";
  int retries = 0;
  long port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jsonl") == 0) {
      path = "/jsonl";
    } else {
      port = std::strtol(argv[i], nullptr, 10);
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr,
                 "usage: stab_metrics_scrape [--host H] [--retries N] "
                 "[--jsonl] PORT\n");
    return 2;
  }
  std::string body;
  for (int attempt = 0;; ++attempt) {
    if (scrape(host, uint16_t(port), path, &body)) break;
    if (attempt >= retries) {
      std::fprintf(stderr, "stab_metrics_scrape: no response from %s:%ld%s\n",
                   host, port, path);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}
