// Fault-tolerance tests (paper §III-E): peer crash detection via the
// predicate-update (stall) timer, predicate adjustment, control-state
// snapshot/restore, and the full primary-restart flow combining the WAL
// store with Stabilizer recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "kv/wan_kv.hpp"
#include "net/sim_transport.hpp"

namespace stab {
namespace {

Topology mesh(size_t n, double lat_ms) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("r" + std::to_string(i), i < 2 ? "east" : "west");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

struct Fixture {
  explicit Fixture(Topology topo, StabilizerOptions base = {})
      : topo_(std::move(topo)) {
    cluster = std::make_unique<SimCluster>(topo_, sim);
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      StabilizerOptions opts = base;
      opts.topology = topo_;
      opts.self = n;
      nodes.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
    }
  }
  Stabilizer& node(NodeId n) { return *nodes.at(n); }

  Topology topo_;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
};

// --- peer stall detection -----------------------------------------------------

TEST(StallDetection, FiresOnceWhenPeerStopsAcking) {
  StabilizerOptions base;
  base.peer_stall_timeout = millis(100);
  Fixture f(mesh(3, 5), base);

  std::vector<NodeId> stalled;
  f.node(0).set_peer_stall_handler(
      [&](NodeId peer) { stalled.push_back(peer); });

  f.cluster->network().set_node_up(2, false);  // crash node 2
  f.node(0).send(to_bytes("x"));
  f.sim.run_until(seconds(2));
  // Node 2 never acks -> exactly one stall notification for it; node 1
  // acked normally and is never reported.
  EXPECT_EQ(stalled, (std::vector<NodeId>{2}));
}

TEST(StallDetection, NoFiringWhenAllHealthy) {
  StabilizerOptions base;
  base.peer_stall_timeout = millis(50);
  Fixture f(mesh(3, 5), base);
  int fired = 0;
  f.node(0).set_peer_stall_handler([&](NodeId) { ++fired; });
  for (int i = 0; i < 10; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run_until(seconds(2));
  EXPECT_EQ(fired, 0);
}

TEST(StallDetection, RefiresAfterRecoveryAndSecondCrash) {
  StabilizerOptions base;
  base.peer_stall_timeout = millis(100);
  base.retransmit_timeout = millis(100);  // so the peer catches up on heal
  Fixture f(mesh(2, 5), base);
  std::vector<double> stall_times;
  f.node(0).set_peer_stall_handler(
      [&](NodeId) { stall_times.push_back(to_sec(f.sim.now())); });

  f.cluster->network().set_node_up(1, false);
  f.node(0).send(to_bytes("a"));
  f.sim.run_until(seconds(1));
  ASSERT_EQ(stall_times.size(), 1u);

  f.cluster->network().set_node_up(1, true);  // heal: retransmission catches up
  f.sim.run_until(seconds(2));
  f.cluster->network().set_node_up(1, false);  // crash again
  f.node(0).send(to_bytes("b"));
  f.sim.run_until(seconds(3));
  EXPECT_EQ(stall_times.size(), 2u);  // a new stall episode re-fires
}

TEST(StallDetection, RecoveredHandlerClosesEpisodesExactlyOnce) {
  StabilizerOptions base;
  base.peer_stall_timeout = millis(100);
  base.retransmit_timeout = millis(100);
  Fixture f(mesh(2, 5), base);
  std::vector<std::string> events;
  f.node(0).set_peer_stall_handler(
      [&](NodeId p) { events.push_back("stall" + std::to_string(p)); });
  f.node(0).set_peer_recovered_handler(
      [&](NodeId p) { events.push_back("recover" + std::to_string(p)); });

  f.cluster->network().set_node_up(1, false);
  f.node(0).send(to_bytes("a"));
  f.sim.run_until(seconds(1));
  f.cluster->network().set_node_up(1, true);  // ack progress resumes
  f.sim.run_until(seconds(2));
  f.cluster->network().set_node_up(1, false);
  f.node(0).send(to_bytes("b"));
  f.sim.run_until(seconds(3));
  f.cluster->network().set_node_up(1, true);
  f.sim.run_until(seconds(4));

  // Strict alternation, one recover per stall, nothing after quiescence.
  EXPECT_EQ(events, (std::vector<std::string>{"stall1", "recover1", "stall1",
                                              "recover1"}));
  // Stats mirror the handler counts only when the obs layer is compiled in
  // (registry-backed fields read zero under -DSTAB_OBS=OFF).
#if STAB_OBS_ENABLED
  StabilizerStats st = f.node(0).stats();
  EXPECT_EQ(st.peer_stall_episodes, 2u);
  EXPECT_EQ(st.peer_recover_episodes, 2u);
#endif
}

TEST(StallDetection, TypicalReactionAdjustsPredicates) {
  // The §III-E recipe end to end: detect the crashed secondary, find the
  // affected predicates, exclude the peer, and weaken the predicate.
  StabilizerOptions base;
  base.peer_stall_timeout = millis(100);
  Fixture f(mesh(4, 5), base);
  Stabilizer& primary = f.node(0);
  ASSERT_TRUE(primary.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));

  primary.set_peer_stall_handler([&](NodeId peer) {
    auto affected = primary.predicates_referencing(peer);
    EXPECT_EQ(affected, (std::vector<std::string>{"all"}));
    primary.set_peer_excluded(peer, true);
    primary.change_predicate(
        "all", "MIN($ALLWNODES-$MYWNODE-$" + std::to_string(peer + 1) + ")");
  });

  f.cluster->network().set_node_up(3, false);
  SeqNum seq = primary.send(to_bytes("x"));
  bool stable = false;
  primary.waitfor(seq, "all", [&](SeqNum) { stable = true; });
  f.sim.run_until(seconds(2));
  EXPECT_TRUE(stable);  // progress despite the dead node
  EXPECT_EQ(primary.send_buffer_bytes(), 0u);
}

// --- control-state snapshot / restore -------------------------------------------

TEST(Snapshot, RoundTripsControlState) {
  Fixture f(mesh(3, 5));
  Stabilizer& node = f.node(0);
  ASSERT_TRUE(node.register_predicate("maj", "KTH_MAX(2,$ALLWNODES)"));
  ASSERT_TRUE(
      node.register_predicate("ver", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  for (int i = 0; i < 5; ++i) node.send(to_bytes("m"));
  f.sim.run();
  SeqNum frontier = node.get_stability_frontier("maj");
  ASSERT_EQ(frontier, 4);

  Bytes snapshot = node.snapshot_control_state();

  // A fresh instance (fresh transports too — simulating a process restart).
  Fixture g(mesh(3, 5));
  Stabilizer& reborn = g.node(0);
  ASSERT_TRUE(reborn.restore_control_state(snapshot));

  // Predicates are back, frontiers recomputed from the restored acks.
  EXPECT_TRUE(reborn.has_predicate("maj"));
  EXPECT_TRUE(reborn.has_predicate("ver"));
  EXPECT_EQ(reborn.get_stability_frontier("maj"), frontier);
  // The sequencer never reuses sequence numbers.
  EXPECT_EQ(reborn.send(to_bytes("after-restart")), 5);
}

TEST(Snapshot, RestoreIsMonotonicMerge) {
  Fixture f(mesh(2, 1));
  Stabilizer& node = f.node(0);
  node.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)");
  node.send(to_bytes("a"));
  f.sim.run();
  Bytes old_snapshot = node.snapshot_control_state();
  node.send(to_bytes("b"));
  f.sim.run();
  SeqNum newer = node.get_stability_frontier("one");
  // Replaying the stale snapshot must not regress anything.
  ASSERT_TRUE(node.restore_control_state(old_snapshot));
  EXPECT_EQ(node.get_stability_frontier("one"), newer);
}

TEST(Snapshot, RejectsForeignAndCorruptSnapshots) {
  Fixture f(mesh(2, 1));
  Bytes snapshot = f.node(0).snapshot_control_state();

  EXPECT_FALSE(f.node(1).restore_control_state(snapshot).is_ok());

  Bytes corrupt = snapshot;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(f.node(0).restore_control_state(corrupt).is_ok());

  EXPECT_FALSE(
      f.node(0).restore_control_state(to_bytes("not a snapshot")).is_ok());

  // Topology mismatch.
  Fixture g(mesh(3, 1));
  EXPECT_FALSE(g.node(0).restore_control_state(snapshot).is_ok());
}

TEST(Snapshot, PreservesDeliveryCursors) {
  Fixture f(mesh(2, 1));
  f.node(1).send(to_bytes("m0"));
  f.node(1).send(to_bytes("m1"));
  f.sim.run();
  ASSERT_EQ(f.node(0).delivered_through(1), 1);
  Bytes snapshot = f.node(0).snapshot_control_state();

  Fixture g(mesh(2, 1));
  ASSERT_TRUE(g.node(0).restore_control_state(snapshot));
  EXPECT_EQ(g.node(0).delivered_through(1), 1);
}

TEST(Snapshot, V2RestoresSendBufferAcrossRestart) {
  StabilizerOptions base;
  base.retransmit_timeout = millis(50);
  Fixture f(mesh(2, 1), base);
  ASSERT_TRUE(f.node(0).register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  // Peer unreachable: the three messages stay unacknowledged in the send
  // buffer, so the snapshot must carry them (v2 format).
  f.cluster->network().set_node_up(1, false);
  for (int i = 0; i < 3; ++i) f.node(0).send(to_bytes("buffered"));
  f.sim.run_until(seconds(1));
  ASSERT_GT(f.node(0).send_buffer_bytes(), 0u);
  Bytes snapshot = f.node(0).snapshot_control_state();

  // Process restart (fresh transports, fresh peer). The restored instance
  // announces its new session epoch and retransmits the buffered tail —
  // without the send-buffer slots in the snapshot these messages would be
  // gone forever.
  Fixture g(mesh(2, 1), base);
  std::vector<SeqNum> got;
  g.node(1).set_delivery_handler(
      [&](NodeId, SeqNum s, BytesView, uint64_t) { got.push_back(s); });
  ASSERT_TRUE(g.node(0).restore_control_state(snapshot));
  EXPECT_EQ(g.node(0).session_epoch(), 1u);
  g.sim.run_until(seconds(2));
  EXPECT_EQ(got, (std::vector<SeqNum>{0, 1, 2}));
  EXPECT_EQ(g.node(1).peer_session_epoch(0), 1u);
  EXPECT_FALSE(g.node(0).resume_pending(1));  // reply confirmed the rejoin
  EXPECT_EQ(g.node(0).send_buffer_bytes(), 0u);  // acked and reclaimed
}

// --- full primary-restart flow (store WAL + control snapshot) -------------------

TEST(PrimaryRestart, KvStateAndStabilitySurvive) {
  std::string wal = (std::filesystem::temp_directory_path() /
                     ("stab_recovery_" + std::to_string(::getpid()) + ".wal"))
                        .string();
  std::remove(wal.c_str());

  Topology topo = mesh(3, 5);
  auto owner = [](const std::string&) { return NodeId{0}; };
  Bytes snapshot;
  SeqNum put_seq = kNoSeq;
  {
    Fixture f(topo);
    store::LocalStore store(wal);
    kv::WanKV kv(f.node(0), store, owner);
    ASSERT_TRUE(kv.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
    auto put = kv.put("k", to_bytes("durable"));
    ASSERT_TRUE(put.is_ok());
    put_seq = put.value().last_seq;
    f.sim.run();
    EXPECT_EQ(kv.get_stability_frontier("all"), put_seq);
    snapshot = f.node(0).snapshot_control_state();
  }  // primary "crashes"

  // Restart: recover the store from its WAL, then Stabilizer from the
  // snapshot (the integrated-system restart order of §III-E).
  auto recovered = store::LocalStore::recover(wal);
  ASSERT_TRUE(recovered.is_ok());
  Fixture g(topo);
  kv::WanKV kv(g.node(0), recovered.value(), owner);
  ASSERT_TRUE(g.node(0).restore_control_state(snapshot));

  auto v = kv.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "durable");
  EXPECT_EQ(g.node(0).get_stability_frontier("all"), put_seq);
  // New writes continue the sequence space.
  auto put2 = kv.put("k2", to_bytes("post-restart"));
  ASSERT_TRUE(put2.is_ok());
  EXPECT_GT(put2.value().first_seq, put_seq);
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace stab
