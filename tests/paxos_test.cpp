// Multi-Paxos baseline tests: commit path, ordering, learning, contention
// between competing proposers, loss recovery, and safety properties
// (agreement + validity) under randomized loss.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "net/sim_transport.hpp"
#include "paxos/paxos.hpp"
#include "sim/chaos.hpp"

namespace stab::paxos {
namespace {

Topology mesh(size_t n, double lat_ms) {
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_node("p" + std::to_string(i), "az");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

struct PaxosFixture {
  PaxosFixture(size_t n, double lat_ms, NodeId leader = 0,
               Duration retry = Duration::zero())
      : topo(mesh(n, lat_ms)) {
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId i = 0; i < n; ++i) {
      PaxosOptions opts;
      for (NodeId m = 0; m < n; ++m) opts.members.push_back(m);
      opts.self = i;
      opts.start_as_leader = (i == leader);
      opts.retry_interval = retry;
      nodes.push_back(
          std::make_unique<PaxosNode>(opts, cluster->transport(i)));
    }
  }
  PaxosNode& node(NodeId n) { return *nodes.at(n); }

  Topology topo;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<PaxosNode>> nodes;
};

TEST(Paxos, LeaderCommitsAfterMajority) {
  PaxosFixture f(3, 10);
  TimePoint committed_at = kTimeZero;
  InstanceId instance = kNoInstance;
  f.node(0).propose(to_bytes("v"), 0, [&](InstanceId i) {
    committed_at = f.sim.now();
    instance = i;
  });
  f.sim.run();
  EXPECT_EQ(instance, 0);
  // Phase 1 RTT (20ms) + Phase 2 RTT (20ms).
  EXPECT_GE(to_ms(committed_at), 40.0);
  EXPECT_LE(to_ms(committed_at), 45.0);
  EXPECT_TRUE(f.node(0).is_leader());
}

TEST(Paxos, SteadyStateSkipsPhaseOne) {
  PaxosFixture f(3, 10);
  f.node(0).propose(to_bytes("warmup"), 0, nullptr);
  f.sim.run();
  TimePoint start = f.sim.now();
  TimePoint committed_at = kTimeZero;
  f.node(0).propose(to_bytes("steady"), 0,
                    [&](InstanceId) { committed_at = f.sim.now(); });
  f.sim.run();
  // One accept round-trip only.
  EXPECT_NEAR(to_ms(committed_at - start), 20.0, 2.0);
}

TEST(Paxos, AllMembersLearnInOrder) {
  PaxosFixture f(5, 5);
  std::map<NodeId, std::vector<std::string>> learned;
  for (NodeId n = 0; n < 5; ++n)
    f.node(n).set_commit_handler([&, n](InstanceId i, BytesView v) {
      EXPECT_EQ(i, static_cast<InstanceId>(learned[n].size()));
      learned[n].push_back(to_string(v));
    });
  for (int i = 0; i < 10; ++i)
    f.node(0).propose(to_bytes("cmd" + std::to_string(i)), 0, nullptr);
  f.sim.run();
  for (NodeId n = 0; n < 5; ++n) {
    ASSERT_EQ(learned[n].size(), 10u) << "node " << n;
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(learned[n][i], "cmd" + std::to_string(i));
    EXPECT_EQ(f.node(n).learned_through(), 9);
  }
}

TEST(Paxos, PipelinedProposalsCommitConcurrently) {
  PaxosFixture f(3, 20);
  int committed = 0;
  TimePoint last = kTimeZero;
  for (int i = 0; i < 50; ++i)
    f.node(0).propose(to_bytes("x"), 0, [&](InstanceId) {
      ++committed;
      last = f.sim.now();
    });
  f.sim.run();
  EXPECT_EQ(committed, 50);
  // Pipelining: all 50 commit in ~two round trips, not 50 sequential RTTs.
  EXPECT_LT(to_ms(last), 100.0);
}

TEST(Paxos, CompetingProposersAgree) {
  PaxosFixture f(3, 5);
  std::map<InstanceId, std::string> committed0, committed1;
  f.node(0).set_commit_handler([&](InstanceId i, BytesView v) {
    committed0[i] = to_string(v);
  });
  f.node(1).set_commit_handler([&](InstanceId i, BytesView v) {
    committed1[i] = to_string(v);
  });
  f.node(0).propose(to_bytes("from-0"), 0, nullptr);
  f.node(1).start_leadership();  // contend
  f.node(1).propose(to_bytes("from-1"), 0, nullptr);
  f.sim.run_until(seconds(10));
  // Whatever was learned must agree across nodes (safety).
  for (const auto& [i, v] : committed0) {
    auto it = committed1.find(i);
    if (it != committed1.end()) EXPECT_EQ(it->second, v) << "instance " << i;
  }
}

TEST(Paxos, SingleNodeClusterCommitsImmediately) {
  PaxosFixture f(1, 0);
  int committed = 0;
  f.node(0).propose(to_bytes("solo"), 0, [&](InstanceId) { ++committed; });
  f.sim.run();
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(f.node(0).learned_through(), 0);
}

TEST(Paxos, VirtualSizeChargesBandwidth) {
  Topology topo = mesh(2, 0);
  LinkSpec s;
  s.bandwidth_bps = 8e6;  // 1 MB/s
  topo.set_link_bidir(0, 1, s);
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  PaxosOptions o0, o1;
  o0.members = o1.members = {0, 1};
  o0.self = 0;
  o0.start_as_leader = true;
  o1.self = 1;
  PaxosNode a(o0, cluster.transport(0));
  PaxosNode b(o1, cluster.transport(1));
  TimePoint committed_at = kTimeZero;
  a.propose(Bytes(), 1'000'000, [&](InstanceId) { committed_at = sim.now(); });
  sim.run();
  EXPECT_GE(to_sec(committed_at), 1.0);  // 1 MB at 1 MB/s
}

TEST(Paxos, RecoversFromMessageLoss) {
  PaxosFixture f(3, 2, /*leader=*/0, /*retry=*/millis(50));
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      if (a != b) f.cluster->network().set_drop_probability(a, b, 0.25);
  f.cluster->network().set_drop_rng_seed(7);

  int committed = 0;
  for (int i = 0; i < 20; ++i)
    f.node(0).propose(to_bytes("c" + std::to_string(i)), 0,
                      [&](InstanceId) { ++committed; });
  f.sim.run_until(seconds(30));
  EXPECT_EQ(committed, 20);
  EXPECT_GT(f.node(0).stats().retries, 0u);
  // Followers eventually learn everything via commit + catch-up.
  for (NodeId n = 1; n < 3; ++n)
    EXPECT_EQ(f.node(n).learned_through(), 19) << "node " << n;
}

TEST(Paxos, NonLeaderProposalTriggersLeadership) {
  PaxosFixture f(3, 5, /*leader=*/0);
  f.node(0).propose(to_bytes("seed"), 0, nullptr);
  f.sim.run();
  // Node 2 (not leader) proposes: it runs Phase 1 with a higher ballot.
  int committed = 0;
  f.node(2).propose(to_bytes("late"), 0, [&](InstanceId) { ++committed; });
  f.sim.run_until(seconds(5));
  EXPECT_EQ(committed, 1);
  EXPECT_TRUE(f.node(2).is_leader());
}

// Safety property: agreement & validity under randomized loss and competing
// proposers. For every instance, all nodes that learned it learned the same
// value, and that value was actually proposed.
TEST(PaxosProperty, AgreementAndValidityUnderLoss) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    PaxosFixture f(5, 3, 0, millis(40));
    Rng rng(seed);
    for (NodeId a = 0; a < 5; ++a)
      for (NodeId b = 0; b < 5; ++b)
        if (a != b)
          f.cluster->network().set_drop_probability(a, b,
                                                    rng.next_double() * 0.3);
    f.cluster->network().set_drop_rng_seed(seed * 97);

    std::set<std::string> proposed;
    for (int i = 0; i < 15; ++i) {
      NodeId proposer = rng.next_bool(0.8) ? 0 : 1;  // mostly the leader
      std::string value =
          "s" + std::to_string(seed) + "-v" + std::to_string(i);
      proposed.insert(value);
      if (proposer == 1 && !f.node(1).is_leader())
        f.node(1).start_leadership();
      f.node(proposer).propose(to_bytes(value), 0, nullptr);
      if (rng.next_bool(0.5))
        f.sim.run_until(f.sim.now() + millis(rng.next_range(1, 40)));
    }
    f.sim.run_until(f.sim.now() + seconds(30));

    InstanceId horizon = -1;
    for (NodeId n = 0; n < 5; ++n)
      horizon = std::max(horizon, f.node(n).learned_through());
    ASSERT_GE(horizon, 0) << "nothing committed at all";
    for (InstanceId i = 0; i <= horizon; ++i) {
      std::optional<Bytes> chosen;
      for (NodeId n = 0; n < 5; ++n) {
        auto v = f.node(n).learned_value(i);
        if (!v) continue;
        if (!chosen) {
          chosen = v;
          // Validity: the chosen value was proposed by someone.
          EXPECT_TRUE(proposed.count(to_string(*v)))
              << "instance " << i << " learned unproposed value";
        } else {
          // Agreement: no two nodes learn different values.
          EXPECT_EQ(*chosen, *v) << "instance " << i << " disagreement";
        }
      }
    }
  }
}

// --- seeded chaos campaigns ---------------------------------------------------

/// Lossy links plus a real partition while proposers on BOTH sides of the
/// split contend. Safety must hold throughout (no divergent commits), and
/// after the faults heal and one proposer drives a settling round, exactly
/// one leader remains.
void run_paxos_chaos_campaign(uint64_t seed) {
  SCOPED_TRACE("paxos chaos seed " + std::to_string(seed));
  PaxosFixture f(5, 5, /*leader=*/0, /*retry=*/millis(50));
  f.cluster->network().set_drop_rng_seed(seed);
  sim::ChaosSchedule chaos(f.sim, f.cluster->network());
  sim::ChaosScript script;
  sim::add_loss_burst(script, kTimeZero, seconds(12), 0.10, 0.0);
  sim::add_partition(script, seconds(2), seconds(3), {{0, 1}, {2, 3, 4}});
  sim::finalize_script(script);
  chaos.arm(script);

  // Proposals staggered across the fault window, rotating over proposers 0,
  // 1 (minority side during the partition) and 2 (majority side).
  std::set<std::string> proposed;
  for (int i = 0; i < 24; ++i) {
    const NodeId proposer = static_cast<NodeId>(i % 3);
    const std::string value = "s" + std::to_string(seed) + "-p" +
                              std::to_string(proposer) + "-v" +
                              std::to_string(i);
    proposed.insert(value);
    f.sim.schedule_at(from_ms(100 + i * 300), [&f, proposer, value] {
      if (!f.node(proposer).is_leader()) f.node(proposer).start_leadership();
      f.node(proposer).propose(to_bytes(value), 0, nullptr);
    });
  }
  f.sim.run_until(seconds(40));

  // Post-heal settling round: one proposer commits a final value, whose
  // accept round deposes every other would-be leader.
  const std::string settle = "s" + std::to_string(seed) + "-settle";
  proposed.insert(settle);
  int settled = 0;
  if (!f.node(0).is_leader()) f.node(0).start_leadership();
  f.node(0).propose(to_bytes(settle), 0, [&](InstanceId) { ++settled; });
  f.sim.run_until(seconds(80));
  EXPECT_EQ(settled, 1);

  // Single leader once the dust settles.
  int leaders = 0;
  for (NodeId n = 0; n < 5; ++n) leaders += f.node(n).is_leader() ? 1 : 0;
  EXPECT_EQ(leaders, 1);

  // No divergent commits: for every instance, every node that learned it
  // learned the same, actually-proposed value.
  InstanceId horizon = -1;
  for (NodeId n = 0; n < 5; ++n)
    horizon = std::max(horizon, f.node(n).learned_through());
  ASSERT_GE(horizon, 0) << "nothing committed at all";
  for (InstanceId i = 0; i <= horizon; ++i) {
    std::optional<Bytes> chosen;
    for (NodeId n = 0; n < 5; ++n) {
      auto v = f.node(n).learned_value(i);
      if (!v) continue;
      if (!chosen) {
        chosen = v;
        EXPECT_TRUE(proposed.count(to_string(*v)))
            << "instance " << i << " learned unproposed value";
      } else {
        EXPECT_EQ(*chosen, *v) << "instance " << i << " disagreement";
      }
    }
  }
}

TEST(PaxosChaos, PartitionAndLossCampaignsKeepSingleLeaderAndAgreement) {
  std::vector<uint64_t> seeds = {5, 13, 42};
  if (const char* env = std::getenv("STAB_PAXOS_SEEDS")) {
    seeds.clear();
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  for (uint64_t seed : seeds) {
    run_paxos_chaos_campaign(seed);
    if (::testing::Test::HasFailure()) {
      // Replay with STAB_PAXOS_SEEDS=<seed> ./paxos_test
      std::cerr << "PAXOS REPLAY SEED: " << seed << std::endl;
      return;
    }
  }
}

}  // namespace
}  // namespace stab::paxos
