// Control plane tests: stability-type registry, AckTable monotonic merge,
// FrontierEngine (register/change/monitor/waitfor, incremental re-eval,
// predicate-gap semantics), and property tests on monotonicity.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "config/topology.hpp"
#include "control/frontier_engine.hpp"

namespace stab {
namespace {

TEST(StabilityTypes, BuiltinsPreRegistered) {
  StabilityTypeRegistry reg;
  EXPECT_EQ(reg.find("received"), StabilityTypeRegistry::kReceived);
  EXPECT_EQ(reg.find("persisted"), StabilityTypeRegistry::kPersisted);
  EXPECT_EQ(reg.find("delivered"), StabilityTypeRegistry::kDelivered);
  EXPECT_EQ(reg.count(), 3u);
}

TEST(StabilityTypes, RegistersNewTypesIdempotently) {
  StabilityTypeRegistry reg;
  StabilityTypeId a = reg.get_or_register("verified");
  StabilityTypeId b = reg.get_or_register("verified");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.name(a), "verified");
  EXPECT_EQ(reg.count(), 4u);
  EXPECT_FALSE(reg.find("countersigned").has_value());
}

TEST(AckTable, MonotonicMerge) {
  AckTable t(4);
  EXPECT_TRUE(t.update(0, 1, 10));
  EXPECT_EQ(t.get(0, 1), 10);
  EXPECT_FALSE(t.update(0, 1, 10));  // no change
  EXPECT_FALSE(t.update(0, 1, 5));   // stale report ignored
  EXPECT_EQ(t.get(0, 1), 10);
  EXPECT_TRUE(t.update(0, 1, 11));
  EXPECT_EQ(t.get(0, 1), 11);
}

TEST(AckTable, UnsetCellsReadNoSeq) {
  AckTable t(4);
  EXPECT_EQ(t.get(0, 0), kNoSeq);
  EXPECT_EQ(t.get(7, 2), kNoSeq);  // unknown type
  EXPECT_TRUE(t.row(9).empty());
}

TEST(AckTable, OutOfRangeNodeIgnored) {
  AckTable t(2);
  EXPECT_FALSE(t.update(0, 5, 3));
}

TEST(AckTable, RowsGrowPerType) {
  AckTable t(3);
  t.update(4, 2, 9);
  EXPECT_EQ(t.num_types(), 5u);
  auto row = t.row(4);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], 9);
  EXPECT_EQ(row[0], kNoSeq);
}

// --- FrontierEngine -----------------------------------------------------------

class FrontierTest : public ::testing::Test {
 protected:
  FrontierTest()
      : topo_(ec2_topology()), engine_(topo_, 0, types_) {}
  Topology topo_;
  StabilityTypeRegistry types_;
  FrontierEngine engine_;
};

TEST_F(FrontierTest, RegisterAndEvaluate) {
  ASSERT_TRUE(engine_.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  EXPECT_TRUE(engine_.has_predicate("all"));
  EXPECT_EQ(engine_.frontier("all"), kNoSeq);

  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, 5);
  EXPECT_EQ(engine_.frontier("all"), 5);
}

TEST_F(FrontierTest, DuplicateRegisterFails) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES)"));
  Status st = engine_.register_predicate("p", "MIN($ALLWNODES)");
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("already registered"), std::string::npos);
}

TEST_F(FrontierTest, BadSourceFails) {
  EXPECT_FALSE(engine_.register_predicate("p", "NOPE($1)").is_ok());
  EXPECT_FALSE(engine_.has_predicate("p"));
}

TEST_F(FrontierTest, UnknownKeyOperations) {
  EXPECT_FALSE(engine_.change_predicate("x", "MAX($1)").is_ok());
  EXPECT_FALSE(engine_.remove_predicate("x").is_ok());
  EXPECT_FALSE(engine_.monitor("x", [](SeqNum, BytesView) {}).is_ok());
  EXPECT_FALSE(engine_.waitfor("x", 1, [](SeqNum) {}).is_ok());
  EXPECT_EQ(engine_.frontier("x"), kNoSeq);
}

TEST_F(FrontierTest, MonitorFiresOnAdvance) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<SeqNum> seen;
  ASSERT_TRUE(engine_.monitor(
      "one", [&](SeqNum f, BytesView) { seen.push_back(f); }));

  engine_.on_ack(0, 3, 2);
  engine_.on_ack(0, 4, 1);  // MAX already 2: no advance, no fire
  engine_.on_ack(0, 4, 7);
  EXPECT_EQ(seen, (std::vector<SeqNum>{2, 7}));
}

TEST_F(FrontierTest, MonitorReceivesExtraBytes) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::string got;
  ASSERT_TRUE(engine_.monitor("one", [&](SeqNum, BytesView extra) {
    got = to_string(extra);
  }));
  Bytes extra = to_bytes("app-data");
  engine_.on_ack(0, 2, 1, extra);
  EXPECT_EQ(got, "app-data");
}

TEST_F(FrontierTest, WaitforFiresOnceAtCoverage) {
  ASSERT_TRUE(engine_.register_predicate("maj",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))"));
  int fired = 0;
  SeqNum at = kNoSeq;
  ASSERT_TRUE(engine_.waitfor("maj", 10, [&](SeqNum f) {
    ++fired;
    at = f;
  }));
  // majority = 5 of the 7 remote nodes
  for (NodeId n = 1; n <= 4; ++n) engine_.on_ack(0, n, 12);
  EXPECT_EQ(fired, 0);  // only 4 remotes at 12
  engine_.on_ack(0, 5, 12);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(at, 12);
  engine_.on_ack(0, 6, 50);
  EXPECT_EQ(fired, 1);  // never re-fires
}

TEST_F(FrontierTest, WaitforAlreadySatisfiedFiresImmediately) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 2, 9);
  int fired = 0;
  ASSERT_TRUE(engine_.waitfor("one", 5, [&](SeqNum f) {
    ++fired;
    EXPECT_EQ(f, 9);
  }));
  EXPECT_EQ(fired, 1);
}

TEST_F(FrontierTest, WaitersWakeInSeqOrder) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<int> order;
  engine_.waitfor("one", 30, [&](SeqNum) { order.push_back(30); });
  engine_.waitfor("one", 10, [&](SeqNum) { order.push_back(10); });
  engine_.waitfor("one", 20, [&](SeqNum) { order.push_back(20); });
  engine_.on_ack(0, 1, 25);
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
  engine_.on_ack(0, 1, 30);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST_F(FrontierTest, ChangePredicateRecomputesAndMayRegress) {
  // §VI-D dynamic reconfiguration: all_sites <-> three_sites.
  ASSERT_TRUE(engine_.register_predicate(
      "p", "KTH_MAX(3,($ALLWNODES-$MYWNODE))"));
  engine_.on_ack(0, 1, 100);
  engine_.on_ack(0, 2, 100);
  engine_.on_ack(0, 3, 100);
  EXPECT_EQ(engine_.frontier("p"), 100);

  // Switch to all-sites: only 3 of 7 remotes have acked -> regress to kNoSeq.
  ASSERT_TRUE(engine_.change_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  EXPECT_EQ(engine_.frontier("p"), kNoSeq);

  // Remaining sites catch up; frontier recovers.
  for (NodeId n = 4; n < 8; ++n) engine_.on_ack(0, n, 90);
  EXPECT_EQ(engine_.frontier("p"), 90);
}

TEST_F(FrontierTest, ChangePredicateKeepsWaiters) {
  ASSERT_TRUE(engine_.register_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  int fired = 0;
  engine_.waitfor("p", 5, [&](SeqNum) { ++fired; });
  // Weaken the predicate: now a single remote ack suffices.
  ASSERT_TRUE(engine_.change_predicate("p", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 6, 7);
  EXPECT_EQ(fired, 1);
}

TEST_F(FrontierTest, RemovePredicate) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES)"));
  ASSERT_TRUE(engine_.remove_predicate("p"));
  EXPECT_FALSE(engine_.has_predicate("p"));
  EXPECT_EQ(engine_.frontier("p"), kNoSeq);
}

TEST_F(FrontierTest, AutoRegistersCustomTypes) {
  ASSERT_TRUE(
      engine_.register_predicate("v", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  auto id = types_.find("verified");
  ASSERT_TRUE(id.has_value());
  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(*id, n, 3);
  EXPECT_EQ(engine_.frontier("v"), 3);
  // received acks don't move a verified-only predicate
  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, 99);
  EXPECT_EQ(engine_.frontier("v"), 3);
}

TEST_F(FrontierTest, IncrementalSkipsUnrelatedPredicates) {
  ASSERT_TRUE(engine_.register_predicate("oregon", "MAX($AZ_Oregon)"));
  uint64_t evals = engine_.evaluations();
  // Acks from a node the predicate doesn't reference: no evaluation.
  engine_.on_ack(0, 2, 5);
  EXPECT_EQ(engine_.evaluations(), evals);
  engine_.on_ack(0, 6, 5);  // node 7 = Oregon
  EXPECT_EQ(engine_.evaluations(), evals + 1);
}

TEST_F(FrontierTest, StaleAckDoesNothing) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  EXPECT_TRUE(engine_.on_ack(0, 1, 10));
  uint64_t evals = engine_.evaluations();
  EXPECT_FALSE(engine_.on_ack(0, 1, 4));
  EXPECT_EQ(engine_.evaluations(), evals);
}

TEST_F(FrontierTest, MultipleMonitors) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES-$MYWNODE)"));
  int a = 0, b = 0;
  engine_.monitor("p", [&](SeqNum, BytesView) { ++a; });
  engine_.monitor("p", [&](SeqNum, BytesView) { ++b; });
  engine_.on_ack(0, 1, 1);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(FrontierTest, PredicateKeysListed) {
  engine_.register_predicate("a", "MAX($1)");
  engine_.register_predicate("b", "MAX($2)");
  auto keys = engine_.predicate_keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(engine_.predicate("a"), nullptr);
  EXPECT_EQ(engine_.predicate("zz"), nullptr);
}

// Property: under random monotone ack streams, every predicate frontier is
// non-decreasing and consistent with a from-scratch evaluation.
TEST(FrontierProperty, IncrementalMatchesFromScratch) {
  Topology topo = ec2_topology();
  for (uint64_t seed : {11u, 22u, 33u}) {
    StabilityTypeRegistry types;
    FrontierEngine engine(topo, 0, types);
    const char* preds[] = {
        "MAX($ALLWNODES-$MYWNODE)",
        "MIN($ALLWNODES-$MYWNODE)",
        "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
        "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
        "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
        "MIN(($ALLWNODES-$MYWNODE).persisted)",
    };
    std::vector<std::string> keys;
    for (size_t i = 0; i < std::size(preds); ++i) {
      keys.push_back("p" + std::to_string(i));
      ASSERT_TRUE(engine.register_predicate(keys.back(), preds[i]));
    }
    std::map<std::string, SeqNum> last;
    Rng rng(seed);
    std::vector<std::vector<int64_t>> state(
        2, std::vector<int64_t>(8, kNoSeq));  // types 0..1
    for (int step = 0; step < 1000; ++step) {
      StabilityTypeId t = static_cast<StabilityTypeId>(rng.next_below(2));
      NodeId n = static_cast<NodeId>(rng.next_below(8));
      state[t][n] += rng.next_range(0, 3);
      engine.on_ack(t, n, state[t][n]);
      for (const auto& key : keys) {
        SeqNum f = engine.frontier(key);
        auto it = last.find(key);
        if (it != last.end()) ASSERT_GE(f, it->second) << key;
        last[key] = f;
        // from-scratch check via a fresh eval of the same predicate
        ASSERT_EQ(f, engine.predicate(key)->eval(engine.acks())) << key;
      }
    }
  }
}

}  // namespace
}  // namespace stab
