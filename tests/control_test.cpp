// Control plane tests: stability-type registry, AckTable monotonic merge,
// FrontierEngine (register/change/monitor/waitfor, incremental re-eval,
// predicate-gap semantics), and property tests on monotonicity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "config/topology.hpp"
#include "control/ack_cells.hpp"
#include "control/composite_frontier.hpp"
#include "control/deferred_reporter.hpp"
#include "control/frontier_board.hpp"
#include "control/frontier_engine.hpp"

namespace stab {
namespace {

TEST(StabilityTypes, BuiltinsPreRegistered) {
  StabilityTypeRegistry reg;
  EXPECT_EQ(reg.find("received"), StabilityTypeRegistry::kReceived);
  EXPECT_EQ(reg.find("persisted"), StabilityTypeRegistry::kPersisted);
  EXPECT_EQ(reg.find("delivered"), StabilityTypeRegistry::kDelivered);
  EXPECT_EQ(reg.count(), 3u);
}

TEST(StabilityTypes, RegistersNewTypesIdempotently) {
  StabilityTypeRegistry reg;
  StabilityTypeId a = reg.get_or_register("verified");
  StabilityTypeId b = reg.get_or_register("verified");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.name(a), "verified");
  EXPECT_EQ(reg.count(), 4u);
  EXPECT_FALSE(reg.find("countersigned").has_value());
}

TEST(AckTable, MonotonicMerge) {
  AckTable t(4);
  EXPECT_TRUE(t.update(0, 1, 10));
  EXPECT_EQ(t.get(0, 1), 10);
  EXPECT_FALSE(t.update(0, 1, 10));  // no change
  EXPECT_FALSE(t.update(0, 1, 5));   // stale report ignored
  EXPECT_EQ(t.get(0, 1), 10);
  EXPECT_TRUE(t.update(0, 1, 11));
  EXPECT_EQ(t.get(0, 1), 11);
}

TEST(AckTable, UnsetCellsReadNoSeq) {
  AckTable t(4);
  EXPECT_EQ(t.get(0, 0), kNoSeq);
  EXPECT_EQ(t.get(7, 2), kNoSeq);  // unknown type
  EXPECT_TRUE(t.row(9).empty());
}

TEST(AckTable, OutOfRangeNodeIgnored) {
  AckTable t(2);
  EXPECT_FALSE(t.update(0, 5, 3));
}

TEST(AckTable, RowsGrowPerType) {
  AckTable t(3);
  t.update(4, 2, 9);
  EXPECT_EQ(t.num_types(), 5u);
  auto row = t.row(4);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], 9);
  EXPECT_EQ(row[0], kNoSeq);
}

// --- FrontierEngine -----------------------------------------------------------

class FrontierTest : public ::testing::Test {
 protected:
  FrontierTest()
      : topo_(ec2_topology()), engine_(topo_, 0, types_) {}
  Topology topo_;
  StabilityTypeRegistry types_;
  FrontierEngine engine_;
};

TEST_F(FrontierTest, RegisterAndEvaluate) {
  ASSERT_TRUE(engine_.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  EXPECT_TRUE(engine_.has_predicate("all"));
  EXPECT_EQ(engine_.frontier("all"), kNoSeq);

  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, 5);
  EXPECT_EQ(engine_.frontier("all"), 5);
}

TEST_F(FrontierTest, DuplicateRegisterFails) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES)"));
  Status st = engine_.register_predicate("p", "MIN($ALLWNODES)");
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("already registered"), std::string::npos);
}

TEST_F(FrontierTest, BadSourceFails) {
  EXPECT_FALSE(engine_.register_predicate("p", "NOPE($1)").is_ok());
  EXPECT_FALSE(engine_.has_predicate("p"));
}

TEST_F(FrontierTest, UnknownKeyOperations) {
  EXPECT_FALSE(engine_.change_predicate("x", "MAX($1)").is_ok());
  EXPECT_FALSE(engine_.remove_predicate("x").is_ok());
  EXPECT_FALSE(engine_.monitor("x", [](SeqNum, BytesView) {}).is_ok());
  EXPECT_FALSE(engine_.waitfor("x", 1, [](SeqNum) {}).is_ok());
  EXPECT_EQ(engine_.frontier("x"), kNoSeq);
}

TEST_F(FrontierTest, MonitorFiresOnAdvance) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<SeqNum> seen;
  ASSERT_TRUE(engine_.monitor(
      "one", [&](SeqNum f, BytesView) { seen.push_back(f); }));

  engine_.on_ack(0, 3, 2);
  engine_.on_ack(0, 4, 1);  // MAX already 2: no advance, no fire
  engine_.on_ack(0, 4, 7);
  EXPECT_EQ(seen, (std::vector<SeqNum>{2, 7}));
}

TEST_F(FrontierTest, MonitorReceivesExtraBytes) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::string got;
  ASSERT_TRUE(engine_.monitor("one", [&](SeqNum, BytesView extra) {
    got = to_string(extra);
  }));
  Bytes extra = to_bytes("app-data");
  engine_.on_ack(0, 2, 1, extra);
  EXPECT_EQ(got, "app-data");
}

TEST_F(FrontierTest, WaitforFiresOnceAtCoverage) {
  ASSERT_TRUE(engine_.register_predicate("maj",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))"));
  int fired = 0;
  SeqNum at = kNoSeq;
  ASSERT_TRUE(engine_.waitfor("maj", 10, [&](SeqNum f) {
    ++fired;
    at = f;
  }));
  // majority = 5 of the 7 remote nodes
  for (NodeId n = 1; n <= 4; ++n) engine_.on_ack(0, n, 12);
  EXPECT_EQ(fired, 0);  // only 4 remotes at 12
  engine_.on_ack(0, 5, 12);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(at, 12);
  engine_.on_ack(0, 6, 50);
  EXPECT_EQ(fired, 1);  // never re-fires
}

TEST_F(FrontierTest, WaitforAlreadySatisfiedFiresImmediately) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 2, 9);
  int fired = 0;
  ASSERT_TRUE(engine_.waitfor("one", 5, [&](SeqNum f) {
    ++fired;
    EXPECT_EQ(f, 9);
  }));
  EXPECT_EQ(fired, 1);
}

TEST_F(FrontierTest, WaitersWakeInSeqOrder) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<int> order;
  engine_.waitfor("one", 30, [&](SeqNum) { order.push_back(30); });
  engine_.waitfor("one", 10, [&](SeqNum) { order.push_back(10); });
  engine_.waitfor("one", 20, [&](SeqNum) { order.push_back(20); });
  engine_.on_ack(0, 1, 25);
  EXPECT_EQ(order, (std::vector<int>{10, 20}));
  engine_.on_ack(0, 1, 30);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST_F(FrontierTest, ChangePredicateRecomputesAndMayRegress) {
  // §VI-D dynamic reconfiguration: all_sites <-> three_sites.
  ASSERT_TRUE(engine_.register_predicate(
      "p", "KTH_MAX(3,($ALLWNODES-$MYWNODE))"));
  engine_.on_ack(0, 1, 100);
  engine_.on_ack(0, 2, 100);
  engine_.on_ack(0, 3, 100);
  EXPECT_EQ(engine_.frontier("p"), 100);

  // Switch to all-sites: only 3 of 7 remotes have acked -> regress to kNoSeq.
  ASSERT_TRUE(engine_.change_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  EXPECT_EQ(engine_.frontier("p"), kNoSeq);

  // Remaining sites catch up; frontier recovers.
  for (NodeId n = 4; n < 8; ++n) engine_.on_ack(0, n, 90);
  EXPECT_EQ(engine_.frontier("p"), 90);
}

TEST_F(FrontierTest, ChangePredicateKeepsWaiters) {
  ASSERT_TRUE(engine_.register_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  int fired = 0;
  engine_.waitfor("p", 5, [&](SeqNum) { ++fired; });
  // Weaken the predicate: now a single remote ack suffices.
  ASSERT_TRUE(engine_.change_predicate("p", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 6, 7);
  EXPECT_EQ(fired, 1);
}

TEST_F(FrontierTest, RemovePredicate) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES)"));
  ASSERT_TRUE(engine_.remove_predicate("p"));
  EXPECT_FALSE(engine_.has_predicate("p"));
  EXPECT_EQ(engine_.frontier("p"), kNoSeq);
}

TEST_F(FrontierTest, AutoRegistersCustomTypes) {
  ASSERT_TRUE(
      engine_.register_predicate("v", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  auto id = types_.find("verified");
  ASSERT_TRUE(id.has_value());
  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(*id, n, 3);
  EXPECT_EQ(engine_.frontier("v"), 3);
  // received acks don't move a verified-only predicate
  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, 99);
  EXPECT_EQ(engine_.frontier("v"), 3);
}

TEST_F(FrontierTest, IncrementalSkipsUnrelatedPredicates) {
  ASSERT_TRUE(engine_.register_predicate("oregon", "MAX($AZ_Oregon)"));
  uint64_t evals = engine_.evaluations();
  // Acks from a node the predicate doesn't reference: no evaluation.
  engine_.on_ack(0, 2, 5);
  EXPECT_EQ(engine_.evaluations(), evals);
  engine_.on_ack(0, 6, 5);  // node 7 = Oregon
  EXPECT_EQ(engine_.evaluations(), evals + 1);
}

TEST_F(FrontierTest, StaleAckDoesNothing) {
  ASSERT_TRUE(engine_.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  EXPECT_TRUE(engine_.on_ack(0, 1, 10));
  uint64_t evals = engine_.evaluations();
  EXPECT_FALSE(engine_.on_ack(0, 1, 4));
  EXPECT_EQ(engine_.evaluations(), evals);
}

TEST_F(FrontierTest, MultipleMonitors) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES-$MYWNODE)"));
  int a = 0, b = 0;
  engine_.monitor("p", [&](SeqNum, BytesView) { ++a; });
  engine_.monitor("p", [&](SeqNum, BytesView) { ++b; });
  engine_.on_ack(0, 1, 1);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(FrontierTest, PredicateKeysListed) {
  engine_.register_predicate("a", "MAX($1)");
  engine_.register_predicate("b", "MAX($2)");
  auto keys = engine_.predicate_keys();
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(engine_.predicate("a"), nullptr);
  EXPECT_EQ(engine_.predicate("zz"), nullptr);
}

// --- indexed dispatch / batch apply (control-plane hot path) -----------------

TEST_F(FrontierTest, RemovePredicateFailsPendingWaiters) {
  ASSERT_TRUE(engine_.register_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  std::vector<SeqNum> fired;
  engine_.waitfor("p", 10, [&](SeqNum f) { fired.push_back(f); });
  engine_.waitfor("p", 20, [&](SeqNum f) { fired.push_back(f); });
  ASSERT_TRUE(engine_.remove_predicate("p"));
  // Every pending waiter fires exactly once with kNoSeq ("predicate
  // removed"), so blocking callers cannot hang forever.
  EXPECT_EQ(fired, (std::vector<SeqNum>{kNoSeq, kNoSeq}));
  // Re-registering does not resurrect the failed waiters.
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 1, 100);
  EXPECT_EQ(fired.size(), 2u);
}

TEST_F(FrontierTest, BatchAppliesWholeFrameWithOneEvalPerPredicate) {
  ASSERT_TRUE(engine_.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  ASSERT_TRUE(engine_.register_predicate("any", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<SeqNum> monitor_all, monitor_any;
  engine_.monitor("all", [&](SeqNum f, BytesView) { monitor_all.push_back(f); });
  engine_.monitor("any", [&](SeqNum f, BytesView) { monitor_any.push_back(f); });

  std::vector<AckUpdate> batch;
  for (NodeId n = 1; n < 8; ++n) batch.push_back(AckUpdate{0, n, 5, {}});
  uint64_t evals0 = engine_.predicate_evals();
  EXPECT_EQ(engine_.on_ack_batch(batch), 7u);
  // The batch max-merges first, then each affected predicate evaluates at
  // most once (binding skips can reduce further; "any" is bound after the
  // first cell).
  EXPECT_LE(engine_.predicate_evals() - evals0, 2u);
  EXPECT_EQ(engine_.frontier("all"), 5);
  EXPECT_EQ(engine_.frontier("any"), 5);
  // Monitors observe the coalesced (final) frontier exactly once.
  EXPECT_EQ(monitor_all, (std::vector<SeqNum>{5}));
  EXPECT_EQ(monitor_any, (std::vector<SeqNum>{5}));
}

TEST_F(FrontierTest, BatchStaleEntriesDoNotDispatch) {
  ASSERT_TRUE(engine_.register_predicate("any", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 1, 10);
  uint64_t evals0 = engine_.predicate_evals();
  std::vector<AckUpdate> batch{AckUpdate{0, 1, 4, {}},   // stale
                               AckUpdate{0, 1, 10, {}}};  // no advance
  EXPECT_EQ(engine_.on_ack_batch(batch), 0u);
  EXPECT_EQ(engine_.predicate_evals(), evals0);
}

TEST_F(FrontierTest, BindingCacheSkipsEvalsThatCannotRaise) {
  ASSERT_TRUE(engine_.register_predicate("any", "MAX($ALLWNODES-$MYWNODE)"));
  engine_.on_ack(0, 1, 10);
  EXPECT_EQ(engine_.frontier("any"), 10);
  uint64_t evals0 = engine_.predicate_evals();
  uint64_t skips0 = engine_.evals_skipped_binding();
  // Advances a cell, but 5 <= frontier 10: MAX provably unchanged.
  EXPECT_TRUE(engine_.on_ack(0, 2, 5));
  EXPECT_EQ(engine_.predicate_evals(), evals0);
  EXPECT_EQ(engine_.evals_skipped_binding(), skips0 + 1);
  EXPECT_EQ(engine_.frontier("any"), 10);
}

TEST_F(FrontierTest, BindingCacheSkipsNonBindingMinCells) {
  ASSERT_TRUE(engine_.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, n == 1 ? 3 : 10);
  EXPECT_EQ(engine_.frontier("all"), 3);
  uint64_t evals0 = engine_.predicate_evals();
  // Node 2 holds 10 > frontier 3: not the binding cell, raising it cannot
  // move the MIN.
  EXPECT_TRUE(engine_.on_ack(0, 2, 12));
  EXPECT_EQ(engine_.predicate_evals(), evals0);
  // The binding cell (node 1 at 3) advancing must re-evaluate.
  EXPECT_TRUE(engine_.on_ack(0, 1, 7));
  EXPECT_EQ(engine_.predicate_evals(), evals0 + 1);
  EXPECT_EQ(engine_.frontier("all"), 7);
}

TEST_F(FrontierTest, IndexFollowsChangePredicate) {
  ASSERT_TRUE(engine_.register_predicate("p", "MAX($AZ_Oregon)"));
  uint64_t evals0 = engine_.predicate_evals();
  engine_.on_ack(0, 1, 5);  // not Oregon: no dispatch
  EXPECT_EQ(engine_.predicate_evals(), evals0);
  ASSERT_TRUE(engine_.change_predicate("p", "MAX($AZ_North_Virginia)"));
  evals0 = engine_.predicate_evals();
  engine_.on_ack(0, 6, 50);  // Oregon: stale index would dispatch here
  EXPECT_EQ(engine_.predicate_evals(), evals0);
  engine_.on_ack(0, 2, 50);  // node 3 is in North Virginia
  EXPECT_GT(engine_.predicate_evals(), evals0);
  // Removal fully unlinks from the index (no dangling dispatch).
  ASSERT_TRUE(engine_.remove_predicate("p"));
  engine_.on_ack(0, 2, 60);
}

TEST_F(FrontierTest, BatchRoutesExtraToTheCarryingEntry) {
  // Regression for extra-byte routing: a batch carrying distinct extras for
  // different predicates must deliver each (frontier, extra) pair exactly
  // as the legacy per-entry path would.
  auto run = [&](FrontierEngine::DispatchMode mode,
                 bool batched) -> std::vector<std::pair<SeqNum, std::string>> {
    StabilityTypeRegistry types;
    FrontierEngine e(topo_, 0, types);
    e.set_dispatch_mode(mode);
    EXPECT_TRUE(e.register_predicate("va", "MAX($AZ_North_Virginia.verified)"));
    EXPECT_TRUE(e.register_predicate("or", "MAX($AZ_Oregon.verified)"));
    std::vector<std::pair<SeqNum, std::string>> fired;
    e.monitor("va", [&](SeqNum f, BytesView x) {
      fired.emplace_back(f, to_string(x));
    });
    e.monitor("or", [&](SeqNum f, BytesView x) {
      fired.emplace_back(f, to_string(x));
    });
    StabilityTypeId v = *types.find("verified");
    Bytes xa = to_bytes("alpha"), xb = to_bytes("beta");
    std::vector<AckUpdate> batch{
        AckUpdate{v, 2, 7, BytesView(xa)},   // node 3 (North Virginia) -> "va"
        AckUpdate{v, 6, 9, BytesView(xb)},   // node 7 (Oregon) -> "or"
    };
    if (batched) {
      e.on_ack_batch(batch);
    } else {
      for (const auto& u : batch) e.on_ack(u.type, u.node, u.seq, u.extra);
    }
    return fired;
  };
  auto legacy = run(FrontierEngine::DispatchMode::kLegacyScan, false);
  auto indexed = run(FrontierEngine::DispatchMode::kIndexed, true);
  ASSERT_EQ(legacy.size(), 2u);
  EXPECT_EQ(legacy[0], (std::pair<SeqNum, std::string>{7, "alpha"}));
  EXPECT_EQ(legacy[1], (std::pair<SeqNum, std::string>{9, "beta"}));
  EXPECT_EQ(indexed, legacy);
}

TEST_F(FrontierTest, BatchCoalescedExtraIsLastAdvancing) {
  // When several advancing reports for one predicate coalesce into a batch,
  // monitors fire once with the final frontier and the extra of the
  // highest-sequence report — the one that determined the coalesced MAX
  // frontier, i.e. the extra the legacy per-report path fires last.
  ASSERT_TRUE(engine_.register_predicate("any", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<std::pair<SeqNum, std::string>> fired;
  engine_.monitor("any", [&](SeqNum f, BytesView x) {
    fired.emplace_back(f, to_string(x));
  });
  Bytes x1 = to_bytes("one"), x2 = to_bytes("two"), x3 = to_bytes("three");
  std::vector<AckUpdate> batch{
      AckUpdate{0, 1, 5, BytesView(x1)},
      AckUpdate{0, 2, 9, BytesView(x2)},
      AckUpdate{0, 3, 2, BytesView(x3)},  // advances its cell, but seq 2 < 9
  };
  engine_.on_ack_batch(batch);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (std::pair<SeqNum, std::string>{9, "two"}));
}

// All three eval modes x both dispatch paths compute identical frontiers on
// random monotone batch streams.
TEST(FrontierProperty, EvalModesAndDispatchPathsAgree) {
  Topology topo = ec2_topology();
  const char* preds[] = {
      "MAX($ALLWNODES-$MYWNODE)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
      "KTH_MIN(2,($ALLWNODES-$MYWNODE))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "MIN(($ALLWNODES-$MYWNODE).persisted)",
  };
  struct Variant {
    dsl::EvalMode eval;
    FrontierEngine::DispatchMode dispatch;
    std::unique_ptr<StabilityTypeRegistry> types;
    std::unique_ptr<FrontierEngine> engine;
  };
  std::vector<Variant> variants;
  for (auto eval : {dsl::EvalMode::kInterpreter, dsl::EvalMode::kBytecode,
                    dsl::EvalMode::kSpecialized})
    for (auto dispatch : {FrontierEngine::DispatchMode::kLegacyScan,
                          FrontierEngine::DispatchMode::kIndexed}) {
      Variant v;
      v.eval = eval;
      v.dispatch = dispatch;
      v.types = std::make_unique<StabilityTypeRegistry>();
      v.engine = std::make_unique<FrontierEngine>(topo, 0, *v.types, eval);
      v.engine->set_dispatch_mode(dispatch);
      for (size_t i = 0; i < std::size(preds); ++i)
        ASSERT_TRUE(v.engine->register_predicate("p" + std::to_string(i),
                                                 preds[i]));
      variants.push_back(std::move(v));
    }

  Rng rng(4242);
  std::vector<std::vector<int64_t>> state(2, std::vector<int64_t>(8, kNoSeq));
  for (int step = 0; step < 400; ++step) {
    std::vector<AckUpdate> batch;
    size_t batch_size = 1 + rng.next_below(12);
    for (size_t i = 0; i < batch_size; ++i) {
      StabilityTypeId t = static_cast<StabilityTypeId>(rng.next_below(2));
      NodeId n = static_cast<NodeId>(rng.next_below(8));
      state[t][n] += rng.next_range(0, 3);
      batch.push_back(AckUpdate{t, n, state[t][n], {}});
    }
    for (auto& v : variants) v.engine->on_ack_batch(batch);
    for (size_t i = 0; i < std::size(preds); ++i) {
      std::string key = "p" + std::to_string(i);
      SeqNum expected = variants[0].engine->frontier(key);
      for (auto& v : variants)
        ASSERT_EQ(v.engine->frontier(key), expected)
            << key << " eval=" << static_cast<int>(v.eval)
            << " dispatch=" << static_cast<int>(v.dispatch)
            << " step=" << step;
    }
  }
}

// Property: under random monotone ack streams, every predicate frontier is
// non-decreasing and consistent with a from-scratch evaluation.
TEST(FrontierProperty, IncrementalMatchesFromScratch) {
  Topology topo = ec2_topology();
  for (uint64_t seed : {11u, 22u, 33u}) {
    StabilityTypeRegistry types;
    FrontierEngine engine(topo, 0, types);
    const char* preds[] = {
        "MAX($ALLWNODES-$MYWNODE)",
        "MIN($ALLWNODES-$MYWNODE)",
        "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
        "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
        "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
        "MIN(($ALLWNODES-$MYWNODE).persisted)",
    };
    std::vector<std::string> keys;
    for (size_t i = 0; i < std::size(preds); ++i) {
      keys.push_back("p" + std::to_string(i));
      ASSERT_TRUE(engine.register_predicate(keys.back(), preds[i]));
    }
    std::map<std::string, SeqNum> last;
    Rng rng(seed);
    std::vector<std::vector<int64_t>> state(
        2, std::vector<int64_t>(8, kNoSeq));  // types 0..1
    for (int step = 0; step < 1000; ++step) {
      StabilityTypeId t = static_cast<StabilityTypeId>(rng.next_below(2));
      NodeId n = static_cast<NodeId>(rng.next_below(8));
      state[t][n] += rng.next_range(0, 3);
      engine.on_ack(t, n, state[t][n]);
      for (const auto& key : keys) {
        SeqNum f = engine.frontier(key);
        auto it = last.find(key);
        if (it != last.end()) ASSERT_GE(f, it->second) << key;
        last[key] = f;
        // from-scratch check via a fresh eval of the same predicate
        ASSERT_EQ(f, engine.predicate(key)->eval(engine.acks())) << key;
      }
    }
  }
}

// --- pipelined-path primitives (DESIGN.md §4f) --------------------------------

TEST(StabilityTypes, FindFastMatchesFindAcrossRegistrations) {
  StabilityTypeRegistry reg;
  EXPECT_EQ(reg.find_fast("persisted"), StabilityTypeRegistry::kPersisted);
  EXPECT_FALSE(reg.find_fast("verified").has_value());
  StabilityTypeId id = reg.get_or_register("verified");
  // The new snapshot is visible immediately after get_or_register returns.
  ASSERT_TRUE(reg.find_fast("verified").has_value());
  EXPECT_EQ(*reg.find_fast("verified"), id);
  EXPECT_EQ(reg.find_fast("verified"), reg.find("verified"));
}

TEST(AckCellBlock, DrainCoalescesToFinalValue) {
  AckCellBlock block(2, 4);
  bool adv = false;
  EXPECT_FALSE(block.dirty());
  ASSERT_TRUE(block.offer(0, 1, 5, &adv));
  EXPECT_TRUE(adv);
  ASSERT_TRUE(block.offer(0, 1, 9, &adv));  // overwrites 5 in place
  EXPECT_TRUE(adv);
  ASSERT_TRUE(block.offer(0, 1, 7, &adv));  // regression: ignored
  EXPECT_FALSE(adv);
  EXPECT_TRUE(block.dirty());

  std::vector<std::tuple<StabilityTypeId, NodeId, SeqNum>> got;
  size_t n = block.drain(
      [&](StabilityTypeId t, NodeId node, SeqNum s) { got.emplace_back(t, node, s); });
  EXPECT_EQ(n, 1u);  // two advances coalesce into one emitted cell
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], std::make_tuple(StabilityTypeId(0), NodeId(1), SeqNum(9)));
  EXPECT_FALSE(block.dirty());
  // A second drain with no new offers emits nothing.
  EXPECT_EQ(block.drain([&](StabilityTypeId, NodeId, SeqNum) { FAIL(); }), 0u);
}

TEST(AckCellBlock, OutOfGridOffersRefused) {
  AckCellBlock block(2, 4);
  bool adv = true;
  EXPECT_FALSE(block.offer(2, 0, 1, &adv));  // type beyond grid
  EXPECT_FALSE(adv);
  EXPECT_FALSE(block.offer(0, 4, 1, &adv));  // node beyond grid
  EXPECT_FALSE(block.dirty());
}

TEST(AckCellBlock, ConcurrentOffersConvergeToMax) {
  AckCellBlock block(1, 2);
  constexpr int kPerThread = 20000;
  auto hammer = [&](NodeId node) {
    bool adv;
    for (int i = 1; i <= kPerThread; ++i) block.offer(0, node, i, &adv);
  };
  std::thread a([&] { hammer(0); });
  std::thread b([&] { hammer(1); });
  std::thread c([&] { hammer(0); });  // contends with `a` on the same cell
  a.join();
  b.join();
  c.join();
  std::vector<SeqNum> final(2, kNoSeq);
  block.drain([&](StabilityTypeId, NodeId n, SeqNum s) { final[n] = s; });
  EXPECT_EQ(final[0], kPerThread);
  EXPECT_EQ(final[1], kPerThread);
}

TEST(FrontierBoard, PublishReadUnpublish) {
  FrontierBoard board;
  EXPECT_FALSE(board.read("p").has_value());
  FrontierBoard::Slot* slot = board.publish("p", kNoSeq);
  ASSERT_NE(slot, nullptr);
  ASSERT_TRUE(board.read("p").has_value());
  EXPECT_EQ(*board.read("p"), kNoSeq);

  slot->frontier.store(42, std::memory_order_release);
  EXPECT_EQ(*board.read("p"), 42);

  // Re-publishing the same key reuses the slot (pointer stability).
  EXPECT_EQ(board.publish("p", 7), slot);
  EXPECT_EQ(*board.read("p"), 7);

  board.unpublish("p");
  EXPECT_FALSE(board.read("p").has_value());
  board.unpublish("p");  // idempotent
}

TEST(FrontierBoard, ReadersSurviveConcurrentRepublication) {
  FrontierBoard board;
  FrontierBoard::Slot* hot = board.publish("hot", 0);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> last_seen{0};
  std::thread reader([&] {
    int64_t prev = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto f = board.read("hot");
      ASSERT_TRUE(f.has_value());  // "hot" is never unpublished
      ASSERT_GE(*f, prev);         // monotone despite map churn
      prev = *f;
      last_seen.store(prev, std::memory_order_relaxed);
    }
  });
  // Writer: advance the hot slot while churning the map structure.
  for (int i = 1; i <= 2000; ++i) {
    hot->frontier.store(i, std::memory_order_release);
    std::string key = "k" + std::to_string(i % 17);
    if (i % 2 == 0)
      board.publish(key, i);
    else
      board.unpublish(key);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(*board.read("hot"), 2000);
}

TEST_F(FrontierTest, BoardTracksFrontierAndUnpublishesOnRemove) {
  ASSERT_TRUE(engine_.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  ASSERT_TRUE(engine_.board().read("all").has_value());
  EXPECT_EQ(*engine_.board().read("all"), kNoSeq);

  for (NodeId n = 1; n < 8; ++n) engine_.on_ack(0, n, 5);
  EXPECT_EQ(engine_.frontier("all"), 5);
  EXPECT_EQ(*engine_.board().read("all"), 5);  // published before monitors

  ASSERT_TRUE(engine_.change_predicate("all", "MAX($ALLWNODES-$MYWNODE)"));
  EXPECT_EQ(*engine_.board().read("all"), engine_.frontier("all"));

  ASSERT_TRUE(engine_.remove_predicate("all"));
  EXPECT_FALSE(engine_.board().read("all").has_value());
}

// --- CompositeFrontier (cross-shard min-combine, DESIGN.md §9) ----------------

TEST(CompositeFrontier, SnapshotReadsEveryBoardAndPadsMissingKeys) {
  FrontierBoard b0, b1, b2;
  b0.publish("k", 7);
  b2.publish("k", 3);  // b1 never publishes "k"
  control::CompositeFrontier cf({&b0, &b1, &b2});
  EXPECT_EQ(cf.num_shards(), 3u);
  EXPECT_EQ(cf.snapshot("k"), (control::ShardCut{7, kNoSeq, 3}));
  EXPECT_EQ(cf.combined("k"), kNoSeq);  // the unpublished shard dominates
  b1.publish("k", 5);
  EXPECT_EQ(cf.combined("k"), 3);
}

TEST(CompositeFrontier, CoversIsShardwiseWithVacuousSentinels) {
  using control::CompositeFrontier;
  using control::ShardCut;
  EXPECT_TRUE(CompositeFrontier::covers({5, 5}, {3, 5}));
  EXPECT_FALSE(CompositeFrontier::covers({5, 4}, {3, 5}));
  // kNoSeq cut entries impose nothing; kNoSeq frontiers satisfy nothing.
  EXPECT_TRUE(CompositeFrontier::covers({kNoSeq, 5}, {kNoSeq, 5}));
  EXPECT_FALSE(CompositeFrontier::covers({kNoSeq, 5}, {0, 5}));
  // Short vectors are kNoSeq-padded on both sides.
  EXPECT_TRUE(CompositeFrontier::covers({5}, {5, kNoSeq}));
  EXPECT_FALSE(CompositeFrontier::covers({5}, {5, 0}));
  EXPECT_TRUE(CompositeFrontier::covers({}, {}));
}

// Property: the combined frontier never exceeds any member shard's
// frontier, whatever the per-shard advance pattern.
TEST(CompositeFrontierProperty, CombinedNeverExceedsAnyMember) {
  Rng rng(0x5A4D);
  constexpr size_t kShards = 4;
  std::vector<std::unique_ptr<FrontierBoard>> boards;
  std::vector<const FrontierBoard*> views;
  std::vector<FrontierBoard::Slot*> slots;
  for (size_t s = 0; s < kShards; ++s) {
    boards.push_back(std::make_unique<FrontierBoard>());
    views.push_back(boards.back().get());
    slots.push_back(boards.back()->publish("k", kNoSeq));
  }
  control::CompositeFrontier cf(views);
  std::vector<SeqNum> truth(kShards, kNoSeq);
  for (int step = 0; step < 5000; ++step) {
    const size_t s = rng.next_below(kShards);
    truth[s] += static_cast<SeqNum>(1 + rng.next_below(3));
    slots[s]->frontier.store(truth[s], std::memory_order_release);
    const SeqNum combined = cf.combined("k");
    for (size_t m = 0; m < kShards; ++m)
      ASSERT_LE(combined, truth[m]) << "step " << step << " member " << m;
    ASSERT_EQ(combined, *std::min_element(truth.begin(), truth.end()));
  }
}

// Property: under concurrent per-shard advances the combined read is
// monotone — each board read is an atomic published lower bound, so the min
// over boards can only move forward. A reader thread min-combines while a
// writer advances shards in random order.
TEST(CompositeFrontierProperty, MonotoneUnderConcurrentAdvances) {
  constexpr size_t kShards = 3;
  std::vector<std::unique_ptr<FrontierBoard>> boards;
  std::vector<const FrontierBoard*> views;
  std::vector<FrontierBoard::Slot*> slots;
  for (size_t s = 0; s < kShards; ++s) {
    boards.push_back(std::make_unique<FrontierBoard>());
    views.push_back(boards.back().get());
    slots.push_back(boards.back()->publish("k", 0));
  }
  control::CompositeFrontier cf(views);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    SeqNum prev = kNoSeq;
    while (!stop.load(std::memory_order_relaxed)) {
      const SeqNum now = cf.combined("k");
      ASSERT_GE(now, prev) << "composite frontier regressed";
      prev = now;
    }
  });

  Rng rng(0xC0DE);
  std::vector<SeqNum> truth(kShards, 0);
  for (int step = 0; step < 20000; ++step) {
    const size_t s = rng.next_below(kShards);
    truth[s] += 1;
    slots[s]->frontier.store(truth[s], std::memory_order_release);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(cf.combined("k"),
            *std::min_element(truth.begin(), truth.end()));
}

// --- DeferredReporter -------------------------------------------------------

TEST(DeferredReporter, NoteIsMonotonicPerCell) {
  control::DeferredReporter d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.note(1, 0, 0, 0, 5));
  EXPECT_FALSE(d.note(1, 0, 0, 0, 5));  // duplicate
  EXPECT_FALSE(d.note(1, 0, 0, 0, 3));  // regression ignored
  EXPECT_TRUE(d.note(1, 0, 0, 0, 7));   // advance
  EXPECT_FALSE(d.empty());
  EXPECT_THROW(d.note(4, 0, 0, 0, 0), std::out_of_range);
}

TEST(DeferredReporter, DeltaAccountsSeqUnits) {
  control::DeferredReporter d(2);
  // First note of a cell at seq s counts s+1 units (seqs start at 0).
  d.note(0, 0, 1, 0, 9);
  EXPECT_EQ(d.pending_delta(), 10u);
  // An advance counts only the increment.
  d.note(0, 0, 1, 0, 14);
  EXPECT_EQ(d.pending_delta(), 15u);
  // A second cell accumulates independently.
  d.note(1, 0, 0, 2, 0);
  EXPECT_EQ(d.pending_delta(), 16u);
}

TEST(DeferredReporter, TakeFlushDrainsDeterministically) {
  control::DeferredReporter d(3);
  d.note(2, 7, 0, 1, 3);
  d.note(0, 1, 1, 0, 8);
  d.note(2, 7, 0, 0, 4);
  auto blocks = d.take_flush();
  ASSERT_EQ(blocks.size(), 2u);  // reporter order: 0 then 2
  EXPECT_EQ(blocks[0].reporter, 0u);
  EXPECT_EQ(blocks[0].primary_epoch, 1u);
  ASSERT_EQ(blocks[1].entries.size(), 2u);
  // Entries ordered by (about, type): (0,0) before (0,1).
  EXPECT_EQ(blocks[1].entries[0].type, 0u);
  EXPECT_EQ(blocks[1].entries[0].seq, 4);
  EXPECT_EQ(blocks[1].entries[1].type, 1u);
  EXPECT_EQ(blocks[1].entries[1].seq, 3);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.pending_delta(), 0u);
  EXPECT_TRUE(d.take_flush().empty());
}

TEST(DeferredReporter, ReNoteAfterFlushReEnters) {
  // Healing path: after a flush the vector is clear, so the heartbeat's
  // re-note of an unchanged seq must re-enter the pending set (re-emitting
  // the cumulative report covers a lost flush frame).
  control::DeferredReporter d(2);
  d.note(0, 0, 1, 0, 6);
  (void)d.take_flush();
  EXPECT_TRUE(d.note(0, 0, 1, 0, 6));
  auto blocks = d.take_flush();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].entries[0].seq, 6);
}

TEST(DeferredReporter, AbsorbMaxMerges) {
  control::DeferredReporter d(4);
  d.note(2, 3, 0, 0, 10);
  data::ReportBlock b;
  b.reporter = 2;
  b.primary_epoch = 5;
  b.entries.push_back(data::ReportEntry{0, 0, 8});   // behind, ignored
  b.entries.push_back(data::ReportEntry{0, 0, 12});  // ahead, wins
  b.entries.push_back(data::ReportEntry{1, 1, 2});   // new cell
  EXPECT_EQ(d.absorb(b), 2u);
  auto blocks = d.take_flush();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].primary_epoch, 5u);  // epoch max-merged too
  ASSERT_EQ(blocks[0].entries.size(), 2u);
  EXPECT_EQ(blocks[0].entries[0].seq, 12);
  EXPECT_EQ(blocks[0].entries[1].seq, 2);
}

}  // namespace
}  // namespace stab
