// Integration tests for the Stabilizer core over the deterministic
// simulator: end-to-end delivery, predicate frontiers, waitfor timing,
// origin rule, custom stability levels, reconfiguration, buffer reclamation,
// fault injection with retransmission, and real-time blocking waits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "core/stabilizer.hpp"
#include "net/inproc_transport.hpp"
#include "net/sim_transport.hpp"

namespace stab {
namespace {

/// An n-node Stabilizer cluster on the simulator.
struct SimFixture {
  explicit SimFixture(Topology topo, StabilizerOptions base = {}) {
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      StabilizerOptions opts = base;
      opts.topology = topo;
      opts.self = n;
      nodes.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
    }
  }
  Stabilizer& node(NodeId n) { return *nodes.at(n); }

  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
};

Topology tiny_topology(size_t n, double lat_ms = 10, double bw_mbps = 0) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i), i == 0 ? "az0" : "az1");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  s.bandwidth_bps = bw_mbps > 0 ? mbps(bw_mbps) : 0;
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

TEST(Core, DeliversToAllPeersInOrder) {
  SimFixture f(tiny_topology(3));
  std::map<NodeId, std::vector<std::string>> got;
  for (NodeId n = 1; n < 3; ++n)
    f.node(n).set_delivery_handler(
        [&, n](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
          EXPECT_EQ(origin, 0u);
          EXPECT_EQ(seq, static_cast<SeqNum>(got[n].size()));
          got[n].push_back(to_string(payload));
        });
  f.node(0).send(to_bytes("one"));
  f.node(0).send(to_bytes("two"));
  f.sim.run();
  EXPECT_EQ(got[1], (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(got[2], (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(f.node(1).delivered_through(0), 1);
}

TEST(Core, SequenceNumbersAreDense) {
  SimFixture f(tiny_topology(2));
  EXPECT_EQ(f.node(0).send(to_bytes("a")), 0);
  EXPECT_EQ(f.node(0).send(to_bytes("b")), 1);
  EXPECT_EQ(f.node(0).last_sent(), 1);
}

TEST(Core, FrontierAdvancesViaAcks) {
  SimFixture f(tiny_topology(3, /*lat_ms=*/10));
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = f.node(0).send(to_bytes("x"));
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), kNoSeq);
  f.sim.run();
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), seq);
}

TEST(Core, WaitforFiresAtRoundTripPlusAckDelay) {
  // one-way 10ms, ack_interval 2ms: frontier at sender ≈ 10 (data) + ≤2
  // (ack batching) + 10 (ack return) ms.
  SimFixture f(tiny_topology(2, 10));
  ASSERT_TRUE(f.node(0).register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  SeqNum seq = f.node(0).send(to_bytes("x"));
  TimePoint fired_at = kTimeZero;
  ASSERT_TRUE(f.node(0).waitfor(seq, "one",
                                [&](SeqNum) { fired_at = f.sim.now(); }));
  f.sim.run();
  EXPECT_GE(to_ms(fired_at), 20.0);
  EXPECT_LE(to_ms(fired_at), 23.0);
}

TEST(Core, OriginRuleSelfHasAllProperties) {
  SimFixture f(tiny_topology(3));
  ASSERT_TRUE(f.node(0).register_predicate(
      "self_verified", "MIN($MYWNODE.verified)"));
  SeqNum seq = f.node(0).send(to_bytes("x"));
  // No network round-trip needed: origin has every property immediately.
  EXPECT_EQ(f.node(0).get_stability_frontier("self_verified"), seq);
}

TEST(Core, BroadcastAcksLetEveryNodeEvaluate) {
  SimFixture f(tiny_topology(3));
  // Register at node 2 a predicate about node 0's stream.
  ASSERT_TRUE(f.node(2).register_predicate("all", "MIN($ALLWNODES)"));
  f.node(0).send(to_bytes("x"));
  f.sim.run();
  // Node 2 observes that everyone (including node 1) received seq 0 of
  // node 0's stream.
  EXPECT_EQ(f.node(2).get_stability_frontier("all", /*origin=*/0), 0);
}

TEST(Core, MonitorStreamsFrontiers) {
  SimFixture f(tiny_topology(2));
  ASSERT_TRUE(f.node(0).register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  std::vector<SeqNum> fronts;
  ASSERT_TRUE(f.node(0).monitor_stability_frontier(
      "one", [&](SeqNum s, BytesView) { fronts.push_back(s); }));
  for (int i = 0; i < 5; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run();
  ASSERT_FALSE(fronts.empty());
  EXPECT_EQ(fronts.back(), 4);
  for (size_t i = 1; i < fronts.size(); ++i) EXPECT_GT(fronts[i], fronts[i - 1]);
}

TEST(Core, AckBatchingCoalesces) {
  // 100 messages sent back-to-back: receiver acks must be far fewer than
  // 100 thanks to monotonic coalescing.
  SimFixture f(tiny_topology(2, 5));
  for (int i = 0; i < 100; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run();
  // Registry-backed stats read zero when the obs layer is compiled out
  // (-DSTAB_OBS=OFF), so stats introspection is gated; the semantic
  // assertions around it run in every build flavor.
#if STAB_OBS_ENABLED
  EXPECT_EQ(f.node(1).stats().messages_delivered, 100u);
  EXPECT_LT(f.node(1).stats().ack_batches_sent, 30u);
#endif
  // ... and the sender still learned the final frontier exactly.
  EXPECT_EQ(f.node(0)
                .engine()
                .acks()
                .get(StabilityTypeRegistry::kReceived, 1),
            99);
}

TEST(Core, SendBufferReclaimedAfterGlobalReceipt) {
  SimFixture f(tiny_topology(3));
  f.node(0).send(to_bytes("payload"));
  EXPECT_GT(f.node(0).send_buffer_bytes(), 0u);
  f.sim.run();
  EXPECT_EQ(f.node(0).send_buffer_bytes(), 0u);
}

TEST(Core, ExcludedPeerDoesNotBlockReclaim) {
  SimFixture f(tiny_topology(3));
  f.cluster->network().set_node_up(2, false);  // node 2 crashes
  f.node(0).send(to_bytes("x"));
  f.sim.run();
  EXPECT_GT(f.node(0).send_buffer_bytes(), 0u);  // pinned by dead node 2
  f.node(0).set_peer_excluded(2, true);
  EXPECT_EQ(f.node(0).send_buffer_bytes(), 0u);
  EXPECT_TRUE(f.node(0).peer_excluded(2));
}

TEST(Core, PredicatesReferencingAidsFaultHandling) {
  SimFixture f(tiny_topology(4));
  f.node(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)");
  f.node(0).register_predicate("n2only", "MAX($3)");  // node index 3 = id 2
  f.node(0).register_predicate("n1only", "MAX($2)");
  auto keys = f.node(0).predicates_referencing(2);
  EXPECT_EQ(keys, (std::vector<std::string>{"all", "n2only"}));
}

TEST(Core, ChangePredicateMidStream) {
  SimFixture f(tiny_topology(4, 10));
  f.cluster->network().set_node_up(3, false);  // slowest/never acks
  ASSERT_TRUE(f.node(0).register_predicate("p", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = f.node(0).send(to_bytes("x"));
  f.sim.run();
  EXPECT_EQ(f.node(0).get_stability_frontier("p"), kNoSeq);  // node 3 missing
  // Reconfigure to exclude the dead node (the §VI-D mechanism).
  ASSERT_TRUE(f.node(0).change_predicate("p", "MIN($ALLWNODES-$MYWNODE-$4)"));
  EXPECT_EQ(f.node(0).get_stability_frontier("p"), seq);
}

TEST(Core, CustomStabilityLevelRoundTrip) {
  SimFixture f(tiny_topology(2, 10));
  ASSERT_TRUE(f.node(0).register_predicate(
      "ver", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  f.node(1).register_predicate("ver", "MIN(($ALLWNODES-$MYWNODE).verified)");

  SeqNum seq = f.node(0).send(to_bytes("x"));
  std::string extra_seen;
  f.node(0).monitor_stability_frontier(
      "ver", [&](SeqNum, BytesView extra) { extra_seen = to_string(extra); });

  // Node 1 verifies the message after delivery.
  f.node(1).set_delivery_handler(
      [&](NodeId origin, SeqNum s, BytesView, uint64_t) {
        f.node(1).report_stability("verified", origin, s, to_bytes("sig"));
      });
  f.sim.run();
  EXPECT_EQ(f.node(0).get_stability_frontier("ver"), seq);
  EXPECT_EQ(extra_seen, "sig");
}

TEST(Core, SendLargeSplitsAtEightKb) {
  SimFixture f(tiny_topology(2));
  Bytes big(20 * 1024, 0xab);
  auto [first, last] = f.node(0).send_large(big);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 2);  // 20 KB -> 3 chunks of <= 8 KB

  std::vector<size_t> sizes;
  Bytes reassembled;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum, BytesView payload, uint64_t) {
        sizes.push_back(payload.size());
        reassembled.insert(reassembled.end(), payload.begin(), payload.end());
      });
  f.sim.run();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 8192u);
  EXPECT_EQ(sizes[2], 20u * 1024 - 2 * 8192);
  EXPECT_EQ(reassembled, big);
}

TEST(Core, SendLargeVirtualPadding) {
  SimFixture f(tiny_topology(2));
  // 1 KB of real manifest + 100 KB virtual: 13 chunks, bandwidth charged
  // for the padding but no bytes materialized.
  Bytes manifest(1024, 1);
  auto [first, last] = f.node(0).send_large(manifest, 100 * 1024);
  EXPECT_EQ(last - first + 1, (1 + 100 + 7) / 8);
  uint64_t wire_total = 0;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum, BytesView, uint64_t wire) { wire_total += wire; });
  f.sim.run();
  EXPECT_GE(wire_total, 101u * 1024);
}

TEST(Core, MultipleConcurrentStreams) {
  SimFixture f(tiny_topology(3, 5));
  for (NodeId n = 0; n < 3; ++n)
    f.node(n).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)");
  f.node(0).send(to_bytes("from0"));
  f.node(1).send(to_bytes("from1"));
  f.node(2).send(to_bytes("from2"));
  f.sim.run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(f.node(n).get_stability_frontier("all"), 0) << n;
    for (NodeId o = 0; o < 3; ++o)
      if (o != n) EXPECT_EQ(f.node(n).delivered_through(o), 0);
  }
}

TEST(Core, LossyLinkRecoveredByRetransmission) {
  Topology topo = tiny_topology(2, 5);
  StabilizerOptions base;
  base.retransmit_timeout = millis(50);
  SimFixture f(topo, base);
  f.cluster->network().set_drop_probability(0, 1, 0.3);
  f.cluster->network().set_drop_rng_seed(1234);

  std::vector<SeqNum> delivered;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum seq, BytesView, uint64_t) {
        delivered.push_back(seq);
      });
  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run_until(seconds(60));

  ASSERT_EQ(delivered.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(delivered[i], i);
#if STAB_OBS_ENABLED
  EXPECT_GT(f.node(0).stats().retransmits_sent, 0u);
#endif
  EXPECT_EQ(f.node(1).delivered_through(0), kCount - 1);
}

TEST(Core, LossyBothDirectionsStillConverges) {
  Topology topo = tiny_topology(3, 2);
  StabilizerOptions base;
  base.retransmit_timeout = millis(20);
  SimFixture f(topo, base);
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      if (a != b) f.cluster->network().set_drop_probability(a, b, 0.2);
  f.cluster->network().set_drop_rng_seed(77);

  f.node(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)");
  const int kCount = 50;
  for (int i = 0; i < kCount; ++i) f.node(0).send(to_bytes("m"));
  bool ok = f.sim.run_until_pred(
      [&] { return f.node(0).get_stability_frontier("all") == kCount - 1; },
      seconds(120));
  EXPECT_TRUE(ok) << "frontier stuck at "
                  << f.node(0).get_stability_frontier("all");
}

TEST(Core, EncodeOncePerBroadcastEvenUnderRetransmission) {
  // The data-plane fast path's core invariant: a 5-node broadcast encodes
  // each message exactly once (the legacy path paid N-1 = 4), and go-back-N
  // retransmits reuse the cached frame instead of re-encoding.
  Topology topo = tiny_topology(5, 5);
  StabilizerOptions base;
  base.retransmit_timeout = millis(50);
  SimFixture f(topo, base);
  for (NodeId peer = 1; peer < 5; ++peer)
    f.cluster->network().set_drop_probability(0, peer, 0.25);
  f.cluster->network().set_drop_rng_seed(4242);

  const int kCount = 100;
  for (int i = 0; i < kCount; ++i) f.node(0).send(to_bytes("msg"));
  bool ok = f.sim.run_until_pred(
      [&] {
        for (NodeId peer = 1; peer < 5; ++peer)
          if (f.node(peer).delivered_through(0) != kCount - 1) return false;
        return true;
      },
      seconds(120));
  ASSERT_TRUE(ok);

#if STAB_OBS_ENABLED
  StabilizerStats s = f.node(0).stats();
  EXPECT_GT(s.retransmits_sent, 0u);  // the lossy links forced re-sends
  EXPECT_GT(s.frames_transmitted, static_cast<uint64_t>(kCount) * 4);
  EXPECT_EQ(s.data_encodes, static_cast<uint64_t>(kCount));
  EXPECT_EQ(s.fanout_bytes_copied, 0u);
  EXPECT_GE(s.shared_sends, s.frames_transmitted);  // data + acks, all shared
#endif
}

TEST(Core, LegacyDataPathReencodesPerPeer) {
  // The kLegacy toggle preserves the pre-fast-path cost model: one encode
  // and one full frame copy per destination.
  StabilizerOptions base;
  base.data_path = StabilizerOptions::DataPath::kLegacy;
  SimFixture f(tiny_topology(5, 5), base);
  const int kCount = 20;
  for (int i = 0; i < kCount; ++i) f.node(0).send(to_bytes("msg"));
  f.sim.run();

#if STAB_OBS_ENABLED
  StabilizerStats s = f.node(0).stats();
  EXPECT_EQ(s.data_encodes, static_cast<uint64_t>(kCount) * 4);
  EXPECT_GT(s.fanout_bytes_copied, 0u);
#endif
  for (NodeId peer = 1; peer < 5; ++peer)
    EXPECT_EQ(f.node(peer).delivered_through(0), kCount - 1);
}

TEST(Core, CoalescingPreservesFifoAndFrontiers) {
  // A burst of small sends coalesces into DATABATCH frames; receivers must
  // see the identical per-message stream (FIFO order, dense seqs, same
  // frontier convergence).
  StabilizerOptions base;
  base.coalesce_max_frames = 16;
  SimFixture f(tiny_topology(3, 5), base);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  std::map<NodeId, std::vector<SeqNum>> got;
  for (NodeId n = 1; n < 3; ++n)
    f.node(n).set_delivery_handler(
        [&, n](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
          EXPECT_EQ(origin, 0u);
          EXPECT_EQ(to_string(payload), "m" + std::to_string(seq));
          got[n].push_back(seq);
        });

  const int kCount = 100;
  for (int i = 0; i < kCount; ++i)
    f.node(0).send(to_bytes("m" + std::to_string(i)));
  f.sim.run();

  for (NodeId n = 1; n < 3; ++n) {
    ASSERT_EQ(got[n].size(), static_cast<size_t>(kCount));
    for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[n][i], i);
  }
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), kCount - 1);

#if STAB_OBS_ENABLED
  StabilizerStats s = f.node(0).stats();
  // The burst was sent in one event-loop turn, so nearly everything rode in
  // batches; per-message accounting is unchanged.
  EXPECT_GT(s.frames_coalesced, static_cast<uint64_t>(kCount));
  EXPECT_EQ(s.frames_transmitted, static_cast<uint64_t>(kCount) * 2);
  // Far fewer encodes than messages: batches of up to 16, each encoded once
  // for both peers.
  EXPECT_LT(s.data_encodes, static_cast<uint64_t>(kCount) / 2);
#endif
}

TEST(Core, CoalescingRespectsByteBoundAndLargePayloads) {
  // Messages too large for the batch byte budget ride alone, interleaved
  // with coalesced small ones, preserving order.
  StabilizerOptions base;
  base.coalesce_max_frames = 32;
  base.coalesce_max_bytes = 2048;
  SimFixture f(tiny_topology(2, 5), base);
  std::vector<size_t> sizes;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum, BytesView payload, uint64_t) {
        sizes.push_back(payload.size());
      });
  for (int i = 0; i < 30; ++i) {
    f.node(0).send(Bytes(64));           // coalescable
    if (i % 10 == 9) f.node(0).send(Bytes(4096));  // rides alone
  }
  f.sim.run();
  ASSERT_EQ(sizes.size(), 33u);
  size_t big_seen = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 4096) ++big_seen;
  }
  EXPECT_EQ(big_seen, 3u);
#if STAB_OBS_ENABLED
  StabilizerStats s = f.node(0).stats();
  EXPECT_GT(s.frames_coalesced, 0u);
  EXPECT_EQ(s.frames_transmitted, 33u);
#endif
}

TEST(Core, SendWindowLimitsInFlight) {
  StabilizerOptions base;
  base.send_window = 4;
  SimFixture f(tiny_topology(2, 10), base);
  for (int i = 0; i < 20; ++i) f.node(0).send(to_bytes("m"));
  // Only the window's worth of frames may be on the wire before any ack.
#if STAB_OBS_ENABLED
  EXPECT_EQ(f.node(0).stats().frames_transmitted, 4u);
#endif
  // As acks flow back the rest drain; everything is delivered in order.
  std::vector<SeqNum> got;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum seq, BytesView, uint64_t) { got.push_back(seq); });
  f.sim.run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[i], i);
#if STAB_OBS_ENABLED
  EXPECT_EQ(f.node(0).stats().frames_transmitted, 20u);
#endif
}

TEST(Core, SendWindowIsPerPeer) {
  // A dead peer's full window must not stop the healthy peer's flow.
  StabilizerOptions base;
  base.send_window = 2;
  SimFixture f(tiny_topology(3, 5), base);
  f.cluster->network().set_node_up(2, false);
  size_t delivered = 0;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum, BytesView, uint64_t) { ++delivered; });
  for (int i = 0; i < 10; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run();
  EXPECT_EQ(delivered, 10u);  // node 1 got everything
  // Node 0 transmitted all 10 DATA frames to node 1 but only the 2-message
  // window toward the dead node 2 (dropped frames also include ack batches
  // aimed at node 2, so count transmissions, not drops).
#if STAB_OBS_ENABLED
  EXPECT_EQ(f.node(0).stats().frames_transmitted, 12u);
#endif
}

TEST(Core, WindowedAndUnwindowedDeliverIdentically) {
  for (size_t window : {0u, 1u, 3u, 16u}) {
    StabilizerOptions base;
    base.send_window = window;
    SimFixture f(tiny_topology(3, 7), base);
    std::vector<SeqNum> got;
    f.node(2).set_delivery_handler(
        [&](NodeId, SeqNum seq, BytesView, uint64_t) { got.push_back(seq); });
    for (int i = 0; i < 30; ++i) f.node(0).send(to_bytes("x"));
    f.sim.run();
    ASSERT_EQ(got.size(), 30u) << "window " << window;
    for (int i = 0; i < 30; ++i) EXPECT_EQ(got[i], i);
  }
}

#if STAB_OBS_ENABLED
TEST(Core, StatsAreCoherent) {
  SimFixture f(tiny_topology(3));
  for (int i = 0; i < 10; ++i) f.node(0).send(to_bytes("x"));
  f.sim.run();
  const auto& st = f.node(0).stats();
  EXPECT_EQ(st.messages_sent, 10u);
  EXPECT_EQ(st.frames_transmitted, 20u);  // 10 msgs x 2 peers
  EXPECT_EQ(f.node(1).stats().messages_delivered, 10u);
  EXPECT_GT(st.ack_entries_applied, 0u);
}
#endif  // STAB_OBS_ENABLED

TEST(Core, SendLargeEdgeCases) {
  SimFixture f(tiny_topology(2));
  // Exact multiple of the split size: no ragged tail chunk.
  Bytes exact(16 * 1024, 1);
  auto [f1, l1] = f.node(0).send_large(exact);
  EXPECT_EQ(l1 - f1 + 1, 2);
  // Empty payload still produces one (empty) message.
  auto [f2, l2] = f.node(0).send_large({});
  EXPECT_EQ(f2, l2);
  std::vector<size_t> sizes;
  f.node(1).set_delivery_handler(
      [&](NodeId, SeqNum, BytesView p, uint64_t) { sizes.push_back(p.size()); });
  f.sim.run();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 8192u);
  EXPECT_EQ(sizes[1], 8192u);
  EXPECT_EQ(sizes[2], 0u);
}

TEST(Core, SingleNodeClusterIsTriviallyStable) {
  Topology topo;
  topo.add_node("solo", "az");
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer node(opts, cluster.transport(0));
  ASSERT_TRUE(node.register_predicate("all", "MIN($ALLWNODES)"));
  SeqNum seq = node.send(to_bytes("solo"));
  // Origin rule: instantly stable; buffer instantly reclaimed.
  EXPECT_EQ(node.get_stability_frontier("all"), seq);
  EXPECT_EQ(node.send_buffer_bytes(), 0u);
}

TEST(Core, WaitforBeforeAnySendFiresImmediately) {
  SimFixture f(tiny_topology(2));
  ASSERT_TRUE(f.node(0).register_predicate("one", "MAX($ALLWNODES)"));
  // Frontier starts at kNoSeq; waiting for kNoSeq is already satisfied.
  int fired = 0;
  ASSERT_TRUE(f.node(0).waitfor(kNoSeq, "one", [&](SeqNum) { ++fired; }));
  EXPECT_EQ(fired, 1);
}

TEST(Core, SendRawValidatesKindSpace) {
  SimFixture f(tiny_topology(2));
  EXPECT_THROW(f.node(0).send_raw(1, Bytes{0x01}), std::invalid_argument);
  f.node(0).send_raw(1, Bytes{0x41});  // application space: fine
}

TEST(Core, ErrorsPropagate) {
  SimFixture f(tiny_topology(2));
  EXPECT_FALSE(f.node(0).register_predicate("bad", "NOPE($1)").is_ok());
  EXPECT_FALSE(f.node(0).change_predicate("missing", "MAX($1)").is_ok());
  EXPECT_FALSE(f.node(0)
                   .monitor_stability_frontier("missing",
                                               [](SeqNum, BytesView) {})
                   .is_ok());
  EXPECT_FALSE(
      f.node(0).waitfor(1, "missing", [](SeqNum) {}).is_ok());
  EXPECT_EQ(f.node(0).get_stability_frontier("missing"), kNoSeq);
}

// --- real-time (in-process) ----------------------------------------------------

TEST(CoreRealtime, BlockingWaitforOverInProc) {
  Topology topo = tiny_topology(3, 1);
  InProcCluster cluster(3, &topo);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.ack_interval = millis(1);
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  ASSERT_TRUE(nodes[0]->register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = nodes[0]->send(to_bytes("rt"));
  EXPECT_TRUE(nodes[0]->waitfor_blocking(seq, "all", seconds(10)));
  EXPECT_EQ(nodes[0]->get_stability_frontier("all"), seq);
  nodes.clear();
  cluster.shutdown();
}

// --- re-entrant callback paths (why the API mutex is recursive) ---------------

TEST(Core, ReentrantDeliveryHandlerCallsBackIn) {
  // The delivery upcall runs under the API lock; applications (e.g. the
  // backup service) call report_stability / send / get_stability_frontier
  // from it. A non-recursive mutex would deadlock here.
  SimFixture f(tiny_topology(3));
  ASSERT_TRUE(f.node(1).register_predicate(
      "ver", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  int delivered = 0;
  f.node(1).set_delivery_handler(
      [&](NodeId origin, SeqNum seq, BytesView, uint64_t) {
        ++delivered;
        f.node(1).report_stability("verified", origin, seq, to_bytes("ok"));
        f.node(1).get_stability_frontier("ver", origin);
        if (delivered == 1) f.node(1).send(to_bytes("echo"));
      });
  f.node(0).send(to_bytes("a"));
  f.node(0).send(to_bytes("b"));
  f.sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(f.node(1).last_sent(), 0);  // the echo went out
}

TEST(Core, ReentrantMonitorCallsBackIn) {
  // Monitor and waitfor callbacks fire under the lock from the control
  // plane's batch apply; frontier-chasing state machines re-enter the API.
  SimFixture f(tiny_topology(3));
  Stabilizer& s = f.node(0);
  ASSERT_TRUE(s.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  int monitor_fired = 0, waiter_fired = 0;
  ASSERT_TRUE(s.monitor_stability_frontier("all", [&](SeqNum f_, BytesView) {
    ++monitor_fired;
    EXPECT_EQ(s.get_stability_frontier("all"), f_);
    s.waitfor(f_, "all", [&](SeqNum) { ++waiter_fired; });  // re-entrant
    if (monitor_fired == 1) s.send(to_bytes("chained"));    // nested batch
  }));
  s.send(to_bytes("x"));
  f.sim.run();
  EXPECT_GE(monitor_fired, 2);  // original + chained send both stabilized
  EXPECT_EQ(waiter_fired, monitor_fired);  // already-covered fires inline
}

TEST(Core, StatsExposeControlPlaneEvalCounters) {
  SimFixture f(tiny_topology(3));
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)"));
  ASSERT_TRUE(f.node(0).register_predicate("one", "MAX($1)"));
  for (int i = 0; i < 20; ++i) f.node(0).send(to_bytes("m"));
  f.sim.run();
  StabilizerStats st = f.node(0).stats();
  EXPECT_GT(st.predicate_evals, 0u);
  // "one" references only node 1's cell: every report about other nodes is
  // index-skipped for it.
  EXPECT_GT(st.evals_skipped_index, 0u);
  // MAX predicates bound by the frontier skip provably no-op evals.
  EXPECT_GT(st.evals_skipped_binding, 0u);
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), 19);
}

TEST(CoreRealtime, BlockingWaitforTimesOut) {
  Topology topo = tiny_topology(2, 1);
  InProcCluster cluster(2, &topo);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer node0(opts, cluster.transport(0));
  // No Stabilizer on node 1: acks never come back.
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = node0.send(to_bytes("x"));
  EXPECT_FALSE(node0.waitfor_blocking(seq, "all", millis(100)));
}

TEST(CoreRealtime, TimedOutWaitDuringPartitionNeverCompletesLater) {
  Topology topo = tiny_topology(2, 1);
  InProcCluster cluster(2, &topo);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  opts.ack_interval = millis(1);
  opts.retransmit_timeout = millis(20);
  Stabilizer node0(opts, cluster.transport(0));
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  // Node 1 is unreachable ("partitioned": nothing consumes its frames), so
  // the wait can only end by timeout.
  SeqNum seq = node0.send(to_bytes("x"));
  EXPECT_FALSE(node0.waitfor_blocking(seq, "all", millis(100)));

  // The partition heals: node 1 appears, go-back-N delivers the message,
  // the frontier advances past seq. The timed-out call's internal waiter
  // now fires against its own kept-alive state — it must neither crash nor
  // complete anything a second time, and fresh waits keep working.
  StabilizerOptions opts1 = opts;
  opts1.self = 1;
  Stabilizer node1(opts1, cluster.transport(1));
  EXPECT_TRUE(node0.waitfor_blocking(seq, "all", seconds(10)));
  EXPECT_GE(node0.get_stability_frontier("all"), seq);
}

TEST(CoreRealtime, RemovePredicateFailsBlockedWaitPromptly) {
  Topology topo = tiny_topology(2, 1);
  InProcCluster cluster(2, &topo);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer node0(opts, cluster.transport(0));
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = node0.send(to_bytes("x"));  // never stabilizes: peer absent

  std::atomic<bool> result{true};
  std::thread waiter(
      [&] { result = node0.waitfor_blocking(seq, "all", seconds(30)); });
  // Let the waiter register, then pull the predicate out from under it:
  // the pending waiter fails with kNoSeq, which waitfor_blocking must
  // report as false (not as "stabilized") — and immediately, not after the
  // 30 s timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(node0.remove_predicate("all"));
  waiter.join();
  EXPECT_FALSE(result);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_FALSE(node0.has_predicate("all"));
  // The key is gone for the timeout path too: a new wait fails fast.
  EXPECT_FALSE(node0.waitfor_blocking(seq, "all", seconds(30)));
}

// waitfor_blocking collapses every failure to `false`; the status-returning
// overload distinguishes covered / timeout / unsatisfiable / fenced.
TEST(CoreRealtime, BlockingWaitStatusDistinguishesOutcomes) {
  using WaitStatus = Stabilizer::WaitStatus;
  Topology topo = tiny_topology(2, 1);
  InProcCluster cluster(2, &topo);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  opts.ack_interval = millis(1);
  opts.retransmit_timeout = millis(20);  // heal leg: go-back-N redelivers
  Stabilizer node0(opts, cluster.transport(0));
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));

  // Peer absent: the frontier cannot advance -> kTimeout (retriable).
  SeqNum seq = node0.send(to_bytes("x"));
  EXPECT_EQ(node0.waitfor_blocking_status(seq, "all", millis(100)),
            WaitStatus::kTimeout);
  // Unknown key: unsatisfiable, immediately -> kNoSeq.
  EXPECT_EQ(node0.waitfor_blocking_status(seq, "nokey", seconds(30)),
            WaitStatus::kNoSeq);

  // Peer appears: the wait completes -> kOk.
  StabilizerOptions opts1 = opts;
  opts1.self = 1;
  Stabilizer node1(opts1, cluster.transport(1));
  EXPECT_EQ(node0.waitfor_blocking_status(seq, "all", seconds(10)),
            WaitStatus::kOk);

  // §III-E adjust: the predicate removed under a parked waiter -> kNoSeq.
  SeqNum far = node0.send(to_bytes("y")) + 1000;  // unreachable target
  std::atomic<WaitStatus> removed{WaitStatus::kOk};
  std::thread remove_waiter([&] {
    removed = node0.waitfor_blocking_status(far, "all", seconds(30));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(node0.remove_predicate("all"));
  remove_waiter.join();
  EXPECT_EQ(removed.load(), WaitStatus::kNoSeq);

  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  // Failover fencing: node 0 is deposed as its own stream's primary while a
  // waiter is parked -> the waiter fails with kFenced (never hangs).
  std::atomic<WaitStatus> fenced{WaitStatus::kOk};
  std::thread fence_waiter([&] {
    fenced = node0.waitfor_blocking_status(far, "all", seconds(30));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(node0.observe_takeover(/*origin=*/0, /*new_primary=*/1,
                                     /*epoch=*/1, kNoSeq)
                  .is_ok());
  fence_waiter.join();
  EXPECT_EQ(fenced.load(), WaitStatus::kFenced);
  EXPECT_TRUE(node0.self_fenced());
  // Post-fence waits on the dead sequence space fail fast with the same
  // status, and send() refuses outright.
  EXPECT_EQ(node0.waitfor_blocking_status(far, "all", seconds(30)),
            WaitStatus::kFenced);
  EXPECT_EQ(node0.send(to_bytes("z")), kFencedSeq);
}

}  // namespace
}  // namespace stab
