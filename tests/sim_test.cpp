// Unit and property tests for the deterministic simulator and the simulated
// WAN (latency, bandwidth pipes, FIFO, fault injection).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace stab::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), kTimeZero);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_after(millis(30), [&] { order.push_back(3); });
  s.schedule_after(millis(10), [&] { order.push_back(1); });
  s.schedule_after(millis(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), millis(30));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_after(millis(5), [&, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<int> order;
  s.schedule_after(millis(10), [&] {
    order.push_back(1);
    s.schedule_after(millis(10), [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), millis(20));
}

TEST(Simulator, CancelRemovesEvent) {
  Simulator s;
  int fired = 0;
  TimerId id = s.schedule_after(millis(10), [&] { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  int fired = 0;
  TimerId id = s.schedule_after(millis(10), [&] { ++fired; });
  s.run();
  s.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockPastQuietPeriod) {
  Simulator s;
  int fired = 0;
  s.schedule_after(millis(10), [&] { ++fired; });
  s.run_until(millis(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), millis(500));
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_after(millis(100), [&] { ++fired; });
  s.run_until(millis(50));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilPred) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    s.schedule_after(millis(i * 10), [&] { ++count; });
  bool ok = s.run_until_pred([&] { return count >= 5; }, millis(10000));
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, RunUntilPredDeadline) {
  Simulator s;
  bool never = false;
  s.schedule_after(seconds(100), [&] { never = true; });
  bool ok = s.run_until_pred([&] { return never; }, seconds(1));
  EXPECT_FALSE(ok);
}

TEST(Simulator, SchedulingInPastClampsToNow) {
  Simulator s;
  s.schedule_after(millis(10), [&] {
    // negative delay must not rewind the clock
    s.schedule_after(millis(-5), [] {});
  });
  s.run();
  EXPECT_EQ(s.now(), millis(10));
}

// --- SimNetwork -------------------------------------------------------------

struct Delivery {
  NodeId src;
  TimePoint at;
  Bytes frame;
};

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : net_(sim_, 3) {
    for (NodeId n = 0; n < 3; ++n) {
      net_.set_delivery_handler(n, [this, n](NodeId src, BytesView f, uint64_t) {
        got_[n].push_back(Delivery{src, sim_.now(), Bytes(f.begin(), f.end())});
      });
    }
  }
  Simulator sim_;
  SimNetwork net_;
  std::vector<Delivery> got_[3];
};

TEST_F(SimNetworkTest, LatencyOnlyDelivery) {
  LinkParams p;
  p.latency = millis(10);
  net_.set_link(0, 1, p);
  net_.send(0, 1, to_bytes("hi"));
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  EXPECT_EQ(got_[1][0].at, millis(10));
  EXPECT_EQ(to_string(got_[1][0].frame), "hi");
}

TEST_F(SimNetworkTest, BandwidthAddsTransmitTime) {
  LinkParams p;
  p.latency = millis(10);
  p.bandwidth_bps = 8e6;  // 1 MB/s
  net_.set_link(0, 1, p);
  net_.send(0, 1, Bytes(), /*wire_size=*/1'000'000);  // 1 MB -> 1 s
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  EXPECT_EQ(got_[1][0].at, seconds(1) + millis(10));
}

TEST_F(SimNetworkTest, BackToBackSendsSerializeOnPipe) {
  LinkParams p;
  p.latency = millis(0);
  p.bandwidth_bps = 8e6;
  net_.set_link(0, 1, p);
  net_.send(0, 1, Bytes(), 1'000'000);
  net_.send(0, 1, Bytes(), 1'000'000);
  sim_.run();
  ASSERT_EQ(got_[1].size(), 2u);
  EXPECT_EQ(got_[1][0].at, seconds(1));
  EXPECT_EQ(got_[1][1].at, seconds(2));
}

TEST_F(SimNetworkTest, SharedPipeContends) {
  int pipe = net_.make_pipe(8e6);
  LinkParams p;
  p.pipe = pipe;
  net_.set_link(0, 1, p);
  net_.set_link(0, 2, p);
  net_.send(0, 1, Bytes(), 1'000'000);
  net_.send(0, 2, Bytes(), 1'000'000);
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  ASSERT_EQ(got_[2].size(), 1u);
  EXPECT_EQ(got_[1][0].at, seconds(1));
  EXPECT_EQ(got_[2][0].at, seconds(2));  // waited for the shared pipe
}

TEST_F(SimNetworkTest, DedicatedPipesDoNotContend) {
  LinkParams p;
  p.bandwidth_bps = 8e6;
  net_.set_link(0, 1, p);
  net_.set_link(0, 2, p);
  net_.send(0, 1, Bytes(), 1'000'000);
  net_.send(0, 2, Bytes(), 1'000'000);
  sim_.run();
  EXPECT_EQ(got_[1][0].at, seconds(1));
  EXPECT_EQ(got_[2][0].at, seconds(1));
}

TEST_F(SimNetworkTest, FifoPerLink) {
  LinkParams p;
  p.latency = millis(5);
  p.bandwidth_bps = 1e6;
  net_.set_link(0, 1, p);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Writer w;
    w.u32(static_cast<uint32_t>(i));
    net_.send(0, 1, std::move(w).take(), rng.next_range(10, 5000));
  }
  sim_.run();
  ASSERT_EQ(got_[1].size(), 50u);
  for (int i = 0; i < 50; ++i) {
    Reader r(got_[1][i].frame);
    EXPECT_EQ(r.u32(), static_cast<uint32_t>(i));
    if (i > 0) {
      EXPECT_GE(got_[1][i].at, got_[1][i - 1].at);
    }
  }
}

TEST_F(SimNetworkTest, LinkDownDropsSilently) {
  LinkParams p;
  p.latency = millis(1);
  net_.set_link(0, 1, p);
  net_.set_link_up(0, 1, false);
  auto res = net_.send(0, 1, to_bytes("x"));
  EXPECT_FALSE(res.has_value());
  sim_.run();
  EXPECT_TRUE(got_[1].empty());
  EXPECT_EQ(net_.frames_dropped(), 1u);

  net_.set_link_up(0, 1, true);
  net_.send(0, 1, to_bytes("y"));
  sim_.run();
  EXPECT_EQ(got_[1].size(), 1u);
}

TEST_F(SimNetworkTest, NodeDownDropsInFlight) {
  LinkParams p;
  p.latency = millis(10);
  net_.set_link(0, 1, p);
  net_.send(0, 1, to_bytes("x"));
  net_.set_node_up(1, false);  // goes down while frame is in flight
  sim_.run();
  EXPECT_TRUE(got_[1].empty());
  EXPECT_EQ(net_.frames_dropped(), 1u);
}

TEST_F(SimNetworkTest, DropProbabilityIsApplied) {
  LinkParams p;
  net_.set_link(0, 1, p);
  net_.set_drop_probability(0, 1, 0.5);
  net_.set_drop_rng_seed(99);
  const int kSends = 2000;
  for (int i = 0; i < kSends; ++i) net_.send(0, 1, Bytes{1});
  sim_.run();
  double rate = static_cast<double>(got_[1].size()) / kSends;
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.6);
}

TEST_F(SimNetworkTest, UnconfiguredLinkThrows) {
  EXPECT_THROW(net_.send(0, 1, Bytes{}), std::out_of_range);
}

TEST_F(SimNetworkTest, AccountsBytesSent) {
  LinkParams p;
  net_.set_link(0, 1, p);
  net_.send(0, 1, Bytes(100), 500);
  net_.send(0, 1, Bytes(50));
  sim_.run();
  EXPECT_EQ(net_.bytes_sent(0, 1), 550u);
  EXPECT_EQ(net_.frames_delivered(1), 2u);
}

// A link flap kills the path's in-flight frames even when the link is back
// up before their delivery time — simulated TCP sessions do not survive a
// path flap — and the down/up cycle is symmetric: new traffic flows again.
TEST_F(SimNetworkTest, LinkFlapBlackholesInFlightFrames) {
  LinkParams p;
  p.latency = millis(10);
  net_.set_link(0, 1, p);
  net_.send(0, 1, to_bytes("doomed"));
  net_.set_link_up(0, 1, false);  // flap while the frame is in flight
  net_.set_link_up(0, 1, true);
  net_.send(0, 1, to_bytes("fresh"));
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  EXPECT_EQ(to_string(got_[1][0].frame), "fresh");
  EXPECT_EQ(net_.frames_dropped(), 1u);
}

// Frames queued on a busy pipe when the link goes down are dropped AND
// their reserved transmission time is refunded, so the pipe is immediately
// usable once set_link_up restores the link.
TEST_F(SimNetworkTest, SetLinkUpRestoresPipeBandwidthAccounting) {
  LinkParams p;
  p.bandwidth_bps = 8e6;  // 1 MB/s
  net_.set_link(0, 1, p);
  net_.send(0, 1, Bytes(), 1'000'000);  // reserves the pipe until t=1s
  net_.send(0, 1, Bytes(), 1'000'000);  // queued behind it until t=2s
  net_.set_link_up(0, 1, false);        // both blackholed, pipe refunded
  net_.set_link_up(0, 1, true);
  net_.send(0, 1, Bytes(), 1'000'000);
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  EXPECT_EQ(got_[1][0].at, seconds(1));  // not 3s: reservation was refunded
  EXPECT_EQ(net_.frames_dropped(), 2u);
}

// set_drop_probability composes with link state instead of replacing it:
// a down link drops everything regardless of p, and the configured p is
// still in force after the link heals.
TEST_F(SimNetworkTest, DropProbabilityComposesWithDownLinks) {
  LinkParams p;
  net_.set_link(0, 1, p);
  net_.set_drop_rng_seed(7);
  net_.set_drop_probability(0, 1, 0.5);
  net_.set_link_up(0, 1, false);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(net_.send(0, 1, Bytes{1}));
  sim_.run();
  EXPECT_TRUE(got_[1].empty());
  EXPECT_EQ(net_.frames_dropped(), 100u);

  net_.set_link_up(0, 1, true);
  for (int i = 0; i < 2000; ++i) net_.send(0, 1, Bytes{1});
  sim_.run();
  double rate = got_[1].size() / 2000.0;
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.6);

  net_.set_drop_probability(0, 1, 0);
  got_[1].clear();
  for (int i = 0; i < 50; ++i) net_.send(0, 1, Bytes{1});
  sim_.run();
  EXPECT_EQ(got_[1].size(), 50u);
}

// Global bandwidth collapse: every pipe's transmit time stretches by 1/scale.
TEST_F(SimNetworkTest, BandwidthScaleStretchesTransmitTime) {
  LinkParams p;
  p.bandwidth_bps = 8e6;
  net_.set_link(0, 1, p);
  net_.set_bandwidth_scale(0.5);
  net_.send(0, 1, Bytes(), 1'000'000);
  sim_.run();
  ASSERT_EQ(got_[1].size(), 1u);
  EXPECT_EQ(got_[1][0].at, seconds(2));  // 1 MB at half of 1 MB/s

  net_.set_bandwidth_scale(1.0);
  got_[1].clear();
  net_.send(0, 1, Bytes(), 1'000'000);
  sim_.run();
  EXPECT_EQ(got_[1][0].at, seconds(2) + seconds(1));
  EXPECT_THROW(net_.set_bandwidth_scale(0), std::invalid_argument);
}

// Property: on a lossless link, delivery time = queueing-aware analytic
// formula, for random message sizes.
TEST(SimNetworkProperty, DeliveryMatchesAnalyticModel) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Simulator sim;
    SimNetwork net(sim, 2);
    LinkParams p;
    p.latency = millis(7);
    p.bandwidth_bps = 2e6;
    net.set_link(0, 1, p);
    std::vector<TimePoint> deliveries;
    net.set_delivery_handler(
        1, [&](NodeId, BytesView, uint64_t) { deliveries.push_back(sim.now()); });

    Rng rng(seed);
    TimePoint busy = kTimeZero;
    std::vector<TimePoint> expected;
    for (int i = 0; i < 100; ++i) {
      uint64_t size = static_cast<uint64_t>(rng.next_range(1, 100000));
      TimePoint start = std::max(sim.now(), busy);
      Duration xmit = transmit_time(size, 2e6);
      busy = start + xmit;
      expected.push_back(busy + millis(7));
      net.send(0, 1, Bytes(), size);
    }
    sim.run();
    ASSERT_EQ(deliveries.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(deliveries[i], expected[i]) << "message " << i;
  }
}

}  // namespace
}  // namespace stab::sim
