// Unit tests for the data plane primitives: wire codec, sequencer,
// out-buffer, receive tracker.
#include <gtest/gtest.h>

#include "data/out_buffer.hpp"
#include "data/receive_tracker.hpp"
#include "data/wire.hpp"

namespace stab::data {
namespace {

TEST(Wire, DataRoundTrip) {
  DataFrame in;
  in.origin = 3;
  in.seq = 12345678901LL;
  in.payload = to_bytes("payload-bytes");
  in.virtual_size = 7777;
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kData);
  DataFrame out = decode_data(enc);
  EXPECT_EQ(out.origin, in.origin);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.virtual_size, in.virtual_size);
}

TEST(Wire, AckBatchRoundTrip) {
  AckBatchFrame in;
  in.reporter = 5;
  in.entries.push_back(AckEntry{1, 0, 99, {}});
  in.entries.push_back(AckEntry{2, 3, -1, to_bytes("extra")});
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kAckBatch);
  AckBatchFrame out = decode_ack_batch(enc);
  EXPECT_EQ(out.reporter, 5u);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].about_origin, 1u);
  EXPECT_EQ(out.entries[0].seq, 99);
  EXPECT_EQ(out.entries[1].type, 3u);
  EXPECT_EQ(to_string(out.entries[1].extra), "extra");
}

TEST(Wire, ResumeRoundTrip) {
  ResumeFrame in;
  in.sender = 7;
  in.epoch = 0xdeadbeefcafeULL;
  in.receive_through = 424242;
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kResume);
  ResumeFrame out = decode_resume(enc);
  EXPECT_EQ(out.sender, in.sender);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.receive_through, in.receive_through);
  EXPECT_FALSE(out.reply);

  in.reply = true;
  in.receive_through = kNoSeq;  // restarted before receiving anything
  out = decode_resume(encode(in));
  EXPECT_TRUE(out.reply);
  EXPECT_EQ(out.receive_through, kNoSeq);
  EXPECT_THROW(decode_resume(encode(DataFrame{})), CodecError);
}

TEST(Wire, PeekRejectsGarbage) {
  EXPECT_FALSE(peek_kind(Bytes{}).has_value());
  EXPECT_FALSE(peek_kind(Bytes{0x77}).has_value());
}

TEST(Wire, DecodeWrongKindThrows) {
  DataFrame d;
  d.payload = to_bytes("x");
  Bytes enc = encode(d);
  EXPECT_THROW(decode_ack_batch(enc), CodecError);
}

TEST(Wire, DecodeTruncatedThrows) {
  DataFrame d;
  d.payload = to_bytes("hello world");
  Bytes enc = encode(d);
  enc.resize(enc.size() - 4);
  EXPECT_THROW(decode_data(enc), CodecError);
}

TEST(Sequencer, StartsAtZeroMonotonic) {
  Sequencer s;
  EXPECT_EQ(s.last_assigned(), kNoSeq);
  EXPECT_EQ(s.next(), 0);
  EXPECT_EQ(s.next(), 1);
  EXPECT_EQ(s.last_assigned(), 1);
}

TEST(OutBuffer, PushGetReclaim) {
  OutBuffer b;
  b.push(0, to_bytes("a"), 0);
  b.push(1, to_bytes("bb"), 10);
  b.push(2, to_bytes("ccc"), 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.buffered_bytes(), 1u + 2 + 10 + 3);
  ASSERT_NE(b.get(1), nullptr);
  EXPECT_EQ(to_string(b.get(1)->payload), "bb");
  EXPECT_EQ(b.get(1)->virtual_size, 10u);

  b.reclaim_through(1);
  EXPECT_EQ(b.base(), 2);
  EXPECT_EQ(b.get(0), nullptr);
  EXPECT_EQ(b.get(1), nullptr);
  ASSERT_NE(b.get(2), nullptr);
  EXPECT_EQ(b.buffered_bytes(), 3u);
}

TEST(OutBuffer, NonContiguousPushThrows) {
  OutBuffer b;
  b.push(0, {}, 0);
  EXPECT_THROW(b.push(2, {}, 0), std::logic_error);
  EXPECT_THROW(b.push(0, {}, 0), std::logic_error);
}

TEST(OutBuffer, ReclaimBeyondEndIsSafe) {
  OutBuffer b;
  b.push(0, to_bytes("x"), 0);
  b.reclaim_through(100);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.base(), 1);
  b.push(1, to_bytes("y"), 0);  // contiguity maintained after full reclaim
  EXPECT_EQ(b.get(1)->seq, 1);
}

TEST(OutBuffer, GetOutOfRange) {
  OutBuffer b;
  EXPECT_EQ(b.get(0), nullptr);
  EXPECT_EQ(b.get(-1), nullptr);
}

TEST(ReceiveTracker, AcceptsInOrder) {
  ReceiveTracker t(2);
  EXPECT_EQ(t.received_through(0), kNoSeq);
  EXPECT_EQ(t.on_frame(0, 0), ReceiveTracker::Verdict::kAccept);
  EXPECT_EQ(t.on_frame(0, 1), ReceiveTracker::Verdict::kAccept);
  EXPECT_EQ(t.received_through(0), 1);
  EXPECT_EQ(t.received_through(1), kNoSeq);  // independent per origin
}

TEST(ReceiveTracker, ClassifiesDupAndGap) {
  ReceiveTracker t(1);
  t.on_frame(0, 0);
  EXPECT_EQ(t.on_frame(0, 0), ReceiveTracker::Verdict::kStaleDuplicate);
  EXPECT_EQ(t.on_frame(0, 5), ReceiveTracker::Verdict::kGap);
  EXPECT_EQ(t.received_through(0), 0);  // gap did not advance
  EXPECT_EQ(t.on_frame(0, 1), ReceiveTracker::Verdict::kAccept);
}

}  // namespace
}  // namespace stab::data
