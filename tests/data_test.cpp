// Unit tests for the data plane primitives: wire codec, sequencer,
// out-buffer, receive tracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "data/out_buffer.hpp"
#include "data/receive_tracker.hpp"
#include "data/wire.hpp"

namespace stab::data {
namespace {

TEST(Wire, DataRoundTrip) {
  DataFrame in;
  in.origin = 3;
  in.seq = 12345678901LL;
  in.payload = to_bytes("payload-bytes");
  in.virtual_size = 7777;
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kData);
  DataFrame out = decode_data(enc);
  EXPECT_EQ(out.origin, in.origin);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.virtual_size, in.virtual_size);
}

TEST(Wire, AckBatchRoundTrip) {
  AckBatchFrame in;
  in.reporter = 5;
  in.entries.push_back(AckEntry{1, 0, 99, {}});
  in.entries.push_back(AckEntry{2, 3, -1, to_bytes("extra")});
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kAckBatch);
  AckBatchFrame out = decode_ack_batch(enc);
  EXPECT_EQ(out.reporter, 5u);
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].about_origin, 1u);
  EXPECT_EQ(out.entries[0].seq, 99);
  EXPECT_EQ(out.entries[1].type, 3u);
  EXPECT_EQ(to_string(out.entries[1].extra), "extra");
}

TEST(Wire, ResumeRoundTrip) {
  ResumeFrame in;
  in.sender = 7;
  in.epoch = 0xdeadbeefcafeULL;
  in.receive_through = 424242;
  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kResume);
  ResumeFrame out = decode_resume(enc);
  EXPECT_EQ(out.sender, in.sender);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.receive_through, in.receive_through);
  EXPECT_FALSE(out.reply);

  in.reply = true;
  in.receive_through = kNoSeq;  // restarted before receiving anything
  out = decode_resume(encode(in));
  EXPECT_TRUE(out.reply);
  EXPECT_EQ(out.receive_through, kNoSeq);
  EXPECT_THROW(decode_resume(encode(DataFrame{})), CodecError);
}

TEST(Wire, PrimaryEpochRoundTripsOnEveryFencedFrameKind) {
  // Failover fencing rides a PrimaryEpoch stamp on data, ack and RESUME
  // frames; every codec must carry it faithfully (and default it to 0 for
  // the pre-failover wire layout).
  DataFrame d;
  d.origin = 2;
  d.seq = 41;
  d.payload = to_bytes("m");
  d.primary_epoch = 7;
  EXPECT_EQ(decode_data(encode(d)).primary_epoch, 7u);
  DataView v = decode_data_view(encode(d));
  EXPECT_EQ(v.primary_epoch, 7u);
  Bytes direct = encode_data(2, 41, to_bytes("m"), 0, 9);
  EXPECT_EQ(decode_data_view(direct).primary_epoch, 9u);
  EXPECT_EQ(decode_data(encode_data(2, 41, to_bytes("m"), 0)).primary_epoch,
            0u);

  DataBatchFrame b;
  b.origin = 1;
  b.first_seq = 10;
  b.primary_epoch = 3;
  Bytes payload = to_bytes("bb");
  b.entries.push_back(DataBatchFrame::Entry{BytesView(payload), 0});
  Bytes benc = encode(b);
  EXPECT_EQ(decode_data_batch(benc).primary_epoch, 3u);

  AckBatchFrame a;
  a.reporter = 4;
  a.primary_epoch = 5;
  a.entries.push_back(AckEntry{0, 0, 12, {}});
  EXPECT_EQ(decode_ack_batch(encode(a)).primary_epoch, 5u);

  ResumeFrame r;
  r.sender = 6;
  r.epoch = 2;
  r.receive_through = 100;
  r.primary_epoch = 8;
  ResumeFrame rout = decode_resume(encode(r));
  EXPECT_EQ(rout.primary_epoch, 8u);
  EXPECT_EQ(rout.epoch, 2u);  // session epoch and primary epoch are distinct
}

TEST(Wire, PeekRejectsGarbage) {
  EXPECT_FALSE(peek_kind(Bytes{}).has_value());
  EXPECT_FALSE(peek_kind(Bytes{0x77}).has_value());
}

TEST(Wire, PeekKnowsDataBatch) {
  DataBatchFrame b;
  b.origin = 1;
  b.first_seq = 0;
  Bytes p = to_bytes("x");
  b.entries.push_back(DataBatchFrame::Entry{BytesView(p), 0});
  EXPECT_EQ(peek_kind(encode(b)), FrameKind::kDataBatch);
}

TEST(Wire, PeekTreatsApplicationRangeAsUnknown) {
  // Kind bytes >= 0x40 belong to applications (send_raw's contract); every
  // one of them must come back unknown so the raw handler gets the frame.
  for (int k = 0x40; k <= 0xff; ++k)
    EXPECT_FALSE(peek_kind(Bytes{static_cast<uint8_t>(k)}).has_value())
        << "kind byte " << k;
  // The Stabilizer kinds themselves are recognized.
  EXPECT_TRUE(peek_kind(Bytes{0x01}).has_value());
  EXPECT_TRUE(peek_kind(Bytes{0x04}).has_value());
  EXPECT_EQ(peek_kind(Bytes{0x05}), FrameKind::kReportBatch);
  EXPECT_FALSE(peek_kind(Bytes{0x06}).has_value());  // unassigned gap
}

TEST(Wire, ReportBatchRoundTrip) {
  ReportBatchFrame in;
  in.forwarder = 9;
  ReportBlock b0;
  b0.reporter = 3;
  b0.primary_epoch = 2;
  b0.entries.push_back(ReportEntry{0, 0, 41});
  b0.entries.push_back(ReportEntry{1, 7, kNoSeq});
  ReportBlock b1;
  b1.reporter = 4;
  b1.primary_epoch = 0;
  b1.entries.push_back(ReportEntry{0, 1, 1234567890123LL});
  in.blocks.push_back(b0);
  in.blocks.push_back(b1);

  Bytes enc = encode(in);
  EXPECT_EQ(peek_kind(enc), FrameKind::kReportBatch);
  EXPECT_EQ(enc.capacity(), enc.size());  // single-allocation encoder
  ReportBatchFrame out = decode_report_batch(enc);
  EXPECT_EQ(out.forwarder, 9u);
  ASSERT_EQ(out.blocks.size(), 2u);
  EXPECT_EQ(out.blocks[0].reporter, 3u);
  EXPECT_EQ(out.blocks[0].primary_epoch, 2u);
  ASSERT_EQ(out.blocks[0].entries.size(), 2u);
  EXPECT_EQ(out.blocks[0].entries[0].about_origin, 0u);
  EXPECT_EQ(out.blocks[0].entries[0].seq, 41);
  EXPECT_EQ(out.blocks[0].entries[1].type, 7u);
  EXPECT_EQ(out.blocks[0].entries[1].seq, kNoSeq);
  EXPECT_EQ(out.blocks[1].reporter, 4u);
  ASSERT_EQ(out.blocks[1].entries.size(), 1u);
  EXPECT_EQ(out.blocks[1].entries[0].seq, 1234567890123LL);
}

TEST(Wire, ReportBatchRejectsEmptyAndMalformed) {
  ReportBatchFrame empty;
  empty.forwarder = 1;
  EXPECT_THROW(encode(empty), std::invalid_argument);

  // A block with zero entries is legal on the wire (an aggregator may relay
  // an epoch-only block), but a zero-block frame is not.
  Writer w;
  w.u8(5);  // kReportBatch
  w.u32(1);
  w.u32(0);  // nblocks = 0
  EXPECT_THROW(decode_report_batch(std::move(w).take()), CodecError);

  ReportBatchFrame in;
  in.forwarder = 2;
  ReportBlock b;
  b.reporter = 0;
  b.entries.push_back(ReportEntry{1, 0, 5});
  in.blocks.push_back(b);
  Bytes enc = encode(in);
  Bytes truncated(enc.begin(), enc.end() - 3);
  EXPECT_THROW(decode_report_batch(truncated), CodecError);
  EXPECT_THROW(decode_report_batch(encode(DataFrame{})), CodecError);
}

TEST(Wire, DataBatchRoundTripProperty) {
  Rng rng(0x5eed);
  for (int round = 0; round < 50; ++round) {
    DataBatchFrame in;
    in.origin = static_cast<NodeId>(rng.next_below(9));
    in.first_seq = static_cast<SeqNum>(rng.next_below(1u << 20));
    size_t count = 1 + rng.next_below(17);
    // Backing store must outlive the views.
    std::vector<Bytes> payloads(count);
    for (size_t i = 0; i < count; ++i) {
      payloads[i].resize(rng.next_below(300));  // sizes 0..299, empty legal
      for (auto& byte : payloads[i])
        byte = static_cast<uint8_t>(rng.next_u64());
      in.entries.push_back(DataBatchFrame::Entry{
          BytesView(payloads[i]), rng.next_bool(0.3) ? rng.next_below(5000)
                                                     : 0});
    }
    Bytes enc = encode(in);
    DataBatchFrame out = decode_data_batch(enc);
    EXPECT_EQ(out.origin, in.origin);
    EXPECT_EQ(out.first_seq, in.first_seq);
    ASSERT_EQ(out.entries.size(), count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(std::equal(out.entries[i].payload.begin(),
                             out.entries[i].payload.end(),
                             payloads[i].begin(), payloads[i].end()));
      EXPECT_EQ(out.entries[i].virtual_size, in.entries[i].virtual_size);
    }
  }
}

TEST(Wire, DataBatchRejectsEmpty) {
  DataBatchFrame empty;
  empty.origin = 2;
  empty.first_seq = 10;
  EXPECT_THROW(encode(empty), std::invalid_argument);

  // A hand-built zero-count frame must be rejected by the decoder too.
  Writer w;
  w.u8(4);  // kDataBatch
  w.u32(2);
  w.i64(10);
  w.u32(0);  // count = 0
  EXPECT_THROW(decode_data_batch(std::move(w).take()), CodecError);
}

TEST(Wire, DataBatchMalformedThrows) {
  DataBatchFrame b;
  b.origin = 1;
  b.first_seq = 5;
  Bytes p = to_bytes("payload");
  b.entries.push_back(DataBatchFrame::Entry{BytesView(p), 0});
  b.entries.push_back(DataBatchFrame::Entry{BytesView(p), 9});
  Bytes enc = encode(b);
  Bytes truncated(enc.begin(), enc.end() - 3);
  EXPECT_THROW(decode_data_batch(truncated), CodecError);
  EXPECT_THROW(decode_data_batch(encode(DataFrame{})), CodecError);
}

TEST(Wire, EncodersAreSingleAllocation) {
  // Every encoder precomputes its exact frame size, so the returned vector's
  // capacity equals its size — a growth re-allocation would leave capacity
  // above size. Regression for the Writer::reserve pass.
  DataFrame d;
  d.payload = to_bytes("some payload of a nontrivial size, 64 bytes or so..");
  Bytes enc = encode(d);
  EXPECT_EQ(enc.capacity(), enc.size());

  AckBatchFrame a;
  a.reporter = 1;
  for (int i = 0; i < 10; ++i)
    a.entries.push_back(AckEntry{0, 0, i, i % 2 ? to_bytes("extra") : Bytes{}});
  enc = encode(a);
  EXPECT_EQ(enc.capacity(), enc.size());

  enc = encode(ResumeFrame{});
  EXPECT_EQ(enc.capacity(), enc.size());

  DataBatchFrame b;
  b.origin = 0;
  b.first_seq = 0;
  Bytes p = to_bytes("0123456789");
  for (int i = 0; i < 8; ++i)
    b.entries.push_back(DataBatchFrame::Entry{BytesView(p), 3});
  enc = encode(b);
  EXPECT_EQ(enc.capacity(), enc.size());
}

TEST(Wire, DataViewAliasesFrame) {
  DataFrame d;
  d.origin = 4;
  d.seq = 77;
  d.payload = to_bytes("zero-copy");
  Bytes enc = encode(d);
  DataView v = decode_data_view(enc);
  EXPECT_EQ(v.origin, 4u);
  EXPECT_EQ(v.seq, 77);
  EXPECT_EQ(to_string(v.payload), "zero-copy");
  // The view points into the encoded buffer, not a copy.
  EXPECT_GE(v.payload.data(), enc.data());
  EXPECT_LT(v.payload.data(), enc.data() + enc.size());
}

TEST(Wire, DecodeWrongKindThrows) {
  DataFrame d;
  d.payload = to_bytes("x");
  Bytes enc = encode(d);
  EXPECT_THROW(decode_ack_batch(enc), CodecError);
}

TEST(Wire, DecodeTruncatedThrows) {
  DataFrame d;
  d.payload = to_bytes("hello world");
  Bytes enc = encode(d);
  enc.resize(enc.size() - 4);
  EXPECT_THROW(decode_data(enc), CodecError);
}

TEST(Sequencer, StartsAtZeroMonotonic) {
  Sequencer s;
  EXPECT_EQ(s.last_assigned(), kNoSeq);
  EXPECT_EQ(s.next(), 0);
  EXPECT_EQ(s.next(), 1);
  EXPECT_EQ(s.last_assigned(), 1);
}

TEST(OutBuffer, PushGetReclaim) {
  OutBuffer b;
  b.push(0, to_bytes("a"), 0);
  b.push(1, to_bytes("bb"), 10);
  b.push(2, to_bytes("ccc"), 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.buffered_bytes(), 1u + 2 + 10 + 3);
  ASSERT_NE(b.get(1), nullptr);
  EXPECT_EQ(to_string(b.get(1)->payload), "bb");
  EXPECT_EQ(b.get(1)->virtual_size, 10u);

  b.reclaim_through(1);
  EXPECT_EQ(b.base(), 2);
  EXPECT_EQ(b.get(0), nullptr);
  EXPECT_EQ(b.get(1), nullptr);
  ASSERT_NE(b.get(2), nullptr);
  EXPECT_EQ(b.buffered_bytes(), 3u);
}

TEST(OutBuffer, BufferedBytesIgnoresEncodedCache) {
  // The encoded-frame cache is an alternate representation of the payload,
  // not extra application buffering: buffered_bytes() (the paper's buffer
  // occupancy figure) must not move when the cache fills, and reclaim must
  // drop the cache with its slot.
  OutBuffer b;
  b.push(0, to_bytes("hello"), 7);
  b.push(1, to_bytes("world!"), 0);
  const uint64_t before = b.buffered_bytes();
  EXPECT_EQ(before, 5u + 7 + 6);

  const OutBuffer::Slot* s0 = b.get(0);
  s0->encoded = std::make_shared<const Bytes>(
      encode_data(0, 0, BytesView(s0->payload), s0->virtual_size));
  EXPECT_EQ(b.buffered_bytes(), before);

  std::weak_ptr<const Bytes> cached = b.get(0)->encoded;
  b.reclaim_through(0);
  EXPECT_EQ(b.buffered_bytes(), 6u);
  EXPECT_TRUE(cached.expired());  // the slot owned the last reference
}

TEST(OutBuffer, NonContiguousPushThrows) {
  OutBuffer b;
  b.push(0, {}, 0);
  EXPECT_THROW(b.push(2, {}, 0), std::logic_error);
  EXPECT_THROW(b.push(0, {}, 0), std::logic_error);
}

TEST(OutBuffer, ReclaimBeyondEndIsSafe) {
  OutBuffer b;
  b.push(0, to_bytes("x"), 0);
  b.reclaim_through(100);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.base(), 1);
  b.push(1, to_bytes("y"), 0);  // contiguity maintained after full reclaim
  EXPECT_EQ(b.get(1)->seq, 1);
}

TEST(OutBuffer, GetOutOfRange) {
  OutBuffer b;
  EXPECT_EQ(b.get(0), nullptr);
  EXPECT_EQ(b.get(-1), nullptr);
}

TEST(ReceiveTracker, AcceptsInOrder) {
  ReceiveTracker t(2);
  EXPECT_EQ(t.received_through(0), kNoSeq);
  EXPECT_EQ(t.on_frame(0, 0), ReceiveTracker::Verdict::kAccept);
  EXPECT_EQ(t.on_frame(0, 1), ReceiveTracker::Verdict::kAccept);
  EXPECT_EQ(t.received_through(0), 1);
  EXPECT_EQ(t.received_through(1), kNoSeq);  // independent per origin
}

TEST(ReceiveTracker, ClassifiesDupAndGap) {
  ReceiveTracker t(1);
  t.on_frame(0, 0);
  EXPECT_EQ(t.on_frame(0, 0), ReceiveTracker::Verdict::kStaleDuplicate);
  EXPECT_EQ(t.on_frame(0, 5), ReceiveTracker::Verdict::kGap);
  EXPECT_EQ(t.received_through(0), 0);  // gap did not advance
  EXPECT_EQ(t.on_frame(0, 1), ReceiveTracker::Verdict::kAccept);
}

}  // namespace
}  // namespace stab::data
