// End-to-end property tests over whole simulated clusters.
//
// The paper's §III-A invariant: "Each WAN node detects stability
// independently and asynchronously, but all WAN nodes reach the same
// conclusions eventually." Plus core API contracts: monitor monotonicity,
// waitfor firing exactly once at coverage, and quiescent frontiers matching
// the delivered state.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.hpp"
#include "core/stabilizer.hpp"
#include "net/sim_transport.hpp"

namespace stab {
namespace {

struct RandomCluster {
  RandomCluster(uint64_t seed, size_t num_nodes) : rng(seed) {
    for (size_t i = 0; i < num_nodes; ++i)
      topo.add_node("n" + std::to_string(i + 1),
                    "az" + std::to_string(i % 2 + 1));
    for (NodeId a = 0; a < num_nodes; ++a)
      for (NodeId b = 0; b < num_nodes; ++b)
        if (a != b) {
          LinkSpec s;
          s.latency = from_ms(1 + rng.next_double() * 60);
          s.bandwidth_bps = mbps(20 + rng.next_double() * 200);
          topo.set_link(a, b, s);
        }
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId n = 0; n < num_nodes; ++n) {
      StabilizerOptions opts;
      opts.topology = topo;
      opts.self = n;
      opts.broadcast_acks = true;  // everyone evaluates everything
      opts.ack_interval = millis(static_cast<int64_t>(rng.next_range(1, 5)));
      nodes.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
    }
  }

  Rng rng;
  Topology topo;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
};

class E2EProperty : public ::testing::TestWithParam<uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, E2EProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST_P(E2EProperty, AllNodesReachTheSameConclusions) {
  RandomCluster c(GetParam(), 4 + GetParam() % 3);  // 4..6 nodes
  const size_t n = c.topo.num_nodes();

  // Explicit-set predicates (same meaning at every evaluating node).
  std::map<std::string, std::string> preds;
  preds["all"] = "MIN($ALLWNODES)";
  preds["any"] = "MAX($ALLWNODES)";
  preds["maj"] = "KTH_MAX(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)";
  preds["pair"] = "MIN($1,$" + std::to_string(n) + ")";
  for (auto& node : c.nodes)
    for (const auto& [key, src] : preds)
      ASSERT_TRUE(node->register_predicate(key, src)) << key;

  // Random workload: every node originates messages at random times.
  std::vector<SeqNum> last_sent(n, kNoSeq);
  for (int i = 0; i < 120; ++i) {
    NodeId origin = static_cast<NodeId>(c.rng.next_below(n));
    c.sim.schedule_at(millis(c.rng.next_range(0, 2000)), [&, origin] {
      Bytes payload(c.rng.next_range(0, 2000));
      last_sent[origin] =
          c.nodes[origin]->send(payload, c.rng.next_range(0, 50000));
    });
  }

  // Monitor monotonicity on a sample of (node, key, origin) triples.
  struct Cursor {
    SeqNum last = kNoSeq;
    int fired = 0;
  };
  std::vector<std::unique_ptr<Cursor>> cursors;
  for (NodeId node = 0; node < n; ++node)
    for (NodeId origin = 0; origin < n; ++origin) {
      cursors.push_back(std::make_unique<Cursor>());
      Cursor* cur = cursors.back().get();
      ASSERT_TRUE(c.nodes[node]->monitor_stability_frontier(
          "maj",
          [cur](SeqNum f, BytesView) {
            EXPECT_GT(f, cur->last) << "monitor regressed";
            cur->last = f;
            ++cur->fired;
          },
          origin));
    }

  c.sim.run();

  // 1. Quiescent agreement: every node holds identical frontiers for every
  //    (predicate, origin stream).
  for (const auto& [key, src] : preds) {
    for (NodeId origin = 0; origin < n; ++origin) {
      SeqNum expected = c.nodes[0]->get_stability_frontier(key, origin);
      for (NodeId node = 1; node < n; ++node)
        EXPECT_EQ(c.nodes[node]->get_stability_frontier(key, origin),
                  expected)
            << "disagreement on " << key << " for origin " << origin
            << " at node " << node;
    }
  }

  // 2. Everything delivered: frontiers equal the origin's last message.
  for (NodeId origin = 0; origin < n; ++origin) {
    if (last_sent[origin] == kNoSeq) continue;
    EXPECT_EQ(c.nodes[0]->get_stability_frontier("all", origin),
              last_sent[origin]);
    EXPECT_EQ(c.nodes[0]->get_stability_frontier("maj", origin),
              last_sent[origin]);
  }

  // 3. Send buffers fully reclaimed (everything acknowledged everywhere).
  for (auto& node : c.nodes) EXPECT_EQ(node->send_buffer_bytes(), 0u);
}

TEST_P(E2EProperty, WaitforFiresExactlyOnceAtCoverage) {
  RandomCluster c(GetParam() * 7, 4);
  Stabilizer& sender = *c.nodes[0];
  ASSERT_TRUE(sender.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));

  struct Wait {
    SeqNum seq;
    int fired = 0;
    SeqNum frontier_at_fire = kNoSeq;
  };
  std::vector<std::unique_ptr<Wait>> waits;

  for (int i = 0; i < 60; ++i) {
    c.sim.schedule_at(millis(c.rng.next_range(0, 800)), [&] {
      SeqNum seq = sender.send(to_bytes("m"));
      waits.push_back(std::make_unique<Wait>());
      Wait* w = waits.back().get();
      w->seq = seq;
      sender.waitfor(seq, "all", [&, w](SeqNum frontier) {
        ++w->fired;
        w->frontier_at_fire = frontier;
        // Coverage contract: fired only once the frontier reaches the seq.
        EXPECT_GE(frontier, w->seq);
        EXPECT_EQ(sender.get_stability_frontier("all"), frontier);
      });
    });
  }
  c.sim.run();
  ASSERT_FALSE(waits.empty());
  for (const auto& w : waits) {
    EXPECT_EQ(w->fired, 1) << "seq " << w->seq;
    EXPECT_GE(w->frontier_at_fire, w->seq);
  }
}

// Random ack sequences yield byte-identical frontier/monitor histories
// between indexed-batch and legacy per-entry evaluation. Two granularities:
//   * size-1 batches — the full (frontier, extra) monitor history must be
//     byte-identical (a singleton batch is exactly one legacy report);
//   * random batch sizes — the frontier history sampled after every batch
//     must be byte-identical, and the indexed path's monitor history must
//     be an order-preserving subsequence of the legacy one ending at the
//     same value (batching coalesces intermediate frontiers; monotonicity
//     makes that lossless).
TEST_P(E2EProperty, IndexedBatchMatchesLegacyPerEntryHistories) {
  Topology topo = ec2_topology();
  const char* preds[] = {
      "MAX($ALLWNODES-$MYWNODE)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
      "KTH_MIN(3,($ALLWNODES-$MYWNODE))",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "MIN(($ALLWNODES-$MYWNODE).persisted)",
  };
  const size_t npreds = std::size(preds);

  for (bool singleton_batches : {true, false}) {
    struct Side {
      std::unique_ptr<StabilityTypeRegistry> types;
      std::unique_ptr<FrontierEngine> engine;
      // per predicate: every (frontier, extra) a monitor observed
      std::vector<std::vector<std::pair<SeqNum, std::string>>> monitor_hist;
      // per predicate: frontier after every batch
      std::vector<std::vector<SeqNum>> frontier_hist;
    };
    Side sides[2];  // [0] = legacy per-entry, [1] = indexed batch
    for (int s = 0; s < 2; ++s) {
      sides[s].types = std::make_unique<StabilityTypeRegistry>();
      sides[s].engine =
          std::make_unique<FrontierEngine>(topo, 0, *sides[s].types);
      sides[s].engine->set_dispatch_mode(
          s == 0 ? FrontierEngine::DispatchMode::kLegacyScan
                 : FrontierEngine::DispatchMode::kIndexed);
      sides[s].monitor_hist.resize(npreds);
      sides[s].frontier_hist.resize(npreds);
      for (size_t i = 0; i < npreds; ++i) {
        std::string key = "p" + std::to_string(i);
        ASSERT_TRUE(sides[s].engine->register_predicate(key, preds[i]));
        auto* hist = &sides[s].monitor_hist[i];
        ASSERT_TRUE(sides[s].engine->monitor(
            key, [hist](SeqNum f, BytesView extra) {
              hist->emplace_back(f, to_string(extra));
            }));
      }
    }

    Rng rng(GetParam() * 31 + (singleton_batches ? 1 : 0));
    std::vector<std::vector<int64_t>> state(2,
                                            std::vector<int64_t>(8, kNoSeq));
    std::vector<Bytes> extra_storage;
    for (int step = 0; step < 250; ++step) {
      size_t batch_size = singleton_batches ? 1 : 1 + rng.next_below(10);
      std::vector<AckUpdate> batch;
      extra_storage.clear();
      extra_storage.reserve(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        StabilityTypeId t = static_cast<StabilityTypeId>(rng.next_below(2));
        NodeId n = static_cast<NodeId>(rng.next_below(8));
        state[t][n] += rng.next_range(0, 3);
        extra_storage.push_back(
            rng.next_bool(0.3) ? to_bytes("x" + std::to_string(step) + "." +
                                          std::to_string(i))
                               : Bytes{});
        batch.push_back(
            AckUpdate{t, n, state[t][n], BytesView(extra_storage.back())});
      }
      // Legacy side applies per entry; indexed side applies the batch.
      for (const auto& u : batch)
        sides[0].engine->on_ack(u.type, u.node, u.seq, u.extra);
      sides[1].engine->on_ack_batch(batch);
      for (size_t i = 0; i < npreds; ++i) {
        std::string key = "p" + std::to_string(i);
        for (int s = 0; s < 2; ++s)
          sides[s].frontier_hist[i].push_back(sides[s].engine->frontier(key));
      }
    }

    for (size_t i = 0; i < npreds; ++i) {
      // Frontier histories byte-identical at batch granularity.
      ASSERT_EQ(sides[0].frontier_hist[i], sides[1].frontier_hist[i])
          << "p" << i << " singleton=" << singleton_batches;
      const auto& legacy = sides[0].monitor_hist[i];
      const auto& indexed = sides[1].monitor_hist[i];
      if (singleton_batches) {
        ASSERT_EQ(legacy, indexed) << "p" << i;
      } else {
        // Subsequence check: batching may coalesce, never reorder/invent.
        size_t j = 0;
        for (const auto& [f, _] : indexed) {
          while (j < legacy.size() && legacy[j].first != f) ++j;
          ASSERT_LT(j, legacy.size())
              << "p" << i << ": indexed monitor saw frontier " << f
              << " that legacy never reported";
          ++j;
        }
        if (!legacy.empty()) {
          ASSERT_FALSE(indexed.empty()) << "p" << i;
          ASSERT_EQ(indexed.back().first, legacy.back().first) << "p" << i;
        }
      }
    }
  }
}

TEST_P(E2EProperty, MyMacrosExpandPerEvaluatingNode) {
  // $MYWNODE / $MYAZWNODES are relative to the evaluating node; this is a
  // feature (each site states its own locality), so agreement is NOT
  // expected for them — verify the per-node expansions instead.
  RandomCluster c(GetParam() * 13, 4);
  for (auto& node : c.nodes)
    ASSERT_TRUE(node->register_predicate("mine", "MIN($MYAZWNODES)"));
  for (NodeId n = 0; n < 4; ++n) {
    const auto* pred = c.nodes[n]->engine().predicate("mine");
    ASSERT_NE(pred, nullptr);
    // az1 = {n1, n3} (indices 0, 2), az2 = {n2, n4} (indices 1, 3).
    std::string expected =
        n % 2 == 0 ? "MIN($1,$3)" : "MIN($2,$4)";
    EXPECT_EQ(pred->expanded(), expected) << "node " << n;
  }
}

}  // namespace
}  // namespace stab
