// Backup service + trace generator tests.
#include <gtest/gtest.h>

#include <memory>

#include "backup/backup_service.hpp"
#include "backup/trace.hpp"
#include "net/sim_transport.hpp"

namespace stab::backup {
namespace {

// --- trace generator ---------------------------------------------------------

TEST(Trace, MatchesPaperStatistics) {
  TraceParams params;  // defaults = the paper's slice
  auto trace = generate_dropbox_trace(params);
  TraceStats stats = summarize(trace);
  EXPECT_EQ(stats.total_bytes, params.total_bytes);  // 3.87 GB exactly
  EXPECT_LE(stats.duration, params.duration);
  EXPECT_GE(stats.max_bytes, 100'000'000ULL);  // the huge-file spikes
  EXPECT_GT(stats.num_records, 500u);
  // Sorted by time.
  for (size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].at, trace[i - 1].at);
}

TEST(Trace, DeterministicFromSeed) {
  auto a = generate_dropbox_trace();
  auto b = generate_dropbox_trace();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
  }
  TraceParams other;
  other.seed = 999;
  auto c = generate_dropbox_trace(other);
  EXPECT_NE(a.size(), c.size());  // practically certain with another seed
}

TEST(Trace, BurstsConcentrateVolume) {
  auto trace = generate_dropbox_trace();
  TraceStats stats = summarize(trace, 32);
  // The busiest bucket should hold far more than a uniform share.
  uint64_t busiest = 0;
  for (uint64_t b : stats.bucket_bytes) busiest = std::max(busiest, b);
  EXPECT_GT(busiest, stats.total_bytes / 32 * 3);
}

TEST(Trace, HugeFilesPlanted) {
  TraceParams params;
  auto trace = generate_dropbox_trace(params);
  int huge = 0;
  for (const auto& r : trace)
    if (r.size_bytes >= 100'000'000ULL) ++huge;
  EXPECT_EQ(huge, params.num_huge_files);
}

TEST(Trace, CsvRoundTrip) {
  TraceParams small;
  small.total_bytes = 50'000'000;
  small.num_huge_files = 1;
  small.huge_file_bytes = 10'000'000;
  auto trace = generate_dropbox_trace(small);
  auto parsed = from_csv(to_csv(trace));
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  ASSERT_EQ(parsed.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(to_ms(parsed.value()[i].at), to_ms(trace[i].at), 0.01);
    EXPECT_EQ(parsed.value()[i].size_bytes, trace[i].size_bytes);
  }
}

TEST(Trace, CsvErrors) {
  EXPECT_FALSE(from_csv("header\nno-comma-here\n").is_ok());
  EXPECT_FALSE(from_csv("header\nabc,def\n").is_ok());
  auto empty = from_csv("at_ms,size_bytes\n");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(Trace, SummarizeEmpty) {
  TraceStats stats = summarize({});
  EXPECT_EQ(stats.num_records, 0u);
  EXPECT_EQ(stats.total_bytes, 0u);
}

// --- backup service -------------------------------------------------------------

struct BackupFixture {
  BackupFixture() : topo(ec2_topology()) {
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      StabilizerOptions opts;
      opts.topology = topo;
      opts.self = n;
      stabs.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
      stores.push_back(std::make_unique<store::LocalStore>());
      kvs.push_back(std::make_unique<kv::WanKV>(
          *stabs.back(), *stores.back(), [](const std::string& key) {
            return static_cast<NodeId>(key[0] - '1');  // "1/..." -> node 0
          }));
      services.push_back(std::make_unique<BackupService>(
          *kvs.back(), std::string(1, '1' + static_cast<char>(n))));
    }
  }
  BackupService& svc(NodeId n) { return *services.at(n); }

  Topology topo;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<store::LocalStore>> stores;
  std::vector<std::unique_ptr<kv::WanKV>> kvs;
  std::vector<std::unique_ptr<BackupService>> services;
};

TEST(StandardPredicates, GeneratedForEc2Topology) {
  Topology topo = ec2_topology();
  auto preds = BackupService::standard_predicates(topo, 0);
  ASSERT_EQ(preds.size(), 6u);
  EXPECT_EQ(preds["OneWNode"], "MAX($ALLWNODES-$MYWNODE)");
  EXPECT_EQ(preds["MajorityWNodes"],
            "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))");
  EXPECT_EQ(preds["AllWNodes"], "MIN($ALLWNODES-$MYWNODE)");
  // Region family covers exactly the three remote regions (Table III).
  EXPECT_EQ(preds["OneRegion"],
            "MAX(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))");
  EXPECT_EQ(preds["MajorityRegions"],
            "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))");
  EXPECT_EQ(preds["AllRegions"],
            "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))");
}

TEST(BackupService, UploadAndFetchEverywhere) {
  BackupFixture f;
  Bytes content = to_bytes("file-content-123");
  auto result = f.svc(0).backup_file("notes.txt", content);
  ASSERT_TRUE(result.is_ok()) << result.message();
  f.sim.run();
  for (NodeId n = 0; n < 8; ++n) {
    auto fetched = f.svc(n).fetch("1", "notes.txt");
    ASSERT_TRUE(fetched.has_value()) << "node " << n;
    EXPECT_EQ(*fetched, content);
  }
}

TEST(BackupService, StabilityOrderingAcrossPredicates) {
  BackupFixture f;
  ASSERT_TRUE(f.svc(0).register_standard_predicates());
  auto result = f.svc(0).backup_file("f.bin", Bytes(4096, 7));
  ASSERT_TRUE(result.is_ok());

  std::map<std::string, TimePoint> stable_at;
  for (const std::string& pred :
       {"OneWNode", "OneRegion", "MajorityRegions", "MajorityWNodes",
        "AllRegions", "AllWNodes"}) {
    ASSERT_TRUE(f.svc(0).wait_stable(result.value(), pred, [&, pred](SeqNum) {
      stable_at[pred] = f.sim.now();
    }));
  }
  f.sim.run();
  ASSERT_EQ(stable_at.size(), 6u);
  for (const std::string& pred :
       {"OneWNode", "OneRegion", "MajorityRegions", "MajorityWNodes",
        "AllRegions", "AllWNodes"})
    EXPECT_TRUE(f.svc(0).is_stable(result.value(), pred)) << pred;

  // Semantic ordering: weaker predicates stabilize no later than stronger.
  EXPECT_LE(stable_at["OneWNode"], stable_at["MajorityWNodes"]);
  EXPECT_LE(stable_at["MajorityWNodes"], stable_at["AllWNodes"]);
  EXPECT_LE(stable_at["OneRegion"], stable_at["MajorityRegions"]);
  EXPECT_LE(stable_at["MajorityRegions"], stable_at["AllRegions"]);
  // OneWNode (node 2, same region, 3.7ms RTT) beats OneRegion (23.29ms).
  EXPECT_LT(stable_at["OneWNode"], stable_at["OneRegion"]);
  // MajorityRegions (Oregon+Ohio) beats MajorityWNodes (needs N.Virginia).
  EXPECT_LT(stable_at["MajorityRegions"], stable_at["MajorityWNodes"]);
}

TEST(BackupService, LargeFileChunksAtEightKb) {
  BackupFixture f;
  auto result = f.svc(0).backup_file("big.iso", Bytes(), 1'000'000);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GE(result.value().chunks, 1'000'000ULL / 8192);
}

TEST(BackupService, NonOwnerUploadRejected) {
  BackupFixture f;
  // Service 1's pool prefix "2" maps to node 1; try uploading via a service
  // whose prefix belongs to someone else.
  BackupService rogue(*f.kvs[0], "3");  // node 0 writing pool of node 2
  auto result = rogue.backup_file("x", to_bytes("y"));
  EXPECT_FALSE(result.is_ok());
}

TEST(BackupService, IsStableFalseBeforeAcks) {
  BackupFixture f;
  ASSERT_TRUE(f.svc(0).register_standard_predicates());
  auto result = f.svc(0).backup_file("f", to_bytes("x"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(f.svc(0).is_stable(result.value(), "AllWNodes"));
}

}  // namespace
}  // namespace stab::backup
