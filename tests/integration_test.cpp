// Cross-cutting integration tests: the full Stabilizer stack over the real
// TCP transport, config-file-driven cluster construction (including shared
// bandwidth pipes), and a KV + backup application stack on a parsed
// topology.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "backup/backup_service.hpp"
#include "kv/wan_kv.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"

namespace stab {
namespace {

uint16_t base_port() {
  return static_cast<uint16_t>(24000 + (::getpid() % 900) * 16);
}

TEST(TcpIntegration, FullStackOverRealSockets) {
  Topology topo;
  topo.add_node("a", "east");
  topo.add_node("b", "east");
  topo.add_node("c", "west");
  LinkSpec l;
  for (NodeId x = 0; x < 3; ++x)
    for (NodeId y = 0; y < 3; ++y)
      if (x != y) topo.set_link(x, y, l);

  auto addrs = loopback_addrs(3, base_port());
  std::vector<std::unique_ptr<TcpTransport>> transports;
  for (NodeId n = 0; n < 3; ++n)
    transports.push_back(std::make_unique<TcpTransport>(n, addrs));
  for (auto& t : transports) ASSERT_TRUE(t->wait_connected(seconds(10)));

  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.ack_interval = millis(1);
    nodes.push_back(std::make_unique<Stabilizer>(opts, *transports[n]));
  }

  // Custom stability level over TCP: receivers verify each message.
  ASSERT_TRUE(nodes[0]->register_predicate(
      "verified_everywhere", "MIN(($ALLWNODES-$MYWNODE).verified)"));
  for (NodeId n = 1; n < 3; ++n) {
    Stabilizer* s = nodes[n].get();
    s->set_delivery_handler(
        [s](NodeId origin, SeqNum seq, BytesView, uint64_t) {
          s->report_stability("verified", origin, seq);
        });
  }
  for (int i = 0; i < 10; ++i)
    nodes[0]->send(to_bytes("tcp-" + std::to_string(i)));
  EXPECT_TRUE(
      nodes[0]->waitfor_blocking(9, "verified_everywhere", seconds(10)));
  EXPECT_EQ(nodes[0]->get_stability_frontier("verified_everywhere"), 9);

  nodes.clear();
  for (auto& t : transports) t->shutdown();
}

TEST(TcpIntegration, NodeRestartHealsAndResumes) {
  // Kill one TCP node mid-run; peers buffer frames for it; a new transport
  // on the same port rejoins and the buffered frames flow.
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(base_port() + 8));
  TcpTransport alpha(0, addrs);
  std::vector<std::string> got;
  std::mutex m;
  auto make_handler = [&](TcpTransport& t) {
    t.set_receive_handler([&](NodeId, BytesView frame, uint64_t) {
      std::lock_guard<std::mutex> l(m);
      got.push_back(to_string(frame));
    });
  };
  {
    TcpTransport beta(1, addrs);
    make_handler(beta);
    ASSERT_TRUE(alpha.wait_connected(seconds(10)));
    alpha.send(1, to_bytes("before-crash"));
    for (int i = 0; i < 2000; ++i) {
      {
        std::lock_guard<std::mutex> l(m);
        if (!got.empty()) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    beta.shutdown();
  }  // beta is gone

  alpha.send(1, to_bytes("while-down-1"));
  alpha.send(1, to_bytes("while-down-2"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpTransport beta2(1, addrs);  // restart on the same port
  make_handler(beta2);
  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (got.size() >= 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  ASSERT_GE(got.size(), 3u);
  EXPECT_EQ(got[0], "before-crash");
  EXPECT_EQ(got[1], "while-down-1");
  EXPECT_EQ(got[2], "while-down-2");
}

TEST(ConfigIntegration, ParsedTopologyDrivesCluster) {
  auto parsed = parse_topology(R"(
# Two regions; the east-west long-haul path is one shared pipe.
node e1 az east
node e2 az east
node w1 az west

bilink e1 e2 lat_ms 1 bw_mbps 1000
link e1 w1 lat_ms 30 bw_mbps 8 pipe haul_out
link e2 w1 lat_ms 30 bw_mbps 8 pipe haul_out
link w1 e1 lat_ms 30 bw_mbps 8 pipe haul_in
link w1 e2 lat_ms 30 bw_mbps 8 pipe haul_in
)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  Topology topo = parsed.value();

  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  // Both east nodes share the 8 Mbit/s haul: two concurrent 1 MB transfers
  // to w1 take ~2 s in total rather than ~1 s each in parallel.
  TimePoint first = kTimeZero, second = kTimeZero;
  int arrivals = 0;
  cluster.transport(2).set_receive_handler([&](NodeId, BytesView, uint64_t) {
    (++arrivals == 1 ? first : second) = sim.now();
  });
  cluster.transport(0).send(2, Bytes(), 1'000'000);
  cluster.transport(1).send(2, Bytes(), 1'000'000);
  sim.run();
  ASSERT_EQ(arrivals, 2);
  EXPECT_NEAR(to_sec(first), 1.03, 0.05);
  EXPECT_NEAR(to_sec(second), 2.03, 0.05);
}

TEST(ConfigIntegration, AppsRunOnParsedTopology) {
  auto parsed = parse_topology(R"(
node alpha az north
node beta az north
node gamma az south
node delta az south
bilink alpha beta lat_ms 2 bw_mbps 500
bilink alpha gamma lat_ms 40 bw_mbps 50
bilink alpha delta lat_ms 45 bw_mbps 50
bilink beta gamma lat_ms 40 bw_mbps 50
bilink beta delta lat_ms 45 bw_mbps 50
bilink gamma delta lat_ms 2 bw_mbps 500
)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.message();
  Topology topo = parsed.value();

  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  auto owner = [&topo](const std::string& key) {
    auto id = topo.find_node(key.substr(0, key.find('/')));
    return id ? *id : kInvalidNode;
  };
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<store::LocalStore>> stores;
  std::vector<std::unique_ptr<kv::WanKV>> kvs;
  std::vector<std::unique_ptr<backup::BackupService>> services;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    stabs.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
    stores.push_back(std::make_unique<store::LocalStore>());
    kvs.push_back(
        std::make_unique<kv::WanKV>(*stabs.back(), *stores.back(), owner));
    services.push_back(std::make_unique<backup::BackupService>(
        *kvs.back(), topo.node(n).name));
  }

  // The standard predicates derive the region structure from the parsed az
  // names: one remote region ("south") for node alpha.
  auto preds = backup::BackupService::standard_predicates(topo, 0);
  EXPECT_EQ(preds["AllRegions"], "MIN(MAX($AZ_south))");
  ASSERT_TRUE(services[0]->register_standard_predicates());

  auto result = services[0]->backup_file("doc.txt", to_bytes("content"));
  ASSERT_TRUE(result.is_ok()) << result.message();
  TimePoint az_done = kTimeZero, all_done = kTimeZero;
  services[0]->wait_stable(result.value(), "OneWNode",
                           [&](SeqNum) { az_done = sim.now(); });
  services[0]->wait_stable(result.value(), "AllWNodes",
                           [&](SeqNum) { all_done = sim.now(); });
  sim.run();
  EXPECT_LT(to_ms(az_done), 10.0);    // beta, 2 ms away
  EXPECT_GT(to_ms(all_done), 85.0);   // delta, 45 ms away, + ack return
  for (NodeId n = 1; n < 4; ++n)
    EXPECT_TRUE(services[n]->fetch("alpha", "doc.txt").has_value());
}

}  // namespace
}  // namespace stab
