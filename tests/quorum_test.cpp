// Quorum protocol tests (§IV-B): configuration validation, write-quorum
// semantics via the KTH_MIN predicate, read-sees-latest-committed-write, and
// the CloudLab Fig 3 setup's latency behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "net/sim_transport.hpp"
#include "quorum/quorum_kv.hpp"

namespace stab::quorum {
namespace {

struct QuorumFixture {
  QuorumFixture(Topology topo, QuorumOptions qopts) : topo_(std::move(topo)) {
    cluster = std::make_unique<SimCluster>(topo_, sim);
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      StabilizerOptions opts;
      opts.topology = topo_;
      opts.self = n;
      stabs.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
      nodes.push_back(std::make_unique<QuorumNode>(*stabs.back(), qopts));
    }
  }
  QuorumNode& node(NodeId n) { return *nodes.at(n); }

  Topology topo_;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<QuorumNode>> nodes;
};

Topology mesh(size_t n, double lat_ms) {
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_node("q" + std::to_string(i), "az");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

TEST(QuorumConfig, RejectsNonIntersectingQuorums) {
  sim::Simulator sim;
  Topology topo = mesh(3, 1);
  SimCluster cluster(topo, sim);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer stab(opts, cluster.transport(0));

  QuorumOptions q;
  q.servers = {0, 1, 2};
  q.read_quorum = 1;
  q.write_quorum = 2;  // 1 + 2 == 3: no intersection
  EXPECT_THROW(QuorumNode(stab, q), std::invalid_argument);
  q.read_quorum = 0;
  q.write_quorum = 2;
  EXPECT_THROW(QuorumNode(stab, q), std::invalid_argument);
  q.read_quorum = 4;
  EXPECT_THROW(QuorumNode(stab, q), std::invalid_argument);
  q.servers.clear();
  EXPECT_THROW(QuorumNode(stab, q), std::invalid_argument);
}

TEST(QuorumConfig, BuildsWritePredicateFromServers) {
  sim::Simulator sim;
  Topology topo = mesh(4, 1);
  SimCluster cluster(topo, sim);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer stab(opts, cluster.transport(0));
  QuorumOptions q;
  q.servers = {0, 2, 3};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumNode node(stab, q);
  EXPECT_EQ(node.write_predicate(), "KTH_MAX(2,$1,$3,$4)");
  EXPECT_TRUE(node.is_server());
}

TEST(Quorum, WriteCompletesAtWriteQuorum) {
  QuorumOptions q;
  q.servers = {0, 1, 2};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumFixture f(mesh(3, 10), q);

  TimePoint committed_at = kTimeZero;
  uint64_t version = 0;
  f.node(0).write("k", to_bytes("v"), [&](uint64_t v) {
    committed_at = f.sim.now();
    version = v;
  });
  f.sim.run();
  EXPECT_GT(version, 0u);
  // Version-read round (RTT 20ms: self + one remote) + write round: the
  // writer counts itself via the origin rule, so one more server ack is
  // needed — one-way 10ms + ack interval + 10ms back.
  EXPECT_GE(to_ms(committed_at), 40.0);
  EXPECT_LE(to_ms(committed_at), 48.0);
}

TEST(Quorum, ReadSeesCommittedWrite) {
  QuorumOptions q;
  q.servers = {0, 1, 2};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumFixture f(mesh(4, 5), q);

  bool write_done = false;
  f.node(3).write("k", to_bytes("value-1"), [&](uint64_t) {
    write_done = true;
    // Read from a different node after the write committed.
    f.node(0).read("k", [&](ReadResult r) {
      EXPECT_TRUE(r.found);
      EXPECT_EQ(to_string(r.value), "value-1");
      EXPECT_GE(r.responses, 2u);
      write_done = true;
    });
  });
  f.sim.run();
  EXPECT_TRUE(write_done);
}

TEST(Quorum, ReadMissingKey) {
  QuorumOptions q;
  q.servers = {0, 1, 2};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumFixture f(mesh(3, 5), q);
  bool done = false;
  f.node(0).read("nope", [&](ReadResult r) {
    EXPECT_FALSE(r.found);
    done = true;
  });
  f.sim.run();
  EXPECT_TRUE(done);
}

TEST(Quorum, LatestVersionWinsAcrossWriters) {
  QuorumOptions q;
  q.servers = {0, 1, 2};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumFixture f(mesh(3, 5), q);

  // Sequential writes from different writers; later must win.
  f.node(0).write("k", to_bytes("from-0"), [&](uint64_t) {
    f.node(1).write("k", to_bytes("from-1"), [&](uint64_t) {
      f.node(2).read("k", [&](ReadResult r) {
        ASSERT_TRUE(r.found);
        EXPECT_EQ(to_string(r.value), "from-1");
      });
    });
  });
  f.sim.run();
}

TEST(Quorum, Fig3SetupReadLatencyTracksSecondFastestServer) {
  // Fig 3: quorum servers UT1, WI, CLEM; writer UT2, reader UT1; Nr=Nw=2.
  // The read completes when the 2nd response arrives: UT1 locally (0 ms) +
  // the faster of WI (35.6 RTT) / CLEM (50.9 RTT) => ~RTT(WI).
  Topology topo = cloudlab_topology();
  QuorumOptions q;
  q.servers = {cloudlab::kUtah1, cloudlab::kWisconsin, cloudlab::kClemson};
  q.read_quorum = 2;
  q.write_quorum = 2;
  QuorumFixture f(topo, q);

  f.node(cloudlab::kUtah2).write("obj", to_bytes("x"), [](uint64_t) {});
  f.sim.run();

  TimePoint start = f.sim.now();
  TimePoint done = kTimeZero;
  f.node(cloudlab::kUtah1).read("obj", [&](ReadResult r) {
    EXPECT_TRUE(r.found);
    done = f.sim.now();
  });
  f.sim.run();
  double latency_ms = to_ms(done - start);
  EXPECT_NEAR(latency_ms, 35.612, 2.0);  // ≈ RTT of Wisconsin
}

TEST(Quorum, ServersStoreReplicas) {
  QuorumOptions q;
  q.servers = {0, 1};
  q.read_quorum = 1;
  q.write_quorum = 2;
  QuorumFixture f(mesh(2, 1), q);
  f.node(0).write("k", to_bytes("v"), [](uint64_t) {});
  f.sim.run();
  auto at1 = f.node(1).local_value("k");
  ASSERT_TRUE(at1.has_value());
  EXPECT_EQ(to_string(at1->second), "v");
}

// Property: quorum intersection — any committed write is visible to every
// subsequent quorum read, across random quorum configurations.
TEST(QuorumProperty, CommittedWritesAlwaysVisible) {
  Rng rng(42);
  for (int iter = 0; iter < 10; ++iter) {
    size_t n = 3 + rng.next_below(3);           // 3..5 servers
    size_t nw = 1 + rng.next_below(n);          // 1..n
    size_t nr = n - nw + 1;                     // minimal intersecting read
    QuorumOptions q;
    for (NodeId i = 0; i < n; ++i) q.servers.push_back(i);
    q.read_quorum = nr;
    q.write_quorum = nw;
    QuorumFixture f(mesh(n, 1 + rng.next_below(20)), q);

    int committed = 0, verified = 0;
    for (int w = 0; w < 5; ++w) {
      std::string value = "v" + std::to_string(w);
      f.node(static_cast<NodeId>(rng.next_below(n)))
          .write("key", to_bytes(value), [&, value](uint64_t) {
            ++committed;
            f.node(static_cast<NodeId>(rng.next_below(n)))
                .read("key", [&, value](ReadResult r) {
                  ASSERT_TRUE(r.found);
                  // Read must see this write or a newer one.
                  EXPECT_GE(to_string(r.value).back(), value.back());
                  ++verified;
                });
          });
      f.sim.run();
    }
    EXPECT_EQ(committed, 5);
    EXPECT_EQ(verified, 5);
  }
}

}  // namespace
}  // namespace stab::quorum
