// Chaos campaigns: seed-replayable WAN fault injection over whole clusters,
// with crash-restart rejoin via the snapshot + RESUME path.
//
// ChaosInvariantChecker (folded into the ChaosCluster harness) asserts,
// across scripted and random campaigns:
//   * frontier monotonicity — every monitor callback must advance strictly,
//     including across a crash-restart of the observing node;
//   * lossless FIFO delivery once faults heal — every live node's delivery
//     log of every origin is exactly 0,1,2,...,last_sent(origin);
//   * exactly-once stall/recover episode accounting — stall and recover
//     handlers alternate per (observer, peer) pair, recover counts are
//     bounded by stall counts plus observed restarts, and handler counts
//     equal the StabilizerStats episode counters;
//   * agreement between post-heal frontiers under kIndexed dispatch and the
//     kLegacyScan baseline, and determinism of a whole campaign per seed.
//
// A failing random campaign prints "CHAOS REPLAY SEED: <seed>" so the run
// can be reproduced exactly; scripts/ci.sh greps for that marker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/stabilizer.hpp"
#include "failover/failover.hpp"
#include "net/sim_transport.hpp"
#include "obs/obs.hpp"
#include "shard/sharded_stabilizer.hpp"
#include "sim/chaos.hpp"

namespace stab {
namespace {

using sim::ChaosScript;
using sim::ChaosEvent;
using DispatchMode = FrontierEngine::DispatchMode;

Topology chaos_mesh(size_t n, const std::vector<std::string>& regions,
                    double lat_ms = 5) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i),
               i < regions.size() ? regions[i] : "r" + std::to_string(i % 2));
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  s.bandwidth_bps = mbps(100);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

/// Cluster under chaos: per-node Stabilizers on a SimCluster, with the
/// ChaosSchedule's crash/restart handlers wired to the §III-E restart path
/// (control-state snapshot at crash, restore + RESUME rejoin at restart)
/// and every invariant continuously checked.
struct ChaosCluster {
  ChaosCluster(Topology topo, StabilizerOptions base, uint64_t seed,
               DispatchMode mode,
               std::vector<std::pair<std::string, std::string>> predicates)
      : topo_(std::move(topo)),
        base_(std::move(base)),
        mode_(mode),
        predicates_(std::move(predicates)) {
    const size_t n = topo_.num_nodes();
    cluster = std::make_unique<SimCluster>(topo_, sim);
    cluster->network().set_drop_rng_seed(seed);
    chaos = std::make_unique<sim::ChaosSchedule>(sim, cluster->network());
    chaos->set_crash_handler([this](NodeId node) { crash(node); });
    chaos->set_restart_handler([this](NodeId node) { restart(node); });

    logs.assign(n, std::vector<std::vector<SeqNum>>(n));
    cursors.assign(n, std::vector<std::map<std::string, SeqNum>>(n));
    stall_count.assign(n, std::vector<uint64_t>(n, 0));
    recover_count.assign(n, std::vector<uint64_t>(n, 0));
    open_stall.assign(n, std::vector<bool>(n, false));
    lost_stalls.assign(n, std::vector<uint64_t>(n, 0));
    restart_count.assign(n, 0);
    snapshots.resize(n);
    nodes.resize(n);
    for (NodeId id = 0; id < n; ++id) boot(id, nullptr);
  }

  Stabilizer& node(NodeId id) { return *nodes.at(id); }
  size_t num_nodes() const { return topo_.num_nodes(); }

  void boot(NodeId id, const Bytes* snapshot) {
    StabilizerOptions opts = base_;
    opts.topology = topo_;
    opts.self = id;
    auto n = std::make_unique<Stabilizer>(opts, cluster->transport(id));
    n->set_delivery_handler(
        [this, id](NodeId origin, SeqNum seq, BytesView, uint64_t) {
          logs[id][origin].push_back(seq);
        });
    n->set_peer_stall_handler([this, id](NodeId peer) {
      EXPECT_FALSE(open_stall[id][peer])
          << "double stall without recovery: observer " << id << " peer "
          << peer;
      open_stall[id][peer] = true;
      ++stall_count[id][peer];
    });
    n->set_peer_recovered_handler([this, id](NodeId peer) {
      open_stall[id][peer] = false;
      ++recover_count[id][peer];
    });
    if (snapshot) {
      EXPECT_TRUE(n->restore_control_state(*snapshot));
    } else {
      for (const auto& [key, source] : predicates_)
        EXPECT_TRUE(n->register_predicate(key, source)) << key;
    }
    for (NodeId origin = 0; origin < topo_.num_nodes(); ++origin) {
      n->engine(origin).set_dispatch_mode(mode_);
      for (const auto& [key, source] : predicates_) {
        EXPECT_TRUE(n->monitor_stability_frontier(
            key,
            [this, id, origin, key = key](SeqNum frontier, BytesView) {
              auto [it, fresh] =
                  cursors[id][origin].try_emplace(key, kNoSeq);
              EXPECT_GT(frontier, it->second)
                  << "frontier regressed: node " << id << " origin " << origin
                  << " key " << key;
              it->second = frontier;
              (void)fresh;
            },
            origin));
      }
    }
    nodes[id] = std::move(n);
  }

  // ChaosSchedule crash handler: the network already marks the node down.
  // Snapshot at the crash instant models the paper's synchronously
  // persisted frontier state; the process (volatile state) then dies.
  void crash(NodeId id) {
    snapshots[id] = nodes[id]->snapshot_control_state();
    nodes[id].reset();
    cluster->transport(id).detach();
    // Stall state is volatile: episodes the observer had open die with its
    // process and never see a matching recover. The restarted instance
    // re-detects a still-stalled peer as a fresh episode.
    for (NodeId p = 0; p < topo_.num_nodes(); ++p)
      if (open_stall[id][p]) {
        open_stall[id][p] = false;
        ++lost_stalls[id][p];
      }
  }

  void restart(NodeId id) {
    ++restart_count[id];
    cluster->transport(id).reattach();
    boot(id, &snapshots[id]);
  }

  /// Every node sends one message each `interval` of virtual time (skipping
  /// intervals where it is crashed) until `until`.
  void start_traffic(Duration interval, TimePoint until) {
    for (NodeId id = 0; id < topo_.num_nodes(); ++id)
      schedule_send(id, interval, until);
  }

  void schedule_send(NodeId id, Duration interval, TimePoint until) {
    sim.schedule_after(interval, [this, id, interval, until] {
      if (sim.now() > until) return;
      if (nodes[id]) nodes[id]->send(to_bytes("chaos"));
      schedule_send(id, interval, until);
    });
  }

  /// Post-heal invariants: complete lossless FIFO logs, frontier agreement
  /// with every origin's stream end, and episode accounting.
  void check_converged() {
    const size_t n = topo_.num_nodes();
    for (NodeId o = 0; o < n; ++o) {
      ASSERT_TRUE(nodes[o]) << "node " << o << " not live after heal";
      for (NodeId g = 0; g < n; ++g) {
        if (o == g) continue;
        SeqNum last = nodes[g]->last_sent();
        const auto& log = logs[o][g];
        ASSERT_EQ(log.size(), static_cast<size_t>(last + 1))
            << "node " << o << " missed messages of origin " << g;
        for (size_t i = 0; i < log.size(); ++i)
          ASSERT_EQ(log[i], static_cast<SeqNum>(i))
              << "FIFO violation at node " << o << " origin " << g;
      }
      for (NodeId g = 0; g < n; ++g)
        for (const auto& [key, source] : predicates_)
          EXPECT_EQ(nodes[o]->get_stability_frontier(key, g),
                    nodes[g]->last_sent())
              << "node " << o << " key " << key << " origin " << g;
    }
    for (NodeId o = 0; o < n; ++o) {
      uint64_t stalls = 0, recovers = 0;
      for (NodeId p = 0; p < n; ++p) {
        stalls += stall_count[o][p];
        recovers += recover_count[o][p];
        EXPECT_FALSE(open_stall[o][p])
            << "unrecovered stall after heal: observer " << o << " peer " << p;
        // Episodes lost to the observer's own crash close without a recover;
        // every surviving episode closes exactly once, and RESUME may add
        // one stall-less recover per observed restart of the peer.
        uint64_t surviving = stall_count[o][p] - lost_stalls[o][p];
        EXPECT_GE(recover_count[o][p], surviving)
            << "observer " << o << " peer " << p;
        EXPECT_LE(recover_count[o][p], surviving + restart_count[p])
            << "recover episodes beyond stalls+restarts: observer " << o
            << " peer " << p;
      }
#if STAB_OBS_ENABLED
      if (restart_count[o] == 0) {
        // A restarted observer's stats reset with its process; for everyone
        // else the stats counters must equal the handler-firing counts.
        // (Registry-backed stats read zero under -DSTAB_OBS=OFF, so the
        // cross-check only exists in instrumented builds.)
        StabilizerStats s = nodes[o]->stats();
        EXPECT_EQ(s.peer_stall_episodes, stalls) << "observer " << o;
        EXPECT_EQ(s.peer_recover_episodes, recovers) << "observer " << o;
      }
#else
      (void)stalls;
      (void)recovers;
#endif
    }
  }

  /// Mode-independent state: frontiers, delivery logs, cursors. Equal across
  /// kIndexed and kLegacyScan runs of the same campaign.
  std::string core_digest() const {
    std::ostringstream os;
    const size_t n = topo_.num_nodes();
    for (NodeId o = 0; o < n; ++o) {
      os << "n" << o << " last=" << nodes[o]->last_sent();
      for (NodeId g = 0; g < n; ++g) {
        os << " [" << g << " d=" << nodes[o]->delivered_through(g);
        for (const auto& [key, source] : predicates_)
          os << " " << key << "=" << nodes[o]->get_stability_frontier(key, g);
        uint64_t h = 1469598103934665603ULL;  // FNV-1a over the delivery log
        for (SeqNum s : logs[o][g])
          h = (h ^ static_cast<uint64_t>(s)) * 1099511628211ULL;
        os << " log=" << logs[o][g].size() << ":" << h << "]";
      }
      os << "\n";
    }
    return os.str();
  }

  /// Full state including stats — equal across two runs of the same
  /// (seed, script, mode): the determinism guarantee.
  std::string digest() const {
    std::ostringstream os;
    os << core_digest();
    for (NodeId o = 0; o < topo_.num_nodes(); ++o) {
      StabilizerStats s = nodes[o]->stats();
      os << "stats" << o << " tx=" << s.frames_transmitted
         << " rtx=" << s.retransmits_sent << " dup=" << s.duplicates_dropped
         << " gap=" << s.gaps_detected << " stall=" << s.peer_stall_episodes
         << " rec=" << s.peer_recover_episodes << " rs=" << s.resumes_sent
         << " rr=" << s.resumes_received << " epoch=" << nodes[o]->session_epoch();
      for (NodeId p = 0; p < topo_.num_nodes(); ++p)
        os << " e" << p << "=" << nodes[o]->peer_session_epoch(p);
      os << "\n";
    }
    const auto& c = chaos->counters();
    os << "chaos down=" << c.links_downed << " up=" << c.links_restored
       << " part=" << c.partitions << " heal=" << c.heals
       << " crash=" << c.crashes << " restart=" << c.restarts << "\n";
    return os.str();
  }

  Topology topo_;
  StabilizerOptions base_;
  DispatchMode mode_;
  std::vector<std::pair<std::string, std::string>> predicates_;

  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::unique_ptr<sim::ChaosSchedule> chaos;

  // Checker state — lives outside the Stabilizers so it survives restarts.
  std::vector<std::vector<std::vector<SeqNum>>> logs;  // [node][origin]
  std::vector<std::vector<std::map<std::string, SeqNum>>> cursors;
  std::vector<std::vector<uint64_t>> stall_count;    // [observer][peer]
  std::vector<std::vector<uint64_t>> recover_count;  // [observer][peer]
  std::vector<std::vector<bool>> open_stall;
  std::vector<std::vector<uint64_t>> lost_stalls;  // open at observer crash
  std::vector<int> restart_count;
  std::vector<Bytes> snapshots;
  std::vector<std::unique_ptr<Stabilizer>> nodes;  // last: destroyed first
};

StabilizerOptions chaos_base_options() {
  StabilizerOptions base;
  base.ack_interval = millis(2);
  base.retransmit_timeout = millis(150);
  base.peer_stall_timeout = millis(1500);
  base.broadcast_acks = true;
  return base;
}

std::vector<std::pair<std::string, std::string>> chaos_predicates() {
  return {{"all", "MIN($ALLWNODES)"}, {"one", "MAX($ALLWNODES-$MYWNODE)"}};
}

// --- the ISSUE's scripted acceptance campaign ---------------------------------
//
// 4 nodes in regions r0={n0,n1}, r1={n2}, r2={n3}; 2% loss on every link
// throughout; node 2 crashes at t=5s and restarts at t=20s; regions
// {r0,r1} | {r2} partition from t=8s for 10s. Traffic from every live node
// until t=24s; campaign judged at t=40s.

ChaosScript scripted_campaign() {
  ChaosScript script;
  ChaosEvent loss;
  loss.at = kTimeZero;
  loss.kind = ChaosEvent::Kind::kLossSet;
  loss.a = kInvalidNode;
  loss.value = 0.02;
  script.push_back(loss);
  sim::add_crash_restart(script, seconds(5), seconds(15), 2);
  sim::add_partition(script, seconds(8), seconds(10),
                     {{0, 1, 2}, {3}});
  sim::finalize_script(script);
  return script;
}

std::unique_ptr<ChaosCluster> run_scripted(
    uint64_t seed, DispatchMode mode,
    StabilizerOptions base = chaos_base_options()) {
  auto c = std::make_unique<ChaosCluster>(
      chaos_mesh(4, {"r0", "r0", "r1", "r2"}), std::move(base), seed, mode,
      chaos_predicates());
  c->chaos->arm(scripted_campaign());
  c->start_traffic(millis(100), seconds(24));
  c->sim.run_until(seconds(40));
  return c;
}

TEST(ChaosCampaign, ScriptedCrashPartitionLossCampaignConverges) {
  auto c = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  c->check_converged();

  // Node 2 rejoined via RESUME: one epoch announced, seen by every peer.
  EXPECT_EQ(c->node(2).session_epoch(), 1u);
  for (NodeId o : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(c->node(o).peer_session_epoch(2), 1u) << "observer " << o;
#if STAB_OBS_ENABLED
    EXPECT_GT(c->node(o).stats().resumes_received, 0u) << "observer " << o;
#endif
  }
#if STAB_OBS_ENABLED
  EXPECT_GT(c->node(2).stats().resumes_sent, 0u);
#endif

  // Exactly one stall -> recover episode per affected (observer, peer)
  // pair: 0,1 observe the crash of 2 and the partition of 3; 3 observes
  // the partition from everyone (2 already crashed when it begins).
  std::vector<std::pair<NodeId, NodeId>> expected = {
      {0, 2}, {1, 2}, {0, 3}, {1, 3}, {3, 0}, {3, 1}, {3, 2}};
  for (NodeId o = 0; o < c->num_nodes(); ++o)
    for (NodeId p = 0; p < c->num_nodes(); ++p) {
      bool hit = false;
      for (auto& [eo, ep] : expected) hit |= (eo == o && ep == p);
      EXPECT_EQ(c->stall_count[o][p], hit ? 1u : 0u)
          << "observer " << o << " peer " << p;
      EXPECT_EQ(c->recover_count[o][p], hit ? 1u : 0u)
          << "observer " << o << " peer " << p;
    }

  // The campaign stressed what it claims to stress: the partition forced
  // go-back-N re-sends, and node 2 received its peers' RESUME replies.
#if STAB_OBS_ENABLED
  EXPECT_GT(c->node(0).stats().retransmits_sent, 0u);
  EXPECT_GT(c->node(2).stats().resumes_received, 0u);
#endif
  for (NodeId o = 0; o < c->num_nodes(); ++o)
    EXPECT_FALSE(c->node(o).resume_pending(2)) << "observer " << o;
}

TEST(ChaosCampaign, ScriptedCampaignIsDeterministicPerSeed) {
  auto a = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  auto b = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  EXPECT_EQ(a->digest(), b->digest());

  auto other = run_scripted(0xBADF00D, DispatchMode::kIndexed);
  other->check_converged();  // different seed: same invariants...
#if STAB_OBS_ENABLED
  // ...different execution. The divergence shows up in the stats half of
  // the digest (retransmit/duplicate counts follow the loss RNG); the core
  // half converges to the same post-heal state by design, so this check
  // needs the instrumented build.
  EXPECT_NE(a->digest(), other->digest());
#endif
}

TEST(ChaosCampaign, LegacyScanAgreesWithIndexedPostHeal) {
  auto indexed = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  auto legacy = run_scripted(0xC0FFEE, DispatchMode::kLegacyScan);
  indexed->check_converged();
  legacy->check_converged();
  EXPECT_EQ(indexed->core_digest(), legacy->core_digest());
}

// The pipelined control plane coalesces ack ingestion through atomic cells
// and defers work to a drain, but must land on the same application-visible
// state as the locked path. Over the sim transport the pipeline drains
// inline (single_threaded transport), so the whole campaign — crash,
// snapshot/RESUME rejoin, partition, loss — stays deterministic and the
// post-heal core digests must be byte-identical.
TEST(ChaosCampaign, PipelinedAgreesWithLockedPostHeal) {
  StabilizerOptions piped = chaos_base_options();
  piped.pipeline_mode = StabilizerOptions::PipelineMode::kPipelined;
  auto pipelined = run_scripted(0xC0FFEE, DispatchMode::kIndexed, piped);
  auto locked = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  pipelined->check_converged();
  locked->check_converged();
  EXPECT_EQ(pipelined->core_digest(), locked->core_digest());

  // Pipelined campaigns replay deterministically per seed, like every
  // other mode (the sweep below relies on this for its replay marker).
  auto again = run_scripted(0xC0FFEE, DispatchMode::kIndexed, piped);
  EXPECT_EQ(pipelined->core_digest(), again->core_digest());
}

// --- deferred stability propagation (DESIGN.md §10) ---------------------------
//
// Deferred mode trades propagation latency for control bandwidth: mirrors
// accumulate cumulative report vectors and flush them as merged REPORTBATCH
// frames on a timer. The batching must be invisible to the application —
// the same campaign (loss + crash/restart rejoin + partition) lands on the
// same post-heal core digest as the immediate ACKBATCH path, per seed.
TEST(ChaosCampaign, DeferredAgreesWithImmediatePostHeal) {
  StabilizerOptions deferred = chaos_base_options();
  deferred.report_path = StabilizerOptions::ReportPath::kDeferred;
  deferred.deferred_flush_interval = millis(20);
  auto d = run_scripted(0xC0FFEE, DispatchMode::kIndexed, deferred);
  auto imm = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  d->check_converged();
  imm->check_converged();
  EXPECT_EQ(d->core_digest(), imm->core_digest());

  // Deferred campaigns replay deterministically per seed.
  auto again = run_scripted(0xC0FFEE, DispatchMode::kIndexed, deferred);
  EXPECT_EQ(d->core_digest(), again->core_digest());

#if STAB_OBS_ENABLED
  // The campaign genuinely ran on the deferred path: flush timers fired and
  // REPORTBATCH frames moved (surviving nodes only — a restart resets stats).
  uint64_t flushes = 0, batches = 0;
  for (NodeId o = 0; o < d->num_nodes(); ++o) {
    flushes += d->node(o).stats().deferred_flushes;
    batches += d->node(o).stats().report_batches_sent;
  }
  EXPECT_GT(flushes, 0u);
  EXPECT_GT(batches, 0u);
#endif
}

// The delta threshold flushes early when enough cumulative seq-advance has
// accumulated; semantics must stay byte-identical to timer-only flushing.
TEST(ChaosCampaign, DeferredDeltaThresholdAgreesPostHeal) {
  StabilizerOptions deferred = chaos_base_options();
  deferred.report_path = StabilizerOptions::ReportPath::kDeferred;
  deferred.deferred_flush_interval = millis(20);
  deferred.deferred_delta_threshold = 8;
  auto d = run_scripted(0xC0FFEE, DispatchMode::kIndexed, deferred);
  auto imm = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  d->check_converged();
  imm->check_converged();
  EXPECT_EQ(d->core_digest(), imm->core_digest());
}

// Aggregated mesh: r0={n0,n1} with n0 aggregating, r1={n2,n3} with n2
// aggregating. The scripted campaign crashes n2 — n3's aggregator — so the
// campaign covers both the AZ merge (n1 -> n0) and the fallback path (n3
// flushes directly while its aggregator is down or partitioned away).
std::unique_ptr<ChaosCluster> run_agg_scripted(uint64_t seed,
                                               StabilizerOptions base) {
  Topology topo = chaos_mesh(4, {"r0", "r0", "r1", "r1"});
  topo.set_az_aggregator("r0", 0);
  topo.set_az_aggregator("r1", 2);
  auto c = std::make_unique<ChaosCluster>(std::move(topo), std::move(base),
                                          seed, DispatchMode::kIndexed,
                                          chaos_predicates());
  c->chaos->arm(scripted_campaign());
  c->start_traffic(millis(100), seconds(24));
  c->sim.run_until(seconds(40));
  return c;
}

TEST(ChaosCampaign, DeferredAggregatedAgreesAndBypassesDeadAggregator) {
  StabilizerOptions agg = chaos_base_options();
  agg.report_path = StabilizerOptions::ReportPath::kDeferredAggregated;
  agg.deferred_flush_interval = millis(20);
  auto aggregated = run_agg_scripted(0xC0FFEE, agg);
  auto immediate = run_agg_scripted(0xC0FFEE, chaos_base_options());
  aggregated->check_converged();
  immediate->check_converged();
  EXPECT_EQ(aggregated->core_digest(), immediate->core_digest());

  auto again = run_agg_scripted(0xC0FFEE, agg);
  EXPECT_EQ(aggregated->core_digest(), again->core_digest());

#if STAB_OBS_ENABLED
  // n0 merged its member's (n1's) vectors into long-haul flushes.
  EXPECT_GT(aggregated->node(0).stats().agg_blocks_absorbed, 0u);
  // n3 kept reporting while its aggregator n2 was crashed (t=5s..20s) by
  // falling back to direct fan-out — reports bypass a dead aggregator.
  EXPECT_GT(aggregated->node(3).stats().agg_fallback_direct, 0u);
  // After n2's rejoin the AZ merge resumed: n2's post-restart stats count
  // fresh absorbed blocks from n3 (traffic runs until t=24s).
  EXPECT_GT(aggregated->node(2).stats().agg_blocks_absorbed, 0u);
#endif
}

// Small-frame coalescing changes the wire-level framing (kDataBatch) and the
// flush timing (deferred pump) but must not change what the application
// observes: lossless FIFO logs, frontier convergence, and the
// indexed-vs-legacy dispatch differential.
TEST(ChaosCampaign, CoalescedCampaignHoldsInvariantsAcrossDispatchModes) {
  StabilizerOptions coalesced = chaos_base_options();
  coalesced.coalesce_max_frames = 16;
  auto indexed = run_scripted(0xC0FFEE, DispatchMode::kIndexed, coalesced);
  auto legacy = run_scripted(0xC0FFEE, DispatchMode::kLegacyScan, coalesced);
  indexed->check_converged();  // FIFO + completeness + frontier agreement
  legacy->check_converged();
  EXPECT_EQ(indexed->core_digest(), legacy->core_digest());

  // The crash-rejoin's go-back-N rewind pumps a run of consecutive slots
  // through one flush, so the campaign genuinely exercises batching.
#if STAB_OBS_ENABLED
  uint64_t coalesced_frames = 0;
  for (NodeId o = 0; o < indexed->num_nodes(); ++o)
    coalesced_frames += indexed->node(o).stats().frames_coalesced;
  EXPECT_GT(coalesced_frames, 0u);
#endif

  // Post-convergence application state is framing-independent: the same
  // campaign without coalescing lands on the identical core digest.
  auto plain = run_scripted(0xC0FFEE, DispatchMode::kIndexed);
  EXPECT_EQ(indexed->core_digest(), plain->core_digest());
}

// --- observability of a campaign ----------------------------------------------

#if STAB_OBS_ENABLED

/// Deterministic observability artifacts of one scripted campaign: per-node
/// metrics (node<N>.-prefixed) plus a cluster-wide merged frontier-lag
/// histogram, and the shared message-lifecycle trace. Both strings are
/// byte-identical across runs of the same seed — the sim clock stamps every
/// record and the FIFO event order fixes the interleaving.
struct ObsArtifacts {
  std::string metrics;
  std::string trace;
  std::string probe;          // probe registry + windowed percentile views
  uint64_t lag_samples = 0;   // merged control.frontier_lag count
  uint64_t trace_records = 0;
  uint64_t trace_dropped = 0;
  uint64_t stable_spans = 0;  // probe send->stable closes, all type keys
};

ObsArtifacts run_observed_campaign(uint64_t seed) {
  // Subscribe to the span endpoints only: the 2ms ack heartbeat would flood
  // the buffer with kAckReport records that add nothing to the lifecycle
  // picture of a campaign.
  auto tracer = std::make_shared<obs::Tracer>(
      size_t{1} << 18, obs::event_bit(obs::SpanEvent::kBroadcast) |
                           obs::event_bit(obs::SpanEvent::kDeliver) |
                           obs::event_bit(obs::SpanEvent::kFrontierFire));
  // Cluster-shared latency probe (every node's stamps come from the one sim
  // clock): sample every sequence so the short campaign still closes spans
  // across the crash/partition schedule.
  obs::LatencyProbeOptions popt;
  popt.sample_every = 1;
  auto probe = std::make_shared<obs::LatencyProbe>(popt);
  StabilizerOptions base = chaos_base_options();
  base.tracer = tracer;
  base.probe = probe;
  auto c = run_scripted(seed, DispatchMode::kIndexed, std::move(base));

  ObsArtifacts out;
  std::ostringstream ms;
  obs::MetricsRegistry cluster;  // scratch home for merged histograms
  obs::Histogram& lag = cluster.histogram("cluster.control.frontier_lag");
  for (NodeId n = 0; n < c->num_nodes(); ++n) {
    c->node(n).metrics().dump_jsonl(ms, "node" + std::to_string(n) + ".");
    if (const obs::Histogram* h =
            c->node(n).metrics().find_histogram("control.frontier_lag"))
      lag.merge(*h);
  }
  cluster.dump_jsonl(ms);
  out.metrics = ms.str();
  out.lag_samples = lag.count();

  std::ostringstream ts;
  tracer->export_jsonl(ts);
  out.trace = ts.str();
  out.trace_records = tracer->size();
  out.trace_dropped = tracer->dropped();

  // Probe export: close every epoch the campaign's end time has passed,
  // then dump since-boot histograms + windowed views. Advancing off the
  // final sim clock keeps the windowed snapshot a pure function of the
  // seed.
  probe->advance_windows(c->sim.now() + seconds(60));
  std::ostringstream ps;
  probe->registry().dump_jsonl(ps, "cluster.");
  probe->export_windows_jsonl(ps);
  out.probe = ps.str();
  for (const std::string& name : probe->registry().names())
    if (name.rfind("probe.send_to_stable.", 0) == 0)
      if (const obs::Histogram* h = probe->registry().find_histogram(name))
        out.stable_spans += h->count();
  return out;
}

/// Write `body` to $STAB_CHAOS_OBS_DIR (or the cwd) for offline analysis.
void write_artifact(const std::string& name, const std::string& body) {
  std::string dir = ".";
  if (const char* env = std::getenv("STAB_CHAOS_OBS_DIR")) dir = env;
  std::ofstream f(dir + "/" + name, std::ios::trunc);
  f << body;
}

TEST(ChaosObs, CampaignEmitsFrontierLagAndByteIdenticalTracePerSeed) {
  ObsArtifacts a = run_observed_campaign(0xC0FFEE);
  ObsArtifacts b = run_observed_campaign(0xC0FFEE);

  // The determinism guarantee extends to the observability artifacts
  // themselves: same seed => byte-identical metrics, trace, and probe
  // exports (the windowed percentiles included — the probe advances its
  // epochs off the sim clock only).
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.probe, b.probe);

  // The campaign populated the frontier-lag histogram (crash + partition
  // force real lag) and produced a non-trivial lifecycle trace with no
  // records lost to the capacity bound.
  EXPECT_GT(a.lag_samples, 0u);
  EXPECT_GT(a.trace_records, 0u);
  EXPECT_EQ(a.trace_dropped, 0u);
  EXPECT_NE(a.metrics.find("cluster.control.frontier_lag"), std::string::npos);
  EXPECT_NE(a.trace.find("\"ev\":\"frontier_fire\""), std::string::npos);

  // The probe joined real spans across the fault schedule: per-type
  // send->stable percentiles exist both since-boot and windowed.
  EXPECT_GT(a.stable_spans, 0u);
  EXPECT_NE(a.probe.find("probe.send_to_stable."), std::string::npos);
  EXPECT_NE(a.probe.find("\"type\":\"windowed_histogram\""),
            std::string::npos);

  // A different seed follows a different schedule — the artifacts diverge.
  ObsArtifacts other = run_observed_campaign(0xBADF00D);
  EXPECT_NE(a.trace, other.trace);

  write_artifact("chaos_obs_metrics.jsonl", a.metrics);
  write_artifact("chaos_obs_trace.jsonl", a.trace);
  write_artifact("chaos_obs_probe.jsonl", a.probe);
}

#endif  // STAB_OBS_ENABLED

// --- random campaigns ---------------------------------------------------------

void run_random_campaign(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  const size_t n = 4 + seed % 3;  // 4..6 nodes
  std::vector<std::string> regions;
  for (size_t i = 0; i < n; ++i) regions.push_back("r" + std::to_string(i % 3));

  sim::RandomCampaignParams params;
  params.num_nodes = n;
  params.fault_window = seconds(12);
  params.heal_deadline = seconds(18);
  params.crashable = {static_cast<NodeId>(n - 1)};
  params.background_loss = 0.01;
  ChaosScript script = sim::make_random_script(seed, params);

  // The sweep runs with coalescing enabled: crash/restart, RESUME rewind and
  // loss-burst retransmits all reuse cached frames under batching. The
  // scripted campaigns above keep the uncoalesced path covered.
  StabilizerOptions base = chaos_base_options();
  base.coalesce_max_frames = 16;
  // Odd seeds run the pipelined control plane so the sweep exercises both
  // ingestion paths under the same fault mix (sim drains inline, so the
  // campaign stays seed-deterministic either way).
  if (seed % 2 == 1)
    base.pipeline_mode = StabilizerOptions::PipelineMode::kPipelined;
  ChaosCluster c(chaos_mesh(n, regions), std::move(base), seed,
                 DispatchMode::kIndexed, chaos_predicates());
  c.chaos->arm(script);
  c.start_traffic(millis(100), seconds(22));
  c.sim.run_until(seconds(60));
  c.check_converged();
}

TEST(ChaosProperty, RandomCampaignsHoldInvariants) {
  std::vector<uint64_t> seeds = {11, 22, 33, 44};
  if (const char* env = std::getenv("STAB_CHAOS_SEEDS")) {
    seeds.clear();
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  for (uint64_t seed : seeds) {
    run_random_campaign(seed);
    if (::testing::Test::HasFailure()) {
      // The marker scripts/ci.sh greps for; replay with
      //   STAB_CHAOS_SEEDS=<seed> ./chaos_test
      std::cerr << "CHAOS REPLAY SEED: " << seed << std::endl;
      return;
    }
  }
}

TEST(ChaosProperty, RandomScriptGenerationIsDeterministic) {
  sim::RandomCampaignParams params;
  params.num_nodes = 5;
  params.crashable = {4};
  ChaosScript a = sim::make_random_script(42, params);
  ChaosScript b = sim::make_random_script(42, params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  ChaosScript other = sim::make_random_script(43, params);
  EXPECT_FALSE(a.size() == other.size() &&
               [&] {
                 for (size_t i = 0; i < a.size(); ++i)
                   if (a[i].at != other[i].at) return false;
                 return true;
               }());
  // Every fault heals by the deadline.
  for (const ChaosEvent& e : a)
    EXPECT_LE(e.at, params.heal_deadline);
}

// --- focused RESUME tests -----------------------------------------------------

TEST(ChaosResume, RejoinHasNoSequenceGap) {
  ChaosCluster c(chaos_mesh(3, {"r0", "r0", "r1"}), chaos_base_options(), 7,
                 DispatchMode::kIndexed, chaos_predicates());
  ChaosScript script;
  sim::add_crash_restart(script, seconds(2), seconds(3), 2);
  sim::finalize_script(script);
  c.chaos->arm(script);
  c.start_traffic(millis(50), seconds(8));
  c.sim.run_until(seconds(15));
  c.check_converged();
  // Node 2's pre-crash tail was restored from the snapshot's send buffer
  // and retransmitted — peers saw no gap in its stream (checked above) and
  // its own delivery cursors survived (no duplicate delivery).
  EXPECT_EQ(c.node(2).session_epoch(), 1u);
  EXPECT_EQ(c.node(0).peer_session_epoch(2), 1u);
  EXPECT_EQ(c.restart_count[2], 1);
}

TEST(ChaosResume, DuplicateAndSpoofedResumesAreIgnored) {
  ChaosCluster c(chaos_mesh(2, {"r0", "r1"}), chaos_base_options(), 7,
                 DispatchMode::kIndexed, chaos_predicates());
  c.node(0).send(to_bytes("x"));
  c.sim.run_until(seconds(1));

  data::ResumeFrame resume;
  resume.sender = 1;
  resume.epoch = 5;
  resume.receive_through = kNoSeq;
  // First announcement: epoch adopted, recover handler fires.
  c.cluster->transport(1).send(0, data::encode(resume));
  c.sim.run_until(seconds(2));
  EXPECT_EQ(c.node(0).peer_session_epoch(1), 5u);
  EXPECT_EQ(c.recover_count[0][1], 1u);
  // Duplicate (same epoch): counted as received, otherwise a no-op.
  c.cluster->transport(1).send(0, data::encode(resume));
  // Spoof (sender field != transport source): ignored entirely.
  resume.sender = 0;
  resume.epoch = 9;
  c.cluster->transport(1).send(0, data::encode(resume));
  c.sim.run_until(seconds(3));
  EXPECT_EQ(c.node(0).peer_session_epoch(1), 5u);
  EXPECT_EQ(c.node(0).peer_session_epoch(0), 0u);
  EXPECT_EQ(c.recover_count[0][1], 1u);
#if STAB_OBS_ENABLED
  EXPECT_EQ(c.node(0).stats().resumes_received, 3u);
#endif
}

// Satellite: retransmit_check surfaces the retransmits_sent /
// duplicates_dropped pair — a loss campaign must be debuggable from stats.
// Stats-only test: meaningless when the obs layer is compiled out.
#if STAB_OBS_ENABLED
TEST(ChaosStats, LossCampaignSurfacesRetransmitPair) {
  ChaosCluster c(chaos_mesh(2, {"r0", "r1"}), chaos_base_options(), 99,
                 DispatchMode::kIndexed, chaos_predicates());
  // Loss on both directions: losing acks leaves the sender's view stale,
  // so the probe re-sends frames the receiver already holds — the
  // duplicates_dropped half of the pair.
  c.cluster->network().set_drop_probability(0, 1, 0.3);
  c.cluster->network().set_drop_probability(1, 0, 0.3);
  c.start_traffic(millis(20), seconds(4));
  c.sim.run_until(seconds(30));
  c.check_converged();
  // Sender re-sent lost frames; go-back-N overshoot surfaced at the
  // receiver as dropped stale duplicates.
  EXPECT_GT(c.node(0).stats().retransmits_sent, 0u);
  EXPECT_GT(c.node(1).stats().duplicates_dropped, 0u);
  EXPECT_EQ(c.node(0).stats().peer_stall_episodes, 0u)
      << "plain loss must not look like a crash";
}
#endif  // STAB_OBS_ENABLED

// --- sharded campaigns (DESIGN.md §9) -----------------------------------------
//
// A sharded node is N full Stabilizer instances over N independent networks
// (the scale-out shape), each with its own primary epoch. These campaigns
// pin the two §9 guarantees chaos can threaten:
//   * per-shard failover domains — deposing one shard's primary fences
//     exactly that shard's waiters while the other shard's frontier keeps
//     advancing through the fault window, and
//   * per-shard digest stability — the pipelined control plane lands every
//     shard on the same post-heal state as the locked baseline, per seed.

/// 3 nodes x 2 shards in scale-out shape. Shard 1's network carries the
/// chaos schedule; shard 0's stays clean unless a second schedule is armed.
struct ShardedChaosCluster {
  ShardedChaosCluster(uint64_t seed, StabilizerOptions base,
                      bool with_failover) {
    topo_ = chaos_mesh(3, {"r0", "r1", "r2"});
    const size_t n = topo_.num_nodes();
    for (uint32_t s = 0; s < kShards; ++s) {
      clusters.push_back(std::make_unique<SimCluster>(topo_, sim));
      clusters.back()->network().set_drop_rng_seed(seed ^ s);
      schedules.push_back(std::make_unique<sim::ChaosSchedule>(
          sim, clusters.back()->network()));
    }
    logs.assign(n, std::vector<std::vector<std::vector<SeqNum>>>(
                       kShards, std::vector<std::vector<SeqNum>>(n)));
    for (NodeId id = 0; id < n; ++id) {
      shard::ShardedOptions opts;
      opts.base = base;
      opts.base.topology = topo_;
      opts.base.self = id;
      opts.num_shards = kShards;
      std::vector<Transport*> transports;
      for (auto& c : clusters) transports.push_back(&c->transport(id));
      nodes.push_back(std::make_unique<shard::ShardedStabilizer>(
          std::move(opts), transports));
      nodes.back()->set_delivery_handler(
          [this, id](shard::ShardId shard, NodeId origin, SeqNum seq,
                     BytesView, uint64_t) {
            logs[id][shard][origin].push_back(seq);
          });
      EXPECT_TRUE(
          nodes.back()->register_predicate("all", "MIN($ALLWNODES)").is_ok());
    }
    if (with_failover) {
      failover::FailoverOptions guard;
      guard.stream = 0;
      guard.lease_interval = millis(100);
      guard.lease_timeout = millis(500);
      guard.suspect_gather = millis(50);
      guard.reconcile_timeout = millis(200);
      guard.paxos_retry = millis(100);
      managers.resize(n);
      for (NodeId id = 0; id < n; ++id)
        for (uint32_t s = 0; s < kShards; ++s) {
          managers[id].push_back(std::make_unique<failover::FailoverManager>(
              guard, nodes[id]->shard(s)));
          managers[id].back()->start();
        }
    }
  }

  ~ShardedChaosCluster() {
    for (auto& per_node : managers)
      for (auto& m : per_node) m.reset();
  }

  shard::ShardedStabilizer& node(NodeId id) { return *nodes.at(id); }

  /// Node 0 drives both shards' streams every `interval` until `until`
  /// (sends into faults included; fenced sends return kFencedSeq and are
  /// intentionally ignored — the zombie keeps trying).
  void start_traffic(Duration interval, TimePoint until) {
    sim.schedule_after(interval, [this, interval, until] {
      if (sim.now() > until) return;
      for (uint32_t s = 0; s < kShards; ++s)
        nodes[0]->send_to_shard(s, to_bytes("m"));
      start_traffic(interval, until);
    });
  }

  /// Mode-independent post-heal state of one shard across the cluster.
  std::string shard_digest(uint32_t s) const {
    std::ostringstream os;
    const size_t n = topo_.num_nodes();
    for (NodeId o = 0; o < n; ++o) {
      os << "n" << o << " last=" << nodes[o]->shard(s).last_sent();
      for (NodeId g = 0; g < n; ++g) {
        os << " [" << g << " d=" << nodes[o]->shard(s).delivered_through(g)
           << " all=" << nodes[o]->shard(s).get_stability_frontier("all", g);
        uint64_t h = 1469598103934665603ULL;  // FNV-1a over the delivery log
        for (SeqNum q : logs[o][s][g])
          h = (h ^ static_cast<uint64_t>(q)) * 1099511628211ULL;
        os << " log=" << logs[o][s][g].size() << ":" << h << "]";
      }
      os << "\n";
    }
    return os.str();
  }

  static constexpr uint32_t kShards = 2;
  Topology topo_;
  sim::Simulator sim;
  std::vector<std::unique_ptr<SimCluster>> clusters;            // [shard]
  std::vector<std::unique_ptr<sim::ChaosSchedule>> schedules;   // [shard]
  // [node][shard][origin] -> delivered seqs, in order.
  std::vector<std::vector<std::vector<std::vector<SeqNum>>>> logs;
  std::vector<std::vector<std::unique_ptr<failover::FailoverManager>>>
      managers;  // [node][shard]
  std::vector<std::unique_ptr<shard::ShardedStabilizer>> nodes;
};

// Kill one shard's primary (partition node 0 away on shard 1's network long
// enough for the lease to lapse and the mirrors to elect): ONLY shard 1's
// waiters fail with kFenced; shard 0's stream, waiters, and frontier sail
// through the whole fault window untouched.
TEST(ShardedChaos, DeposedShardPrimaryFencesOnlyThatShard) {
  StabilizerOptions base = chaos_base_options();
  base.retransmit_timeout = millis(150);
  ShardedChaosCluster c(/*seed=*/0x51AD, base, /*with_failover=*/true);

  ChaosScript script;
  sim::add_partition(script, seconds(2), seconds(2), {{0}, {1, 2}});
  sim::finalize_script(script);
  c.schedules[1]->arm(script);  // shard 1's network only

  c.start_traffic(millis(10), seconds(7));

  // Parked at t=1.5s, before the fault: a cross-shard cut whose shard-1
  // member is unreachable, and a shard-0-only cut that must stay healthy.
  bool mixed_fired = false, clean_fired = false;
  auto mixed = Stabilizer::WaitStatus::kTimeout;
  auto clean = Stabilizer::WaitStatus::kTimeout;
  SeqNum frontier0_at_fault = kNoSeq;
  c.sim.schedule_at(from_sec(1.5), [&] {
    const SeqNum reachable0 = c.node(0).shard(0).last_sent() + 10;
    const SeqNum unreachable1 = c.node(0).shard(1).last_sent() + 100000;
    ASSERT_TRUE(c.node(0)
                    .waitfor_cut({reachable0, unreachable1}, "all",
                                 [&](Stabilizer::WaitStatus s) {
                                   mixed_fired = true;
                                   mixed = s;
                                 })
                    .is_ok());
    ASSERT_TRUE(c.node(0)
                    .waitfor_cut({reachable0, kNoSeq}, "all",
                                 [&](Stabilizer::WaitStatus s) {
                                   clean_fired = true;
                                   clean = s;
                                 })
                    .is_ok());
  });
  c.sim.schedule_at(from_sec(2.0), [&] {
    frontier0_at_fault = c.node(0).get_stability_frontier("all@0");
  });

  c.sim.run_until(seconds(16));

  // Exactly one mirror won shard 1's election; nobody touched shard 0.
  NodeId winner = kInvalidNode;
  for (NodeId id = 1; id < 3; ++id) {
    if (c.managers[id][1]->promoted()) {
      EXPECT_EQ(winner, kInvalidNode);
      winner = id;
    }
    EXPECT_FALSE(c.managers[id][0]->promoted()) << "node " << id;
  }
  ASSERT_NE(winner, kInvalidNode);

  // The healed zombie self-fenced on shard 1 alone: shard 1 refuses sends,
  // shard 0 still sequences.
  EXPECT_TRUE(c.node(0).shard(1).self_fenced());
  EXPECT_FALSE(c.node(0).shard(0).self_fenced());
  EXPECT_EQ(c.node(0).send_to_shard(1, to_bytes("zombie")).seq, kFencedSeq);
  EXPECT_GE(c.node(0).send_to_shard(0, to_bytes("alive")).seq, 0);

  // Waiter isolation: the cut spanning the deposed shard failed with
  // kFenced; the shard-0-only cut resolved kOk.
  EXPECT_TRUE(mixed_fired);
  EXPECT_EQ(mixed, Stabilizer::WaitStatus::kFenced);
  EXPECT_TRUE(clean_fired);
  EXPECT_EQ(clean, Stabilizer::WaitStatus::kOk);

  // Shard 0's frontier kept advancing through the fault window and
  // converged on everything node 0 sent before the post-run probe above.
  const SeqNum frontier0_final = c.node(0).get_stability_frontier("all@0");
  EXPECT_GT(frontier0_final, frontier0_at_fault);
  EXPECT_EQ(frontier0_final, c.node(0).shard(0).last_sent() - 1);

  // Shard 0's delivery logs are the complete FIFO prefix at every mirror.
  for (NodeId id = 1; id < 3; ++id) {
    const auto& log = c.logs[id][0][0];
    ASSERT_FALSE(log.empty());
    for (size_t i = 0; i < log.size(); ++i)
      ASSERT_EQ(log[i], static_cast<SeqNum>(i)) << "node " << id;
  }
}

// Per-shard digest stability: the same seeded loss + partition campaign,
// run with the pipelined control plane and with the locked baseline, lands
// every shard on byte-identical post-heal state — and replays of the
// pipelined run are deterministic per seed.
TEST(ShardedChaos, PipelinedMatchesLockedPerShardDigest) {
  auto run = [](uint64_t seed, StabilizerOptions base) {
    auto c = std::make_unique<ShardedChaosCluster>(seed, std::move(base),
                                                   /*with_failover=*/false);
    for (uint32_t s = 0; s < ShardedChaosCluster::kShards; ++s) {
      ChaosScript script;
      ChaosEvent loss;
      loss.at = kTimeZero;
      loss.kind = ChaosEvent::Kind::kLossSet;
      loss.a = kInvalidNode;
      loss.value = 0.05;
      script.push_back(loss);
      // Stagger the shards' partitions so the fault windows differ.
      sim::add_partition(script, seconds(1 + s), seconds(2), {{0}, {1, 2}});
      sim::finalize_script(script);
      c->schedules[s]->arm(script);
    }
    c->start_traffic(millis(25), seconds(6));
    c->sim.run_until(seconds(30));
    return c;
  };

  StabilizerOptions piped = chaos_base_options();
  piped.pipeline_mode = StabilizerOptions::PipelineMode::kPipelined;
  auto pipelined = run(0xD15C, piped);
  auto locked = run(0xD15C, chaos_base_options());
  for (uint32_t s = 0; s < ShardedChaosCluster::kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const std::string digest = pipelined->shard_digest(s);
    EXPECT_EQ(digest, locked->shard_digest(s));
    // The campaign converged on real state, not on empty logs.
    EXPECT_GT(pipelined->logs[1][s][0].size(), 0u);
  }

  auto again = run(0xD15C, piped);
  for (uint32_t s = 0; s < ShardedChaosCluster::kShards; ++s)
    EXPECT_EQ(pipelined->shard_digest(s), again->shard_digest(s))
        << "shard " << s;
}

}  // namespace
}  // namespace stab
