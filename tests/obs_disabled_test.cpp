// Compile-out verification for the observability layer.
//
// This translation unit is always built with STAB_OBS_ENABLED forced to 0
// (tests/CMakeLists.txt), so it checks the macro layer's disabled
// expansion: STAB_OBS / STAB_TRACE must discard their arguments WITHOUT
// evaluating them, and must compile around references to members/types that
// only exist in enabled builds (that's how the instrumented sources stay
// obs-free when compiled out).
//
// The core zero-counter assertions are additionally compiled only in a
// -DSTAB_OBS=OFF build (STAB_CORE_OBS_DISABLED): in the default build the
// stab_core library was compiled with the obs members present, so including
// stabilizer.hpp here with the flag forced off would be an ODR/ABI
// violation, not a test. scripts/ci.sh runs the OFF-build flavor.
#define STAB_OBS_ENABLED 0

#include "obs/obs.hpp"

#include <gtest/gtest.h>

namespace stab {
namespace {

struct MustNotExist;  // declared, never defined

// A function whose evaluation would fail the test — and whose *compilation*
// inside a disabled macro must be skipped entirely.
int side_effects = 0;
int bump() { return ++side_effects; }

TEST(ObsDisabled, StabObsDiscardsArgumentsUnevaluated) {
  STAB_OBS(bump());
  STAB_OBS({
    bump();
    bump();
  });
  // Arguments are not even name-looked-up: these identifiers don't exist.
  STAB_OBS(ctr_.nonexistent_counter.inc());
  STAB_OBS(obs::global().counter("nope").inc(bump()));
  EXPECT_EQ(side_effects, 0);
}

TEST(ObsDisabled, StabTraceDiscardsArgumentsUnevaluated) {
  MustNotExist* tracer = nullptr;
  (void)tracer;  // only ever named inside the discarding macro
  STAB_TRACE(tracer, bump(), obs::SpanEvent::kBroadcast, 0, 0, 0);
  EXPECT_EQ(side_effects, 0);
}

TEST(ObsDisabled, StabTraceWantsIsConstantFalse) {
  MustNotExist* tracer = nullptr;
  (void)tracer;
  bool wants = STAB_TRACE_WANTS(tracer, obs::SpanEvent::kDeliver);
  EXPECT_FALSE(wants);
  if (STAB_TRACE_WANTS(tracer, anything_goes_here)) bump();
  EXPECT_EQ(side_effects, 0);
}

TEST(ObsDisabled, StabProbeDiscardsArgumentsUnevaluated) {
  MustNotExist* probe = nullptr;
  (void)probe;  // only ever named inside the discarding macros
  STAB_PROBE(probe, on_send(bump(), bump(), no_such_clock()));
  STAB_PROBE(probe, totally_not_a_member());
  EXPECT_EQ(side_effects, 0);
}

TEST(ObsDisabled, StabProbeSampledIsConstantFalse) {
  MustNotExist* probe = nullptr;
  (void)probe;
  bool sampled = STAB_PROBE_SAMPLED(probe, bump());
  EXPECT_FALSE(sampled);
  if (STAB_PROBE_SAMPLED(probe, anything_goes_here)) bump();
  EXPECT_EQ(side_effects, 0);
}

}  // namespace
}  // namespace stab

#ifdef STAB_CORE_OBS_DISABLED
// Only in a -DSTAB_OBS=OFF build: the whole library was compiled with the
// instrumentation expanded away, so the registry-backed stats fields must
// read zero after real traffic while the engine-owned eval counters (plain
// members, never macro-gated) still count.
#include "core/stabilizer.hpp"
#include "net/sim_transport.hpp"

namespace stab {
namespace {

TEST(ObsDisabledCore, RegistryBackedCountersStayZero) {
  sim::Simulator sim;
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node("n" + std::to_string(i), "az0");
  LinkSpec s;
  s.latency = from_ms(5);
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      if (a != b) topo.set_link(a, b, s);
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 3; ++i) nodes[0]->send(to_bytes("x"));
  sim.run();
  ASSERT_EQ(nodes[0]->get_stability_frontier("all"), 2);  // cluster works

  StabilizerStats st = nodes[0]->stats();
  EXPECT_EQ(st.messages_sent, 0u);       // compiled out
  EXPECT_EQ(st.frames_transmitted, 0u);  // compiled out
  EXPECT_EQ(st.shared_sends, 0u);        // compiled out
  EXPECT_GT(st.predicate_evals, 0u);     // engine-owned, always live
}

}  // namespace
}  // namespace stab
#endif  // STAB_CORE_OBS_DISABLED
