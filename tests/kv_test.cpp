// WAN K/V integration tests on the simulated cluster: ownership, mirroring,
// chunked large values, stability-gated reads, persisted-level reporting,
// temporal reads across nodes, and mirror-convergence properties.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "kv/wan_kv.hpp"
#include "net/sim_transport.hpp"

namespace stab::kv {
namespace {

/// Owner = key's leading digit ("0:foo" -> node 0), mirroring the paper's
/// per-site pool model.
NodeId pool_owner(const std::string& key) {
  return key.empty() ? 0 : static_cast<NodeId>(key[0] - '0');
}

struct KvCluster {
  explicit KvCluster(size_t n, double lat_ms = 5) {
    Topology topo;
    for (size_t i = 0; i < n; ++i)
      t_add(topo, i);
    LinkSpec s;
    s.latency = from_ms(lat_ms);
    for (NodeId a = 0; a < n; ++a)
      for (NodeId b = 0; b < n; ++b)
        if (a != b) topo.set_link(a, b, s);
    cluster = std::make_unique<SimCluster>(topo, sim);
    for (NodeId i = 0; i < n; ++i) {
      StabilizerOptions opts;
      opts.topology = topo;
      opts.self = i;
      stabs.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(i)));
      stores.push_back(std::make_unique<store::LocalStore>());
      kvs.push_back(
          std::make_unique<WanKV>(*stabs.back(), *stores.back(), pool_owner));
    }
  }
  static void t_add(Topology& topo, size_t i) {
    topo.add_node(std::to_string(i), i < 2 ? "east" : "west");
  }
  WanKV& kv(NodeId n) { return *kvs.at(n); }

  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<store::LocalStore>> stores;
  std::vector<std::unique_ptr<WanKV>> kvs;
};

TEST(WanKv, PutIsLocallyStableImmediately) {
  KvCluster c(3);
  auto put = c.kv(0).put("0:a", to_bytes("v"));
  ASSERT_TRUE(put.is_ok()) << put.message();
  EXPECT_EQ(put.value().version, 1u);
  auto v = c.kv(0).get("0:a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "v");
}

TEST(WanKv, RejectsNonOwnerWrites) {
  KvCluster c(3);
  auto put = c.kv(0).put("2:foreign", to_bytes("v"));
  ASSERT_FALSE(put.is_ok());
  EXPECT_NE(put.message().find("primary-site"), std::string::npos);
}

TEST(WanKv, MirrorsToAllNodes) {
  KvCluster c(3);
  ASSERT_TRUE(c.kv(0).put("0:k", to_bytes("mirrored")).is_ok());
  c.sim.run();
  for (NodeId n = 1; n < 3; ++n) {
    auto v = c.kv(n).get("0:k");
    ASSERT_TRUE(v.has_value()) << "node " << n;
    EXPECT_EQ(to_string(v->value), "mirrored");
    EXPECT_EQ(v->version, 1u);
  }
  EXPECT_EQ(c.kv(1).mirrored_puts(), 1u);
}

TEST(WanKv, VersionsMatchAcrossMirrors) {
  KvCluster c(2);
  c.kv(0).put("0:k", to_bytes("v1"));
  c.kv(0).put("0:k", to_bytes("v2"));
  c.kv(0).put("0:k", to_bytes("v3"));
  c.sim.run();
  auto v = c.kv(1).get("0:k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 3u);
  EXPECT_EQ(to_string(c.kv(1).get("0:k")->value), "v3");
  // historic version preserved at the mirror
  EXPECT_EQ(to_string(c.stores[1]->get_version("0:k", 1)->value), "v1");
}

TEST(WanKv, LargeValueChunksAndReassembles) {
  KvCluster c(2);
  Rng rng(5);
  Bytes big(100 * 1024);
  for (auto& b : big) b = static_cast<uint8_t>(rng.next_u64());
  auto put = c.kv(0).put("0:big", big);
  ASSERT_TRUE(put.is_ok());
  EXPECT_GT(put.value().last_seq, put.value().first_seq);  // chunked
  c.sim.run();
  auto v = c.kv(1).get("0:big");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->value, big);
}

TEST(WanKv, VirtualPaddingPutsCarryNoBytes) {
  KvCluster c(2);
  // 3 MB virtual file with a tiny real manifest.
  auto put = c.kv(0).put("0:trace", to_bytes("manifest"), 3 * 1024 * 1024);
  ASSERT_TRUE(put.is_ok());
  EXPECT_GT(put.value().last_seq - put.value().first_seq, 300);
  c.sim.run();
  auto v = c.kv(1).get("0:trace");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "manifest");  // only the real bytes land
}

TEST(WanKv, GetStableGatesOnPredicate) {
  KvCluster c(3, /*lat_ms=*/10);
  ASSERT_TRUE(c.kv(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  auto put = c.kv(0).put("0:k", to_bytes("v"));
  ASSERT_TRUE(put.is_ok());
  // Not yet acked by everyone.
  EXPECT_FALSE(c.kv(0).get_stable("0:k", "all").has_value());
  EXPECT_TRUE(c.kv(0).get("0:k").has_value());  // plain read still works
  c.sim.run();
  auto v = c.kv(0).get_stable("0:k", "all");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "v");
}

TEST(WanKv, GetStableAtMirrorUsesOriginStream) {
  KvCluster c(3, 10);
  // Node 1 wants to read node 0's data only once every node has it.
  ASSERT_TRUE(c.kv(1).register_predicate("all", "MIN($ALLWNODES)"));
  c.kv(0).put("0:k", to_bytes("v"));
  c.sim.run();
  auto v = c.kv(1).get_stable("0:k", "all");
  ASSERT_TRUE(v.has_value());
}

TEST(WanKv, WaitPutFiresAtStability) {
  KvCluster c(3, 10);
  ASSERT_TRUE(c.kv(0).register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));
  auto put = c.kv(0).put("0:k", to_bytes("v"));
  ASSERT_TRUE(put.is_ok());
  TimePoint fired = kTimeZero;
  ASSERT_TRUE(c.kv(0).wait_put(put.value(), "one",
                               [&](SeqNum) { fired = c.sim.now(); }));
  c.sim.run();
  EXPECT_GT(fired, kTimeZero);
  EXPECT_GE(to_ms(fired), 20.0);  // ≥ one-way + ack return
}

TEST(WanKv, PersistedLevelReported) {
  KvCluster c(2, 5);
  ASSERT_TRUE(c.kv(0).register_predicate(
      "persisted_everywhere", "MIN(($ALLWNODES-$MYWNODE).persisted)"));
  auto put = c.kv(0).put("0:k", to_bytes("v"));
  c.sim.run();
  EXPECT_EQ(c.kv(0).get_stability_frontier("persisted_everywhere"),
            put.value().last_seq);
}

TEST(WanKv, GetByTimeAtMirror) {
  KvCluster c(2, 5);
  c.kv(0).put("0:k", to_bytes("early"));
  c.sim.run();
  TimePoint mid = c.sim.now();
  c.sim.run_until(c.sim.now() + millis(100));
  c.kv(0).put("0:k", to_bytes("late"));
  c.sim.run();
  auto v = c.kv(1).get_by_time("0:k", mid);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "early");
}

TEST(WanKv, ConcurrentOwnersDoNotInterfere) {
  KvCluster c(3, 5);
  c.kv(0).put("0:x", to_bytes("from0"));
  c.kv(1).put("1:y", to_bytes("from1"));
  c.kv(2).put("2:z", to_bytes("from2"));
  c.sim.run();
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(to_string(c.kv(n).get("0:x")->value), "from0");
    EXPECT_EQ(to_string(c.kv(n).get("1:y")->value), "from1");
    EXPECT_EQ(to_string(c.kv(n).get("2:z")->value), "from2");
  }
}

TEST(WanKv, EraseReplicatesToMirrors) {
  KvCluster c(3);
  c.kv(0).put("0:k", to_bytes("v"));
  c.sim.run();
  ASSERT_TRUE(c.kv(2).get("0:k").has_value());

  auto erased = c.kv(0).erase("0:k");
  ASSERT_TRUE(erased.is_ok()) << erased.message();
  EXPECT_FALSE(c.kv(0).get("0:k").has_value());  // locally gone at once
  c.sim.run();
  for (NodeId n = 0; n < 3; ++n)
    EXPECT_FALSE(c.kv(n).get("0:k").has_value()) << "node " << n;
}

TEST(WanKv, EraseRespectsOwnership) {
  KvCluster c(2);
  auto res = c.kv(0).erase("1:foreign");
  EXPECT_FALSE(res.is_ok());
}

TEST(WanKv, ErasedKeyCanBeRecreatedEverywhere) {
  KvCluster c(2);
  c.kv(0).put("0:k", to_bytes("first"));
  c.sim.run();
  ASSERT_TRUE(c.kv(0).erase("0:k").is_ok());
  c.sim.run();
  c.kv(0).put("0:k", to_bytes("second"));
  c.sim.run();
  auto v = c.kv(1).get("0:k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "second");
  EXPECT_EQ(v->version, 1u);  // version space restarted consistently
}

TEST(WanKv, EraseStabilityTrackable) {
  KvCluster c(3, 10);
  ASSERT_TRUE(c.kv(0).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  c.kv(0).put("0:k", to_bytes("v"));
  c.sim.run();
  auto seq = c.kv(0).erase("0:k");
  ASSERT_TRUE(seq.is_ok());
  bool gone_everywhere = false;
  c.kv(0).stabilizer().waitfor(seq.value(), "all",
                               [&](SeqNum) { gone_everywhere = true; });
  c.sim.run();
  EXPECT_TRUE(gone_everywhere);
}

TEST(WanKv, DefaultOwnerIsDeterministicHash) {
  sim::Simulator sim;
  Topology topo;
  topo.add_node("a", "az");
  topo.add_node("b", "az");
  LinkSpec s;
  topo.set_link_bidir(0, 1, s);
  SimCluster cluster(topo, sim);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  Stabilizer stab(opts, cluster.transport(0));
  store::LocalStore store;
  WanKV kv(stab, store);  // default hash owner
  NodeId o1 = kv.owner_of("somekey");
  EXPECT_EQ(o1, kv.owner_of("somekey"));
  EXPECT_LT(o1, 2u);
}

// Property: random interleaved puts from all owners; after quiescence every
// node's view of every key is identical (mirror convergence).
TEST(WanKvProperty, MirrorsConverge) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    KvCluster c(3, 2);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      NodeId owner = static_cast<NodeId>(rng.next_below(3));
      std::string key =
          std::to_string(owner) + ":k" + std::to_string(rng.next_below(10));
      Bytes value(rng.next_range(0, 64));
      for (auto& b : value) b = static_cast<uint8_t>(rng.next_u64());
      ASSERT_TRUE(c.kv(owner).put(key, value).is_ok());
      if (rng.next_bool(0.2)) c.sim.run_until(c.sim.now() + millis(3));
    }
    c.sim.run();
    for (const std::string& key : c.stores[0]->keys()) {
      auto v0 = c.kv(0).get(key);
      for (NodeId n = 1; n < 3; ++n) {
        auto vn = c.kv(n).get(key);
        ASSERT_TRUE(vn.has_value()) << key << " missing at node " << n;
        EXPECT_EQ(v0->version, vn->version) << key;
        EXPECT_EQ(v0->value, vn->value) << key;
      }
    }
  }
}

}  // namespace
}  // namespace stab::kv
