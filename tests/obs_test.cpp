// Tests for the observability layer (src/obs): histogram bucket math and
// percentile estimates pinned against a sorted-vector oracle, registry
// semantics and JSONL export determinism, tracer lifecycle + determinism
// over the simulator, and the StabilizerStats compatibility view reading
// through the per-node registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/stabilizer.hpp"
#include "net/sim_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace stab {
namespace {

// --- Histogram bucket math ------------------------------------------------------

TEST(Histogram, BucketBoundsTileTheRange) {
  // Buckets partition [0, 2^63): contiguous, non-overlapping, and bucket_of
  // maps both endpoints back to the bucket.
  for (size_t b = 0; b + 1 < obs::Histogram::kNumBuckets; ++b) {
    uint64_t lo = obs::Histogram::bucket_lo(b);
    uint64_t hi = obs::Histogram::bucket_hi(b);
    ASSERT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_of(lo), b);
    EXPECT_EQ(obs::Histogram::bucket_of(hi), b);
    EXPECT_EQ(obs::Histogram::bucket_lo(b + 1), hi + 1) << "bucket " << b;
  }
  // Quarter-octave guarantee: every bucket's width is at most lo/4, so a
  // percentile reported as bucket_hi over-estimates by < 25%.
  for (size_t b = 4; b < obs::Histogram::kNumBuckets; ++b) {
    uint64_t lo = obs::Histogram::bucket_lo(b);
    uint64_t width = obs::Histogram::bucket_hi(b) - lo + 1;
    EXPECT_LE(width, lo / 4) << "bucket " << b;
  }
  // Values 0..7 are exact (width-1 buckets).
  for (uint64_t v = 0; v < 8; ++v) {
    size_t b = obs::Histogram::bucket_of(v);
    EXPECT_EQ(obs::Histogram::bucket_lo(b), v);
    EXPECT_EQ(obs::Histogram::bucket_hi(b), v);
  }
}

// Nearest-rank oracle matching Histogram::percentile's rank definition.
uint64_t oracle_percentile(std::vector<uint64_t> sorted, double p) {
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * sorted.size()));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

void check_against_oracle(const std::vector<uint64_t>& samples) {
  obs::Histogram h;
  for (uint64_t v : samples) h.record(v);
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.max(), sorted.back());
  uint64_t sum = 0;
  for (uint64_t v : samples) sum += v;
  EXPECT_EQ(h.sum(), sum);

  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    uint64_t exact = oracle_percentile(sorted, p);
    uint64_t est = h.percentile(p);
    // The estimate is the true sample's bucket upper bound (clamped to
    // max): never below the truth, never more than 25% above it.
    EXPECT_GE(est, exact) << "p" << p;
    EXPECT_LE(est, exact + exact / 4) << "p" << p;
  }
}

TEST(Histogram, PercentilesMatchSortedOracleAcrossDistributions) {
  Rng rng(0xfeedbeefULL);
  // Uniform small values (mostly exact buckets).
  {
    std::vector<uint64_t> s;
    for (int i = 0; i < 5000; ++i) s.push_back(rng.next_below(16));
    check_against_oracle(s);
  }
  // Uniform over a wide range.
  {
    std::vector<uint64_t> s;
    for (int i = 0; i < 5000; ++i) s.push_back(rng.next_below(50'000'000));
    check_against_oracle(s);
  }
  // Heavy-tailed (Pareto) — the shape latency distributions actually have.
  {
    std::vector<uint64_t> s;
    for (int i = 0; i < 5000; ++i)
      s.push_back(static_cast<uint64_t>(rng.next_pareto(100.0, 1.2)));
    check_against_oracle(s);
  }
  // Degenerate: constant samples.
  check_against_oracle(std::vector<uint64_t>(100, 42));
}

TEST(Histogram, MergeFoldsCountsAndExtremes) {
  obs::Histogram a, b;
  for (uint64_t v : {1ull, 10ull, 100ull}) a.record(v);
  for (uint64_t v : {5ull, 1000ull}) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 1116u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
  obs::Histogram empty;
  a.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(Histogram, MergePercentilesMatchUnionOracle) {
  // Merged percentiles must equal those of a histogram fed the union — the
  // cluster-wide aggregation the chaos campaign relies on.
  Rng rng(0x5eedULL);
  std::vector<uint64_t> sa, sb;
  for (int i = 0; i < 3000; ++i) sa.push_back(rng.next_below(1'000'000));
  for (int i = 0; i < 2000; ++i)
    sb.push_back(static_cast<uint64_t>(rng.next_pareto(50.0, 1.3)));
  obs::Histogram a, b, u;
  for (uint64_t v : sa) {
    a.record(v);
    u.record(v);
  }
  for (uint64_t v : sb) {
    b.record(v);
    u.record(v);
  }
  a.merge(b);
  for (double p : {50.0, 95.0, 99.0, 99.9})
    EXPECT_EQ(a.percentile(p), u.percentile(p)) << "p" << p;
  EXPECT_EQ(a.snapshot().p999, u.snapshot().p999);
}

TEST(Histogram, SnapshotReportsP999AgainstOracle) {
  Rng rng(0xabcdULL);
  std::vector<uint64_t> s;
  for (int i = 0; i < 20'000; ++i)
    s.push_back(static_cast<uint64_t>(rng.next_pareto(100.0, 1.1)));
  obs::Histogram h;
  for (uint64_t v : s) h.record(v);
  std::sort(s.begin(), s.end());
  const uint64_t exact = oracle_percentile(s, 99.9);
  const obs::Histogram::Snapshot snap = h.snapshot();
  EXPECT_GE(snap.p999, exact);
  EXPECT_LE(snap.p999, exact + exact / 4);
  EXPECT_GE(snap.p999, snap.p99);
  EXPECT_LE(snap.p999, snap.max);
}

// --- WindowedHistogram ----------------------------------------------------------

TEST(WindowedHistogram, SnapshotCoversOnlyTheLastWindowEpochs) {
  obs::Histogram src;
  obs::WindowedHistogram w(src, /*window_epochs=*/2);
  // Epoch A: two samples, then closed.
  src.record(10);
  src.record(20);
  w.advance();
  // Epoch B: one sample, then closed.
  src.record(1000);
  w.advance();
  obs::Histogram::Snapshot s = w.snapshot();
  EXPECT_EQ(s.count, 3u);  // both epochs in the window
  EXPECT_EQ(s.sum, 1030u);
  // Two more empty epochs push A and B out of the 2-deep ring.
  w.advance();
  w.advance();
  s = w.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.p999, 0u);
  // The cumulative source is untouched by windowing.
  EXPECT_EQ(src.count(), 3u);
  // Samples recorded after the last advance() are not yet visible.
  src.record(7);
  EXPECT_EQ(w.snapshot().count, 0u);
  w.advance();
  EXPECT_EQ(w.snapshot().count, 1u);
  EXPECT_EQ(w.epochs_closed(), 5u);
}

// Property test: windowed percentiles over any epoch pattern match a
// sorted-vector oracle of exactly the samples in the last N epochs, within
// the histogram's one-bucket (<= 25%) bound; window min/max are bucket-
// bound estimates bracketing the true extremes.
TEST(WindowedHistogram, PercentilesMatchWindowOracleWithinBucketBound) {
  Rng rng(0x91d0ULL + 7);
  obs::Histogram src;
  obs::WindowedHistogram w(src, /*window_epochs=*/4);
  std::vector<std::vector<uint64_t>> epochs;
  for (int e = 0; e < 12; ++e) {
    std::vector<uint64_t> batch;
    const size_t n = 50 + rng.next_below(200);
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = rng.next_below(2) == 0
                       ? rng.next_below(100)
                       : static_cast<uint64_t>(rng.next_pareto(500.0, 1.2));
      batch.push_back(v);
      src.record(v);
    }
    w.advance();
    epochs.push_back(std::move(batch));

    // Oracle: union of the last <= 4 closed epochs.
    std::vector<uint64_t> window_samples;
    for (size_t k = epochs.size() >= 4 ? epochs.size() - 4 : 0;
         k < epochs.size(); ++k)
      window_samples.insert(window_samples.end(), epochs[k].begin(),
                            epochs[k].end());
    std::sort(window_samples.begin(), window_samples.end());

    const obs::Histogram::Snapshot s = w.snapshot();
    ASSERT_EQ(s.count, window_samples.size()) << "epoch " << e;
    uint64_t sum = 0;
    for (uint64_t v : window_samples) sum += v;
    EXPECT_EQ(s.sum, sum) << "epoch " << e;
    for (double p : {50.0, 99.0, 99.9}) {
      const uint64_t exact = oracle_percentile(window_samples, p);
      const uint64_t est = p == 50.0 ? s.p50 : (p == 99.0 ? s.p99 : s.p999);
      EXPECT_GE(est, exact) << "epoch " << e << " p" << p;
      EXPECT_LE(est, exact + exact / 4) << "epoch " << e << " p" << p;
    }
    // Bucket-bound extremes bracket the truth.
    EXPECT_LE(s.min, window_samples.front()) << "epoch " << e;
    EXPECT_GE(s.max, window_samples.back()) << "epoch " << e;
  }
}

// --- MetricsRegistry ------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableReferences) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("x"), nullptr);
  obs::Counter& c1 = reg.counter("x");
  obs::Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(reg.find_counter("x")->value(), 3u);
  reg.gauge("g").set(-7);
  EXPECT_EQ(reg.find_gauge("g")->value(), -7);
  reg.histogram("h").record(9);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"x", "g", "h"}));
}

TEST(Registry, JsonlExportIsSortedDeterministicAndPrefixed) {
  obs::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("depth").set(4);
  reg.histogram("lat").record(5);
  std::ostringstream s1, s2;
  reg.dump_jsonl(s1, "node0.");
  reg.dump_jsonl(s2, "node0.");
  EXPECT_EQ(s1.str(), s2.str());  // byte-identical re-export
  std::string out = s1.str();
  EXPECT_NE(out.find("{\"name\":\"node0.a.count\",\"type\":\"counter\","
                     "\"value\":1}"),
            std::string::npos);
  // Sorted by name within each type: a.count precedes b.count.
  EXPECT_LT(out.find("node0.a.count"), out.find("node0.b.count"));
  EXPECT_NE(out.find("\"type\":\"histogram\""), std::string::npos);
}

// --- Tracer ---------------------------------------------------------------------

TEST(Tracer, CapacityBoundDropsDeterministically) {
  obs::Tracer t(/*capacity=*/2);
  for (SeqNum s = 0; s < 5; ++s)
    t.record(TimePoint{}, obs::SpanEvent::kBroadcast, 0, 0, s);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
  auto recs = t.records();
  EXPECT_EQ(recs[0].seq, 0);  // kept prefix is append-ordered
  EXPECT_EQ(recs[1].seq, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, EventMaskFiltersUnsubscribedEvents) {
  obs::Tracer t(1024, obs::event_bit(obs::SpanEvent::kDeliver));
  EXPECT_TRUE(t.wants(obs::SpanEvent::kDeliver));
  EXPECT_FALSE(t.wants(obs::SpanEvent::kBroadcast));
  t.record(TimePoint{}, obs::SpanEvent::kBroadcast, 0, 0, 0);
  t.record(TimePoint{}, obs::SpanEvent::kDeliver, 1, 0, 0, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.records()[0].ev, obs::SpanEvent::kDeliver);
}

// --- End-to-end over the simulator ---------------------------------------------

Topology mesh_topology(size_t n, double lat_ms = 10) {
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_node("n" + std::to_string(i), "az0");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

/// Runs a fixed 3-node workload with a shared tracer; returns the trace
/// JSONL plus node 0's metrics JSONL.
struct RunArtifacts {
  std::string trace;
  std::string metrics;
};

RunArtifacts run_traced_workload() {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  auto tracer = std::make_shared<obs::Tracer>();
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.tracer = tracer;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  for (auto& node : nodes)
    node->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 5; ++i) nodes[0]->send(to_bytes("m" + std::to_string(i)));
  nodes[1]->send(to_bytes("from1"));
  sim.run();
  RunArtifacts out;
  std::ostringstream ts, ms;
  tracer->export_jsonl(ts);
  nodes[0]->metrics().dump_jsonl(ms, "node0.");
  out.trace = ts.str();
  out.metrics = ms.str();
  return out;
}

TEST(TraceE2E, LifecycleSpansCoverBroadcastTransmitDeliverFire) {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  auto tracer = std::make_shared<obs::Tracer>();
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.tracer = tracer;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  SeqNum seq = nodes[0]->send(to_bytes("hello"));
  sim.run();

  std::map<obs::SpanEvent, int> per_event;
  bool fired_for_seq = false;
  for (const auto& r : tracer->records()) {
    if (r.origin != 0 || r.seq != seq) continue;
    ++per_event[r.ev];
    if (r.ev == obs::SpanEvent::kFrontierFire && r.detail == "all")
      fired_for_seq = true;
  }
  EXPECT_EQ(per_event[obs::SpanEvent::kBroadcast], 1);
  EXPECT_EQ(per_event[obs::SpanEvent::kTransmit], 2);  // one per peer
  EXPECT_EQ(per_event[obs::SpanEvent::kDeliver], 2);   // both receivers
  EXPECT_GE(per_event[obs::SpanEvent::kAckReport], 2);
  EXPECT_TRUE(fired_for_seq) << "no kFrontierFire for predicate 'all'";
  // Deliveries happen strictly after the broadcast on the virtual clock.
  TimePoint sent{}, delivered{};
  for (const auto& r : tracer->records()) {
    if (r.origin != 0 || r.seq != seq) continue;
    if (r.ev == obs::SpanEvent::kBroadcast) sent = r.t;
    if (r.ev == obs::SpanEvent::kDeliver) delivered = r.t;
  }
  EXPECT_GE(delivered - sent, from_ms(10));  // one link latency minimum
}

TEST(TraceE2E, IdenticalSimRunsProduceByteIdenticalArtifacts) {
  RunArtifacts a = run_traced_workload();
  RunArtifacts b = run_traced_workload();
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(StatsCompat, StructViewReadsThroughRegistry) {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 4; ++i) nodes[0]->send(to_bytes("x"));
  sim.run();

  StabilizerStats s = nodes[0]->stats();
  obs::MetricsRegistry& reg = nodes[0]->metrics();
  EXPECT_EQ(s.messages_sent, 4u);
  EXPECT_EQ(s.messages_sent, reg.find_counter("core.messages_sent")->value());
  EXPECT_EQ(s.frames_transmitted,
            reg.find_counter("data.frames_transmitted")->value());
  EXPECT_EQ(s.shared_sends, reg.find_counter("data.shared_sends")->value());
  EXPECT_EQ(s.ack_entries_applied,
            reg.find_counter("control.ack_entries_applied")->value());
  EXPECT_GT(s.frames_transmitted, 0u);
  EXPECT_GT(s.ack_entries_applied, 0u);
  // Engine-owned eval counters still aggregate into the view.
  EXPECT_GT(s.predicate_evals, 0u);

  StabilizerStats s1 = nodes[1]->stats();
  EXPECT_EQ(s1.messages_delivered, 4u);
  EXPECT_EQ(s1.messages_delivered,
            nodes[1]->metrics().find_counter("core.messages_delivered")
                ->value());
}

TEST(FrontierLag, HistogramAndPerKeyGaugePopulated) {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 8; ++i) nodes[0]->send(to_bytes("x"));
  sim.run();

  obs::MetricsRegistry& reg = nodes[0]->metrics();
  const obs::Histogram* lag = reg.find_histogram("control.frontier_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_GT(lag->count(), 0u);
  const obs::Gauge* per_key = reg.find_gauge("control.frontier_lag.o0.all");
  ASSERT_NE(per_key, nullptr);
  // Quiesced cluster: the predicate caught up with the stream.
  EXPECT_EQ(per_key->value(), 0);
  EXPECT_EQ(nodes[0]->get_stability_frontier("all"), 7);
}

// --- LatencyProbe ---------------------------------------------------------------

TEST(LatencyProbe, JoinsSendDeliverAndStableSpansAtSampledSeqs) {
  obs::LatencyProbeOptions popt;
  popt.sample_every = 2;
  obs::LatencyProbe probe(popt);
  EXPECT_TRUE(probe.sampled(0));
  EXPECT_FALSE(probe.sampled(1));
  EXPECT_TRUE(probe.sampled(2));
  EXPECT_FALSE(probe.sampled(kNoSeq));

  // seqs 0..3 sent at t = 100 + 10*seq; sampled: 0 and 2.
  for (SeqNum s = 0; s < 4; ++s)
    probe.on_send(/*origin=*/0, s, TimePoint{Duration{100 + 10 * s}});
  // Remote node 1 delivers seq 0 at 150 (+50) and seq 2 at 180 (+60);
  // the origin's self-delivery must not record.
  probe.on_deliver(1, 0, 0, TimePoint{Duration{150}});
  probe.on_deliver(0, 0, 0, TimePoint{Duration{151}});  // self: ignored
  probe.on_deliver(1, 0, 2, TimePoint{Duration{180}});
  probe.on_deliver(1, 0, 1, TimePoint{Duration{160}});  // unsampled: ignored
  const obs::Histogram* dlv =
      probe.registry().find_histogram("probe.send_to_deliver");
  ASSERT_NE(dlv, nullptr);
  EXPECT_EQ(dlv->count(), 2u);
  EXPECT_EQ(dlv->min(), 50u);
  EXPECT_EQ(dlv->max(), 60u);

  // The "all" frontier reaches seq 1 (covers sampled 0), then seq 3
  // (covers sampled 2); a repeat fire at 3 must not double-record.
  probe.on_stable(0, 1, 3, "all", TimePoint{Duration{200}});
  probe.on_stable(0, 3, 3, "all", TimePoint{Duration{300}});
  probe.on_stable(0, 3, 3, "all", TimePoint{Duration{400}});
  const obs::Histogram* stb =
      probe.registry().find_histogram("probe.send_to_stable.all");
  ASSERT_NE(stb, nullptr);
  EXPECT_EQ(stb->count(), 2u);
  EXPECT_EQ(stb->min(), 100u);   // seq 0: 200 - 100
  EXPECT_EQ(stb->max(), 180u);   // seq 2: 300 - 120
  // Frontier lag fed per fire: 3-1=2, 3-3=0, 3-3=0.
  const obs::Histogram* lag =
      probe.registry().find_histogram("probe.frontier_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->count(), 3u);
  EXPECT_EQ(lag->max(), 2u);
  const obs::Gauge* lag_gauge =
      probe.registry().find_gauge("probe.frontier_lag.o0");
  ASSERT_NE(lag_gauge, nullptr);
  EXPECT_EQ(lag_gauge->value(), 0);
}

TEST(LatencyProbe, WindowedExportAdvancesOffCallerClockOnly) {
  obs::LatencyProbeOptions popt;
  popt.sample_every = 1;
  popt.window_epoch = millis(10);
  popt.window_epochs = 2;
  obs::LatencyProbe probe(popt);
  probe.on_send(0, 0, TimePoint{millis(0)});
  probe.on_deliver(1, 0, 0, TimePoint{millis(1)});
  // Nothing advanced yet: the windowed view is empty until an epoch closes.
  EXPECT_EQ(probe.windowed("probe.send_to_deliver").count, 0u);
  probe.advance_windows(TimePoint{millis(25)});  // closes >= 1 epoch
  EXPECT_EQ(probe.windowed("probe.send_to_deliver").count, 1u);
  // Far-future advance ages everything out of the 2-epoch ring.
  probe.advance_windows(TimePoint{millis(1000)});
  EXPECT_EQ(probe.windowed("probe.send_to_deliver").count, 0u);

  std::ostringstream out;
  probe.export_windows_jsonl(out);
  EXPECT_NE(out.str().find("\"type\":\"windowed_histogram\""),
            std::string::npos);
  EXPECT_NE(out.str().find("probe.send_to_deliver"), std::string::npos);
}

TEST(LatencyProbe, EvictsOldestSpanPastMaxOpenAndCounts) {
  obs::LatencyProbeOptions popt;
  popt.sample_every = 1;
  popt.max_open_spans = 4;
  obs::LatencyProbe probe(popt);
  for (SeqNum s = 0; s < 6; ++s)
    probe.on_send(0, s, TimePoint{Duration{s}});
  EXPECT_EQ(probe.registry().find_counter("probe.spans_evicted")->value(),
            2u);
  // Evicted seqs 0 and 1 no longer close; surviving 2..5 do.
  probe.on_stable(0, 5, 5, "all", TimePoint{Duration{100}});
  EXPECT_EQ(
      probe.registry().find_histogram("probe.send_to_stable.all")->count(),
      4u);
}

/// Shared-probe sim campaign; returns the full probe export (registry +
/// windowed views) for determinism comparison.
std::string run_probed_workload() {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  obs::LatencyProbeOptions popt;
  popt.sample_every = 2;
  auto probe = std::make_shared<obs::LatencyProbe>(popt);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.probe = probe;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 32; ++i)
    nodes[0]->send(to_bytes("m" + std::to_string(i)));
  sim.run();
  probe->advance_windows(sim.now() + seconds(10));
  std::ostringstream out;
  probe->registry().dump_jsonl(out, "probe.");
  probe->export_windows_jsonl(out);
  return out.str();
}

TEST(LatencyProbe, SimCampaignClosesSpansAndExportsByteIdenticallyPerSeed) {
  std::string a = run_probed_workload();
  std::string b = run_probed_workload();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("probe.send_to_deliver"), std::string::npos);
  EXPECT_NE(a.find("probe.send_to_stable.all"), std::string::npos);
  EXPECT_NE(a.find("windowed_histogram"), std::string::npos);
  // 32 messages at 1-in-2 sampling: 16 sampled spans, each delivered on 2
  // remote nodes -> 32 deliver legs; 16 stable closes.
  EXPECT_NE(a.find("\"name\":\"probe.probe.send_to_stable.all\","
                   "\"type\":\"histogram\",\"count\":16"),
            std::string::npos)
      << a;
}

// --- Trace drop accounting ------------------------------------------------------

TEST(TraceDrop, ExportAppendsSummaryLineOnlyWhenDropsOccurred) {
  obs::Tracer t(/*capacity=*/2);
  t.record(TimePoint{}, obs::SpanEvent::kBroadcast, 0, 0, 0);
  std::ostringstream clean;
  t.export_jsonl(clean);
  EXPECT_EQ(clean.str().find("trace_dropped"), std::string::npos);
  for (SeqNum s = 1; s < 5; ++s)
    t.record(TimePoint{}, obs::SpanEvent::kBroadcast, 0, 0, s);
  std::ostringstream out;
  t.export_jsonl(out);
  EXPECT_NE(out.str().find("{\"summary\":\"trace_dropped\",\"dropped\":3,"
                           "\"kept\":2}"),
            std::string::npos)
      << out.str();
}

TEST(TraceDrop, StabilizerExportsDroppedCountAsRegistryCounter) {
  sim::Simulator sim;
  Topology topo = mesh_topology(3);
  SimCluster cluster(topo, sim);
  // Tiny capacity: the workload overflows it deterministically.
  auto tracer = std::make_shared<obs::Tracer>(/*capacity=*/4);
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  for (NodeId n = 0; n < 3; ++n) {
    StabilizerOptions opts;
    opts.topology = topo;
    opts.self = n;
    opts.tracer = tracer;
    nodes.push_back(std::make_unique<Stabilizer>(opts, cluster.transport(n)));
  }
  nodes[0]->register_predicate("all", "MIN($ALLWNODES)");
  for (int i = 0; i < 16; ++i) nodes[0]->send(to_bytes("x"));
  sim.run();
  ASSERT_GT(tracer->dropped(), 0u);
  // metrics() folds the tracer's drop count into obs.trace_dropped. The
  // shared tracer's drops appear at whichever node's metrics are read.
  const obs::Counter* c =
      nodes[0]->metrics().find_counter("obs.trace_dropped");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), tracer->dropped());
}

// --- New span coverage ----------------------------------------------------------

TEST(SpanNames, FailoverAndPipelineEventsAreNamed) {
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kLeaseExpire),
               "lease_expire");
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kSuspect), "suspect");
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kPromote), "promote");
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kTakeoverApply),
               "takeover_apply");
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kFenceDrop),
               "fence_drop");
  EXPECT_STREQ(obs::span_event_name(obs::SpanEvent::kRingStall),
               "ring_stall");
  // Mask partition: lifecycle + episode = all, disjoint.
  EXPECT_EQ(obs::kLifecycleEvents | obs::kEpisodeEvents, obs::kAllEvents);
  EXPECT_EQ(obs::kLifecycleEvents & obs::kEpisodeEvents, 0u);
  EXPECT_TRUE((obs::kEpisodeEvents &
               obs::event_bit(obs::SpanEvent::kRingStall)) != 0);
}

}  // namespace
}  // namespace stab
