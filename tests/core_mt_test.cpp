// Concurrent-facade tests for PipelineMode::kPipelined over the in-process
// transport: real threads driving send / report_stability / waitfor /
// get_stability_frontier / monitor_stability_frontier against one node at
// once, with the receive path running lock-free ingestion (DESIGN.md §4f).
//
// Zero-latency InProc links use direct dispatch — the sender's thread runs
// the receiver's ingest handler — so these tests exercise the full
// multi-producer story: N-1 peer threads folding acks into the atomic cells
// concurrently with local API threads reading the wait-free board.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/stabilizer.hpp"
#include "net/inproc_transport.hpp"

namespace stab {
namespace {

using PipelineMode = StabilizerOptions::PipelineMode;

Topology mesh_topology(size_t n, double lat_ms) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i), "az" + std::to_string(i % 2));
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

/// An n-node real-time cluster. lat_ms = 0 selects the direct-dispatch
/// delivery path (sender thread runs the receiver's ingest).
struct MtFixture {
  MtFixture(size_t n, PipelineMode mode, double lat_ms = 0)
      : topo(mesh_topology(n, lat_ms)), cluster(n, &topo) {
    for (NodeId id = 0; id < n; ++id) {
      StabilizerOptions opts;
      opts.topology = topo;
      opts.self = id;
      opts.ack_interval = millis(1);
      opts.retransmit_timeout = millis(50);
      opts.pipeline_mode = mode;
      nodes.push_back(
          std::make_unique<Stabilizer>(opts, cluster.transport(id)));
    }
  }
  ~MtFixture() {
    nodes.clear();
    cluster.shutdown();
  }
  Stabilizer& node(NodeId id) { return *nodes.at(id); }

  /// Spin (with sleeps) until `key`'s frontier on node `id` reaches `seq`.
  bool await_frontier(NodeId id, const std::string& key, SeqNum seq,
                      NodeId origin = kInvalidNode,
                      std::chrono::seconds deadline = std::chrono::seconds(30)) {
    auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (node(id).get_stability_frontier(key, origin) >= seq) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  Topology topo;
  InProcCluster cluster;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
};

// Four concurrent client threads on one pipelined node — two senders, one
// frontier reader, one waiter — plus the peers' ack traffic folding into the
// cells from their own threads. Checks: no lost messages, every frontier
// read monotone, monitor fires strictly increasing, and the cluster
// converges to full stability.
TEST(CoreMt, ConcurrentFacadeUseConvergesWithMonotoneFrontiers) {
  MtFixture f(3, PipelineMode::kPipelined);
  Stabilizer& s = f.node(0);
  ASSERT_TRUE(s.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  ASSERT_TRUE(s.register_predicate("one", "MAX($ALLWNODES-$MYWNODE)"));

  std::atomic<SeqNum> monitor_last{kNoSeq};
  ASSERT_TRUE(s.monitor_stability_frontier("all", [&](SeqNum fr, BytesView) {
    // Monitors fire from the drain under the lock: strictly increasing.
    EXPECT_GT(fr, monitor_last.load(std::memory_order_relaxed));
    monitor_last.store(fr, std::memory_order_relaxed);
  }));

  constexpr int kPerSender = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> waiter_ok{0};

  std::thread sender_a([&] {
    for (int i = 0; i < kPerSender; ++i) s.send(to_bytes("a"));
  });
  std::thread sender_b([&] {
    for (int i = 0; i < kPerSender; ++i) s.send(to_bytes("b"));
  });
  std::thread reader([&] {
    SeqNum prev_all = kNoSeq, prev_one = kNoSeq;
    while (!stop.load(std::memory_order_relaxed)) {
      SeqNum a = s.get_stability_frontier("all");
      SeqNum o = s.get_stability_frontier("one");
      ASSERT_GE(a, prev_all);  // wait-free reads never regress
      ASSERT_GE(o, prev_one);
      ASSERT_GE(o, a);  // MAX dominates MIN over the same cells
      prev_all = a;
      prev_one = o;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread waiter([&] {
    for (SeqNum seq : {SeqNum(10), SeqNum(100), SeqNum(2 * kPerSender - 1)})
      if (s.waitfor_blocking(seq, "all", seconds(30))) ++waiter_ok;
  });

  sender_a.join();
  sender_b.join();
  const SeqNum last = s.last_sent();
  EXPECT_EQ(last, 2 * kPerSender - 1);  // dense seqs under concurrent send

  EXPECT_TRUE(f.await_frontier(0, "all", last));
  waiter.join();
  EXPECT_EQ(waiter_ok.load(), 3);
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(s.get_stability_frontier("all"), last);
  EXPECT_EQ(monitor_last.load(), last);
  // Every peer delivered the full stream in order (FIFO counters).
  for (NodeId p : {NodeId{1}, NodeId{2}})
    EXPECT_EQ(f.node(p).delivered_through(0), last);

#if STAB_OBS_ENABLED
  // The storm really took the lock-free path: peer acks landed in the
  // cells, drains batched them, and no ring event was required for them.
  EXPECT_GT(s.metrics().counter("pipeline.cell_acks").value(), 0u);
  EXPECT_GT(s.metrics().counter("pipeline.drains").value(), 0u);
#endif
}

// The same fixed workload converges to the same application-visible state
// under kPipelined and kLegacyLocked: last_sent, per-peer delivery
// counters, and every (key, origin) frontier. Real-time timing differs
// between runs; the converged state must not.
TEST(CoreMt, PipelinedMatchesLegacyLockedConvergedState) {
  struct Converged {
    SeqNum last[3];
    SeqNum delivered[3][3];
    SeqNum frontier[3][3];
  };
  auto run = [](PipelineMode mode) {
    MtFixture f(3, mode, /*lat_ms=*/0.2);
    for (NodeId id = 0; id < 3; ++id) {
      // EXPECT (not ASSERT): this lambda returns a value.
      EXPECT_TRUE(
          f.node(id).register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
    }
    std::vector<std::thread> senders;
    for (NodeId id = 0; id < 3; ++id)
      senders.emplace_back([&f, id] {
        for (int i = 0; i < 60; ++i) f.node(id).send(to_bytes("m"));
      });
    for (auto& t : senders) t.join();
    Converged out{};
    for (NodeId o = 0; o < 3; ++o) {
      out.last[o] = f.node(o).last_sent();
      for (NodeId g = 0; g < 3; ++g) {
        EXPECT_TRUE(f.await_frontier(o, "all", f.node(g).last_sent(), g))
            << "node " << o << " origin " << g;
        out.delivered[o][g] = f.node(o).delivered_through(g);
        out.frontier[o][g] = f.node(o).get_stability_frontier("all", g);
      }
    }
    return out;
  };

  Converged piped = run(PipelineMode::kPipelined);
  Converged locked = run(PipelineMode::kLegacyLocked);
  for (NodeId o = 0; o < 3; ++o) {
    EXPECT_EQ(piped.last[o], locked.last[o]);
    for (NodeId g = 0; g < 3; ++g) {
      EXPECT_EQ(piped.delivered[o][g], locked.delivered[o][g])
          << "node " << o << " origin " << g;
      EXPECT_EQ(piped.frontier[o][g], locked.frontier[o][g])
          << "node " << o << " origin " << g;
    }
  }
}

// Custom stability levels through the lock-free report path: peers report
// "verified" for the origin's messages from their own threads; the origin's
// predicate over .verified converges. The first report per node takes the
// locked slow path (type not yet registered there), the rest fold into the
// cells — both routes must merge into the same frontier.
TEST(CoreMt, ConcurrentCustomReportsAdvanceVerifiedFrontier) {
  MtFixture f(3, PipelineMode::kPipelined);
  Stabilizer& s = f.node(0);
  ASSERT_TRUE(
      s.register_predicate("ver", "MIN(($ALLWNODES-$MYWNODE).verified)"));

  constexpr SeqNum kLast = 99;
  for (SeqNum q = 0; q <= kLast; ++q) s.send(to_bytes("v"));

  // Wait until both peers delivered everything, then report from two
  // threads per peer, interleaved over the whole range.
  auto all_delivered = [&] {
    return f.node(1).delivered_through(0) == kLast &&
           f.node(2).delivered_through(0) == kLast;
  };
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!all_delivered() && std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(all_delivered());

  std::vector<std::thread> reporters;
  for (NodeId p : {NodeId{1}, NodeId{2}})
    for (int half = 0; half < 2; ++half)
      reporters.emplace_back([&f, p, half] {
        for (SeqNum q = half; q <= kLast; q += 2)
          ASSERT_TRUE(f.node(p).report_stability("verified", 0, q));
      });
  for (auto& t : reporters) t.join();

  EXPECT_TRUE(f.await_frontier(0, "ver", kLast));
  EXPECT_EQ(s.get_stability_frontier("ver"), kLast);
}

// Regression pinned by the audit note in Stabilizer::waitfor_blocking: a
// thread parked in a blocking wait whose predicate is removed (the waiter is
// CANCELLED, fired with kNoSeq) must return false promptly — not complete,
// not crash, not sleep out its full timeout — and the facade must keep
// working afterwards. Runs in pipelined mode so the cancellation also races
// the lock-free ingest/drain machinery.
TEST(CoreMt, WaitforBlockingCancelledWhileParked) {
  Topology topo = mesh_topology(2, 0);
  InProcCluster cluster(2, &topo);
  StabilizerOptions opts;
  opts.topology = topo;
  opts.self = 0;
  opts.ack_interval = millis(1);
  opts.retransmit_timeout = millis(20);  // node 1 boots late: needs go-back-N
  opts.pipeline_mode = PipelineMode::kPipelined;
  Stabilizer node0(opts, cluster.transport(0));
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  // No Stabilizer on node 1 yet: the wait can only end by cancellation.
  SeqNum seq = node0.send(to_bytes("x"));

  std::atomic<bool> result{true};
  std::thread parked([&] {
    result = node0.waitfor_blocking(seq, "all", seconds(60));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(node0.remove_predicate("all"));
  parked.join();
  EXPECT_FALSE(result.load());  // cancelled, not "stabilized"
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));

  // The facade survives: re-register, bring the peer up, and a fresh
  // blocking wait completes normally.
  ASSERT_TRUE(node0.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  StabilizerOptions opts1 = opts;
  opts1.self = 1;
  Stabilizer node1(opts1, cluster.transport(1));
  EXPECT_TRUE(node0.waitfor_blocking(seq, "all", seconds(30)));
  EXPECT_GE(node0.get_stability_frontier("all"), seq);
}

// The waitfor already-stable fast path answers from the wait-free board
// without the lock: once the frontier covers seq, a waitfor from any thread
// fires inline with a frontier at least that fresh.
TEST(CoreMt, WaitforFastPathFiresInlineWhenAlreadyStable) {
  MtFixture f(2, PipelineMode::kPipelined);
  Stabilizer& s = f.node(0);
  ASSERT_TRUE(s.register_predicate("all", "MIN($ALLWNODES-$MYWNODE)"));
  SeqNum seq = s.send(to_bytes("x"));
  ASSERT_TRUE(f.await_frontier(0, "all", seq));

  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) {
        bool inline_fired = false;
        ASSERT_TRUE(s.waitfor(seq, "all", [&](SeqNum fr) {
          EXPECT_GE(fr, seq);
          inline_fired = true;
        }));
        ASSERT_TRUE(inline_fired);  // already stable: fires before returning
        ++fired;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 4000);
}

}  // namespace
}  // namespace stab
