// Tests for the transports: sim (with topology pipes), in-process threads,
// and real TCP sockets on loopback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "config/topology.hpp"
#include "net/inproc_transport.hpp"
#include "net/metrics_endpoint.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"

namespace stab {
namespace {

// --- SimCluster -------------------------------------------------------------

TEST(SimCluster, WiresTopologyLatency) {
  sim::Simulator sim;
  SimCluster cluster(cloudlab_topology(), sim);
  auto& t0 = cluster.transport(cloudlab::kUtah1);
  auto& t2 = cluster.transport(cloudlab::kWisconsin);

  TimePoint got = kTimeZero;
  t2.set_receive_handler(
      [&](NodeId src, BytesView, uint64_t) {
        EXPECT_EQ(src, cloudlab::kUtah1);
        got = sim.now();
      });
  t0.send(cloudlab::kWisconsin, to_bytes("ping"));
  sim.run();
  EXPECT_NEAR(to_ms(got), 35.612 / 2, 0.01);
}

TEST(SimCluster, PipeGroupsShareBandwidth) {
  Topology topo;
  NodeId a = topo.add_node("a", "az1");
  NodeId b = topo.add_node("b", "az2");
  NodeId c = topo.add_node("c", "az2");
  LinkSpec s;
  s.bandwidth_bps = 8e6;
  s.pipe_group = "to_az2";
  topo.set_link(a, b, s);
  topo.set_link(a, c, s);

  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  TimePoint at_b = kTimeZero, at_c = kTimeZero;
  cluster.transport(b).set_receive_handler(
      [&](NodeId, BytesView, uint64_t) { at_b = sim.now(); });
  cluster.transport(c).set_receive_handler(
      [&](NodeId, BytesView, uint64_t) { at_c = sim.now(); });

  cluster.transport(a).send(b, Bytes(), 1'000'000);
  cluster.transport(a).send(c, Bytes(), 1'000'000);
  sim.run();
  EXPECT_EQ(at_b, seconds(1));
  EXPECT_EQ(at_c, seconds(2));  // shared pipe serialized the transfers
}

TEST(SimCluster, SelfDescribes) {
  sim::Simulator sim;
  SimCluster cluster(ec2_topology(), sim);
  EXPECT_EQ(cluster.transport(0).self(), 0u);
  EXPECT_EQ(cluster.transport(0).cluster_size(), 8u);
  EXPECT_EQ(&cluster.transport(3).env(), &sim);
}

// --- InProcCluster ----------------------------------------------------------

TEST(InProc, DeliversBetweenThreads) {
  InProcCluster cluster(3);
  std::atomic<int> got{0};
  cluster.transport(1).set_receive_handler(
      [&](NodeId src, BytesView frame, uint64_t) {
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(to_string(frame), "hello");
        ++got;
      });
  cluster.transport(0).send(1, to_bytes("hello"));
  for (int i = 0; i < 500 && got == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(got.load(), 1);
}

TEST(InProc, FifoPerPeer) {
  InProcCluster cluster(2);
  std::mutex m;
  std::vector<uint32_t> got;
  cluster.transport(1).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t) {
        Reader r(frame);
        std::lock_guard<std::mutex> l(m);
        got.push_back(r.u32());
      });
  const int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    Writer w;
    w.u32(static_cast<uint32_t>(i));
    cluster.transport(0).send(1, std::move(w).take());
  }
  for (int i = 0; i < 2000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (got.size() == kCount) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  ASSERT_EQ(got.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[i], static_cast<uint32_t>(i));
}

TEST(InProc, AppliesTopologyLatency) {
  Topology topo;
  topo.add_node("a", "x");
  topo.add_node("b", "y");
  LinkSpec s;
  s.latency = millis(50);
  topo.set_link(0, 1, s);
  InProcCluster cluster(2, &topo);
  std::atomic<bool> got{false};
  auto start = std::chrono::steady_clock::now();
  std::atomic<int64_t> elapsed_ms{0};
  cluster.transport(1).set_receive_handler([&](NodeId, BytesView, uint64_t) {
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    got = true;
  });
  cluster.transport(0).send(1, to_bytes("x"));
  for (int i = 0; i < 1000 && !got; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(got.load());
  EXPECT_GE(elapsed_ms.load(), 45);
}

// --- shared-frame fan-out ---------------------------------------------------

TEST(SimCluster, SharedFanOutDeliversWithoutCopy) {
  Topology topo;
  NodeId a = topo.add_node("a", "az1");
  NodeId b = topo.add_node("b", "az2");
  NodeId c = topo.add_node("c", "az3");
  topo.set_link(a, b, LinkSpec{});
  topo.set_link(a, c, LinkSpec{});

  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  const uint8_t* seen_b = nullptr;
  const uint8_t* seen_c = nullptr;
  cluster.transport(b).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t) { seen_b = frame.data(); });
  cluster.transport(c).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t) { seen_c = frame.data(); });

  auto frame = std::make_shared<const Bytes>(to_bytes("refcounted fan-out"));
  cluster.transport(a).send_shared(b, frame);
  cluster.transport(a).send_shared(c, frame);
  sim.run();

  // Every receiver observed the single shared buffer, byte-for-byte in place.
  EXPECT_EQ(seen_b, frame->data());
  EXPECT_EQ(seen_c, frame->data());
}

TEST(InProc, SharedFanOutDeliversSameBuffer) {
  InProcCluster cluster(3);
  std::atomic<const uint8_t*> seen1{nullptr};
  std::atomic<const uint8_t*> seen2{nullptr};
  cluster.transport(1).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t) {
        EXPECT_EQ(to_string(frame), "one buffer, two threads");
        seen1 = frame.data();
      });
  cluster.transport(2).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t) {
        EXPECT_EQ(to_string(frame), "one buffer, two threads");
        seen2 = frame.data();
      });

  auto frame =
      std::make_shared<const Bytes>(to_bytes("one buffer, two threads"));
  cluster.transport(0).send_shared(1, frame);
  cluster.transport(0).send_shared(2, frame);
  for (int i = 0; i < 2000 && (!seen1.load() || !seen2.load()); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_NE(seen1.load(), nullptr);
  ASSERT_NE(seen2.load(), nullptr);
  EXPECT_EQ(seen1.load(), frame->data());
  EXPECT_EQ(seen2.load(), frame->data());
}

// --- TcpTransport -----------------------------------------------------------

uint16_t pick_base_port() {
  // Different per-process-ish base to dodge TIME_WAIT collisions between
  // test invocations.
  return static_cast<uint16_t>(20000 + (::getpid() % 500) * 64);
}

TEST(Tcp, ConnectsAndDelivers) {
  auto addrs = loopback_addrs(2, pick_base_port());
  TcpTransport a(0, addrs), b(1, addrs);
  ASSERT_TRUE(a.wait_connected(seconds(5)));
  ASSERT_TRUE(b.wait_connected(seconds(5)));

  std::atomic<int> got{0};
  b.set_receive_handler([&](NodeId src, BytesView frame, uint64_t) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(to_string(frame), "over tcp");
    ++got;
  });
  a.send(1, to_bytes("over tcp"));
  for (int i = 0; i < 2000 && got == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(got.load(), 1);
}

TEST(Tcp, BidirectionalAndFifo) {
  auto addrs = loopback_addrs(3, static_cast<uint16_t>(pick_base_port() + 8));
  TcpTransport a(0, addrs), b(1, addrs), c(2, addrs);
  ASSERT_TRUE(a.wait_connected(seconds(5)));
  ASSERT_TRUE(b.wait_connected(seconds(5)));
  ASSERT_TRUE(c.wait_connected(seconds(5)));

  std::mutex m;
  std::vector<uint32_t> at_c;
  c.set_receive_handler([&](NodeId src, BytesView frame, uint64_t) {
    Reader r(frame);
    uint32_t v = r.u32();
    std::lock_guard<std::mutex> l(m);
    if (src == 0) at_c.push_back(v);
  });
  std::atomic<int> at_a{0};
  a.set_receive_handler([&](NodeId src, BytesView, uint64_t) {
    if (src == 2) ++at_a;
  });

  const int kCount = 300;
  for (int i = 0; i < kCount; ++i) {
    Writer w;
    w.u32(static_cast<uint32_t>(i));
    a.send(2, std::move(w).take());
  }
  c.send(0, to_bytes("reply"));

  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (at_c.size() == kCount && at_a > 0) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  ASSERT_EQ(at_c.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(at_c[i], static_cast<uint32_t>(i));
  EXPECT_GE(at_a.load(), 1);
}

TEST(Tcp, BuffersWhilePeerDown) {
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(pick_base_port() + 16));
  TcpTransport a(0, addrs);
  // Peer 1 is not up yet; frames must be buffered, not lost.
  a.send(1, to_bytes("early-1"));
  a.send(1, to_bytes("early-2"));

  TcpTransport b(1, addrs);
  std::mutex m;
  std::vector<std::string> got;
  b.set_receive_handler([&](NodeId, BytesView frame, uint64_t) {
    std::lock_guard<std::mutex> l(m);
    got.push_back(to_string(frame));
  });
  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (got.size() == 2) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "early-1");
  EXPECT_EQ(got[1], "early-2");
}

TEST(Tcp, ReconnectBackoffGrowsCapsAndResetsOnConnect) {
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(pick_base_port() + 32));
  TcpTransportOptions opts;
  opts.reconnect_initial = millis(5);
  opts.reconnect_max = millis(40);
  opts.reconnect_jitter = 0.2;
  TcpTransport a(0, addrs, opts);  // peer 1 absent: every dial fails

  Duration max_seen = Duration::zero();
  for (int i = 0; i < 600; ++i) {
    max_seen = std::max(max_seen, a.current_backoff(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Grew beyond the initial delay and capped at reconnect_max (+ jitter).
  EXPECT_GT(max_seen, millis(5));
  EXPECT_LE(max_seen, millis(48));

  TcpTransport b(1, addrs);
  ASSERT_TRUE(a.wait_connected(seconds(5)));
  for (int i = 0; i < 1000 && a.current_backoff(1) != Duration::zero(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(a.current_backoff(1), Duration::zero());  // reset for next outage
}

TEST(Tcp, PendingBufferBoundDropsOldestFirst) {
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(pick_base_port() + 40));
  TcpTransportOptions opts;
  opts.max_pending_bytes = 4096;
  TcpTransport a(0, addrs, opts);

  const uint32_t kCount = 100;
  for (uint32_t i = 0; i < kCount; ++i) {
    Writer w;
    w.u32(i);
    w.blob(Bytes(100));  // ~100+ bytes per frame: far beyond the bound
    a.send(1, std::move(w).take());
  }
  EXPECT_LE(a.pending_bytes(1), opts.max_pending_bytes);
  EXPECT_GT(a.pending_dropped_frames(), 0u);

  TcpTransport b(1, addrs);
  std::mutex m;
  std::vector<uint32_t> got;
  b.set_receive_handler([&](NodeId, BytesView frame, uint64_t) {
    Reader r(frame);
    std::lock_guard<std::mutex> l(m);
    got.push_back(r.u32());
  });
  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (!got.empty() && got.back() == kCount - 1) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  // Oldest frames were dropped; what survived is the newest contiguous
  // tail, delivered in order and ending with the last send.
  ASSERT_FALSE(got.empty());
  EXPECT_LT(got.size(), static_cast<size_t>(kCount));
  EXPECT_EQ(got.back(), kCount - 1);
  for (size_t i = 1; i < got.size(); ++i) EXPECT_EQ(got[i], got[i - 1] + 1);
}

TEST(Tcp, LargeFrame) {
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(pick_base_port() + 24));
  TcpTransport a(0, addrs), b(1, addrs);
  ASSERT_TRUE(a.wait_connected(seconds(5)));

  Bytes big(512 * 1024);
  for (size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<uint8_t>(i * 31 + 7);
  std::atomic<bool> ok{false};
  b.set_receive_handler([&](NodeId, BytesView frame, uint64_t) {
    ok = std::equal(frame.begin(), frame.end(), big.begin(), big.end());
  });
  a.send(1, big);
  for (int i = 0; i < 5000 && !ok; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ok.load());
}

TEST(Tcp, SendSharedScatterGathersPrefixAndBody) {
  auto addrs = loopback_addrs(2, static_cast<uint16_t>(pick_base_port() + 48));
  TcpTransport a(0, addrs), b(1, addrs);
  ASSERT_TRUE(a.wait_connected(seconds(5)));

  // Mix shared and copied sends so the writev path interleaves two-iovec
  // (header + refcounted body) frames with plain single-buffer frames, and
  // verify FIFO survives partial-write bookkeeping.
  std::mutex m;
  std::vector<std::string> got;
  b.set_receive_handler([&](NodeId src, BytesView frame, uint64_t) {
    EXPECT_EQ(src, 0u);
    std::lock_guard<std::mutex> l(m);
    got.push_back(to_string(frame));
  });

  auto shared = std::make_shared<const Bytes>(to_bytes("shared body"));
  a.send_shared(1, shared);
  a.send(1, to_bytes("copied"));
  a.send_shared(1, shared);

  for (int i = 0; i < 5000; ++i) {
    {
      std::lock_guard<std::mutex> l(m);
      if (got.size() == 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> l(m);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "shared body");
  EXPECT_EQ(got[1], "copied");
  EXPECT_EQ(got[2], "shared body");
}

#if STAB_OBS_ENABLED

// --- MetricsEndpoint --------------------------------------------------------

// Minimal scrape client mirroring tools/stab_metrics_scrape: connect, send
// one GET, return the response body (empty on any failure).
std::string http_get(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, n);
  ::close(fd);
  size_t body = resp.find("\r\n\r\n");
  if (resp.rfind("HTTP/1.0 200", 0) != 0 || body == std::string::npos)
    return {};
  return resp.substr(body + 4);
}

TEST(MetricsEndpoint, ServesPrometheusAndJsonlWithMonotoneCounters) {
  obs::MetricsRegistry reg;
  reg.counter("core.messages_sent").inc(3);
  reg.gauge("pipeline.depth").set(-2);
  reg.histogram("data.frame_bytes").record(100);

  obs::LatencyProbeOptions popt;
  popt.sample_every = 1;
  obs::LatencyProbe probe(popt);
  probe.on_send(0, 0, TimePoint{millis(1)});
  probe.on_deliver(1, 0, 0, TimePoint{millis(2)});
  TimePoint scrape_clock = TimePoint{seconds(10)};

  MetricsEndpoint ep;
  ep.add_registry("node0.", &reg);
  ep.add_probe("", &probe, [&] { return scrape_clock; });
  int pre_scrapes = 0;
  ep.set_pre_scrape([&] { ++pre_scrapes; });
  ASSERT_TRUE(ep.start().is_ok());
  ASSERT_NE(ep.port(), 0);

  std::string prom = http_get(ep.port(), "/metrics");
  ASSERT_FALSE(prom.empty());
  EXPECT_EQ(pre_scrapes, 1);
  // Names sanitized '.' -> '_', "stab_" prefixed; types declared.
  EXPECT_NE(prom.find("# TYPE stab_node0_core_messages_sent counter\n"
                      "stab_node0_core_messages_sent 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("stab_node0_pipeline_depth -2"), std::string::npos);
  EXPECT_NE(prom.find("stab_node0_data_frame_bytes{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("stab_node0_data_frame_bytes_count 1"),
            std::string::npos);
  // Probe histograms and their windowed views (epoch aged in by the scrape
  // clock the endpoint was handed).
  EXPECT_NE(prom.find("stab_probe_send_to_deliver_count 1"),
            std::string::npos);
  EXPECT_NE(prom.find("stab_probe_send_to_deliver_window{quantile=\"0.5\"}"),
            std::string::npos);

  // Counters must be monotone across scrapes.
  reg.counter("core.messages_sent").inc(2);
  std::string prom2 = http_get(ep.port(), "/metrics");
  EXPECT_NE(prom2.find("stab_node0_core_messages_sent 5"),
            std::string::npos);
  EXPECT_EQ(pre_scrapes, 2);

  std::string jsonl = http_get(ep.port(), "/jsonl");
  EXPECT_NE(jsonl.find("{\"name\":\"node0.core.messages_sent\","
                       "\"type\":\"counter\",\"value\":5}"),
            std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"type\":\"windowed_histogram\""),
            std::string::npos);

  // Unknown paths 404 (http_get returns empty on non-200).
  EXPECT_TRUE(http_get(ep.port(), "/nope").empty());
  ep.stop();
  // Stopped endpoint refuses connections.
  EXPECT_TRUE(http_get(ep.port(), "/metrics").empty());
}

TEST(MetricsEndpoint, RendersDeterministicallyWithoutServing) {
  obs::MetricsRegistry reg;
  reg.counter("a.b-c d").inc(1);  // hostile name: sanitized in prometheus
  MetricsEndpoint ep;
  ep.add_registry("", &reg);
  std::string p1 = ep.render_prometheus();
  std::string p2 = ep.render_prometheus();
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1.find("stab_a_b_c_d 1"), std::string::npos) << p1;
  EXPECT_EQ(ep.render_jsonl(), ep.render_jsonl());
}

#endif  // STAB_OBS_ENABLED

}  // namespace
}  // namespace stab
