// Unit tests for src/common: codec, result, rng, time helpers, stats,
// realtime env.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/bytes.hpp"
#include "common/realtime_env.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace stab {
namespace {

TEST(Codec, RoundTripScalars) {
  Writer w;
  w.u8(0x7f);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.5);
  Bytes b = std::move(w).take();

  Reader r(b);
  EXPECT_EQ(r.u8(), 0x7f);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.5);
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripBlobAndString) {
  Writer w;
  w.str("hello");
  w.blob(to_bytes("world"));
  w.str("");
  Bytes b = std::move(w).take();

  Reader r(b);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(to_string(r.blob()), "world");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Codec, TruncatedThrows) {
  Writer w;
  w.u64(7);
  Bytes b = std::move(w).take();
  b.resize(4);
  Reader r(b);
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(Codec, BlobLengthBeyondBufferThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  Bytes b = std::move(w).take();
  Reader r(b);
  EXPECT_THROW(r.blob(), CodecError);
}

TEST(Codec, ReaderTracksRemaining) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Bytes b = std::move(w).take();
  Reader r(b);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

TEST(Result, OkAndError) {
  Result<int> ok = 7;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 7);

  auto err = Result<int>::error("boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.message(), "boom");
  EXPECT_THROW(err.value(), std::runtime_error);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  Status e = Status::error("bad");
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.message(), "bad");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.next_pareto(2.0, 1.5), 2.0);
}

TEST(Time, TransmitTime) {
  // 1 MB over 8 Mbit/s = 1 second.
  EXPECT_EQ(transmit_time(1'000'000, 8e6), seconds(1));
  EXPECT_EQ(transmit_time(123, 0), Duration::zero());
}

TEST(Time, MsRoundTrip) {
  EXPECT_NEAR(to_ms(from_ms(53.87)), 53.87, 1e-9);
  EXPECT_NEAR(to_sec(from_sec(0.25)), 0.25, 1e-12);
}

TEST(Stats, BasicMoments) {
  Series s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(Stats, EmptySeriesIsSafe) {
  Series s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RealtimeEnv, FiresTimerOnce) {
  RealtimeEnv env;
  std::atomic<int> fired{0};
  env.schedule_after(millis(5), [&] { ++fired; });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fired.load(), 1);
}

TEST(RealtimeEnv, OrdersTimers) {
  RealtimeEnv env;
  std::mutex m;
  std::vector<int> order;
  env.schedule_after(millis(20), [&] {
    std::lock_guard<std::mutex> l(m);
    order.push_back(2);
  });
  env.schedule_after(millis(5), [&] {
    std::lock_guard<std::mutex> l(m);
    order.push_back(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::lock_guard<std::mutex> l(m);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(RealtimeEnv, CancelPreventsFiring) {
  RealtimeEnv env;
  std::atomic<int> fired{0};
  TimerId id = env.schedule_after(millis(30), [&] { ++fired; });
  env.cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(fired.load(), 0);
}

TEST(RealtimeEnv, RunSyncExecutesOnEnvThread) {
  RealtimeEnv env;
  bool ran = false;
  env.run_sync([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(RealtimeEnv, PostRunsSoon) {
  RealtimeEnv env;
  std::atomic<bool> ran{false};
  env.post([&] { ran = true; });
  for (int i = 0; i < 200 && !ran; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ran.load());
}

TEST(SpscRing, CapacityRoundsUpAndSingleThreadFifo) {
  SpscRing<int> ring(5);  // rounds up: usable capacity >= 5
  EXPECT_GE(ring.capacity(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, FullRingRefusesAndRecoversAcrossWrap) {
  SpscRing<int> ring(2);  // allocates 4 slots, 3 usable
  const size_t cap = ring.capacity();
  // Fill / half-drain repeatedly so the indices wrap the mask several times.
  int v;
  for (int round = 0; round < 10; ++round) {
    size_t pushed = 0;
    while (ring.try_push(int(round * 100 + static_cast<int>(pushed))))
      ++pushed;
    EXPECT_EQ(pushed, cap);  // fills to capacity exactly
    EXPECT_EQ(ring.size_approx(), cap);
    EXPECT_FALSE(ring.try_push(999));  // full refuses, never overwrites
    while (ring.try_pop(v)) {
    }
  }
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, TwoThreadsTransferEverythingInOrder) {
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i)
      while (!ring.try_push(uint64_t(i))) std::this_thread::yield();
  });
  uint64_t expect = 0;
  while (expect < kCount) {
    uint64_t v;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);  // FIFO, no loss, no duplication
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

}  // namespace
}  // namespace stab
