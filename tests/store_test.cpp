// Local object store tests: versioning, temporal reads, WAL persistence and
// crash recovery (including corrupted-tail truncation).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "store/local_store.hpp"

namespace stab::store {
namespace {

std::string temp_wal(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("stab_store_test_" + tag + "_" + std::to_string(::getpid()) +
           ".wal"))
      .string();
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(LocalStore, PutGetVersions) {
  LocalStore s;
  EXPECT_EQ(s.put("k", to_bytes("v1")), 1u);
  EXPECT_EQ(s.put("k", to_bytes("v2")), 2u);
  EXPECT_EQ(s.put("other", to_bytes("x")), 1u);  // versions are per key

  auto latest = s.get("k");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2u);
  EXPECT_EQ(to_string(latest->value), "v2");

  auto v1 = s.get_version("k", 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(to_string(v1->value), "v1");
  EXPECT_FALSE(s.get_version("k", 9).has_value());
  EXPECT_FALSE(s.get("missing").has_value());
}

TEST(LocalStore, GetByTime) {
  LocalStore s;
  s.put("k", to_bytes("at10"), millis(10));
  s.put("k", to_bytes("at20"), millis(20));
  s.put("k", to_bytes("at30"), millis(30));

  EXPECT_FALSE(s.get_by_time("k", millis(5)).has_value());
  EXPECT_EQ(to_string(s.get_by_time("k", millis(10))->value), "at10");
  EXPECT_EQ(to_string(s.get_by_time("k", millis(25))->value), "at20");
  EXPECT_EQ(to_string(s.get_by_time("k", millis(99))->value), "at30");
}

TEST(LocalStore, EraseAndAccounting) {
  LocalStore s;
  s.put("a", to_bytes("12345"));
  s.put("a", to_bytes("678"));
  s.put("b", to_bytes("yy"));
  EXPECT_EQ(s.total_value_bytes(), 10u);
  EXPECT_EQ(s.num_keys(), 2u);
  EXPECT_TRUE(s.erase("a"));
  EXPECT_FALSE(s.erase("a"));
  EXPECT_EQ(s.total_value_bytes(), 2u);
  EXPECT_FALSE(s.contains("a"));
  EXPECT_EQ(s.keys(), (std::vector<std::string>{"b"}));
}

TEST(LocalStore, PutAtVersionEnforcesMonotonicity) {
  LocalStore s;
  s.put_at_version("k", to_bytes("v5"), kTimeZero, 5);
  EXPECT_THROW(s.put_at_version("k", to_bytes("v5"), kTimeZero, 5),
               std::logic_error);
  EXPECT_THROW(s.put_at_version("k", to_bytes("v4"), kTimeZero, 4),
               std::logic_error);
  s.put_at_version("k", to_bytes("v9"), kTimeZero, 9);
  EXPECT_EQ(s.get("k")->version, 9u);
}

TEST(LocalStore, WalRecovery) {
  std::string path = temp_wal("recovery");
  std::remove(path.c_str());
  {
    LocalStore s(path);
    s.put("k1", to_bytes("hello"), millis(7));
    s.put("k1", to_bytes("world"), millis(9));
    s.put("k2", to_bytes("zzz"));
    s.erase("k2");
    EXPECT_EQ(s.wal_records_written(), 4u);
  }
  auto recovered = LocalStore::recover(path);
  ASSERT_TRUE(recovered.is_ok()) << recovered.message();
  LocalStore& s = recovered.value();
  EXPECT_EQ(s.num_keys(), 1u);
  auto v = s.get("k1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 2u);
  EXPECT_EQ(to_string(v->value), "world");
  EXPECT_EQ(v->timestamp, millis(9));
  EXPECT_FALSE(s.contains("k2"));
  // The recovered store keeps logging.
  s.put("k3", to_bytes("new"));
  auto again = LocalStore::recover(path);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again.value().contains("k3"));
  std::remove(path.c_str());
}

TEST(LocalStore, RecoveryTruncatesCorruptedTail) {
  std::string path = temp_wal("corrupt");
  std::remove(path.c_str());
  {
    LocalStore s(path);
    s.put("good", to_bytes("data"));
    s.put("partial", to_bytes("will-be-corrupted"));
  }
  // Corrupt the last few bytes (the CRC of the final record).
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -2, SEEK_END);
    uint8_t junk = 0xFF;
    std::fwrite(&junk, 1, 1, f);
    std::fclose(f);
  }
  auto recovered = LocalStore::recover(path);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_TRUE(recovered.value().contains("good"));
  EXPECT_FALSE(recovered.value().contains("partial"));
  std::remove(path.c_str());
}

TEST(LocalStore, CompactionShrinksWalAndPreservesState) {
  std::string path = temp_wal("compact_shrink");
  std::remove(path.c_str());
  {
    LocalStore s(path);
    for (int i = 0; i < 50; ++i)
      s.put("hot", to_bytes("value-" + std::to_string(i)), millis(i));
    s.put("gone", to_bytes("x"));
    s.erase("gone");
    uintmax_t before = std::filesystem::file_size(path);
    ASSERT_TRUE(s.compact());
    uintmax_t after = std::filesystem::file_size(path);
    EXPECT_LT(after, before);  // overwrite history + erased key dropped?
    // No: compaction keeps all retained versions of "hot"; the shrink comes
    // from dropping "gone"'s put+erase pair — still strictly smaller.
    // Logging continues after compaction.
    s.put("post", to_bytes("y"));
  }
  auto recovered = LocalStore::recover(path);
  ASSERT_TRUE(recovered.is_ok()) << recovered.message();
  LocalStore& s = recovered.value();
  EXPECT_FALSE(s.contains("gone"));
  EXPECT_TRUE(s.contains("post"));
  auto hot = s.get("hot");
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->version, 50u);
  EXPECT_EQ(to_string(hot->value), "value-49");
  // Historic versions survive compaction (temporal reads still work).
  EXPECT_EQ(to_string(s.get_by_time("hot", millis(10))->value), "value-10");
  std::remove(path.c_str());
}

TEST(LocalStore, CompactInMemoryIsNoop) {
  LocalStore s;
  s.put("k", to_bytes("v"));
  EXPECT_TRUE(s.compact());
  EXPECT_TRUE(s.contains("k"));
}

TEST(LocalStore, RecoveryFromMissingFileIsEmpty) {
  std::string path = temp_wal("missing");
  std::remove(path.c_str());
  auto recovered = LocalStore::recover(path);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value().num_keys(), 0u);
  std::remove(path.c_str());
}

TEST(LocalStore, LargeValuesRoundTrip) {
  LocalStore s;
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  s.put("big", big);
  EXPECT_EQ(s.get("big")->value, big);
}

TEST(LocalStore, MoveTransfersWalOwnership) {
  std::string path = temp_wal("move");
  std::remove(path.c_str());
  LocalStore a(path);
  a.put("k", to_bytes("v"));
  LocalStore b = std::move(a);
  b.put("k2", to_bytes("v2"));
  auto recovered = LocalStore::recover(path);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value().num_keys(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stab::store
