// Primary-failover campaigns: leased failure detection, Paxos-coordinated
// mirror promotion, and epoch fencing (DESIGN.md §6) under seed-replayable
// chaos.
//
// The FailoverCluster harness (modeled on chaos_test's ChaosCluster) runs a
// full mesh with one FailoverManager per node guarding stream 0, and checks
// the invariants from the failover acceptance list:
//   * exactly one node promotes per epoch, and every live node agrees on
//     (stream_primary, stream_epoch) after the dust settles;
//   * no SeqNum is duplicated or skipped across the epoch boundary — the
//     union of live delivery logs is exactly 0..acting_last_sent, and each
//     individual log is strictly increasing;
//   * stability frontiers stay monotone through the takeover cursor jump;
//   * every waitfor parked before the kill completes (covered) or fails
//     with a sentinel (kNoSeq / kFencedSeq) — never silently hung;
//   * the zombie ex-primary's stale-epoch frames are fenced (dropped and
//     counted), and the zombie itself self-fences on hearing TAKEOVER;
//   * whole campaigns are deterministic per seed.
//
// A failing lossy campaign prints "FAILOVER REPLAY SEED: <seed>"; replay
// with STAB_FAILOVER_SEEDS=<seed> ./failover_test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/stabilizer.hpp"
#include "failover/failover.hpp"
#include "net/sim_transport.hpp"
#include "sim/chaos.hpp"

namespace stab {
namespace {

using failover::FailoverManager;
using failover::FailoverOptions;
using sim::ChaosScript;

Topology failover_mesh(size_t n, double lat_ms = 5) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i), "r" + std::to_string(i % 2));
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  s.bandwidth_bps = mbps(100);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

StabilizerOptions failover_base_options() {
  StabilizerOptions o;
  o.ack_interval = millis(2);
  o.retransmit_timeout = millis(150);  // lossy links + post-takeover heal
  o.broadcast_acks = true;
  return o;
}

FailoverOptions guard_options() {
  FailoverOptions fo;
  fo.stream = 0;
  fo.lease_interval = millis(100);
  fo.lease_timeout = millis(500);
  fo.suspect_gather = millis(50);
  fo.reconcile_timeout = millis(200);
  fo.paxos_retry = millis(100);
  return fo;
}

/// A waitfor parked before the fault, and what became of it.
struct ParkedWait {
  NodeId node = kInvalidNode;
  SeqNum target = kNoSeq;
  bool fired = false;
  SeqNum result = kNoSeq;
};

struct FailoverCluster {
  FailoverCluster(size_t n, uint64_t seed,
                  StabilizerOptions base = failover_base_options(),
                  FailoverOptions guard = guard_options())
      : topo_(failover_mesh(n)), base_(std::move(base)), guard_(guard) {
    cluster = std::make_unique<SimCluster>(topo_, sim);
    cluster->network().set_drop_rng_seed(seed);
    chaos = std::make_unique<sim::ChaosSchedule>(sim, cluster->network());
    // kill_primary semantics: fail-stop, no restart handler registered.
    chaos->set_crash_handler([this](NodeId node) { kill(node); });

    logs.assign(n, std::vector<std::vector<SeqNum>>(n));
    cursors.assign(n, std::vector<std::map<std::string, SeqNum>>(n));
    nodes.resize(n);
    managers.resize(n);
    for (NodeId id = 0; id < n; ++id) boot(id);
  }

  ~FailoverCluster() {
    // Managers reference their Stabilizer; drop them first.
    for (auto& m : managers) m.reset();
  }

  Stabilizer& node(NodeId id) { return *nodes.at(id); }
  FailoverManager& manager(NodeId id) { return *managers.at(id); }
  size_t num_nodes() const { return topo_.num_nodes(); }
  bool alive(NodeId id) const { return nodes[id] != nullptr; }

  void boot(NodeId id) {
    StabilizerOptions opts = base_;
    opts.topology = topo_;
    opts.self = id;
    nodes[id] = std::make_unique<Stabilizer>(opts, cluster->transport(id));
    Stabilizer& n = *nodes[id];
    n.set_delivery_handler(
        [this, id](NodeId origin, SeqNum seq, BytesView, uint64_t) {
          logs[id][origin].push_back(seq);
        });
    for (const auto& [key, source] : predicates_)
      ASSERT_TRUE(n.register_predicate(key, source).is_ok()) << key;
    for (NodeId origin = 0; origin < topo_.num_nodes(); ++origin)
      for (const auto& [key, source] : predicates_)
        ASSERT_TRUE(n.monitor_stability_frontier(
                         key,
                         [this, id, origin, key = key](SeqNum frontier,
                                                       BytesView) {
                           auto [it, fresh] =
                               cursors[id][origin].try_emplace(key, kNoSeq);
                           EXPECT_GT(frontier, it->second)
                               << "frontier regressed: node " << id
                               << " origin " << origin << " key " << key;
                           it->second = frontier;
                           (void)fresh;
                         },
                         origin)
                        .is_ok());
    managers[id] = std::make_unique<FailoverManager>(guard_, n);
    managers[id]->start();
  }

  /// Fail-stop: the process dies with all volatile state and never comes
  /// back (contrast chaos_test's crash/restart, which snapshots + reboots).
  void kill(NodeId id) {
    managers[id].reset();
    nodes[id].reset();
    cluster->transport(id).detach();
  }

  /// Drive the guarded stream: while the configured origin is alive it
  /// sends; after a kill, whichever node promoted continues the stream via
  /// send_as. The gap between the two is the unavailability window.
  void start_stream_traffic(NodeId stream, Duration interval,
                            TimePoint until) {
    schedule_stream_send(stream, interval, until);
  }

  /// Background load on a node's own stream (piggybacked lease signal).
  void start_own_traffic(NodeId id, Duration interval, TimePoint until) {
    sim.schedule_after(interval, [this, id, interval, until] {
      if (sim.now() > until) return;
      if (nodes[id]) nodes[id]->send(to_bytes("own"));
      start_own_traffic(id, interval, until);
    });
  }

  /// Park an async waitfor on `key` for stream `origin` and record its fate.
  /// (waitfor_blocking would deadlock the sim's single thread.)
  size_t park_wait(NodeId id, NodeId origin, const std::string& key,
                   SeqNum target) {
    waits.push_back(ParkedWait{id, target, false, kNoSeq});
    size_t idx = waits.size() - 1;
    EXPECT_TRUE(nodes[id]
                    ->waitfor(
                        target, key,
                        [this, idx](SeqNum frontier) {
                          waits[idx].fired = true;
                          waits[idx].result = frontier;
                        },
                        origin)
                    .is_ok());
    return idx;
  }

  /// §III-E reaction once the fleet learns node `dead` is gone: raise every
  /// MIN frontier over it (monotone-safe — a MIN over fewer nodes can only
  /// be >= the MIN over all of them). DSL node refs are 1-based.
  void adjust_predicates_for_dead(NodeId dead) {
    const std::string source =
        "MIN($ALLWNODES-$" + std::to_string(dead + 1) + ")";
    for (NodeId id = 0; id < topo_.num_nodes(); ++id) {
      if (!nodes[id]) continue;
      Status st = nodes[id]->change_predicate("all", source);
      EXPECT_TRUE(st.is_ok()) << st.message();
    }
  }

  /// The post-campaign invariant checker for a kill of `stream`'s primary.
  void check_failover_converged(NodeId stream) {
    const size_t n = topo_.num_nodes();
    // Exactly one live node promoted and acts as the stream's primary.
    NodeId winner = kInvalidNode;
    for (NodeId id = 0; id < n; ++id) {
      if (!nodes[id]) continue;
      if (managers[id]->promoted() || nodes[id]->is_acting_primary(stream)) {
        EXPECT_EQ(winner, kInvalidNode)
            << "two promoted primaries: " << winner << " and " << id;
        winner = id;
        EXPECT_TRUE(managers[id]->promoted());
        EXPECT_TRUE(nodes[id]->is_acting_primary(stream));
        EXPECT_EQ(managers[id]->stats().promotions_won, 1u);
      }
    }
    ASSERT_NE(winner, kInvalidNode) << "no node promoted";

    // Fleet agreement on the new regime.
    for (NodeId id = 0; id < n; ++id) {
      if (!nodes[id]) continue;
      EXPECT_EQ(nodes[id]->stream_primary(stream), winner) << "node " << id;
      EXPECT_EQ(nodes[id]->stream_epoch(stream), 1u) << "node " << id;
      EXPECT_GE(managers[id]->stats().takeovers_applied, 1u) << "node " << id;
    }

    // No SeqNum duplicated or skipped across the epoch boundary: every live
    // log is strictly increasing, and the union of live logs is exactly
    // 0..acting_last_sent (the winner holds the pre-kill prefix it measured;
    // mirrors hold the post-takeover suffix — together they cover the whole
    // stream with no hole and no overlap within any one log).
    const SeqNum last = nodes[winner]->acting_last_sent(stream);
    ASSERT_GE(last, 0);
    std::set<SeqNum> seen;
    for (NodeId id = 0; id < n; ++id) {
      if (!nodes[id]) continue;
      const auto& log = logs[id][stream];
      for (size_t i = 1; i < log.size(); ++i)
        ASSERT_LT(log[i - 1], log[i])
            << "duplicate/reordered seq at node " << id;
      seen.insert(log.begin(), log.end());
    }
    // The winner's own issuance is part of the stream even though it never
    // self-delivers.
    for (SeqNum s = nodes[winner]->delivered_through(stream) + 1; s <= last;
         ++s)
      seen.insert(s);
    for (SeqNum s = 0; s <= last; ++s)
      ASSERT_TRUE(seen.count(s)) << "seq " << s << " skipped across epoch";

    // Every surviving mirror converged on the winner's stream end.
    for (NodeId id = 0; id < n; ++id) {
      if (!nodes[id] || id == winner) continue;
      EXPECT_EQ(nodes[id]->delivered_through(stream), last) << "node " << id;
      EXPECT_EQ(logs[id][stream].back(), last) << "node " << id;
    }
  }

  /// Every parked waitfor resolved — covered or failed with a sentinel —
  /// and no waiter is still parked anywhere (never silently hung).
  void check_waits_resolved() {
    for (size_t i = 0; i < waits.size(); ++i) {
      const ParkedWait& w = waits[i];
      EXPECT_TRUE(w.fired) << "wait " << i << " on node " << w.node
                           << " (target " << w.target << ") still parked";
      if (w.fired) {
        EXPECT_TRUE(w.result >= w.target || w.result == kNoSeq ||
                    w.result == kFencedSeq)
            << "wait " << i << " fired with non-sentinel frontier "
            << w.result << " below target " << w.target;
      }
    }
    for (NodeId id = 0; id < topo_.num_nodes(); ++id) {
      if (!nodes[id]) continue;
      for (NodeId origin = 0; origin < topo_.num_nodes(); ++origin)
        EXPECT_EQ(nodes[id]->engine(origin).pending_waiters(), 0u)
            << "node " << id << " origin " << origin;
    }
  }

  /// Campaign fingerprint for determinism checks: logs, regimes, frontiers.
  std::string digest() const {
    std::ostringstream out;
    for (NodeId id = 0; id < topo_.num_nodes(); ++id) {
      out << "n" << id << (nodes[id] ? ":up" : ":down");
      if (!nodes[id]) {
        out << ";";
        continue;
      }
      out << " e" << nodes[id]->stream_epoch(0) << " p"
          << nodes[id]->stream_primary(0);
      for (NodeId origin = 0; origin < topo_.num_nodes(); ++origin) {
        const auto& log = logs[id][origin];
        out << " [" << origin << "]" << log.size() << "@"
            << (log.empty() ? kNoSeq : log.back());
      }
      out << ";";
    }
    for (size_t i = 0; i < waits.size(); ++i)
      out << " w" << i << "=" << (waits[i].fired ? waits[i].result : -99);
    return out.str();
  }

  void schedule_stream_send(NodeId stream, Duration interval,
                            TimePoint until) {
    sim.schedule_after(interval, [this, stream, interval, until] {
      if (sim.now() > until) return;
      if (nodes[stream]) {
        nodes[stream]->send(to_bytes("load"));
      } else {
        for (NodeId id = 0; id < topo_.num_nodes(); ++id)
          if (nodes[id] && managers[id]->promoted())
            nodes[id]->send_as(stream, to_bytes("load"));
      }
      schedule_stream_send(stream, interval, until);
    });
  }

  Topology topo_;
  StabilizerOptions base_;
  FailoverOptions guard_;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::unique_ptr<sim::ChaosSchedule> chaos;
  std::vector<std::unique_ptr<Stabilizer>> nodes;
  std::vector<std::unique_ptr<FailoverManager>> managers;
  std::vector<std::vector<std::vector<SeqNum>>> logs;  // [node][origin]
  std::vector<std::vector<std::map<std::string, SeqNum>>> cursors;
  std::vector<ParkedWait> waits;
  std::vector<std::pair<std::string, std::string>> predicates_ = {
      {"all", "MIN($ALLWNODES)"}, {"one", "MAX($ALLWNODES-$MYWNODE)"}};
};

// --- the scripted kill_primary campaign --------------------------------------

/// Kill the primary of stream 0 mid-load at t=2s; a mirror must detect,
/// win the ballot, reconcile, and continue the stream under epoch 1.
void run_kill_primary_campaign(FailoverCluster& c, double loss = 0.0) {
  const NodeId primary = 0;
  ChaosScript script;
  if (loss > 0)
    sim::add_loss_burst(script, kTimeZero, seconds(20), loss, loss);
  sim::add_kill(script, seconds(2), primary);
  sim::finalize_script(script);
  c.chaos->arm(script);

  c.start_stream_traffic(primary, millis(10), seconds(8));
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    c.start_own_traffic(id, millis(50), seconds(8));

  // Park waiters on the guarded stream before the kill, at targets the
  // post-takeover traffic will cover once the §III-E adjust lands.
  c.sim.schedule_at(from_sec(1.5), [&c] {
    for (NodeId id = 1; id < c.num_nodes(); ++id)
      c.park_wait(id, 0, "all", c.node(id).delivered_through(0) + 80);
  });
  // The dead primary's own frontier cell wedges every MIN($ALLWNODES)
  // predicate; the surviving fleet adjusts them out (paper §III-E).
  c.sim.schedule_at(from_sec(5), [&c] { c.adjust_predicates_for_dead(0); });

  c.sim.run_until(seconds(14));
}

TEST(Failover, KillPrimaryPromotesExactlyOneMirrorAndContinuesStream) {
  FailoverCluster c(4, /*seed=*/0xF01D);
  run_kill_primary_campaign(c);

  c.check_failover_converged(0);
  c.check_waits_resolved();
  // The pre-kill waiters were all coverable; after the predicate adjust
  // and the winner's resumed traffic they must have completed (not failed).
  for (const ParkedWait& w : c.waits) EXPECT_GE(w.result, w.target);

  // Detection/election/promotion actually ran via the protocol.
  uint64_t suspicions = 0;
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    suspicions += c.manager(id).stats().suspicions;
  EXPECT_GE(suspicions, 1u);
  NodeId winner = kInvalidNode;
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    if (c.manager(id).promoted()) winner = id;
  ASSERT_NE(winner, kInvalidNode);
  EXPECT_GE(c.manager(winner).stats().elections_proposed, 1u);
  EXPECT_GE(c.manager(winner).stats().rec_replies_received, 1u);
  EXPECT_NE(c.manager(winner).stats().suspected_at, TimePoint{});
  EXPECT_NE(c.manager(winner).stats().promoted_at, TimePoint{});
  EXPECT_GT(c.manager(winner).stats().promoted_at,
            c.manager(winner).stats().suspected_at);

#if STAB_OBS_ENABLED
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    EXPECT_GE(c.node(id).stats().takeovers_observed, 1u) << "node " << id;
#endif
}

TEST(Failover, KillPrimaryCampaignIsDeterministicPerSeed) {
  std::string digests[2];
  for (int run = 0; run < 2; ++run) {
    FailoverCluster c(4, /*seed=*/0xD15C);
    run_kill_primary_campaign(c, /*loss=*/0.02);
    c.check_failover_converged(0);
    digests[run] = c.digest();
  }
  EXPECT_EQ(digests[0], digests[1]);

  FailoverCluster other(4, /*seed=*/0xD15D);
  run_kill_primary_campaign(other, /*loss=*/0.02);
  EXPECT_NE(digests[0], other.digest());
}

// --- lossy sweep: seed-replayable property campaign --------------------------

void run_lossy_campaign(uint64_t seed) {
  SCOPED_TRACE("failover seed " + std::to_string(seed));
  FailoverCluster c(4, seed);
  run_kill_primary_campaign(c, /*loss=*/0.05);
  c.check_failover_converged(0);
  c.check_waits_resolved();
}

TEST(FailoverProperty, LossyKillCampaignsHoldInvariants) {
  std::vector<uint64_t> seeds = {3, 17, 29};
  if (const char* env = std::getenv("STAB_FAILOVER_SEEDS")) {
    seeds.clear();
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
  }
  for (uint64_t seed : seeds) {
    run_lossy_campaign(seed);
    if (::testing::Test::HasFailure()) {
      // The marker scripts/ci.sh greps for; replay with
      //   STAB_FAILOVER_SEEDS=<seed> ./failover_test
      std::cerr << "FAILOVER REPLAY SEED: " << seed << std::endl;
      return;
    }
  }
}

// --- zombie fencing ----------------------------------------------------------

/// Partition (don't kill) the primary: the isolated ex-primary keeps
/// sequencing under epoch 0 while the majority side promotes a successor.
/// When the partition heals, the zombie's stale frames must be fenced at
/// every receiver, and the zombie itself must self-fence on TAKEOVER.
TEST(Failover, HealedZombiePrimaryIsFencedAndSelfFences) {
  FailoverCluster c(4, /*seed=*/0x20B1E);
  ChaosScript script;
  sim::add_partition(script, seconds(2), seconds(4), {{0}, {1, 2, 3}});
  sim::finalize_script(script);
  c.chaos->arm(script);

  // The zombie keeps sending into the partition — these seqs exist only in
  // the old epoch's sequence space and must never surface after the heal.
  c.start_stream_traffic(0, millis(10), seconds(7));
  c.sim.schedule_at(from_sec(5), [&c] { c.adjust_predicates_for_dead(0); });

  // A waitfor parked on the zombie's OWN stream at an unreachable target:
  // fencing must fail it with kFencedSeq rather than leave it hung.
  size_t own_wait = 0;
  c.sim.schedule_at(from_sec(1.5), [&c, &own_wait] {
    own_wait = c.park_wait(0, 0, "all", c.node(0).last_sent() + 100000);
  });

  c.sim.run_until(seconds(16));

  // Majority side elected a successor under epoch 1.
  NodeId winner = kInvalidNode;
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    if (c.manager(id).promoted()) {
      EXPECT_EQ(winner, kInvalidNode);
      winner = id;
    }
  ASSERT_NE(winner, kInvalidNode);

  // The healed zombie learned the takeover and fenced itself: it agrees on
  // the new regime, send() refuses, and its own-stream waiter was failed.
  EXPECT_TRUE(c.node(0).self_fenced());
  EXPECT_EQ(c.node(0).stream_primary(0), winner);
  EXPECT_EQ(c.node(0).stream_epoch(0), 1u);
  EXPECT_EQ(c.node(0).send(to_bytes("zombie")), kFencedSeq);
  EXPECT_TRUE(c.waits[own_wait].fired);
  EXPECT_EQ(c.waits[own_wait].result, kFencedSeq);
  // A waitfor issued AFTER the fence fails fast with the same sentinel.
  bool late_fired = false;
  SeqNum late_result = kNoSeq;
  ASSERT_TRUE(c.node(0)
                  .waitfor(c.node(0).last_sent() + 1, "all",
                           [&](SeqNum f) {
                             late_fired = true;
                             late_result = f;
                           })
                  .is_ok());
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(late_result, kFencedSeq);

#if STAB_OBS_ENABLED
  // The zombie's post-heal retransmissions carried epoch 0 and were
  // dropped + counted at the survivors.
  uint64_t fenced = 0;
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    fenced += c.node(id).stats().fenced_frames;
  EXPECT_GT(fenced, 0u);
  EXPECT_GE(c.node(0).stats().waiters_fenced, 1u);
#endif

  // Survivors converged on the winner's stream end; none of the zombie's
  // partition-era seqs leaked in (logs are duplicate-free and agree).
  const SeqNum last = c.node(winner).acting_last_sent(0);
  for (NodeId id = 1; id < c.num_nodes(); ++id) {
    if (id == winner) continue;
    EXPECT_EQ(c.node(id).delivered_through(0), last) << "node " << id;
    const auto& log = c.logs[id][0];
    for (size_t i = 1; i < log.size(); ++i)
      ASSERT_LT(log[i - 1], log[i]) << "duplicate seq at node " << id;
  }
}

// --- §III-E: dead NON-primary node, predicate-adjust instead of wedging ------

/// Killing a mirror must not trigger failover of stream 0, but predicates
/// whose MIN ranges over the dead node wedge; the §III-E reaction
/// (remove_predicate) fails their parked waiters with kNoSeq rather than
/// leaving them hung forever.
TEST(Failover, DeadMirrorWaitersFailViaPredicateAdjustNotWedge) {
  FailoverCluster c(4, /*seed=*/0xDEAD2);
  const NodeId victim = 2;
  ChaosScript script;
  sim::add_kill(script, seconds(2), victim);
  sim::finalize_script(script);
  c.chaos->arm(script);

  c.start_stream_traffic(0, millis(10), seconds(8));
  for (NodeId id = 1; id < c.num_nodes(); ++id)
    c.start_own_traffic(id, millis(50), seconds(8));

  // Parked before the kill at targets beyond the victim's final ack: once
  // node 2 is dead, MIN($ALLWNODES) can never reach them.
  std::vector<size_t> wedged;
  c.sim.schedule_at(from_sec(1.5), [&c, &wedged] {
    for (NodeId id : {NodeId(1), NodeId(3)})
      wedged.push_back(
          c.park_wait(id, 0, "all", c.node(id).delivered_through(0) + 2000));
  });

  // §III-E: the survivors discover "all" references the dead node and
  // remove it, failing the unsatisfiable waiters with kNoSeq.
  c.sim.schedule_at(from_sec(5), [&c, victim] {
    for (NodeId id : {NodeId(0), NodeId(1), NodeId(3)}) {
      auto keys = c.node(id).predicates_referencing(victim);
      EXPECT_FALSE(keys.empty()) << "node " << id;
      bool has_all = false;
      for (const auto& k : keys) has_all |= (k == "all");
      EXPECT_TRUE(has_all) << "node " << id;
      EXPECT_TRUE(c.node(id).remove_predicate("all").is_ok());
    }
  });

  c.sim.run_until(seconds(12));

  // No failover happened: stream 0's primary is untouched, epoch still 0.
  for (NodeId id : {NodeId(0), NodeId(1), NodeId(3)}) {
    EXPECT_EQ(c.node(id).stream_primary(0), 0u) << "node " << id;
    EXPECT_EQ(c.node(id).stream_epoch(0), 0u) << "node " << id;
    EXPECT_FALSE(c.manager(id).promoted()) << "node " << id;
  }

  // The wedged waiters were failed with kNoSeq — not left parked.
  for (size_t idx : wedged) {
    EXPECT_TRUE(c.waits[idx].fired) << "wait " << idx << " still parked";
    EXPECT_EQ(c.waits[idx].result, kNoSeq) << "wait " << idx;
  }
  c.check_waits_resolved();
}

}  // namespace
}  // namespace stab
