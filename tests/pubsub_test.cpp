// Pub/sub broker tests (§V-B): publish/subscribe, active-broker tracking,
// dynamic predicate reconfiguration (§VI-D), and reliable-broadcast
// frontiers.
#include <gtest/gtest.h>

#include <memory>

#include "net/sim_transport.hpp"
#include "pubsub/broker.hpp"

namespace stab::pubsub {
namespace {

struct PubSubFixture {
  explicit PubSubFixture(Topology topo) : topo_(std::move(topo)) {
    cluster = std::make_unique<SimCluster>(topo_, sim);
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      StabilizerOptions opts;
      opts.topology = topo_;
      opts.self = n;
      stabs.push_back(
          std::make_unique<Stabilizer>(opts, cluster->transport(n)));
      brokers.push_back(std::make_unique<Broker>(*stabs.back()));
    }
  }
  Broker& broker(NodeId n) { return *brokers.at(n); }

  Topology topo_;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<Stabilizer>> stabs;
  std::vector<std::unique_ptr<Broker>> brokers;
};

Topology mesh(size_t n, double lat_ms) {
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_node("b" + std::to_string(i), "az");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

TEST(PubSub, DeliversToRemoteSubscribers) {
  PubSubFixture f(mesh(3, 5));
  std::vector<std::string> got1, got2;
  f.broker(1).subscribe([&](NodeId origin, SeqNum, BytesView m) {
    EXPECT_EQ(origin, 0u);
    got1.push_back(to_string(m));
  });
  f.broker(2).subscribe(
      [&](NodeId, SeqNum, BytesView m) { got2.push_back(to_string(m)); });
  f.sim.run();  // propagate SUB announcements

  f.broker(0).publish(to_bytes("hello"));
  f.broker(0).publish(to_bytes("world"));
  f.sim.run();
  EXPECT_EQ(got1, (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(got2, got1);
  EXPECT_EQ(f.broker(1).delivered_to_subscribers(), 2u);
}

TEST(PubSub, LocalSubscribersGetSynchronousDelivery) {
  PubSubFixture f(mesh(2, 50));
  std::vector<std::string> got;
  f.broker(0).subscribe(
      [&](NodeId, SeqNum, BytesView m) { got.push_back(to_string(m)); });
  f.broker(0).publish(to_bytes("local"));
  // No sim.run() needed: local delivery happens inside publish().
  EXPECT_EQ(got, (std::vector<std::string>{"local"}));
}

TEST(PubSub, SubscriptionTransitionsAnnounce) {
  PubSubFixture f(mesh(3, 1));
  uint64_t id1 = f.broker(1).subscribe([](NodeId, SeqNum, BytesView) {});
  uint64_t id2 = f.broker(1).subscribe([](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  // Publisher site 0 sees site 1 active.
  EXPECT_TRUE(f.broker(0).active_sites().count(1));
  EXPECT_EQ(f.broker(1).local_subscribers(), 2u);

  f.broker(1).unsubscribe(id1);
  f.sim.run();
  EXPECT_TRUE(f.broker(0).active_sites().count(1));  // still one subscriber

  f.broker(1).unsubscribe(id2);
  f.sim.run();
  EXPECT_FALSE(f.broker(0).active_sites().count(1));
}

TEST(PubSub, PredicateTracksActiveSites) {
  PubSubFixture f(mesh(4, 1));
  EXPECT_EQ(f.broker(0).current_predicate_source(), "MIN($MYWNODE)");
  f.broker(2).subscribe([](NodeId, SeqNum, BytesView) {});
  f.broker(3).subscribe([](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  EXPECT_EQ(f.broker(0).current_predicate_source(), "MIN($3,$4)");
  // Publisher's own subscribers don't add itself to its remote list.
  f.broker(0).subscribe([](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  EXPECT_EQ(f.broker(0).current_predicate_source(), "MIN($3,$4)");
}

TEST(PubSub, ReliableFrontierCoversActiveSitesOnly) {
  PubSubFixture f(mesh(3, 10));
  f.broker(1).subscribe([](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  // Site 2 has no subscribers: its (lack of) acks must not hold back the
  // reliable frontier.
  f.cluster->network().set_node_up(2, false);
  SeqNum seq = f.broker(0).publish(to_bytes("m"));
  TimePoint reliable_at = kTimeZero;
  ASSERT_TRUE(f.broker(0).wait_reliable(seq, [&](SeqNum) {
    reliable_at = f.sim.now();
  }));
  f.sim.run();
  EXPECT_GT(reliable_at, kTimeZero);
  EXPECT_EQ(f.broker(0).reliable_frontier(), seq);
}

TEST(PubSub, DynamicReconfigurationLowersLatency) {
  // The §VI-D mechanism: while the slow site subscribes, reliability waits
  // for it; after it unsubscribes, the frontier advances at fast-site speed.
  Topology topo = mesh(3, 1);
  LinkSpec slow;
  slow.latency = from_ms(40);
  topo.set_link_bidir(0, 2, slow);  // site 2 is slow
  PubSubFixture f(topo);

  f.broker(1).subscribe([](NodeId, SeqNum, BytesView) {});
  uint64_t slow_sub = f.broker(2).subscribe([](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  EXPECT_EQ(f.broker(0).current_predicate_source(), "MIN($2,$3)");

  TimePoint t0 = f.sim.now();
  SeqNum s1 = f.broker(0).publish(to_bytes("with-slow"));
  TimePoint with_slow = kTimeZero;
  f.broker(0).wait_reliable(s1, [&](SeqNum) { with_slow = f.sim.now(); });
  f.sim.run();
  double lat_with = to_ms(with_slow - t0);
  EXPECT_GE(lat_with, 80.0);  // bounded by the 40ms one-way slow site

  f.broker(2).unsubscribe(slow_sub);
  f.sim.run();
  EXPECT_EQ(f.broker(0).current_predicate_source(), "MIN($2)");

  TimePoint t1 = f.sim.now();
  SeqNum s2 = f.broker(0).publish(to_bytes("without-slow"));
  TimePoint without_slow = kTimeZero;
  f.broker(0).wait_reliable(s2, [&](SeqNum) { without_slow = f.sim.now(); });
  f.sim.run();
  double lat_without = to_ms(without_slow - t1);
  EXPECT_LT(lat_without, 10.0);  // now bounded by the 1ms fast site
  EXPECT_LT(lat_without, lat_with / 4);
}

// --- multiple topics (paper §V-B's named extension) --------------------------

TEST(PubSubTopics, TopicsIsolateTraffic) {
  PubSubFixture f(mesh(3, 2));
  std::vector<std::string> sports, news;
  f.broker(1).subscribe("sports", [&](NodeId, SeqNum, BytesView m) {
    sports.push_back(to_string(m));
  });
  f.broker(2).subscribe("news", [&](NodeId, SeqNum, BytesView m) {
    news.push_back(to_string(m));
  });
  f.sim.run();

  f.broker(0).publish("sports", to_bytes("goal!"));
  f.broker(0).publish("news", to_bytes("headline"));
  f.broker(0).publish("weather", to_bytes("sunny"));  // nobody subscribed
  f.sim.run();
  EXPECT_EQ(sports, (std::vector<std::string>{"goal!"}));
  EXPECT_EQ(news, (std::vector<std::string>{"headline"}));
}

TEST(PubSubTopics, PerTopicActiveSitesAndPredicates) {
  PubSubFixture f(mesh(4, 2));
  f.broker(1).subscribe("a", [](NodeId, SeqNum, BytesView) {});
  f.broker(2).subscribe("b", [](NodeId, SeqNum, BytesView) {});
  f.broker(3).subscribe("b", [](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  EXPECT_EQ(f.broker(0).current_predicate_source("a"), "MIN($2)");
  EXPECT_EQ(f.broker(0).current_predicate_source("b"), "MIN($3,$4)");
  EXPECT_TRUE(f.broker(0).active_sites("a").count(1));
  EXPECT_FALSE(f.broker(0).active_sites("a").count(2));
  auto topics = f.broker(0).topics();
  EXPECT_GE(topics.size(), 3u);  // "", "a", "b"
}

TEST(PubSubTopics, PerTopicReliability) {
  Topology topo = mesh(3, 1);
  LinkSpec slow;
  slow.latency = from_ms(40);
  topo.set_link_bidir(0, 2, slow);
  PubSubFixture f(topo);
  f.broker(1).subscribe("fast_topic", [](NodeId, SeqNum, BytesView) {});
  f.broker(2).subscribe("slow_topic", [](NodeId, SeqNum, BytesView) {});
  f.sim.run();

  TimePoint t0 = f.sim.now();
  SeqNum s1 = f.broker(0).publish("fast_topic", to_bytes("x"));
  SeqNum s2 = f.broker(0).publish("slow_topic", to_bytes("y"));
  TimePoint fast_at = kTimeZero, slow_at = kTimeZero;
  f.broker(0).wait_reliable(s1, [&](SeqNum) { fast_at = f.sim.now(); },
                            "fast_topic");
  f.broker(0).wait_reliable(s2, [&](SeqNum) { slow_at = f.sim.now(); },
                            "slow_topic");
  f.sim.run();
  EXPECT_LT(to_ms(fast_at - t0), 10.0);   // only site 1's ack needed
  EXPECT_GT(to_ms(slow_at - t0), 75.0);   // gated by the 40 ms site
}

TEST(PubSubTopics, UnsubscribeIsPerTopic) {
  PubSubFixture f(mesh(2, 1));
  uint64_t a = f.broker(1).subscribe("a", [](NodeId, SeqNum, BytesView) {});
  f.broker(1).subscribe("b", [](NodeId, SeqNum, BytesView) {});
  f.sim.run();
  f.broker(1).unsubscribe(a);
  f.sim.run();
  EXPECT_FALSE(f.broker(0).active_sites("a").count(1));
  EXPECT_TRUE(f.broker(0).active_sites("b").count(1));
  EXPECT_EQ(f.broker(1).local_subscribers("a"), 0u);
  EXPECT_EQ(f.broker(1).local_subscribers("b"), 1u);
}

// --- persistence (paper §V-B's other named extension) -------------------------

TEST(PubSubPersistence, MessagesPersistBeforeDelivery) {
  Topology topo = mesh(2, 5);
  sim::Simulator sim;
  SimCluster cluster(topo, sim);
  store::LocalStore store0, store1;
  StabilizerOptions opts0, opts1;
  opts0.topology = opts1.topology = topo;
  opts0.self = 0;
  opts1.self = 1;
  Stabilizer s0(opts0, cluster.transport(0));
  Stabilizer s1(opts1, cluster.transport(1));
  BrokerOptions b0, b1;
  b0.persistence = &store0;
  b1.persistence = &store1;
  Broker pub(s0, b0), sub(s1, b1);

  sub.subscribe("t", [](NodeId, SeqNum, BytesView) {});
  sim.run();
  SeqNum seq = pub.publish("t", to_bytes("durable message"));
  sim.run();

  // Both ends persisted the message under its stream coordinates.
  std::string key = "pubsub/t/0/" + std::to_string(seq);
  ASSERT_TRUE(store0.contains(key));
  ASSERT_TRUE(store1.contains(key));
  EXPECT_EQ(to_string(store1.get(key)->value), "durable message");
  EXPECT_GE(pub.persisted_messages(), 1u);

  // The persisted level is reported, so durability-aware predicates work.
  ASSERT_TRUE(s0.register_predicate(
      "durable", "MIN(($ALLWNODES-$MYWNODE).persisted)"));
  sim.run();
  EXPECT_GE(s0.get_stability_frontier("durable"), seq);
}

TEST(PubSub, ManyMessagesSaturateAndDeliverAll) {
  Topology topo = mesh(2, 2);
  LinkSpec s;
  s.latency = from_ms(2);
  s.bandwidth_bps = mbps(100);
  topo.set_link_bidir(0, 1, s);
  PubSubFixture f(topo);
  size_t got = 0;
  f.broker(1).subscribe([&](NodeId, SeqNum, BytesView) { ++got; });
  f.sim.run();
  const int kCount = 500;
  Bytes msg(8 * 1024, 0x5a);
  for (int i = 0; i < kCount; ++i) f.broker(0).publish(msg);
  f.sim.run();
  EXPECT_EQ(got, static_cast<size_t>(kCount));
  EXPECT_EQ(f.broker(0).published(), static_cast<uint64_t>(kCount));
}

}  // namespace
}  // namespace stab::pubsub
