// PulsarLite baseline tests: forwarding, acks, GC pause model, and the
// original-Pulsar drop behaviour vs the paper's buffering patch.
#include <gtest/gtest.h>

#include <memory>

#include "net/sim_transport.hpp"
#include "pulsar/pulsar_lite.hpp"

namespace stab::pulsar {
namespace {

Topology mesh(size_t n, double lat_ms, double bw_mbps = 0) {
  Topology t;
  for (size_t i = 0; i < n; ++i) t.add_node("pl" + std::to_string(i), "az");
  LinkSpec s;
  s.latency = from_ms(lat_ms);
  if (bw_mbps > 0) s.bandwidth_bps = mbps(bw_mbps);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

struct PulsarFixture {
  PulsarFixture(Topology topo, PulsarOptions base = {}) : topo_(std::move(topo)) {
    cluster = std::make_unique<SimCluster>(topo_, sim);
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      PulsarOptions opts = base;
      opts.self = n;
      opts.brokers.clear();
      for (NodeId m = 0; m < topo_.num_nodes(); ++m) opts.brokers.push_back(m);
      brokers.push_back(
          std::make_unique<PulsarBroker>(opts, cluster->transport(n)));
    }
  }
  PulsarBroker& broker(NodeId n) { return *brokers.at(n); }

  Topology topo_;
  sim::Simulator sim;
  std::unique_ptr<SimCluster> cluster;
  std::vector<std::unique_ptr<PulsarBroker>> brokers;
};

TEST(PulsarLite, ForwardsToRemoteSubscribers) {
  PulsarFixture f(mesh(3, 5));
  std::vector<std::string> got;
  f.broker(1).subscribe([&](NodeId origin, uint64_t, BytesView m) {
    EXPECT_EQ(origin, 0u);
    got.push_back(to_string(m));
  });
  f.broker(0).publish(to_bytes("m1"));
  f.broker(0).publish(to_bytes("m2"));
  f.sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(f.broker(1).delivered(), 2u);
}

TEST(PulsarLite, AcksFlowBackToOrigin) {
  PulsarFixture f(mesh(2, 10));
  f.broker(1).subscribe([](NodeId, uint64_t, BytesView) {});
  std::vector<std::pair<NodeId, uint64_t>> acks;
  f.broker(0).set_ack_handler(
      [&](NodeId site, uint64_t id) { acks.emplace_back(site, id); });
  uint64_t id = f.broker(0).publish(to_bytes("x"));
  f.sim.run();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, 1u);
  EXPECT_EQ(acks[0].second, id);
  // e2e latency ≈ 2 * one-way + processing.
  EXPECT_GE(to_ms(f.sim.now()), 20.0);
}

TEST(PulsarLite, ProcessingDelayQueuesAtHighRate) {
  PulsarOptions base;
  base.proc_delay = millis(1);  // exaggerated CPU cost
  PulsarFixture f(mesh(2, 0), base);
  TimePoint last_delivery = kTimeZero;
  f.broker(1).subscribe(
      [&](NodeId, uint64_t, BytesView) { last_delivery = f.sim.now(); });
  for (int i = 0; i < 100; ++i) f.broker(0).publish(to_bytes("m"));
  f.sim.run();
  // 100 messages through two serial 1ms stages: >= 100ms of queueing.
  EXPECT_GE(to_ms(last_delivery), 100.0);
}

TEST(PulsarLite, GcPausesAccumulate) {
  PulsarOptions base;
  base.gc_alloc_per_msg = 1 << 20;   // 1 MB garbage per message
  base.gc_heap_budget = 8 << 20;     // pause every 8 messages
  PulsarFixture f(mesh(2, 1), base);
  f.broker(1).subscribe([](NodeId, uint64_t, BytesView) {});
  for (int i = 0; i < 64; ++i) f.broker(0).publish(to_bytes("m"));
  f.sim.run();
  EXPECT_GE(f.broker(0).gc_pauses() + f.broker(1).gc_pauses(), 8u);
  EXPECT_GT(f.broker(0).total_gc_time() + f.broker(1).total_gc_time(),
            Duration::zero());
}

TEST(PulsarLite, OriginalDropsWhenLinkSlow) {
  PulsarOptions base;
  base.buffer_when_slow = false;           // original Pulsar behaviour
  base.slow_link_outstanding_cap = 64 * 1024;
  // Slow link: 1 Mbit/s.
  PulsarFixture f(mesh(2, 5, /*bw_mbps=*/1), base);
  size_t got = 0;
  f.broker(1).subscribe([&](NodeId, uint64_t, BytesView) { ++got; });
  Bytes msg(8 * 1024, 1);
  for (int i = 0; i < 200; ++i) f.broker(0).publish(msg);
  f.sim.run();
  EXPECT_GT(f.broker(0).dropped(), 0u);
  EXPECT_LT(got, 200u);
}

TEST(PulsarLite, PatchedVersionBuffersEverything) {
  PulsarOptions base;
  base.buffer_when_slow = true;  // the paper's patch
  PulsarFixture f(mesh(2, 5, /*bw_mbps=*/1), base);
  std::vector<uint64_t> got;
  f.broker(1).subscribe(
      [&](NodeId, uint64_t id, BytesView) { got.push_back(id); });
  Bytes msg(8 * 1024, 1);
  for (int i = 0; i < 200; ++i) f.broker(0).publish(msg);
  f.sim.run();
  EXPECT_EQ(f.broker(0).dropped(), 0u);
  ASSERT_EQ(got.size(), 200u);
  // Sender order preserved.
  for (size_t i = 1; i < got.size(); ++i) EXPECT_EQ(got[i], got[i - 1] + 1);
}

}  // namespace
}  // namespace stab::pulsar
