// DSL tests: lexer, parser, analyzer expansion, evaluation semantics, and
// differential property tests across the three execution strategies.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>

#include "common/rng.hpp"
#include "config/topology.hpp"
#include "dsl/parser.hpp"
#include "dsl/predicate.hpp"
#include "dsl/shard_ref.hpp"
#include "dsl/token.hpp"

namespace stab::dsl {
namespace {

// --- helpers -----------------------------------------------------------------

/// Simple ack matrix for tests.
class TestAcks : public AckSource {
 public:
  void set(StabilityTypeId type, NodeId node, int64_t seq) {
    auto& r = rows_[type];
    if (r.size() <= node) r.resize(node + 1, kNoSeq);
    r[node] = seq;
  }
  std::span<const int64_t> row(StabilityTypeId type) const override {
    auto it = rows_.find(type);
    if (it == rows_.end()) return {};
    return it->second;
  }

 private:
  std::map<StabilityTypeId, std::vector<int64_t>> rows_;
};

/// Auto-registering type resolver: received=0, persisted=1, then on demand.
struct TypeRegistry {
  std::map<std::string, StabilityTypeId> ids{{"received", 0}, {"persisted", 1}};
  std::optional<StabilityTypeId> operator()(const std::string& name) {
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    StabilityTypeId id = static_cast<StabilityTypeId>(ids.size());
    ids.emplace(name, id);
    return id;
  }
  std::string name_of(StabilityTypeId id) const {
    for (const auto& [n, i] : ids)
      if (i == id) return n;
    return "?";
  }
};

PredicateContext make_ctx(const Topology& topo, NodeId self,
                          TypeRegistry& reg) {
  PredicateContext ctx;
  ctx.topology = &topo;
  ctx.self = self;
  ctx.resolve_type = [&reg](const std::string& n) { return reg(n); };
  return ctx;
}

// --- lexer ---------------------------------------------------------------------

TEST(Lexer, TokenizesAllKinds) {
  auto toks = lex("MAX($ALLWNODES-$MYWNODE), 42 ().+*/");
  ASSERT_TRUE(toks.is_ok()) << toks.message();
  const auto& v = toks.value();
  ASSERT_GE(v.size(), 10u);
  EXPECT_EQ(v[0].kind, TokKind::kIdent);
  EXPECT_EQ(v[0].text, "MAX");
  EXPECT_EQ(v[1].kind, TokKind::kLParen);
  EXPECT_EQ(v[2].kind, TokKind::kDollarRef);
  EXPECT_EQ(v[2].text, "ALLWNODES");
  EXPECT_EQ(v[3].kind, TokKind::kMinus);
  EXPECT_EQ(v[4].text, "MYWNODE");
  EXPECT_EQ(v.back().kind, TokKind::kEnd);
}

TEST(Lexer, IntegerValue) {
  auto toks = lex("123");
  ASSERT_TRUE(toks.is_ok());
  EXPECT_EQ(toks.value()[0].kind, TokKind::kInt);
  EXPECT_EQ(toks.value()[0].value, 123);
}

TEST(Lexer, BadCharacterReportsOffset) {
  auto toks = lex("MAX(%)");
  ASSERT_FALSE(toks.is_ok());
  EXPECT_NE(toks.message().find("offset 4"), std::string::npos);
}

TEST(Lexer, LoneDollarFails) {
  EXPECT_FALSE(lex("MAX($ )").is_ok());
}

TEST(Lexer, EmptyInputIsJustEnd) {
  auto toks = lex("");
  ASSERT_TRUE(toks.is_ok());
  ASSERT_EQ(toks.value().size(), 1u);
  EXPECT_EQ(toks.value()[0].kind, TokKind::kEnd);
}

// --- parser ----------------------------------------------------------------------

TEST(Parser, RoundTripsPaperPredicates) {
  // Every predicate that appears in the paper (§III-C, §IV, Table III).
  const char* predicates[] = {
      "MAX($ALLWNODES-$MYWNODE)",
      "MIN($ALLWNODES)",
      "KTH_MIN(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)",
      "KTH_MIN(SIZEOF($ALLWNODES)/2,$ALLWNODES)",
      "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES))",
      "MAX(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
      "MIN($ALLWNODES-$MYWNODE)",
  };
  for (const char* src : predicates) {
    auto ast = parse(src);
    ASSERT_TRUE(ast.is_ok()) << src << ": " << ast.message();
    // Re-parse the printed form; printing must be stable.
    std::string printed = to_dsl_string(*ast.value());
    auto ast2 = parse(printed);
    ASSERT_TRUE(ast2.is_ok()) << printed << ": " << ast2.message();
    EXPECT_EQ(to_dsl_string(*ast2.value()), printed) << src;
  }
}

TEST(Parser, AcceptsSpacedKthSpelling) {
  auto ast = parse("KTH MAX(2, $ALLWNODES)");  // the paper writes "KTH MAX"
  ASSERT_TRUE(ast.is_ok()) << ast.message();
  EXPECT_EQ(to_dsl_string(*ast.value()), "KTH_MAX(2,$ALLWNODES)");
}

TEST(Parser, SuffixOnParenthesizedSet) {
  auto ast = parse("MIN(($MYAZWNODES-$MYWNODE).verified)");
  ASSERT_TRUE(ast.is_ok()) << ast.message();
  EXPECT_NE(to_dsl_string(*ast.value()).find(".verified"), std::string::npos);
}

TEST(Parser, SuffixOnSingleNode) {
  auto ast = parse("MAX($3.persisted)");
  ASSERT_TRUE(ast.is_ok()) << ast.message();
}

TEST(Parser, WnodeAndAzVariables) {
  auto ast = parse("MAX($WNODE_Foo,$AZ_Wisc)");
  ASSERT_TRUE(ast.is_ok()) << ast.message();
  EXPECT_EQ(to_dsl_string(*ast.value()), "MAX($WNODE_Foo,$AZ_Wisc)");
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("FOO($1)").is_ok());
  EXPECT_FALSE(parse("MAX").is_ok());
  EXPECT_FALSE(parse("MAX(").is_ok());
  EXPECT_FALSE(parse("MAX()").is_ok());
  EXPECT_FALSE(parse("MAX($1)extra").is_ok());
  EXPECT_FALSE(parse("MAX($1,)").is_ok());
  EXPECT_FALSE(parse("KTH_BOGUS(1,$1)").is_ok());
  EXPECT_FALSE(parse("$1").is_ok());  // top level must be a call
  EXPECT_FALSE(parse("MAX($WNODE_)").is_ok());
  EXPECT_FALSE(parse("MAX($AZ_)").is_ok());
  EXPECT_FALSE(parse("MAX($1.)").is_ok());
}

TEST(Parser, ArithmeticPrecedence) {
  auto ast = parse("KTH_MIN(1+2*3,$ALLWNODES)");
  ASSERT_TRUE(ast.is_ok());
  // (1+(2*3)) — verified via evaluation below in analyzer tests.
  EXPECT_EQ(to_dsl_string(*ast.value()), "KTH_MIN((1+(2*3)),$ALLWNODES)");
}

TEST(Parser, ErrorsCarryOffsets) {
  auto ast = parse("MAX($1,%%)");
  ASSERT_FALSE(ast.is_ok());
  EXPECT_NE(ast.message().find("offset"), std::string::npos);
}

// --- analyzer ---------------------------------------------------------------------

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest() : topo_(ec2_topology()) {}
  Topology topo_;
  TypeRegistry reg_;
};

TEST_F(AnalyzerTest, ExpandsAllwnodesMinusMy) {
  // Fig 1's example: MAX($ALLWNODES-$MYWNODE) at node 1 expands to
  // MAX($2,...,$8).
  auto p = Predicate::compile("MAX($ALLWNODES-$MYWNODE)",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok()) << p.message();
  EXPECT_EQ(p.value().expanded(), "MAX($2,$3,$4,$5,$6,$7,$8)");
}

TEST_F(AnalyzerTest, ExpandsMyAz) {
  auto p = Predicate::compile("MIN($MYAZWNODES-$MYWNODE)",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok()) << p.message();
  EXPECT_EQ(p.value().expanded(), "MIN($2)");
  // At node 3 (index 2, North Virginia) the same source expands differently.
  auto p2 = Predicate::compile("MIN($MYAZWNODES-$MYWNODE)",
                               make_ctx(topo_, 2, reg_));
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p2.value().expanded(), "MIN($4,$5,$6)");
}

TEST_F(AnalyzerTest, ExpandsAzVariables) {
  auto p = Predicate::compile("MAX(MAX($AZ_Oregon),MAX($AZ_Ohio))",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok()) << p.message();
  EXPECT_EQ(p.value().expanded(), "MAX(MAX($7),MAX($8))");
}

TEST_F(AnalyzerTest, FoldsSizeofArithmetic) {
  auto p = Predicate::compile("KTH_MIN(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok()) << p.message();
  // SIZEOF = 8 -> 8/2+1 = 5
  EXPECT_EQ(p.value().expanded(),
            "KTH_MIN(5,$1,$2,$3,$4,$5,$6,$7,$8)");
}

TEST_F(AnalyzerTest, ArithmeticPrecedenceFolds) {
  auto p = Predicate::compile("KTH_MIN(1+2*3,$ALLWNODES)",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().expanded().substr(0, 10), "KTH_MIN(7,");
}

TEST_F(AnalyzerTest, SuffixResolvesTypes) {
  auto p = Predicate::compile("MIN($ALLWNODES.persisted)",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok());
  ASSERT_EQ(p.value().referenced_types().size(), 1u);
  EXPECT_EQ(p.value().referenced_types()[0], 1u);
  EXPECT_NE(p.value().expanded([&](StabilityTypeId t) { return reg_.name_of(t); })
                .find(".persisted"),
            std::string::npos);
}

TEST_F(AnalyzerTest, WnodeByNameAndIndexAgree) {
  auto by_name =
      Predicate::compile("MAX($WNODE_7)", make_ctx(topo_, 0, reg_));
  auto by_index = Predicate::compile("MAX($7)", make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(by_name.is_ok());
  ASSERT_TRUE(by_index.is_ok());
  EXPECT_EQ(by_name.value().expanded(), by_index.value().expanded());
}

TEST_F(AnalyzerTest, ReferencedNodes) {
  auto p = Predicate::compile("MIN(MAX($AZ_Oregon),MAX($AZ_Ohio))",
                              make_ctx(topo_, 0, reg_));
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().referenced_nodes(), (std::vector<NodeId>{6, 7}));
  EXPECT_TRUE(p.value().references_node(6));
  EXPECT_FALSE(p.value().references_node(0));
}

TEST_F(AnalyzerTest, Errors) {
  auto ctx = make_ctx(topo_, 0, reg_);
  EXPECT_FALSE(Predicate::compile("MAX($9)", ctx).is_ok());       // only 8 nodes
  EXPECT_FALSE(Predicate::compile("MAX($0)", ctx).is_ok());       // 1-based
  EXPECT_FALSE(Predicate::compile("MAX($WNODE_X)", ctx).is_ok()); // unknown
  EXPECT_FALSE(Predicate::compile("MAX($AZ_Mars)", ctx).is_ok()); // unknown az
  EXPECT_FALSE(
      Predicate::compile("KTH_MIN(1/0,$ALLWNODES)", ctx).is_ok());  // div 0
  EXPECT_FALSE(
      Predicate::compile("KTH_MIN($ALLWNODES)", ctx).is_ok());  // missing k
  EXPECT_FALSE(Predicate::compile("KTH_MIN($1,$ALLWNODES)", ctx)
                   .is_ok());  // k must be arithmetic
}

TEST_F(AnalyzerTest, UnknownTypeRejected) {
  PredicateContext ctx;
  ctx.topology = &topo_;
  ctx.self = 0;
  ctx.resolve_type = [](const std::string& n) -> std::optional<StabilityTypeId> {
    if (n == "received") return 0;
    return std::nullopt;
  };
  EXPECT_FALSE(Predicate::compile("MIN($ALLWNODES.verified)", ctx).is_ok());
  EXPECT_TRUE(Predicate::compile("MIN($ALLWNODES)", ctx).is_ok());
}

// --- evaluation semantics -------------------------------------------------------

class EvalTest : public ::testing::TestWithParam<EvalMode> {
 protected:
  EvalTest() : topo_(ec2_topology()) {}

  int64_t eval(const std::string& src, const TestAcks& acks, NodeId self = 0) {
    auto p = Predicate::compile(src, make_ctx(topo_, self, reg_), GetParam());
    EXPECT_TRUE(p.is_ok()) << src << ": " << p.message();
    return p.value().eval(acks);
  }

  Topology topo_;
  TypeRegistry reg_;
};

INSTANTIATE_TEST_SUITE_P(AllModes, EvalTest,
                         ::testing::Values(EvalMode::kInterpreter,
                                           EvalMode::kBytecode,
                                           EvalMode::kSpecialized),
                         [](const auto& info) {
                           switch (info.param) {
                             case EvalMode::kInterpreter:
                               return "Interpreter";
                             case EvalMode::kBytecode:
                               return "Bytecode";
                             default:
                               return "Specialized";
                           }
                         });

TEST_P(EvalTest, Fig1Example) {
  // Fig 1: node acks are 33,25,19,21,23,28 for nodes 1..6 (we extend with
  // nodes 7,8); MAX($ALLWNODES-$MYWNODE) at node 1 returns the highest
  // remote ack.
  TestAcks acks;
  int64_t vals[] = {33, 25, 19, 21, 23, 28, 17, 11};
  for (NodeId n = 0; n < 8; ++n) acks.set(0, n, vals[n]);
  EXPECT_EQ(eval("MAX($ALLWNODES-$MYWNODE)", acks), 28);
  EXPECT_EQ(eval("MIN($ALLWNODES)", acks), 11);
  EXPECT_EQ(eval("MAX($ALLWNODES)", acks), 33);
}

TEST_P(EvalTest, KthSelection) {
  TestAcks acks;
  int64_t vals[] = {80, 70, 60, 50, 40, 30, 20, 10};
  for (NodeId n = 0; n < 8; ++n) acks.set(0, n, vals[n]);
  // majority (5) of all 8 nodes, k-th smallest from the top
  EXPECT_EQ(eval("KTH_MIN(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)", acks), 50);
  EXPECT_EQ(eval("KTH_MAX(SIZEOF($ALLWNODES)/2+1,$ALLWNODES)", acks), 40);
  EXPECT_EQ(eval("KTH_MAX(1,$ALLWNODES)", acks), 80);
  EXPECT_EQ(eval("KTH_MIN(1,$ALLWNODES)", acks), 10);
  EXPECT_EQ(eval("KTH_MAX(8,$ALLWNODES)", acks), 10);
}

TEST_P(EvalTest, KthOutOfRangeIsNoSeq) {
  TestAcks acks;
  for (NodeId n = 0; n < 8; ++n) acks.set(0, n, 5);
  EXPECT_EQ(eval("KTH_MAX(9,$ALLWNODES)", acks), kNoSeq);
  EXPECT_EQ(eval("KTH_MAX(0,$ALLWNODES)", acks), kNoSeq);
  EXPECT_EQ(eval("KTH_MIN(100,$ALLWNODES)", acks), kNoSeq);
}

TEST_P(EvalTest, UnackedNodesReadAsNoSeq) {
  TestAcks acks;  // empty: nothing acked anywhere
  EXPECT_EQ(eval("MIN($ALLWNODES)", acks), kNoSeq);
  EXPECT_EQ(eval("MAX($ALLWNODES)", acks), kNoSeq);
  acks.set(0, 3, 42);
  EXPECT_EQ(eval("MAX($ALLWNODES)", acks), 42);
  EXPECT_EQ(eval("MIN($ALLWNODES)", acks), kNoSeq);
}

TEST_P(EvalTest, RegionPredicatesFromTableThree) {
  TestAcks acks;
  // nva(3,4,5,6) = 10,20,30,40 ; oregon(7) = 25; ohio(8) = 5
  acks.set(0, 2, 10);
  acks.set(0, 3, 20);
  acks.set(0, 4, 30);
  acks.set(0, 5, 40);
  acks.set(0, 6, 25);
  acks.set(0, 7, 5);
  const std::string nva = "MAX($AZ_North_Virginia)";
  // OneRegion: best remote region = max(40, 25, 5) = 40
  EXPECT_EQ(eval("MAX(" + nva + ",MAX($AZ_Oregon),MAX($AZ_Ohio))", acks), 40);
  // MajorityRegions: 2nd best = 25
  EXPECT_EQ(
      eval("KTH_MAX(2," + nva + ",MAX($AZ_Oregon),MAX($AZ_Ohio))", acks), 25);
  // AllRegions: worst = 5
  EXPECT_EQ(eval("MIN(" + nva + ",MAX($AZ_Oregon),MAX($AZ_Ohio))", acks), 5);
}

TEST_P(EvalTest, MixedSuffixes) {
  TestAcks acks;
  for (NodeId n = 0; n < 8; ++n) {
    acks.set(0, n, 100);  // received
    acks.set(1, n, 50 + n);  // persisted
  }
  EXPECT_EQ(eval("MIN($ALLWNODES.persisted)", acks), 50);
  EXPECT_EQ(eval("MIN(MIN($ALLWNODES),MIN($ALLWNODES.persisted))", acks), 50);
}

TEST_P(EvalTest, AzReplicationGoalFromPaperSectionFour) {
  // MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES)):
  // fully replicated in my AZ, and at least one remote-region copy.
  const std::string pred =
      "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES))";
  TestAcks acks;
  acks.set(0, 1, 7);  // az peer (node 2) has 7
  // no remote copies yet -> frontier is kNoSeq
  EXPECT_EQ(eval(pred, acks), kNoSeq);
  acks.set(0, 6, 3);  // oregon has 3
  EXPECT_EQ(eval(pred, acks), 3);
  acks.set(0, 7, 9);  // ohio has 9: remote part = max(...,9)=9, az part = 7
  EXPECT_EQ(eval(pred, acks), 7);
}

TEST_P(EvalTest, ScalarIntArgsAllowed) {
  TestAcks acks;
  acks.set(0, 1, 5);
  EXPECT_EQ(eval("MAX($2,3)", acks), 5);
  EXPECT_EQ(eval("MIN($2,3)", acks), 3);
}

// Differential property test: all three modes agree on randomized predicates
// and ack tables.
TEST(EvalProperty, ModesAgreeOnRandomPredicates) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  Rng rng(2024);
  const char* sets[] = {"$ALLWNODES",
                        "$MYAZWNODES",
                        "$ALLWNODES-$MYWNODE",
                        "$ALLWNODES-$MYAZWNODES",
                        "$AZ_North_Virginia",
                        "$AZ_Oregon",
                        "$AZ_Ohio",
                        "$MYAZWNODES-$MYWNODE",
                        "$3",
                        "$7"};
  const char* suffixes[] = {"", ".persisted", ".verified"};
  const char* ops[] = {"MAX", "MIN", "KTH_MAX", "KTH_MIN"};

  std::function<std::string(int)> gen_call = [&](int depth) {
    std::ostringstream oss;
    const char* op = ops[rng.next_below(4)];
    bool kth = op[0] == 'K';
    oss << op << "(";
    if (kth) oss << 1 + rng.next_below(9) << ",";
    int nargs = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < nargs; ++i) {
      if (i) oss << ",";
      if (depth < 2 && rng.next_bool(0.3)) {
        oss << gen_call(depth + 1);
      } else {
        std::string set = sets[rng.next_below(10)];
        std::string suffix = suffixes[rng.next_below(3)];
        if (!suffix.empty() && set.find('-') != std::string::npos)
          oss << "(" << set << ")" << suffix;
        else
          oss << set << suffix;
      }
    }
    oss << ")";
    return oss.str();
  };

  int compiled = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string src = gen_call(0);
    auto ctx = make_ctx(topo, static_cast<NodeId>(rng.next_below(8)), reg);
    auto pi = Predicate::compile(src, ctx, EvalMode::kInterpreter);
    auto pb = Predicate::compile(src, ctx, EvalMode::kBytecode);
    auto ps = Predicate::compile(src, ctx, EvalMode::kSpecialized);
    ASSERT_TRUE(pi.is_ok()) << src << ": " << pi.message();
    ASSERT_TRUE(pb.is_ok() && ps.is_ok());
    ++compiled;

    TestAcks acks;
    for (StabilityTypeId t = 0; t < 3; ++t)
      for (NodeId n = 0; n < 8; ++n)
        if (rng.next_bool(0.8))
          acks.set(t, n, rng.next_range(-1, 100));
    int64_t vi = pi.value().eval(acks);
    int64_t vb = pb.value().eval(acks);
    int64_t vs = ps.value().eval(acks);
    EXPECT_EQ(vi, vb) << src;
    EXPECT_EQ(vi, vs) << src;
  }
  EXPECT_EQ(compiled, 300);
}

// Property: predicate frontier is monotonic under monotonic ack updates.
TEST(EvalProperty, FrontierMonotonicUnderMonotonicAcks) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  Rng rng(7);
  const char* preds[] = {
      "MAX($ALLWNODES-$MYWNODE)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES))",
  };
  for (const char* src : preds) {
    auto p = Predicate::compile(src, make_ctx(topo, 0, reg));
    ASSERT_TRUE(p.is_ok()) << p.message();
    TestAcks acks;
    std::vector<int64_t> current(8, kNoSeq);
    int64_t last = p.value().eval(acks);
    for (int step = 0; step < 500; ++step) {
      NodeId n = static_cast<NodeId>(rng.next_below(8));
      current[n] += rng.next_range(0, 5);
      acks.set(0, n, current[n]);
      int64_t now = p.value().eval(acks);
      ASSERT_GE(now, last) << src << " regressed at step " << step;
      last = now;
    }
  }
}

TEST(Specialization, TableThreePredicatesAreSpecialized) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  const char* preds[] = {
      "MAX($ALLWNODES-$MYWNODE)",
      "MIN($ALLWNODES-$MYWNODE)",
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))",
      "MAX(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "KTH_MAX(2,MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
      "MIN(MAX($AZ_North_Virginia),MAX($AZ_Oregon),MAX($AZ_Ohio))",
  };
  for (const char* src : preds) {
    auto p = Predicate::compile(src, make_ctx(topo, 0, reg));
    ASSERT_TRUE(p.is_ok());
    EXPECT_TRUE(p.value().specialized()) << src;
  }
}

TEST(Specialization, DeepNestingFallsBackToBytecode) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  auto p = Predicate::compile(
      "MIN(MIN($MYAZWNODES-$MYWNODE),MAX($ALLWNODES-$MYAZWNODES),"
      "KTH_MAX(2,$ALLWNODES))",
      make_ctx(topo, 0, reg));
  ASSERT_TRUE(p.is_ok());
  EXPECT_FALSE(p.value().specialized());
  // ... but still evaluates correctly (covered by the differential test).
}

// Robustness: random token soup must produce clean errors, never crashes
// or hangs — the DSL compiles untrusted runtime input (register_predicate
// is a public API).
TEST(ParserRobustness, RandomTokenSoupNeverCrashes) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  auto ctx = make_ctx(topo, 0, reg);
  Rng rng(0xf00d);
  const char* fragments[] = {"MAX",     "MIN",   "KTH_MAX", "KTH_MIN",
                             "SIZEOF",  "(",     ")",       ",",
                             "$ALLWNODES", "$MYWNODE", "$1", "$99",
                             "$AZ_Oregon", "$WNODE_3", "-", "+",
                             "*",       "/",     ".",       "received",
                             "persisted", "7",   "0",       "$",
                             "$AZ_",    "KTH"};
  int compiled = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string src;
    int len = 1 + static_cast<int>(rng.next_below(14));
    for (int i = 0; i < len; ++i) {
      src += fragments[rng.next_below(std::size(fragments))];
      if (rng.next_bool(0.3)) src += " ";
    }
    auto p = Predicate::compile(src, ctx);  // must not crash/throw/hang
    if (p.is_ok()) {
      ++compiled;
      // Anything that compiles must also evaluate safely.
      TestAcks acks;
      acks.set(0, 1, 5);
      (void)p.value().eval(acks);
    } else {
      ++rejected;
      EXPECT_FALSE(p.message().empty());
    }
  }
  EXPECT_EQ(compiled + rejected, 2000);
  EXPECT_GT(rejected, 100);  // the soup is mostly garbage
}

// Robustness: random byte strings through the lexer.
TEST(LexerRobustness, RandomBytesNeverCrash) {
  Rng rng(0xbeef);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string src;
    int len = static_cast<int>(rng.next_below(40));
    for (int i = 0; i < len; ++i)
      src += static_cast<char>(rng.next_range(1, 127));
    auto toks = lex(src);  // ok or error, never UB
    if (toks.is_ok()) EXPECT_EQ(toks.value().back().kind, TokKind::kEnd);
  }
}

// --- sharded stability suffix (shard_ref.hpp, DESIGN.md §9) -------------------

TEST(ShardRef, PlainKeyIsCombinedScope) {
  auto r = parse_shard_ref("checkout");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->base, "checkout");
  EXPECT_EQ(r->scope, ShardKeyRef::Scope::kCombined);
  EXPECT_EQ(shard_ref_string(*r), "checkout");
}

TEST(ShardRef, AtAllIsExplicitCombinedSpelling) {
  auto r = parse_shard_ref("checkout@all");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->base, "checkout");
  EXPECT_EQ(r->scope, ShardKeyRef::Scope::kCombined);
}

TEST(ShardRef, NumericSuffixScopesOneShard) {
  auto r = parse_shard_ref("checkout@3");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->base, "checkout");
  EXPECT_EQ(r->scope, ShardKeyRef::Scope::kOne);
  EXPECT_EQ(r->shard, 3u);
  EXPECT_EQ(shard_ref_string(*r), "checkout@3");

  auto max = parse_shard_ref("k@65535");  // the wire envelope's u16 ceiling
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->shard, 65535u);
}

TEST(ShardRef, MalformedReferencesAreRejected) {
  EXPECT_FALSE(parse_shard_ref("").has_value());
  EXPECT_FALSE(parse_shard_ref("k@").has_value());
  EXPECT_FALSE(parse_shard_ref("@3").has_value());
  EXPECT_FALSE(parse_shard_ref("k@x").has_value());
  EXPECT_FALSE(parse_shard_ref("k@1x").has_value());
  EXPECT_FALSE(parse_shard_ref("k@@2").has_value());
  EXPECT_FALSE(parse_shard_ref("a@1@2").has_value());
  EXPECT_FALSE(parse_shard_ref("k@65536").has_value());  // beyond u16
  EXPECT_FALSE(parse_shard_ref("k@ALL").has_value());    // case-sensitive
}

TEST(CompileMeta, TracksCompileTimeAndSource) {
  Topology topo = ec2_topology();
  TypeRegistry reg;
  auto p = Predicate::compile("MIN($ALLWNODES)", make_ctx(topo, 0, reg));
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().source(), "MIN($ALLWNODES)");
  EXPECT_GT(p.value().compile_time().count(), 0);
}

}  // namespace
}  // namespace stab::dsl
