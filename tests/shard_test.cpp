// Sharded multi-primary facade tests (DESIGN.md §9): ShardRouter placement,
// ShardMux envelope demultiplexing over one link, and the ShardedStabilizer
// end-to-end on the simulator — per-shard FIFO delivery, composite
// (min-combine) cross-shard frontiers, the sharded stability suffix,
// waitfor_cut resolution, per-shard fencing isolation, and the muxed
// single-link configuration.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "control/composite_frontier.hpp"
#include "core/stabilizer.hpp"
#include "data/wire.hpp"
#include "dsl/shard_ref.hpp"
#include "net/sim_transport.hpp"
#include "pubsub/broker.hpp"
#include "shard/shard_mux.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_stabilizer.hpp"

namespace stab {
namespace {

using shard::ShardedOptions;
using shard::ShardedStabilizer;
using shard::ShardId;
using shard::ShardMux;
using shard::ShardRouter;
using shard::ShardSeq;
using WaitStatus = Stabilizer::WaitStatus;

// --- ShardRouter --------------------------------------------------------------

TEST(ShardRouter, HashModeIsDeterministicAndInRange) {
  ShardRouter r(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key/" + std::to_string(i);
    const uint32_t s = r.shard_of(std::string_view(key));
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, r.shard_of(std::string_view(key)));  // pure function
  }
}

TEST(ShardRouter, HashModeSpreadsAcrossEveryShard) {
  ShardRouter r(4);
  std::set<uint32_t> hit;
  for (int i = 0; i < 1000; ++i)
    hit.insert(r.shard_of(std::string_view("key/" + std::to_string(i))));
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardRouter, StringAndByteViewsAgree) {
  ShardRouter r(8);
  const std::string key = "some/topic";
  BytesView bytes(reinterpret_cast<const uint8_t*>(key.data()), key.size());
  EXPECT_EQ(r.shard_of(std::string_view(key)), r.shard_of(bytes));
}

TEST(ShardRouter, ZeroShardsClampsToOne) {
  ShardRouter r(0);
  EXPECT_EQ(r.num_shards(), 1u);
  EXPECT_EQ(r.shard_of(std::string_view("anything")), 0u);
}

TEST(ShardRouter, RangeModePreservesKeyOrder) {
  ShardRouter r(4, ShardRouter::Mode::kRange);
  uint32_t prev = 0;
  for (int c = 0; c < 256; ++c) {
    const std::string key(1, static_cast<char>(c));
    const uint32_t s = r.shard_of(std::string_view(key));
    EXPECT_LT(s, 4u);
    EXPECT_GE(s, prev) << "lexicographic order broken at byte " << c;
    prev = s;
  }
  EXPECT_EQ(prev, 3u);  // the top of the keyspace reaches the last shard
}

// --- SHARD wire envelope -------------------------------------------------------

TEST(ShardEnvelope, RoundTrips) {
  const Bytes inner = to_bytes("payload bytes");
  const Bytes framed = data::encode_shard_frame(3, inner);
  ASSERT_TRUE(data::is_shard_frame(framed));
  const data::ShardFrameView v = data::decode_shard_view(framed);
  EXPECT_EQ(v.shard, 3u);
  EXPECT_EQ(to_string(v.inner), "payload bytes");
  EXPECT_EQ(framed.size(), data::kShardEnvelopeBytes + inner.size());
}

TEST(ShardEnvelope, RejectsOverflowAndForeignFrames) {
  EXPECT_THROW(data::encode_shard_frame(0x10000, to_bytes("x")), CodecError);
  EXPECT_FALSE(data::is_shard_frame(to_bytes("")));
  EXPECT_FALSE(data::is_shard_frame(to_bytes("\x01raw data frame")));
  EXPECT_THROW(data::decode_shard_view(to_bytes("\x01not a shard frame")),
               CodecError);
}

// --- ShardMux -----------------------------------------------------------------

Topology pair_topology() {
  Topology t;
  t.add_node("n0", "az0");
  t.add_node("n1", "az1");
  LinkSpec s;
  s.latency = from_ms(1);
  t.set_link(0, 1, s);
  t.set_link(1, 0, s);
  return t;
}

struct MuxFixture {
  MuxFixture() : cluster(pair_topology(), sim) {
    mux0 = std::make_unique<ShardMux>(cluster.transport(0), 2);
    mux1 = std::make_unique<ShardMux>(cluster.transport(1), 2);
  }
  sim::Simulator sim;
  SimCluster cluster;
  std::unique_ptr<ShardMux> mux0, mux1;
};

TEST(ShardMux, RoutesToExactlyTheTaggedFacet) {
  MuxFixture f;
  std::vector<std::pair<uint32_t, std::string>> got;
  for (uint32_t s = 0; s < 2; ++s)
    f.mux1->facet(s).set_receive_handler(
        [&got, s](NodeId src, BytesView frame, uint64_t) {
          EXPECT_EQ(src, 0u);
          got.emplace_back(s, to_string(frame));
        });
  f.mux0->facet(1).send(1, to_bytes("for shard one"));
  f.mux0->facet(0).send(1, to_bytes("for shard zero"));
  f.sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<uint32_t, std::string>{1, "for shard one"}));
  EXPECT_EQ(got[1], (std::pair<uint32_t, std::string>{0, "for shard zero"}));
  EXPECT_EQ(f.mux1->frames_demuxed(), 2u);
  EXPECT_EQ(f.mux1->unroutable_drops(), 0u);
}

TEST(ShardMux, CountsUnroutableFrames) {
  MuxFixture f;
  f.mux1->facet(0).set_receive_handler([](NodeId, BytesView, uint64_t) {});
  // Untagged frame straight onto the base link.
  f.cluster.transport(0).send(1, to_bytes("no envelope"));
  // Tagged for a shard beyond num_shards.
  f.cluster.transport(0).send(1, data::encode_shard_frame(7, to_bytes("x")));
  // Tagged for facet 1, which never armed a handler.
  f.mux0->facet(1).send(1, to_bytes("nobody home"));
  f.sim.run();
  EXPECT_EQ(f.mux1->frames_demuxed(), 0u);
  EXPECT_EQ(f.mux1->unroutable_drops(), 3u);
}

TEST(ShardMux, SendSharedWrapsLikeSend) {
  MuxFixture f;
  std::string got;
  uint64_t got_wire = 0;
  f.mux1->facet(1).set_receive_handler(
      [&](NodeId, BytesView frame, uint64_t wire) {
        got = to_string(frame);
        got_wire = wire;
      });
  auto shared = std::make_shared<const Bytes>(to_bytes("shared payload"));
  f.mux0->facet(1).send_shared(1, shared, /*wire_size=*/100);
  f.sim.run();
  EXPECT_EQ(got, "shared payload");
  // The envelope's bytes are charged on the link, then stripped back off
  // before the facet handler sees the wire size.
  EXPECT_EQ(got_wire, 100u);
}

// --- ShardedStabilizer over per-shard sim networks ----------------------------

Topology shard_mesh(size_t n) {
  Topology t;
  for (size_t i = 0; i < n; ++i)
    t.add_node("n" + std::to_string(i), "r" + std::to_string(i));
  LinkSpec s;
  s.latency = from_ms(5);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b)
      if (a != b) t.set_link(a, b, s);
  return t;
}

StabilizerOptions shard_base_options() {
  StabilizerOptions o;
  o.ack_interval = millis(2);
  o.broadcast_acks = true;
  return o;
}

/// N nodes x S shards in scale-out shape: one SimNetwork per shard over the
/// shared simulator, so shard s's traffic travels its own links.
struct ShardedSimFixture {
  ShardedSimFixture(size_t n, uint32_t num_shards,
                    StabilizerOptions base = shard_base_options())
      : topo(shard_mesh(n)) {
    for (uint32_t s = 0; s < num_shards; ++s)
      clusters.push_back(std::make_unique<SimCluster>(topo, sim));
    for (NodeId id = 0; id < n; ++id) {
      ShardedOptions opts;
      opts.base = base;
      opts.base.topology = topo;
      opts.base.self = id;
      opts.num_shards = num_shards;
      std::vector<Transport*> transports;
      for (auto& c : clusters) transports.push_back(&c->transport(id));
      nodes.push_back(
          std::make_unique<ShardedStabilizer>(std::move(opts), transports));
    }
  }
  ShardedStabilizer& node(NodeId id) { return *nodes.at(id); }

  /// A routing key that lands on shard `s` under node 0's router.
  std::string key_for_shard(uint32_t s) const {
    const ShardRouter& r = nodes.at(0)->router();
    for (int i = 0;; ++i) {
      std::string k = "k" + std::to_string(i);
      if (r.shard_of(std::string_view(k)) == s) return k;
    }
  }

  Topology topo;
  sim::Simulator sim;
  std::vector<std::unique_ptr<SimCluster>> clusters;
  std::vector<std::unique_ptr<ShardedStabilizer>> nodes;
};

TEST(ShardedStabilizer, RoutesByKeyWithPerShardFifoDelivery) {
  ShardedSimFixture f(2, 2);
  // [shard] -> seqs delivered at node 1, in arrival order.
  std::map<ShardId, std::vector<SeqNum>> got;
  f.node(1).set_delivery_handler(
      [&](ShardId shard, NodeId origin, SeqNum seq, BytesView, uint64_t) {
        EXPECT_EQ(origin, 0u);
        got[shard].push_back(seq);
      });

  const std::string k0 = f.key_for_shard(0), k1 = f.key_for_shard(1);
  std::map<ShardId, int> sent;
  for (int i = 0; i < 6; ++i) {
    const std::string& k = (i % 2 == 0) ? k0 : k1;
    const ShardSeq ss = f.node(0).send(k, to_bytes("m" + std::to_string(i)));
    EXPECT_EQ(ss.shard, f.node(0).shard_of(std::string_view(k)));
    EXPECT_EQ(ss.seq, sent[ss.shard]++);  // dense per-shard sequence space
  }
  f.sim.run();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::vector<SeqNum>{0, 1, 2}));
  EXPECT_EQ(got[1], (std::vector<SeqNum>{0, 1, 2}));
#if STAB_OBS_ENABLED  // registry-backed stats read zero when compiled out
  EXPECT_EQ(f.node(0).stats().messages_sent, 6u);
#endif
}

TEST(ShardedStabilizer, CompositeFrontierMinCombinesAcrossShards) {
  ShardedSimFixture f(2, 2);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)").is_ok());

  // Uneven load: 3 messages on shard 0, 1 on shard 1.
  for (int i = 0; i < 3; ++i) f.node(0).send_to_shard(0, to_bytes("a"));
  f.node(0).send_to_shard(1, to_bytes("b"));
  f.sim.run();

  EXPECT_EQ(f.node(0).get_stability_frontier("all@0"), 2);
  EXPECT_EQ(f.node(0).get_stability_frontier("all@1"), 0);
  // Composite = min over shards; "all" and "all@all" are the same reference.
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), 0);
  EXPECT_EQ(f.node(0).get_stability_frontier("all@all"), 0);
  EXPECT_EQ(f.node(0).frontier_vector("all"), (control::ShardCut{2, 0}));

  // Out-of-range shard and malformed references answer kNoSeq.
  EXPECT_EQ(f.node(0).get_stability_frontier("all@7"), kNoSeq);
  EXPECT_EQ(f.node(0).get_stability_frontier("all@@1"), kNoSeq);
  EXPECT_EQ(f.node(0).get_stability_frontier("@1"), kNoSeq);
}

TEST(ShardedStabilizer, CompositeNeverExceedsAnyMemberShard) {
  ShardedSimFixture f(2, 2);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)").is_ok());
  // Shard 1 never sends: its frontier stays kNoSeq, which must dominate.
  for (int i = 0; i < 4; ++i) f.node(0).send_to_shard(0, to_bytes("a"));
  f.sim.run();
  EXPECT_EQ(f.node(0).get_stability_frontier("all@0"), 3);
  EXPECT_EQ(f.node(0).get_stability_frontier("all"), kNoSeq);
}

TEST(ShardedStabilizer, WaitforCutResolvesOnceEveryShardCovers) {
  ShardedSimFixture f(2, 2);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)").is_ok());
  f.node(0).send_to_shard(0, to_bytes("a"));
  f.node(0).send_to_shard(0, to_bytes("b"));
  f.node(0).send_to_shard(1, to_bytes("c"));

  int fired = 0;
  WaitStatus result = WaitStatus::kTimeout;
  ASSERT_TRUE(f.node(0)
                  .waitfor_cut(f.node(0).cut(), "all",
                               [&](WaitStatus s) {
                                 ++fired;
                                 result = s;
                               })
                  .is_ok());
  EXPECT_EQ(fired, 0);  // nothing acked yet
  f.sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(result, WaitStatus::kOk);
}

TEST(ShardedStabilizer, EmptyOrSentinelOnlyCutResolvesImmediately) {
  ShardedSimFixture f(2, 2);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)").is_ok());
  int fired = 0;
  WaitStatus result = WaitStatus::kTimeout;
  auto fn = [&](WaitStatus s) {
    ++fired;
    result = s;
  };
  ASSERT_TRUE(f.node(0).waitfor_cut({}, "all", fn).is_ok());
  ASSERT_TRUE(f.node(0).waitfor_cut({kNoSeq, kNoSeq}, "all", fn).is_ok());
  EXPECT_EQ(fired, 2);  // both vacuous, both kOk, no network needed
  EXPECT_EQ(result, WaitStatus::kOk);
}

TEST(ShardedStabilizer, PredicateFanoutAndAtSignRejection) {
  ShardedSimFixture f(2, 2);
  EXPECT_FALSE(f.node(0).register_predicate("bad@key", "MIN($ALLWNODES)")
                   .is_ok());
  EXPECT_FALSE(f.node(0).register_predicate("nonsense", "MIN(")
                   .is_ok());
  EXPECT_FALSE(f.node(0).has_predicate("nonsense"));

  ASSERT_TRUE(f.node(0).register_predicate("ok", "MIN($ALLWNODES)").is_ok());
  EXPECT_TRUE(f.node(0).has_predicate("ok"));
  // The fanout reached every shard instance, not just shard 0.
  for (uint32_t s = 0; s < 2; ++s)
    EXPECT_TRUE(f.node(0).shard(s).has_predicate("ok")) << "shard " << s;
  ASSERT_TRUE(f.node(0).remove_predicate("ok").is_ok());
  for (uint32_t s = 0; s < 2; ++s)
    EXPECT_FALSE(f.node(0).shard(s).has_predicate("ok")) << "shard " << s;
}

// Deposing one shard's primary fences exactly that shard: its composite
// waiters fail with kFenced while the other shard keeps sending and its
// frontier keeps advancing (the per-shard failover domain of DESIGN.md §9;
// the full protocol drives this same transition in chaos_test's sharded
// campaign).
TEST(ShardedStabilizer, FencedShardFailsCutWaitersWithoutTouchingOthers) {
  ShardedSimFixture f(2, 2);
  ASSERT_TRUE(f.node(0).register_predicate("all", "MIN($ALLWNODES)").is_ok());
  f.node(0).send_to_shard(0, to_bytes("a"));
  f.node(0).send_to_shard(1, to_bytes("b"));
  f.sim.run();

  // A committed takeover of node 0's stream lands on shard 1 only.
  for (NodeId id = 0; id < 2; ++id)
    ASSERT_TRUE(f.node(id)
                    .shard(1)
                    .observe_takeover(/*origin=*/0, /*new_primary=*/1,
                                      /*epoch=*/1, /*start_seq=*/1)
                    .is_ok());
  EXPECT_TRUE(f.node(0).shard(1).self_fenced());
  EXPECT_FALSE(f.node(0).shard(0).self_fenced());

  // The fenced shard refuses sends; the healthy shard does not.
  EXPECT_EQ(f.node(0).send_to_shard(1, to_bytes("zombie")).seq, kFencedSeq);
  const ShardSeq ok = f.node(0).send_to_shard(0, to_bytes("alive"));
  EXPECT_EQ(ok.seq, 1);

  // A cut spanning both shards fails fast with kFenced (shard 1's waiter),
  // even though shard 0's member could still be satisfied.
  int fired = 0;
  WaitStatus result = WaitStatus::kTimeout;
  ASSERT_TRUE(f.node(0)
                  .waitfor_cut({ok.seq, 5}, "all",
                               [&](WaitStatus s) {
                                 ++fired;
                                 result = s;
                               })
                  .is_ok());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(result, WaitStatus::kFenced);

  // Shard 0 alone still reaches stability: the fence did not leak across.
  f.sim.run();
  EXPECT_EQ(f.node(0).get_stability_frontier("all@0"), ok.seq);
}

// --- muxed single-link configuration ------------------------------------------

TEST(ShardedStabilizer, MuxedConfigurationMatchesScaleOutSemantics) {
  sim::Simulator sim;
  Topology topo = shard_mesh(2);
  SimCluster cluster(topo, sim);
  std::vector<std::unique_ptr<ShardedStabilizer>> nodes;
  for (NodeId id = 0; id < 2; ++id) {
    ShardedOptions opts;
    opts.base = shard_base_options();
    opts.base.topology = topo;
    opts.base.self = id;
    opts.num_shards = 2;
    nodes.push_back(std::make_unique<ShardedStabilizer>(
        std::move(opts), cluster.transport(id)));
  }
  ASSERT_NE(nodes[0]->mux(), nullptr);
  ASSERT_TRUE(nodes[0]->register_predicate("all", "MIN($ALLWNODES)").is_ok());

  std::map<ShardId, std::vector<SeqNum>> got;
  nodes[1]->set_delivery_handler(
      [&](ShardId shard, NodeId, SeqNum seq, BytesView, uint64_t) {
        got[shard].push_back(seq);
      });
  for (int i = 0; i < 3; ++i) nodes[0]->send_to_shard(0, to_bytes("a"));
  for (int i = 0; i < 3; ++i) nodes[0]->send_to_shard(1, to_bytes("b"));
  sim.run();

  EXPECT_EQ(got[0], (std::vector<SeqNum>{0, 1, 2}));
  EXPECT_EQ(got[1], (std::vector<SeqNum>{0, 1, 2}));
  // Both shards' streams (and their ack traffic) traveled SHARD-enveloped
  // through each node's mux; nothing arrived untagged or misaddressed.
  EXPECT_GT(nodes[1]->mux()->frames_demuxed(), 0u);
  EXPECT_EQ(nodes[1]->mux()->unroutable_drops(), 0u);
  EXPECT_EQ(nodes[0]->mux()->unroutable_drops(), 0u);
  // Acks flowed back through the mux: the composite frontier converged.
  EXPECT_EQ(nodes[0]->get_stability_frontier("all"), 2);
}

// --- satellite integrations ---------------------------------------------------

TEST(ShardedStabilizer, BrokerTopicRoutingAgreesWithRouter) {
  ShardRouter router(4);
  for (const std::string topic : {"orders", "telemetry", "audit/eu", ""}) {
    EXPECT_EQ(pubsub::Broker::shard_of_topic(topic, router),
              router.shard_of(std::string_view(topic)))
        << topic;
  }
}

TEST(ShardedStabilizer, StatsSumAcrossShards) {
  ShardedSimFixture f(2, 2);
  f.node(0).send_to_shard(0, to_bytes("a"));
  f.node(0).send_to_shard(1, to_bytes("b"));
  f.node(0).send_to_shard(1, to_bytes("c"));
  f.sim.run();
  const StabilizerStats total = f.node(0).stats();
#if STAB_OBS_ENABLED  // registry-backed stats read zero when compiled out
  EXPECT_EQ(total.messages_sent, 3u);
#endif
  // The facade sum equals the per-shard sum in every flavor (0 == 0 + 0
  // when the counters are compiled out).
  EXPECT_EQ(total.messages_sent, f.node(0).shard(0).stats().messages_sent +
                                     f.node(0).shard(1).stats().messages_sent);
}

}  // namespace
}  // namespace stab
