// Tests for topology building, the config parser, and the paper presets.
#include <gtest/gtest.h>

#include "config/topology.hpp"

namespace stab {
namespace {

TEST(Topology, AddAndLookupNodes) {
  Topology t;
  NodeId a = t.add_node("Foo", "Wisc");
  NodeId b = t.add_node("Bar", "Wisc");
  NodeId c = t.add_node("Baz", "Utah");
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.node(a).name, "Foo");
  EXPECT_EQ(t.az_of(b), "Wisc");
  EXPECT_EQ(t.find_node("Baz"), c);
  EXPECT_FALSE(t.find_node("Nope").has_value());
}

TEST(Topology, DuplicateNameThrows) {
  Topology t;
  t.add_node("A", "az1");
  EXPECT_THROW(t.add_node("A", "az2"), std::invalid_argument);
}

TEST(Topology, EmptyNameThrows) {
  Topology t;
  EXPECT_THROW(t.add_node("", "az"), std::invalid_argument);
  EXPECT_THROW(t.add_node("x", ""), std::invalid_argument);
}

TEST(Topology, AzGrouping) {
  Topology t;
  t.add_node("A", "east");
  t.add_node("B", "west");
  t.add_node("C", "east");
  auto azs = t.az_names();
  ASSERT_EQ(azs.size(), 2u);
  EXPECT_EQ(azs[0], "east");
  EXPECT_EQ(azs[1], "west");
  EXPECT_EQ(t.nodes_in_az("east"), (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(t.has_az("west"));
  EXPECT_FALSE(t.has_az("north"));
}

TEST(Topology, LinksSurviveNodeGrowth) {
  Topology t;
  NodeId a = t.add_node("A", "az");
  NodeId b = t.add_node("B", "az");
  LinkSpec s;
  s.latency = millis(5);
  s.bandwidth_bps = mbps(100);
  t.set_link(a, b, s);
  t.add_node("C", "az");  // must not invalidate existing link
  const LinkSpec* l = t.link(a, b);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->latency, millis(5));
  EXPECT_EQ(t.link(b, a), nullptr);  // directed
}

TEST(Topology, BidirLink) {
  Topology t;
  NodeId a = t.add_node("A", "az");
  NodeId b = t.add_node("B", "az");
  LinkSpec s;
  s.latency = millis(3);
  t.set_link_bidir(a, b, s);
  EXPECT_NE(t.link(a, b), nullptr);
  EXPECT_NE(t.link(b, a), nullptr);
}

TEST(TopologyParser, ParsesNodesAndLinks) {
  auto res = parse_topology(R"(
# comment
node Foo az Wisc
node Bar az Utah

link Foo Bar lat_ms 17.8 bw_mbps 361.82
bilink Bar Foo lat_ms 1 bw_mbps 10 pipe north
)");
  ASSERT_TRUE(res.is_ok()) << res.message();
  Topology& t = res.value();
  EXPECT_EQ(t.num_nodes(), 2u);
  const LinkSpec* l = t.link(0, 1);
  ASSERT_NE(l, nullptr);
  // bilink overwrote the directed link
  EXPECT_NEAR(to_ms(l->latency), 1.0, 1e-9);
  EXPECT_EQ(l->pipe_group, "north");
}

TEST(TopologyParser, ForwardLinkReferences) {
  auto res = parse_topology(R"(
link A B lat_ms 2 bw_mbps 5
node A az x
node B az y
)");
  ASSERT_TRUE(res.is_ok()) << res.message();
  EXPECT_NE(res.value().link(0, 1), nullptr);
}

TEST(TopologyParser, ReportsLineNumbers) {
  auto res = parse_topology("node A az x\nbogus line here\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("line 2"), std::string::npos);
}

TEST(TopologyParser, UnknownNodeInLink) {
  auto res = parse_topology("node A az x\nlink A Z lat_ms 1 bw_mbps 1\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("unknown node"), std::string::npos);
}

TEST(TopologyParser, MalformedLink) {
  auto res = parse_topology("node A az x\nnode B az y\nlink A B latms 1\n");
  EXPECT_FALSE(res.is_ok());
}

// --- AZ aggregators ---------------------------------------------------------

TEST(Topology, SetAzAggregatorValidation) {
  Topology t;
  NodeId a = t.add_node("A", "east");
  NodeId b = t.add_node("B", "west");
  EXPECT_FALSE(t.az_aggregator("east").has_value());
  EXPECT_THROW(t.set_az_aggregator("north", a), std::invalid_argument);
  EXPECT_THROW(t.set_az_aggregator("east", 99), std::out_of_range);
  // The designated aggregator must be a member of the AZ it serves.
  EXPECT_THROW(t.set_az_aggregator("east", b), std::invalid_argument);
  t.set_az_aggregator("east", a);
  EXPECT_EQ(t.az_aggregator("east"), a);
  EXPECT_EQ(t.aggregator_for(a), a);
  EXPECT_FALSE(t.aggregator_for(b).has_value());
  // Re-designation overwrites rather than duplicating.
  NodeId c = t.add_node("C", "east");
  t.set_az_aggregator("east", c);
  EXPECT_EQ(t.az_aggregator("east"), c);
  EXPECT_EQ(t.aggregator_for(a), c);
}

TEST(TopologyParser, AggregatorDirective) {
  // Forward references are allowed, like links.
  auto res = parse_topology(R"(
aggregator east A
node A az east
node B az east
node C az west
aggregator west C
)");
  ASSERT_TRUE(res.is_ok()) << res.message();
  Topology& t = res.value();
  EXPECT_EQ(t.az_aggregator("east"), t.find_node("A"));
  EXPECT_EQ(t.az_aggregator("west"), t.find_node("C"));
  EXPECT_NE(t.describe().find("(aggregator A)"), std::string::npos);
}

TEST(TopologyParser, AggregatorErrors) {
  // Unknown node name.
  auto res = parse_topology("node A az x\naggregator x Z\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("unknown aggregator node"), std::string::npos);
  EXPECT_NE(res.message().find("line 2"), std::string::npos);
  // Known node, but not a member of the named AZ.
  res = parse_topology("node A az x\nnode B az y\naggregator x B\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("not a member"), std::string::npos);
  // Unknown AZ entirely (no node ever declared it).
  res = parse_topology("node A az x\naggregator nowhere A\n");
  ASSERT_FALSE(res.is_ok());
  // Missing operands.
  res = parse_topology("aggregator x\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("aggregator <az-name> <node-name>"),
            std::string::npos);
}

TEST(TopologyParser, NodeMembershipEdgeCases) {
  // A node with no AZ (zero regions) is a parse error.
  auto res = parse_topology("node A\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("node <name> az <az-name>"), std::string::npos);
  // Declaring the same node in two AZs is rejected — membership is exclusive.
  res = parse_topology("node A az east\nnode A az west\n");
  ASSERT_FALSE(res.is_ok());
  EXPECT_NE(res.message().find("duplicate node name"), std::string::npos);
  EXPECT_NE(res.message().find("line 2"), std::string::npos);
}

TEST(FleetTopology, StructureAndAggregators) {
  Topology t = fleet_topology(3, 4, 1.0, 10.0, 100.0);
  EXPECT_EQ(t.num_nodes(), 12u);
  ASSERT_EQ(t.az_names().size(), 3u);
  EXPECT_EQ(t.nodes_in_az("az1"), (std::vector<NodeId>{4, 5, 6, 7}));
  // First node of each AZ is its aggregator.
  EXPECT_EQ(t.az_aggregator("az0"), NodeId{0});
  EXPECT_EQ(t.az_aggregator("az2"), NodeId{8});
  EXPECT_EQ(t.aggregator_for(6), NodeId{4});
  // Full mesh; intra-AZ links are fast, inter-AZ links slow.
  EXPECT_NEAR(to_ms(t.link(4, 5)->latency), 1.0, 1e-9);
  EXPECT_NEAR(to_ms(t.link(4, 8)->latency), 10.0, 1e-9);
  EXPECT_NEAR(t.link(0, 11)->bandwidth_bps / 1e6, 100.0, 1e-9);
  EXPECT_NE(t.link(11, 0), nullptr);  // bidirectional
  EXPECT_THROW(fleet_topology(0, 4), std::invalid_argument);
}

// --- paper presets ----------------------------------------------------------

TEST(Ec2Topology, MatchesPaperStructure) {
  Topology t = ec2_topology();
  EXPECT_EQ(t.num_nodes(), 8u);
  auto azs = t.az_names();
  ASSERT_EQ(azs.size(), 4u);
  EXPECT_EQ(t.nodes_in_az("North_California").size(), 2u);
  EXPECT_EQ(t.nodes_in_az("North_Virginia").size(), 4u);
  EXPECT_EQ(t.nodes_in_az("Oregon").size(), 1u);
  EXPECT_EQ(t.nodes_in_az("Ohio").size(), 1u);
  // Node "1" (the sender) is index 0.
  EXPECT_EQ(t.find_node("1"), NodeId{0});
  EXPECT_EQ(t.az_of(0), "North_California");
}

TEST(Ec2Topology, TableOneLinkParameters) {
  Topology t = ec2_topology();
  NodeId n1 = *t.find_node("1");
  NodeId n2 = *t.find_node("2");
  NodeId n7 = *t.find_node("7");   // Oregon
  NodeId n8 = *t.find_node("8");   // Ohio
  NodeId n3 = *t.find_node("3");   // North Virginia

  // one-way latency = Table I RTT / 2; bandwidth = half-throttled Thp
  const LinkSpec* intra = t.link(n1, n2);
  ASSERT_NE(intra, nullptr);
  EXPECT_NEAR(to_ms(intra->latency), 3.7 / 2, 1e-9);
  EXPECT_NEAR(intra->bandwidth_bps / 1e6, 333.5, 1e-9);

  EXPECT_NEAR(to_ms(t.link(n1, n7)->latency), 23.29 / 2, 1e-9);
  EXPECT_NEAR(t.link(n1, n7)->bandwidth_bps / 1e6, 56.5, 1e-9);
  EXPECT_NEAR(to_ms(t.link(n1, n8)->latency), 53.87 / 2, 1e-9);
  EXPECT_NEAR(t.link(n1, n8)->bandwidth_bps / 1e6, 44.5, 1e-9);
  EXPECT_NEAR(to_ms(t.link(n1, n3)->latency), 64.12 / 2, 1e-9);
  EXPECT_NEAR(t.link(n1, n3)->bandwidth_bps / 1e6, 37.0, 1e-9);
}

TEST(Ec2Topology, FullMeshFromSender) {
  Topology t = ec2_topology();
  for (NodeId b = 1; b < t.num_nodes(); ++b)
    EXPECT_NE(t.link(0, b), nullptr) << "missing link 1 -> " << b + 1;
}

TEST(CloudlabTopology, MatchesTableTwo) {
  Topology t = cloudlab_topology();
  EXPECT_EQ(t.num_nodes(), 5u);
  using namespace cloudlab;
  EXPECT_EQ(t.node(kUtah1).name, "Utah1");
  EXPECT_EQ(t.node(kWisconsin).name, "Wisconsin");

  EXPECT_NEAR(to_ms(t.link(kUtah1, kUtah2)->latency), 0.124 / 2, 1e-9);
  EXPECT_NEAR(t.link(kUtah1, kUtah2)->bandwidth_bps / 1e6, 9246.99, 1e-6);
  EXPECT_NEAR(to_ms(t.link(kUtah1, kWisconsin)->latency), 35.612 / 2, 1e-9);
  EXPECT_NEAR(t.link(kUtah1, kClemson)->bandwidth_bps / 1e6, 416.27, 1e-6);
  EXPECT_NEAR(to_ms(t.link(kUtah1, kMassachusetts)->latency), 48.083 / 2,
              1e-9);
}

TEST(Describe, MentionsNodesAndAzs) {
  Topology t = cloudlab_topology();
  std::string d = t.describe();
  EXPECT_NE(d.find("Utah1"), std::string::npos);
  EXPECT_NE(d.find("az Wisc"), std::string::npos);
  EXPECT_NE(d.find("lat_ms"), std::string::npos);
}

}  // namespace
}  // namespace stab
