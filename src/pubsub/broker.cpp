#include "pubsub/broker.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace stab::pubsub {

namespace {
constexpr uint8_t kPublish = 1;
constexpr uint8_t kSub = 2;
constexpr uint8_t kUnsub = 3;
}  // namespace

Broker::Broker(Stabilizer& stabilizer, BrokerOptions options)
    : stabilizer_(stabilizer), options_(std::move(options)) {
  stabilizer_.set_delivery_handler(
      [this](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
        on_delivery(origin, seq, payload);
      });
  // The default topic exists up front so reliable_frontier() works before
  // the first publish (the paper's single-topic mode).
  if (options_.track_active_sites) rebuild_predicate(kDefaultTopic);
}

Broker::Topic& Broker::topic_state(const std::string& topic) {
  auto [it, inserted] = topics_.try_emplace(topic);
  if (inserted && options_.track_active_sites) rebuild_predicate(topic);
  return it->second;
}

SeqNum Broker::publish(const std::string& topic, BytesView message,
                       uint64_t virtual_size) {
  Topic& state = topic_state(topic);
  Writer w(message.size() + topic.size() + 12);
  w.u8(kPublish);
  w.str(topic);
  w.blob(message);
  SeqNum seq = stabilizer_.send(std::move(w).take(), virtual_size);
  ++published_;
  if (options_.persistence) persist(topic, self(), seq, message);
  // Local subscribers get the message without a network hop.
  for (auto& [id, fn] : state.subscribers) {
    fn(self(), seq, message);
    ++delivered_;
  }
  return seq;
}

uint64_t Broker::subscribe(const std::string& topic, SubscriberFn fn) {
  Topic& state = topic_state(topic);
  uint64_t id = next_subscription_++;
  bool first = state.subscribers.empty();
  state.subscribers.emplace(id, std::move(fn));
  subscription_topic_.emplace(id, topic);
  if (first) {
    set_site_active(topic, self(), true);
    announce(kSub, topic);  // "after receiving a first subscription request,
                            // the broker becomes active as a member of the
                            // active broker list"
  }
  return id;
}

void Broker::unsubscribe(uint64_t subscription_id) {
  auto it = subscription_topic_.find(subscription_id);
  if (it == subscription_topic_.end()) return;
  std::string topic = it->second;
  subscription_topic_.erase(it);
  Topic& state = topic_state(topic);
  if (state.subscribers.erase(subscription_id) &&
      state.subscribers.empty()) {
    set_site_active(topic, self(), false);
    announce(kUnsub, topic);
  }
}

void Broker::announce(uint8_t kind, const std::string& topic) {
  Writer w(topic.size() + 8);
  w.u8(kind);
  w.str(topic);
  stabilizer_.send(std::move(w).take());
}

void Broker::on_delivery(NodeId origin, SeqNum seq, BytesView payload) {
  try {
    Reader r(payload);
    uint8_t kind = r.u8();
    std::string topic = r.str();
    if (kind == kPublish) {
      BytesView message = r.blob_view();
      if (options_.persistence) persist(topic, origin, seq, message);
      Topic& state = topic_state(topic);
      for (auto& [id, fn] : state.subscribers) {
        fn(origin, seq, message);
        ++delivered_;
      }
    } else if (kind == kSub) {
      set_site_active(topic, origin, true);
    } else if (kind == kUnsub) {
      set_site_active(topic, origin, false);
    } else {
      STAB_WARN("pubsub: unknown message kind " << int(kind));
    }
  } catch (const CodecError& e) {
    STAB_ERROR("pubsub: bad message from " << origin << ": " << e.what());
  }
}

void Broker::persist(const std::string& topic, NodeId origin, SeqNum seq,
                     BytesView message) {
  options_.persistence->put(
      "pubsub/" + topic + "/" + std::to_string(origin) + "/" +
          std::to_string(seq),
      message, stabilizer_.env().now());
  ++persisted_;
  // Report durability so publishers can await .persisted predicates.
  stabilizer_.report_stability("persisted", origin, seq);
}

void Broker::set_site_active(const std::string& topic, NodeId site,
                             bool active) {
  Topic& state = topic_state(topic);
  bool changed = active ? state.active_sites.insert(site).second
                        : state.active_sites.erase(site) > 0;
  if (changed && options_.track_active_sites) rebuild_predicate(topic);
}

void Broker::rebuild_predicate(const std::string& topic) {
  Topic& state = topics_[topic];
  // Reliable broadcast: every remote site with a subscriber must have the
  // message. With no remote subscribers, stability is local-only.
  std::ostringstream src;
  std::vector<NodeId> remotes;
  for (NodeId site : state.active_sites)
    if (site != self()) remotes.push_back(site);
  if (remotes.empty()) {
    src << "MIN($MYWNODE)";
  } else {
    src << "MIN(";
    for (size_t i = 0; i < remotes.size(); ++i) {
      if (i) src << ",";
      src << "$" << (remotes[i] + 1);
    }
    src << ")";
  }
  state.predicate_src = src.str();
  const std::string key = predicate_key(topic);
  Status st = state.predicate_registered
                  ? stabilizer_.change_predicate(key, state.predicate_src)
                  : stabilizer_.register_predicate(key, state.predicate_src);
  if (st.is_ok())
    state.predicate_registered = true;
  else
    STAB_ERROR("pubsub: predicate rebuild failed: " << st.message());
}

std::set<NodeId> Broker::active_sites(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? std::set<NodeId>{} : it->second.active_sites;
}

size_t Broker::local_subscribers(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.subscribers.size();
}

std::string Broker::current_predicate_source(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? std::string() : it->second.predicate_src;
}

std::vector<std::string> Broker::topics() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : topics_) out.push_back(name);
  return out;
}

}  // namespace stab::pubsub
