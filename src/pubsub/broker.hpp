// Pub/sub service on Stabilizer (paper §V-B), extended with the two
// features the paper names as easy follow-ons: multiple topics and
// persistence ("like support for multiple topics, persistence would be easy
// to introduce").
//
// One Broker per WAN node wraps the Stabilizer library with a thin layer:
// publish() multicasts through the asynchronous data plane; subscribe()
// registers a local callback per topic. Brokers announce per-topic
// SUB/UNSUB transitions on the same sequenced stream, maintaining the
// active-broker list; when `track_active_sites` is on, each topic keeps a
// reliable-broadcast predicate — MIN over sites that currently have
// subscribers — swapped via change_predicate as subscribers come and go
// (the §VI-D dynamic reconfiguration).
//
// With a LocalStore attached, every published and delivered message is
// persisted before the subscriber upcall, and the "persisted" stability
// level is reported — so publishers can define persistence-aware
// predicates like MIN(($ALLWNODES-$MYWNODE).persisted).
#pragma once

#include <functional>
#include <map>
#include <set>

#include "core/stabilizer.hpp"
#include "shard/shard_router.hpp"
#include "store/local_store.hpp"

namespace stab::pubsub {

struct BrokerOptions {
  /// Prefix for per-topic reliable-broadcast predicate keys; the topic name
  /// is appended ("<prefix>/<topic>").
  std::string predicate_key_prefix = "pubsub_reliable";
  /// Maintain the per-topic active-site predicates automatically (§VI-D).
  bool track_active_sites = true;
  /// Optional persistence: messages are stored (key
  /// "pubsub/<topic>/<origin>/<seq>") before subscriber delivery, and the
  /// persisted stability level is reported.
  store::LocalStore* persistence = nullptr;
};

/// The single unnamed topic used by the paper's experiments.
inline const std::string kDefaultTopic;

class Broker {
 public:
  using SubscriberFn =
      std::function<void(NodeId origin, SeqNum seq, BytesView message)>;

  Broker(Stabilizer& stabilizer, BrokerOptions options = {});

  NodeId self() const { return stabilizer_.self(); }

  // --- publisher side ------------------------------------------------------
  /// Multicasts a message on a topic. Local subscribers are delivered
  /// synchronously; remote sites via the data plane. Returns the sequence
  /// number for stability tracking.
  SeqNum publish(const std::string& topic, BytesView message,
                 uint64_t virtual_size = 0);
  SeqNum publish(BytesView message, uint64_t virtual_size = 0) {
    return publish(kDefaultTopic, message, virtual_size);
  }

  /// Frontier of the topic's reliable-broadcast predicate: every currently
  /// active subscriber site has received messages up to this seq.
  SeqNum reliable_frontier(const std::string& topic = kDefaultTopic) const {
    return stabilizer_.get_stability_frontier(predicate_key(topic));
  }
  /// Fires when the publish with this seq is reliable per the topic's
  /// current predicate.
  Status wait_reliable(SeqNum seq, Stabilizer::WaiterFn fn,
                       const std::string& topic = kDefaultTopic) {
    return stabilizer_.waitfor(seq, predicate_key(topic), std::move(fn));
  }

  // --- subscriber side ------------------------------------------------------
  /// Registers a local subscriber on a topic; the topic's 0 -> 1 transition
  /// broadcasts SUB so remote publishers add this site to the topic's
  /// active list. Returns a subscription id.
  uint64_t subscribe(const std::string& topic, SubscriberFn fn);
  uint64_t subscribe(SubscriberFn fn) {
    return subscribe(kDefaultTopic, std::move(fn));
  }
  /// Unregisters; a topic's 1 -> 0 transition broadcasts UNSUB.
  void unsubscribe(uint64_t subscription_id);

  // --- introspection ---------------------------------------------------------
  /// Sites (possibly including self) with at least one subscriber on the
  /// topic.
  std::set<NodeId> active_sites(
      const std::string& topic = kDefaultTopic) const;
  size_t local_subscribers(const std::string& topic = kDefaultTopic) const;
  std::string current_predicate_source(
      const std::string& topic = kDefaultTopic) const;
  std::vector<std::string> topics() const;
  uint64_t published() const { return published_; }
  uint64_t delivered_to_subscribers() const { return delivered_; }
  uint64_t persisted_messages() const { return persisted_; }

  std::string predicate_key(const std::string& topic) const {
    return options_.predicate_key_prefix + "/" + topic;
  }

  /// Sharded deployments (DESIGN.md §9) run one Broker per shard instance
  /// and route each topic to one shard with the same ShardRouter the data
  /// path uses — a topic's whole stream then lives in a single shard's
  /// sequence space, so per-topic FIFO delivery order is preserved across
  /// the scale-out. Publishers and subscribers pick the broker via this
  /// helper and need no further coordination (the routing is a pure
  /// function of the topic name).
  static uint32_t shard_of_topic(const std::string& topic,
                                 const shard::ShardRouter& router) {
    return router.shard_of(std::string_view(topic));
  }

  Stabilizer& stabilizer() { return stabilizer_; }

 private:
  struct Topic {
    std::map<uint64_t, SubscriberFn> subscribers;
    std::set<NodeId> active_sites;
    std::string predicate_src;
    bool predicate_registered = false;
  };

  void on_delivery(NodeId origin, SeqNum seq, BytesView payload);
  Topic& topic_state(const std::string& topic);
  void set_site_active(const std::string& topic, NodeId site, bool active);
  void rebuild_predicate(const std::string& topic);
  void announce(uint8_t kind, const std::string& topic);
  void persist(const std::string& topic, NodeId origin, SeqNum seq,
               BytesView message);

  Stabilizer& stabilizer_;
  BrokerOptions options_;
  std::map<std::string, Topic> topics_;
  std::map<uint64_t, std::string> subscription_topic_;
  uint64_t next_subscription_ = 1;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t persisted_ = 0;
};

}  // namespace stab::pubsub
