// Wall-clock Env implementation.
//
// A single timer thread owns a time-ordered queue and fires callbacks in
// order. Callbacks run on the timer thread, so users that share state with
// other threads must synchronize — the in-process and TCP transports funnel
// all Stabilizer work onto this thread to preserve the single-threaded
// discipline of the core.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "common/env.hpp"

namespace stab {

class RealtimeEnv : public Env {
 public:
  RealtimeEnv();
  ~RealtimeEnv() override;

  RealtimeEnv(const RealtimeEnv&) = delete;
  RealtimeEnv& operator=(const RealtimeEnv&) = delete;

  TimePoint now() const override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Run `fn` on the timer thread and wait for it to finish. Used to mutate
  /// Env-owned state safely from the outside (e.g. test setup).
  void run_sync(std::function<void()> fn);

  /// Stop the timer thread; pending timers are dropped. Called by the dtor.
  void shutdown();

 private:
  struct Entry {
    TimerId id;
    std::function<void()> fn;
  };

  void loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<TimePoint, Entry> queue_;
  TimerId next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace stab
