// Byte buffers and a little-endian wire codec.
//
// All Stabilizer wire messages (data plane frames, control plane ACKs,
// Paxos messages, pub/sub envelopes) are encoded with Writer/Reader. The
// codec is deliberately simple: fixed-width little-endian integers and
// length-prefixed blobs, which keeps encode/decode branch-free and easy to
// audit.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stab {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends little-endian encoded fields to a growable buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  /// Pre-sizes the buffer for `n` more bytes. Encoders that can compute
  /// their exact frame size call this (or the reserving constructor) so the
  /// whole encode is a single allocation; writing past the reservation
  /// stays correct, it just re-allocates.
  void reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { raw(&v, sizeof v); }
  void u32(uint32_t v) { raw(&v, sizeof v); }
  void u64(uint64_t v) { raw(&v, sizeof v); }
  void i64(int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  /// Length-prefixed blob (u32 length).
  void blob(BytesView b) {
    u32(static_cast<uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void raw(const void* p, size_t n) {
    const auto* c = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Thrown by Reader on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Consumes little-endian encoded fields from a byte view.
class Reader {
 public:
  explicit Reader(BytesView b) : data_(b) {}

  uint8_t u8() { return take<uint8_t>(); }
  uint16_t u16() { return take<uint16_t>(); }
  uint32_t u32() { return take<uint32_t>(); }
  uint64_t u64() { return take<uint64_t>(); }
  int64_t i64() { return take<int64_t>(); }
  double f64() { return take<double>(); }

  Bytes blob() {
    uint32_t n = u32();
    check(n);
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  BytesView blob_view() {
    uint32_t n = u32();
    check(n);
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string str() {
    auto v = blob_view();
    return to_string(v);
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T take() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(size_t n) const {
    if (pos_ + n > data_.size())
      throw CodecError("truncated message: need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()));
  }

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace stab
