// Bounded lock-free single-producer/single-consumer ring buffer — the
// ingestion lane of the control-plane pipeline (DESIGN.md §4f).
//
// One producer thread pushes, one consumer thread pops; neither ever blocks
// on a lock. The classic two-index scheme: the producer owns `tail_`, the
// consumer owns `head_`, and each side keeps a cached copy of the other's
// index so the common case touches one shared cache line only when its
// cached view says the ring might be full/empty (Rigtorp-style optimization;
// the obs registry's relaxed-atomic counters use the same "plain fast path,
// atomic fold point" idea).
//
// "Single consumer" may be a set of threads that serialize externally (the
// Stabilizer drains rings under its API mutex): the mutex hand-off provides
// the ordering the consumer-side relaxed loads of `head_` rely on.
//
// Capacity is rounded up to a power of two; one slot is never used, so
// size() can distinguish full from empty without a separate counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace stab {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Usable capacity (the allocation keeps one slot free).
  size_t capacity() const { return mask_; }

  /// Producer side. Returns false when the ring is full (the caller decides
  /// whether to yield-and-retry or divert; the pipeline counts a stall and
  /// retries — dropping would break the transport's FIFO contract).
  bool try_push(T&& v) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(v);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy — exact when called from either endpoint's
  /// thread, otherwise a consistent-enough snapshot for a depth gauge.
  size_t size_approx() const {
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  // Destructive-interference distance, pinned (gcc warns that the std::
  // constant is tuning-dependent and ABI-hazardous): 64 is the line size on
  // every deployment target; a too-small value costs false sharing, never
  // correctness.
  static constexpr size_t kCacheLine = 64;

  size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;

  // Producer-owned line: tail index plus the producer's cached head.
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;
  // Consumer-owned line: head index plus the consumer's cached tail.
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;
};

}  // namespace stab
