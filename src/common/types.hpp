// Core identifier and time types shared by every Stabilizer module.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace stab {

/// Index of a WAN node (a data center). Nodes are numbered densely from 0
/// in the order they appear in the cluster configuration. The paper's DSL
/// operand `$1` refers to the node whose configured name is "1" (names and
/// indices coincide in the paper's examples); resolution happens in the DSL
/// analyzer against the Topology.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sequence number of a message within one origin's stream. Stabilizer is
/// primary-site: each data item has one owner, and only the owner assigns
/// sequence numbers, so a single monotone counter per origin suffices
/// (paper §III-A). Frontier values use int64_t with -1 meaning "nothing
/// stable yet".
using SeqNum = int64_t;
inline constexpr SeqNum kNoSeq = -1;
/// Sentinel delivered to waitfor callbacks whose stream authority was fenced
/// (the waiting node was deposed as primary of the stream, so its pending
/// waiters can never be satisfied by the old sequence space). Distinct from
/// kNoSeq — "predicate removed/unsatisfiable" — so callers can tell the two
/// §III-E outcomes apart. See Stabilizer::WaitStatus.
inline constexpr SeqNum kFencedSeq = -2;

/// Epoch of a stream's sequencing authority. Epoch 0 is the stream's
/// configured origin node; each Paxos-committed failover promotion bumps it
/// by one. Stamped into DATA/DATABATCH/ACKBATCH/RESUME wire frames so
/// receivers can fence frames from a deposed (zombie) ex-primary.
using PrimaryEpoch = uint32_t;

/// Identifier of a stability type ("received", "persisted", or an
/// application-defined level such as "verified"). See control/stability_types.
using StabilityTypeId = uint32_t;

/// Virtual or real time. All modules treat time as a nanosecond count since
/// an arbitrary epoch so that the deterministic simulator and the real-time
/// environments expose the same arithmetic.
using Duration = std::chrono::nanoseconds;
using TimePoint = Duration;  // nanoseconds since epoch

inline constexpr TimePoint kTimeZero{0};

inline constexpr Duration micros(int64_t v) { return std::chrono::microseconds(v); }
inline constexpr Duration millis(int64_t v) { return std::chrono::milliseconds(v); }
inline constexpr Duration seconds(int64_t v) { return std::chrono::seconds(v); }

inline double to_ms(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}
inline double to_sec(Duration d) {
  return std::chrono::duration<double>(d).count();
}
inline Duration from_ms(double ms) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(ms));
}
inline Duration from_sec(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

/// Duration of transmitting `bytes` over a `bits_per_sec` link.
inline Duration transmit_time(uint64_t bytes, double bits_per_sec) {
  if (bits_per_sec <= 0) return Duration::zero();
  return from_sec(static_cast<double>(bytes) * 8.0 / bits_per_sec);
}

inline double mbps(double v) { return v * 1e6; }  // Mbit/s -> bit/s

}  // namespace stab
