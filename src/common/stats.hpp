// Small statistics helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace stab {

/// Accumulates samples; computes mean / percentiles on demand.
class Series {
 public:
  void add(double v) { samples_.push_back(v); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double s = 0;
    for (double v : samples_) s += v;
    return s;
  }
  double mean() const { return empty() ? 0.0 : sum() / count(); }
  double min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// p in [0,100]; nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * (sorted.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - lo;
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }
  double median() const { return percentile(50); }

  double stddev() const {
    if (count() < 2) return 0.0;
    double m = mean(), acc = 0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / (count() - 1));
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace stab
