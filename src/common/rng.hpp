// Deterministic pseudo-random number generation (SplitMix64 core).
//
// Everything stochastic in Stabilizer's tests, benches, and trace generator
// is seeded through Rng so runs reproduce exactly — a requirement for the
// deterministic-simulation experiments (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <cmath>

namespace stab {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Exponential with the given mean.
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0.
  double next_pareto(double xm, double alpha) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Log-normal with the given mu/sigma of the underlying normal.
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_normal());
  }

  /// Standard normal via Box-Muller.
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  uint64_t state_;
};

}  // namespace stab
