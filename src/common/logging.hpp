// Tiny leveled logger. Thread-safe, writes to stderr.
//
// Default level is kWarn so tests and benches stay quiet; examples raise it
// to kInfo to narrate what the library is doing.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace stab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

#define STAB_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::stab::log_level())) {                \
      std::ostringstream oss_;                                  \
      oss_ << expr;                                             \
      ::stab::detail::log_line(level, oss_.str());              \
    }                                                           \
  } while (0)

#define STAB_DEBUG(expr) STAB_LOG(::stab::LogLevel::kDebug, expr)
#define STAB_INFO(expr) STAB_LOG(::stab::LogLevel::kInfo, expr)
#define STAB_WARN(expr) STAB_LOG(::stab::LogLevel::kWarn, expr)
#define STAB_ERROR(expr) STAB_LOG(::stab::LogLevel::kError, expr)

}  // namespace stab
