// Minimal Status / Result<T> error-handling vocabulary.
//
// Stabilizer uses exceptions only for programming errors (codec corruption,
// precondition violations). Expected failures — a DSL syntax error, an
// unknown predicate key, a config typo — flow through Status/Result so that
// callers can react without unwinding.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace stab {

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string msg) { return Status(std::move(msg)); }

  bool is_ok() const { return !msg_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  const std::string& message() const {
    static const std::string kOk = "OK";
    return msg_ ? *msg_ : kOk;
  }

 private:
  explicit Status(std::string msg) : msg_(std::move(msg)) {}
  std::optional<std::string> msg_;
};

/// A value or an error message. Accessing value() on an error throws — use
/// is_ok() / operator bool first when failure is expected.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result error(std::string msg) { return Result(Err{std::move(msg)}); }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const std::string& message() const {
    static const std::string kOk = "OK";
    return err_ ? err_->msg : kOk;
  }

  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return std::move(*value_);
  }
  T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  struct Err {
    std::string msg;
  };
  explicit Result(Err e) : err_(std::move(e)) {}
  void require() const {
    if (!value_) throw std::runtime_error("Result error: " + err_->msg);
  }
  std::optional<T> value_;
  std::optional<Err> err_;
};

}  // namespace stab
