#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace stab {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[stab %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace stab
