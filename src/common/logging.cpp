#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

namespace stab {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  // Re-check the level with a relaxed atomic load so callers that reach here
  // directly (or raced a set_log_level) bail without touching the mutex —
  // filtered-out messages never serialize against active loggers.
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;

  // Format the full line into a local buffer first; g_mutex is held only for
  // the single write so concurrent logging threads contend on the fd hand-off,
  // not on formatting.
  char stack_buf[512];
  const int want = std::snprintf(stack_buf, sizeof(stack_buf), "[stab %s] %s\n",
                                 level_name(level), msg.c_str());
  const char* line = stack_buf;
  size_t len = want > 0 ? static_cast<size_t>(want) : 0;
  std::vector<char> heap_buf;
  if (len >= sizeof(stack_buf)) {
    heap_buf.resize(len + 1);
    std::snprintf(heap_buf.data(), heap_buf.size(), "[stab %s] %s\n",
                  level_name(level), msg.c_str());
    line = heap_buf.data();
  }
  if (len == 0) return;

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line, 1, len, stderr);
}
}  // namespace detail

}  // namespace stab
