#include "common/realtime_env.hpp"

#include <future>

namespace stab {

namespace {
TimePoint steady_now() {
  return std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now().time_since_epoch());
}
}  // namespace

RealtimeEnv::RealtimeEnv() : thread_([this] { loop(); }) {}

RealtimeEnv::~RealtimeEnv() { shutdown(); }

TimePoint RealtimeEnv::now() const { return steady_now(); }

TimerId RealtimeEnv::schedule_after(Duration delay, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) return kInvalidTimer;
  TimerId id = next_id_++;
  queue_.emplace(steady_now() + delay, Entry{id, std::move(fn)});
  cv_.notify_all();
  return id;
}

void RealtimeEnv::cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.id == id) {
      queue_.erase(it);
      return;
    }
  }
}

void RealtimeEnv::run_sync(std::function<void()> fn) {
  if (std::this_thread::get_id() == thread_.get_id()) {
    fn();  // already on the timer thread
    return;
  }
  std::promise<void> done;
  schedule_after(Duration::zero(), [&] {
    fn();
    done.set_value();
  });
  done.get_future().wait();
}

void RealtimeEnv::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void RealtimeEnv::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    TimePoint due = queue_.begin()->first;
    TimePoint current = steady_now();
    if (current < due) {
      cv_.wait_for(lock, due - current);
      continue;
    }
    auto entry = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    lock.unlock();
    entry.fn();
    lock.lock();
  }
}

}  // namespace stab
