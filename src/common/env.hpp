// Execution environment abstraction.
//
// Stabilizer's core is single-threaded and event-driven (paper §III-A:
// "Internally, Stabilizer is single-threaded"). Every module that needs the
// current time or a timer goes through Env, so identical code runs on:
//   * SimEnv        — virtual time, deterministic (src/sim), used by benches
//   * RealtimeEnv   — wall-clock timers on a dedicated thread, used by the
//                     in-process and TCP transports.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace stab {

using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Env {
 public:
  virtual ~Env() = default;

  /// Current time (virtual or wall-clock nanoseconds).
  virtual TimePoint now() const = 0;

  /// Run `fn` once after `delay`. Returns a handle usable with cancel().
  virtual TimerId schedule_after(Duration delay,
                                 std::function<void()> fn) = 0;

  /// Best-effort cancellation; a no-op if the timer already fired.
  virtual void cancel(TimerId id) = 0;

  /// Run `fn` as soon as possible (still asynchronously, preserving the
  /// single-threaded discipline).
  TimerId post(std::function<void()> fn) {
    return schedule_after(Duration::zero(), std::move(fn));
  }
};

}  // namespace stab
