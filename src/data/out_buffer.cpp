#include "data/out_buffer.hpp"

#include <stdexcept>

namespace stab::data {

void OutBuffer::push(SeqNum seq, Bytes payload, uint64_t virtual_size) {
  SeqNum expected = base_ + static_cast<SeqNum>(slots_.size());
  if (seq != expected)
    throw std::logic_error("OutBuffer: non-contiguous push (seq " +
                           std::to_string(seq) + ", expected " +
                           std::to_string(expected) + ")");
  buffered_bytes_ += payload.size() + virtual_size;
  slots_.push_back(Slot{seq, std::move(payload), virtual_size});
}

const OutBuffer::Slot* OutBuffer::get(SeqNum seq) const {
  if (seq < base_) return nullptr;
  size_t idx = static_cast<size_t>(seq - base_);
  if (idx >= slots_.size()) return nullptr;
  return &slots_[idx];
}

void OutBuffer::reset_base(SeqNum base) {
  if (!slots_.empty())
    throw std::logic_error("OutBuffer: reset_base on a non-empty buffer");
  if (base > base_) base_ = base;
}

void OutBuffer::reclaim_through(SeqNum upto) {
  while (!slots_.empty() && base_ <= upto) {
    buffered_bytes_ -=
        slots_.front().payload.size() + slots_.front().virtual_size;
    slots_.pop_front();
    ++base_;
  }
}

}  // namespace stab::data
