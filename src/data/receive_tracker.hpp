// Receive-side FIFO enforcement per origin stream.
//
// Transports deliver FIFO; losses (fault injection) create gaps. The tracker
// implements the go-back-N receive rule: accept exactly the next expected
// sequence number, drop stale duplicates and post-gap frames (the sender's
// retransmission refills the tail in order).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace stab::data {

class ReceiveTracker {
 public:
  explicit ReceiveTracker(size_t num_origins)
      : expected_(num_origins, 0) {}

  enum class Verdict { kAccept, kStaleDuplicate, kGap };

  /// Classifies an arriving seq for `origin`; kAccept advances the cursor.
  Verdict on_frame(NodeId origin, SeqNum seq) {
    SeqNum& exp = expected_.at(origin);
    if (seq < exp) return Verdict::kStaleDuplicate;
    if (seq > exp) return Verdict::kGap;
    ++exp;
    return Verdict::kAccept;
  }

  /// Highest contiguously received seq for `origin` (kNoSeq if none).
  SeqNum received_through(NodeId origin) const {
    return expected_.at(origin) - 1;
  }

  /// Recovery: resume expecting from `received_through + 1` (monotonic).
  void restore(NodeId origin, SeqNum received_through) {
    SeqNum& exp = expected_.at(origin);
    if (received_through + 1 > exp) exp = received_through + 1;
  }

  /// Failover epoch boundary: move the cursor to exactly
  /// `received_through + 1`, downward included. Used when a new primary's
  /// takeover start overlaps a prefix this node already consumed under the
  /// old epoch (the reconciliation round missed us): the overlapping seqs
  /// re-deliver under the new authority rather than being dropped as stale.
  /// Returns how far the cursor moved down (0 when it was a fast-forward,
  /// which restore() also covers).
  SeqNum reset(NodeId origin, SeqNum received_through) {
    SeqNum& exp = expected_.at(origin);
    SeqNum down = exp - (received_through + 1);
    exp = received_through + 1;
    return down > 0 ? down : 0;
  }

 private:
  std::vector<SeqNum> expected_;
};

}  // namespace stab::data
