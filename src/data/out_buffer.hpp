// Send-side sequencing and buffering.
//
// Sequencer: the primary-site sequence counter — only the owner of a data
// pool assigns sequence numbers (paper §III-A), so one monotone counter per
// origin suffices.
//
// OutBuffer: holds sent messages until every peer has acknowledged receipt,
// at which point "the buffer space is reclaimed" (§III-B). It also serves
// retransmission reads for the go-back-N reliability layer used on lossy
// links.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace stab::data {

class Sequencer {
 public:
  /// Sequence numbers start at 0 (so frontier kNoSeq = -1 naturally means
  /// "nothing stable").
  SeqNum next() { return next_++; }
  SeqNum last_assigned() const { return next_ - 1; }

  /// Recovery: never hand out a number <= `last` again (monotonic; a
  /// smaller argument is a no-op).
  void fast_forward(SeqNum last) {
    if (last + 1 > next_) next_ = last + 1;
  }

 private:
  SeqNum next_ = 0;
};

class OutBuffer {
 public:
  struct Slot {
    SeqNum seq;
    Bytes payload;
    uint64_t virtual_size;
    /// Encoded wire frame, filled lazily on first transmission and reused by
    /// every peer fan-out and go-back-N retransmit (encode-once). Shared so
    /// transports can hold the buffer refcounted after the slot is
    /// reclaimed. Not counted by buffered_bytes(): that figure models the
    /// paper's application buffer occupancy, and the cache is an encoding
    /// of the same payload, dropped with the slot on reclaim.
    mutable std::shared_ptr<const Bytes> encoded;
  };

  /// Appends a message; seq must be exactly last+1 (FIFO stream).
  void push(SeqNum seq, Bytes payload, uint64_t virtual_size);

  /// Message with this seq, or nullptr if reclaimed / never pushed.
  const Slot* get(SeqNum seq) const;

  /// Drops every message with seq <= upto (all peers have it).
  void reclaim_through(SeqNum upto);

  /// Recovery: restart the (empty) buffer at `base` so pushes continue a
  /// restored sequencer. Throws std::logic_error if messages are retained.
  void reset_base(SeqNum base);

  SeqNum base() const { return base_; }          // lowest retained seq
  SeqNum last() const { return base_ + static_cast<SeqNum>(slots_.size()) - 1; }
  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  uint64_t buffered_bytes() const { return buffered_bytes_; }

 private:
  SeqNum base_ = 0;  // seq of slots_.front()
  std::deque<Slot> slots_;
  uint64_t buffered_bytes_ = 0;
};

}  // namespace stab::data
