// Wire protocol of the Stabilizer data and control planes.
//
// Five frame families share each transport link:
//   * DATA     — sequenced payload of one origin's stream (data plane),
//   * DATABATCH— several consecutive small DATA frames of one stream packed
//     into a single transport frame (the data-plane fast path's small-frame
//     coalescing; receivers unpack and run the ordinary per-message path, so
//     FIFO order and the receive tracker see no difference),
//   * ACKBATCH — batched monotonic stability reports (control plane),
//   * RESUME   — a restarted node's session announcement: "I am epoch E and
//     hold your stream through seq S"; the receiver rewinds go-back-N to
//     S+1 and re-issues its cumulative reports (crash–restart rejoin),
//   * REPORTBATCH — deferred control plane: the merged cumulative report
//     vectors of one or more reporters in a single frame. A mirror running
//     deferred propagation flushes its own vector on a timer/delta
//     threshold; an AZ aggregator max-merges its members' vectors and
//     forwards them long-haul as one frame. Entries are plain (extra-free)
//     monotonic reports — reports carrying extra bytes stay on ACKBATCH.
// Control frames are tiny and sent continuously; data frames stream as fast
// as the link allows — the paper's control/data separation means neither
// ever blocks waiting for the other.
//
// Kind bytes >= 0x40 are reserved for application frames multiplexed onto
// the same links (Stabilizer::send_raw); peek_kind reports them as unknown.
//
// Every encoder precomputes its exact frame size so encoding is a single
// allocation (Writer never grows mid-encode).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace stab::data {

enum class FrameKind : uint8_t {
  kData = 1,
  kAckBatch = 2,
  kResume = 3,
  kDataBatch = 4,
  kReportBatch = 5,
};

struct DataFrame {
  NodeId origin = kInvalidNode;
  SeqNum seq = kNoSeq;
  Bytes payload;
  /// Bytes of payload that exist only "on the wire" (trace replay padding);
  /// receivers see it via the transport's wire_size.
  uint64_t virtual_size = 0;
  /// Epoch of the stream's sequencing authority (failover fencing): receivers
  /// drop frames stamped with an epoch older than the one they have learned
  /// for `origin`'s stream, which silences a zombie ex-primary.
  PrimaryEpoch primary_epoch = 0;
};

/// Zero-copy view of one decoded DATA message: `payload` aliases the frame
/// buffer it was decoded from (or, on the send side, an OutBuffer slot) and
/// is valid only while that buffer lives. The hot receive path uses this
/// instead of DataFrame to avoid one payload copy per delivery.
struct DataView {
  NodeId origin = kInvalidNode;
  SeqNum seq = kNoSeq;
  BytesView payload;
  uint64_t virtual_size = 0;
  PrimaryEpoch primary_epoch = 0;
};

/// A run of consecutive messages of one origin's stream: entry i carries
/// seq first_seq + i. Entries are views for the same reason as DataView —
/// encode packs OutBuffer slots without copying, decode hands out slices of
/// the arriving frame. An encoded batch is never empty.
struct DataBatchFrame {
  NodeId origin = kInvalidNode;
  SeqNum first_seq = kNoSeq;
  /// One epoch for the whole batch: a batch is packed from one sender's
  /// contiguous send-buffer run, which is always issued under one authority.
  PrimaryEpoch primary_epoch = 0;
  struct Entry {
    BytesView payload;
    uint64_t virtual_size = 0;
  };
  std::vector<Entry> entries;
};

struct AckEntry {
  NodeId about_origin = kInvalidNode;  // whose stream the report concerns
  StabilityTypeId type = 0;
  SeqNum seq = kNoSeq;
  Bytes extra;  // uninterpreted application bytes (usually empty)
};

struct AckBatchFrame {
  NodeId reporter = kInvalidNode;
  /// The reporter's own-stream primary epoch at send time. A deposed
  /// ex-primary keeps stamping the epoch it was fenced at, so receivers can
  /// reject its whole control-plane output (acks from a zombie are truthful
  /// receipts but must not keep influencing reclamation/flow control once
  /// the cluster has moved on).
  PrimaryEpoch primary_epoch = 0;
  std::vector<AckEntry> entries;
};

/// One plain monotonic report: "reporter's `type` frontier on `about_origin`'s
/// stream has reached `seq`". The extra-free subset of AckEntry — anything
/// carrying application bytes travels on ACKBATCH even in deferred mode.
struct ReportEntry {
  NodeId about_origin = kInvalidNode;
  StabilityTypeId type = 0;
  SeqNum seq = kNoSeq;
};

/// One reporter's flushed cumulative vector inside a REPORTBATCH. The epoch
/// is the *reporter's* own-stream primary epoch (not the forwarder's): an
/// aggregator relays vectors it did not produce, and fencing must judge the
/// node whose receipts these are.
struct ReportBlock {
  NodeId reporter = kInvalidNode;
  PrimaryEpoch primary_epoch = 0;
  std::vector<ReportEntry> entries;
};

/// Deferred-mode control frame: the merged report vectors of `blocks.size()`
/// reporters. A mirror's flush carries one block (its own); an aggregator's
/// long-haul flush carries one block per AZ member it has absorbed since its
/// last flush. Receivers apply every block exactly as if it had arrived as
/// that reporter's own ACKBATCH — merging is associative because reports are
/// cumulative maxima.
struct ReportBatchFrame {
  /// The node that encoded and sent this frame (mirror or aggregator). Used
  /// for aggregator loop prevention, not for fencing — fencing is per block.
  NodeId forwarder = kInvalidNode;
  std::vector<ReportBlock> blocks;
};

/// Session announcement from a restarted peer, tailored per destination.
/// Duplicate delivery is harmless: receivers ignore epochs they have
/// already processed, so the sender re-announces (from the retransmit
/// probe) until the destination's RESUME *reply* confirms receipt — only a
/// frame sent causally after the announcement proves the announcement
/// arrived; unrelated in-flight ack traffic proves nothing.
struct ResumeFrame {
  NodeId sender = kInvalidNode;
  uint64_t epoch = 0;  // sender's new session epoch (>= 1 after a restart)
  /// Highest seq of the *destination's* stream the sender holds
  /// contiguously; the destination rewinds its cursor to this + 1.
  SeqNum receive_through = kNoSeq;
  /// false: announcement — the receiver must answer with a reply carrying
  /// its own (epoch, receive_through). true: reply — never answered, which
  /// dampens the exchange to announcement -> reply even when both sides
  /// restarted concurrently.
  bool reply = false;
  /// The sender's own-stream primary epoch (failover fencing, same rule as
  /// AckBatchFrame::primary_epoch): a fenced ex-primary's RESUME must not
  /// rewind anyone's go-back-N cursor.
  PrimaryEpoch primary_epoch = 0;
};

/// Shard-tagged link envelope (DESIGN.md §9). A keyspace-sharded node runs
/// one Stabilizer instance per shard; when several shards multiplex one
/// transport link, every frame of shard s travels wrapped in
///   SHARD  u8 kind (0x50) | u16 shard | inner frame bytes
/// so the receiving ShardMux can demultiplex straight into shard s's
/// delivery path without touching any other shard's locks. The envelope is
/// a *transport-layer* construct: it claims one kind byte (0x50) of the
/// application range, and the wrapped inner frame — DATA, ACKBATCH, or any
/// raw application frame — is what the shard's Stabilizer sees.
inline constexpr uint8_t kShardEnvelopeKind = 0x50;
inline constexpr size_t kShardEnvelopeBytes = 1 + 2;  // kind + u16 shard

/// Zero-copy view of a decoded shard envelope: `inner` aliases `frame`.
struct ShardFrameView {
  uint32_t shard = 0;
  BytesView inner;
};

Bytes encode_shard_frame(uint32_t shard, BytesView inner);
/// True iff the leading kind byte is the shard envelope.
bool is_shard_frame(BytesView frame);
/// Throws CodecError on malformed input (including shard > u16 range at
/// encode time — a mux never has 65k shards).
ShardFrameView decode_shard_view(BytesView frame);

Bytes encode(const DataFrame& frame);
Bytes encode(const AckBatchFrame& frame);
Bytes encode(const ResumeFrame& frame);
/// Throws std::invalid_argument on an empty batch (an empty batch is never
/// a valid wire frame, so producing one is a programming error).
Bytes encode(const DataBatchFrame& frame);
/// Throws std::invalid_argument when the frame has no blocks (a flush with
/// nothing to say must simply not be sent). Empty *blocks* are allowed on
/// the wire but the Stabilizer never produces them.
Bytes encode(const ReportBatchFrame& frame);

/// Encode a DATA frame straight from a payload view (the encode-once path:
/// no intermediate DataFrame copy of the payload).
Bytes encode_data(NodeId origin, SeqNum seq, BytesView payload,
                  uint64_t virtual_size, PrimaryEpoch primary_epoch = 0);

/// Peeks the frame kind; nullopt on an empty buffer or an unknown /
/// application-reserved (>= 0x40) kind byte.
std::optional<FrameKind> peek_kind(BytesView frame);

/// Decoders throw CodecError on malformed input (transports are trusted to
/// deliver whole frames; corruption is a programming error in this system).
DataFrame decode_data(BytesView frame);
/// Zero-copy decode: the returned payload aliases `frame`.
DataView decode_data_view(BytesView frame);
/// Zero-copy decode; throws CodecError on malformed input *and* on an
/// empty batch (the encoder never produces one).
DataBatchFrame decode_data_batch(BytesView frame);
AckBatchFrame decode_ack_batch(BytesView frame);
ReportBatchFrame decode_report_batch(BytesView frame);
ResumeFrame decode_resume(BytesView frame);

/// Fold every live thread's batched wire.* accumulator residue into the
/// process-wide registry (obs::global()), making the codec volume counters
/// exact at a quiesce point — node shutdown, end-of-run export, a scrape.
/// Callable from any thread; exact once codec traffic has stopped, bounded
/// best-effort (one in-flight batch may slide) while it hasn't. No-op in a
/// -DSTAB_OBS=OFF build.
void flush_wire_counters();

}  // namespace stab::data
