// Wire protocol of the Stabilizer data and control planes.
//
// Three frame families share each transport link:
//   * DATA    — sequenced payload of one origin's stream (data plane),
//   * ACKBATCH— batched monotonic stability reports (control plane),
//   * RESUME  — a restarted node's session announcement: "I am epoch E and
//     hold your stream through seq S"; the receiver rewinds go-back-N to
//     S+1 and re-issues its cumulative reports (crash–restart rejoin).
// Control frames are tiny and sent continuously; data frames stream as fast
// as the link allows — the paper's control/data separation means neither
// ever blocks waiting for the other.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace stab::data {

enum class FrameKind : uint8_t {
  kData = 1,
  kAckBatch = 2,
  kResume = 3,
};

struct DataFrame {
  NodeId origin = kInvalidNode;
  SeqNum seq = kNoSeq;
  Bytes payload;
  /// Bytes of payload that exist only "on the wire" (trace replay padding);
  /// receivers see it via the transport's wire_size.
  uint64_t virtual_size = 0;
};

struct AckEntry {
  NodeId about_origin = kInvalidNode;  // whose stream the report concerns
  StabilityTypeId type = 0;
  SeqNum seq = kNoSeq;
  Bytes extra;  // uninterpreted application bytes (usually empty)
};

struct AckBatchFrame {
  NodeId reporter = kInvalidNode;
  std::vector<AckEntry> entries;
};

/// Session announcement from a restarted peer, tailored per destination.
/// Duplicate delivery is harmless: receivers ignore epochs they have
/// already processed, so the sender re-announces (from the retransmit
/// probe) until the destination's RESUME *reply* confirms receipt — only a
/// frame sent causally after the announcement proves the announcement
/// arrived; unrelated in-flight ack traffic proves nothing.
struct ResumeFrame {
  NodeId sender = kInvalidNode;
  uint64_t epoch = 0;  // sender's new session epoch (>= 1 after a restart)
  /// Highest seq of the *destination's* stream the sender holds
  /// contiguously; the destination rewinds its cursor to this + 1.
  SeqNum receive_through = kNoSeq;
  /// false: announcement — the receiver must answer with a reply carrying
  /// its own (epoch, receive_through). true: reply — never answered, which
  /// dampens the exchange to announcement -> reply even when both sides
  /// restarted concurrently.
  bool reply = false;
};

Bytes encode(const DataFrame& frame);
Bytes encode(const AckBatchFrame& frame);
Bytes encode(const ResumeFrame& frame);

/// Peeks the frame kind; nullopt on an empty buffer.
std::optional<FrameKind> peek_kind(BytesView frame);

/// Decoders throw CodecError on malformed input (transports are trusted to
/// deliver whole frames; corruption is a programming error in this system).
DataFrame decode_data(BytesView frame);
AckBatchFrame decode_ack_batch(BytesView frame);
ResumeFrame decode_resume(BytesView frame);

}  // namespace stab::data
