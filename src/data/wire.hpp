// Wire protocol of the Stabilizer data and control planes.
//
// Two frame families share each transport link:
//   * DATA    — sequenced payload of one origin's stream (data plane),
//   * ACKBATCH— batched monotonic stability reports (control plane).
// Control frames are tiny and sent continuously; data frames stream as fast
// as the link allows — the paper's control/data separation means neither
// ever blocks waiting for the other.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace stab::data {

enum class FrameKind : uint8_t {
  kData = 1,
  kAckBatch = 2,
};

struct DataFrame {
  NodeId origin = kInvalidNode;
  SeqNum seq = kNoSeq;
  Bytes payload;
  /// Bytes of payload that exist only "on the wire" (trace replay padding);
  /// receivers see it via the transport's wire_size.
  uint64_t virtual_size = 0;
};

struct AckEntry {
  NodeId about_origin = kInvalidNode;  // whose stream the report concerns
  StabilityTypeId type = 0;
  SeqNum seq = kNoSeq;
  Bytes extra;  // uninterpreted application bytes (usually empty)
};

struct AckBatchFrame {
  NodeId reporter = kInvalidNode;
  std::vector<AckEntry> entries;
};

Bytes encode(const DataFrame& frame);
Bytes encode(const AckBatchFrame& frame);

/// Peeks the frame kind; nullopt on an empty buffer.
std::optional<FrameKind> peek_kind(BytesView frame);

/// Decoders throw CodecError on malformed input (transports are trusted to
/// deliver whole frames; corruption is a programming error in this system).
DataFrame decode_data(BytesView frame);
AckBatchFrame decode_ack_batch(BytesView frame);

}  // namespace stab::data
