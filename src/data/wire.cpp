#include "data/wire.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace stab::data {

// Codec-level accounting lives in the process-wide registry (obs::global()):
// the codec is stateless and has no node identity. The function-local
// statics resolve each counter once; obs::global() is a leaky singleton so
// the references stay valid through shutdown. Updates batch in thread-local
// accumulators and fold into the shared counters every 16 ops, keeping the
// two atomic RMWs off the per-frame path — wire.* volume counters may
// therefore lag the truth by up to 15 ops per call site per thread.
#if STAB_OBS_ENABLED
#define WIRE_COUNT(counter_name, bytes_name, nbytes)                       \
  do {                                                                     \
    static obs::Counter& c_ = obs::global().counter(counter_name);         \
    static obs::Counter& b_ = obs::global().counter(bytes_name);           \
    thread_local uint64_t pending_count_ = 0, pending_bytes_ = 0;          \
    ++pending_count_;                                                      \
    pending_bytes_ += (nbytes);                                            \
    if (pending_count_ >= 16) {                                            \
      c_.inc(pending_count_);                                              \
      b_.inc(pending_bytes_);                                              \
      pending_count_ = 0;                                                  \
      pending_bytes_ = 0;                                                  \
    }                                                                      \
  } while (0)
#else
#define WIRE_COUNT(counter_name, bytes_name, nbytes) \
  do {                                               \
  } while (0)
#endif

// Frame layouts (all integers little-endian). Every family carries a u32
// primary epoch for failover fencing: DATA/DATABATCH stamp the epoch of the
// authority that sequenced the carried messages; ACKBATCH/RESUME stamp the
// sender's own-stream epoch (its credential that it has not been deposed).
//   DATA      u8 kind | u32 origin | u32 epoch | i64 seq | u64 virtual_size
//             | blob payload
//   DATABATCH u8 kind | u32 origin | u32 epoch | i64 first_seq | u32 count
//             | count x { blob payload | u64 virtual_size }
//   ACKBATCH  u8 kind | u32 reporter | u32 epoch | u32 count
//             | count x { u32 origin | u32 type | i64 seq | blob extra }
//   RESUME    u8 kind | u32 sender | u32 epoch_p | u64 epoch
//             | i64 receive_through | u8 reply

Bytes encode_data(NodeId origin, SeqNum seq, BytesView payload,
                  uint64_t virtual_size, PrimaryEpoch primary_epoch) {
  Writer w(1 + 4 + 4 + 8 + 8 + 4 + payload.size());
  w.u8(static_cast<uint8_t>(FrameKind::kData));
  w.u32(origin);
  w.u32(primary_epoch);
  w.i64(seq);
  w.u64(virtual_size);
  w.blob(payload);
  Bytes out = std::move(w).take();
  WIRE_COUNT("wire.data_encodes", "wire.data_encode_bytes", out.size());
  return out;
}

Bytes encode(const DataFrame& frame) {
  return encode_data(frame.origin, frame.seq, frame.payload,
                     frame.virtual_size, frame.primary_epoch);
}

Bytes encode(const DataBatchFrame& frame) {
  if (frame.entries.empty())
    throw std::invalid_argument("DATABATCH must carry at least one message");
  size_t body = 0;
  for (const DataBatchFrame::Entry& e : frame.entries)
    body += 4 + e.payload.size() + 8;
  Writer w(1 + 4 + 4 + 8 + 4 + body);
  w.u8(static_cast<uint8_t>(FrameKind::kDataBatch));
  w.u32(frame.origin);
  w.u32(frame.primary_epoch);
  w.i64(frame.first_seq);
  w.u32(static_cast<uint32_t>(frame.entries.size()));
  for (const DataBatchFrame::Entry& e : frame.entries) {
    w.blob(e.payload);
    w.u64(e.virtual_size);
  }
  Bytes out = std::move(w).take();
  WIRE_COUNT("wire.batch_encodes", "wire.batch_encode_bytes", out.size());
  return out;
}

Bytes encode(const AckBatchFrame& frame) {
  size_t body = 0;
  for (const AckEntry& e : frame.entries) body += 4 + 4 + 8 + 4 + e.extra.size();
  Writer w(1 + 4 + 4 + 4 + body);
  w.u8(static_cast<uint8_t>(FrameKind::kAckBatch));
  w.u32(frame.reporter);
  w.u32(frame.primary_epoch);
  w.u32(static_cast<uint32_t>(frame.entries.size()));
  for (const AckEntry& e : frame.entries) {
    w.u32(e.about_origin);
    w.u32(e.type);
    w.i64(e.seq);
    w.blob(e.extra);
  }
  Bytes out = std::move(w).take();
  WIRE_COUNT("wire.ack_encodes", "wire.ack_encode_bytes", out.size());
  return out;
}

Bytes encode(const ResumeFrame& frame) {
  Writer w(1 + 4 + 4 + 8 + 8 + 1);
  w.u8(static_cast<uint8_t>(FrameKind::kResume));
  w.u32(frame.sender);
  w.u32(frame.primary_epoch);
  w.u64(frame.epoch);
  w.i64(frame.receive_through);
  w.u8(frame.reply ? 1 : 0);
  Bytes out = std::move(w).take();
  WIRE_COUNT("wire.resume_encodes", "wire.resume_encode_bytes", out.size());
  return out;
}

std::optional<FrameKind> peek_kind(BytesView frame) {
  if (frame.empty()) return std::nullopt;
  uint8_t k = frame[0];
  if (k == static_cast<uint8_t>(FrameKind::kData)) return FrameKind::kData;
  if (k == static_cast<uint8_t>(FrameKind::kAckBatch))
    return FrameKind::kAckBatch;
  if (k == static_cast<uint8_t>(FrameKind::kResume)) return FrameKind::kResume;
  if (k == static_cast<uint8_t>(FrameKind::kDataBatch))
    return FrameKind::kDataBatch;
  return std::nullopt;
}

DataFrame decode_data(BytesView frame) {
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kData))
    throw CodecError("not a DATA frame");
  DataFrame out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.seq = r.i64();
  out.virtual_size = r.u64();
  out.payload = r.blob();
  return out;
}

DataView decode_data_view(BytesView frame) {
  WIRE_COUNT("wire.data_decodes", "wire.data_decode_bytes", frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kData))
    throw CodecError("not a DATA frame");
  DataView out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.seq = r.i64();
  out.virtual_size = r.u64();
  out.payload = r.blob_view();
  return out;
}

DataBatchFrame decode_data_batch(BytesView frame) {
  WIRE_COUNT("wire.batch_decodes", "wire.batch_decode_bytes", frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kDataBatch))
    throw CodecError("not a DATABATCH frame");
  DataBatchFrame out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.first_seq = r.i64();
  uint32_t n = r.u32();
  if (n == 0) throw CodecError("empty DATABATCH");
  out.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DataBatchFrame::Entry e;
    e.payload = r.blob_view();
    e.virtual_size = r.u64();
    out.entries.push_back(e);
  }
  return out;
}

AckBatchFrame decode_ack_batch(BytesView frame) {
  WIRE_COUNT("wire.ack_decodes", "wire.ack_decode_bytes", frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kAckBatch))
    throw CodecError("not an ACKBATCH frame");
  AckBatchFrame out;
  out.reporter = r.u32();
  out.primary_epoch = r.u32();
  uint32_t n = r.u32();
  out.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AckEntry e;
    e.about_origin = r.u32();
    e.type = r.u32();
    e.seq = r.i64();
    e.extra = r.blob();
    out.entries.push_back(std::move(e));
  }
  return out;
}

ResumeFrame decode_resume(BytesView frame) {
  WIRE_COUNT("wire.resume_decodes", "wire.resume_decode_bytes", frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kResume))
    throw CodecError("not a RESUME frame");
  ResumeFrame out;
  out.sender = r.u32();
  out.primary_epoch = r.u32();
  out.epoch = r.u64();
  out.receive_through = r.i64();
  out.reply = r.u8() != 0;
  return out;
}

}  // namespace stab::data
