#include "data/wire.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

#if STAB_OBS_ENABLED
#include <array>
#include <atomic>
#include <mutex>
#include <vector>
#endif

namespace stab::data {

// Codec-level accounting lives in the process-wide registry (obs::global()):
// the codec is stateless and has no node identity. Updates batch in a
// per-thread accumulator (one slot per call site) and fold into the shared
// counters every 16 ops, keeping the two atomic RMWs off the per-frame path.
//
// Flushability: every live thread's accumulator is registered in a global
// list, so flush_wire_counters() can fold the residue (up to 15 ops per
// site per thread) on demand — end-of-run exports read exact wire.* values
// (Stabilizer's destructor and the metrics endpoint both flush). The slots
// are relaxed atomics: the owning thread is the only writer mid-run (plain
// load/add/store, uncontended), and a flusher's exchange is only exact once
// the codec threads have quiesced — a mid-traffic flush can race an owner's
// read-modify-write and at worst re-home one in-flight batch, so live
// scrapes remain bounded-stale while quiesced reads are exact. A thread's
// accumulator also self-flushes when the thread exits.
#if STAB_OBS_ENABLED
namespace {

enum WireSite : size_t {
  kDataEnc,
  kBatchEnc,
  kAckEnc,
  kReportEnc,
  kResumeEnc,
  kDataDec,
  kBatchDec,
  kAckDec,
  kReportDec,
  kResumeDec,
  kNumWireSites,
};

struct WireSiteCounters {
  obs::Counter* ops = nullptr;
  obs::Counter* bytes = nullptr;
};

std::array<WireSiteCounters, kNumWireSites>& site_counters() {
  // obs::global() is a leaky singleton, so these pointers stay valid
  // through shutdown (including the thread-exit self-flush below).
  static std::array<WireSiteCounters, kNumWireSites> tbl = [] {
    auto& g = obs::global();
    std::array<WireSiteCounters, kNumWireSites> t;
    t[kDataEnc] = {&g.counter("wire.data_encodes"),
                   &g.counter("wire.data_encode_bytes")};
    t[kBatchEnc] = {&g.counter("wire.batch_encodes"),
                    &g.counter("wire.batch_encode_bytes")};
    t[kAckEnc] = {&g.counter("wire.ack_encodes"),
                  &g.counter("wire.ack_encode_bytes")};
    t[kReportEnc] = {&g.counter("wire.report_encodes"),
                     &g.counter("wire.report_encode_bytes")};
    t[kResumeEnc] = {&g.counter("wire.resume_encodes"),
                     &g.counter("wire.resume_encode_bytes")};
    t[kDataDec] = {&g.counter("wire.data_decodes"),
                   &g.counter("wire.data_decode_bytes")};
    t[kBatchDec] = {&g.counter("wire.batch_decodes"),
                    &g.counter("wire.batch_decode_bytes")};
    t[kAckDec] = {&g.counter("wire.ack_decodes"),
                  &g.counter("wire.ack_decode_bytes")};
    t[kReportDec] = {&g.counter("wire.report_decodes"),
                     &g.counter("wire.report_decode_bytes")};
    t[kResumeDec] = {&g.counter("wire.resume_decodes"),
                     &g.counter("wire.resume_decode_bytes")};
    return t;
  }();
  return tbl;
}

struct WireAccum {
  std::array<std::atomic<uint64_t>, kNumWireSites> ops{};
  std::array<std::atomic<uint64_t>, kNumWireSites> bytes{};

  WireAccum();
  ~WireAccum();

  void flush_self() {
    auto& tbl = site_counters();
    for (size_t s = 0; s < kNumWireSites; ++s) {
      const uint64_t n = ops[s].exchange(0, std::memory_order_relaxed);
      const uint64_t b = bytes[s].exchange(0, std::memory_order_relaxed);
      if (n) tbl[s].ops->inc(n);
      if (b) tbl[s].bytes->inc(b);
    }
  }
};

struct WireAccumList {
  std::mutex mu;
  std::vector<WireAccum*> live;
};

WireAccumList& accum_list() {
  static WireAccumList* l = new WireAccumList();  // leaky: thread-exit order
  return *l;
}

WireAccum::WireAccum() {
  std::lock_guard<std::mutex> lock(accum_list().mu);
  accum_list().live.push_back(this);
}

WireAccum::~WireAccum() {
  flush_self();
  std::lock_guard<std::mutex> lock(accum_list().mu);
  auto& live = accum_list().live;
  for (auto it = live.begin(); it != live.end(); ++it) {
    if (*it == this) {
      live.erase(it);
      break;
    }
  }
}

WireAccum& wire_accum() {
  thread_local WireAccum a;
  return a;
}

}  // namespace

#define WIRE_COUNT(site, nbytes)                                        \
  do {                                                                  \
    WireAccum& a_ = wire_accum();                                       \
    const uint64_t n_ =                                                 \
        a_.ops[site].load(std::memory_order_relaxed) + 1;               \
    const uint64_t b_ =                                                 \
        a_.bytes[site].load(std::memory_order_relaxed) + (nbytes);      \
    if (n_ >= 16) {                                                     \
      site_counters()[site].ops->inc(n_);                               \
      site_counters()[site].bytes->inc(b_);                             \
      a_.ops[site].store(0, std::memory_order_relaxed);                 \
      a_.bytes[site].store(0, std::memory_order_relaxed);               \
    } else {                                                            \
      a_.ops[site].store(n_, std::memory_order_relaxed);                \
      a_.bytes[site].store(b_, std::memory_order_relaxed);              \
    }                                                                   \
  } while (0)

void flush_wire_counters() {
  std::lock_guard<std::mutex> lock(accum_list().mu);
  for (WireAccum* a : accum_list().live) a->flush_self();
}

#else
#define WIRE_COUNT(site, nbytes) \
  do {                           \
  } while (0)

void flush_wire_counters() {}
#endif

// Frame layouts (all integers little-endian). Every family carries a u32
// primary epoch for failover fencing: DATA/DATABATCH stamp the epoch of the
// authority that sequenced the carried messages; ACKBATCH/RESUME stamp the
// sender's own-stream epoch (its credential that it has not been deposed).
//   DATA      u8 kind | u32 origin | u32 epoch | i64 seq | u64 virtual_size
//             | blob payload
//   DATABATCH u8 kind | u32 origin | u32 epoch | i64 first_seq | u32 count
//             | count x { blob payload | u64 virtual_size }
//   ACKBATCH  u8 kind | u32 reporter | u32 epoch | u32 count
//             | count x { u32 origin | u32 type | i64 seq | blob extra }
//   RESUME    u8 kind | u32 sender | u32 epoch_p | u64 epoch
//             | i64 receive_through | u8 reply
//   REPORTBATCH u8 kind | u32 forwarder | u32 nblocks
//             | nblocks x { u32 reporter | u32 epoch | u32 nentries
//               | nentries x { u32 origin | u32 type | i64 seq } }
// REPORTBATCH carries the block reporters' epochs (not the forwarder's):
// an aggregator relays vectors it did not produce, so fencing is per block.

Bytes encode_data(NodeId origin, SeqNum seq, BytesView payload,
                  uint64_t virtual_size, PrimaryEpoch primary_epoch) {
  Writer w(1 + 4 + 4 + 8 + 8 + 4 + payload.size());
  w.u8(static_cast<uint8_t>(FrameKind::kData));
  w.u32(origin);
  w.u32(primary_epoch);
  w.i64(seq);
  w.u64(virtual_size);
  w.blob(payload);
  Bytes out = std::move(w).take();
  WIRE_COUNT(kDataEnc, out.size());
  return out;
}

Bytes encode(const DataFrame& frame) {
  return encode_data(frame.origin, frame.seq, frame.payload,
                     frame.virtual_size, frame.primary_epoch);
}

Bytes encode(const DataBatchFrame& frame) {
  if (frame.entries.empty())
    throw std::invalid_argument("DATABATCH must carry at least one message");
  size_t body = 0;
  for (const DataBatchFrame::Entry& e : frame.entries)
    body += 4 + e.payload.size() + 8;
  Writer w(1 + 4 + 4 + 8 + 4 + body);
  w.u8(static_cast<uint8_t>(FrameKind::kDataBatch));
  w.u32(frame.origin);
  w.u32(frame.primary_epoch);
  w.i64(frame.first_seq);
  w.u32(static_cast<uint32_t>(frame.entries.size()));
  for (const DataBatchFrame::Entry& e : frame.entries) {
    w.blob(e.payload);
    w.u64(e.virtual_size);
  }
  Bytes out = std::move(w).take();
  WIRE_COUNT(kBatchEnc, out.size());
  return out;
}

Bytes encode(const AckBatchFrame& frame) {
  size_t body = 0;
  for (const AckEntry& e : frame.entries) body += 4 + 4 + 8 + 4 + e.extra.size();
  Writer w(1 + 4 + 4 + 4 + body);
  w.u8(static_cast<uint8_t>(FrameKind::kAckBatch));
  w.u32(frame.reporter);
  w.u32(frame.primary_epoch);
  w.u32(static_cast<uint32_t>(frame.entries.size()));
  for (const AckEntry& e : frame.entries) {
    w.u32(e.about_origin);
    w.u32(e.type);
    w.i64(e.seq);
    w.blob(e.extra);
  }
  Bytes out = std::move(w).take();
  WIRE_COUNT(kAckEnc, out.size());
  return out;
}

Bytes encode(const ReportBatchFrame& frame) {
  if (frame.blocks.empty())
    throw std::invalid_argument("REPORTBATCH must carry at least one block");
  size_t body = 0;
  for (const ReportBlock& b : frame.blocks)
    body += 4 + 4 + 4 + b.entries.size() * (4 + 4 + 8);
  Writer w(1 + 4 + 4 + body);
  w.u8(static_cast<uint8_t>(FrameKind::kReportBatch));
  w.u32(frame.forwarder);
  w.u32(static_cast<uint32_t>(frame.blocks.size()));
  for (const ReportBlock& b : frame.blocks) {
    w.u32(b.reporter);
    w.u32(b.primary_epoch);
    w.u32(static_cast<uint32_t>(b.entries.size()));
    for (const ReportEntry& e : b.entries) {
      w.u32(e.about_origin);
      w.u32(e.type);
      w.i64(e.seq);
    }
  }
  Bytes out = std::move(w).take();
  WIRE_COUNT(kReportEnc, out.size());
  return out;
}

Bytes encode(const ResumeFrame& frame) {
  Writer w(1 + 4 + 4 + 8 + 8 + 1);
  w.u8(static_cast<uint8_t>(FrameKind::kResume));
  w.u32(frame.sender);
  w.u32(frame.primary_epoch);
  w.u64(frame.epoch);
  w.i64(frame.receive_through);
  w.u8(frame.reply ? 1 : 0);
  Bytes out = std::move(w).take();
  WIRE_COUNT(kResumeEnc, out.size());
  return out;
}

// SHARD envelope: u8 kind (0x50) | u16 shard | inner frame bytes. The inner
// frame is appended raw (no length prefix) — the envelope always wraps one
// whole transport frame, so the inner extent is "the rest of the buffer".
// Not WIRE_COUNTed: the wrapped inner frame is counted by its own codec, and
// the mux keeps its own demux counters.
Bytes encode_shard_frame(uint32_t shard, BytesView inner) {
  if (shard > 0xFFFF) throw CodecError("shard id exceeds u16 envelope range");
  Writer w(kShardEnvelopeBytes + inner.size());
  w.u8(kShardEnvelopeKind);
  w.u16(static_cast<uint16_t>(shard));
  w.raw(inner.data(), inner.size());
  return std::move(w).take();
}

bool is_shard_frame(BytesView frame) {
  return !frame.empty() && frame[0] == kShardEnvelopeKind;
}

ShardFrameView decode_shard_view(BytesView frame) {
  Reader r(frame);
  if (r.u8() != kShardEnvelopeKind) throw CodecError("not a SHARD envelope");
  ShardFrameView out;
  out.shard = r.u16();
  out.inner = frame.subspan(kShardEnvelopeBytes);
  return out;
}

std::optional<FrameKind> peek_kind(BytesView frame) {
  if (frame.empty()) return std::nullopt;
  uint8_t k = frame[0];
  if (k == static_cast<uint8_t>(FrameKind::kData)) return FrameKind::kData;
  if (k == static_cast<uint8_t>(FrameKind::kAckBatch))
    return FrameKind::kAckBatch;
  if (k == static_cast<uint8_t>(FrameKind::kResume)) return FrameKind::kResume;
  if (k == static_cast<uint8_t>(FrameKind::kDataBatch))
    return FrameKind::kDataBatch;
  if (k == static_cast<uint8_t>(FrameKind::kReportBatch))
    return FrameKind::kReportBatch;
  return std::nullopt;
}

DataFrame decode_data(BytesView frame) {
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kData))
    throw CodecError("not a DATA frame");
  DataFrame out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.seq = r.i64();
  out.virtual_size = r.u64();
  out.payload = r.blob();
  return out;
}

DataView decode_data_view(BytesView frame) {
  WIRE_COUNT(kDataDec, frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kData))
    throw CodecError("not a DATA frame");
  DataView out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.seq = r.i64();
  out.virtual_size = r.u64();
  out.payload = r.blob_view();
  return out;
}

DataBatchFrame decode_data_batch(BytesView frame) {
  WIRE_COUNT(kBatchDec, frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kDataBatch))
    throw CodecError("not a DATABATCH frame");
  DataBatchFrame out;
  out.origin = r.u32();
  out.primary_epoch = r.u32();
  out.first_seq = r.i64();
  uint32_t n = r.u32();
  if (n == 0) throw CodecError("empty DATABATCH");
  out.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DataBatchFrame::Entry e;
    e.payload = r.blob_view();
    e.virtual_size = r.u64();
    out.entries.push_back(e);
  }
  return out;
}

AckBatchFrame decode_ack_batch(BytesView frame) {
  WIRE_COUNT(kAckDec, frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kAckBatch))
    throw CodecError("not an ACKBATCH frame");
  AckBatchFrame out;
  out.reporter = r.u32();
  out.primary_epoch = r.u32();
  uint32_t n = r.u32();
  out.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AckEntry e;
    e.about_origin = r.u32();
    e.type = r.u32();
    e.seq = r.i64();
    e.extra = r.blob();
    out.entries.push_back(std::move(e));
  }
  return out;
}

ReportBatchFrame decode_report_batch(BytesView frame) {
  WIRE_COUNT(kReportDec, frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kReportBatch))
    throw CodecError("not a REPORTBATCH frame");
  ReportBatchFrame out;
  out.forwarder = r.u32();
  uint32_t nblocks = r.u32();
  if (nblocks == 0) throw CodecError("empty REPORTBATCH");
  out.blocks.reserve(nblocks);
  for (uint32_t i = 0; i < nblocks; ++i) {
    ReportBlock b;
    b.reporter = r.u32();
    b.primary_epoch = r.u32();
    uint32_t n = r.u32();
    b.entries.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      ReportEntry e;
      e.about_origin = r.u32();
      e.type = r.u32();
      e.seq = r.i64();
      b.entries.push_back(e);
    }
    out.blocks.push_back(std::move(b));
  }
  return out;
}

ResumeFrame decode_resume(BytesView frame) {
  WIRE_COUNT(kResumeDec, frame.size());
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kResume))
    throw CodecError("not a RESUME frame");
  ResumeFrame out;
  out.sender = r.u32();
  out.primary_epoch = r.u32();
  out.epoch = r.u64();
  out.receive_through = r.i64();
  out.reply = r.u8() != 0;
  return out;
}

}  // namespace stab::data
