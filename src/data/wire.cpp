#include "data/wire.hpp"

namespace stab::data {

Bytes encode(const DataFrame& frame) {
  Writer w(frame.payload.size() + 32);
  w.u8(static_cast<uint8_t>(FrameKind::kData));
  w.u32(frame.origin);
  w.i64(frame.seq);
  w.u64(frame.virtual_size);
  w.blob(frame.payload);
  return std::move(w).take();
}

Bytes encode(const AckBatchFrame& frame) {
  Writer w(16 + frame.entries.size() * 24);
  w.u8(static_cast<uint8_t>(FrameKind::kAckBatch));
  w.u32(frame.reporter);
  w.u32(static_cast<uint32_t>(frame.entries.size()));
  for (const AckEntry& e : frame.entries) {
    w.u32(e.about_origin);
    w.u32(e.type);
    w.i64(e.seq);
    w.blob(e.extra);
  }
  return std::move(w).take();
}

Bytes encode(const ResumeFrame& frame) {
  Writer w(24);
  w.u8(static_cast<uint8_t>(FrameKind::kResume));
  w.u32(frame.sender);
  w.u64(frame.epoch);
  w.i64(frame.receive_through);
  w.u8(frame.reply ? 1 : 0);
  return std::move(w).take();
}

std::optional<FrameKind> peek_kind(BytesView frame) {
  if (frame.empty()) return std::nullopt;
  uint8_t k = frame[0];
  if (k == static_cast<uint8_t>(FrameKind::kData)) return FrameKind::kData;
  if (k == static_cast<uint8_t>(FrameKind::kAckBatch))
    return FrameKind::kAckBatch;
  if (k == static_cast<uint8_t>(FrameKind::kResume)) return FrameKind::kResume;
  return std::nullopt;
}

DataFrame decode_data(BytesView frame) {
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kData))
    throw CodecError("not a DATA frame");
  DataFrame out;
  out.origin = r.u32();
  out.seq = r.i64();
  out.virtual_size = r.u64();
  out.payload = r.blob();
  return out;
}

AckBatchFrame decode_ack_batch(BytesView frame) {
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kAckBatch))
    throw CodecError("not an ACKBATCH frame");
  AckBatchFrame out;
  out.reporter = r.u32();
  uint32_t n = r.u32();
  out.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AckEntry e;
    e.about_origin = r.u32();
    e.type = r.u32();
    e.seq = r.i64();
    e.extra = r.blob();
    out.entries.push_back(std::move(e));
  }
  return out;
}

ResumeFrame decode_resume(BytesView frame) {
  Reader r(frame);
  if (r.u8() != static_cast<uint8_t>(FrameKind::kResume))
    throw CodecError("not a RESUME frame");
  ResumeFrame out;
  out.sender = r.u32();
  out.epoch = r.u64();
  out.receive_through = r.i64();
  out.reply = r.u8() != 0;
  return out;
}

}  // namespace stab::data
