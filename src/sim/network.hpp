// Simulated wide-area network.
//
// Models exactly the properties the paper's experiments depend on:
//   * per-directed-link propagation latency (Tables I & II),
//   * bandwidth pipes — a transfer occupies its pipe for size/bandwidth;
//     links may share a pipe to model region-pair long-haul paths, so
//     replicating to two nodes behind the same pipe halves effective
//     per-destination bandwidth (this is the mechanism behind Fig 6's
//     MajorityRegions-vs-Paxos gap),
//   * lossless FIFO delivery per link (constant latency + serialized pipe),
//   * fault injection: links can be taken down (silent drop, like a WAN
//     blackhole — frames already in flight on the link are blackholed too,
//     and the pipe time they had reserved is refunded so post-heal sends see
//     the link's true bandwidth), iid drop probabilities (exercises the data
//     plane's retransmission path), and a global bandwidth scale factor
//     (models WAN-wide congestion collapse for chaos campaigns).
//
// Messages carry real frame bytes plus a `wire_size`; bandwidth is charged
// on wire_size so benches can replay multi-gigabyte traces without
// materializing payloads (virtual padding).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace stab::sim {

struct LinkParams {
  Duration latency = Duration::zero();
  double bandwidth_bps = 0;  // 0 = infinite
  int pipe = -1;             // -1 = dedicated pipe with bandwidth_bps
};

class SimNetwork {
 public:
  /// Handler invoked at the destination when a frame arrives. The view is
  /// valid for the duration of the call only — the delivery event owns the
  /// buffer (possibly shared with other in-flight deliveries of the same
  /// broadcast, see send_shared).
  using DeliveryHandler =
      std::function<void(NodeId src, BytesView frame, uint64_t wire_size)>;

  SimNetwork(Simulator& simulator, size_t num_nodes);

  size_t num_nodes() const { return nodes_.size(); }

  /// Create a shared bandwidth pipe; links referencing it contend for it.
  int make_pipe(double bandwidth_bps);

  /// Configure the directed link src -> dst. Must be called before send().
  void set_link(NodeId src, NodeId dst, LinkParams params);
  /// Configure both directions with the same parameters (separate pipes
  /// unless params.pipe is set — WAN paths are full-duplex).
  void set_link_bidir(NodeId a, NodeId b, LinkParams params);

  void set_delivery_handler(NodeId node, DeliveryHandler handler);

  /// Queue a frame on the link. Throws std::out_of_range if the link was
  /// never configured. Returns the scheduled delivery time, or nullopt if
  /// the frame was dropped (link down / random loss).
  std::optional<TimePoint> send(NodeId src, NodeId dst, Bytes frame,
                                uint64_t wire_size = 0);
  /// Same, but the in-flight delivery event holds a reference on the
  /// caller's buffer instead of a copy — N-way fan-out of one frame keeps a
  /// single allocation alive.
  std::optional<TimePoint> send_shared(NodeId src, NodeId dst,
                                       std::shared_ptr<const Bytes> frame,
                                       uint64_t wire_size = 0);

  // --- fault injection -----------------------------------------------------
  /// Taking a link down blackholes frames already in flight on it and
  /// refunds the pipe time they had reserved (exact for dedicated pipes;
  /// for shared pipes the refund is the link's own reservation, which is a
  /// conservative approximation). Bringing it back up starts clean.
  void set_link_up(NodeId src, NodeId dst, bool up);
  void set_node_up(NodeId node, bool up);  // all links to/from the node
  void set_drop_probability(NodeId src, NodeId dst, double p);
  void set_drop_rng_seed(uint64_t seed) { rng_ = Rng(seed); }
  /// Scale every pipe's effective bandwidth (chaos "bandwidth collapse").
  /// 1.0 = nominal; 0.1 = 10x slower. Must be > 0. Applies to future sends.
  void set_bandwidth_scale(double scale);
  double bandwidth_scale() const { return bandwidth_scale_; }

  // --- introspection for tests & benches -----------------------------------
  uint64_t bytes_sent(NodeId src, NodeId dst) const;
  uint64_t frames_delivered(NodeId dst) const;
  uint64_t frames_dropped() const { return dropped_; }
  Duration link_latency(NodeId src, NodeId dst) const;
  double link_bandwidth(NodeId src, NodeId dst) const;

 private:
  struct Pipe {
    double bandwidth_bps = 0;
    TimePoint busy_until = kTimeZero;
  };
  struct Link {
    bool configured = false;
    bool up = true;
    Duration latency = Duration::zero();
    int pipe = -1;
    double drop_probability = 0;
    uint64_t bytes_sent = 0;
    // Incremented each time the link goes down; frames capture the epoch at
    // send time and are blackholed at delivery if it no longer matches.
    uint64_t down_epoch = 0;
    // Pipe time currently reserved by this link's in-flight frames; refunded
    // to the pipe when the link goes down.
    Duration in_flight_xmit = Duration::zero();
  };
  struct Node {
    bool up = true;
    DeliveryHandler handler;
    uint64_t delivered = 0;
  };

  Link& link_at(NodeId src, NodeId dst);
  const Link& link_at(NodeId src, NodeId dst) const;

  Simulator& simulator_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;  // num_nodes^2, row-major [src][dst]
  std::vector<Pipe> pipes_;
  Rng rng_{0xfeedfacecafebeefULL};
  uint64_t dropped_ = 0;
  double bandwidth_scale_ = 1.0;
};

}  // namespace stab::sim
