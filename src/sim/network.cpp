#include "sim/network.hpp"

#include <stdexcept>
#include <utility>

#include "common/logging.hpp"

namespace stab::sim {

SimNetwork::SimNetwork(Simulator& simulator, size_t num_nodes)
    : simulator_(simulator),
      nodes_(num_nodes),
      links_(num_nodes * num_nodes) {}

int SimNetwork::make_pipe(double bandwidth_bps) {
  pipes_.push_back(Pipe{bandwidth_bps, kTimeZero});
  return static_cast<int>(pipes_.size() - 1);
}

SimNetwork::Link& SimNetwork::link_at(NodeId src, NodeId dst) {
  if (src >= nodes_.size() || dst >= nodes_.size())
    throw std::out_of_range("SimNetwork: node id out of range");
  return links_[src * nodes_.size() + dst];
}
const SimNetwork::Link& SimNetwork::link_at(NodeId src, NodeId dst) const {
  return const_cast<SimNetwork*>(this)->link_at(src, dst);
}

void SimNetwork::set_link(NodeId src, NodeId dst, LinkParams params) {
  Link& link = link_at(src, dst);
  link.configured = true;
  link.latency = params.latency;
  if (params.pipe >= 0) {
    if (static_cast<size_t>(params.pipe) >= pipes_.size())
      throw std::out_of_range("SimNetwork: unknown pipe");
    link.pipe = params.pipe;
  } else {
    link.pipe = make_pipe(params.bandwidth_bps);
  }
}

void SimNetwork::set_link_bidir(NodeId a, NodeId b, LinkParams params) {
  set_link(a, b, params);
  set_link(b, a, params);
}

void SimNetwork::set_delivery_handler(NodeId node, DeliveryHandler handler) {
  if (node >= nodes_.size())
    throw std::out_of_range("SimNetwork: node id out of range");
  nodes_[node].handler = std::move(handler);
}

std::optional<TimePoint> SimNetwork::send(NodeId src, NodeId dst, Bytes frame,
                                          uint64_t wire_size) {
  return send_shared(src, dst,
                     std::make_shared<const Bytes>(std::move(frame)),
                     wire_size);
}

std::optional<TimePoint> SimNetwork::send_shared(
    NodeId src, NodeId dst, std::shared_ptr<const Bytes> frame,
    uint64_t wire_size) {
  Link& link = link_at(src, dst);
  if (!link.configured)
    throw std::out_of_range("SimNetwork: link not configured");
  if (wire_size < frame->size()) wire_size = frame->size();

  if (!link.up || !nodes_[src].up || !nodes_[dst].up) {
    ++dropped_;
    return std::nullopt;
  }
  if (link.drop_probability > 0 && rng_.next_bool(link.drop_probability)) {
    ++dropped_;
    return std::nullopt;
  }

  link.bytes_sent += wire_size;
  Pipe& pipe = pipes_[static_cast<size_t>(link.pipe)];
  TimePoint start = std::max(simulator_.now(), pipe.busy_until);
  double effective_bps = pipe.bandwidth_bps * bandwidth_scale_;
  Duration xmit = pipe.bandwidth_bps > 0
                      ? transmit_time(wire_size, effective_bps)
                      : Duration::zero();
  pipe.busy_until = start + xmit;
  link.in_flight_xmit += xmit;
  TimePoint deliver_at = pipe.busy_until + link.latency;

  uint64_t epoch = link.down_epoch;
  simulator_.schedule_at(
      deliver_at,
      [this, src, dst, epoch, xmit, frame = std::move(frame), wire_size]() {
        Link& link = link_at(src, dst);
        if (link.down_epoch == epoch) {
          // Still the same link session: release our pipe reservation.
          link.in_flight_xmit -= xmit;
        }
        Node& node = nodes_[dst];
        if (!link.up || link.down_epoch != epoch || !node.up) {
          // Link went down while in flight (blackholed even if it came back
          // up — TCP sessions don't survive a path flap) or dest crashed.
          ++dropped_;
          return;
        }
        ++node.delivered;
        if (node.handler) node.handler(src, BytesView(*frame), wire_size);
      });
  return deliver_at;
}

void SimNetwork::set_link_up(NodeId src, NodeId dst, bool up) {
  Link& link = link_at(src, dst);
  if (link.up && !up) {
    ++link.down_epoch;
    // Refund the pipe time reserved by frames now blackholed so post-heal
    // traffic isn't queued behind transfers that will never complete.
    if (link.pipe >= 0) {
      Pipe& pipe = pipes_[static_cast<size_t>(link.pipe)];
      TimePoint floor = simulator_.now();
      pipe.busy_until =
          std::max(floor, pipe.busy_until - link.in_flight_xmit);
    }
    link.in_flight_xmit = Duration::zero();
  }
  link.up = up;
}

void SimNetwork::set_bandwidth_scale(double scale) {
  if (scale <= 0) throw std::invalid_argument("SimNetwork: scale must be > 0");
  bandwidth_scale_ = scale;
}

void SimNetwork::set_node_up(NodeId node, bool up) {
  if (node >= nodes_.size())
    throw std::out_of_range("SimNetwork: node id out of range");
  nodes_[node].up = up;
}

void SimNetwork::set_drop_probability(NodeId src, NodeId dst, double p) {
  link_at(src, dst).drop_probability = p;
}

uint64_t SimNetwork::bytes_sent(NodeId src, NodeId dst) const {
  return link_at(src, dst).bytes_sent;
}

uint64_t SimNetwork::frames_delivered(NodeId dst) const {
  if (dst >= nodes_.size())
    throw std::out_of_range("SimNetwork: node id out of range");
  return nodes_[dst].delivered;
}

Duration SimNetwork::link_latency(NodeId src, NodeId dst) const {
  return link_at(src, dst).latency;
}

double SimNetwork::link_bandwidth(NodeId src, NodeId dst) const {
  const Link& link = link_at(src, dst);
  if (link.pipe < 0) return 0;
  return pipes_[static_cast<size_t>(link.pipe)].bandwidth_bps;
}

}  // namespace stab::sim
