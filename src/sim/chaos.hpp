// Deterministic chaos engine for fault campaigns on the virtual clock.
//
// A campaign is a ChaosScript — a plain list of timestamped ChaosEvents —
// armed on a Simulator + SimNetwork by a ChaosSchedule. Everything is data:
// a campaign is reproducible from (seed, script) alone, so any failing
// property-test run can be replayed by feeding the printed seed back in.
//
// Fault vocabulary (the WAN failure modes the paper's §III-E story must
// degrade gracefully under):
//   * link flaps          — one directed or bidirectional link down/up,
//   * region partitions   — every cross-group link down, healed as a unit,
//   * loss bursts         — iid drop probability raised on links for a window,
//   * bandwidth collapse  — global pipe-bandwidth scale (congestion),
//   * node crash/restart  — the node leaves the network with full volatile
//     state loss; the harness's crash/restart handlers destroy and rebuild
//     the node (SimTransport reattach + snapshot/WAL recovery + RESUME).
//
// Overlapping faults compose: link-down is reference-counted per directed
// link, so healing a partition does not resurrect a link that an
// independent flap still holds down.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace stab::sim {

struct ChaosEvent {
  enum class Kind : uint8_t {
    kLinkDown,        // a -> b (and b -> a if bidir)
    kLinkUp,          // undo one matching kLinkDown
    kPartition,       // cross-`groups` links down (refcounted)
    kHeal,            // undo one matching kPartition (same groups)
    kLossSet,         // drop probability `value` on a -> b, or on every
                      // configured link when a == kInvalidNode
    kBandwidthScale,  // global pipe-bandwidth scale := value
    kCrash,           // node `a` crashes (volatile state lost)
    kRestart,         // node `a` comes back and rejoins
  };

  TimePoint at = kTimeZero;
  Kind kind = Kind::kLinkDown;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  bool bidir = true;
  double value = 0;
  std::vector<std::vector<NodeId>> groups;  // kPartition / kHeal
};

using ChaosScript = std::vector<ChaosEvent>;

// --- script builders ---------------------------------------------------------

/// Flap link a<->b: down at `at`, back up after `down_for`.
void add_link_flap(ChaosScript& script, TimePoint at, Duration down_for,
                   NodeId a, NodeId b);

/// Partition the nodes into `groups` at `at`; heal after `down_for`.
/// Nodes absent from every group are unaffected.
void add_partition(ChaosScript& script, TimePoint at, Duration down_for,
                   std::vector<std::vector<NodeId>> groups);

/// Raise loss on every link to `p` at `at`, restore `base_p` after `lasts`.
void add_loss_burst(ChaosScript& script, TimePoint at, Duration lasts,
                    double p, double base_p = 0);

/// Collapse global bandwidth to `scale` at `at`, restore 1.0 after `lasts`.
void add_bandwidth_collapse(ChaosScript& script, TimePoint at, Duration lasts,
                            double scale);

/// Crash node at `at`, restart it after `down_for`.
void add_crash_restart(ChaosScript& script, TimePoint at, Duration down_for,
                       NodeId node);

/// Kill node at `at` — crash with NO paired restart: the node is gone for
/// the remainder of the campaign (fail-stop). The failover and §III-E
/// predicate-adjust campaigns use this to model a permanently lost site.
void add_kill(ChaosScript& script, TimePoint at, NodeId node);

/// Stable sort by time (script order breaks ties) — call after building.
void finalize_script(ChaosScript& script);

// --- random campaign generation ---------------------------------------------

struct RandomCampaignParams {
  size_t num_nodes = 0;
  /// Faults are injected in [0, fault_window); every fault heals by
  /// heal_deadline so the post-campaign drain can assert convergence.
  Duration fault_window = seconds(15);
  Duration heal_deadline = seconds(20);
  int link_flaps = 3;
  int partitions = 1;
  int loss_bursts = 2;
  int bandwidth_collapses = 1;
  int crashes = 1;
  /// Nodes eligible for crash/restart (need persistence + a rejoin path);
  /// empty disables crashes regardless of `crashes`.
  std::vector<NodeId> crashable;
  double burst_loss_max = 0.15;
  double background_loss = 0;  // applied to all links at t=0 when > 0
};

/// Deterministically derive a script from (seed, params). Same inputs,
/// same script — byte for byte.
ChaosScript make_random_script(uint64_t seed, const RandomCampaignParams& p);

// --- execution ---------------------------------------------------------------

class ChaosSchedule {
 public:
  /// Called when a kCrash / kRestart event fires, after the network state
  /// change has been applied (node already marked down resp. up), so a
  /// restart handler can immediately send its RESUME announcements.
  using NodeHandler = std::function<void(NodeId node)>;

  ChaosSchedule(Simulator& simulator, SimNetwork& network);

  void set_crash_handler(NodeHandler handler) { crash_ = std::move(handler); }
  void set_restart_handler(NodeHandler handler) {
    restart_ = std::move(handler);
  }

  /// Schedule every event of the script on the simulator. May be called
  /// once per campaign.
  void arm(const ChaosScript& script);

  struct Counters {
    uint64_t links_downed = 0;
    uint64_t links_restored = 0;
    uint64_t partitions = 0;
    uint64_t heals = 0;
    uint64_t loss_changes = 0;
    uint64_t bandwidth_changes = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
  };
  const Counters& counters() const { return counters_; }

  bool node_down(NodeId node) const { return node_down_.at(node); }

 private:
  void apply(const ChaosEvent& event);
  void hold_down(NodeId a, NodeId b);     // refcounted directed link-down
  void release_down(NodeId a, NodeId b);  // refcounted directed link-up
  int& down_count(NodeId a, NodeId b);
  static bool cross_group(const std::vector<std::vector<NodeId>>& groups,
                          NodeId a, NodeId b);

  Simulator& simulator_;
  SimNetwork& network_;
  NodeHandler crash_;
  NodeHandler restart_;
  std::vector<int> down_counts_;  // num_nodes^2, row-major [src][dst]
  std::vector<bool> node_down_;
  Counters counters_;
};

}  // namespace stab::sim
