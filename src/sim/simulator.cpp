#include "sim/simulator.hpp"

#include <cassert>

namespace stab::sim {

TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  Key key{t, next_tie_++};
  TimerId id = key.tie;  // tie counter doubles as the timer id
  queue_.emplace(key, std::move(fn));
  timers_.emplace(id, key);
  return id;
}

void Simulator::cancel(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  queue_.erase(it->second);
  timers_.erase(it);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  assert(it->first.time >= now_);
  now_ = it->first.time;
  auto fn = std::move(it->second);
  timers_.erase(it->first.tie);
  queue_.erase(it);
  ++processed_;
  fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimePoint t) {
  while (!queue_.empty() && queue_.begin()->first.time <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_until_pred(const std::function<bool()>& pred,
                               TimePoint deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.begin()->first.time <= deadline) {
    step();
    if (pred()) return true;
  }
  return pred();
}

}  // namespace stab::sim
