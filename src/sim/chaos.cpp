#include "sim/chaos.hpp"

#include <algorithm>
#include <stdexcept>

namespace stab::sim {

// --- script builders ---------------------------------------------------------

void add_link_flap(ChaosScript& script, TimePoint at, Duration down_for,
                   NodeId a, NodeId b) {
  ChaosEvent down;
  down.at = at;
  down.kind = ChaosEvent::Kind::kLinkDown;
  down.a = a;
  down.b = b;
  script.push_back(down);
  ChaosEvent up = down;
  up.at = at + down_for;
  up.kind = ChaosEvent::Kind::kLinkUp;
  script.push_back(up);
}

void add_partition(ChaosScript& script, TimePoint at, Duration down_for,
                   std::vector<std::vector<NodeId>> groups) {
  ChaosEvent part;
  part.at = at;
  part.kind = ChaosEvent::Kind::kPartition;
  part.groups = groups;
  script.push_back(part);
  ChaosEvent heal;
  heal.at = at + down_for;
  heal.kind = ChaosEvent::Kind::kHeal;
  heal.groups = std::move(groups);
  script.push_back(heal);
}

void add_loss_burst(ChaosScript& script, TimePoint at, Duration lasts,
                    double p, double base_p) {
  ChaosEvent raise;
  raise.at = at;
  raise.kind = ChaosEvent::Kind::kLossSet;
  raise.value = p;
  script.push_back(raise);
  ChaosEvent restore = raise;
  restore.at = at + lasts;
  restore.value = base_p;
  script.push_back(restore);
}

void add_bandwidth_collapse(ChaosScript& script, TimePoint at, Duration lasts,
                            double scale) {
  ChaosEvent collapse;
  collapse.at = at;
  collapse.kind = ChaosEvent::Kind::kBandwidthScale;
  collapse.value = scale;
  script.push_back(collapse);
  ChaosEvent restore = collapse;
  restore.at = at + lasts;
  restore.value = 1.0;
  script.push_back(restore);
}

void add_crash_restart(ChaosScript& script, TimePoint at, Duration down_for,
                       NodeId node) {
  ChaosEvent crash;
  crash.at = at;
  crash.kind = ChaosEvent::Kind::kCrash;
  crash.a = node;
  script.push_back(crash);
  ChaosEvent restart = crash;
  restart.at = at + down_for;
  restart.kind = ChaosEvent::Kind::kRestart;
  script.push_back(restart);
}

void add_kill(ChaosScript& script, TimePoint at, NodeId node) {
  ChaosEvent crash;
  crash.at = at;
  crash.kind = ChaosEvent::Kind::kCrash;
  crash.a = node;
  script.push_back(crash);
}

void finalize_script(ChaosScript& script) {
  std::stable_sort(script.begin(), script.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) {
                     return x.at < y.at;
                   });
}

// --- random campaign generation ---------------------------------------------

namespace {

TimePoint pick_time(Rng& rng, Duration window) {
  return from_sec(rng.next_double() * to_sec(window));
}

Duration pick_duration(Rng& rng, Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  return lo + from_sec(rng.next_double() * to_sec(hi - lo));
}

}  // namespace

ChaosScript make_random_script(uint64_t seed, const RandomCampaignParams& p) {
  if (p.num_nodes < 2)
    throw std::invalid_argument("make_random_script: need >= 2 nodes");
  Rng rng(seed);
  ChaosScript script;

  if (p.background_loss > 0)
    add_loss_burst(script, kTimeZero, p.heal_deadline, p.background_loss,
                   p.background_loss);

  auto clamp_end = [&](TimePoint at, Duration want) {
    Duration room = p.heal_deadline - at;
    return want < room ? want : room;
  };

  for (int i = 0; i < p.link_flaps; ++i) {
    NodeId a = static_cast<NodeId>(rng.next_below(p.num_nodes));
    NodeId b = static_cast<NodeId>(rng.next_below(p.num_nodes - 1));
    if (b >= a) ++b;
    TimePoint at = pick_time(rng, p.fault_window);
    Duration down = pick_duration(rng, millis(200), seconds(3));
    add_link_flap(script, at, clamp_end(at, down), a, b);
  }

  for (int i = 0; i < p.partitions; ++i) {
    std::vector<std::vector<NodeId>> groups(2);
    for (NodeId n = 0; n < p.num_nodes; ++n)
      groups[rng.next_below(2)].push_back(n);
    // Both sides must be non-empty for the split to partition anything.
    if (groups[0].empty() || groups[1].empty()) {
      size_t full = groups[0].empty() ? 1 : 0;
      groups[1 - full].push_back(groups[full].back());
      groups[full].pop_back();
    }
    TimePoint at = pick_time(rng, p.fault_window);
    Duration down = pick_duration(rng, seconds(1), seconds(5));
    add_partition(script, at, clamp_end(at, down), std::move(groups));
  }

  for (int i = 0; i < p.loss_bursts; ++i) {
    TimePoint at = pick_time(rng, p.fault_window);
    Duration lasts = pick_duration(rng, millis(500), seconds(4));
    double loss = 0.01 + rng.next_double() * (p.burst_loss_max - 0.01);
    add_loss_burst(script, at, clamp_end(at, lasts), loss, p.background_loss);
  }

  for (int i = 0; i < p.bandwidth_collapses; ++i) {
    TimePoint at = pick_time(rng, p.fault_window);
    Duration lasts = pick_duration(rng, millis(500), seconds(4));
    double scale = 0.05 + rng.next_double() * 0.45;
    add_bandwidth_collapse(script, at, clamp_end(at, lasts), scale);
  }

  if (!p.crashable.empty()) {
    // Distinct victims so per-node crash/restart windows never overlap.
    std::vector<NodeId> victims = p.crashable;
    int crashes = std::min<int>(p.crashes, static_cast<int>(victims.size()));
    for (int i = 0; i < crashes; ++i) {
      size_t pick = rng.next_below(victims.size());
      NodeId node = victims[pick];
      victims.erase(victims.begin() + static_cast<ptrdiff_t>(pick));
      TimePoint at = pick_time(rng, p.fault_window / 2);
      Duration down = pick_duration(rng, seconds(2), seconds(8));
      add_crash_restart(script, at, clamp_end(at, down), node);
    }
  }

  finalize_script(script);
  return script;
}

// --- execution ---------------------------------------------------------------

ChaosSchedule::ChaosSchedule(Simulator& simulator, SimNetwork& network)
    : simulator_(simulator),
      network_(network),
      down_counts_(network.num_nodes() * network.num_nodes(), 0),
      node_down_(network.num_nodes(), false) {}

void ChaosSchedule::arm(const ChaosScript& script) {
  for (const ChaosEvent& event : script)
    simulator_.schedule_at(event.at, [this, event]() { apply(event); });
}

int& ChaosSchedule::down_count(NodeId a, NodeId b) {
  size_t n = network_.num_nodes();
  if (a >= n || b >= n)
    throw std::out_of_range("ChaosSchedule: node id out of range");
  return down_counts_[a * n + b];
}

void ChaosSchedule::hold_down(NodeId a, NodeId b) {
  if (++down_count(a, b) == 1) {
    network_.set_link_up(a, b, false);
    ++counters_.links_downed;
  }
}

void ChaosSchedule::release_down(NodeId a, NodeId b) {
  int& count = down_count(a, b);
  if (count == 0) return;  // already healed (defensive for hand-built scripts)
  if (--count == 0) {
    network_.set_link_up(a, b, true);
    ++counters_.links_restored;
  }
}

bool ChaosSchedule::cross_group(
    const std::vector<std::vector<NodeId>>& groups, NodeId a, NodeId b) {
  int ga = -1, gb = -1;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) {
      if (n == a) ga = static_cast<int>(g);
      if (n == b) gb = static_cast<int>(g);
    }
  }
  return ga >= 0 && gb >= 0 && ga != gb;
}

void ChaosSchedule::apply(const ChaosEvent& event) {
  size_t n = network_.num_nodes();
  switch (event.kind) {
    case ChaosEvent::Kind::kLinkDown:
      hold_down(event.a, event.b);
      if (event.bidir) hold_down(event.b, event.a);
      break;
    case ChaosEvent::Kind::kLinkUp:
      release_down(event.a, event.b);
      if (event.bidir) release_down(event.b, event.a);
      break;
    case ChaosEvent::Kind::kPartition:
      for (NodeId a = 0; a < n; ++a)
        for (NodeId b = 0; b < n; ++b)
          if (a != b && cross_group(event.groups, a, b)) hold_down(a, b);
      ++counters_.partitions;
      break;
    case ChaosEvent::Kind::kHeal:
      for (NodeId a = 0; a < n; ++a)
        for (NodeId b = 0; b < n; ++b)
          if (a != b && cross_group(event.groups, a, b)) release_down(a, b);
      ++counters_.heals;
      break;
    case ChaosEvent::Kind::kLossSet:
      if (event.a == kInvalidNode) {
        for (NodeId a = 0; a < n; ++a)
          for (NodeId b = 0; b < n; ++b)
            if (a != b) network_.set_drop_probability(a, b, event.value);
      } else {
        network_.set_drop_probability(event.a, event.b, event.value);
        if (event.bidir) network_.set_drop_probability(event.b, event.a,
                                                       event.value);
      }
      ++counters_.loss_changes;
      break;
    case ChaosEvent::Kind::kBandwidthScale:
      network_.set_bandwidth_scale(event.value);
      ++counters_.bandwidth_changes;
      break;
    case ChaosEvent::Kind::kCrash:
      if (node_down_[event.a]) break;  // already down: no double crash
      node_down_[event.a] = true;
      network_.set_node_up(event.a, false);
      ++counters_.crashes;
      if (crash_) crash_(event.a);
      break;
    case ChaosEvent::Kind::kRestart:
      if (!node_down_[event.a]) break;
      node_down_[event.a] = false;
      // Bring the node up *before* the handler runs so the rebuilt node's
      // RESUME announcements aren't dropped at their own source.
      network_.set_node_up(event.a, true);
      ++counters_.restarts;
      if (restart_) restart_(event.a);
      break;
  }
}

}  // namespace stab::sim
