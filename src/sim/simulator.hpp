// Deterministic discrete-event simulator with virtual time.
//
// The simulator is an Env, so every Stabilizer component runs unmodified on
// virtual time. Events at equal timestamps fire in scheduling order (stable
// FIFO tie-break), which makes whole-cluster runs bit-for-bit reproducible —
// the property all the paper-figure benches rely on (DESIGN.md §3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "common/env.hpp"
#include "common/types.hpp"

namespace stab::sim {

class Simulator : public Env {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Env interface -------------------------------------------------------
  TimePoint now() const override { return now_; }
  TimerId schedule_after(Duration delay, std::function<void()> fn) override {
    return schedule_at(now_ + (delay < Duration::zero() ? Duration::zero()
                                                        : delay),
                       std::move(fn));
  }
  void cancel(TimerId id) override;

  // --- simulation control --------------------------------------------------
  TimerId schedule_at(TimePoint t, std::function<void()> fn);

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(TimePoint t);

  /// Run until `pred()` turns true (checked after every event) or the queue
  /// drains or the clock passes `deadline`. Returns pred()'s final value.
  bool run_until_pred(const std::function<bool()>& pred, TimePoint deadline);

  size_t pending_events() const { return queue_.size(); }
  uint64_t events_processed() const { return processed_; }

 private:
  struct Key {
    TimePoint time;
    uint64_t tie;
    bool operator<(const Key& o) const {
      return time != o.time ? time < o.time : tie < o.tie;
    }
  };

  TimePoint now_ = kTimeZero;
  uint64_t next_tie_ = 1;
  uint64_t processed_ = 0;
  std::map<Key, std::function<void()>> queue_;
  std::unordered_map<TimerId, Key> timers_;  // id -> queue key, for cancel
};

}  // namespace stab::sim
