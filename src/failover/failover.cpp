#include "failover/failover.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stab::failover {

namespace {

// PROMOTE value replicated through Paxos: which node takes which stream
// under which epoch. start_seq is NOT in the ballot — it is computed by the
// winner's reconciliation round after the commit, because cursors gathered
// during the suspicion window are only an optimization (the election needs a
// unique winner; sequencing resume needs the authoritative max, which the
// winner collects from every live peer afterwards).
Bytes encode_promote(NodeId stream, PrimaryEpoch epoch, NodeId winner) {
  Writer w(12);
  w.u32(stream);
  w.u32(epoch);
  w.u32(winner);
  return std::move(w).take();
}

}  // namespace

FailoverManager::FailoverManager(FailoverOptions options, Stabilizer& stab)
    : options_(options), stab_(stab), link_(stab) {
  paxos::PaxosOptions popt;
  popt.members.resize(stab_.topology().num_nodes());
  for (NodeId n = 0; n < popt.members.size(); ++n) popt.members[n] = n;
  popt.self = stab_.self();
  popt.retry_interval = options_.paxos_retry;
  // PaxosNode installs its receive handler into link_; the manager routes
  // inbound 0x60-0x67 frames back through link_.deliver().
  paxos_ = std::make_unique<paxos::PaxosNode>(popt, link_);
  paxos_->set_commit_handler(
      [this](paxos::InstanceId, BytesView value) { on_promote_commit(value); });
  stab_.set_raw_frame_handler(
      [this](NodeId src, BytesView frame, uint64_t wire_size) {
        on_raw(src, frame, wire_size);
      });
}

FailoverManager::~FailoverManager() { stop(); }

void FailoverManager::start() {
  if (started_ || stopped_) return;
  started_ = true;
  last_alive_ = stab_.env().now();
  last_delivered_ = stab_.delivered_through(options_.stream);
  tick_timer_ = stab_.env().schedule_after(options_.lease_interval, [this] {
    tick_timer_ = kInvalidTimer;
    tick();
  });
}

void FailoverManager::stop() {
  if (stopped_) return;
  stopped_ = true;
  Env& env = stab_.env();
  if (tick_timer_ != kInvalidTimer) env.cancel(tick_timer_);
  if (gather_timer_ != kInvalidTimer) env.cancel(gather_timer_);
  if (rec_timer_ != kInvalidTimer) env.cancel(rec_timer_);
  tick_timer_ = gather_timer_ = rec_timer_ = kInvalidTimer;
  stab_.set_raw_frame_handler(nullptr);
}

// --- frame routing ------------------------------------------------------------

void FailoverManager::on_raw(NodeId src, BytesView frame,
                             uint64_t wire_size) {
  if (stopped_ || frame.empty()) return;
  const uint8_t kind = frame[0];
  if (kind >= 0x60 && kind <= 0x67) {
    link_.deliver(src, frame, wire_size);
    return;
  }
  switch (kind) {
    case kLeaseKind:
      on_lease(src, frame);
      break;
    case kSuspectKind:
      on_suspect(src, frame);
      break;
    case kTakeoverKind:
      try {
        Reader r(frame);
        r.u8();
        NodeId stream = r.u32();
        PrimaryEpoch epoch = r.u32();
        NodeId winner = r.u32();
        SeqNum start = r.i64();
        if (stream == options_.stream) apply_takeover(winner, epoch, start);
      } catch (const CodecError&) {
      }
      break;
    case kRecReqKind:
      on_rec_req(src, frame);
      break;
    case kRecReplyKind:
      on_rec_reply(src, frame);
      break;
    default:
      STAB_WARN("failover: node " << stab_.self() << ": unknown raw kind "
                                  << int(kind) << " from " << src);
      break;
  }
}

// --- tick: lease issue (authority) / detection poll (mirror) ------------------

void FailoverManager::tick() {
  if (stopped_) return;
  const NodeId self = stab_.self();
  const NodeId authority = stab_.stream_primary(options_.stream);

  if (authority == self && !stab_.self_fenced()) {
    issue_leases();
    // Re-announce the takeover alongside the lease until the whole fleet
    // has had a chance to learn it (laggards, healed partitions, and the
    // zombie ex-primary all need the announcement; it is idempotent).
    if (promoted_) broadcast_takeover();
  } else if (authority != self) {
    // Mirror: fold every liveness signal into the lease clock. Data-plane
    // delivery progress on the guarded stream and the authority's acks
    // about OUR stream both prove the authority alive — piggybacked
    // detection; the explicit LEASE only matters when everything is idle.
    const SeqNum delivered = stab_.delivered_through(options_.stream);
    const SeqNum acked = stab_.engine(self).acks().get(
        StabilityTypeRegistry::kReceived, authority);
    if (delivered > last_delivered_ || acked > last_ack_seen_) {
      last_delivered_ = std::max(last_delivered_, delivered);
      last_ack_seen_ = std::max(last_ack_seen_, acked);
      last_alive_ = stab_.env().now();
      clear_suspicion();
    }
    if (!suspecting_ &&
        stab_.env().now() - last_alive_ >= options_.lease_timeout) {
      // The lease window lapsed with no liveness signal of any kind — the
      // event that opens a failover episode in the trace timeline.
      STAB_TRACE(stab_.tracer(), stab_.env().now(),
                 obs::SpanEvent::kLeaseExpire, self, options_.stream, kNoSeq,
                 authority);
      start_suspicion();
    }
  }

  tick_timer_ = stab_.env().schedule_after(options_.lease_interval, [this] {
    tick_timer_ = kInvalidTimer;
    tick();
  });
}

void FailoverManager::issue_leases() {
  Writer w(17);
  w.u8(kLeaseKind);
  w.u32(options_.stream);
  w.u32(stab_.stream_epoch(options_.stream));
  w.i64(options_.stream == stab_.self()
            ? stab_.last_sent()
            : stab_.acting_last_sent(options_.stream));
  Bytes frame = std::move(w).take();
  for (NodeId peer = 0; peer < stab_.topology().num_nodes(); ++peer) {
    if (peer == stab_.self()) continue;
    stab_.send_raw(peer, frame);
    ++stats_.leases_sent;
  }
}

void FailoverManager::on_lease(NodeId src, BytesView frame) {
  try {
    Reader r(frame);
    r.u8();
    NodeId stream = r.u32();
    PrimaryEpoch epoch = r.u32();
    (void)r.i64();  // issuer's last sequenced seq (diagnostic)
    if (stream != options_.stream) return;
    if (src != stab_.stream_primary(stream) ||
        epoch != stab_.stream_epoch(stream))
      return;  // stale issuer: a zombie's lease renews nothing
    ++stats_.leases_received;
    last_alive_ = stab_.env().now();
    // A live lease from the current authority retracts any suspicion in
    // flight (false positive under jitter or a healed partition).
    clear_suspicion();
  } catch (const CodecError&) {
  }
}

// --- election -----------------------------------------------------------------

void FailoverManager::start_suspicion() {
  suspecting_ = true;
  ++stats_.suspicions;
  if (stats_.suspected_at == TimePoint{})
    stats_.suspected_at = stab_.env().now();
  const SeqNum cursor = stab_.delivered_through(options_.stream);
  suspect_cursors_[stab_.self()] =
      std::max(suspect_cursors_[stab_.self()], cursor);
  // seq carries this mirror's delivered prefix — the cursor it campaigns
  // with; peer names the primary under suspicion.
  STAB_TRACE(stab_.tracer(), stab_.env().now(), obs::SpanEvent::kSuspect,
             stab_.self(), options_.stream, cursor,
             stab_.stream_primary(options_.stream));

  Writer w(17);
  w.u8(kSuspectKind);
  w.u32(options_.stream);
  w.u32(stab_.stream_epoch(options_.stream));
  w.i64(cursor);
  Bytes frame = std::move(w).take();
  for (NodeId peer = 0; peer < stab_.topology().num_nodes(); ++peer) {
    if (peer == stab_.self() || peer == options_.stream) continue;
    stab_.send_raw(peer, frame);
  }

  if (gather_timer_ != kInvalidTimer) stab_.env().cancel(gather_timer_);
  gather_timer_ = stab_.env().schedule_after(options_.suspect_gather, [this] {
    gather_timer_ = kInvalidTimer;
    conclude_election();
  });
}

void FailoverManager::on_suspect(NodeId src, BytesView frame) {
  try {
    Reader r(frame);
    r.u8();
    NodeId stream = r.u32();
    PrimaryEpoch epoch = r.u32();
    SeqNum cursor = r.i64();
    if (stream != options_.stream) return;
    if (epoch != stab_.stream_epoch(stream)) return;  // old-regime suspicion
    // Record the cursor whether or not we suspect yet: a late suspecter's
    // own gather window then sees every earlier cursor, so whoever holds
    // the longest prefix eventually proposes even if suspicion onset is
    // staggered across mirrors.
    SeqNum& known = suspect_cursors_[src];
    known = std::max(known, cursor);
  } catch (const CodecError&) {
  }
}

void FailoverManager::conclude_election() {
  if (stopped_ || !suspecting_) return;
  // A takeover (or lease) that landed during the gather window already
  // cleared suspicion; getting here means the primary is still silent.
  NodeId candidate = kInvalidNode;
  SeqNum best = kNoSeq;
  for (const auto& [node, cursor] : suspect_cursors_) {
    if (candidate == kInvalidNode || cursor > best ||
        (cursor == best && node < candidate)) {
      candidate = node;
      best = cursor;
    }
  }
  if (candidate != stab_.self()) {
    // Not our promotion to drive. Keep suspecting: if the candidate is dead
    // too, its silence re-runs this decision at the next lease timeout.
    suspecting_ = false;
    last_alive_ = stab_.env().now();
    return;
  }
  ++stats_.elections_proposed;
  const PrimaryEpoch next_epoch = stab_.stream_epoch(options_.stream) + 1;
  paxos_->start_leadership();
  paxos_->propose(encode_promote(options_.stream, next_epoch, stab_.self()),
                  0, [](paxos::InstanceId) {});
  // Leave suspecting_ set: if the ballot loses to a competing proposer the
  // commit handler applies the winner; if Paxos stalls (no majority), the
  // next lease timeout re-proposes under a fresh ballot.
  suspecting_ = false;
  last_alive_ = stab_.env().now();
}

// --- promotion ----------------------------------------------------------------

void FailoverManager::on_promote_commit(BytesView value) {
  if (stopped_) return;
  try {
    Reader r(value);
    NodeId stream = r.u32();
    PrimaryEpoch epoch = r.u32();
    NodeId winner = r.u32();
    if (stream != options_.stream) return;
    apply_takeover(winner, epoch, kNoSeq);
    if (winner == stab_.self() && epoch == stab_.stream_epoch(stream) &&
        !promoted_)
      begin_reconciliation(epoch);
  } catch (const CodecError&) {
  }
}

void FailoverManager::apply_takeover(NodeId winner, PrimaryEpoch epoch,
                                     SeqNum start_seq) {
  const bool fresh = epoch > stab_.stream_epoch(options_.stream);
  Status st =
      stab_.observe_takeover(options_.stream, winner, epoch, start_seq);
  if (!st.is_ok()) return;  // stale or conflicting: core already decided
  if (fresh) {
    ++stats_.takeovers_applied;
    // seq is the winner's resume point (kNoSeq when learned from the PROMOTE
    // commit, before reconciliation has fixed it); peer names the winner.
    STAB_TRACE(stab_.tracer(), stab_.env().now(),
               obs::SpanEvent::kTakeoverApply, stab_.self(), options_.stream,
               start_seq, winner);
    // The deposed node no longer participates in data/ack exchange: stop
    // sending to it and release the send-buffer floor it pinned. (Raw
    // frames — TAKEOVER in particular — still reach it so the zombie
    // learns to self-fence.)
    if (options_.auto_exclude && winner != options_.stream)
      stab_.set_peer_excluded(options_.stream, true);
  }
  clear_suspicion();
  last_alive_ = stab_.env().now();
}

void FailoverManager::begin_reconciliation(PrimaryEpoch epoch) {
  reconciling_ = true;
  rec_epoch_ = epoch;
  rec_replies_.clear();
  rec_deadline_ = stab_.env().now() + options_.reconcile_timeout;
  reconcile_tick();
}

void FailoverManager::reconcile_tick() {
  if (stopped_ || !reconciling_) return;
  // Every live peer's delivered prefix bounds the resume point. Peers that
  // never reply before the deadline are treated as dead — safe, because a
  // prefix nobody in the surviving quorum saw was never everywhere-stable.
  bool all_replied = true;
  Writer w(9);
  w.u8(kRecReqKind);
  w.u32(options_.stream);
  w.u32(rec_epoch_);
  Bytes frame = std::move(w).take();
  for (NodeId peer = 0; peer < stab_.topology().num_nodes(); ++peer) {
    if (peer == stab_.self() || peer == options_.stream) continue;
    if (rec_replies_.count(peer)) continue;
    all_replied = false;
    stab_.send_raw(peer, frame);
    ++stats_.rec_requests_sent;
  }
  if (all_replied || stab_.env().now() >= rec_deadline_) {
    finish_reconciliation();
    return;
  }
  // Retry at a fraction of the deadline so one lost frame doesn't burn the
  // whole round.
  rec_timer_ =
      stab_.env().schedule_after(options_.reconcile_timeout / 4, [this] {
        rec_timer_ = kInvalidTimer;
        reconcile_tick();
      });
}

void FailoverManager::finish_reconciliation() {
  reconciling_ = false;
  SeqNum highest = stab_.delivered_through(options_.stream);
  for (const auto& [peer, seq] : rec_replies_)
    highest = std::max(highest, seq);
  Status st = stab_.adopt_stream(options_.stream, highest + 1, rec_epoch_);
  if (!st.is_ok()) {
    // A newer epoch superseded us between commit and adoption; the newer
    // winner's TAKEOVER already (or will) reposition this node.
    STAB_WARN("failover: node " << stab_.self() << ": adoption of stream "
                                << options_.stream << " superseded");
    return;
  }
  promoted_ = true;
  takeover_start_ = highest + 1;
  ++stats_.promotions_won;
  stats_.promoted_at = stab_.env().now();
  // seq is the adopted start seq — joined against the episode-opening
  // lease_expire/suspect records this closes the promotion latency span.
  STAB_TRACE(stab_.tracer(), stats_.promoted_at, obs::SpanEvent::kPromote,
             stab_.self(), options_.stream, takeover_start_, stab_.self());
  broadcast_takeover();
}

void FailoverManager::broadcast_takeover() {
  Writer w(21);
  w.u8(kTakeoverKind);
  w.u32(options_.stream);
  w.u32(rec_epoch_);
  w.u32(stab_.self());
  w.i64(takeover_start_);
  Bytes frame = std::move(w).take();
  // Deliberately includes the deposed node: the announcement is what turns
  // a partitioned zombie into a self-fenced one once the partition heals.
  for (NodeId peer = 0; peer < stab_.topology().num_nodes(); ++peer) {
    if (peer == stab_.self()) continue;
    stab_.send_raw(peer, frame);
  }
}

void FailoverManager::on_rec_req(NodeId src, BytesView frame) {
  try {
    Reader r(frame);
    r.u8();
    NodeId stream = r.u32();
    PrimaryEpoch epoch = r.u32();
    if (stream != options_.stream) return;
    Writer w(17);
    w.u8(kRecReplyKind);
    w.u32(stream);
    w.u32(epoch);
    w.i64(stab_.delivered_through(stream));
    stab_.send_raw(src, std::move(w).take());
  } catch (const CodecError&) {
  }
}

void FailoverManager::on_rec_reply(NodeId src, BytesView frame) {
  try {
    Reader r(frame);
    r.u8();
    NodeId stream = r.u32();
    PrimaryEpoch epoch = r.u32();
    SeqNum seq = r.i64();
    if (stream != options_.stream) return;
    if (!reconciling_ || epoch != rec_epoch_) return;
    SeqNum& known = rec_replies_[src];
    known = std::max(known, seq);
    ++stats_.rec_replies_received;
  } catch (const CodecError&) {
  }
}

void FailoverManager::clear_suspicion() {
  suspecting_ = false;
  if (gather_timer_ != kInvalidTimer) {
    stab_.env().cancel(gather_timer_);
    gather_timer_ = kInvalidTimer;
  }
}

}  // namespace stab::failover
