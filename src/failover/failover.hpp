// Primary failover: leased failure detection, Paxos-coordinated mirror
// promotion, and epoch fencing (DESIGN.md §6).
//
// One FailoverManager per node guards ONE origin stream (the one named in
// FailoverOptions::stream). The protocol has four phases:
//
//   1. Detection. The stream's sequencing authority broadcasts small LEASE
//      frames every lease_interval. Mirrors additionally treat ordinary
//      traffic as lease renewal — data-plane delivery progress on the
//      guarded stream, and the authority's acks about the mirror's own
//      stream — so a loaded primary never pays an extra heartbeat and an
//      idle one costs one tiny frame per interval. A mirror that sees no
//      signal for lease_timeout suspects the primary.
//
//   2. Election. Suspecting mirrors broadcast SUSPECT frames carrying their
//      delivered prefix, gather peers' cursors for suspect_gather, and the
//      mirror with the longest prefix (ties: lowest id) proposes
//      PROMOTE{stream, epoch+1, self} through the embedded Multi-Paxos
//      group. Competing proposers from overlapping suspicion windows are
//      resolved by ballot order; the first PROMOTE committed for an epoch
//      wins and later ones are ignored as stale.
//
//   3. Promotion. Every node applies the committed PROMOTE via
//      Stabilizer::observe_takeover — fencing the deposed primary
//      immediately. The winner then runs a reconciliation round (REC_REQ /
//      REC_REPLY) collecting every live peer's delivered prefix, resumes
//      sequencing from max+1 via Stabilizer::adopt_stream, and broadcasts
//      TAKEOVER (re-broadcast each tick) so laggards, partitioned nodes,
//      and the zombie ex-primary itself all learn the new authority.
//
//   4. Fencing. PrimaryEpoch stamps on every data/ack/RESUME frame let
//      peers reject the zombie's stale output (counted, never delivered);
//      the deposed node self-fences on hearing TAKEOVER: its send() returns
//      kFencedSeq and parked own-stream waitfor callers fail with
//      WaitStatus::kFenced instead of hanging.
//
// Threading: the manager is Env-thread confined. Construct and start() it
// from the node's Env thread (or before traffic starts); every callback and
// timer runs there.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/stabilizer.hpp"
#include "failover/raw_transport.hpp"
#include "paxos/paxos.hpp"

namespace stab::failover {

// Raw frame kinds (>= 0x40 per the Stabilizer raw channel contract; the
// 0x60-0x67 block is routed to the embedded PaxosNode).
inline constexpr uint8_t kLeaseKind = 0x70;
inline constexpr uint8_t kSuspectKind = 0x71;
inline constexpr uint8_t kTakeoverKind = 0x72;
inline constexpr uint8_t kRecReqKind = 0x73;
inline constexpr uint8_t kRecReplyKind = 0x74;

struct FailoverOptions {
  /// The origin stream to guard (initially primary-owned by the node with
  /// this id).
  NodeId stream = 0;
  /// Lease broadcast / detection poll cadence.
  Duration lease_interval = millis(100);
  /// Silence window after which a mirror suspects the primary. Must cover
  /// several lease intervals plus worst-case one-way delay, or healthy
  /// primaries get deposed under jitter.
  Duration lease_timeout = millis(500);
  /// How long a suspecting mirror collects peers' SUSPECT cursors before
  /// deciding the candidate.
  Duration suspect_gather = millis(50);
  /// Reconciliation round deadline: peers that fail to reply within it are
  /// treated as dead and their prefixes ignored (safe: their unseen suffix
  /// was never everywhere-stable).
  Duration reconcile_timeout = millis(200);
  /// Retry cadence for the embedded Paxos group (lossy links).
  Duration paxos_retry = millis(100);
  /// Exclude the deposed primary from data/ack/window paths on takeover
  /// (Stabilizer::set_peer_excluded), unpinning its send-buffer floor.
  bool auto_exclude = true;
};

/// Plain counters — valid in STAB_OBS=OFF builds too (the registry-backed
/// failover.* metrics mirror these when observability is compiled in).
struct FailoverStats {
  uint64_t leases_sent = 0;
  uint64_t leases_received = 0;
  uint64_t suspicions = 0;          // local lease-loss windows expired
  uint64_t elections_proposed = 0;  // PROMOTE proposals submitted to Paxos
  uint64_t promotions_won = 0;      // adopt_stream completed locally
  uint64_t takeovers_applied = 0;   // PROMOTE/TAKEOVER epoch bumps applied
  uint64_t rec_requests_sent = 0;
  uint64_t rec_replies_received = 0;
  /// First suspicion / local adoption instants (Env clock; unset = zero).
  /// bench_failover reads these to split detection from promotion latency.
  TimePoint suspected_at{};
  TimePoint promoted_at{};
};

class FailoverManager {
 public:
  /// Takes over the Stabilizer's raw-frame handler for its lifetime (one
  /// manager per node). The embedded PaxosNode spans every cluster member,
  /// so a majority of ALL nodes — not just suspecting mirrors — must be
  /// reachable for a promotion to commit.
  FailoverManager(FailoverOptions options, Stabilizer& stab);
  ~FailoverManager();

  /// Arm timers (lease issue / detection poll). Idempotent.
  void start();
  /// Cancel timers and detach from the Stabilizer. Idempotent; called by
  /// the destructor.
  void stop();

  const FailoverStats& stats() const { return stats_; }
  /// True once this node adopted the guarded stream.
  bool promoted() const { return promoted_; }
  paxos::PaxosNode& paxos_node() { return *paxos_; }

 private:
  void tick();
  void on_raw(NodeId src, BytesView frame, uint64_t wire_size);
  void issue_leases();
  void on_lease(NodeId src, BytesView frame);
  void start_suspicion();
  void on_suspect(NodeId src, BytesView frame);
  void conclude_election();
  void on_promote_commit(BytesView value);
  void apply_takeover(NodeId winner, PrimaryEpoch epoch, SeqNum start_seq);
  void begin_reconciliation(PrimaryEpoch epoch);
  void reconcile_tick();
  void finish_reconciliation();
  void on_rec_req(NodeId src, BytesView frame);
  void on_rec_reply(NodeId src, BytesView frame);
  void broadcast_takeover();
  void clear_suspicion();

  FailoverOptions options_;
  Stabilizer& stab_;
  RawLinkTransport link_;
  std::unique_ptr<paxos::PaxosNode> paxos_;
  FailoverStats stats_;

  bool started_ = false;
  bool stopped_ = false;
  TimerId tick_timer_ = kInvalidTimer;
  TimerId gather_timer_ = kInvalidTimer;
  TimerId rec_timer_ = kInvalidTimer;

  // Detection state (mirror role).
  TimePoint last_alive_{};
  SeqNum last_delivered_ = kNoSeq;    // guarded-stream delivery watermark
  SeqNum last_ack_seen_ = kNoSeq;     // authority's ack about our own stream
  bool suspecting_ = false;
  std::map<NodeId, SeqNum> suspect_cursors_;

  // Reconciliation state (winner role).
  bool reconciling_ = false;
  PrimaryEpoch rec_epoch_ = 0;
  std::map<NodeId, SeqNum> rec_replies_;
  TimePoint rec_deadline_{};

  // Post-promotion state.
  bool promoted_ = false;
  SeqNum takeover_start_ = kNoSeq;
};

}  // namespace stab::failover
