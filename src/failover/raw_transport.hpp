// Transport adapter: tunnels a consensus protocol's frames over the
// Stabilizer's raw-frame channel.
//
// PaxosNode expects a Transport it can own the receive handler of; the
// Stabilizer owns the real transport and exposes exactly one raw-frame sink.
// This adapter sits between them: sends go out through Stabilizer::send_raw
// (so they ride the same links, loss model, and chaos schedule as everything
// else), and the FailoverManager — which holds the Stabilizer's raw handler —
// routes inbound Paxos frames (kind 0x60-0x67) back in through deliver().
//
// Env-thread confined: deliver() is only called from the Stabilizer's frame
// dispatch, and PaxosNode's own sends happen from within those callbacks or
// its Env timers, all on the same thread.
#pragma once

#include "core/stabilizer.hpp"
#include "net/transport.hpp"

namespace stab::failover {

class RawLinkTransport : public Transport {
 public:
  explicit RawLinkTransport(Stabilizer& stab) : stab_(stab) {}

  NodeId self() const override { return stab_.self(); }
  size_t cluster_size() const override {
    return stab_.topology().num_nodes();
  }
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }
  void send(NodeId dst, Bytes frame, uint64_t wire_size) override {
    (void)wire_size;  // consensus frames are tiny; no virtual padding
    stab_.send_raw(dst, std::move(frame));
  }
  Env& env() override { return stab_.env(); }
  // All deliveries are serialized through the Stabilizer's dispatch (which
  // holds its API mutex) on the Env thread.
  bool single_threaded() const override { return true; }

  /// Feed one inbound frame (already classified by the FailoverManager) to
  /// the protocol's installed handler.
  void deliver(NodeId src, BytesView frame, uint64_t wire_size) {
    if (handler_) handler_(src, frame, wire_size);
  }

 private:
  Stabilizer& stab_;
  ReceiveHandler handler_;
};

}  // namespace stab::failover
