// Cluster topology: WAN nodes, availability-zone (region) grouping, and the
// link parameter matrix. This is the Stabilizer configuration file of the
// paper (§III-C "Stabilizer configuration file includes a list of data
// centers where the system has been deployed ... a subset notation
// designates availability zones").
//
// The DSL analyzer resolves $WNODE_x / $AZ_x / $MYAZWNODES against a
// Topology; the transports derive link latency/bandwidth from it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace stab {

struct WanNodeInfo {
  std::string name;  // unique data-center name, e.g. "7" or "Foo"
  std::string az;    // availability zone / region name, e.g. "Oregon"
  NodeId index = kInvalidNode;
};

struct LinkSpec {
  Duration latency = Duration::zero();  // one-way propagation delay
  double bandwidth_bps = 0;             // 0 = infinite
  std::string pipe_group;               // links sharing a group share bandwidth
};

class Topology {
 public:
  /// Adds a node; name and az must be non-empty, name must be unique.
  NodeId add_node(const std::string& name, const std::string& az);

  /// Sets the directed link a -> b. Node ids must exist.
  void set_link(NodeId a, NodeId b, LinkSpec spec);
  /// Sets both directions.
  void set_link_bidir(NodeId a, NodeId b, LinkSpec spec);

  size_t num_nodes() const { return nodes_.size(); }
  const WanNodeInfo& node(NodeId id) const;
  std::optional<NodeId> find_node(const std::string& name) const;

  /// All AZ names in first-appearance order.
  std::vector<std::string> az_names() const;
  bool has_az(const std::string& az) const;
  std::vector<NodeId> nodes_in_az(const std::string& az) const;
  const std::string& az_of(NodeId id) const;
  std::vector<NodeId> all_nodes() const;

  /// Designates `node` as the stability-report aggregator of `az` (deferred
  /// propagation, DESIGN.md §10). Throws std::invalid_argument when the AZ
  /// does not exist or `node` is not one of its members — an aggregator
  /// outside its AZ would put the intra-AZ merge hop on a WAN link.
  void set_az_aggregator(const std::string& az, NodeId node);
  /// The aggregator designated for `az`, if any.
  std::optional<NodeId> az_aggregator(const std::string& az) const;
  /// The aggregator of `node`'s own AZ, if one was designated.
  std::optional<NodeId> aggregator_for(NodeId node) const;

  /// Link a -> b, or nullptr if unset.
  const LinkSpec* link(NodeId a, NodeId b) const;

  /// Human-readable dump (used by the Fig 2 bench).
  std::string describe() const;

 private:
  std::vector<WanNodeInfo> nodes_;
  std::vector<std::optional<LinkSpec>> links_;  // row-major [a][b]
  std::vector<std::pair<std::string, NodeId>> aggregators_;  // az -> node
  void grow_links();
};

/// Parses the textual config format:
///
///   # comment
///   node <name> az <az-name>
///   link <a> <b> lat_ms <rtt/2 one-way ms> bw_mbps <x> [pipe <group>]
///   bilink <a> <b> lat_ms <x> bw_mbps <y> [pipe <group>]
///   aggregator <az-name> <node-name>
///
/// Node references are by name; `aggregator` (like links) may reference a
/// node declared later in the file. Returns an error with line number on
/// any syntax problem, including an aggregator whose node is unknown or not
/// a member of the named AZ.
Result<Topology> parse_topology(const std::string& text);

// ---------------------------------------------------------------------------
// Paper topologies.
// ---------------------------------------------------------------------------

/// Fig 2 + Table I: the emulated Amazon EC2 deployment. Eight WAN nodes in
/// four regions; node names follow the paper's numbering ("1".."8"):
///   North_California: 1 (sender), 2
///   North_Virginia:   3, 4, 5, 6
///   Oregon:           7
///   Ohio:             8
/// (Region membership reconstructed from §VI-B: "MajorityRegions ... only
/// need to await ... two of the three servers: No.7, No.8, and any single
/// server in the region of North Virginia" — so Oregon and Ohio are
/// single-node regions and North Virginia holds nodes 3-6.)
///
/// Link bandwidths are the paper's half-throttled Table I values; latency is
/// the Table I value interpreted as RTT, so one-way = value/2. Links between
/// non-North-California regions use public AWS inter-region measurements
/// (documented in the implementation); only sender-centric links matter to
/// the experiments.
Topology ec2_topology();

/// Table II: the CloudLab deployment — UT1 (sender), UT2, WI, CLEM, MA.
/// Latency one-way = Table II RTT / 2; bandwidths as measured.
Topology cloudlab_topology();

/// Synthetic fleet for propagation-at-scale experiments: `num_azs` zones
/// ("az0".."azK") of `nodes_per_az` nodes each ("az3_n1", ...), full-mesh
/// bidirectional links (intra-AZ `intra_ms`, inter-AZ `inter_ms` one-way;
/// 0 bandwidth = infinite), and the first node of every AZ designated as
/// its aggregator. Throws std::invalid_argument when either count is zero.
Topology fleet_topology(size_t num_azs, size_t nodes_per_az,
                        double intra_ms = 1.0, double inter_ms = 10.0,
                        double bw_mbps = 0.0);

/// Node ids the experiments use in the CloudLab topology.
namespace cloudlab {
inline constexpr NodeId kUtah1 = 0;
inline constexpr NodeId kUtah2 = 1;
inline constexpr NodeId kWisconsin = 2;
inline constexpr NodeId kClemson = 3;
inline constexpr NodeId kMassachusetts = 4;
}  // namespace cloudlab

}  // namespace stab
