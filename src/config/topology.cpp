#include "config/topology.hpp"

#include <sstream>
#include <stdexcept>

namespace stab {

NodeId Topology::add_node(const std::string& name, const std::string& az) {
  if (name.empty() || az.empty())
    throw std::invalid_argument("Topology: node name and az must be non-empty");
  if (find_node(name))
    throw std::invalid_argument("Topology: duplicate node name: " + name);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(WanNodeInfo{name, az, id});
  grow_links();
  return id;
}

void Topology::grow_links() {
  size_t n = nodes_.size();
  std::vector<std::optional<LinkSpec>> next(n * n);
  size_t prev = n - 1;
  for (size_t a = 0; a < prev; ++a)
    for (size_t b = 0; b < prev; ++b) next[a * n + b] = links_[a * prev + b];
  links_ = std::move(next);
}

void Topology::set_link(NodeId a, NodeId b, LinkSpec spec) {
  if (a >= num_nodes() || b >= num_nodes())
    throw std::out_of_range("Topology: node id out of range");
  links_[a * num_nodes() + b] = std::move(spec);
}

void Topology::set_link_bidir(NodeId a, NodeId b, LinkSpec spec) {
  set_link(a, b, spec);
  set_link(b, a, std::move(spec));
}

const WanNodeInfo& Topology::node(NodeId id) const {
  if (id >= num_nodes()) throw std::out_of_range("Topology: bad node id");
  return nodes_[id];
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  for (const auto& n : nodes_)
    if (n.name == name) return n.index;
  return std::nullopt;
}

std::vector<std::string> Topology::az_names() const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    bool seen = false;
    for (const auto& az : out)
      if (az == n.az) seen = true;
    if (!seen) out.push_back(n.az);
  }
  return out;
}

bool Topology::has_az(const std::string& az) const {
  for (const auto& n : nodes_)
    if (n.az == az) return true;
  return false;
}

std::vector<NodeId> Topology::nodes_in_az(const std::string& az) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n.az == az) out.push_back(n.index);
  return out;
}

const std::string& Topology::az_of(NodeId id) const { return node(id).az; }

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_nodes());
  for (const auto& n : nodes_) out.push_back(n.index);
  return out;
}

void Topology::set_az_aggregator(const std::string& az, NodeId node) {
  if (!has_az(az))
    throw std::invalid_argument("Topology: unknown az: " + az);
  if (node >= num_nodes())
    throw std::out_of_range("Topology: node id out of range");
  if (az_of(node) != az)
    throw std::invalid_argument("Topology: aggregator " + nodes_[node].name +
                                " is not a member of az " + az);
  for (auto& [a, n] : aggregators_) {
    if (a == az) {
      n = node;
      return;
    }
  }
  aggregators_.emplace_back(az, node);
}

std::optional<NodeId> Topology::az_aggregator(const std::string& az) const {
  for (const auto& [a, n] : aggregators_)
    if (a == az) return n;
  return std::nullopt;
}

std::optional<NodeId> Topology::aggregator_for(NodeId node) const {
  return az_aggregator(az_of(node));
}

const LinkSpec* Topology::link(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes())
    throw std::out_of_range("Topology: node id out of range");
  const auto& opt = links_[a * num_nodes() + b];
  return opt ? &*opt : nullptr;
}

std::string Topology::describe() const {
  std::ostringstream oss;
  oss << "topology: " << num_nodes() << " WAN nodes in " << az_names().size()
      << " availability zones\n";
  for (const auto& az : az_names()) {
    oss << "  az " << az << ":";
    for (NodeId id : nodes_in_az(az)) oss << " " << node(id).name;
    if (auto agg = az_aggregator(az))
      oss << "  (aggregator " << node(*agg).name << ")";
    oss << "\n";
  }
  for (NodeId a = 0; a < num_nodes(); ++a) {
    for (NodeId b = 0; b < num_nodes(); ++b) {
      const LinkSpec* l = link(a, b);
      if (!l) continue;
      oss << "  link " << node(a).name << " -> " << node(b).name
          << "  lat_ms " << to_ms(l->latency) << "  bw_mbps "
          << l->bandwidth_bps / 1e6;
      if (!l->pipe_group.empty()) oss << "  pipe " << l->pipe_group;
      oss << "\n";
    }
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

Result<Topology> parse_topology(const std::string& text) {
  Topology topo;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    return Result<Topology>::error("config line " + std::to_string(lineno) +
                                   ": " + msg);
  };
  // Link lines may reference nodes declared later, so collect then apply.
  struct PendingLink {
    std::string a, b;
    LinkSpec spec;
    bool bidir;
    int lineno;
  };
  std::vector<PendingLink> pending;
  // Aggregator lines may also reference nodes declared later.
  struct PendingAgg {
    std::string az, node;
    int lineno;
  };
  std::vector<PendingAgg> pending_aggs;

  while (std::getline(in, line)) {
    ++lineno;
    // strip comments
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;  // blank
    if (kw == "node") {
      std::string name, azkw, az;
      if (!(ls >> name >> azkw >> az) || azkw != "az")
        return fail("expected: node <name> az <az-name>");
      try {
        topo.add_node(name, az);
      } catch (const std::exception& e) {
        return fail(e.what());
      }
    } else if (kw == "link" || kw == "bilink") {
      PendingLink pl;
      pl.bidir = (kw == "bilink");
      pl.lineno = lineno;
      std::string latkw, bwkw;
      double lat_ms = 0, bw_mbps = 0;
      if (!(ls >> pl.a >> pl.b >> latkw >> lat_ms >> bwkw >> bw_mbps) ||
          latkw != "lat_ms" || bwkw != "bw_mbps")
        return fail(
            "expected: link <a> <b> lat_ms <x> bw_mbps <y> [pipe <group>]");
      std::string pipekw;
      if (ls >> pipekw) {
        if (pipekw != "pipe" || !(ls >> pl.spec.pipe_group))
          return fail("expected: pipe <group>");
      }
      pl.spec.latency = from_ms(lat_ms);
      pl.spec.bandwidth_bps = mbps(bw_mbps);
      pending.push_back(std::move(pl));
    } else if (kw == "aggregator") {
      PendingAgg pa;
      pa.lineno = lineno;
      if (!(ls >> pa.az >> pa.node))
        return fail("expected: aggregator <az-name> <node-name>");
      pending_aggs.push_back(std::move(pa));
    } else {
      return fail("unknown keyword: " + kw);
    }
  }

  for (auto& pl : pending) {
    auto a = topo.find_node(pl.a);
    auto b = topo.find_node(pl.b);
    if (!a || !b)
      return Result<Topology>::error(
          "config line " + std::to_string(pl.lineno) + ": unknown node in link " +
          pl.a + " " + pl.b);
    if (pl.bidir)
      topo.set_link_bidir(*a, *b, pl.spec);
    else
      topo.set_link(*a, *b, pl.spec);
  }
  for (const auto& pa : pending_aggs) {
    lineno = pa.lineno;
    auto n = topo.find_node(pa.node);
    if (!n) return fail("unknown aggregator node: " + pa.node);
    try {
      topo.set_az_aggregator(pa.az, *n);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }
  return topo;
}

// ---------------------------------------------------------------------------
// Paper topologies
// ---------------------------------------------------------------------------

namespace {

// Table I (half-throttled bandwidth; latency interpreted as RTT -> /2).
struct RegionLink {
  double one_way_ms;
  double bw_mbps;
};

}  // namespace

Topology ec2_topology() {
  Topology t;
  // Paper node numbering, region membership from §VI-B (see header).
  const NodeId n1 = t.add_node("1", "North_California");
  const NodeId n2 = t.add_node("2", "North_California");
  const NodeId n3 = t.add_node("3", "North_Virginia");
  const NodeId n4 = t.add_node("4", "North_Virginia");
  const NodeId n5 = t.add_node("5", "North_Virginia");
  const NodeId n6 = t.add_node("6", "North_Virginia");
  const NodeId n7 = t.add_node("7", "Oregon");
  const NodeId n8 = t.add_node("8", "Ohio");
  (void)n1;

  // Table I, North California <-> region (Lat = RTT, Thp half-throttled):
  //   intra NCal: 3.7ms / 333.5 Mbps
  //   Ohio: 53.87 / 44.5, Oregon: 23.29 / 56.5, N.Virginia: 64.12 / 37
  const RegionLink ncal_intra{3.7 / 2, 333.5};
  const RegionLink ncal_nva{64.12 / 2, 37};
  const RegionLink ncal_oregon{23.29 / 2, 56.5};
  const RegionLink ncal_ohio{53.87 / 2, 44.5};
  // Non-sender-centric pairs: public AWS inter-region RTTs (us-east-1 /
  // us-east-2 / us-west-2 measurements, halved bandwidths to match the
  // paper's throttling convention). Only sender(1)-centric links drive the
  // figures; these keep the mesh complete and realistic.
  const RegionLink nva_intra{1.0 / 2, 333.5};
  const RegionLink nva_ohio{11.4 / 2, 120};
  const RegionLink nva_oregon{67.0 / 2, 35};
  const RegionLink ohio_oregon{49.0 / 2, 48};

  auto biset = [&](NodeId a, NodeId b, RegionLink rl) {
    LinkSpec s;
    s.latency = from_ms(rl.one_way_ms);
    s.bandwidth_bps = mbps(rl.bw_mbps);
    t.set_link_bidir(a, b, s);
  };

  const std::vector<NodeId> ncal = {n1, n2};
  const std::vector<NodeId> nva = {n3, n4, n5, n6};
  const std::vector<NodeId> oregon = {n7};
  const std::vector<NodeId> ohio = {n8};

  auto cross = [&](const std::vector<NodeId>& as, const std::vector<NodeId>& bs,
                   RegionLink rl) {
    for (NodeId a : as)
      for (NodeId b : bs)
        if (a != b) biset(a, b, rl);
  };
  auto intra = [&](const std::vector<NodeId>& ns, RegionLink rl) {
    for (size_t i = 0; i < ns.size(); ++i)
      for (size_t j = i + 1; j < ns.size(); ++j) biset(ns[i], ns[j], rl);
  };

  intra(ncal, ncal_intra);
  intra(nva, nva_intra);
  // Table I reports one number per region; the testbed's per-server paths
  // vary slightly around it (the noise that separates the paper's
  // MajorityWNodes / AllWNodes curves). We model that as a small
  // deterministic spread across the North Virginia servers; node 3 carries
  // the exact Table I values.
  for (size_t i = 0; i < nva.size(); ++i) {
    RegionLink rl = ncal_nva;
    rl.one_way_ms += 0.3 * static_cast<double>(i);
    rl.bw_mbps *= 1.0 - 0.012 * static_cast<double>(i);
    cross(ncal, {nva[i]}, rl);
  }
  cross(ncal, oregon, ncal_oregon);
  cross(ncal, ohio, ncal_ohio);
  cross(nva, oregon, nva_oregon);
  cross(nva, ohio, nva_ohio);
  cross(ohio, oregon, ohio_oregon);
  return t;
}

Topology cloudlab_topology() {
  Topology t;
  const NodeId ut1 = t.add_node("Utah1", "Utah");
  const NodeId ut2 = t.add_node("Utah2", "Utah");
  const NodeId wi = t.add_node("Wisconsin", "Wisc");
  const NodeId clem = t.add_node("Clemson", "Clem");
  const NodeId ma = t.add_node("Massachusetts", "Mass");

  auto biset = [&](NodeId a, NodeId b, double rtt_ms, double bw_mbps) {
    LinkSpec s;
    s.latency = from_ms(rtt_ms / 2);
    s.bandwidth_bps = mbps(bw_mbps);
    t.set_link_bidir(a, b, s);
  };

  // Table II: Utah1 <-> {Utah2, Wisconsin, Clemson, Massachusetts}.
  biset(ut1, ut2, 0.124, 9246.99);
  biset(ut1, wi, 35.612, 361.82);
  biset(ut1, clem, 50.918, 416.27);
  biset(ut1, ma, 48.083, 437.11);
  // Utah2 shares Utah1's WAN vantage (same cluster, same uplink).
  biset(ut2, wi, 35.612, 361.82);
  biset(ut2, clem, 50.918, 416.27);
  biset(ut2, ma, 48.083, 437.11);
  // Remote-remote pairs: CloudLab inter-site estimates (not used by the
  // paper's sender-centric experiments).
  biset(wi, clem, 28.0, 400);
  biset(wi, ma, 25.0, 420);
  biset(clem, ma, 20.0, 450);
  return t;
}

Topology fleet_topology(size_t num_azs, size_t nodes_per_az, double intra_ms,
                        double inter_ms, double bw_mbps) {
  if (num_azs == 0 || nodes_per_az == 0)
    throw std::invalid_argument("fleet_topology: counts must be positive");
  Topology t;
  for (size_t z = 0; z < num_azs; ++z) {
    const std::string az = "az" + std::to_string(z);
    for (size_t i = 0; i < nodes_per_az; ++i)
      t.add_node(az + "_n" + std::to_string(i), az);
    t.set_az_aggregator(az, static_cast<NodeId>(z * nodes_per_az));
  }
  const size_t n = t.num_nodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      LinkSpec s;
      const bool same_az = a / nodes_per_az == b / nodes_per_az;
      s.latency = from_ms(same_az ? intra_ms : inter_ms);
      s.bandwidth_bps = mbps(bw_mbps);
      t.set_link_bidir(a, b, s);
    }
  }
  return t;
}

}  // namespace stab
