// "PulsarLite" — the Apache Pulsar stand-in used by the Fig 7 comparison
// (DESIGN.md §3 substitution).
//
// Models the aspects of Pulsar's non-persistent geo-replication that the
// paper's experiment exercises:
//   * broker-per-site forwarding: producer -> local broker -> remote
//     brokers -> subscribers, with a per-message broker processing cost
//     (the broker is a serial resource — a busy-server queue);
//   * JVM garbage collection: processing allocates; when the allocation
//     budget is exhausted the broker stalls for a pause that grows with the
//     amount reclaimed — the paper attributes Pulsar's LAN latency growth to
//     exactly this ("We believe this is associated with garbage collection
//     within its JVM");
//   * the paper's patch: the original broker silently drops messages when a
//     WAN link is transiently unavailable; with `buffer_when_slow` (default,
//     matching the patched Pulsar) messages are buffered and sent in order.
//
// Latency is measured like the paper's: remote brokers ack delivery back to
// the origin broker, which reports per-site end-to-end latency.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/transport.hpp"

namespace stab::pulsar {

struct PulsarOptions {
  NodeId self = 0;
  std::vector<NodeId> brokers;  // all sites, including self

  Duration proc_delay = micros(150);          // per-message broker CPU
  uint64_t gc_alloc_per_msg = 96 * 1024;      // bytes of garbage per message
  uint64_t gc_heap_budget = 64 << 20;         // allocation between pauses
  Duration gc_pause_base = millis(8);
  Duration gc_pause_per_mb = micros(150);     // pause grows with heap churn

  bool buffer_when_slow = true;   // false = original Pulsar drop behaviour
  uint64_t slow_link_outstanding_cap = 4 << 20;  // drop threshold (bytes)
};

class PulsarBroker {
 public:
  using SubscriberFn =
      std::function<void(NodeId origin, uint64_t msg_id, BytesView message)>;
  /// Origin-broker callback when a remote site confirms delivery.
  using AckFn = std::function<void(NodeId site, uint64_t msg_id)>;

  PulsarBroker(PulsarOptions options, Transport& transport);

  NodeId self() const { return options_.self; }

  /// Local producer publishes; the broker processes and forwards.
  uint64_t publish(BytesView message, uint64_t virtual_size = 0);

  void subscribe(SubscriberFn fn) { subscriber_ = std::move(fn); }
  void set_ack_handler(AckFn fn) { ack_handler_ = std::move(fn); }

  uint64_t published() const { return published_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t gc_pauses() const { return gc_pauses_; }
  Duration total_gc_time() const { return total_gc_time_; }

 private:
  /// Serial broker resource: returns when this message's processing
  /// completes, advancing the busy horizon and charging GC.
  TimePoint process_message(uint64_t bytes);
  void forward(NodeId dst, uint64_t msg_id, BytesView message,
               uint64_t virtual_size);
  void on_frame(NodeId src, BytesView frame, uint64_t wire_size);

  PulsarOptions options_;
  Transport& transport_;
  SubscriberFn subscriber_;
  AckFn ack_handler_;

  TimePoint busy_until_ = kTimeZero;
  uint64_t allocated_ = 0;
  uint64_t next_msg_id_ = 1;
  std::map<NodeId, uint64_t> outstanding_bytes_;  // per remote broker

  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t gc_pauses_ = 0;
  Duration total_gc_time_ = Duration::zero();
};

}  // namespace stab::pulsar
