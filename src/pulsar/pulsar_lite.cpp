#include "pulsar/pulsar_lite.hpp"

#include "common/bytes.hpp"
#include "common/logging.hpp"

namespace stab::pulsar {

namespace {
constexpr uint8_t kMsg = 0x50;
constexpr uint8_t kAck = 0x51;
}  // namespace

PulsarBroker::PulsarBroker(PulsarOptions options, Transport& transport)
    : options_(std::move(options)), transport_(transport) {
  transport_.set_receive_handler(
      [this](NodeId src, BytesView frame, uint64_t wire) {
        on_frame(src, frame, wire);
      });
}

TimePoint PulsarBroker::process_message(uint64_t bytes) {
  Env& env = transport_.env();
  TimePoint start = std::max(env.now(), busy_until_);
  TimePoint done = start + options_.proc_delay;

  // JVM model: processing allocates; crossing the budget triggers a
  // stop-the-world pause proportional to the churn.
  allocated_ += options_.gc_alloc_per_msg + bytes / 8;
  if (allocated_ >= options_.gc_heap_budget) {
    Duration pause =
        options_.gc_pause_base +
        options_.gc_pause_per_mb * static_cast<int64_t>(allocated_ >> 20);
    done += pause;
    total_gc_time_ += pause;
    ++gc_pauses_;
    allocated_ = 0;
  }
  busy_until_ = done;
  return done;
}

uint64_t PulsarBroker::publish(BytesView message, uint64_t virtual_size) {
  uint64_t id = next_msg_id_++;
  ++published_;
  TimePoint ready = process_message(message.size() + virtual_size);
  // Local subscriber (if any) is delivered after broker processing.
  Env& env = transport_.env();
  if (subscriber_) {
    Bytes copy(message.begin(), message.end());
    env.schedule_after(ready - env.now(),
                       [this, id, copy = std::move(copy)] {
                         if (subscriber_)
                           subscriber_(options_.self, id, copy);
                         ++delivered_;
                       });
  }
  // Forward to remote brokers once processing completes.
  for (NodeId broker : options_.brokers) {
    if (broker == options_.self) continue;
    Bytes copy(message.begin(), message.end());
    env.schedule_after(
        ready - env.now(),
        [this, broker, id, copy = std::move(copy), virtual_size] {
          forward(broker, id, copy, virtual_size);
        });
  }
  return id;
}

void PulsarBroker::forward(NodeId dst, uint64_t msg_id, BytesView message,
                           uint64_t virtual_size) {
  uint64_t& outstanding = outstanding_bytes_[dst];
  uint64_t wire = message.size() + virtual_size + 16;
  if (!options_.buffer_when_slow &&
      outstanding + wire > options_.slow_link_outstanding_cap) {
    // Original Pulsar: the broker silently abandons the message when the
    // link cannot keep up (the behaviour the paper patched away).
    ++dropped_;
    return;
  }
  outstanding += wire;
  Writer w(message.size() + 24);
  w.u8(kMsg);
  w.u64(msg_id);
  w.u32(options_.self);
  w.blob(message);
  Bytes frame = std::move(w).take();
  uint64_t wire_size = frame.size() + virtual_size;
  transport_.send(dst, std::move(frame), wire_size);
}

void PulsarBroker::on_frame(NodeId src, BytesView frame, uint64_t wire_size) {
  try {
    Reader r(frame);
    uint8_t kind = r.u8();
    if (kind == kMsg) {
      uint64_t id = r.u64();
      NodeId origin = r.u32();
      Bytes message = r.blob();
      TimePoint ready = process_message(wire_size);
      Env& env = transport_.env();
      env.schedule_after(
          ready - env.now(),
          [this, origin, id, src, message = std::move(message)] {
            if (subscriber_) subscriber_(origin, id, message);
            ++delivered_;
            // Confirm delivery to the origin broker (latency measurement).
            Writer w(16);
            w.u8(kAck);
            w.u64(id);
            w.u32(options_.self);
            transport_.send(src, std::move(w).take());
          });
    } else if (kind == kAck) {
      uint64_t id = r.u64();
      NodeId site = r.u32();
      // Ack frees the outstanding budget (approximation: one message's
      // worth; exact accounting is unnecessary for the drop model).
      auto it = outstanding_bytes_.find(src);
      if (it != outstanding_bytes_.end())
        it->second -= std::min<uint64_t>(it->second, 8 * 1024 + 16);
      if (ack_handler_) ack_handler_(site, id);
    }
  } catch (const CodecError& e) {
    STAB_ERROR("pulsar: bad frame from " << src << ": " << e.what());
  }
}

}  // namespace stab::pulsar
