// Gifford's quorum protocol built from Stabilizer predicates (paper §IV-B).
//
// A configured subset of WAN nodes are the quorum *servers*; any node may
// act as writer or reader. Writes ride the Stabilizer data plane (every node
// mirrors the versioned value) and complete when the write predicate
//   KTH_MIN(Nw, $s1,...,$sn)
// holds — i.e. Nw servers acknowledged receipt. Reads are explicit RPCs
// (raw frames multiplexed on the same links): the reader queries all
// servers, completes at Nr responses, and returns the highest version among
// them. Nr + Nw > N guarantees the read set intersects every write quorum,
// so the latest committed write is always seen.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/stabilizer.hpp"

namespace stab::quorum {

struct QuorumOptions {
  std::vector<NodeId> servers;  // the replica set
  size_t read_quorum = 0;       // Nr
  size_t write_quorum = 0;      // Nw; requires Nr + Nw > servers.size()
};

struct ReadResult {
  bool found = false;
  uint64_t version = 0;
  Bytes value;
  size_t responses = 0;  // how many servers answered before completion
};

class QuorumNode {
 public:
  /// Throws std::invalid_argument if the quorum intersection property
  /// Nr + Nw > N is violated or quorum sizes exceed N.
  QuorumNode(Stabilizer& stabilizer, QuorumOptions options);

  bool is_server() const;

  /// Writes a new version of `key`; `done` fires when Nw servers hold it.
  /// Gifford's protocol: the writer first queries a read quorum for the
  /// current version, then writes max+1 (tie-broken by writer id), so a
  /// write that follows a committed write always supersedes it.
  void write(const std::string& key, BytesView value,
             std::function<void(uint64_t version)> done);

  /// Quorum read: `done` fires with the freshest of Nr server responses.
  void read(const std::string& key, std::function<void(ReadResult)> done);

  /// The write predicate source this node registered (for inspection).
  const std::string& write_predicate() const { return write_predicate_src_; }

  /// Server-side storage view (tests).
  std::optional<std::pair<uint64_t, Bytes>> local_value(
      const std::string& key) const;

 private:
  struct PendingRead {
    std::string key;
    size_t responses = 0;
    bool found = false;
    uint64_t best_version = 0;
    Bytes best_value;
    std::function<void(ReadResult)> done;
  };

  void on_delivery(NodeId origin, SeqNum seq, BytesView payload);
  void on_raw(NodeId src, BytesView frame);
  void write_with_version(const std::string& key, BytesView value,
                          uint64_t version,
                          std::function<void(uint64_t)> done);

  Stabilizer& stabilizer_;
  QuorumOptions options_;
  std::string write_predicate_src_;
  std::map<std::string, std::pair<uint64_t, Bytes>> data_;  // version, value
  std::map<uint64_t, PendingRead> reads_;
  uint64_t next_read_id_ = 1;
};

}  // namespace stab::quorum
