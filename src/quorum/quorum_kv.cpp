#include "quorum/quorum_kv.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace stab::quorum {

namespace {
constexpr uint8_t kWriteRecord = 1;   // inside the sequenced data stream
constexpr uint8_t kReadReq = 0x41;    // raw frames
constexpr uint8_t kReadResp = 0x42;
constexpr const char* kWritePredicateKey = "quorum_write";
}  // namespace

QuorumNode::QuorumNode(Stabilizer& stabilizer, QuorumOptions options)
    : stabilizer_(stabilizer), options_(std::move(options)) {
  const size_t n = options_.servers.size();
  if (n == 0) throw std::invalid_argument("quorum: empty server set");
  if (options_.read_quorum == 0 || options_.write_quorum == 0 ||
      options_.read_quorum > n || options_.write_quorum > n)
    throw std::invalid_argument("quorum: Nr/Nw out of range");
  if (options_.read_quorum + options_.write_quorum <= n)
    throw std::invalid_argument(
        "quorum: Nr + Nw must exceed N for quorum intersection");

  // Write predicate over the server set: stable once at least Nw servers
  // acked. (§IV-B writes this as KTH_MIN(Nw, ...), but "ACKs from Nw of the
  // set received" is the KTH_MAX(Nw, ...) frontier — the Nw-th *largest*
  // ack is the highest seq that Nw servers hold, exactly as Table III's
  // MajorityWNodes uses KTH_MAX for "acknowledged by a majority".)
  std::ostringstream src;
  src << "KTH_MAX(" << options_.write_quorum;
  for (NodeId s : options_.servers) src << ",$" << (s + 1);
  src << ")";
  write_predicate_src_ = src.str();
  if (!stabilizer_.has_predicate(kWritePredicateKey)) {
    Status st = stabilizer_.register_predicate(kWritePredicateKey,
                                               write_predicate_src_);
    if (!st.is_ok())
      throw std::invalid_argument("quorum: " + st.message());
  }

  stabilizer_.set_delivery_handler(
      [this](NodeId origin, SeqNum seq, BytesView payload, uint64_t) {
        on_delivery(origin, seq, payload);
      });
  stabilizer_.set_raw_frame_handler(
      [this](NodeId src, BytesView frame, uint64_t) { on_raw(src, frame); });
}

bool QuorumNode::is_server() const {
  return std::find(options_.servers.begin(), options_.servers.end(),
                   stabilizer_.self()) != options_.servers.end();
}

void QuorumNode::write(const std::string& key, BytesView value,
                       std::function<void(uint64_t)> done) {
  // Phase 1 of Gifford's write: learn the current version from a read
  // quorum, then write (max_counter + 1, self) — strictly newer than any
  // committed version, tie-broken by writer id for concurrent writers.
  Bytes owned(value.begin(), value.end());
  read(key, [this, key, owned = std::move(owned),
             done = std::move(done)](ReadResult current) mutable {
    uint64_t counter = current.found ? (current.version >> 16) : 0;
    uint64_t version = ((counter + 1) << 16) | stabilizer_.self();
    write_with_version(key, owned, version, std::move(done));
  });
}

void QuorumNode::write_with_version(const std::string& key, BytesView value,
                                    uint64_t version,
                                    std::function<void(uint64_t)> done) {
  Writer w(key.size() + value.size() + 24);
  w.u8(kWriteRecord);
  w.str(key);
  w.u64(version);
  w.blob(value);

  // Apply locally (the writer is a replica of its own write).
  auto& slot = data_[key];
  if (version > slot.first)
    slot = {version, Bytes(value.begin(), value.end())};

  SeqNum seq = stabilizer_.send(std::move(w).take());
  stabilizer_.waitfor(seq, kWritePredicateKey,
                      [version, done = std::move(done)](SeqNum) {
                        if (done) done(version);
                      });
}

void QuorumNode::on_delivery(NodeId origin, SeqNum seq, BytesView payload) {
  (void)origin;
  (void)seq;
  try {
    Reader r(payload);
    if (r.u8() != kWriteRecord) return;
    std::string key = r.str();
    uint64_t version = r.u64();
    Bytes value = r.blob();
    auto& slot = data_[key];
    if (version > slot.first) slot = {version, std::move(value)};
  } catch (const CodecError& e) {
    STAB_ERROR("quorum: bad write record: " << e.what());
  }
}

void QuorumNode::read(const std::string& key,
                      std::function<void(ReadResult)> done) {
  uint64_t id = next_read_id_++;
  PendingRead& pending = reads_[id];
  pending.key = key;
  pending.done = std::move(done);

  for (NodeId server : options_.servers) {
    if (server == stabilizer_.self()) {
      // Local replica answers immediately.
      auto it = data_.find(key);
      ++pending.responses;
      if (it != data_.end() && it->second.first > pending.best_version) {
        pending.found = true;
        pending.best_version = it->second.first;
        pending.best_value = it->second.second;
      }
      continue;
    }
    Writer w(key.size() + 16);
    w.u8(kReadReq);
    w.u64(id);
    w.str(key);
    stabilizer_.send_raw(server, std::move(w).take());
  }
  // Nr == 1 and self is a server: already complete.
  auto it = reads_.find(id);
  if (it != reads_.end() && it->second.responses >= options_.read_quorum) {
    ReadResult result{it->second.found, it->second.best_version,
                      std::move(it->second.best_value), it->second.responses};
    auto cb = std::move(it->second.done);
    reads_.erase(it);
    if (cb) cb(std::move(result));
  }
}

void QuorumNode::on_raw(NodeId src, BytesView frame) {
  try {
    Reader r(frame);
    uint8_t kind = r.u8();
    if (kind == kReadReq) {
      uint64_t id = r.u64();
      std::string key = r.str();
      Writer w(64);
      w.u8(kReadResp);
      w.u64(id);
      auto it = data_.find(key);
      if (it == data_.end()) {
        w.u8(0);
        w.u64(0);
        w.blob({});
      } else {
        w.u8(1);
        w.u64(it->second.first);
        w.blob(it->second.second);
      }
      stabilizer_.send_raw(src, std::move(w).take());
    } else if (kind == kReadResp) {
      uint64_t id = r.u64();
      uint8_t found = r.u8();
      uint64_t version = r.u64();
      Bytes value = r.blob();
      auto it = reads_.find(id);
      if (it == reads_.end()) return;  // already completed
      PendingRead& pending = it->second;
      ++pending.responses;
      if (found && version > pending.best_version) {
        pending.found = true;
        pending.best_version = version;
        pending.best_value = std::move(value);
      }
      if (pending.responses >= options_.read_quorum) {
        ReadResult result{pending.found, pending.best_version,
                          std::move(pending.best_value), pending.responses};
        auto cb = std::move(pending.done);
        reads_.erase(it);
        if (cb) cb(std::move(result));
      }
    }
  } catch (const CodecError& e) {
    STAB_ERROR("quorum: bad raw frame from " << src << ": " << e.what());
  }
}

std::optional<std::pair<uint64_t, Bytes>> QuorumNode::local_value(
    const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace stab::quorum
