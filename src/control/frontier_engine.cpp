#include "control/frontier_engine.hpp"

#include <algorithm>

namespace stab {

FrontierEngine::FrontierEngine(const Topology& topology, NodeId self,
                               StabilityTypeRegistry& types,
                               dsl::EvalMode mode)
    : topology_(topology),
      self_(self),
      types_(types),
      mode_(mode),
      acks_(topology.num_nodes()) {}

Result<dsl::Predicate> FrontierEngine::compile(const std::string& source) {
  dsl::PredicateContext ctx;
  ctx.topology = &topology_;
  ctx.self = self_;
  ctx.resolve_type = [this](const std::string& name) {
    // Auto-register: a predicate mentioning .verified makes "verified" a
    // reportable level from now on.
    return std::optional<StabilityTypeId>(types_.get_or_register(name));
  };
  return dsl::Predicate::compile(source, ctx, mode_);
}

Status FrontierEngine::register_predicate(const std::string& key,
                                          const std::string& source) {
  if (entries_.count(key))
    return Status::error("predicate '" + key +
                         "' already registered (use change_predicate)");
  auto pred = compile(source);
  if (!pred.is_ok()) return Status::error(pred.message());
  auto entry = std::make_unique<Entry>();
  entry->predicate = std::move(pred).value();
  for (StabilityTypeId t : entry->predicate.referenced_types())
    acks_.ensure_type(t);
  Entry& ref = *entry;
  entries_.emplace(key, std::move(entry));
  // Initial evaluation so frontier() is meaningful immediately.
  reevaluate(ref, {}, /*allow_regress=*/true);
  return Status::ok();
}

Status FrontierEngine::change_predicate(const std::string& key,
                                        const std::string& source) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  auto pred = compile(source);
  if (!pred.is_ok()) return Status::error(pred.message());
  it->second->predicate = std::move(pred).value();
  for (StabilityTypeId t : it->second->predicate.referenced_types())
    acks_.ensure_type(t);
  // Recompute across the swap; the frontier may regress (predicate gap).
  reevaluate(*it->second, {}, /*allow_regress=*/true);
  return Status::ok();
}

Status FrontierEngine::remove_predicate(const std::string& key) {
  if (!entries_.erase(key))
    return Status::error("predicate '" + key + "' not registered");
  return Status::ok();
}

bool FrontierEngine::has_predicate(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::vector<std::string> FrontierEngine::predicate_keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, _] : entries_) out.push_back(k);
  return out;
}

const dsl::Predicate* FrontierEngine::predicate(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second->predicate;
}

SeqNum FrontierEngine::frontier(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? kNoSeq : it->second->frontier;
}

Status FrontierEngine::monitor(const std::string& key, MonitorFn fn) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  it->second->monitors.push_back(std::move(fn));
  return Status::ok();
}

Status FrontierEngine::waitfor(const std::string& key, SeqNum seq,
                               WaiterFn fn) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  Entry& e = *it->second;
  if (e.frontier >= seq) {
    fn(e.frontier);  // already satisfied
    return Status::ok();
  }
  auto pos = std::lower_bound(
      e.waiters.begin(), e.waiters.end(), seq,
      [](const Waiter& w, SeqNum s) { return w.seq < s; });
  e.waiters.insert(pos, Waiter{seq, std::move(fn)});
  return Status::ok();
}

bool FrontierEngine::on_ack(StabilityTypeId type, NodeId node, SeqNum seq,
                            BytesView extra) {
  if (!acks_.update(type, node, seq)) return false;
  for (auto& [key, entry] : entries_) {
    // Skip predicates that cannot be affected by this cell.
    if (!entry->predicate.references_type(type) ||
        !entry->predicate.references_node(node))
      continue;
    reevaluate(*entry, extra, /*allow_regress=*/false);
  }
  return true;
}

void FrontierEngine::reevaluate_all() {
  for (auto& [key, entry] : entries_)
    reevaluate(*entry, {}, /*allow_regress=*/false);
}

void FrontierEngine::reevaluate(Entry& entry, BytesView extra,
                                bool allow_regress) {
  ++evaluations_;
  SeqNum next = entry.predicate.eval(acks_);
  if (next == entry.frontier) return;
  if (next < entry.frontier && !allow_regress) return;  // monotonic guard
  entry.frontier = next;
  for (const auto& m : entry.monitors) m(next, extra);
  // Wake waiters whose seq is now covered (sorted ascending).
  size_t fired = 0;
  while (fired < entry.waiters.size() && entry.waiters[fired].seq <= next)
    ++fired;
  if (fired > 0) {
    std::vector<Waiter> ready(
        std::make_move_iterator(entry.waiters.begin()),
        std::make_move_iterator(entry.waiters.begin() + fired));
    entry.waiters.erase(entry.waiters.begin(),
                        entry.waiters.begin() + fired);
    for (auto& w : ready) w.fn(next);
  }
}

}  // namespace stab
