#include "control/frontier_engine.hpp"

#include <algorithm>

namespace stab {

FrontierEngine::FrontierEngine(const Topology& topology, NodeId self,
                               StabilityTypeRegistry& types,
                               dsl::EvalMode mode)
    : topology_(topology),
      self_(self),
      types_(types),
      mode_(mode),
      acks_(topology.num_nodes()) {}

#if STAB_OBS_ENABLED
std::string FrontierEngine::lag_gauge_name(const std::string& key) const {
  return "control.frontier_lag.o" + std::to_string(obs_.origin) + "." + key;
}

void FrontierEngine::set_obs(ObsSinks sinks) {
  obs_ = std::move(sinks);
  // Backfill gauges for predicates registered before the sinks arrived.
  if (obs_.registry)
    for (auto& [key, entry] : entries_)
      entry->lag_gauge = &obs_.registry->gauge(lag_gauge_name(key));
}
#endif

Result<dsl::Predicate> FrontierEngine::compile(const std::string& source) {
  dsl::PredicateContext ctx;
  ctx.topology = &topology_;
  ctx.self = self_;
  ctx.resolve_type = [this](const std::string& name) {
    // Auto-register: a predicate mentioning .verified makes "verified" a
    // reportable level from now on.
    return std::optional<StabilityTypeId>(types_.get_or_register(name));
  };
  return dsl::Predicate::compile(source, ctx, mode_);
}

void FrontierEngine::index_entry(Entry& entry) {
  for (StabilityTypeId t : entry.predicate.referenced_types())
    for (NodeId n : entry.predicate.referenced_nodes()) {
      uint64_t key = cell_key(t, n);
      index_[key].push_back(&entry);
      entry.index_keys.push_back(key);
    }
}

void FrontierEngine::deindex_entry(Entry& entry) {
  for (uint64_t key : entry.index_keys) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    auto& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), &entry),
                 bucket.end());
    if (bucket.empty()) index_.erase(it);
  }
  entry.index_keys.clear();
}

Status FrontierEngine::register_predicate(const std::string& key,
                                          const std::string& source) {
  if (entries_.count(key))
    return Status::error("predicate '" + key +
                         "' already registered (use change_predicate)");
  auto pred = compile(source);
  if (!pred.is_ok()) return Status::error(pred.message());
  auto entry = std::make_unique<Entry>();
  entry->predicate = std::move(pred).value();
  for (StabilityTypeId t : entry->predicate.referenced_types())
    acks_.ensure_type(t);
  Entry& ref = *entry;
  STAB_OBS({
    ref.key = key;
    if (obs_.registry)
      ref.lag_gauge = &obs_.registry->gauge(lag_gauge_name(key));
  });
  entries_.emplace(key, std::move(entry));
  index_entry(ref);
  // Publish the board slot before the initial evaluation so the wait-free
  // read path sees the freshly computed frontier, not a registration gap.
  ref.board_slot = board_.publish(key, kNoSeq);
  // Initial evaluation so frontier() is meaningful immediately.
  reevaluate(ref, {}, /*allow_regress=*/true);
  return Status::ok();
}

Status FrontierEngine::change_predicate(const std::string& key,
                                        const std::string& source) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  auto pred = compile(source);
  if (!pred.is_ok()) return Status::error(pred.message());
  deindex_entry(*it->second);
  it->second->predicate = std::move(pred).value();
  for (StabilityTypeId t : it->second->predicate.referenced_types())
    acks_.ensure_type(t);
  index_entry(*it->second);
  // Recompute across the swap; the frontier may regress (predicate gap).
  reevaluate(*it->second, {}, /*allow_regress=*/true);
  return Status::ok();
}

Status FrontierEngine::remove_predicate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  std::unique_ptr<Entry> entry = std::move(it->second);
  deindex_entry(*entry);
  entries_.erase(it);
  board_.unpublish(key);
  // Fail pending waiters explicitly (removal can never cover their seq):
  // each fires once with kNoSeq so blocking callers don't hang forever.
  // The entry is already unlinked, so callbacks may re-register the key.
  for (auto& w : entry->waiters) w.fn(kNoSeq);
  return Status::ok();
}

size_t FrontierEngine::fail_all_waiters(SeqNum sentinel) {
  // Failover fencing: every parked waiter on this engine fires exactly once
  // with `sentinel` (kFencedSeq) and is discarded. Predicates, frontiers,
  // and monitors are untouched — only the one-shot waiters are unsatisfiable
  // once the stream's old sequence space is fenced. Waiters are moved out
  // before firing so a callback that re-arms a waitfor lands in the fresh
  // vector instead of being failed too.
  size_t failed = 0;
  for (auto& [key, entry] : entries_) {
    std::vector<Waiter> doomed;
    doomed.swap(entry->waiters);
    failed += doomed.size();
    for (auto& w : doomed) w.fn(sentinel);
  }
  return failed;
}

size_t FrontierEngine::pending_waiters() const {
  size_t n = 0;
  for (const auto& [key, entry] : entries_) n += entry->waiters.size();
  return n;
}

bool FrontierEngine::has_predicate(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::vector<std::string> FrontierEngine::predicate_keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, _] : entries_) out.push_back(k);
  return out;
}

const dsl::Predicate* FrontierEngine::predicate(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second->predicate;
}

SeqNum FrontierEngine::frontier(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? kNoSeq : it->second->frontier;
}

Status FrontierEngine::monitor(const std::string& key, MonitorFn fn) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  it->second->monitors.push_back(std::move(fn));
  return Status::ok();
}

Status FrontierEngine::waitfor(const std::string& key, SeqNum seq,
                               WaiterFn fn) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return Status::error("predicate '" + key + "' not registered");
  Entry& e = *it->second;
  if (e.frontier >= seq) {
    fn(e.frontier);  // already satisfied
    return Status::ok();
  }
  auto pos = std::lower_bound(
      e.waiters.begin(), e.waiters.end(), seq,
      [](const Waiter& w, SeqNum s) { return w.seq < s; });
  e.waiters.insert(pos, Waiter{seq, std::move(fn)});
  return Status::ok();
}

void FrontierEngine::dispatch_cell(StabilityTypeId type, NodeId node,
                                   int64_t old_value, SeqNum seq,
                                   BytesView extra) {
  if (dispatch_ == DispatchMode::kLegacyScan) {
    for (auto& [key, entry] : entries_) {
      // Skip predicates that cannot be affected by this cell.
      if (!entry->predicate.references_type(type) ||
          !entry->predicate.references_node(node)) {
        ++evals_skipped_index_;
        continue;
      }
      reevaluate(*entry, extra, /*allow_regress=*/false);
    }
    return;
  }
  auto it = index_.find(cell_key(type, node));
  const size_t affected = it == index_.end() ? 0 : it->second.size();
  evals_skipped_index_ += entries_.size() - affected;
  if (affected == 0) return;
  // Bounds-checked index loop: monitor/waiter callbacks may re-enter and
  // grow/shrink this bucket via register/change_predicate.
  auto& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    Entry* e = bucket[i];
    if (e->predicate.eval_skippable(old_value, seq, e->frontier)) {
      ++evals_skipped_binding_;
      continue;
    }
    reevaluate(*e, extra, /*allow_regress=*/false);
  }
}

bool FrontierEngine::on_ack(StabilityTypeId type, NodeId node, SeqNum seq,
                            BytesView extra) {
  int64_t old_value = kNoSeq;
  if (!acks_.update(type, node, seq, &old_value)) return false;
  STAB_OBS(if (seq > high_water_) high_water_ = seq);
  dispatch_cell(type, node, old_value, seq, extra);
  return true;
}

size_t FrontierEngine::on_ack_batch(std::span<const AckUpdate> updates) {
  if (dispatch_ == DispatchMode::kLegacyScan) {
    // Differential baseline: the seed's per-report behaviour.
    size_t advanced = 0;
    for (const AckUpdate& u : updates)
      if (on_ack(u.type, u.node, u.seq, u.extra)) ++advanced;
    return advanced;
  }

  // Phase 1: max-merge the whole batch, collecting the deduplicated set of
  // affected entries. `stamp` is captured locally so that re-entrant
  // batches (a monitor calling send/report_stability) cannot corrupt this
  // invocation's dedup marks — a re-entrant touch merely causes one extra
  // idempotent eval.
  const uint64_t stamp = ++batch_stamp_;
  std::vector<Entry*> dirty;
  size_t advanced = 0;
  for (const AckUpdate& u : updates) {
    int64_t old_value = kNoSeq;
    if (!acks_.update(u.type, u.node, u.seq, &old_value)) continue;
    ++advanced;
    STAB_OBS(if (u.seq > high_water_) high_water_ = u.seq);
    auto it = index_.find(cell_key(u.type, u.node));
    const size_t affected = it == index_.end() ? 0 : it->second.size();
    evals_skipped_index_ += entries_.size() - affected;
    if (affected == 0) continue;
    for (Entry* e : it->second) {
      // Binding-cell skip relative to the pre-batch frontier: sound because
      // each skippable update individually leaves the frontier fixed, so by
      // induction the whole batch does too (unless some other update dirties
      // the entry, in which case the final eval sees the full table anyway).
      if (e->predicate.eval_skippable(old_value, u.seq, e->frontier)) {
        ++evals_skipped_binding_;
        continue;
      }
      if (e->batch_stamp == stamp) {
        ++evals_skipped_index_;  // coalesced into this batch's one eval
        // Highest-sequence advancing report's extra wins: that report is the
        // one that determined the coalesced frontier, matching the extra the
        // legacy per-report path would have fired last.
        if (u.seq > e->pending_extra_seq) {
          e->pending_extra = u.extra;
          e->pending_extra_seq = u.seq;
        }
        continue;
      }
      e->batch_stamp = stamp;
      e->pending_extra = u.extra;
      e->pending_extra_seq = u.seq;
      dirty.push_back(e);
    }
  }

  // Phase 2: one eval per affected predicate. Entries are stable across
  // callbacks (change_predicate swaps in place; remove_predicate from a
  // callback is unsupported, as in the legacy scan).
  for (Entry* e : dirty) {
    BytesView extra = e->pending_extra;
    e->pending_extra = {};
    e->pending_extra_seq = kNoSeq;
    reevaluate(*e, extra, /*allow_regress=*/false);
  }
  return advanced;
}

void FrontierEngine::reevaluate_all() {
  for (auto& [key, entry] : entries_)
    reevaluate(*entry, {}, /*allow_regress=*/false);
}

void FrontierEngine::reevaluate(Entry& entry, BytesView extra,
                                bool allow_regress) {
  ++predicate_evals_;
#if STAB_OBS_ENABLED
  SeqNum next;
  // 1-in-16 sampled eval latency, timed on the active Env clock (virtual
  // time under the simulator, where evals take zero virtual nanoseconds —
  // real latencies require a RealtimeEnv run; see docs/OBSERVABILITY.md).
  if (obs_.eval_ns != nullptr && obs_.now && (predicate_evals_ & 0xF) == 0) {
    TimePoint t0 = obs_.now();
    next = entry.predicate.eval(acks_);
    obs_.eval_ns->record(static_cast<uint64_t>((obs_.now() - t0).count()));
  } else {
    next = entry.predicate.eval(acks_);
  }
#else
  SeqNum next = entry.predicate.eval(acks_);
#endif
  if (next == entry.frontier) return;
  if (next < entry.frontier && !allow_regress) return;  // monotonic guard
  [[maybe_unused]] const SeqNum prev_frontier = entry.frontier;
  entry.frontier = next;
  // Publish to the wait-free board before user callbacks run, so a reader
  // woken by a monitor observes a frontier at least as new as the wake.
  if (entry.board_slot != nullptr)
    entry.board_slot->frontier.store(next, std::memory_order_release);
#if STAB_OBS_ENABLED
  if (next >= 0) {
    // Frontier lag: how far the newest known message on this stream is
    // ahead of the predicate's frontier at the moment it fires.
    uint64_t lag =
        high_water_ > next ? static_cast<uint64_t>(high_water_ - next) : 0;
    if (obs_.frontier_lag != nullptr) obs_.frontier_lag->record(lag);
    if (entry.lag_gauge != nullptr)
      entry.lag_gauge->set(static_cast<int64_t>(lag));
    if (STAB_TRACE_WANTS(obs_.tracer, obs::SpanEvent::kFrontierFire) &&
        obs_.now)
      obs_.tracer->record(obs_.now(), obs::SpanEvent::kFrontierFire, obs_.node,
                          obs_.origin, next, kInvalidNode, entry.key);
    // Close send→stable spans at the ORIGIN's own engine only: the paper's
    // send→stable latency is "when does the sender learn its message is
    // stable", and closing at the first node to fire (under a cluster-shared
    // probe) would understate it nondeterministically. Skip advances whose
    // covered range (prev, next] holds no sampled sequence — the probe has
    // nothing to close, and paying its mutex on every advance would charge
    // the full probe cost regardless of the sampling rate (the probe's own
    // frontier-lag view is sampled at the same rate as a result).
    if (obs_.probe != nullptr && obs_.node == obs_.origin && obs_.now) {
      const uint64_t every = obs_.probe->sample_every();
      const bool covers_sample =
          prev_frontier < 0 ||  // range includes seq 0, always sampled
          static_cast<uint64_t>(next) / every >
              static_cast<uint64_t>(prev_frontier) / every;
      if (covers_sample)
        obs_.probe->on_stable(obs_.origin, next, high_water_, entry.key,
                              obs_.now());
    }
  }
#endif
  for (const auto& m : entry.monitors) m(next, extra);
  // Wake waiters whose seq is now covered (sorted ascending).
  size_t fired = 0;
  while (fired < entry.waiters.size() && entry.waiters[fired].seq <= next)
    ++fired;
  if (fired > 0) {
    std::vector<Waiter> ready(
        std::make_move_iterator(entry.waiters.begin()),
        std::make_move_iterator(entry.waiters.begin() + fired));
    entry.waiters.erase(entry.waiters.begin(),
                        entry.waiters.begin() + fired);
    for (auto& w : ready) w.fn(next);
  }
}

}  // namespace stab
