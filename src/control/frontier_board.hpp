// Wait-free frontier publication (DESIGN.md §4f).
//
// The FrontierEngine mutates predicate state under the Stabilizer's API
// mutex, but `get_stability_frontier` and the waitfor already-stable fast
// path must not queue behind ack drains. The board is the bridge: each
// registered predicate gets a Slot holding its frontier in a single atomic
// word, and the key -> Slot* map is published as an immutable snapshot
// through one atomic pointer (epoch publication — the same plain-mutation/
// atomic-fold layering as the obs registry and StabilityTypeRegistry).
//
//   * Writers (register/change/remove/reevaluate) are externally serialized
//     by the engine's caller. Structural changes copy the map, swap the
//     pointer, and retire the old copy to a graveyard freed at destruction,
//     so a reader holding a stale snapshot never dangles.
//   * Frontier advances are NOT structural: reevaluate() just stores into
//     the existing Slot. Readers see them with no map republish at all.
//   * Readers (`read`) are wait-free: one acquire load of the snapshot
//     pointer, one hash lookup, one atomic load. No CAS, no retry loop —
//     unlike a seqlock there is no "writer active" window to spin on.
//
// Slots live in a deque so their addresses survive map republication; a
// removed predicate's slot is reset to kNoSeq and kept allocated (slot
// count is bounded by total predicates ever registered, which is small).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace stab {

class FrontierBoard {
 public:
  struct Slot {
    std::atomic<int64_t> frontier{kNoSeq};
  };

  FrontierBoard() { publish_locked(); }
  FrontierBoard(const FrontierBoard&) = delete;
  FrontierBoard& operator=(const FrontierBoard&) = delete;
  ~FrontierBoard() { delete published_.load(std::memory_order_relaxed); }

  /// Writer side (caller-serialized): create or reuse the slot for `key`,
  /// publish it, and return it. The returned pointer is stable forever.
  Slot* publish(const std::string& key, SeqNum initial) {
    Slot* slot;
    auto it = map_.find(key);
    if (it != map_.end()) {
      slot = it->second;
    } else {
      slots_.emplace_back();
      slot = &slots_.back();
      map_.emplace(key, slot);
    }
    slot->frontier.store(initial, std::memory_order_release);
    publish_locked();
    return slot;
  }

  /// Writer side: retire `key`. Readers racing the removal may observe one
  /// last kNoSeq (= "nothing stable / unknown"), never a stale frontier.
  void unpublish(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    it->second->frontier.store(kNoSeq, std::memory_order_release);
    map_.erase(it);
    publish_locked();
  }

  /// Wait-free read from any thread. nullopt = key not published (caller
  /// falls back to the locked path, which gives the authoritative answer).
  std::optional<SeqNum> read(std::string_view key) const {
    const Map* snap = published_.load(std::memory_order_acquire);
    auto it = snap->find(key);
    if (it == snap->end()) return std::nullopt;
    return it->second->frontier.load(std::memory_order_acquire);
  }

 private:
  // Heterogeneous-lookup map so read(string_view) never allocates a key.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Map = std::unordered_map<std::string, Slot*, Hash, std::equal_to<>>;

  void publish_locked() {
    auto* next = new Map(map_);
    const Map* old = published_.exchange(next, std::memory_order_acq_rel);
    if (old) graveyard_.emplace_back(old);
  }

  Map map_;  // writer's working copy
  std::atomic<const Map*> published_{nullptr};
  std::vector<std::unique_ptr<const Map>> graveyard_;
  std::deque<Slot> slots_;  // stable addresses across republication
};

}  // namespace stab
