// Composite cross-shard stability predicates (DESIGN.md §9).
//
// A keyspace-sharded deployment runs one FrontierEngine per shard, each
// publishing its per-key frontiers through its own epoch-snapshot
// FrontierBoard. A cross-shard predicate ("is key k stable at cut C?") is
// answered by *min-combining* the member shards' frontiers: the composite
// frontier of key k is min over shards s of frontier_s(k), so it can never
// exceed any member shard and advances only when every shard advances —
// exactly the semantics of a conjunction of per-shard waitfors.
//
// The combine runs entirely on board reads: wait-free, no shard lock is
// touched, and each element of the returned vector is individually a
// consistent published snapshot (the vector as a whole is a fuzzy cut, which
// is sound for stability because frontiers are monotone: every element is a
// *lower bound* on that shard's current frontier, so min-combine under-
// approximates and never reports unstable data as stable).
#pragma once

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "control/frontier_board.hpp"

namespace stab::control {

/// A cross-shard cut: entry s is a sequence number in shard s's stream
/// space (kNoSeq = "no requirement on this shard").
using ShardCut = std::vector<SeqNum>;

/// Read-side view over the per-shard FrontierBoards of one predicate key.
/// Holds non-owning pointers: the boards must outlive the composite (they
/// live inside the per-shard engines, which the sharded facade owns).
class CompositeFrontier {
 public:
  explicit CompositeFrontier(std::vector<const FrontierBoard*> boards)
      : boards_(std::move(boards)) {}

  size_t num_shards() const { return boards_.size(); }

  /// Per-shard frontier vector of `key`, one wait-free board read per shard.
  /// A shard that has not published the key reads as kNoSeq (its frontier
  /// for the key is "nothing", which correctly dominates the min).
  ShardCut snapshot(std::string_view key) const {
    ShardCut cut;
    cut.reserve(boards_.size());
    for (const FrontierBoard* b : boards_) {
      auto f = b->read(key);
      cut.push_back(f ? *f : kNoSeq);
    }
    return cut;
  }

  /// Min-combined composite frontier of `key`: never exceeds any member
  /// shard's frontier, monotone under per-shard advances.
  SeqNum combined(std::string_view key) const {
    SeqNum m = kNoSeq;
    bool first = true;
    for (const FrontierBoard* b : boards_) {
      auto f = b->read(key);
      const SeqNum v = f ? *f : kNoSeq;
      m = first ? v : std::min(m, v);
      first = false;
    }
    return m;
  }

  /// True iff the frontier vector covers the cut shard-wise: for every
  /// shard s with cut[s] != kNoSeq, frontiers[s] >= cut[s]. A cut entry of
  /// kNoSeq is vacuously covered (no requirement). Vectors shorter than the
  /// other are treated as kNoSeq-padded.
  static bool covers(const ShardCut& frontiers, const ShardCut& cut) {
    for (size_t s = 0; s < cut.size(); ++s) {
      if (cut[s] == kNoSeq) continue;
      const SeqNum f = s < frontiers.size() ? frontiers[s] : kNoSeq;
      if (f < cut[s]) return false;
    }
    return true;
  }

 private:
  std::vector<const FrontierBoard*> boards_;
};

}  // namespace stab::control
