// Deferred stability propagation: the mirror-side accumulator (DESIGN.md
// §10, after Gunawardhana et al.'s deferred update stabilization).
//
// In immediate mode every local stability advance is queued for the next
// ack_interval flush, which costs O(nodes × types) ACKBATCH traffic per
// interval across the fleet. In deferred mode the Stabilizer parks plain
// (extra-free) monotonic reports here instead; the accumulated cumulative
// vector is flushed as one REPORTBATCH frame when the deferred flush timer
// fires or the accumulated seq-advance delta crosses a threshold.
//
// The same object implements the AZ-aggregator merge: absorb() max-merges a
// *peer's* flushed block into that reporter's pending vector, so an
// aggregator's take_flush() emits one frame carrying every AZ member's
// vector merged since its last long-haul flush.
//
// Correctness leans on reports being cumulative maxima: merging is
// associative and commutative, re-noting an already-flushed seq after a
// flush simply re-emits it (which is exactly what the retransmit heartbeat
// needs to heal a lost flush frame), and duplicate application downstream
// is idempotent. take_flush() clears pending state — entries re-enter only
// when something advances them again (or the heartbeat re-notes them).
//
// Not thread-safe: the owning Stabilizer drives it under its own mutex.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "data/wire.hpp"

namespace stab::control {

class DeferredReporter {
 public:
  /// `num_nodes` bounds the reporter index space (one pending block per
  /// potential reporter: self plus, on an aggregator, every AZ member).
  explicit DeferredReporter(size_t num_nodes);

  /// Max-merges one plain report into `reporter`'s pending block. `epoch`
  /// is the reporter's own-stream primary epoch at note time. Returns true
  /// iff the pending cell advanced (new cell, or seq strictly above the
  /// pending value).
  bool note(NodeId reporter, PrimaryEpoch epoch, NodeId about,
            StabilityTypeId type, SeqNum seq);

  /// Aggregator path: max-merges every entry of a received block into that
  /// reporter's pending vector. Returns the number of cells advanced.
  size_t absorb(const data::ReportBlock& block);

  bool empty() const { return pending_cells_ == 0; }

  /// Total seq units advanced since the last take_flush() — the delta the
  /// flush threshold compares against. A cell first noted at seq s counts
  /// as s+1 units (seq numbers start at 0).
  uint64_t pending_delta() const { return pending_delta_; }

  /// Drains every pending block (reporter order; entries keyed by
  /// (about, type)) and resets pending state. Empty result iff empty().
  std::vector<data::ReportBlock> take_flush();

 private:
  struct Block {
    PrimaryEpoch epoch = 0;
    // Deterministically ordered so flush frames are reproducible per seed.
    std::map<std::pair<NodeId, StabilityTypeId>, SeqNum> cells;
  };
  std::vector<Block> blocks_;  // indexed by reporter
  size_t pending_cells_ = 0;
  uint64_t pending_delta_ = 0;
};

}  // namespace stab::control
