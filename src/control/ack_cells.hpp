// Relaxed-atomic accumulation cells for monotonic stability reports
// (DESIGN.md §4f).
//
// One block per origin stream mirrors that stream's AckTable shape: a dense
// (type, node) grid where each cell is a single atomic max. Transport
// receive threads fold plain ACK entries straight into the cells with a
// lock-free CAS-max — no mutex, no allocation — and the control drain later
// diffs the grid against a consumer-owned shadow copy to emit one coalesced
// AckUpdate per advanced cell into FrontierEngine::on_ack_batch.
//
// Why coalescing is lossless: reports are monotonic max-merges (paper
// §III-A), so only the final value of a cell matters; intermediate values
// produce the same frontier the moment the final one lands. Reports that
// carry extra bytes are NOT routed here (the extra must reach the matching
// eval), nor are types beyond the block's fixed capacity — both take the
// ingestion-ring path instead. offer() refuses them by returning false.
//
// Ordering: cell CAS loops are relaxed (each cell is an independent
// monotonic word); the block-level dirty flag is release-set after the cell
// write and acquire-consumed by drain(), so a drain that observes the flag
// also observes the advance that set it. A drain racing an in-flight offer
// may miss that value, but the offer re-sets the flag, so the next drain
// picks it up — nothing is lost, only deferred.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace stab {

class AckCellBlock {
 public:
  AckCellBlock(size_t num_types, size_t num_nodes)
      : num_types_(num_types),
        num_nodes_(num_nodes),
        cells_(std::make_unique<std::atomic<int64_t>[]>(num_types *
                                                        num_nodes)),
        shadow_(std::make_unique<int64_t[]>(num_types * num_nodes)) {
    for (size_t i = 0; i < num_types * num_nodes; ++i) {
      cells_[i].store(kNoSeq, std::memory_order_relaxed);
      shadow_[i] = kNoSeq;
    }
  }

  size_t num_types() const { return num_types_; }
  size_t num_nodes() const { return num_nodes_; }

  /// Producer side, any thread. Max-merges `seq` into cell (type, node).
  /// Returns false when the report is outside the grid — the caller must
  /// route it through the ingestion ring instead. `*advanced` is set true
  /// iff this call moved the cell forward (drain-arming hint).
  bool offer(StabilityTypeId type, NodeId node, SeqNum seq, bool* advanced) {
    *advanced = false;
    if (type >= num_types_ || node >= num_nodes_) return false;
    std::atomic<int64_t>& cell = cells_[type * num_nodes_ + node];
    int64_t cur = cell.load(std::memory_order_relaxed);
    while (seq > cur) {
      if (cell.compare_exchange_weak(cur, seq, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
        *advanced = true;
        dirty_.store(true, std::memory_order_release);
        break;
      }
      // cur reloaded by the failed CAS; loop exits once someone else
      // published an equal-or-higher seq.
    }
    return true;
  }

  /// True when an offer advanced a cell since the last drain.
  bool dirty() const { return dirty_.load(std::memory_order_acquire); }

  /// Consumer side (caller-serialized): diff the grid against the shadow and
  /// invoke `fn(type, node, seq)` once per advanced cell. Returns the number
  /// of cells emitted.
  template <typename Fn>
  size_t drain(Fn&& fn) {
    if (!dirty_.exchange(false, std::memory_order_acq_rel)) return 0;
    size_t emitted = 0;
    for (size_t t = 0; t < num_types_; ++t) {
      for (size_t n = 0; n < num_nodes_; ++n) {
        const size_t i = t * num_nodes_ + n;
        const int64_t v = cells_[i].load(std::memory_order_acquire);
        if (v > shadow_[i]) {
          shadow_[i] = v;
          fn(static_cast<StabilityTypeId>(t), static_cast<NodeId>(n), v);
          ++emitted;
        }
      }
    }
    return emitted;
  }

 private:
  const size_t num_types_;
  const size_t num_nodes_;
  std::unique_ptr<std::atomic<int64_t>[]> cells_;
  std::unique_ptr<int64_t[]> shadow_;  // consumer-owned last-drained values
  std::atomic<bool> dirty_{false};
};

}  // namespace stab
