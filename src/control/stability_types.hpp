// Registry of stability types (levels).
//
// The paper ships three built-in levels matching the data pipeline —
// received, persisted, delivered (§III-A "a series of levels of stability")
// — and lets applications define new ones ("verified, countersigned, etc",
// §III-C). Types are dense ids so the AckTable can store one row per type.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace stab {

class StabilityTypeRegistry {
 public:
  static constexpr StabilityTypeId kReceived = 0;
  static constexpr StabilityTypeId kPersisted = 1;
  static constexpr StabilityTypeId kDelivered = 2;

  StabilityTypeRegistry() : names_{"received", "persisted", "delivered"} {}

  /// Returns the id for `name`, registering it if new.
  StabilityTypeId get_or_register(const std::string& name) {
    if (auto id = find(name)) return *id;
    names_.push_back(name);
    return static_cast<StabilityTypeId>(names_.size() - 1);
  }

  std::optional<StabilityTypeId> find(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<StabilityTypeId>(i);
    return std::nullopt;
  }

  const std::string& name(StabilityTypeId id) const { return names_.at(id); }
  size_t count() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

}  // namespace stab
