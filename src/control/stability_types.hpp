// Registry of stability types (levels).
//
// The paper ships three built-in levels matching the data pipeline —
// received, persisted, delivered (§III-A "a series of levels of stability")
// — and lets applications define new ones ("verified, countersigned, etc",
// §III-C). Types are dense ids so the AckTable can store one row per type.
//
// Threading: mutation (get_or_register) is rare and externally serialized by
// the Stabilizer's API mutex. Lookup by name also happens on the pipelined
// report_stability fast path, which must not take that mutex — so every
// mutation publishes an immutable snapshot of the name list through an
// atomic pointer, and find_fast() reads the snapshot wait-free. Retired
// snapshots go to a graveyard freed at destruction: a reader that loaded an
// old pointer stays valid for the registry's lifetime (same epoch-publication
// scheme as control/frontier_board.hpp).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace stab {

class StabilityTypeRegistry {
 public:
  static constexpr StabilityTypeId kReceived = 0;
  static constexpr StabilityTypeId kPersisted = 1;
  static constexpr StabilityTypeId kDelivered = 2;

  StabilityTypeRegistry() : names_{"received", "persisted", "delivered"} {
    publish();
  }

  StabilityTypeRegistry(const StabilityTypeRegistry&) = delete;
  StabilityTypeRegistry& operator=(const StabilityTypeRegistry&) = delete;

  ~StabilityTypeRegistry() {
    delete published_.load(std::memory_order_relaxed);
  }

  /// Returns the id for `name`, registering it if new. Caller-serialized
  /// (the facade mutex); never concurrent with itself.
  StabilityTypeId get_or_register(const std::string& name) {
    if (auto id = find(name)) return *id;
    names_.push_back(name);
    publish();
    return static_cast<StabilityTypeId>(names_.size() - 1);
  }

  std::optional<StabilityTypeId> find(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<StabilityTypeId>(i);
    return std::nullopt;
  }

  /// Wait-free lookup against the last published snapshot. Safe from any
  /// thread with no lock; may miss a type registered concurrently (the
  /// caller then falls back to the locked slow path, which re-checks).
  std::optional<StabilityTypeId> find_fast(std::string_view name) const {
    const auto* snap = published_.load(std::memory_order_acquire);
    for (size_t i = 0; i < snap->size(); ++i)
      if ((*snap)[i] == name) return static_cast<StabilityTypeId>(i);
    return std::nullopt;
  }

  const std::string& name(StabilityTypeId id) const { return names_.at(id); }
  size_t count() const { return names_.size(); }

 private:
  void publish() {
    auto* next = new std::vector<std::string>(names_);
    const auto* old = published_.exchange(next, std::memory_order_acq_rel);
    if (old) graveyard_.emplace_back(old);
  }

  std::vector<std::string> names_;
  std::atomic<const std::vector<std::string>*> published_{nullptr};
  // Retired snapshots, kept alive so wait-free readers never dangle.
  std::vector<std::unique_ptr<const std::vector<std::string>>> graveyard_;
};

}  // namespace stab
