#include "control/deferred_reporter.hpp"

#include <stdexcept>

namespace stab::control {

DeferredReporter::DeferredReporter(size_t num_nodes) : blocks_(num_nodes) {}

bool DeferredReporter::note(NodeId reporter, PrimaryEpoch epoch, NodeId about,
                            StabilityTypeId type, SeqNum seq) {
  if (reporter >= blocks_.size())
    throw std::out_of_range("DeferredReporter: reporter out of range");
  Block& b = blocks_[reporter];
  if (epoch > b.epoch) b.epoch = epoch;
  auto [it, inserted] = b.cells.try_emplace({about, type}, seq);
  if (inserted) {
    ++pending_cells_;
    pending_delta_ += static_cast<uint64_t>(seq + 1);
    return true;
  }
  if (seq <= it->second) return false;
  pending_delta_ += static_cast<uint64_t>(seq - it->second);
  it->second = seq;
  return true;
}

size_t DeferredReporter::absorb(const data::ReportBlock& block) {
  size_t advanced = 0;
  for (const data::ReportEntry& e : block.entries)
    if (note(block.reporter, block.primary_epoch, e.about_origin, e.type,
             e.seq))
      ++advanced;
  return advanced;
}

std::vector<data::ReportBlock> DeferredReporter::take_flush() {
  std::vector<data::ReportBlock> out;
  if (pending_cells_ == 0) return out;
  for (NodeId r = 0; r < blocks_.size(); ++r) {
    Block& b = blocks_[r];
    if (b.cells.empty()) continue;
    data::ReportBlock rb;
    rb.reporter = r;
    rb.primary_epoch = b.epoch;
    rb.entries.reserve(b.cells.size());
    for (const auto& [key, seq] : b.cells)
      rb.entries.push_back({key.first, key.second, seq});
    b.cells.clear();
    out.push_back(std::move(rb));
  }
  pending_cells_ = 0;
  pending_delta_ = 0;
  return out;
}

}  // namespace stab::control
