// The control plane's predicate engine.
//
// Owns the AckTable and the registered stability-frontier predicates for one
// origin stream. Every incoming monotonic stability report re-evaluates the
// predicates that reference the updated (node, type) cell; when a
// predicate's frontier advances, registered monitors fire and pending
// waitfor() callbacks whose sequence number is now covered are woken
// (paper §III-D interfaces).
//
// Hot-path dispatch (DESIGN.md §4c): instead of scanning every registered
// predicate per report, the engine maintains a reverse dependency index
// (type, node) -> [entries], rebuilt on register/change/remove. Whole ack
// batches are applied with on_ack_batch(): the batch is max-merged into the
// AckTable first, the affected entries are collected (deduplicated), and
// each predicate re-evaluates exactly once per batch — monotonicity makes
// the coalescing lossless (§III-A). Specialized predicates additionally
// skip provably no-op evaluations via their cached binding bound
// (Predicate::eval_skippable). set_dispatch_mode(kLegacyScan) restores the
// original scan-everything/eval-per-report behaviour for differential tests
// and the bench_control_hotpath baseline.
//
// The engine is synchronous and single-threaded by design: callers (the
// Stabilizer core, tests) drive it from their Env thread, which is what
// makes whole-cluster simulation deterministic. Monitor/waiter callbacks
// may re-enter the engine (register_predicate, on_ack, waitfor, ...);
// remove_predicate from inside a callback is not supported.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "config/topology.hpp"
#include "control/ack_table.hpp"
#include "control/frontier_board.hpp"
#include "control/stability_types.hpp"
#include "dsl/predicate.hpp"
#include "obs/obs.hpp"

namespace stab {

/// One monotonic stability report — the unit of batched control-plane
/// application. `extra` must stay alive for the duration of the
/// on_ack_batch() call that consumes the update.
struct AckUpdate {
  StabilityTypeId type = 0;
  NodeId node = kInvalidNode;
  SeqNum seq = kNoSeq;
  BytesView extra{};
};

class FrontierEngine {
 public:
  /// Monitor callback: new frontier plus the uninterpreted extra bytes the
  /// triggering stability report carried (empty for plain ACKs). When a
  /// batch coalesces several advancing reports for one predicate, monitors
  /// fire once with the final frontier and the extra of the highest-sequence
  /// advancing report — the one that determined the coalesced frontier, which
  /// is the extra the legacy per-report path would have fired last.
  using MonitorFn = std::function<void(SeqNum frontier, BytesView extra)>;
  using WaiterFn = std::function<void(SeqNum frontier)>;

  /// Dispatch strategy for incoming stability reports.
  enum class DispatchMode {
    kLegacyScan,  // seed behaviour: scan all entries, eval per report
    kIndexed,     // reverse-index dispatch + batch dedup + binding skip
  };

  FrontierEngine(const Topology& topology, NodeId self,
                 StabilityTypeRegistry& types,
                 dsl::EvalMode mode = dsl::EvalMode::kSpecialized);

  // --- predicate management (paper: register_predicate / change_predicate) --
  /// Compiles and registers a new predicate. Fails if the key exists or the
  /// source does not compile. Unknown stability-type suffixes are
  /// auto-registered (they become reportable levels).
  Status register_predicate(const std::string& key, const std::string& source);

  /// Replaces an existing predicate (dynamic reconfiguration, §VI-D). The
  /// frontier is recomputed immediately; it may move backward across the
  /// swap — "the user should be responsible for handling such a gap" — in
  /// which case monitors fire with the new (lower) value but waiters are
  /// only woken by coverage.
  Status change_predicate(const std::string& key, const std::string& source);

  /// Unregisters a predicate. Pending waiters are failed explicitly: each
  /// is invoked once with kNoSeq (never a covering frontier), so
  /// waitfor_blocking callers observe the removal instead of hanging
  /// forever. Waiter callbacks must treat kNoSeq as "predicate removed".
  Status remove_predicate(const std::string& key);

  /// Failover fencing: fires every parked waiter (across every predicate)
  /// once with `sentinel` — kFencedSeq when the local node was deposed as
  /// this stream's primary — and discards it. Predicates, frontiers, and
  /// monitors are untouched. Returns the number of waiters failed. Waiter
  /// callbacks may re-arm waitfor(); the re-armed waiters are kept.
  size_t fail_all_waiters(SeqNum sentinel);
  /// Parked (not yet fired) waitfor callbacks across every predicate — the
  /// "none left parked" failover invariant reads this.
  size_t pending_waiters() const;

  bool has_predicate(const std::string& key) const;
  std::vector<std::string> predicate_keys() const;
  const dsl::Predicate* predicate(const std::string& key) const;

  /// Last computed frontier for `key`; kNoSeq if unknown key or nothing
  /// stable yet.
  SeqNum frontier(const std::string& key) const;

  // --- observers -------------------------------------------------------------
  /// monitor_stability_frontier: fire `fn` whenever the predicate reports a
  /// new frontier. Multiple monitors per key are allowed.
  Status monitor(const std::string& key, MonitorFn fn);

  /// waitfor: invoke `fn` once, as soon as frontier(key) >= seq (immediately
  /// if already true). If the predicate is removed first, `fn` fires once
  /// with kNoSeq instead.
  Status waitfor(const std::string& key, SeqNum seq, WaiterFn fn);

  // --- control-plane input ----------------------------------------------------
  /// Apply a single stability report. Returns true iff the table advanced.
  /// Fires monitors/waiters for every affected predicate.
  bool on_ack(StabilityTypeId type, NodeId node, SeqNum seq,
              BytesView extra = {});

  /// Batch apply: max-merges every update into the AckTable first, then
  /// re-evaluates each affected predicate exactly once (kIndexed mode;
  /// kLegacyScan applies per entry). Returns the number of updates that
  /// advanced the table. Cost is O(affected predicates per batch), not
  /// O(predicates x updates).
  size_t on_ack_batch(std::span<const AckUpdate> updates);

  /// Re-evaluate every predicate (used after bulk table mutation/recovery).
  void reevaluate_all();

  DispatchMode dispatch_mode() const { return dispatch_; }
  void set_dispatch_mode(DispatchMode mode) { dispatch_ = mode; }

  AckTable& acks() { return acks_; }
  const AckTable& acks() const { return acks_; }
  StabilityTypeRegistry& types() { return types_; }
  NodeId self() const { return self_; }

  /// Wait-free snapshot of every predicate's frontier (DESIGN.md §4f). The
  /// board outlives individual predicates; reads are safe from any thread
  /// while the engine mutates under its caller's lock.
  const FrontierBoard& board() const { return board_; }

  // --- hot-path observability ---------------------------------------------------
#if STAB_OBS_ENABLED
  /// Observability sinks, wired by the owning Stabilizer. Every field is
  /// optional (null/empty = not recorded). `now` must read the active Env
  /// clock so eval timing and kFrontierFire spans are deterministic under
  /// the simulator. Call from the engine's own thread (no internal locking;
  /// the sinks themselves are thread-safe).
  struct ObsSinks {
    obs::MetricsRegistry* registry = nullptr;  // owns the per-key lag gauges
    obs::Histogram* frontier_lag = nullptr;    // lag sample per frontier fire
    obs::Histogram* eval_ns = nullptr;         // sampled (1/16) eval latency
    obs::Tracer* tracer = nullptr;             // kFrontierFire spans
    obs::LatencyProbe* probe = nullptr;        // send→stable span closes
    NodeId node = kInvalidNode;                // evaluating node (trace id)
    NodeId origin = kInvalidNode;              // this engine's origin stream
    std::function<TimePoint()> now;
  };
  void set_obs(ObsSinks sinks);
#endif

  /// Total Predicate::eval calls performed.
  uint64_t predicate_evals() const { return predicate_evals_; }
  /// Evals avoided by dispatch: predicates not referencing an advanced cell
  /// (reverse index / legacy reference check) plus batch deduplication.
  uint64_t evals_skipped_index() const { return evals_skipped_index_; }
  /// Evals avoided by the specialized binding-cell bound (lossless: the
  /// skipped eval provably could not have moved the frontier).
  uint64_t evals_skipped_binding() const { return evals_skipped_binding_; }
  /// Back-compat alias for predicate_evals().
  uint64_t evaluations() const { return predicate_evals_; }

 private:
  struct Waiter {
    SeqNum seq;
    WaiterFn fn;
  };
  struct Entry {
    dsl::Predicate predicate;
    SeqNum frontier = kNoSeq;
    std::vector<MonitorFn> monitors;
    std::vector<Waiter> waiters;  // kept sorted by seq ascending
    std::vector<uint64_t> index_keys;  // cells this entry is indexed under
    uint64_t batch_stamp = 0;          // dedup marker (see on_ack_batch)
    BytesView pending_extra{};         // extra routed to this entry's eval
    SeqNum pending_extra_seq = kNoSeq; // seq of the report carrying it
    FrontierBoard::Slot* board_slot = nullptr;  // wait-free published copy
#if STAB_OBS_ENABLED
    std::string key;                   // registration key (trace detail)
    obs::Gauge* lag_gauge = nullptr;   // control.frontier_lag.oN.<key>
#endif
  };

  static uint64_t cell_key(StabilityTypeId type, NodeId node) {
    return (static_cast<uint64_t>(type) << 32) | node;
  }

  Result<dsl::Predicate> compile(const std::string& source);
  void reevaluate(Entry& entry, BytesView extra, bool allow_regress);
  /// Adds `entry` to the reverse index under every (type, node) cell its
  /// predicate references (the same cross product the legacy reference
  /// check tests, so both dispatch paths agree on which reports matter).
  void index_entry(Entry& entry);
  void deindex_entry(Entry& entry);
  /// Dispatches one advanced cell to the affected entries, evaluating
  /// immediately (single-report path).
  void dispatch_cell(StabilityTypeId type, NodeId node, int64_t old_value,
                     SeqNum seq, BytesView extra);

  const Topology& topology_;
  NodeId self_;
  StabilityTypeRegistry& types_;
  dsl::EvalMode mode_;
  DispatchMode dispatch_ = DispatchMode::kIndexed;
  AckTable acks_;
  FrontierBoard board_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::unordered_map<uint64_t, std::vector<Entry*>> index_;
  uint64_t batch_stamp_ = 0;
  uint64_t predicate_evals_ = 0;
  uint64_t evals_skipped_index_ = 0;
  uint64_t evals_skipped_binding_ = 0;
#if STAB_OBS_ENABLED
  std::string lag_gauge_name(const std::string& key) const;
  ObsSinks obs_;
  // Highest sequence any report has mentioned for this stream — the
  // "newest message we know of" reference point for frontier lag.
  SeqNum high_water_ = kNoSeq;
#endif
};

}  // namespace stab
