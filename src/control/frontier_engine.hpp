// The control plane's predicate engine.
//
// Owns the AckTable and the registered stability-frontier predicates for one
// origin stream. Every incoming monotonic stability report re-evaluates the
// predicates that reference the updated (node, type) cell; when a
// predicate's frontier advances, registered monitors fire and pending
// waitfor() callbacks whose sequence number is now covered are woken
// (paper §III-D interfaces).
//
// The engine is synchronous and single-threaded by design: callers (the
// Stabilizer core, tests) drive it from their Env thread, which is what
// makes whole-cluster simulation deterministic.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "config/topology.hpp"
#include "control/ack_table.hpp"
#include "control/stability_types.hpp"
#include "dsl/predicate.hpp"

namespace stab {

class FrontierEngine {
 public:
  /// Monitor callback: new frontier plus the uninterpreted extra bytes the
  /// triggering stability report carried (empty for plain ACKs).
  using MonitorFn = std::function<void(SeqNum frontier, BytesView extra)>;
  using WaiterFn = std::function<void(SeqNum frontier)>;

  FrontierEngine(const Topology& topology, NodeId self,
                 StabilityTypeRegistry& types,
                 dsl::EvalMode mode = dsl::EvalMode::kSpecialized);

  // --- predicate management (paper: register_predicate / change_predicate) --
  /// Compiles and registers a new predicate. Fails if the key exists or the
  /// source does not compile. Unknown stability-type suffixes are
  /// auto-registered (they become reportable levels).
  Status register_predicate(const std::string& key, const std::string& source);

  /// Replaces an existing predicate (dynamic reconfiguration, §VI-D). The
  /// frontier is recomputed immediately; it may move backward across the
  /// swap — "the user should be responsible for handling such a gap" — in
  /// which case monitors fire with the new (lower) value but waiters are
  /// only woken by coverage.
  Status change_predicate(const std::string& key, const std::string& source);

  Status remove_predicate(const std::string& key);
  bool has_predicate(const std::string& key) const;
  std::vector<std::string> predicate_keys() const;
  const dsl::Predicate* predicate(const std::string& key) const;

  /// Last computed frontier for `key`; kNoSeq if unknown key or nothing
  /// stable yet.
  SeqNum frontier(const std::string& key) const;

  // --- observers -------------------------------------------------------------
  /// monitor_stability_frontier: fire `fn` whenever the predicate reports a
  /// new frontier. Multiple monitors per key are allowed.
  Status monitor(const std::string& key, MonitorFn fn);

  /// waitfor: invoke `fn` once, as soon as frontier(key) >= seq (immediately
  /// if already true).
  Status waitfor(const std::string& key, SeqNum seq, WaiterFn fn);

  // --- control-plane input ----------------------------------------------------
  /// Apply a stability report. Returns true iff the table advanced. Fires
  /// monitors/waiters for every affected predicate.
  bool on_ack(StabilityTypeId type, NodeId node, SeqNum seq,
              BytesView extra = {});

  /// Re-evaluate every predicate (used after bulk table mutation/recovery).
  void reevaluate_all();

  AckTable& acks() { return acks_; }
  const AckTable& acks() const { return acks_; }
  StabilityTypeRegistry& types() { return types_; }
  NodeId self() const { return self_; }

  /// Total predicate evaluations performed (benchmarks / tests).
  uint64_t evaluations() const { return evaluations_; }

 private:
  struct Waiter {
    SeqNum seq;
    WaiterFn fn;
  };
  struct Entry {
    dsl::Predicate predicate;
    SeqNum frontier = kNoSeq;
    std::vector<MonitorFn> monitors;
    std::vector<Waiter> waiters;  // kept sorted by seq ascending
  };

  Result<dsl::Predicate> compile(const std::string& source);
  void reevaluate(Entry& entry, BytesView extra, bool allow_regress);

  const Topology& topology_;
  NodeId self_;
  StabilityTypeRegistry& types_;
  dsl::EvalMode mode_;
  AckTable acks_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  uint64_t evaluations_ = 0;
};

}  // namespace stab
