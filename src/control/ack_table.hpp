// The message ACK recorder (Fig 1): per stability type, per WAN node, the
// highest sequence number that node has acknowledged.
//
// Inspired by Derecho's shared state table (SST): entries are monotonic
// counters, so a newer report may overwrite an older one and reports may be
// batched or reordered without losing information — "the upcall for Y
// implies the stability of messages prior to Y" (§III-A). update() is a
// max-merge and says whether anything changed, which drives incremental
// predicate re-evaluation.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "dsl/resolved.hpp"

namespace stab {

class AckTable final : public dsl::AckSource {
 public:
  explicit AckTable(size_t num_nodes) : num_nodes_(num_nodes) {}

  size_t num_nodes() const { return num_nodes_; }

  /// Monotonic merge: row[type][node] = max(old, seq). Returns true iff the
  /// entry advanced. Out-of-range nodes are ignored (returns false). When
  /// `old_value` is given it receives the cell's pre-merge value — the
  /// frontier engine's binding-cell skip needs it to decide whether the
  /// updated cell was binding.
  bool update(StabilityTypeId type, NodeId node, SeqNum seq,
              int64_t* old_value = nullptr) {
    if (node >= num_nodes_) return false;
    ensure_type(type);
    int64_t& cell = rows_[type][node];
    if (old_value) *old_value = cell;
    if (seq <= cell) return false;
    cell = seq;
    return true;
  }

  SeqNum get(StabilityTypeId type, NodeId node) const {
    if (type >= rows_.size() || node >= num_nodes_) return kNoSeq;
    return rows_[type][node];
  }

  std::span<const int64_t> row(StabilityTypeId type) const override {
    if (type >= rows_.size()) return {};
    return rows_[type];
  }

  void ensure_type(StabilityTypeId type) {
    if (type >= rows_.size())
      rows_.resize(type + 1, std::vector<int64_t>(num_nodes_, kNoSeq));
  }

  size_t num_types() const { return rows_.size(); }

 private:
  size_t num_nodes_;
  std::vector<std::vector<int64_t>> rows_;
};

}  // namespace stab
