// Geo-replicated K/V store: the paper's flagship integration (§V-A).
//
// Each WAN node owns a pool of keys (primary-site: only the owner writes
// them) backed by the local object store; every other node keeps a read-only
// mirror that Stabilizer updates asynchronously. Writes are locally stable
// on return; stronger guarantees are expressed as stability-frontier
// predicates and awaited via wait_put / get_stable.
//
// Values larger than the Stabilizer split size are chunked into <= 8 KB
// messages (kPutBegin + kChunk frames) and reassembled at mirrors — FIFO
// per-origin delivery makes the reassembly a simple cursor.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/stabilizer.hpp"
#include "store/local_store.hpp"

namespace stab::kv {

/// Maps a key to its owning WAN node. The default owner function hashes the
/// key over the cluster with shard::ShardRouter's kHash placement (so a
/// sharded deployment routing the same keys across shard instances agrees
/// with the owner placement by construction — DESIGN.md §9); deployments
/// with explicit pools (e.g. "siteX/...") install their own.
using OwnerFn = std::function<NodeId(const std::string&)>;

struct PutResult {
  uint64_t version = 0;
  SeqNum first_seq = kNoSeq;  // Stabilizer seqs carrying this put
  SeqNum last_seq = kNoSeq;
};

class WanKV {
 public:
  WanKV(Stabilizer& stabilizer, store::LocalStore& local,
        OwnerFn owner = nullptr);

  NodeId self() const { return stabilizer_.self(); }
  NodeId owner_of(const std::string& key) const { return owner_(key); }

  // --- writes (primary-site) --------------------------------------------------
  /// Stores locally and streams to mirrors. Fails if this node does not own
  /// the key. `virtual_extra` adds trace-replay padding bytes.
  Result<PutResult> put(const std::string& key, BytesView value,
                        uint64_t virtual_extra = 0);

  /// Removes a key (all versions) from the pool and every mirror. Fails if
  /// this node does not own the key. Returns the sequence number carrying
  /// the erase, for stability tracking.
  Result<SeqNum> erase(const std::string& key);

  // --- reads -------------------------------------------------------------------
  /// Local pool or mirror; plain read, no stability gate.
  std::optional<store::VersionedValue> get(const std::string& key) const;
  std::optional<store::VersionedValue> get_by_time(const std::string& key,
                                                   TimePoint t) const;

  /// Read gated on stability (§III-A "The client can access data only after
  /// the desired level of stability is assured"): returns the value only
  /// when the predicate's frontier on the owner's stream covers the
  /// messages that carried it.
  std::optional<store::VersionedValue> get_stable(
      const std::string& key, const std::string& predicate_key) const;

  // --- stability API (paper §V-A additions to the K/V API) ----------------------
  Status register_predicate(const std::string& key, const std::string& source) {
    return stabilizer_.register_predicate(key, source);
  }
  Status change_predicate(const std::string& key, const std::string& source) {
    return stabilizer_.change_predicate(key, source);
  }
  SeqNum get_stability_frontier(const std::string& predicate_key) const {
    return stabilizer_.get_stability_frontier(predicate_key);
  }
  /// Fires `fn` when the put satisfies the predicate.
  Status wait_put(const PutResult& put, const std::string& predicate_key,
                  Stabilizer::WaiterFn fn) {
    return stabilizer_.waitfor(put.last_seq, predicate_key, std::move(fn));
  }

  /// Hook invoked after a remote put is applied to the local mirror —
  /// applications verify/validate records here (and typically
  /// report_stability a custom level). Installing it does not displace the
  /// KV replication path, unlike setting the Stabilizer delivery handler.
  using PostApplyHook =
      std::function<void(NodeId origin, SeqNum seq, const std::string& key)>;
  void set_post_apply(PostApplyHook hook) { post_apply_ = std::move(hook); }

  Stabilizer& stabilizer() { return stabilizer_; }
  uint64_t mirrored_puts() const { return mirrored_puts_; }
  /// Highest origin seq whose put has been fully applied locally.
  SeqNum applied_through(NodeId origin) const;

 private:
  struct PendingChunked {
    std::string key;
    uint64_t version = 0;
    TimePoint timestamp = kTimeZero;
    Bytes assembled;
    uint64_t total_real = 0;
    uint32_t chunks_left = 0;
  };
  struct EntryMeta {
    NodeId origin;
    SeqNum last_seq;
  };

  void on_delivery(NodeId origin, SeqNum seq, BytesView payload,
                   uint64_t wire_size);
  void apply_remote_put(NodeId origin, SeqNum seq, const std::string& key,
                        uint64_t version, TimePoint ts, BytesView value);

  Stabilizer& stabilizer_;
  store::LocalStore& local_;
  OwnerFn owner_;
  PostApplyHook post_apply_;
  std::map<NodeId, PendingChunked> pending_;  // per-origin reassembly
  std::map<std::string, EntryMeta> meta_;     // key -> carrying messages
  std::vector<SeqNum> applied_through_;
  uint64_t mirrored_puts_ = 0;
};

}  // namespace stab::kv
