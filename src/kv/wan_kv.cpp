#include "kv/wan_kv.hpp"

#include "common/logging.hpp"
#include "shard/shard_router.hpp"

namespace stab::kv {

namespace {

constexpr uint8_t kPutWhole = 1;
constexpr uint8_t kPutBegin = 2;
constexpr uint8_t kChunk = 3;
constexpr uint8_t kErase = 4;
// Conservative per-chunk header allowance inside the split budget.
constexpr uint64_t kChunkOverhead = 16;

}  // namespace

WanKV::WanKV(Stabilizer& stabilizer, store::LocalStore& local, OwnerFn owner)
    : stabilizer_(stabilizer),
      local_(local),
      owner_(std::move(owner)),
      applied_through_(stabilizer.topology().num_nodes(), kNoSeq) {
  if (!owner_) {
    // Key routing is unified on ShardRouter (DESIGN.md §9): kHash mode is
    // the same FNV-1a-mod-n placement this default has always used, and a
    // sharded deployment that routes the same keys across shard instances
    // agrees with the KV owner placement by construction.
    const shard::ShardRouter router(
        static_cast<uint32_t>(stabilizer_.topology().num_nodes()));
    owner_ = [router](const std::string& key) {
      return static_cast<NodeId>(router.shard_of(std::string_view(key)));
    };
  }
  stabilizer_.set_delivery_handler(
      [this](NodeId origin, SeqNum seq, BytesView payload, uint64_t wire) {
        on_delivery(origin, seq, payload, wire);
      });
}

Result<PutResult> WanKV::put(const std::string& key, BytesView value,
                             uint64_t virtual_extra) {
  if (owner_(key) != self())
    return Result<PutResult>::error(
        "put: key '" + key + "' is owned by node " +
        std::to_string(owner_(key)) + ", not this node (" +
        std::to_string(self()) + ") — Stabilizer is primary-site");

  TimePoint now = stabilizer_.env().now();
  PutResult result;
  result.version = local_.put(key, value, now);

  const uint64_t split = 8 * 1024;  // paper: 8 KB packets
  const uint64_t total = value.size() + virtual_extra;
  if (total + key.size() + 64 <= split) {
    Writer w(value.size() + key.size() + 32);
    w.u8(kPutWhole);
    w.str(key);
    w.u64(result.version);
    w.i64(now.count());
    w.blob(value);
    result.first_seq = result.last_seq =
        stabilizer_.send(std::move(w).take(), virtual_extra);
  } else {
    const uint64_t chunk_payload = split - kChunkOverhead;
    const uint32_t nchunks =
        static_cast<uint32_t>((total + chunk_payload - 1) / chunk_payload);
    Writer header(key.size() + 48);
    header.u8(kPutBegin);
    header.str(key);
    header.u64(result.version);
    header.i64(now.count());
    header.u64(value.size());
    header.u32(nchunks);
    result.first_seq = stabilizer_.send(std::move(header).take());
    uint64_t offset = 0;
    for (uint32_t c = 0; c < nchunks; ++c) {
      uint64_t len = std::min<uint64_t>(chunk_payload, total - offset);
      uint64_t real_begin = std::min<uint64_t>(offset, value.size());
      uint64_t real_end = std::min<uint64_t>(offset + len, value.size());
      BytesView real = value.subspan(real_begin, real_end - real_begin);
      Writer w(real.size() + 8);
      w.u8(kChunk);
      w.blob(real);
      result.last_seq =
          stabilizer_.send(std::move(w).take(), len - real.size());
      offset += len;
    }
  }
  meta_[key] = EntryMeta{self(), result.last_seq};
  return result;
}

Result<SeqNum> WanKV::erase(const std::string& key) {
  if (owner_(key) != self())
    return Result<SeqNum>::error(
        "erase: key '" + key + "' is owned by node " +
        std::to_string(owner_(key)) + ", not this node (" +
        std::to_string(self()) + ") — Stabilizer is primary-site");
  local_.erase(key);
  meta_.erase(key);
  Writer w(key.size() + 8);
  w.u8(kErase);
  w.str(key);
  return stabilizer_.send(std::move(w).take());
}

std::optional<store::VersionedValue> WanKV::get(const std::string& key) const {
  return local_.get(key);
}

std::optional<store::VersionedValue> WanKV::get_by_time(const std::string& key,
                                                        TimePoint t) const {
  return local_.get_by_time(key, t);
}

std::optional<store::VersionedValue> WanKV::get_stable(
    const std::string& key, const std::string& predicate_key) const {
  auto it = meta_.find(key);
  if (it == meta_.end()) return std::nullopt;
  SeqNum frontier = stabilizer_.get_stability_frontier(predicate_key,
                                                       it->second.origin);
  if (frontier < it->second.last_seq) return std::nullopt;  // not stable yet
  return local_.get(key);
}

SeqNum WanKV::applied_through(NodeId origin) const {
  return origin < applied_through_.size() ? applied_through_[origin] : kNoSeq;
}

void WanKV::on_delivery(NodeId origin, SeqNum seq, BytesView payload,
                        uint64_t wire_size) {
  (void)wire_size;
  try {
    Reader r(payload);
    uint8_t kind = r.u8();
    if (kind == kPutWhole) {
      std::string key = r.str();
      uint64_t version = r.u64();
      TimePoint ts{r.i64()};
      BytesView value = r.blob_view();
      apply_remote_put(origin, seq, key, version, ts, value);
    } else if (kind == kPutBegin) {
      PendingChunked p;
      p.key = r.str();
      p.version = r.u64();
      p.timestamp = TimePoint{r.i64()};
      p.total_real = r.u64();
      p.chunks_left = r.u32();
      p.assembled.reserve(p.total_real);
      pending_[origin] = std::move(p);
    } else if (kind == kErase) {
      std::string key = r.str();
      local_.erase(key);
      meta_.erase(key);
      applied_through_[origin] = seq;
      stabilizer_.report_stability("persisted", origin, seq);
    } else if (kind == kChunk) {
      auto it = pending_.find(origin);
      if (it == pending_.end()) {
        STAB_WARN("kv: orphan chunk from " << origin);
        return;
      }
      PendingChunked& p = it->second;
      BytesView part = r.blob_view();
      p.assembled.insert(p.assembled.end(), part.begin(), part.end());
      if (--p.chunks_left == 0) {
        apply_remote_put(origin, seq, p.key, p.version, p.timestamp,
                         p.assembled);
        pending_.erase(it);
      }
    } else {
      STAB_WARN("kv: unknown record kind " << int(kind));
    }
  } catch (const CodecError& e) {
    STAB_ERROR("kv: bad record from " << origin << ": " << e.what());
  }
}

void WanKV::apply_remote_put(NodeId origin, SeqNum seq, const std::string& key,
                             uint64_t version, TimePoint ts, BytesView value) {
  local_.put_at_version(key, value, ts, version);
  meta_[key] = EntryMeta{origin, seq};
  ++mirrored_puts_;
  applied_through_[origin] = seq;
  // The put (all of its chunks) is now in the local storage layer.
  stabilizer_.report_stability("persisted", origin, seq);
  if (post_apply_) post_apply_(origin, seq, key);
}

}  // namespace stab::kv
