#include "backup/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"

namespace stab::backup {

std::vector<TraceRecord> generate_dropbox_trace(const TraceParams& params) {
  Rng rng(params.seed);
  std::vector<TraceRecord> trace;

  // 1. Plant the huge files, one per burst window (this is what creates the
  //    three spikes the paper sees in Fig 5).
  std::vector<Duration> burst_centers;
  for (int b = 0; b < params.num_bursts; ++b) {
    double frac = (b + 1.0) / (params.num_bursts + 1.0);  // spread across run
    burst_centers.push_back(std::chrono::duration_cast<Duration>(
        params.duration * frac));
  }
  uint64_t remaining = params.total_bytes;
  for (int h = 0; h < params.num_huge_files; ++h) {
    Duration center = burst_centers[h % burst_centers.size()];
    // Vary sizes a little so the spikes differ like the paper's.
    uint64_t size = params.huge_file_bytes +
                    static_cast<uint64_t>(rng.next_range(-15, 25)) * 1000000ULL;
    size = std::min(size, remaining);
    trace.push_back(TraceRecord{center, size});
    remaining -= size;
  }

  // 2. Fill the rest with log-normal sized files until the byte budget runs
  //    out; arrival times are a mixture of burst-clustered and uniform.
  while (remaining > 0) {
    uint64_t size = static_cast<uint64_t>(
        rng.next_lognormal(params.lognormal_mu, params.lognormal_sigma));
    size = std::clamp<uint64_t>(size, 1024, 64ULL << 20);
    size = std::min(size, remaining);
    Duration at;
    if (rng.next_double() < params.burst_fraction) {
      Duration center =
          burst_centers[rng.next_below(burst_centers.size())];
      double offset = rng.next_normal() * to_sec(params.burst_width) / 2.0;
      at = center + from_sec(offset);
    } else {
      at = from_sec(rng.next_double() * to_sec(params.duration));
    }
    if (at < Duration::zero()) at = Duration::zero();
    if (at > params.duration) at = params.duration;
    trace.push_back(TraceRecord{at, size});
    remaining -= size;
  }

  std::sort(trace.begin(), trace.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.at < b.at;
            });
  return trace;
}

TraceStats summarize(const std::vector<TraceRecord>& trace, size_t buckets) {
  TraceStats stats;
  stats.num_records = trace.size();
  stats.bucket_bytes.assign(buckets, 0);
  if (trace.empty()) return stats;
  Duration span = trace.back().at;
  if (span <= Duration::zero()) span = Duration(1);
  stats.duration = span;
  std::vector<uint64_t> sizes;
  sizes.reserve(trace.size());
  for (const TraceRecord& r : trace) {
    stats.total_bytes += r.size_bytes;
    stats.max_bytes = std::max(stats.max_bytes, r.size_bytes);
    sizes.push_back(r.size_bytes);
    size_t bucket = std::min<size_t>(
        buckets - 1,
        static_cast<size_t>(static_cast<double>(r.at.count()) /
                            span.count() * buckets));
    stats.bucket_bytes[bucket] += r.size_bytes;
  }
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                   sizes.end());
  stats.median_bytes = sizes[sizes.size() / 2];
  return stats;
}

std::string to_csv(const std::vector<TraceRecord>& trace) {
  std::ostringstream oss;
  oss.precision(15);  // millisecond values need > the default 6 digits
  oss << "at_ms,size_bytes\n";
  for (const TraceRecord& r : trace)
    oss << to_ms(r.at) << "," << r.size_bytes << "\n";
  return oss.str();
}

Result<std::vector<TraceRecord>> from_csv(const std::string& csv) {
  using R = Result<std::vector<TraceRecord>>;
  std::vector<TraceRecord> out;
  std::istringstream in(csv);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || lineno == 1) continue;  // header
    auto comma = line.find(',');
    if (comma == std::string::npos)
      return R::error("trace csv line " + std::to_string(lineno) +
                      ": missing comma");
    try {
      double at_ms = std::stod(line.substr(0, comma));
      uint64_t size = std::stoull(line.substr(comma + 1));
      out.push_back(TraceRecord{from_ms(at_ms), size});
    } catch (const std::exception&) {
      return R::error("trace csv line " + std::to_string(lineno) +
                      ": malformed number");
    }
  }
  return out;
}

}  // namespace stab::backup
