// Synthetic Dropbox sync trace (substitutes the IMC'14 measurement trace,
// DESIGN.md §3).
//
// The paper's experiment uses a 2012-09-20 16:40:45–16:57:08 Dropbox slice:
// 983 seconds, 3.87 GB total, arrivals concentrated in bursts, and three
// huge (>100 MB) files that produce the three latency spikes of Fig 5. The
// generator reproduces exactly those statistics deterministically from a
// seed: log-normal file sizes, burst-clustered arrival times, and three
// planted huge files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace stab::backup {

struct TraceRecord {
  Duration at;          // offset from trace start
  uint64_t size_bytes;  // sync request payload size
};

struct TraceParams {
  Duration duration = seconds(983);              // 16:40:45 -> 16:57:08
  uint64_t total_bytes = 3'870'000'000ULL;       // 3.87 GB
  uint64_t seed = 20120920;
  int num_bursts = 3;                            // sub-minute request storms
  double burst_fraction = 0.7;                   // arrivals inside bursts
  Duration burst_width = seconds(45);
  int num_huge_files = 3;                        // the Fig 4/5 spikes
  uint64_t huge_file_bytes = 130'000'000ULL;     // ~130 MB each
  // Log-normal body: median ~256 KB, heavy tail.
  double lognormal_mu = 12.5;
  double lognormal_sigma = 1.6;
};

/// Deterministic trace matching `params`; records are sorted by time and the
/// total size matches params.total_bytes exactly (the last record absorbs
/// rounding).
std::vector<TraceRecord> generate_dropbox_trace(const TraceParams& params = {});

struct TraceStats {
  size_t num_records = 0;
  uint64_t total_bytes = 0;
  uint64_t max_bytes = 0;
  uint64_t median_bytes = 0;
  Duration duration = Duration::zero();
  /// Per-bucket byte volume (Fig 4's shape), bucket = duration / buckets.
  std::vector<uint64_t> bucket_bytes;
};

TraceStats summarize(const std::vector<TraceRecord>& trace,
                     size_t buckets = 32);

/// CSV round-trip ("at_ms,size_bytes" per line) for saving/loading traces.
std::string to_csv(const std::vector<TraceRecord>& trace);
Result<std::vector<TraceRecord>> from_csv(const std::string& csv);

}  // namespace stab::backup
