#include "backup/backup_service.hpp"

#include <sstream>

namespace stab::backup {

BackupService::BackupService(kv::WanKV& kv, std::string pool_prefix)
    : kv_(kv), pool_prefix_(std::move(pool_prefix)) {}

Result<BackupResult> BackupService::backup_file(const std::string& name,
                                                BytesView content,
                                                uint64_t virtual_size) {
  auto put = kv_.put(key_for(pool_prefix_, name), content, virtual_size);
  if (!put.is_ok()) return Result<BackupResult>::error(put.message());
  BackupResult out;
  out.file_key = key_for(pool_prefix_, name);
  out.version = put.value().version;
  out.first_seq = put.value().first_seq;
  out.last_seq = put.value().last_seq;
  out.chunks = static_cast<uint64_t>(put.value().last_seq -
                                     put.value().first_seq + 1);
  return out;
}

Status BackupService::wait_stable(const BackupResult& result,
                                  const std::string& predicate_key,
                                  Stabilizer::WaiterFn fn) {
  return kv_.stabilizer().waitfor(result.last_seq, predicate_key,
                                  std::move(fn));
}

bool BackupService::is_stable(const BackupResult& result,
                              const std::string& predicate_key) const {
  return const_cast<kv::WanKV&>(kv_).get_stability_frontier(predicate_key) >=
         result.last_seq;
}

std::optional<Bytes> BackupService::fetch(const std::string& owner_prefix,
                                          const std::string& name) const {
  auto v = kv_.get(key_for(owner_prefix, name));
  if (!v) return std::nullopt;
  return v->value;
}

std::map<std::string, std::string> BackupService::standard_predicates(
    const Topology& topology, NodeId self) {
  std::map<std::string, std::string> out;
  // Node-granularity family (Table III): quantify over remote WAN nodes.
  out["OneWNode"] = "MAX($ALLWNODES-$MYWNODE)";
  out["MajorityWNodes"] =
      "KTH_MAX(SIZEOF($ALLWNODES)/2+1,($ALLWNODES-$MYWNODE))";
  out["AllWNodes"] = "MIN($ALLWNODES-$MYWNODE)";

  // Region-granularity family: one MAX($AZ_x) term per remote region ("if
  // an ACK from any WAN node in a region is received, the message is
  // acknowledged by that region").
  const std::string my_az = topology.az_of(self);
  std::vector<std::string> remote_azs;
  for (const std::string& az : topology.az_names())
    if (az != my_az) remote_azs.push_back(az);
  if (!remote_azs.empty()) {
    std::ostringstream terms;
    for (size_t i = 0; i < remote_azs.size(); ++i) {
      if (i) terms << ",";
      terms << "MAX($AZ_" << remote_azs[i] << ")";
    }
    size_t majority = remote_azs.size() / 2 + 1;
    out["OneRegion"] = "MAX(" + terms.str() + ")";
    out["MajorityRegions"] =
        "KTH_MAX(" + std::to_string(majority) + "," + terms.str() + ")";
    out["AllRegions"] = "MIN(" + terms.str() + ")";
  }
  return out;
}

Status BackupService::register_standard_predicates() {
  auto preds = standard_predicates(kv_.stabilizer().topology(),
                                   kv_.stabilizer().self());
  for (const auto& [key, source] : preds) {
    if (kv_.stabilizer().has_predicate(key)) continue;
    Status st = kv_.register_predicate(key, source);
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

}  // namespace stab::backup
