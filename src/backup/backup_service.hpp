// Dropbox-like file backup service over the WAN K/V store (paper §V-A).
//
// Files are stored as K/V entries under the owning site's pool and
// geo-replicated by Stabilizer; the application picks per-upload stability
// semantics from the six standard predicates of Table III (OneWNode,
// OneRegion, MajorityWNodes, MajorityRegions, AllWNodes, AllRegions) or any
// custom DSL predicate — "with a traditional Dropbox, the actual semantics
// of uploading a file are unspecified, and fine-grained control is not
// possible."
#pragma once

#include <map>
#include <optional>
#include <string>

#include "kv/wan_kv.hpp"

namespace stab::backup {

struct BackupResult {
  std::string file_key;
  uint64_t version = 0;
  SeqNum first_seq = kNoSeq;
  SeqNum last_seq = kNoSeq;
  uint64_t chunks = 0;  // 8 KB messages the file was split into
};

class BackupService {
 public:
  /// `pool_prefix` namespaces this site's files in the K/V store; it must
  /// map to the local node under the KV's owner function.
  BackupService(kv::WanKV& kv, std::string pool_prefix);

  /// Uploads a file. Locally stable on return; use wait_stable for more.
  /// `virtual_size` replays trace records without materializing bytes.
  Result<BackupResult> backup_file(const std::string& name, BytesView content,
                                   uint64_t virtual_size = 0);

  /// Fires `fn` once the upload satisfies the predicate.
  Status wait_stable(const BackupResult& result,
                     const std::string& predicate_key,
                     Stabilizer::WaiterFn fn);
  bool is_stable(const BackupResult& result,
                 const std::string& predicate_key) const;

  /// Fetches a file (local pool or mirror).
  std::optional<Bytes> fetch(const std::string& owner_prefix,
                             const std::string& name) const;

  /// The six Table III predicates, generated for this topology/node: the
  /// *WNode* family quantifies over remote nodes, the *Region* family over
  /// remote availability zones.
  static std::map<std::string, std::string> standard_predicates(
      const Topology& topology, NodeId self);

  /// Registers all standard predicates with the underlying Stabilizer.
  Status register_standard_predicates();

  kv::WanKV& kv() { return kv_; }

 private:
  std::string key_for(const std::string& prefix,
                      const std::string& name) const {
    return prefix + "/" + name;
  }

  kv::WanKV& kv_;
  std::string pool_prefix_;
};

}  // namespace stab::backup
