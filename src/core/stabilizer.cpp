#include "core/stabilizer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace stab {

#if STAB_OBS_ENABLED
Stabilizer::Counters::Counters(obs::MetricsRegistry& r)
    : messages_sent(r.counter("core.messages_sent")),
      messages_delivered(r.counter("core.messages_delivered")),
      peer_stall_episodes(r.counter("core.peer_stall_episodes")),
      peer_recover_episodes(r.counter("core.peer_recover_episodes")),
      resumes_sent(r.counter("core.resumes_sent")),
      resumes_received(r.counter("core.resumes_received")),
      frames_transmitted(r.counter("data.frames_transmitted")),
      duplicates_dropped(r.counter("data.duplicates_dropped")),
      gaps_detected(r.counter("data.gaps_detected")),
      retransmits_sent(r.counter("data.retransmits_sent")),
      data_encodes(r.counter("data.encodes")),
      shared_sends(r.counter("data.shared_sends")),
      frames_coalesced(r.counter("data.frames_coalesced")),
      fanout_bytes_copied(r.counter("data.fanout_bytes_copied")),
      ack_batches_sent(r.counter("control.ack_batches_sent")),
      ack_bytes_sent(r.counter("control.ack_bytes_sent")),
      ack_entries_applied(r.counter("control.ack_entries_applied")),
      report_batches_sent(r.counter("control.report_batches_sent")),
      report_bytes_sent(r.counter("control.report_bytes_sent")),
      report_entries_applied(r.counter("control.report_entries_applied")),
      deferred_flushes(r.counter("control.deferred_flushes")),
      deferred_delta_flushes(r.counter("control.deferred_delta_flushes")),
      agg_blocks_absorbed(r.counter("control.agg_blocks_absorbed")),
      agg_fallback_direct(r.counter("control.agg_fallback_direct")),
      report_blocks_fenced(r.counter("control.report_blocks_fenced")),
      fenced_frames(r.counter("failover.fenced_frames")),
      epoch_ahead_drops(r.counter("failover.epoch_ahead_drops")),
      takeovers_observed(r.counter("failover.takeovers_observed")),
      failover_seqs_skipped(r.counter("failover.seqs_skipped")),
      failover_seqs_rolled_back(r.counter("failover.seqs_rolled_back")),
      waiters_fenced(r.counter("failover.waiters_fenced")),
      batch_frames(r.histogram("data.batch_frames")),
      ack_flush_entries(r.histogram("control.ack_flush_entries")),
      report_flush_entries(r.histogram("control.report_flush_entries")) {}

void Stabilizer::Counters::flush_pending() {
  if (pending_messages_sent) {
    messages_sent.inc(pending_messages_sent);
    pending_messages_sent = 0;
  }
  if (pending_messages_delivered) {
    messages_delivered.inc(pending_messages_delivered);
    pending_messages_delivered = 0;
  }
  if (pending_frames_transmitted) {
    frames_transmitted.inc(pending_frames_transmitted);
    pending_frames_transmitted = 0;
  }
  if (pending_data_encodes) {
    data_encodes.inc(pending_data_encodes);
    pending_data_encodes = 0;
  }
  if (pending_shared_sends) {
    shared_sends.inc(pending_shared_sends);
    pending_shared_sends = 0;
  }
  if (pending_frames_coalesced) {
    frames_coalesced.inc(pending_frames_coalesced);
    pending_frames_coalesced = 0;
  }
  if (pending_fanout_bytes_copied) {
    fanout_bytes_copied.inc(pending_fanout_bytes_copied);
    pending_fanout_bytes_copied = 0;
  }
}
#endif

Stabilizer::Stabilizer(StabilizerOptions options, Transport& transport)
    : options_(std::move(options)),
      transport_(transport),
      rx_(options_.topology.num_nodes()),
      excluded_(options_.topology.num_nodes(), false),
      peer_acked_at_last_probe_(options_.topology.num_nodes(), kNoSeq),
      dirty_(options_.topology.num_nodes()),
      reported_(options_.topology.num_nodes()) {
  const size_t n = options_.topology.num_nodes();
  if (options_.self >= n)
    throw std::invalid_argument("Stabilizer: self node out of range");
  engines_.reserve(n);
  for (NodeId origin = 0; origin < n; ++origin)
    engines_.push_back(std::make_unique<FrontierEngine>(
        options_.topology, options_.self, types_, options_.eval_mode));

#if STAB_OBS_ENABLED
  metrics_.set_shard(options_.shard_label);
  tracer_ = options_.tracer.get();
  probe_ = options_.probe.get();
  // All origin engines share the node-wide lag/eval histograms; per-key lag
  // gauges are engine-created inside metrics_. Timestamps come from the
  // transport's Env clock so sim traces are deterministic.
  obs::Histogram& frontier_lag = metrics_.histogram("control.frontier_lag");
  obs::Histogram& eval_ns = metrics_.histogram("control.eval_ns");
  for (NodeId origin = 0; origin < n; ++origin) {
    FrontierEngine::ObsSinks sinks;
    sinks.registry = &metrics_;
    sinks.frontier_lag = &frontier_lag;
    sinks.eval_ns = &eval_ns;
    sinks.tracer = tracer_;
    sinks.probe = probe_;
    sinks.node = options_.self;
    sinks.origin = origin;
    sinks.now = [this] { return transport_.env().now(); };
    engines_[origin]->set_obs(std::move(sinks));
  }
#endif

  if (options_.pipeline_mode == StabilizerOptions::PipelineMode::kPipelined) {
    ControlPipeline::RegistryPtr reg = nullptr;
    STAB_OBS(reg = &metrics_);
    pipeline_ = std::make_unique<ControlPipeline>(
        n, std::max<size_t>(options_.pipeline_cell_types, types_.count()),
        options_.pipeline_ring_capacity, reg);
    STAB_OBS(pipeline_->set_trace(tracer_, options_.self,
                                  [this] { return transport_.env().now(); }));
    drain_gate_ = std::make_shared<DrainGate>();
    drain_gate_->owner = this;
    inline_drain_ = transport_.single_threaded();
    transport_.set_receive_handler(
        [this](NodeId src, BytesView frame, uint64_t wire_size) {
          ingest_frame(src, frame, wire_size);
        });
    // The ingest path is lock-free, so the transport may call it straight
    // from its receive thread instead of bouncing through an Env task.
    if (!inline_drain_) transport_.set_direct_dispatch(true);
  } else {
    transport_.set_direct_dispatch(false);  // locked handler: never direct
    transport_.set_receive_handler(
        [this](NodeId src, BytesView frame, uint64_t wire_size) {
          on_frame(src, frame, wire_size);
        });
  }
  stall_last_acked_.assign(n, kNoSeq);
  stalled_.assign(n, false);
  next_to_send_.assign(n, 0);
  peer_epoch_.assign(n, 0);
  resume_pending_.assign(n, false);
  stream_epoch_.assign(n, 0);
  stream_primary_.resize(n);
  for (NodeId o = 0; o < n; ++o) stream_primary_[o] = o;
  node_fenced_ = std::make_unique<std::atomic<bool>[]>(n);
  for (NodeId o = 0; o < n; ++o)
    node_fenced_[o].store(false, std::memory_order_relaxed);
  if (deferred_mode()) {
    deferred_ = std::make_unique<control::DeferredReporter>(n);
    same_az_.assign(n, false);
    const std::string& az = options_.topology.az_of(options_.self);
    for (NodeId m : options_.topology.nodes_in_az(az)) same_az_[m] = true;
    if (options_.report_path ==
        StabilizerOptions::ReportPath::kDeferredAggregated) {
      // Aggregator roles come from the topology; an AZ with no designated
      // aggregator simply runs kDeferred semantics (direct fan-out).
      if (auto agg = options_.topology.az_aggregator(az)) {
        my_aggregator_ = *agg;
        agg_self_ = (*agg == options_.self);
      }
    }
  }
  if (options_.retransmit_timeout > Duration::zero())
    schedule_retransmit_timer();
  if (options_.peer_stall_timeout > Duration::zero()) schedule_stall_timer();
}

Stabilizer::~Stabilizer() {
  // Unhook from the transport first: a crashed-and-destroyed node must not
  // receive callbacks into freed state while the rest of the cluster (and
  // the simulator's event queue) keeps running.
  ingest_stopped_.store(true, std::memory_order_release);
  transport_.set_receive_handler(nullptr);
  transport_.set_direct_dispatch(false);
  // Disarm any posted drain task: after `owner` is nulled under the gate
  // mutex, a task that fires later no-ops. A task already past the gate
  // check holds the gate mutex through its drain, so this store waits for
  // it to finish (lock order gate -> mutex_ keeps that deadlock-free).
  if (drain_gate_) {
    std::lock_guard<std::mutex> gate(drain_gate_->m);
    drain_gate_->owner = nullptr;
  }
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  stopped_ = true;
  if (ack_timer_ != kInvalidTimer) env().cancel(ack_timer_);
  if (deferred_timer_ != kInvalidTimer) env().cancel(deferred_timer_);
  if (retransmit_timer_ != kInvalidTimer) env().cancel(retransmit_timer_);
  if (stall_timer_ != kInvalidTimer) env().cancel(stall_timer_);
  if (flush_timer_ != kInvalidTimer) env().cancel(flush_timer_);
  // Shutdown is the quiesce point end-of-run readers care about: fold the
  // wire codec's thread-batched deltas into the global registry and mirror
  // any trace drops, so post-mortem exports read exact values.
  STAB_OBS(data::flush_wire_counters());
  STAB_OBS(sync_trace_dropped());
}

// --- data plane ----------------------------------------------------------------

SeqNum Stabilizer::send(BytesView payload, uint64_t virtual_size) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Deposed primaries must not extend the old sequence space: another node
  // now owns it and would issue the same numbers with different content.
  if (self_fenced_) return kFencedSeq;
  SeqNum seq = sequencer_.next();
  out_.push(seq, Bytes(payload.begin(), payload.end()), virtual_size);
  STAB_OBS(++ctr_.pending_messages_sent);
  STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kBroadcast, options_.self,
             options_.self, seq);
  // Gate on sampled() first so 15-in-16 sends skip the clock read too.
  if (STAB_PROBE_SAMPLED(probe_, seq))
    STAB_PROBE(probe_, on_send(options_.self, seq, env().now()));

  if (coalescing_enabled())
    arm_flush();  // batch with the rest of this event-loop turn's sends
  else
    pump_windows();
  apply_origin_rule_for_send(seq);
  maybe_reclaim();  // single-node clusters reclaim immediately
  return seq;
}

std::pair<SeqNum, SeqNum> Stabilizer::send_large(BytesView payload,
                                                 uint64_t virtual_size) {
  const uint64_t total = payload.size() + virtual_size;
  const uint64_t split = options_.split_size;
  const uint64_t chunks = std::max<uint64_t>(1, (total + split - 1) / split);
  SeqNum first = kNoSeq, last = kNoSeq;
  uint64_t offset = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    uint64_t len = std::min<uint64_t>(split, total - offset);
    // Real bytes are the prefix of the combined stream; the rest is padding.
    uint64_t real_begin = std::min<uint64_t>(offset, payload.size());
    uint64_t real_end = std::min<uint64_t>(offset + len, payload.size());
    BytesView real = payload.subspan(real_begin, real_end - real_begin);
    uint64_t pad = len - real.size();
    SeqNum seq = send(real, pad);
    if (first == kNoSeq) first = seq;
    last = seq;
    offset += len;
  }
  return {first, last};
}

void Stabilizer::set_delivery_handler(DeliveryHandler handler) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  delivery_ = std::move(handler);
}

void Stabilizer::set_raw_frame_handler(RawHandler handler) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  raw_handler_ = std::move(handler);
}

void Stabilizer::send_raw(NodeId dst, Bytes frame) {
  if (!frame.empty() && frame[0] < 0x40)
    throw std::invalid_argument(
        "send_raw: application frame kinds must be >= 0x40");
  transport_.send(dst, std::move(frame));
}

void Stabilizer::arm_flush() {
  if (flush_armed_ || stopped_) return;
  flush_armed_ = true;
  flush_timer_ = env().post([this] {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    flush_armed_ = false;
    flush_timer_ = kInvalidTimer;
    if (!stopped_) pump_windows();
  });
}

void Stabilizer::pump_windows() {
  const AckTable& acks = engines_[options_.self]->acks();
  const SeqNum last = sequencer_.last_assigned();
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || excluded_[peer]) continue;
    SeqNum& cursor = next_to_send_[peer];
    if (cursor < out_.base()) cursor = out_.base();  // after recovery
    // Window allowance: at most send_window beyond the peer's receive ack
    // (resumes when this peer's acks advance).
    SeqNum limit = last;
    if (options_.send_window > 0) {
      SeqNum acked = acks.get(StabilityTypeRegistry::kReceived, peer);
      limit = std::min(limit,
                       acked + static_cast<SeqNum>(options_.send_window));
    }
    while (cursor <= limit) {
      const auto* slot = out_.get(cursor);
      if (!slot) {
        ++cursor;
        continue;
      }
      if (coalescing_enabled() && coalescable(*slot)) {
        // Greedily gather the run of consecutive small slots that fits the
        // batch bounds.
        SeqNum first = cursor;
        size_t count = 0;
        size_t bytes = 0;
        while (cursor <= limit && count < options_.coalesce_max_frames) {
          const auto* s = out_.get(cursor);
          if (!s || !coalescable(*s)) break;
          size_t cost = 12 + s->payload.size() + s->virtual_size;
          if (count > 0 && bytes + cost > options_.coalesce_max_bytes) break;
          bytes += cost;
          ++count;
          ++cursor;
        }
        if (count >= 2)
          transmit_batch(peer, first, count);
        else
          transmit(peer, *out_.get(first));
        continue;
      }
      transmit(peer, *slot);
      ++cursor;
    }
  }
  STAB_OBS(ctr_.flush_pending());
}

void Stabilizer::transmit(NodeId dst, const data::OutBuffer::Slot& slot) {
  if (options_.data_path == StabilizerOptions::DataPath::kShared) {
    // Encode-once: the first transmission of this message (to any peer, or
    // as a retransmit) fills the slot's frame cache; everything after reuses
    // the refcounted buffer.
    if (!slot.encoded) {
      slot.encoded = std::make_shared<const Bytes>(
          data::encode_data(options_.self, slot.seq, slot.payload,
                            slot.virtual_size, stream_epoch_[options_.self]));
      STAB_OBS(++ctr_.pending_data_encodes);
    }
    uint64_t wire = slot.encoded->size() + slot.virtual_size;
    transport_.send_shared(dst, slot.encoded, wire);
    STAB_OBS(++ctr_.pending_shared_sends);
  } else {
    Bytes encoded =
        data::encode_data(options_.self, slot.seq, slot.payload,
                          slot.virtual_size, stream_epoch_[options_.self]);
    STAB_OBS({
      ++ctr_.pending_data_encodes;
      ctr_.pending_fanout_bytes_copied += encoded.size();
    });
    uint64_t wire = encoded.size() + slot.virtual_size;
    transport_.send(dst, std::move(encoded), wire);
  }
  STAB_OBS(++ctr_.pending_frames_transmitted);
  STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kTransmit, options_.self,
             options_.self, slot.seq, dst);
}

bool Stabilizer::coalescable(const data::OutBuffer::Slot& slot) const {
  return 12 + slot.payload.size() + slot.virtual_size <=
         options_.coalesce_max_bytes;
}

void Stabilizer::transmit_batch(NodeId dst, SeqNum first, size_t count) {
  if (!(batch_first_ == first && batch_count_ == count && batch_frame_)) {
    data::DataBatchFrame batch;
    batch.origin = options_.self;
    batch.primary_epoch = stream_epoch_[options_.self];
    batch.first_seq = first;
    batch.entries.reserve(count);
    uint64_t virtual_total = 0;
    for (size_t i = 0; i < count; ++i) {
      const auto* slot = out_.get(first + static_cast<SeqNum>(i));
      batch.entries.push_back(
          data::DataBatchFrame::Entry{BytesView(slot->payload),
                                      slot->virtual_size});
      virtual_total += slot->virtual_size;
    }
    batch_frame_ = std::make_shared<const Bytes>(data::encode(batch));
    batch_first_ = first;
    batch_count_ = count;
    batch_wire_ = batch_frame_->size() + virtual_total;
    STAB_OBS({
      ++ctr_.pending_data_encodes;
      ctr_.batch_frames.record(count);
    });
  }
  transport_.send_shared(dst, batch_frame_, batch_wire_);
  STAB_OBS({
    ++ctr_.pending_shared_sends;
    ctr_.pending_frames_transmitted += count;
    ctr_.pending_frames_coalesced += count;
  });
#if STAB_OBS_ENABLED
  if (STAB_TRACE_WANTS(tracer_, obs::SpanEvent::kTransmit)) {
    TimePoint now = env().now();
    for (size_t i = 0; i < count; ++i)
      tracer_->record(now, obs::SpanEvent::kTransmit, options_.self,
                      options_.self, first + static_cast<SeqNum>(i), dst);
  }
#endif
}

void Stabilizer::apply_origin_rule_for_send(SeqNum seq) {
  // §III-C: "all stability properties hold for the WAN node that originated
  // a message" — advance every type's self cell on the self stream, as one
  // batch so predicates spanning several types re-evaluate once. The vector
  // is local because callbacks fired by the batch may re-enter send().
  std::vector<AckUpdate> updates;
  updates.reserve(types_.count());
  for (StabilityTypeId t = 0; t < types_.count(); ++t)
    updates.push_back(AckUpdate{t, options_.self, seq, {}});
  engines_[options_.self]->on_ack_batch(updates);
}

// --- receive path ----------------------------------------------------------------

void Stabilizer::on_frame(NodeId src, BytesView frame, uint64_t wire_size) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (stopped_) return;
  // Whole-node fence: once we have learned that `src` was deposed as primary
  // of its own stream, every frame it sends — data, acks, RESUME, raw — is
  // zombie output (the cluster elected its successor because it was presumed
  // dead) and is dropped and counted. Per-stream authority of *other* nodes'
  // adopted streams is checked per data frame below.
  if (src < stream_primary_.size() && stream_primary_[src] != src) {
    STAB_OBS(ctr_.fenced_frames.inc());
    STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kFenceDrop, options_.self,
               src, kNoSeq, src, "node_deposed");
    return;
  }
  auto kind = data::peek_kind(frame);
  if (!kind) {
    if (raw_handler_) {
      raw_handler_(src, frame, wire_size);
    } else {
      STAB_WARN("node " << options_.self << ": dropping unknown frame from "
                        << src);
    }
    return;
  }
  switch (*kind) {
    case data::FrameKind::kData: {
      data::DataView v = data::decode_data_view(frame);
      if (!admit_data(src, v.origin, v.primary_epoch)) break;
      handle_data(src, v, wire_size);
      break;
    }
    case data::FrameKind::kDataBatch: {
      data::DataBatchFrame batch = data::decode_data_batch(frame);
      if (!admit_data(src, batch.origin, batch.primary_epoch)) break;
      handle_data_batch(src, batch);
      break;
    }
    case data::FrameKind::kAckBatch:
      handle_ack_batch(data::decode_ack_batch(frame));
      break;
    case data::FrameKind::kReportBatch:
      handle_report_batch(src, data::decode_report_batch(frame));
      break;
    case data::FrameKind::kResume:
      handle_resume(src, data::decode_resume(frame));
      break;
  }
}

bool Stabilizer::admit_data(NodeId src, NodeId origin, PrimaryEpoch epoch) {
  if (origin >= stream_epoch_.size()) return false;
  const PrimaryEpoch known = stream_epoch_[origin];
  if (epoch < known || (epoch == known && src != stream_primary_[origin])) {
    // Stale authority: a zombie ex-primary (or an impostor) extending a
    // sequence space the cluster has moved past. Counted, never delivered.
    STAB_OBS(ctr_.fenced_frames.inc());
    STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kFenceDrop, options_.self,
               origin, kNoSeq, src, "stale_epoch");
    return false;
  }
  if (epoch > known) {
    // The new primary's traffic raced its takeover announcement here. Drop —
    // we cannot authenticate the authority yet — and count; the announcement
    // arrives (the winner re-broadcasts it) and the go-back-N probe then
    // retransmits everything we refused.
    STAB_OBS(ctr_.epoch_ahead_drops.inc());
    STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kFenceDrop, options_.self,
               origin, kNoSeq, src, "epoch_ahead");
    return false;
  }
  return true;
}

// --- pipelined ingestion (DESIGN.md §4f) ------------------------------------

void Stabilizer::ingest_frame(NodeId src, BytesView frame,
                              uint64_t wire_size) {
  // Receive-thread side: no facade lock, ever. A producer that blocked on
  // mutex_ here would re-serialize the whole receive path (and an inline
  // locked fallback could deadlock two nodes sending to each other while
  // holding their own locks).
  if (ingest_stopped_.load(std::memory_order_acquire)) return;
  // Whole-node fence, lock-free flavor (same rule as on_frame's entry
  // check): frames from a node this one knows to be deposed never reach the
  // rings/cells. The flag publishes under the mutex; a frame racing the
  // publication either folds harmlessly monotone acks or hits the locked
  // check at drain time.
  if (src < options_.topology.num_nodes() &&
      node_fenced_[src].load(std::memory_order_relaxed)) {
    STAB_OBS(ctr_.fenced_frames.inc());
    // The tracer's own mutex makes this safe off the lock-free path; a
    // fence drop is a rare fault-episode event, not hot-path traffic.
    STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kFenceDrop, options_.self,
               src, kNoSeq, src, "node_deposed");
    return;
  }

  bool need_drain;
  auto kind = data::peek_kind(frame);
  if (kind && *kind == data::FrameKind::kAckBatch) {
    // Decode on the receive thread and fold plain monotonic entries straight
    // into the atomic cells. Entries carrying extra bytes (which must reach
    // the matching eval) or out-of-grid coordinates route the whole frame
    // through the ring instead, preserving the frame's internal order.
    data::AckBatchFrame ack = data::decode_ack_batch(frame);
    bool plain = ack.reporter < options_.topology.num_nodes();
    if (plain) {
      for (const data::AckEntry& e : ack.entries) {
        if (!e.extra.empty() || e.type >= pipeline_->cell_types() ||
            e.about_origin >= options_.topology.num_nodes()) {
          plain = false;
          break;
        }
      }
    }
    if (plain) {
      bool any_advance = false;
      for (const data::AckEntry& e : ack.entries) {
        bool advanced = false;
        pipeline_->offer_ack(e.about_origin, e.type, ack.reporter, e.seq,
                             &advanced);
        any_advance |= advanced;
      }
      STAB_OBS(if (!ack.entries.empty())
                   ctr_.ack_entries_applied.inc(ack.entries.size()));
      need_drain = any_advance;  // duplicates need no wakeup
    } else {
      pipeline_->push_frame(src, frame, wire_size);
      need_drain = true;
    }
  } else {
    pipeline_->push_frame(src, frame, wire_size);
    need_drain = true;
  }
  if (need_drain) arm_drain();
}

void Stabilizer::arm_drain() {
  if (inline_drain_) {
    // Single-threaded transport (the simulator): the ingest call is already
    // on the only thread, so drain synchronously — same code path as the
    // multi-threaded drain, deterministic schedule.
    drain_pipeline_locked();
    return;
  }
  if (!pipeline_->try_arm()) return;  // a drain task is already outstanding
  auto gate = drain_gate_;
  transport_.env().post([gate] {
    std::lock_guard<std::mutex> g(gate->m);
    if (gate->owner != nullptr) gate->owner->drain_pipeline_locked();
  });
}

void Stabilizer::drain_pipeline_locked() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  drain_pipeline();
}

void Stabilizer::drain_pipeline() {
  if (stopped_ || !pipeline_) return;
  if (draining_) return;  // re-entered from a callback; the outer loop covers
  draining_ = true;
  do {
    // Disarm before popping: a producer racing this drain re-arms and posts
    // a fresh task rather than stranding its events.
    pipeline_->disarm();

    // Cells first: one coalesced on_ack_batch per origin. Cells with
    // node == self are local report_stability fast-path entries — they must
    // also flush to peers, which remote-reported cells must not (a node
    // never re-broadcasts another reporter's acks).
    std::vector<std::vector<AckUpdate>> per_origin(engines_.size());
    struct SelfMark {
      NodeId origin;
      StabilityTypeId type;
      SeqNum seq;
    };
    std::vector<SelfMark> self_marks;
    size_t cells = pipeline_->drain_cells(
        [&](NodeId origin, StabilityTypeId type, NodeId node, SeqNum seq) {
          per_origin[origin].push_back(AckUpdate{type, node, seq, {}});
          if (node == options_.self)
            self_marks.push_back(SelfMark{origin, type, seq});
        });
    for (NodeId origin = 0; origin < per_origin.size(); ++origin)
      if (!per_origin[origin].empty())
        engines_[origin]->on_ack_batch(per_origin[origin]);
    for (const SelfMark& m : self_marks)
      mark_dirty(m.origin, m.type, m.seq, {});

    // Then the frame rings: each event runs the ordinary locked dispatch
    // (the mutex is recursive, so on_frame's lock_guard is free here).
    size_t frames =
        pipeline_->drain_frames([&](ControlPipeline::FrameEvent& ev) {
          on_frame(ev.src, BytesView(ev.frame), ev.wire_size);
        });

    if (cells > 0) {
      // handle_ack_batch does this for ring-routed ack frames; cell-routed
      // acks need the same follow-up (acks free window space and may let
      // the send buffer reclaim).
      if (options_.send_window > 0) pump_windows();
      maybe_reclaim();
    }
    pipeline_->record_drain(cells + frames);
    // Re-check: producers kept appending while we applied, and a re-entrant
    // drain attempt from a callback no-op'd into this loop.
  } while (!stopped_ && pipeline_->has_pending());
  draining_ = false;
}

void Stabilizer::handle_data_batch(NodeId src,
                                   const data::DataBatchFrame& batch) {
  // Unpack and run each message through the ordinary per-message path, in
  // order — the receive tracker, acks, session semantics, and the delivery
  // handler cannot tell coalesced messages from singles. Per-message wire
  // accounting reconstructs the batch's footprint: 12 bytes of entry header
  // plus payload and padding each, with the 21-byte frame header charged to
  // the first message.
  for (size_t i = 0; i < batch.entries.size(); ++i) {
    const data::DataBatchFrame::Entry& e = batch.entries[i];
    data::DataView m;
    m.origin = batch.origin;
    m.primary_epoch = batch.primary_epoch;
    m.seq = batch.first_seq + static_cast<SeqNum>(i);
    m.payload = e.payload;
    m.virtual_size = e.virtual_size;
    uint64_t wire =
        12 + e.payload.size() + e.virtual_size + (i == 0 ? 21 : 0);
    handle_data(src, m, wire);
  }
}

void Stabilizer::handle_data(NodeId src, const data::DataView& frame,
                             uint64_t wire_size) {
  (void)src;
  if (frame.origin >= options_.topology.num_nodes()) return;
  // Our own stream never re-delivers to us — after a takeover of our stream
  // the acting primary skips us anyway, but a retransmit raced against the
  // fence could still arrive; delivering our own messages back would corrupt
  // the origin rule.
  if (frame.origin == options_.self) return;
  switch (rx_.on_frame(frame.origin, frame.seq)) {
    case data::ReceiveTracker::Verdict::kStaleDuplicate:
      STAB_OBS(ctr_.duplicates_dropped.inc());
      return;
    case data::ReceiveTracker::Verdict::kGap:
      STAB_OBS(ctr_.gaps_detected.inc());
      return;  // go-back-N: wait for the retransmitted tail
    case data::ReceiveTracker::Verdict::kAccept:
      break;
  }
  STAB_OBS(++ctr_.pending_messages_delivered);
  STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kDeliver, options_.self,
             frame.origin, frame.seq, src);
  if (STAB_PROBE_SAMPLED(probe_, frame.seq))
    STAB_PROBE(probe_, on_deliver(options_.self, frame.origin, frame.seq,
                                  env().now()));

  FrontierEngine& engine = *engines_[frame.origin];
  // Origin rule for the remote stream (the stream's sequencing authority has
  // every property for the messages it sequenced) plus our own receipt,
  // applied as one batch. After a failover the authority is the acting
  // primary, not the origin node — crediting the dead origin would wedge
  // MIN-over-all predicates forever.
  const NodeId authority = stream_primary_[frame.origin];
  std::vector<AckUpdate> updates;
  updates.reserve(types_.count() + 1);
  for (StabilityTypeId t = 0; t < types_.count(); ++t)
    updates.push_back(AckUpdate{t, authority, frame.seq, {}});
  updates.push_back(AckUpdate{StabilityTypeRegistry::kReceived, options_.self,
                              frame.seq, {}});
  engine.on_ack_batch(updates);
  mark_dirty(frame.origin, StabilityTypeRegistry::kReceived, frame.seq, {});

  if (delivery_)
    delivery_(frame.origin, frame.seq, frame.payload, wire_size);

  if (options_.auto_report_delivered) {
    engine.on_ack(StabilityTypeRegistry::kDelivered, options_.self,
                  frame.seq);
    mark_dirty(frame.origin, StabilityTypeRegistry::kDelivered, frame.seq,
               {});
  }
}

void Stabilizer::handle_ack_batch(const data::AckBatchFrame& frame) {
  // Group the batch per origin engine and batch-apply: the whole frame is
  // max-merged before any predicate re-evaluates, so each affected
  // predicate evaluates once per frame instead of once per entry. The
  // AckUpdates view the frame's extra bytes — valid for the duration of
  // on_ack_batch, which routes each extra to the entries it affects.
  // Buckets are local because monitors fired by the batch may re-enter
  // (send -> apply_origin_rule_for_send runs a nested batch).
  std::vector<std::vector<AckUpdate>> per_origin(engines_.size());
  uint64_t applied = 0;
  for (const data::AckEntry& e : frame.entries) {
    if (e.about_origin >= engines_.size()) continue;
    per_origin[e.about_origin].push_back(
        AckUpdate{e.type, frame.reporter, e.seq, BytesView(e.extra)});
    ++applied;
  }
  STAB_OBS(if (applied) ctr_.ack_entries_applied.inc(applied));
  (void)applied;
  for (NodeId origin = 0; origin < per_origin.size(); ++origin)
    if (!per_origin[origin].empty())
      engines_[origin]->on_ack_batch(per_origin[origin]);
  if (options_.send_window > 0) pump_windows();  // acks free window space
  maybe_reclaim();
}

void Stabilizer::handle_report_batch(NodeId src,
                                     const data::ReportBatchFrame& frame) {
  // The whole-node fence in on_frame already judged `src` (the forwarder).
  // Each block still carries its own reporter's credential: an aggregator
  // may innocently relay the vector of a member that was deposed after
  // flushing, and those receipts must stop influencing reclamation / flow
  // control exactly like a zombie's own ACKBATCH would.
  const bool absorbing = deferred_ && agg_self_ && src != options_.self &&
                         src < same_az_.size() && same_az_[src];
  std::vector<std::vector<AckUpdate>> per_origin(engines_.size());
  uint64_t applied = 0;
  bool absorbed_any = false;
  for (const data::ReportBlock& b : frame.blocks) {
    // Our own vector echoed back (an aggregator broadcasts merged state to
    // everyone, including the mirrors it came from) carries nothing new.
    if (b.reporter >= engines_.size() || b.reporter == options_.self) continue;
    if (stream_primary_[b.reporter] != b.reporter) {
      STAB_OBS(ctr_.report_blocks_fenced.inc());
      continue;
    }
    for (const data::ReportEntry& e : b.entries) {
      if (e.about_origin >= engines_.size()) continue;
      per_origin[e.about_origin].push_back(
          AckUpdate{e.type, b.reporter, e.seq, {}});
      ++applied;
    }
    // Aggregator merge: blocks arriving from our own AZ's members fold into
    // the accumulator for the next long-haul flush. Blocks from outside the
    // AZ (another aggregator's forward, or a fallback mirror) are consumed
    // locally but never re-forwarded — one merge level, no loops.
    if (absorbing) {
      deferred_->absorb(b);
      absorbed_any = true;
      STAB_OBS(ctr_.agg_blocks_absorbed.inc());
    }
  }
  STAB_OBS(if (applied) ctr_.report_entries_applied.inc(applied));
  (void)applied;
  for (NodeId origin = 0; origin < per_origin.size(); ++origin)
    if (!per_origin[origin].empty())
      engines_[origin]->on_ack_batch(per_origin[origin]);
  if (absorbed_any) schedule_deferred_timer();
  if (options_.send_window > 0) pump_windows();  // reports free window space
  maybe_reclaim();
}

// --- crash-restart rejoin (RESUME handshake) -----------------------------------

void Stabilizer::send_resume(NodeId peer, bool reply) {
  data::ResumeFrame frame;
  frame.sender = options_.self;
  frame.primary_epoch = stream_epoch_[options_.self];
  frame.epoch = session_epoch_;
  frame.receive_through = rx_.received_through(peer);
  frame.reply = reply;
  transport_.send_shared(peer,
                         std::make_shared<const Bytes>(data::encode(frame)));
  STAB_OBS({
    ctr_.shared_sends.inc();
    ctr_.resumes_sent.inc();
  });
}

void Stabilizer::handle_resume(NodeId src, const data::ResumeFrame& frame) {
  STAB_OBS(ctr_.resumes_received.inc());
  if (frame.sender != src || src >= peer_epoch_.size()) return;

  // Any RESUME from src was sent causally after src processed our own
  // announcement (a reply) or re-announces its session (in which case our
  // reply below carries everything our announcement did): either way our
  // announcement to src needs no further re-sends.
  resume_pending_[src] = false;

  if (frame.epoch > peer_epoch_[src]) {
    peer_epoch_[src] = frame.epoch;

    // Rewind go-back-N to the reborn peer's persisted delivery cursor;
    // frames it lost with its volatile state retransmit from the send
    // buffer.
    SeqNum resume_from =
        std::max<SeqNum>(frame.receive_through + 1, out_.base());
    if (next_to_send_[src] > resume_from) next_to_send_[src] = resume_from;
    peer_acked_at_last_probe_[src] = kNoSeq;

    // Re-issue every cumulative stability report so the peer rebuilds its
    // ack tables immediately instead of waiting for the heartbeat.
    for (NodeId about = 0; about < reported_.size(); ++about)
      for (StabilityTypeId t = 0; t < reported_[about].size(); ++t)
        if (reported_[about][t] != kNoSeq)
          mark_dirty(about, t, reported_[about][t], {});

    mark_peer_recovered(src);
  }

  // Answer announcements (even stale duplicates — the announcer keeps
  // re-sending until a reply gets through); never answer replies, so a
  // concurrent restart of both ends converges instead of ping-ponging.
  if (!frame.reply && !excluded_[src]) send_resume(src, /*reply=*/true);
  pump_windows();
}

void Stabilizer::mark_peer_recovered(NodeId peer) {
  // Exactly-once per episode: a RESUME-driven recovery suppresses the
  // stall_check progress path (stalled_ already cleared) and vice versa.
  stalled_[peer] = false;
  STAB_OBS(ctr_.peer_recover_episodes.inc());
  if (recovered_handler_) recovered_handler_(peer);
}

void Stabilizer::maybe_reclaim() {
  for (auto& [origin, adopted] : adopted_) reclaim_adopted(origin, adopted);
  if (out_.empty()) return;
  const AckTable& acks = engines_[options_.self]->acks();
  SeqNum floor = out_.last();
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || excluded_[peer]) continue;
    floor = std::min(floor, acks.get(StabilityTypeRegistry::kReceived, peer));
  }
  if (floor >= out_.base()) out_.reclaim_through(floor);
}

// --- control-plane output ---------------------------------------------------------

void Stabilizer::mark_dirty(NodeId about, StabilityTypeId type, SeqNum seq,
                            Bytes extra) {
  auto& reported = reported_[about];
  if (reported.size() <= type) reported.resize(type + 1, kNoSeq);
  reported[type] = std::max(reported[type], seq);
  // Deferred propagation: plain reports park in the accumulator and ride a
  // REPORTBATCH flush. Reports with extra bytes stay on the immediate
  // ACKBATCH path in every mode — extras are per-report payloads that a
  // max-merge would drop. reported_ was updated above either way, so the
  // heartbeat re-issue and RESUME re-announce cover deferred reports too.
  if (deferred_ && extra.empty()) {
    note_deferred(about, type, seq);
    return;
  }
  auto& per_type = dirty_[about];
  if (per_type.size() <= type) per_type.resize(type + 1);
  DirtyAck& d = per_type[type];
  if (seq <= d.seq) return;  // monotonic coalescing
  d.seq = seq;
  d.extra = std::move(extra);
  any_dirty_ = true;
  schedule_ack_timer();
}

void Stabilizer::schedule_ack_timer() {
  if (ack_timer_armed_ || stopped_) return;
  if (options_.ack_interval <= Duration::zero()) {
    flush_acks();
    return;
  }
  ack_timer_armed_ = true;
  ack_timer_ = env().schedule_after(options_.ack_interval, [this] {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    ack_timer_armed_ = false;
    ack_timer_ = kInvalidTimer;
    if (!stopped_) flush_acks();
  });
}

void Stabilizer::flush_acks() {
  if (!any_dirty_) return;
  any_dirty_ = false;

  if (options_.broadcast_acks) {
    data::AckBatchFrame batch;
    batch.reporter = options_.self;
    batch.primary_epoch = stream_epoch_[options_.self];
    for (NodeId about = 0; about < dirty_.size(); ++about) {
      for (StabilityTypeId t = 0; t < dirty_[about].size(); ++t) {
        DirtyAck& d = dirty_[about][t];
        if (d.seq == kNoSeq) continue;
        batch.entries.push_back(
            data::AckEntry{about, t, d.seq, std::move(d.extra)});
        d = DirtyAck{};
      }
    }
    if (batch.entries.empty()) return;
    STAB_OBS(ctr_.ack_flush_entries.record(batch.entries.size()));
#if STAB_OBS_ENABLED
    if (STAB_TRACE_WANTS(tracer_, obs::SpanEvent::kAckReport)) {
      TimePoint now = env().now();
      for (const data::AckEntry& e : batch.entries)
        tracer_->record(now, obs::SpanEvent::kAckReport, options_.self,
                        e.about_origin, e.seq, kInvalidNode,
                        types_.name(e.type));
    }
#endif
    // One encode, fanned out refcounted — the ack broadcast rides the same
    // zero-copy path as the data plane.
    auto encoded = std::make_shared<const Bytes>(data::encode(batch));
    for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
      if (peer == options_.self || excluded_[peer]) continue;
      transport_.send_shared(peer, encoded);
      STAB_OBS({
        ++ctr_.pending_shared_sends;
        ctr_.ack_batches_sent.inc();
        ctr_.ack_bytes_sent.inc(encoded->size());
      });
    }
  } else {
    // Origin-scoped: each origin gets only the reports about its stream.
    for (NodeId about = 0; about < dirty_.size(); ++about) {
      data::AckBatchFrame batch;
      batch.reporter = options_.self;
      batch.primary_epoch = stream_epoch_[options_.self];
      for (StabilityTypeId t = 0; t < dirty_[about].size(); ++t) {
        DirtyAck& d = dirty_[about][t];
        if (d.seq == kNoSeq) continue;
        batch.entries.push_back(
            data::AckEntry{about, t, d.seq, std::move(d.extra)});
        d = DirtyAck{};
      }
      if (batch.entries.empty()) continue;
      if (about == options_.self || excluded_[about]) continue;
      STAB_OBS(ctr_.ack_flush_entries.record(batch.entries.size()));
#if STAB_OBS_ENABLED
      if (STAB_TRACE_WANTS(tracer_, obs::SpanEvent::kAckReport)) {
        TimePoint now = env().now();
        for (const data::AckEntry& e : batch.entries)
          tracer_->record(now, obs::SpanEvent::kAckReport, options_.self,
                          e.about_origin, e.seq, kInvalidNode,
                          types_.name(e.type));
      }
#endif
      Bytes enc = data::encode(batch);
      STAB_OBS({
        ctr_.ack_batches_sent.inc();
        ctr_.ack_bytes_sent.inc(enc.size());
      });
      transport_.send(about, std::move(enc));
    }
  }
  // The periodic control flush doubles as the fold point for the batched
  // data-plane deltas, so receive-side counters stay at most one
  // ack_interval stale (stats()/metrics() fold on read anyway).
  STAB_OBS(ctr_.flush_pending());
}

// --- deferred propagation (DESIGN.md §10) ----------------------------------------

void Stabilizer::note_deferred(NodeId about, StabilityTypeId type,
                               SeqNum seq) {
  deferred_->note(options_.self, stream_epoch_[options_.self], about, type,
                  seq);
  if (options_.deferred_delta_threshold > 0 &&
      deferred_->pending_delta() >= options_.deferred_delta_threshold) {
    // Burst: enough has accumulated that waiting out the timer only adds
    // lag without saving frames. Flush now; the armed timer (if any) finds
    // an empty accumulator and no-ops.
    STAB_OBS(ctr_.deferred_delta_flushes.inc());
    flush_deferred();
    return;
  }
  schedule_deferred_timer();
}

void Stabilizer::schedule_deferred_timer() {
  if (deferred_timer_armed_ || stopped_) return;
  if (options_.deferred_flush_interval <= Duration::zero()) {
    flush_deferred();
    return;
  }
  deferred_timer_armed_ = true;
  deferred_timer_ =
      env().schedule_after(options_.deferred_flush_interval, [this] {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        deferred_timer_armed_ = false;
        deferred_timer_ = kInvalidTimer;
        if (!stopped_) flush_deferred();
      });
}

NodeId Stabilizer::usable_aggregator() const {
  const NodeId g = my_aggregator_;
  if (g == kInvalidNode || g == options_.self) return kInvalidNode;
  // A dead or deposed aggregator must not become a control-plane black
  // hole: excluded (crash reaction), stalled (no ack progress), or fenced
  // (lost its own stream — everything it forwards would be dropped as
  // zombie output) all mean "bypass and fan out directly". The stall /
  // RESUME machinery flips these back when the aggregator heals.
  if (excluded_[g] || stalled_[g]) return kInvalidNode;
  if (stream_primary_[g] != g) return kInvalidNode;
  return g;
}

void Stabilizer::flush_deferred() {
  if (!deferred_ || deferred_->empty()) return;
  data::ReportBatchFrame frame;
  frame.forwarder = options_.self;
  frame.blocks = deferred_->take_flush();
  STAB_OBS({
    ctr_.deferred_flushes.inc();
    size_t entries = 0;
    for (const data::ReportBlock& b : frame.blocks) entries += b.entries.size();
    ctr_.report_flush_entries.record(entries);
  });
#if STAB_OBS_ENABLED
  if (STAB_TRACE_WANTS(tracer_, obs::SpanEvent::kAckReport)) {
    TimePoint now = env().now();
    for (const data::ReportBlock& b : frame.blocks) {
      if (b.reporter != options_.self) continue;  // relays traced at source
      for (const data::ReportEntry& e : b.entries)
        tracer_->record(now, obs::SpanEvent::kAckReport, options_.self,
                        e.about_origin, e.seq, kInvalidNode,
                        types_.name(e.type));
    }
  }
#endif

  // Routing. A mirror in aggregated mode hands its vector to the AZ
  // aggregator (one intra-AZ frame; the aggregator merges and forwards
  // long-haul). Everything else — kDeferred mode, the aggregator's own
  // merged flush, or a mirror whose aggregator is currently unusable —
  // fans out directly.
  NodeId agg = kInvalidNode;
  if (options_.report_path ==
          StabilizerOptions::ReportPath::kDeferredAggregated &&
      !agg_self_ && my_aggregator_ != kInvalidNode) {
    agg = usable_aggregator();
    if (agg == kInvalidNode) STAB_OBS(ctr_.agg_fallback_direct.inc());
  }

  if (agg != kInvalidNode) {
    Bytes enc = data::encode(frame);
    STAB_OBS({
      ctr_.report_batches_sent.inc();
      ctr_.report_bytes_sent.inc(enc.size());
    });
    transport_.send(agg, std::move(enc));
  } else if (options_.broadcast_acks) {
    // One encode, refcounted fan-out — same zero-copy shape as flush_acks.
    auto encoded = std::make_shared<const Bytes>(data::encode(frame));
    for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
      if (peer == options_.self || excluded_[peer]) continue;
      transport_.send_shared(peer, encoded);
      STAB_OBS({
        ++ctr_.pending_shared_sends;
        ctr_.report_batches_sent.inc();
        ctr_.report_bytes_sent.inc(encoded->size());
      });
    }
  } else {
    // Origin-scoped: each origin receives only the blocks' entries about
    // its own stream (mirrors flush-to-aggregator still sends the full
    // vector above; it is the direct fan-out that scopes).
    for (NodeId about = 0; about < options_.topology.num_nodes(); ++about) {
      if (about == options_.self || excluded_[about]) continue;
      data::ReportBatchFrame scoped;
      scoped.forwarder = options_.self;
      for (const data::ReportBlock& b : frame.blocks) {
        data::ReportBlock nb;
        nb.reporter = b.reporter;
        nb.primary_epoch = b.primary_epoch;
        for (const data::ReportEntry& e : b.entries)
          if (e.about_origin == about) nb.entries.push_back(e);
        if (!nb.entries.empty()) scoped.blocks.push_back(std::move(nb));
      }
      if (scoped.blocks.empty()) continue;
      Bytes enc = data::encode(scoped);
      STAB_OBS({
        ctr_.report_batches_sent.inc();
        ctr_.report_bytes_sent.inc(enc.size());
      });
      transport_.send(about, std::move(enc));
    }
  }
  STAB_OBS(ctr_.flush_pending());
}

// --- retransmission ------------------------------------------------------------

void Stabilizer::schedule_retransmit_timer() {
  retransmit_timer_ =
      env().schedule_after(options_.retransmit_timeout, [this] {
        std::lock_guard<std::recursive_mutex> lock(mutex_);
        if (stopped_) return;
        retransmit_check();
        schedule_retransmit_timer();
      });
}

void Stabilizer::retransmit_check() {
  // Control-plane heartbeat: re-issue the latest cumulative reports in case
  // a previous ACK frame was lost (receivers max-merge, so this is
  // idempotent).
  for (NodeId about = 0; about < reported_.size(); ++about)
    for (StabilityTypeId t = 0; t < reported_[about].size(); ++t)
      if (reported_[about][t] != kNoSeq)
        mark_dirty(about, t, reported_[about][t], {});

  // Unconfirmed session announcements ride the same probe cadence (a RESUME
  // lost to a partition must eventually land; duplicates are epoch-deduped).
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer)
    if (resume_pending_[peer] && peer != options_.self && !excluded_[peer])
      send_resume(peer);

  retransmit_adopted_check();

  if (out_.empty()) return;
  const AckTable& acks = engines_[options_.self]->acks();
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || excluded_[peer]) continue;
    SeqNum acked = acks.get(StabilityTypeRegistry::kReceived, peer);
    if (acked >= out_.last()) {
      peer_acked_at_last_probe_[peer] = acked;
      continue;
    }
    if (acked > peer_acked_at_last_probe_[peer]) {
      // Progress since the last probe: give the pipe time before resending.
      peer_acked_at_last_probe_[peer] = acked;
      continue;
    }
    SeqNum from = std::max(acked + 1, out_.base());
    SeqNum to = std::min<SeqNum>(
        out_.last(), from + static_cast<SeqNum>(options_.retransmit_window) - 1);
    for (SeqNum s = from; s <= to; ++s) {
      if (const auto* slot = out_.get(s)) {
        transmit(peer, *slot);
        STAB_OBS(ctr_.retransmits_sent.inc());
      }
    }
    peer_acked_at_last_probe_[peer] = acked;
  }
  STAB_OBS(ctr_.flush_pending());
}

// --- peer stall detection (§III-E) --------------------------------------------

void Stabilizer::set_peer_stall_handler(PeerStallHandler handler) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  stall_handler_ = std::move(handler);
}

void Stabilizer::set_peer_recovered_handler(PeerRecoveredHandler handler) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  recovered_handler_ = std::move(handler);
}

void Stabilizer::schedule_stall_timer() {
  stall_timer_ = env().schedule_after(options_.peer_stall_timeout, [this] {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (stopped_) return;
    stall_check();
    schedule_stall_timer();
  });
}

void Stabilizer::stall_check() {
  const AckTable& acks = engines_[options_.self]->acks();
  SeqNum last = sequencer_.last_assigned();
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || excluded_[peer]) continue;
    SeqNum acked = acks.get(StabilityTypeRegistry::kReceived, peer);
    bool owes = last >= 0 && acked < last;
    if (!owes || acked > stall_last_acked_[peer]) {
      stall_last_acked_[peer] = acked;
      // Progress (or nothing outstanding) closes an open stall episode;
      // a RESUME may have closed it already, keeping the pair exactly-once.
      if (stalled_[peer]) mark_peer_recovered(peer);
      continue;
    }
    if (!stalled_[peer]) {
      stalled_[peer] = true;  // one notification per stall episode
      STAB_OBS(ctr_.peer_stall_episodes.inc());
      if (stall_handler_) stall_handler_(peer);
    }
  }
}

// --- control-state snapshot / recovery (§III-E) -------------------------------

Bytes Stabilizer::snapshot_control_state() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Fold any pending pipeline state into the tables first, so the snapshot
  // includes reports that were ingested but not yet drained (logically
  // const: draining only applies already-received input).
  const_cast<Stabilizer*>(this)->drain_pipeline();
  Writer w(1024);
  w.u32(0x53544142);  // "STAB"
  w.u32(3);           // snapshot format version
  w.u32(options_.self);
  w.u64(session_epoch_);
  // v3: per-stream failover state (epoch + current sequencing authority), so
  // a reborn instance rejects zombie frames from primaries deposed before its
  // crash instead of re-admitting them. Adopted-stream state (this node
  // acting as primary for another stream) is deliberately NOT persisted: a
  // restart drops the adoption and the fleet re-elects.
  w.u32(static_cast<uint32_t>(stream_epoch_.size()));
  for (size_t i = 0; i < stream_epoch_.size(); ++i) {
    w.u32(stream_epoch_[i]);
    w.u32(stream_primary_[i]);
  }
  w.i64(sequencer_.last_assigned());
  // Unreclaimed send-buffer slots: messages some peer has not yet
  // acknowledged. Persisting them lets a reborn instance serve the
  // retransmissions that heal peers' gaps (v1 snapshots dropped them,
  // leaving permanent holes at any peer that was behind at crash time).
  w.i64(out_.base());
  w.u32(static_cast<uint32_t>(out_.size()));
  for (size_t i = 0; i < out_.size(); ++i) {
    const auto* slot = out_.get(out_.base() + static_cast<SeqNum>(i));
    w.blob(slot->payload);
    w.u64(slot->virtual_size);
  }
  // Stability type names (dense ids).
  w.u32(static_cast<uint32_t>(types_.count()));
  for (StabilityTypeId t = 0; t < types_.count(); ++t) w.str(types_.name(t));
  // Registered predicates (identical across engines; take the self one).
  const FrontierEngine& self_engine = *engines_[options_.self];
  auto keys = self_engine.predicate_keys();
  w.u32(static_cast<uint32_t>(keys.size()));
  for (const auto& key : keys) {
    w.str(key);
    w.str(self_engine.predicate(key)->source());
  }
  // Per-origin: delivery cursor + the full AckTable.
  const size_t n = options_.topology.num_nodes();
  w.u32(static_cast<uint32_t>(n));
  for (NodeId origin = 0; origin < n; ++origin) {
    w.i64(rx_.received_through(origin));
    const AckTable& acks = engines_[origin]->acks();
    w.u32(static_cast<uint32_t>(acks.num_types()));
    for (StabilityTypeId t = 0; t < acks.num_types(); ++t)
      for (NodeId node = 0; node < n; ++node) w.i64(acks.get(t, node));
  }
  return std::move(w).take();
}

Status Stabilizer::restore_control_state(BytesView snapshot) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  try {
    Reader r(snapshot);
    if (r.u32() != 0x53544142)
      return Status::error("restore: not a Stabilizer snapshot");
    uint32_t version = r.u32();
    if (version < 1 || version > 3)
      return Status::error("restore: unknown snapshot version");
    if (r.u32() != options_.self)
      return Status::error("restore: snapshot was taken by another node");
    uint64_t snap_epoch = version >= 2 ? r.u64() : 0;
    if (version >= 3) {
      // Merge persisted failover state on higher epoch (live state wins
      // otherwise — a stale snapshot must never resurrect a deposed
      // primary's authority).
      uint32_t nstreams = r.u32();
      for (uint32_t i = 0; i < nstreams; ++i) {
        PrimaryEpoch epoch = r.u32();
        NodeId primary = r.u32();
        if (i >= stream_epoch_.size()) continue;
        if (epoch > stream_epoch_[i]) {
          stream_epoch_[i] = epoch;
          stream_primary_[i] = primary;
          node_fenced_[i].store(stream_primary_[i] != static_cast<NodeId>(i),
                                std::memory_order_relaxed);
        }
      }
      if (stream_primary_[options_.self] != options_.self && !self_fenced_)
        fence_self();
    }
    SeqNum last_assigned = r.i64();
    sequencer_.fast_forward(last_assigned);
    if (version >= 2) {
      SeqNum snap_base = r.i64();
      uint32_t count = r.u32();
      // Refill the send buffer so the reborn instance can serve go-back-N
      // retransmissions for peers that were behind at crash time. Skipped
      // when restoring a stale snapshot into an instance that has already
      // advanced past it (monotonic-merge semantics: live state wins).
      bool adopt = out_.empty() && out_.base() <= snap_base;
      if (adopt) out_.reset_base(snap_base);
      for (uint32_t i = 0; i < count; ++i) {
        Bytes payload = r.blob();
        uint64_t virtual_size = r.u64();
        if (adopt)
          out_.push(snap_base + static_cast<SeqNum>(i), std::move(payload),
                    virtual_size);
      }
    } else {
      out_.reset_base(last_assigned + 1);  // v1 kept no slots: pre-crash
                                           // messages are unretransmittable
    }

    uint32_t ntypes = r.u32();
    for (uint32_t t = 0; t < ntypes; ++t) types_.get_or_register(r.str());

    uint32_t npreds = r.u32();
    for (uint32_t p = 0; p < npreds; ++p) {
      std::string key = r.str();
      std::string source = r.str();
      Status st = has_predicate(key) ? change_predicate(key, source)
                                     : register_predicate(key, source);
      if (!st.is_ok()) return st;
    }

    uint32_t n = r.u32();
    if (n != options_.topology.num_nodes())
      return Status::error("restore: topology size mismatch");
    for (NodeId origin = 0; origin < n; ++origin) {
      rx_.restore(origin, r.i64());
      uint32_t ntypes_origin = r.u32();
      for (StabilityTypeId t = 0; t < ntypes_origin; ++t)
        for (NodeId node = 0; node < n; ++node) {
          SeqNum seq = r.i64();
          if (seq != kNoSeq)
            engines_[origin]->on_ack(t, node, seq);  // monotonic merge
        }
    }

    // Rejoin: adopt a fresh session epoch and announce it to every peer.
    // (max() also covers restoring a stale snapshot into a live instance —
    // the epoch must never regress.)
    session_epoch_ = std::max(session_epoch_ + 1, snap_epoch + 1);
    const AckTable& acks = engines_[options_.self]->acks();
    for (NodeId peer = 0; peer < n; ++peer) {
      if (peer == options_.self) continue;
      // Start each peer's window past what it acknowledged before the
      // crash; its RESUME-triggered acks rewind us further if needed.
      SeqNum acked = acks.get(StabilityTypeRegistry::kReceived, peer);
      next_to_send_[peer] = std::max<SeqNum>(out_.base(), acked + 1);
      if (excluded_[peer]) continue;
      resume_pending_[peer] = true;
      send_resume(peer);
    }
    // Re-announce the restored delivery cursors so peers rebuild their ack
    // tables about us without waiting for new traffic.
    for (NodeId origin = 0; origin < n; ++origin) {
      SeqNum cursor = rx_.received_through(origin);
      if (origin == options_.self || cursor == kNoSeq) continue;
      mark_dirty(origin, StabilityTypeRegistry::kReceived, cursor, {});
      if (options_.auto_report_delivered)
        mark_dirty(origin, StabilityTypeRegistry::kDelivered, cursor, {});
    }
  } catch (const CodecError& e) {
    return Status::error(std::string("restore: corrupt snapshot: ") +
                         e.what());
  }
  return Status::ok();
}

// --- control plane API -----------------------------------------------------------

Status Stabilizer::register_predicate(const std::string& key,
                                      const std::string& source) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto& engine : engines_) {
    Status st = engine->register_predicate(key, source);
    if (!st.is_ok()) return st;  // identical context: fails on the first
  }
  // New types may have been auto-registered; backfill the origin rule for
  // everything already sent on the local stream.
  if (sequencer_.last_assigned() >= 0)
    apply_origin_rule_for_send(sequencer_.last_assigned());
  return Status::ok();
}

Status Stabilizer::change_predicate(const std::string& key,
                                    const std::string& source) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto& engine : engines_) {
    Status st = engine->change_predicate(key, source);
    if (!st.is_ok()) return st;
  }
  if (sequencer_.last_assigned() >= 0)
    apply_origin_rule_for_send(sequencer_.last_assigned());
  return Status::ok();
}

Status Stabilizer::remove_predicate(const std::string& key) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto& engine : engines_) {
    Status st = engine->remove_predicate(key);
    if (!st.is_ok()) return st;  // identical context: fails on the first
  }
  return Status::ok();
}

bool Stabilizer::has_predicate(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return engines_[options_.self]->has_predicate(key);
}

SeqNum Stabilizer::get_stability_frontier(const std::string& key,
                                          NodeId origin) const {
  if (pipeline_) {
    // Wait-free: one atomic snapshot load + one hash lookup + one atomic
    // read, no mutex — an ack storm hammering the drain cannot delay this.
    // An unpublished key means the predicate isn't (yet) registered, which
    // is exactly the locked path's kNoSeq answer.
    auto f = engines_[resolve_origin(origin)]->board().read(key);
    return f ? *f : kNoSeq;
  }
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return engines_[resolve_origin(origin)]->frontier(key);
}

Status Stabilizer::monitor_stability_frontier(const std::string& key,
                                              MonitorFn fn, NodeId origin) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return engines_[resolve_origin(origin)]->monitor(key, std::move(fn));
}

Status Stabilizer::waitfor(SeqNum seq, const std::string& key, WaiterFn fn,
                           NodeId origin) {
  {
    // Fenced fast-fail: once this node is deposed as its own stream's
    // primary, no waitfor on that stream can ever be satisfied through us —
    // the new authority re-sequences the suffix. Fire the fencing sentinel
    // instead of parking a waiter that would hang forever.
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (self_fenced_ && resolve_origin(origin) == options_.self) {
      STAB_OBS(ctr_.waiters_fenced.inc());
      fn(kFencedSeq);
      return Status::ok();
    }
  }
  if (pipeline_) {
    // Already-stable fast path: wait-free board read; fire immediately with
    // no lock. Not yet stable (or key unpublished) falls through to the
    // locked path, which re-checks the authoritative frontier under the
    // mutex before parking the waiter — drains fire waiters under that same
    // mutex, so there is no lost-wakeup window between the check and the
    // registration.
    auto f = engines_[resolve_origin(origin)]->board().read(key);
    if (f && *f >= seq) {
      fn(*f);
      return Status::ok();
    }
  }
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return engines_[resolve_origin(origin)]->waitfor(key, seq, std::move(fn));
}

bool Stabilizer::waitfor_blocking(SeqNum seq, const std::string& key,
                                  Duration timeout, NodeId origin) {
  return waitfor_blocking_status(seq, key, timeout, origin) == WaitStatus::kOk;
}

Stabilizer::WaitStatus Stabilizer::waitfor_blocking_status(SeqNum seq,
                                                           const std::string& key,
                                                           Duration timeout,
                                                           NodeId origin) {
  // Lifetime: the registered waiter callback co-owns `state` via the
  // shared_ptr, so the engine firing it AFTER this frame returned (a timeout
  // here does not deregister the waiter; neither coverage nor
  // remove_predicate has consumed it yet) writes into live, private memory —
  // never into a dangling stack frame. The late fire is then simply unheard.
  //
  // No lost wakeup: waitfor()'s already-stable check and the waiter
  // registration happen under the API mutex, and every waiter fire
  // (coverage from a drain/ack, cancellation via remove_predicate, or a
  // failover fence via fail_all_waiters) runs under that same mutex. A fire
  // that races this thread between registration and wait_for() lands before
  // wait_for re-checks `done` under state->m — wait_for's predicate sees
  // done == true and returns without sleeping.
  //
  // Cancellation while parked: remove_predicate fails pending waiters with
  // kNoSeq and a takeover of the local stream fails them with kFencedSeq, so
  // the callback wakes us with the sentinel and we report the distinct
  // status immediately instead of burning the whole timeout
  // (core_mt_test.WaitforBlockingCancelledWhileParked pins the kNoSeq leg).
  struct State {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    SeqNum frontier = kNoSeq;
  };
  auto state = std::make_shared<State>();
  Status st = waitfor(seq, key,
                      [state](SeqNum frontier) {
                        std::lock_guard<std::mutex> l(state->m);
                        state->frontier = frontier;
                        state->done = true;
                        state->cv.notify_all();
                      },
                      origin);
  if (!st.is_ok()) return WaitStatus::kNoSeq;
  std::unique_lock<std::mutex> l(state->m);
  if (!state->cv.wait_for(l, timeout, [&] { return state->done; }))
    return WaitStatus::kTimeout;
  if (state->frontier >= seq) return WaitStatus::kOk;
  // A failed waiter fires with a sentinel, never a covering frontier:
  // kFencedSeq when the local node was deposed as the stream's primary,
  // kNoSeq when the predicate was removed (or adjusted away, §III-E).
  return state->frontier == kFencedSeq ? WaitStatus::kFenced
                                       : WaitStatus::kNoSeq;
}

Status Stabilizer::report_stability(const std::string& type_name,
                                    NodeId origin, SeqNum seq,
                                    BytesView extra) {
  if (pipeline_ && extra.empty()) {
    // Lock-free fast path: resolve the type against the registry's published
    // snapshot and fold the report into the atomic cells; the drain applies
    // it (and flushes it to peers — node == self cells mark_dirty there).
    // Unknown types (registration needed), out-of-grid types, and reports
    // carrying extra bytes take the locked path below.
    NodeId o = origin == kInvalidNode ? options_.self : origin;
    if (o >= engines_.size())
      return Status::error("report_stability: bad origin");
    auto type = types_.find_fast(type_name);
    if (type && *type < pipeline_->cell_types()) {
      bool advanced = false;
      if (pipeline_->offer_ack(o, *type, options_.self, seq, &advanced)) {
        if (advanced) arm_drain();
        return Status::ok();
      }
    }
  }
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (origin == kInvalidNode) origin = options_.self;
  if (origin >= engines_.size())
    return Status::error("report_stability: bad origin");
  StabilityTypeId type = types_.get_or_register(type_name);
  engines_[origin]->on_ack(type, options_.self, seq,
                           BytesView(extra.data(), extra.size()));
  mark_dirty(origin, type, seq, Bytes(extra.begin(), extra.end()));
  return Status::ok();
}

// --- fault tolerance ---------------------------------------------------------------

std::vector<std::string> Stabilizer::predicates_referencing(
    NodeId node) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<std::string> out;
  const FrontierEngine& engine = *engines_[options_.self];
  for (const std::string& key : engine.predicate_keys())
    if (engine.predicate(key)->references_node(node)) out.push_back(key);
  return out;
}

void Stabilizer::set_peer_excluded(NodeId node, bool excluded) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (node >= excluded_.size() || node == options_.self) return;
  excluded_[node] = excluded;
  if (excluded) maybe_reclaim();  // the dead peer no longer pins the buffer
}

bool Stabilizer::peer_excluded(NodeId node) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return node < excluded_.size() && excluded_[node];
}

// --- primary failover (DESIGN.md §6) -------------------------------------------

PrimaryEpoch Stabilizer::stream_epoch(NodeId origin) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return stream_epoch_[resolve_origin(origin)];
}

NodeId Stabilizer::stream_primary(NodeId origin) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return stream_primary_[resolve_origin(origin)];
}

bool Stabilizer::self_fenced() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return self_fenced_;
}

bool Stabilizer::is_acting_primary(NodeId origin) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return adopted_.count(origin) > 0;
}

SeqNum Stabilizer::acting_last_sent(NodeId origin) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = adopted_.find(origin);
  return it == adopted_.end() ? kNoSeq : it->second.sequencer.last_assigned();
}

Status Stabilizer::adopt_stream(NodeId origin, SeqNum start_seq,
                                PrimaryEpoch epoch) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (origin >= stream_epoch_.size())
    return Status::error("adopt_stream: bad origin");
  if (origin == options_.self)
    return Status::error("adopt_stream: cannot adopt own stream");
  if (start_seq < 0) return Status::error("adopt_stream: bad start_seq");
  // Accept the epoch when it is new, or when we already learned our own
  // committed takeover (observe_takeover from the Paxos commit handler runs
  // on the winner too) and are now installing the sequencing machinery.
  if (epoch < stream_epoch_[origin] ||
      (epoch == stream_epoch_[origin] &&
       stream_primary_[origin] != options_.self))
    return Status::error("adopt_stream: stale epoch");
  if (epoch > stream_epoch_[origin]) {
    stream_epoch_[origin] = epoch;
    stream_primary_[origin] = options_.self;
    STAB_OBS(ctr_.takeovers_observed.inc());
  }
  // The deposed origin is now a zombie for every frame kind (whole-node
  // fence; the pipelined ingest path reads the atomic flag).
  node_fenced_[origin].store(true, std::memory_order_relaxed);

  adopted_.erase(origin);
  AdoptedStream& a = adopted_[origin];
  a.epoch = epoch;
  a.sequencer.fast_forward(start_seq - 1);
  a.out.reset_base(start_seq);
  a.acked_at_probe.assign(options_.topology.num_nodes(), kNoSeq);

  // Position our delivery cursor at the takeover boundary: the reconciled
  // start may exceed our own delivered prefix (another peer saw more); the
  // gap seqs were never everywhere-stable and are skipped, counted.
  apply_takeover_cursor(origin, start_seq);
  return Status::ok();
}

SeqNum Stabilizer::send_as(NodeId origin, BytesView payload,
                           uint64_t virtual_size) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = adopted_.find(origin);
  if (it == adopted_.end()) return kFencedSeq;
  AdoptedStream& a = it->second;
  SeqNum seq = a.sequencer.next();
  a.out.push(seq, Bytes(payload.begin(), payload.end()), virtual_size);
  STAB_OBS(++ctr_.pending_messages_sent);
  STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kBroadcast, options_.self,
             origin, seq);
  if (STAB_PROBE_SAMPLED(probe_, seq))
    STAB_PROBE(probe_, on_send(origin, seq, env().now()));
  transmit_adopted(origin, a, *a.out.get(seq));
  // Origin rule, failover flavor: the sequencing authority (us) has every
  // property for the messages it sequenced — credited on our cell of the
  // adopted stream's engine. Peers credit us symmetrically in handle_data.
  std::vector<AckUpdate> updates;
  updates.reserve(types_.count());
  for (StabilityTypeId t = 0; t < types_.count(); ++t)
    updates.push_back(AckUpdate{t, options_.self, seq, {}});
  engines_[origin]->on_ack_batch(updates);
  reclaim_adopted(origin, a);  // single-peer topologies reclaim immediately
  return seq;
}

Status Stabilizer::observe_takeover(NodeId origin, NodeId new_primary,
                                    PrimaryEpoch epoch, SeqNum start_seq) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (origin >= stream_epoch_.size() ||
      new_primary >= options_.topology.num_nodes())
    return Status::error("observe_takeover: bad node id");
  if (epoch < stream_epoch_[origin])
    return Status::error("observe_takeover: stale epoch");
  if (epoch == stream_epoch_[origin]) {
    if (new_primary != stream_primary_[origin])
      return Status::error("observe_takeover: conflicting primary for epoch");
    // Idempotent re-application (the winner rebroadcasts TAKEOVER until the
    // fleet confirms): only the cursor catch-up can be new information, and
    // only the forward direction — a re-announcement must never roll back a
    // cursor that has already progressed under the new authority.
    if (start_seq != kNoSeq && origin != options_.self &&
        new_primary != options_.self)
      apply_takeover_cursor(origin, start_seq, /*allow_rollback=*/false);
    return Status::ok();
  }

  stream_epoch_[origin] = epoch;
  stream_primary_[origin] = new_primary;
  STAB_OBS(ctr_.takeovers_observed.inc());
  // Whole-node fence applies when a node loses its OWN stream: the cluster
  // declared it dead, so everything it emits from here on is zombie output.
  node_fenced_[origin].store(new_primary != origin, std::memory_order_relaxed);

  if (origin == options_.self) {
    // We are the one being deposed. Silence ourselves: no new sends, and
    // every parked own-stream waiter fails with the fencing sentinel now
    // rather than hanging on a frontier that will never advance through us.
    if (new_primary != options_.self) fence_self();
    return Status::ok();
  }

  // A newer takeover supersedes any adoption we held for this stream (a
  // cascaded failover deposed us as acting primary; our node identity —
  // and own stream — are untouched).
  if (new_primary != options_.self) adopted_.erase(origin);

  if (start_seq != kNoSeq && new_primary != options_.self)
    apply_takeover_cursor(origin, start_seq);
  return Status::ok();
}

void Stabilizer::fence_self() {
  if (self_fenced_) return;
  self_fenced_ = true;
  size_t failed = engines_[options_.self]->fail_all_waiters(kFencedSeq);
  STAB_OBS(if (failed) ctr_.waiters_fenced.inc(failed));
  (void)failed;
}

void Stabilizer::apply_takeover_cursor(NodeId origin, SeqNum start_seq,
                                       bool allow_rollback) {
  const SeqNum target = start_seq - 1;  // new authority resumes AT start_seq
  const SeqNum cur = rx_.received_through(origin);
  if (target > cur) {
    // Fast-forward: seqs in (cur, target] are lost to this node (the dead
    // primary's buffer is gone; nobody can retransmit them). Cumulative
    // stability reports jump the gap — frontier semantics are "through seq",
    // so waiters at gap seqs complete once post-takeover traffic stabilizes.
    rx_.restore(origin, target);
    STAB_OBS(
        ctr_.failover_seqs_skipped.inc(static_cast<uint64_t>(target - cur)));
    FrontierEngine& engine = *engines_[origin];
    engine.on_ack(StabilityTypeRegistry::kReceived, options_.self, target);
    mark_dirty(origin, StabilityTypeRegistry::kReceived, target, {});
    if (options_.auto_report_delivered) {
      engine.on_ack(StabilityTypeRegistry::kDelivered, options_.self, target);
      mark_dirty(origin, StabilityTypeRegistry::kDelivered, target, {});
    }
  } else if (target < cur && allow_rollback) {
    // Rollback: we consumed an old-epoch suffix the reconciliation round
    // never saw (we were partitioned from the winner's quorum). The new
    // primary re-issues those numbers with its own content; re-deliver them
    // under the new authority. Our earlier cumulative acks cannot retract —
    // delivery across the boundary is at-least-once here, by design. Only
    // the FIRST learn of the epoch may rewind: later re-announcements of
    // the same takeover see a cursor that has legitimately progressed under
    // the new authority (observe_takeover passes allow_rollback=false).
    SeqNum down = rx_.reset(origin, target);
    STAB_OBS(
        if (down) ctr_.failover_seqs_rolled_back.inc(
            static_cast<uint64_t>(down)));
    (void)down;
  }
}

void Stabilizer::transmit_adopted(NodeId origin, AdoptedStream& a,
                                  const data::OutBuffer::Slot& slot) {
  // Encode-once, refcounted fan-out — same shape as transmit(), but the
  // frame's origin field names the adopted stream and carries its epoch, and
  // the deposed origin node is never a destination.
  if (!slot.encoded) {
    slot.encoded = std::make_shared<const Bytes>(data::encode_data(
        origin, slot.seq, slot.payload, slot.virtual_size, a.epoch));
    STAB_OBS(++ctr_.pending_data_encodes);
  }
  uint64_t wire = slot.encoded->size() + slot.virtual_size;
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || peer == origin || excluded_[peer]) continue;
    transport_.send_shared(peer, slot.encoded, wire);
    STAB_OBS({
      ++ctr_.pending_shared_sends;
      ++ctr_.pending_frames_transmitted;
    });
    STAB_TRACE(tracer_, env().now(), obs::SpanEvent::kTransmit, options_.self,
               origin, slot.seq, peer);
  }
}

void Stabilizer::retransmit_adopted_check() {
  for (auto& [origin, a] : adopted_) {
    if (a.out.empty()) continue;
    const AckTable& acks = engines_[origin]->acks();
    for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
      if (peer == options_.self || peer == origin || excluded_[peer]) continue;
      SeqNum acked = acks.get(StabilityTypeRegistry::kReceived, peer);
      if (acked >= a.out.last() || acked > a.acked_at_probe[peer]) {
        a.acked_at_probe[peer] = acked;  // caught up / progressing: no probe
        continue;
      }
      SeqNum from = std::max(acked + 1, a.out.base());
      SeqNum to = std::min<SeqNum>(
          a.out.last(),
          from + static_cast<SeqNum>(options_.retransmit_window) - 1);
      for (SeqNum s = from; s <= to; ++s) {
        const auto* slot = a.out.get(s);
        if (!slot) continue;
        if (!slot->encoded) {
          slot->encoded = std::make_shared<const Bytes>(data::encode_data(
              origin, slot->seq, slot->payload, slot->virtual_size, a.epoch));
          STAB_OBS(++ctr_.pending_data_encodes);
        }
        transport_.send_shared(peer, slot->encoded,
                               slot->encoded->size() + slot->virtual_size);
        STAB_OBS({
          ++ctr_.pending_shared_sends;
          ++ctr_.pending_frames_transmitted;
          ctr_.retransmits_sent.inc();
        });
      }
      a.acked_at_probe[peer] = acked;
    }
  }
}

void Stabilizer::reclaim_adopted(NodeId origin, AdoptedStream& a) {
  if (a.out.empty()) return;
  const AckTable& acks = engines_[origin]->acks();
  SeqNum floor = a.out.last();
  for (NodeId peer = 0; peer < options_.topology.num_nodes(); ++peer) {
    if (peer == options_.self || peer == origin || excluded_[peer]) continue;
    floor = std::min(floor, acks.get(StabilityTypeRegistry::kReceived, peer));
  }
  if (floor >= a.out.base()) a.out.reclaim_through(floor);
}

// --- introspection ------------------------------------------------------------------

SeqNum Stabilizer::last_sent() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return sequencer_.last_assigned();
}

StabilizerStats Stabilizer::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Same logically-const fold as snapshot_control_state: apply pending
  // pipeline input so the eval counters reflect everything received.
  const_cast<Stabilizer*>(this)->drain_pipeline();
  StabilizerStats s;
  STAB_OBS({
    ctr_.flush_pending();
    s.messages_sent = ctr_.messages_sent.value();
    s.frames_transmitted = ctr_.frames_transmitted.value();
    s.messages_delivered = ctr_.messages_delivered.value();
    s.ack_batches_sent = ctr_.ack_batches_sent.value();
    s.ack_entries_applied = ctr_.ack_entries_applied.value();
    s.report_batches_sent = ctr_.report_batches_sent.value();
    s.report_entries_applied = ctr_.report_entries_applied.value();
    s.deferred_flushes = ctr_.deferred_flushes.value();
    s.agg_blocks_absorbed = ctr_.agg_blocks_absorbed.value();
    s.agg_fallback_direct = ctr_.agg_fallback_direct.value();
    s.report_blocks_fenced = ctr_.report_blocks_fenced.value();
    s.duplicates_dropped = ctr_.duplicates_dropped.value();
    s.gaps_detected = ctr_.gaps_detected.value();
    s.retransmits_sent = ctr_.retransmits_sent.value();
    s.peer_stall_episodes = ctr_.peer_stall_episodes.value();
    s.peer_recover_episodes = ctr_.peer_recover_episodes.value();
    s.resumes_sent = ctr_.resumes_sent.value();
    s.resumes_received = ctr_.resumes_received.value();
    s.data_encodes = ctr_.data_encodes.value();
    s.shared_sends = ctr_.shared_sends.value();
    s.frames_coalesced = ctr_.frames_coalesced.value();
    s.fanout_bytes_copied = ctr_.fanout_bytes_copied.value();
    s.fenced_frames = ctr_.fenced_frames.value();
    s.epoch_ahead_drops = ctr_.epoch_ahead_drops.value();
    s.takeovers_observed = ctr_.takeovers_observed.value();
    s.failover_seqs_skipped = ctr_.failover_seqs_skipped.value();
    s.failover_seqs_rolled_back = ctr_.failover_seqs_rolled_back.value();
    s.waiters_fenced = ctr_.waiters_fenced.value();
  });
  for (const auto& engine : engines_) {
    s.predicate_evals += engine->predicate_evals();
    s.evals_skipped_index += engine->evals_skipped_index();
    s.evals_skipped_binding += engine->evals_skipped_binding();
  }
  return s;
}

SeqNum Stabilizer::delivered_through(NodeId origin) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return rx_.received_through(origin);
}

uint64_t Stabilizer::session_epoch() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return session_epoch_;
}

uint64_t Stabilizer::peer_session_epoch(NodeId peer) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return peer < peer_epoch_.size() ? peer_epoch_[peer] : 0;
}

bool Stabilizer::resume_pending(NodeId peer) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return peer < resume_pending_.size() && resume_pending_[peer];
}

FrontierEngine& Stabilizer::engine(NodeId origin) {
  return *engines_[resolve_origin(origin)];
}
const FrontierEngine& Stabilizer::engine(NodeId origin) const {
  return *engines_[resolve_origin(origin)];
}

}  // namespace stab
