// Control-plane ingestion pipeline (DESIGN.md §4f).
//
// In PipelineMode::kPipelined the Stabilizer's receive path splits in two:
//
//   receive thread            ControlPipeline              control drain
//   --------------            ---------------              -------------
//   decode ACKBATCH   ---->   per-origin AckCellBlock ----> on_ack_batch
//   (plain entries)           (relaxed CAS-max cells)       (one coalesced
//                                                            batch, locked)
//   any other frame   ---->   per-source SPSC ring    ----> on_frame
//   (copied bytes)            (+ mutex-guarded overflow)    (locked)
//
// The producer side never touches the facade mutex: plain monotonic ack
// entries fold into atomic cells, everything else (data, resume, raw,
// ack entries carrying extras or out-of-grid types) is copied into a
// bounded SPSC ring indexed by source node. One ring per source is sound
// because the transport contract already serializes each (src -> dst)
// stream: all of src's frames reach us from one thread at a time (TCP: the
// IO thread; InProc direct dispatch: under src's own API lock; sim: the
// simulator thread), and that external serialization provides the
// producer-side ordering the SPSC ring needs.
//
// Ring exhaustion must not block a producer that holds its own node's lock
// (two nodes spinning on each other's full rings while holding their own
// locks would deadlock), so a full ring diverts to a small mutex-guarded
// overflow queue. FIFO per source is preserved: once a source has
// overflowed, its later frames keep taking the overflow path until the
// consumer empties it (the `overflow_active` flag is only cleared by the
// consumer after the queue is drained, and only the single producer of that
// source consults it).
//
// Cross-lane ordering (cells vs rings) is deliberately relaxed: stability
// reports are monotonic max-merges, so an ack overtaking a data frame — or
// vice versa — converges to the same tables the strictly-ordered legacy
// path produces. The chaos differential tests pin this equivalence.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "common/spsc_ring.hpp"
#include "common/types.hpp"
#include "control/ack_cells.hpp"
#include "obs/obs.hpp"

namespace stab {

class ControlPipeline {
 public:
  struct FrameEvent {
    NodeId src = kInvalidNode;
    uint64_t wire_size = 0;
    Bytes frame;
  };

  // In the -DSTAB_OBS=OFF flavor the obs namespace does not exist at all;
  // callers pass nullptr through the same signature.
#if STAB_OBS_ENABLED
  using RegistryPtr = obs::MetricsRegistry*;
#else
  using RegistryPtr = std::nullptr_t;
#endif

  /// `cell_types` bounds the (type x node) ack grid per origin; reports of
  /// later-registered types fall back to the frame rings. `registry` may be
  /// null (obs compiled out or not wired).
  ControlPipeline(size_t num_nodes, size_t cell_types, size_t ring_capacity,
                  RegistryPtr registry) {
    cells_.reserve(num_nodes);
    lanes_.reserve(num_nodes);
    for (size_t i = 0; i < num_nodes; ++i) {
      cells_.push_back(std::make_unique<AckCellBlock>(cell_types, num_nodes));
      lanes_.push_back(std::make_unique<Lane>(ring_capacity));
    }
#if STAB_OBS_ENABLED
    if (registry) {
      ring_depth_ = &registry->histogram("pipeline.ring_depth");
      drain_batch_ = &registry->histogram("pipeline.drain_batch");
      ring_stalls_ = &registry->counter("pipeline.ring_stalls");
      drains_ = &registry->counter("pipeline.drains");
      cell_acks_ = &registry->counter("pipeline.cell_acks");
      ring_events_ = &registry->counter("pipeline.ring_events");
    }
#else
    (void)registry;
#endif
  }

  size_t cell_types() const { return cells_[0]->num_types(); }
  size_t num_nodes() const { return lanes_.size(); }

  // --- producer side (lock-free; one producer per source lane) ---------------

  /// Fold one plain monotonic report into the atomic grid. Returns false if
  /// (type, reporter) is outside the grid — route the frame via push_frame.
  bool offer_ack(NodeId origin, StabilityTypeId type, NodeId reporter,
                 SeqNum seq, bool* advanced) {
    if (origin >= cells_.size()) {
      *advanced = false;
      return false;
    }
    bool ok = cells_[origin]->offer(type, reporter, seq, advanced);
#if STAB_OBS_ENABLED
    if (ok && *advanced && cell_acks_) cell_acks_->inc();
#endif
    return ok;
  }

  /// Copy `frame` into src's ingestion lane. Never blocks: a full ring
  /// diverts to the overflow queue (brief dedicated mutex, no other lock
  /// held under it).
  void push_frame(NodeId src, BytesView frame, uint64_t wire_size) {
    if (src >= lanes_.size()) return;
    Lane& lane = *lanes_[src];
    FrameEvent ev{src, wire_size, Bytes(frame.begin(), frame.end())};
#if STAB_OBS_ENABLED
    if (ring_events_) ring_events_->inc();
    if (ring_depth_) ring_depth_->record(lane.ring.size_approx());
#endif
    // Once overflowed, stay on the overflow path until the consumer clears
    // the flag — otherwise a later ring push would overtake queued frames.
    if (!lane.overflow_active.load(std::memory_order_acquire) &&
        lane.ring.try_push(std::move(ev)))
      return;
#if STAB_OBS_ENABLED
    if (ring_stalls_) ring_stalls_->inc();
    // Back-pressure episode marker: the source's ring filled and this frame
    // (and, until the consumer drains, its successors) detours through the
    // mutexed overflow queue. The tracer's own lock makes the record safe
    // off this otherwise lock-free path; overflow is already the slow lane.
    if (STAB_TRACE_WANTS(trace_tracer_, obs::SpanEvent::kRingStall) &&
        trace_now_)
      trace_tracer_->record(trace_now_(), obs::SpanEvent::kRingStall,
                            trace_node_, src, kNoSeq, src);
#endif
    std::lock_guard<std::mutex> l(overflow_mu_);
    lane.overflow.push_back(std::move(ev));
    lane.overflow_active.store(true, std::memory_order_release);
  }

  /// One-shot drain arming: the first producer to make the pipeline
  /// non-empty wins and schedules the drain task; the rest skip.
  bool try_arm() {
    return !armed_.exchange(true, std::memory_order_acq_rel);
  }

  // --- consumer side (externally serialized: the facade mutex) ---------------

  /// Re-allow arming. Called by the drain before it starts popping, so a
  /// producer racing the drain re-arms and nothing is stranded.
  void disarm() { armed_.store(false, std::memory_order_release); }

  bool has_pending() const {
    for (const auto& c : cells_)
      if (c->dirty()) return true;
    for (const auto& l : lanes_)
      if (!l->ring.empty_approx() ||
          l->overflow_active.load(std::memory_order_acquire))
        return true;
    return false;
  }

  /// Diff every origin's cell grid; fn(origin, type, node, seq) per advanced
  /// cell. Returns cells emitted.
  template <typename Fn>
  size_t drain_cells(Fn&& fn) {
    size_t n = 0;
    for (NodeId origin = 0; origin < cells_.size(); ++origin)
      n += cells_[origin]->drain(
          [&](StabilityTypeId t, NodeId node, SeqNum seq) {
            fn(origin, t, node, seq);
          });
    return n;
  }

  /// Pop every lane dry (ring, then any overflow, preserving per-source
  /// FIFO); fn(FrameEvent&) per frame. Returns frames emitted.
  template <typename Fn>
  size_t drain_frames(Fn&& fn) {
    size_t n = 0;
    for (auto& lp : lanes_) {
      Lane& lane = *lp;
      for (;;) {
        FrameEvent ev;
        while (lane.ring.try_pop(ev)) {
          fn(ev);
          ++n;
        }
        if (!lane.overflow_active.load(std::memory_order_acquire)) break;
        std::deque<FrameEvent> ovf;
        {
          std::lock_guard<std::mutex> l(overflow_mu_);
          ovf.swap(lane.overflow);
          lane.overflow_active.store(false, std::memory_order_release);
        }
        for (FrameEvent& e : ovf) {
          fn(e);
          ++n;
        }
        // The producer may have switched back to the ring the moment the
        // flag cleared; loop to keep FIFO.
      }
    }
    return n;
  }

#if STAB_OBS_ENABLED
  void record_drain(size_t batch) {
    if (drains_) drains_->inc();
    if (drain_batch_) drain_batch_->record(batch);
  }

  /// Wire the owning node's tracer so ring-overflow episodes emit
  /// kRingStall spans (node = owner, origin/peer = the stalled source).
  /// `now` must read the active Env clock. Call before traffic starts.
  void set_trace(obs::Tracer* tracer, NodeId node,
                 std::function<TimePoint()> now) {
    trace_tracer_ = tracer;
    trace_node_ = node;
    trace_now_ = std::move(now);
  }
#else
  void record_drain(size_t) {}
#endif

 private:
  struct Lane {
    explicit Lane(size_t cap) : ring(cap) {}
    SpscRing<FrameEvent> ring;
    std::atomic<bool> overflow_active{false};
    std::deque<FrameEvent> overflow;  // guarded by overflow_mu_
  };

  std::vector<std::unique_ptr<AckCellBlock>> cells_;  // per origin
  std::vector<std::unique_ptr<Lane>> lanes_;          // per source
  std::mutex overflow_mu_;
  std::atomic<bool> armed_{false};

#if STAB_OBS_ENABLED
  obs::Histogram* ring_depth_ = nullptr;
  obs::Histogram* drain_batch_ = nullptr;
  obs::Counter* ring_stalls_ = nullptr;
  obs::Counter* drains_ = nullptr;
  obs::Counter* cell_acks_ = nullptr;
  obs::Counter* ring_events_ = nullptr;
  obs::Tracer* trace_tracer_ = nullptr;
  NodeId trace_node_ = kInvalidNode;
  std::function<TimePoint()> trace_now_;
#endif
};

}  // namespace stab
