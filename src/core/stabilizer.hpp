// The Stabilizer library core — the paper's public API (§III).
//
// One Stabilizer instance runs per WAN node (data center). It owns:
//   * the data plane: primary-site sequencing of the local stream, eager
//     streaming of every message to every peer, send buffering until global
//     receipt, optional go-back-N retransmission for lossy links;
//   * the control plane: one FrontierEngine per origin stream (an SST-style
//     AckTable plus the registered stability-frontier predicates), fed by a
//     continuous monotonic ACK stream that is batched per ack_interval;
//   * the paper's interfaces: send, register_predicate / change_predicate,
//     get_stability_frontier, monitor_stability_frontier, waitfor, and
//     report_stability for application-defined stability levels.
//
// Threading: the core is single-threaded (paper §III-A). All methods must be
// called from the transport's Env thread or with external synchronization;
// an internal mutex makes the public API safe to call from an application
// thread when running on the real-time transports. waitfor_blocking() is the
// only method that blocks, and must not be called from the Env thread.
//
// The mutex is deliberately a std::recursive_mutex: user callbacks run
// under the lock and are allowed to call back into this Stabilizer. The
// supported re-entrant paths, each pinned by a test, are:
//   * delivery handler -> send / report_stability / get_stability_frontier
//     (the backup service reports "persisted" from its delivery upcall) —
//     core_test ReentrantDeliveryHandlerCallsBackIn;
//   * monitor / waitfor callbacks -> get_stability_frontier / waitfor /
//     send / report_stability (frontier-chasing state machines) —
//     core_test ReentrantMonitorCallsBackIn;
//   * peer-stall handler -> change_predicate / set_peer_excluded
//     (§III-E fault reaction runs inside the stall probe) — recovery_test
//     StallDetection.TypicalReactionAdjustsPredicates.
// A plain std::mutex would deadlock on every one of these, since all
// callbacks are invoked while the API lock is held.
//
// PipelineMode::kPipelined (DESIGN.md §4f) relaxes the receive side of this
// model: transport receive threads no longer take the mutex (they feed
// lock-free rings/cells and a posted drain applies everything under the
// lock), get_stability_frontier and the waitfor fast path are wait-free
// reads of a published snapshot, and report_stability without extra bytes
// is lock-free. User callbacks still always run under the mutex, on the Env
// thread — the re-entrancy contract above is unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "config/topology.hpp"
#include "control/deferred_reporter.hpp"
#include "control/frontier_engine.hpp"
#include "core/pipeline.hpp"
#include "data/out_buffer.hpp"
#include "data/receive_tracker.hpp"
#include "data/wire.hpp"
#include "dsl/predicate.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace stab {

struct StabilizerOptions {
  Topology topology;
  NodeId self = 0;

  /// Control-plane batching: dirty stability reports are flushed at most
  /// this often. Monotonicity makes coalescing lossless (§III-A).
  Duration ack_interval = millis(2);

  /// Go-back-N retransmission probe period; zero disables (the default —
  /// the bundled transports are lossless FIFO). Enable on lossy links.
  Duration retransmit_timeout = Duration::zero();
  size_t retransmit_window = 256;

  /// Crash detection (§III-E "The crashed secondary node can be observed by
  /// a predicate update timer"): if a peer's receive acknowledgment makes no
  /// progress for this long while data is outstanding to it, the peer-stall
  /// handler fires. Zero disables.
  Duration peer_stall_timeout = Duration::zero();

  /// Per-peer flow control: at most this many messages transmitted beyond
  /// the peer's receive acknowledgment; the rest stay in the send buffer
  /// and flow as acks come back (§III-B "it can also buffer data for later
  /// transmission if needed"). Zero = transmit aggressively with no cap
  /// (the paper's default behaviour).
  size_t send_window = 0;

  /// true: stability reports go to every node, so every WAN site evaluates
  /// predicates independently (Fig 1). false: reports go only to the
  /// message's origin — sufficient when only senders track stability, and
  /// what the large trace benches use.
  bool broadcast_acks = true;

  /// Control-plane propagation strategy (DESIGN.md §10, docs/TUNING.md).
  ///   kImmediate          — the seed behaviour: every plain report rides
  ///                         the next ack_interval ACKBATCH flush.
  ///   kDeferred           — plain (extra-free) reports accumulate in a
  ///                         DeferredReporter and flush as one REPORTBATCH
  ///                         per deferred_flush_interval (or earlier when
  ///                         deferred_delta_threshold trips).
  ///   kDeferredAggregated — as kDeferred, but mirrors flush only to their
  ///                         AZ's aggregator (Topology::set_az_aggregator);
  ///                         the aggregator max-merges its members' vectors
  ///                         and forwards one merged frame long-haul. A dead
  ///                         aggregator (excluded / stalled / deposed) is
  ///                         bypassed: mirrors fall back to direct fan-out.
  /// Reports carrying extra bytes always use the immediate ACKBATCH path —
  /// extra payloads are not merged. Stability semantics are unchanged in
  /// every mode (reports stay cumulative monotonic maxima; only their
  /// propagation latency changes, bounded by the flush interval per hop).
  /// With retransmit_timeout enabled, keep it above deferred_flush_interval
  /// so the heartbeat re-issue does not race the ordinary flush.
  enum class ReportPath { kImmediate, kDeferred, kDeferredAggregated };
  ReportPath report_path = ReportPath::kImmediate;
  /// Deferred-mode flush period (the frontier-lag price of the bandwidth
  /// saving; see bench_stability_propagation).
  Duration deferred_flush_interval = millis(50);
  /// When > 0, a flush is also triggered as soon as the accumulated
  /// seq-advance units since the last flush reach this value (bounds
  /// staleness under bursts without shortening the idle-time period).
  uint64_t deferred_delta_threshold = 0;

  /// Large writes are split into messages of at most this size (§VI-B:
  /// "Stabilizer splits big writes into smaller packets whose upper bound is
  /// 8KB").
  size_t split_size = 8 * 1024;

  /// Execution strategy for compiled predicates.
  dsl::EvalMode eval_mode = dsl::EvalMode::kSpecialized;

  /// Data-plane send strategy. kShared (the default) encodes each message
  /// once into its send-buffer slot and fans the refcounted frame out via
  /// Transport::send_shared; go-back-N retransmits reuse the same buffer.
  /// kLegacy re-encodes per destination per transmission — the pre-fast-path
  /// behaviour, kept as an in-binary baseline for benches and differential
  /// tests.
  enum class DataPath { kLegacy, kShared };
  DataPath data_path = DataPath::kShared;

  /// Small-frame coalescing: when > 1, a window flush that finds several
  /// consecutive pending messages for a peer packs up to this many into one
  /// DATABATCH frame, and send() defers its flush to the end of the current
  /// event-loop turn so a burst of sends coalesces. 0/1 = off (the default:
  /// every send() transmits synchronously before returning, which
  /// latency-sensitive callers rely on).
  size_t coalesce_max_frames = 0;
  /// Byte bound per DATABATCH (payloads + virtual padding + per-entry
  /// headers). Messages too large to fit ride alone: coalescing exists to
  /// amortize per-frame overhead that large payloads already amortize.
  size_t coalesce_max_bytes = 16 * 1024;

  /// Control-plane threading (DESIGN.md §4f). kLegacyLocked (the default,
  /// the seed behaviour and the differential baseline): every received frame
  /// is processed under the API mutex on the Env thread. kPipelined:
  /// transport receive threads fold plain monotonic ack entries into
  /// lock-free per-origin cells and copy all other frames into per-source
  /// SPSC rings; a posted drain task applies them in batches under the
  /// mutex, get_stability_frontier and the waitfor already-stable check
  /// read a wait-free frontier snapshot, and report_stability with no extra
  /// bytes is lock-free. Pipelined visibility rules: a report becomes
  /// observable at the next drain, not synchronously within the reporting
  /// call — use waitfor/monitors, not back-to-back report-then-read, to
  /// sequence against it. On a single_threaded() transport (the simulator)
  /// the drain runs inline, keeping the schedule deterministic and
  /// digest-comparable with kLegacyLocked.
  enum class PipelineMode { kLegacyLocked, kPipelined };
  PipelineMode pipeline_mode = PipelineMode::kLegacyLocked;
  /// Pipelined-mode tuning: per-source ingestion-ring capacity (frames) and
  /// the per-origin ack-cell grid's stability-type capacity (reports of
  /// types registered beyond it take the ring path — correctness is
  /// unaffected, only the lock-free shortcut).
  size_t pipeline_ring_capacity = 1024;
  size_t pipeline_cell_types = 16;

  /// Automatically report the "delivered" level after the application
  /// upcall returns.
  bool auto_report_delivered = true;

  /// Shard attribution (DESIGN.md §9): set by the sharded facade to the
  /// instance's shard id so this node's metrics registry (and through it
  /// the /metrics exposition and JSONL exports) labels every series with
  /// the shard. -1 = unsharded (the default; exports unchanged).
  int shard_label = -1;

#if STAB_OBS_ENABLED
  /// Opt-in message-lifecycle tracer (docs/OBSERVABILITY.md). Usually one
  /// Tracer is shared by every node of a cluster so a message's broadcast,
  /// per-peer transmits, deliveries, ack reports, and frontier fires land in
  /// one stream. Null (the default) records nothing and costs one branch
  /// per instrumentation site.
  std::shared_ptr<obs::Tracer> tracer;

  /// Opt-in online stability-latency probe (docs/OBSERVABILITY.md §6):
  /// sampled send→deliver / per-type send→stable histograms with windowed
  /// percentiles, joined online instead of from an exported trace. Shared
  /// across a sim cluster like the tracer (one clock ties the spans
  /// together); per-node on real transports. Null (the default) records
  /// nothing and costs one branch per instrumentation site.
  std::shared_ptr<obs::LatencyProbe> probe;
#endif
};

/// Point-in-time snapshot of a node's core counters. Since the obs layer
/// (src/obs) landed this struct is a *compatibility view*: the authoritative
/// values live in the node's obs::MetricsRegistry (relaxed atomics, safe to
/// bump from transport IO threads without the API lock) and
/// Stabilizer::stats() reads through it. In a -DSTAB_OBS=OFF build every
/// registry-backed field reads 0; the control-plane eval counters are
/// engine-owned plain fields and report in every build.
struct StabilizerStats {
  uint64_t messages_sent = 0;       // local stream messages
  uint64_t frames_transmitted = 0;  // DATA frames put on the wire
  uint64_t messages_delivered = 0;  // remote messages upcalled
  uint64_t ack_batches_sent = 0;
  uint64_t ack_entries_applied = 0;
  // Deferred propagation (DESIGN.md §10). report_batches_sent counts
  // REPORTBATCH frames put on the wire (flushes × destinations);
  // deferred_flushes counts take_flush() drains (timer or delta-triggered).
  uint64_t report_batches_sent = 0;
  uint64_t report_entries_applied = 0;
  uint64_t deferred_flushes = 0;
  uint64_t agg_blocks_absorbed = 0;    // member blocks merged by an aggregator
  uint64_t agg_fallback_direct = 0;    // flushes that bypassed a dead aggregator
  uint64_t report_blocks_fenced = 0;   // blocks dropped: deposed reporter
  uint64_t duplicates_dropped = 0;
  uint64_t gaps_detected = 0;
  uint64_t retransmits_sent = 0;  // DATA frames re-sent by the go-back-N probe
  // §III-E failure-episode accounting. A stall episode opens when the
  // peer-stall handler fires and closes when the recovered handler fires;
  // both are exactly-once per episode, so after every fault has healed
  // peer_recover_episodes - peer_stall_episodes is the number of peer
  // restarts that were observed before their stall timer expired.
  uint64_t peer_stall_episodes = 0;
  uint64_t peer_recover_episodes = 0;
  // Crash-restart rejoin (RESUME handshake).
  uint64_t resumes_sent = 0;
  uint64_t resumes_received = 0;  // includes stale-epoch duplicates
  // Control-plane hot path (aggregated over every origin engine; see
  // FrontierEngine's counters of the same names).
  uint64_t predicate_evals = 0;
  uint64_t evals_skipped_index = 0;
  uint64_t evals_skipped_binding = 0;
  // Data-plane fast path. frames_transmitted above stays per message per
  // peer even when messages ride inside a DATABATCH; frames_coalesced counts
  // how many of those transmissions were coalesced.
  uint64_t data_encodes = 0;         // DATA/DATABATCH encode executions
  uint64_t shared_sends = 0;         // frames handed to Transport::send_shared
  uint64_t frames_coalesced = 0;     // message transmissions inside a batch
  uint64_t fanout_bytes_copied = 0;  // bytes encoded per-peer (legacy path)
  // Primary failover (epoch fencing; DESIGN.md §6). fenced_frames counts
  // frames dropped for carrying a *stale* primary epoch (the zombie
  // ex-primary signature); epoch_ahead_drops counts frames from a *newer*
  // epoch than this node has learned (healed by retransmission once the
  // takeover announcement lands).
  uint64_t fenced_frames = 0;
  uint64_t epoch_ahead_drops = 0;
  uint64_t takeovers_observed = 0;   // epoch bumps applied (adopt or observe)
  uint64_t failover_seqs_skipped = 0;      // cursor fast-forwards at takeover
  uint64_t failover_seqs_rolled_back = 0;  // cursor rewinds at takeover
  uint64_t waiters_fenced = 0;       // waitfor callbacks failed with kFencedSeq
};

class Stabilizer {
 public:
  /// Delivery upcall: a message of a remote origin's stream arrived in
  /// order. `wire_size` includes virtual padding.
  using DeliveryHandler = std::function<void(
      NodeId origin, SeqNum seq, BytesView payload, uint64_t wire_size)>;
  using MonitorFn = FrontierEngine::MonitorFn;
  using WaiterFn = FrontierEngine::WaiterFn;

  Stabilizer(StabilizerOptions options, Transport& transport);
  ~Stabilizer();

  Stabilizer(const Stabilizer&) = delete;
  Stabilizer& operator=(const Stabilizer&) = delete;

  /// This node's id within the topology. Constant; safe from any thread.
  NodeId self() const { return options_.self; }
  /// The cluster topology this node was constructed with. Constant; safe
  /// from any thread.
  const Topology& topology() const { return options_.topology; }
  /// The transport's execution environment (clock + timers). Safe from any
  /// thread; scheduling callbacks is the transport's thread-safety problem.
  Env& env() { return transport_.env(); }

#if STAB_OBS_ENABLED
  /// This node's metrics registry — counters/gauges/histograms the
  /// instrumented hot paths feed and stats() reads through. Thread-safe;
  /// takes the API lock briefly to fold batched transmit deltas into the
  /// registry so the returned view is current.
  obs::MetricsRegistry& metrics() const {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    ctr_.flush_pending();
    sync_trace_dropped();
    return metrics_;
  }

  /// The lifecycle tracer attached at construction (null when tracing is
  /// off). The failover manager records its episode spans through this.
  obs::Tracer* tracer() const { return tracer_; }

  /// The latency probe attached at construction (null when off).
  obs::LatencyProbe* probe() const { return probe_; }
#endif

  // --- data plane -------------------------------------------------------------
  /// Sequence and stream one message of the local pool to every peer.
  /// Returns its sequence number — or kFencedSeq, without sending, once this
  /// node has been deposed as its own stream's primary (see self_fenced()).
  /// `virtual_size` adds trace-replay padding that is charged to (simulated)
  /// bandwidth but not materialized.
  SeqNum send(BytesView payload, uint64_t virtual_size = 0);

  /// Split a large write into <= split_size messages (plus padding spread
  /// across them). Returns [first_seq, last_seq].
  std::pair<SeqNum, SeqNum> send_large(BytesView payload,
                                       uint64_t virtual_size = 0);

  void set_delivery_handler(DeliveryHandler handler);

  /// Frames whose leading kind byte is not a Stabilizer frame are passed
  /// through here — applications (e.g. the quorum protocol's read RPCs)
  /// multiplex their own messages onto the same links. Application kinds
  /// must be >= 0x40.
  using RawHandler =
      std::function<void(NodeId src, BytesView frame, uint64_t wire_size)>;
  void set_raw_frame_handler(RawHandler handler);

  /// Sends an application frame (kind byte >= 0x40) to one peer, outside the
  /// sequenced stream.
  void send_raw(NodeId dst, Bytes frame);

  // --- control plane (paper §III-D) --------------------------------------------
  /// Registers a new predicate under `key` on every origin stream's engine.
  Status register_predicate(const std::string& key, const std::string& source);
  /// Replaces an existing predicate at runtime (dynamic reconfiguration).
  Status change_predicate(const std::string& key, const std::string& source);
  /// Removes `key` from every origin stream's engine. Pending waiters on the
  /// key fail with kNoSeq (waitfor_blocking reports false). Must not be
  /// called from inside an engine callback.
  Status remove_predicate(const std::string& key);
  bool has_predicate(const std::string& key) const;

  /// Current frontier of `key` for `origin`'s stream (default: own stream).
  SeqNum get_stability_frontier(const std::string& key,
                                NodeId origin = kInvalidNode) const;

  /// Calls `fn` every time `key`'s frontier advances on `origin`'s stream.
  Status monitor_stability_frontier(const std::string& key, MonitorFn fn,
                                    NodeId origin = kInvalidNode);

  /// One-shot: calls `fn` when frontier(key) >= seq (immediately if so).
  Status waitfor(SeqNum seq, const std::string& key, WaiterFn fn,
                 NodeId origin = kInvalidNode);

  /// Blocking waitfor for real-time deployments. Must not be called from the
  /// Env thread. Returns false on timeout.
  bool waitfor_blocking(SeqNum seq, const std::string& key, Duration timeout,
                        NodeId origin = kInvalidNode);

  /// Why a blocking wait ended. kOk: frontier covered seq. kTimeout: the
  /// deadline expired with the waiter still parked (it may fire later; the
  /// late fire is unheard). kNoSeq: the wait is unsatisfiable — the key is
  /// unknown, or the predicate was removed/adjusted out from under the
  /// waiter (the §III-E reaction to a dead mirror). kFenced: this node was
  /// deposed as the stream's primary, so the old sequence space it was
  /// waiting on no longer exists (failover fencing).
  enum class WaitStatus { kOk, kTimeout, kNoSeq, kFenced };

  /// Status-returning flavor of waitfor_blocking: same blocking semantics,
  /// but timeout / removed-predicate / fenced outcomes are distinguishable
  /// instead of all collapsing to `false`.
  WaitStatus waitfor_blocking_status(SeqNum seq, const std::string& key,
                                     Duration timeout,
                                     NodeId origin = kInvalidNode);

  /// Report that `origin`'s message `seq` reached an application-defined
  /// stability level locally (e.g. "verified"). The report joins the
  /// control-plane stream; `extra` rides along as uninterpreted bytes.
  Status report_stability(const std::string& type_name, NodeId origin,
                          SeqNum seq, BytesView extra = {});

  // --- fault tolerance / reconfiguration ---------------------------------------
  /// Predicates (keys) that reference `node` — the candidates to adjust when
  /// the node fails (§III-E: "The primary can adjust the predicate to
  /// eliminate the impact").
  std::vector<std::string> predicates_referencing(NodeId node) const;

  /// Fired (once per stall episode, on the Env thread) when
  /// peer_stall_timeout elapses without ack progress from a peer that still
  /// owes acknowledgments. Typical reaction: adjust predicates via
  /// change_predicate and/or set_peer_excluded.
  using PeerStallHandler = std::function<void(NodeId peer)>;
  void set_peer_stall_handler(PeerStallHandler handler);

  /// Symmetric complement of the stall handler: fired (on the Env thread,
  /// under the API lock — same re-entrancy rules) when a stalled peer makes
  /// ack progress again, and when a peer announces a new session epoch via
  /// RESUME (a crash-restart observed before the stall timer expired).
  /// Typical reaction: undo the stall reaction — re-include the peer via
  /// change_predicate / set_peer_excluded(node, false).
  using PeerRecoveredHandler = std::function<void(NodeId peer)>;
  void set_peer_recovered_handler(PeerRecoveredHandler handler);

  /// Serializes the control-plane state: stability-type names, registered
  /// predicates, every origin's AckTable, the local sequencer position, and
  /// per-origin delivery cursors. Together with the storage substrate's own
  /// recovery (e.g. LocalStore::recover) this implements §III-E's restart
  /// path: "the Derecho object store can also persist the stability
  /// frontier information, which can be used for Stabilizer recovery".
  Bytes snapshot_control_state() const;

  /// Restores a snapshot into a freshly constructed instance (same topology,
  /// same self). Re-registers predicates, merges ack state (monotonic, so
  /// replaying a stale snapshot is harmless), fast-forwards the sequencer so
  /// new sends never reuse sequence numbers, and refills the send buffer
  /// with the snapshot's unreclaimed slots so peers' gaps can heal.
  ///
  /// Rejoin: restoring bumps the session epoch and announces RESUME
  /// (epoch, receive_through) to every non-excluded peer; peers rewind their
  /// go-back-N cursor to our persisted delivery cursor and re-issue their
  /// cumulative stability reports and answer with a RESUME reply. The
  /// announcement is re-sent with every retransmit probe until that reply
  /// arrives — only a frame sent causally after the announcement proves it
  /// got through — so a RESUME lost to a partition or to packet loss is
  /// recovered (duplicates are ignored by epoch). Enable retransmit_timeout
  /// when crash-restart must be survivable.
  Status restore_control_state(BytesView snapshot);

  /// Excluded peers receive no further traffic and do not block send-buffer
  /// reclamation. Used after crash detection; predicates must be adjusted
  /// separately (they keep reading the excluded node's last acks).
  void set_peer_excluded(NodeId node, bool excluded);
  bool peer_excluded(NodeId node) const;

  // --- primary failover mechanism (DESIGN.md §6) -------------------------------
  // The core provides the *mechanism*: per-stream primary epochs, frame
  // fencing, adopted-stream sequencing, and waiter fencing. The election
  // *protocol* (leases, suspicion, the Paxos ballot, reconciliation) lives
  // in src/failover and drives these three calls.

  /// Epoch of `origin`'s stream as learned by this node (0 = the configured
  /// origin still holds it). Default origin: own stream.
  PrimaryEpoch stream_epoch(NodeId origin = kInvalidNode) const;
  /// Node currently holding sequencing authority for `origin`'s stream.
  NodeId stream_primary(NodeId origin = kInvalidNode) const;
  /// True once this node was deposed as primary of its own stream: send()
  /// returns kFencedSeq, own-stream waiters have been failed with kFencedSeq,
  /// and every outgoing frame of ours is stamped with the stale epoch (so
  /// peers fence it — the zombie is silenced even if it keeps running).
  bool self_fenced() const;
  /// True when this node holds adopted sequencing authority for `origin`.
  bool is_acting_primary(NodeId origin) const;

  /// Election winner: become the acting primary of `origin`'s stream under
  /// `epoch` (must be > the currently learned epoch), issuing from
  /// `start_seq`. The caller (the failover manager) is responsible for
  /// having agreed on (epoch, winner) via consensus and for computing
  /// start_seq = max over live peers' contiguous prefixes + 1. Our own
  /// delivery cursor fast-forwards to start_seq - 1 if behind (the skipped
  /// seqs were never stable anywhere — counted in failover_seqs_skipped).
  Status adopt_stream(NodeId origin, SeqNum start_seq, PrimaryEpoch epoch);

  /// Sequence and stream one message on an adopted stream (the acting
  /// primary's send()). Returns its sequence number, or kFencedSeq if this
  /// node no longer holds the stream.
  SeqNum send_as(NodeId origin, BytesView payload, uint64_t virtual_size = 0);

  /// Learn a committed takeover: `new_primary` holds `origin`'s stream under
  /// `epoch` from `start_seq` (kNoSeq = not yet known — fence now, cursor
  /// later). Idempotent; stale epochs are ignored. When origin == self this
  /// node is being deposed: it self-fences, fails its own-stream waiters
  /// with kFencedSeq, and refuses further send()s. When we were the acting
  /// primary of `origin` and someone newer took over, the adoption is
  /// dropped the same way.
  Status observe_takeover(NodeId origin, NodeId new_primary, PrimaryEpoch epoch,
                          SeqNum start_seq);

  /// Last seq issued on an adopted stream (kNoSeq when not acting primary).
  SeqNum acting_last_sent(NodeId origin) const;

  // --- introspection ------------------------------------------------------------
  SeqNum last_sent() const;
  SeqNum delivered_through(NodeId origin) const;
  /// Snapshot of the counters, with the control-plane eval counters
  /// aggregated across every origin engine at call time.
  StabilizerStats stats() const;
  uint64_t send_buffer_bytes() const { return out_.buffered_bytes(); }
  /// 0 for a fresh instance; a restore bumps it to snapshot epoch + 1.
  uint64_t session_epoch() const;
  /// Highest session epoch announced by `peer` via RESUME (0 = never).
  uint64_t peer_session_epoch(NodeId peer) const;
  /// True while our RESUME announcement to `peer` awaits confirmation.
  bool resume_pending(NodeId peer) const;
  FrontierEngine& engine(NodeId origin = kInvalidNode);
  const FrontierEngine& engine(NodeId origin = kInvalidNode) const;
  StabilityTypeRegistry& types() { return types_; }

 private:
  NodeId resolve_origin(NodeId origin) const {
    return origin == kInvalidNode ? options_.self : origin;
  }
  void on_frame(NodeId src, BytesView frame, uint64_t wire_size);
  void handle_data(NodeId src, const data::DataView& frame,
                   uint64_t wire_size);
  void handle_data_batch(NodeId src, const data::DataBatchFrame& batch);
  void handle_ack_batch(const data::AckBatchFrame& frame);
  void handle_report_batch(NodeId src, const data::ReportBatchFrame& frame);
  void handle_resume(NodeId src, const data::ResumeFrame& frame);
  void send_resume(NodeId peer, bool reply = false);
  void mark_peer_recovered(NodeId peer);
  void mark_dirty(NodeId about, StabilityTypeId type, SeqNum seq, Bytes extra);
  void flush_acks();
  void schedule_ack_timer();
  // --- deferred propagation (DESIGN.md §10) ----------------------------------
  bool deferred_mode() const {
    return options_.report_path != StabilizerOptions::ReportPath::kImmediate;
  }
  /// True when this node is the designated aggregator of its own AZ (only
  /// meaningful in kDeferredAggregated mode).
  bool is_aggregator() const { return agg_self_; }
  /// The AZ aggregator this mirror should flush through, or kInvalidNode
  /// when none is usable right now (unset, self, excluded, stalled, or
  /// deposed) — the caller then falls back to direct fan-out.
  NodeId usable_aggregator() const;
  /// Parks one plain report in the deferred accumulator and arms the flush
  /// timer (or flushes immediately on a delta-threshold trip).
  void note_deferred(NodeId about, StabilityTypeId type, SeqNum seq);
  /// Drains the accumulator into one REPORTBATCH and routes it: aggregator
  /// or direct broadcast (kDeferred / fallback), origin-scoped when
  /// broadcast_acks is off.
  void flush_deferred();
  void schedule_deferred_timer();
  void schedule_retransmit_timer();
  void retransmit_check();
  void schedule_stall_timer();
  void stall_check();
  void apply_origin_rule_for_send(SeqNum seq);
  void maybe_reclaim();
  void transmit(NodeId dst, const data::OutBuffer::Slot& slot);
  /// Transmits slots [first, first + count) to `dst` as one DATABATCH frame.
  void transmit_batch(NodeId dst, SeqNum first, size_t count);
  bool coalescing_enabled() const { return options_.coalesce_max_frames > 1; }
  /// True when the slot is small enough to ride inside a DATABATCH.
  bool coalescable(const data::OutBuffer::Slot& slot) const;
  /// Transmits buffered messages to every peer up to its window allowance.
  void pump_windows();
  /// Coalescing defers send()'s flush to the end of the event-loop turn so a
  /// burst of sends batches; this arms that (single) deferred pump.
  void arm_flush();

  // --- failover fencing / adopted streams (DESIGN.md §6) ---------------------
  /// Admission check for DATA/DATABATCH: stale epoch or a sender that is not
  /// the stream's learned authority -> drop (fenced); newer epoch than we
  /// have learned -> drop (ahead; heals by retransmit after the takeover
  /// announcement lands). Callers hold mutex_.
  bool admit_data(NodeId src, NodeId origin, PrimaryEpoch epoch);
  /// Deposed as primary of our own stream: fail own-stream waiters with
  /// kFencedSeq and refuse further send()s. Caller holds mutex_.
  void fence_self();
  /// Move `origin`'s delivery cursor to exactly start_seq - 1 for an epoch
  /// boundary, counting skips (fast-forward) or rollbacks (re-delivery of an
  /// overlapping old-epoch suffix under the new authority).
  void apply_takeover_cursor(NodeId origin, SeqNum start_seq,
                             bool allow_rollback = true);

  struct AdoptedStream {
    PrimaryEpoch epoch = 0;
    data::Sequencer sequencer;
    data::OutBuffer out;
    std::vector<SeqNum> acked_at_probe;  // per peer; go-back-N probe progress
  };
  /// Eager fan-out of one adopted-stream slot (encode-once; no coalescing —
  /// takeover traffic is rare enough that the simple path wins).
  void transmit_adopted(NodeId origin, AdoptedStream& a,
                        const data::OutBuffer::Slot& slot);
  /// Go-back-N probe + reclamation for every adopted stream, driven from the
  /// same retransmit timer as the own-stream probe.
  void retransmit_adopted_check();
  void reclaim_adopted(NodeId origin, AdoptedStream& a);

  // --- pipelined control plane (DESIGN.md §4f) -------------------------------
  /// Receive-thread entry in kPipelined mode. Lock-free: folds plain ack
  /// entries into the pipeline's cells, copies everything else into the
  /// source's ring, then arms (or, on a single-threaded transport, runs)
  /// the drain. NEVER takes mutex_.
  void ingest_frame(NodeId src, BytesView frame, uint64_t wire_size);
  /// Schedules one drain task onto the Env thread (at most one outstanding),
  /// or drains inline when the transport is single-threaded.
  void arm_drain();
  /// Applies everything the pipeline holds, in batches, until quiescent.
  /// Caller must hold mutex_; re-entrant calls (a delivery handler sending)
  /// no-op and the outer drain loops until the pipeline is empty.
  void drain_pipeline();
  void drain_pipeline_locked();

  StabilizerOptions options_;
  Transport& transport_;
  StabilityTypeRegistry types_;
  std::vector<std::unique_ptr<FrontierEngine>> engines_;  // per origin
  data::Sequencer sequencer_;
  data::OutBuffer out_;
  data::ReceiveTracker rx_;
  DeliveryHandler delivery_;
  RawHandler raw_handler_;
  std::vector<bool> excluded_;
  std::vector<SeqNum> peer_acked_at_last_probe_;  // retransmission progress
  std::vector<SeqNum> next_to_send_;              // per-peer window cursor

  struct DirtyAck {
    SeqNum seq = kNoSeq;
    Bytes extra;
  };
  // dirty_[about][type] = highest pending report
  std::vector<std::vector<DirtyAck>> dirty_;
  // reported_[about][type] = highest report ever issued; the retransmission
  // probe re-marks these so lost ACK frames are recovered (cumulative
  // reports make the re-send idempotent).
  std::vector<std::vector<SeqNum>> reported_;
  bool any_dirty_ = false;
  bool ack_timer_armed_ = false;
  TimerId ack_timer_ = kInvalidTimer;
  // Deferred propagation (null in kImmediate mode). deferred_ accumulates
  // our own plain reports plus, on an aggregator, absorbed member blocks.
  // agg_self_ / my_aggregator_ / same_az_ are derived from the topology at
  // construction (same_az_[n] = n shares our AZ: the absorb admission set).
  std::unique_ptr<control::DeferredReporter> deferred_;
  bool deferred_timer_armed_ = false;
  TimerId deferred_timer_ = kInvalidTimer;
  bool agg_self_ = false;
  NodeId my_aggregator_ = kInvalidNode;
  std::vector<bool> same_az_;
  // Last encoded DATABATCH, keyed by (first_seq, count). Sequence numbers
  // are never reused and slots are immutable until reclaim, so a hit is
  // always valid — a broadcast encodes each batch once and every peer's
  // flush reuses it.
  SeqNum batch_first_ = kNoSeq;
  size_t batch_count_ = 0;
  std::shared_ptr<const Bytes> batch_frame_;
  uint64_t batch_wire_ = 0;
  // Deferred-flush state (armed only while coalescing is enabled).
  bool flush_armed_ = false;
  TimerId flush_timer_ = kInvalidTimer;
  TimerId retransmit_timer_ = kInvalidTimer;
  TimerId stall_timer_ = kInvalidTimer;
  PeerStallHandler stall_handler_;
  PeerRecoveredHandler recovered_handler_;
  std::vector<SeqNum> stall_last_acked_;
  std::vector<bool> stalled_;
  // Crash-restart session state. session_epoch_ > 0 identifies an instance
  // reborn from a snapshot; peer_epoch_ dedupes RESUME announcements;
  // resume_pending_ drives their re-announcement from the retransmit probe.
  uint64_t session_epoch_ = 0;
  std::vector<uint64_t> peer_epoch_;
  std::vector<bool> resume_pending_;
  bool stopped_ = false;

  // Primary-failover state (all under mutex_ except node_fenced_).
  // stream_epoch_[o] / stream_primary_[o]: the newest sequencing authority
  // this node has learned for origin o's stream (epoch 0, primary o at
  // construction). adopted_: streams this node won and now sequences.
  std::vector<PrimaryEpoch> stream_epoch_;
  std::vector<NodeId> stream_primary_;
  std::map<NodeId, AdoptedStream> adopted_;
  bool self_fenced_ = false;
  // Lock-free mirror of "node x was deposed from its own stream" for the
  // pipelined ingest path (which must not take mutex_): a fenced node's
  // frames are dropped before touching the rings/cells. Set under mutex_,
  // read relaxed from receive threads — a frame slipping through the brief
  // publication window still hits the locked epoch checks at drain time;
  // only the ack-cell fast path can absorb a few stale (but truthful,
  // monotonic) ack entries, which is harmless.
  std::unique_ptr<std::atomic<bool>[]> node_fenced_;

  // Pipelined control plane (null in kLegacyLocked mode). The drain gate
  // lets posted drain tasks outlive the Stabilizer safely: tasks lock the
  // gate and check `owner` before touching `this`; the destructor nulls
  // `owner` under the gate mutex (lock order: gate -> mutex_, everywhere).
  struct DrainGate {
    std::mutex m;
    Stabilizer* owner = nullptr;
  };
  std::unique_ptr<ControlPipeline> pipeline_;
  std::shared_ptr<DrainGate> drain_gate_;
  bool inline_drain_ = false;  // single-threaded transport: drain in ingest
  bool draining_ = false;      // re-entrancy guard, under mutex_
  std::atomic<bool> ingest_stopped_{false};

#if STAB_OBS_ENABLED
  /// One relaxed-atomic counter per StabilizerStats field (plus the two core
  /// histograms), resolved from metrics_ once at construction so the hot
  /// paths bump references with no lookup. See docs/OBSERVABILITY.md for
  /// the name catalog.
  struct Counters {
    obs::Counter& messages_sent;
    obs::Counter& messages_delivered;
    obs::Counter& peer_stall_episodes;
    obs::Counter& peer_recover_episodes;
    obs::Counter& resumes_sent;
    obs::Counter& resumes_received;
    obs::Counter& frames_transmitted;
    obs::Counter& duplicates_dropped;
    obs::Counter& gaps_detected;
    obs::Counter& retransmits_sent;
    obs::Counter& data_encodes;
    obs::Counter& shared_sends;
    obs::Counter& frames_coalesced;
    obs::Counter& fanout_bytes_copied;
    obs::Counter& ack_batches_sent;
    obs::Counter& ack_bytes_sent;
    obs::Counter& ack_entries_applied;
    obs::Counter& report_batches_sent;
    obs::Counter& report_bytes_sent;
    obs::Counter& report_entries_applied;
    obs::Counter& deferred_flushes;
    obs::Counter& deferred_delta_flushes;
    obs::Counter& agg_blocks_absorbed;
    obs::Counter& agg_fallback_direct;
    obs::Counter& report_blocks_fenced;
    obs::Counter& fenced_frames;
    obs::Counter& epoch_ahead_drops;
    obs::Counter& takeovers_observed;
    obs::Counter& failover_seqs_skipped;
    obs::Counter& failover_seqs_rolled_back;
    obs::Counter& waiters_fenced;
    obs::Histogram& batch_frames;       // messages per encoded DATABATCH
    obs::Histogram& ack_flush_entries;  // entries per flushed ACKBATCH
    obs::Histogram& report_flush_entries;  // entries per flushed REPORTBATCH

    // Per-frame transmit accounting is batched to keep atomic RMWs off the
    // hot path: transmit()/transmit_batch() bump these plain members (all
    // callers hold mutex_) and flush_pending() folds them into the
    // atomic counters once per pump/probe/stats read.
    uint64_t pending_messages_sent = 0;
    uint64_t pending_messages_delivered = 0;
    uint64_t pending_frames_transmitted = 0;
    uint64_t pending_data_encodes = 0;
    uint64_t pending_shared_sends = 0;
    uint64_t pending_frames_coalesced = 0;
    uint64_t pending_fanout_bytes_copied = 0;
    void flush_pending();

    explicit Counters(obs::MetricsRegistry& r);
  };
  mutable obs::MetricsRegistry metrics_;  // declared before ctr_ (init order)
  mutable Counters ctr_{metrics_};
  obs::Tracer* tracer_ = nullptr;        // cached from options_.tracer
  obs::LatencyProbe* probe_ = nullptr;   // cached from options_.probe

  /// Mirror Tracer::dropped() into the obs.trace_dropped counter so a
  /// capacity-clipped trace is visible in any metrics export/scrape, not
  /// just to whoever holds the Tracer. Counters are monotonic, so the sync
  /// folds only the delta since the last read. Caller holds mutex_.
  void sync_trace_dropped() const {
    if (tracer_ == nullptr) return;
    const uint64_t d = tracer_->dropped();
    if (d > trace_dropped_synced_) {
      metrics_.counter("obs.trace_dropped").inc(d - trace_dropped_synced_);
      trace_dropped_synced_ = d;
    }
  }
  mutable uint64_t trace_dropped_synced_ = 0;
#endif
  mutable std::recursive_mutex mutex_;
};

}  // namespace stab
