// Local versioned K/V object store — the single-data-center substrate
// Stabilizer extends with geo-replication (substitutes the Derecho object
// store, DESIGN.md §3).
//
// Features the paper relies on:
//   * put/get with per-key versions,
//   * get_by_time (temporal queries, Derecho-style),
//   * append-only write-ahead log with CRC-checked recovery, so a restarted
//     primary can rebuild its pool and resume Stabilizer (§III-E).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace stab::store {

struct VersionedValue {
  uint64_t version = 0;  // per-key, starts at 1
  TimePoint timestamp = kTimeZero;
  Bytes value;
};

/// CRC-32 (IEEE) used by the WAL.
uint32_t crc32(BytesView data);

class LocalStore {
 public:
  /// In-memory store; pass a path to enable the write-ahead log.
  explicit LocalStore(std::string wal_path = "");
  ~LocalStore();

  LocalStore(LocalStore&&) noexcept;
  LocalStore& operator=(LocalStore&&) noexcept;
  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  /// Stores a new version of `key`; returns the version number.
  uint64_t put(const std::string& key, BytesView value,
               TimePoint timestamp = kTimeZero);

  /// Stores a version chosen by the caller — used by replication mirrors to
  /// record exactly the owner's version. Must exceed the latest stored
  /// version (throws std::logic_error otherwise).
  void put_at_version(const std::string& key, BytesView value,
                      TimePoint timestamp, uint64_t version);

  /// Latest version, or nullopt.
  std::optional<VersionedValue> get(const std::string& key) const;
  /// A specific version, or nullopt.
  std::optional<VersionedValue> get_version(const std::string& key,
                                            uint64_t version) const;
  /// Latest version with timestamp <= t, or nullopt (Derecho get_by_time).
  std::optional<VersionedValue> get_by_time(const std::string& key,
                                            TimePoint t) const;

  /// Removes all versions of `key`; returns whether it existed.
  bool erase(const std::string& key);

  bool contains(const std::string& key) const;
  size_t num_keys() const { return map_.size(); }
  std::vector<std::string> keys() const;
  uint64_t total_value_bytes() const { return total_value_bytes_; }

  /// Replays a WAL into a fresh store (keeps logging to the same file).
  /// Truncated or corrupted tail records are dropped, matching the
  /// prefix-durability a crashed append-only log provides.
  static Result<LocalStore> recover(const std::string& wal_path);

  /// Rewrites the WAL as a snapshot of the live state (erased keys and the
  /// history of overwrites disappear from disk; retained versions are
  /// preserved). Crash-safe: the snapshot is written to a sidecar file and
  /// atomically renamed over the log. No-op for in-memory stores.
  Status compact();

  uint64_t wal_records_written() const { return wal_records_; }

 private:
  void wal_append_put(const std::string& key, const VersionedValue& v);
  void wal_append_erase(const std::string& key);
  void wal_write(BytesView record);

  std::string wal_path_;
  FILE* wal_ = nullptr;
  uint64_t wal_records_ = 0;
  uint64_t total_value_bytes_ = 0;
  std::map<std::string, std::vector<VersionedValue>> map_;
};

}  // namespace stab::store
