#include "store/local_store.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "common/logging.hpp"

namespace stab::store {

namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr uint8_t kWalPut = 1;
constexpr uint8_t kWalErase = 2;

}  // namespace

uint32_t crc32(BytesView data) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  uint32_t c = 0xffffffffu;
  for (uint8_t b : data) c = table[(c ^ b) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

LocalStore::LocalStore(std::string wal_path) : wal_path_(std::move(wal_path)) {
  if (!wal_path_.empty()) {
    wal_ = std::fopen(wal_path_.c_str(), "ab");
    if (!wal_) STAB_ERROR("store: cannot open WAL " << wal_path_);
  }
}

LocalStore::~LocalStore() {
  if (wal_) std::fclose(wal_);
}

LocalStore::LocalStore(LocalStore&& other) noexcept
    : wal_path_(std::move(other.wal_path_)),
      wal_(other.wal_),
      wal_records_(other.wal_records_),
      total_value_bytes_(other.total_value_bytes_),
      map_(std::move(other.map_)) {
  other.wal_ = nullptr;
}

LocalStore& LocalStore::operator=(LocalStore&& other) noexcept {
  if (this != &other) {
    if (wal_) std::fclose(wal_);
    wal_path_ = std::move(other.wal_path_);
    wal_ = other.wal_;
    wal_records_ = other.wal_records_;
    total_value_bytes_ = other.total_value_bytes_;
    map_ = std::move(other.map_);
    other.wal_ = nullptr;
  }
  return *this;
}

uint64_t LocalStore::put(const std::string& key, BytesView value,
                         TimePoint timestamp) {
  auto& versions = map_[key];
  VersionedValue v;
  v.version = versions.empty() ? 1 : versions.back().version + 1;
  v.timestamp = timestamp;
  v.value.assign(value.begin(), value.end());
  total_value_bytes_ += v.value.size();
  if (wal_) wal_append_put(key, v);
  versions.push_back(std::move(v));
  return versions.back().version;
}

void LocalStore::put_at_version(const std::string& key, BytesView value,
                                TimePoint timestamp, uint64_t version) {
  auto& versions = map_[key];
  if (!versions.empty() && version <= versions.back().version)
    throw std::logic_error("put_at_version: version " +
                           std::to_string(version) + " not newer for " + key);
  VersionedValue v;
  v.version = version;
  v.timestamp = timestamp;
  v.value.assign(value.begin(), value.end());
  total_value_bytes_ += v.value.size();
  if (wal_) wal_append_put(key, v);
  versions.push_back(std::move(v));
}

std::optional<VersionedValue> LocalStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<VersionedValue> LocalStore::get_version(const std::string& key,
                                                      uint64_t version) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  for (const auto& v : it->second)
    if (v.version == version) return v;
  return std::nullopt;
}

std::optional<VersionedValue> LocalStore::get_by_time(const std::string& key,
                                                      TimePoint t) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  const VersionedValue* best = nullptr;
  for (const auto& v : it->second)
    if (v.timestamp <= t) best = &v;  // versions are time-ordered
  if (!best) return std::nullopt;
  return *best;
}

bool LocalStore::erase(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  for (const auto& v : it->second) total_value_bytes_ -= v.value.size();
  map_.erase(it);
  if (wal_) wal_append_erase(key);
  return true;
}

bool LocalStore::contains(const std::string& key) const {
  return map_.count(key) != 0;
}

std::vector<std::string> LocalStore::keys() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [k, _] : map_) out.push_back(k);
  return out;
}

// --- WAL ------------------------------------------------------------------------

void LocalStore::wal_append_put(const std::string& key,
                                const VersionedValue& v) {
  Writer w;
  w.u8(kWalPut);
  w.str(key);
  w.u64(v.version);
  w.i64(v.timestamp.count());
  w.blob(v.value);
  wal_write(w.bytes());
}

void LocalStore::wal_append_erase(const std::string& key) {
  Writer w;
  w.u8(kWalErase);
  w.str(key);
  wal_write(w.bytes());
}

void LocalStore::wal_write(BytesView record) {
  // Frame: u32 length | record | u32 crc(record).
  Writer framed(record.size() + 8);
  framed.u32(static_cast<uint32_t>(record.size()));
  framed.raw(record.data(), record.size());
  framed.u32(crc32(record));
  const Bytes& b = framed.bytes();
  std::fwrite(b.data(), 1, b.size(), wal_);
  std::fflush(wal_);
  ++wal_records_;
}

Status LocalStore::compact() {
  if (wal_path_.empty()) return Status::ok();  // in-memory store
  std::string tmp_path = wal_path_ + ".compact";
  FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (!tmp) return Status::error("compact: cannot create " + tmp_path);

  // Write every retained version as a put record through a scratch store
  // bound to the sidecar file.
  {
    LocalStore writer;
    writer.wal_ = tmp;
    for (const auto& [key, versions] : map_)
      for (const VersionedValue& v : versions) writer.wal_append_put(key, v);
    writer.wal_ = nullptr;  // keep our fclose below authoritative
  }
  if (std::fflush(tmp) != 0 || std::fclose(tmp) != 0)
    return Status::error("compact: write to " + tmp_path + " failed");

  // Atomic switch: rename over the old log, then reopen for appending.
  if (wal_) std::fclose(wal_);
  wal_ = nullptr;
  if (std::rename(tmp_path.c_str(), wal_path_.c_str()) != 0) {
    wal_ = std::fopen(wal_path_.c_str(), "ab");  // keep logging to the old
    return Status::error("compact: rename failed");
  }
  wal_ = std::fopen(wal_path_.c_str(), "ab");
  if (!wal_) return Status::error("compact: reopen failed");
  return Status::ok();
}

Result<LocalStore> LocalStore::recover(const std::string& wal_path) {
  FILE* f = std::fopen(wal_path.c_str(), "rb");
  LocalStore store;  // in-memory while replaying
  if (f) {
    for (;;) {
      uint8_t lenbuf[4];
      if (std::fread(lenbuf, 1, 4, f) != 4) break;
      uint32_t len;
      std::memcpy(&len, lenbuf, 4);
      if (len > (64u << 20)) break;  // corrupt length
      Bytes record(len);
      if (std::fread(record.data(), 1, len, f) != len) break;
      uint8_t crcbuf[4];
      if (std::fread(crcbuf, 1, 4, f) != 4) break;
      uint32_t crc;
      std::memcpy(&crc, crcbuf, 4);
      if (crc != crc32(record)) break;  // corrupted tail: stop
      try {
        Reader r(record);
        uint8_t op = r.u8();
        std::string key = r.str();
        if (op == kWalPut) {
          uint64_t version = r.u64();
          TimePoint ts{r.i64()};
          Bytes value = r.blob();
          auto& versions = store.map_[key];
          store.total_value_bytes_ += value.size();
          versions.push_back(VersionedValue{version, ts, std::move(value)});
        } else if (op == kWalErase) {
          store.erase(key);
        } else {
          break;
        }
      } catch (const CodecError&) {
        break;
      }
    }
    std::fclose(f);
  }
  // Re-open for appending so new puts continue the log.
  store.wal_path_ = wal_path;
  store.wal_ = std::fopen(wal_path.c_str(), "ab");
  if (!store.wal_)
    return Result<LocalStore>::error("cannot open WAL for append: " +
                                     wal_path);
  return store;
}

}  // namespace stab::store
