// In-process transport: every node is a RealtimeEnv thread; frames hop
// between threads with an optional configured per-link delay. Used by the
// real-time integration tests and examples that don't need sockets.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/realtime_env.hpp"
#include "config/topology.hpp"
#include "net/transport.hpp"

namespace stab {

class InProcCluster;

class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcCluster& cluster, NodeId self);

  NodeId self() const override { return self_; }
  size_t cluster_size() const override;
  void set_receive_handler(ReceiveHandler handler) override;
  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override;
  void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                   uint64_t wire_size = 0) override;
  Env& env() override;
  // Zero-latency links hand the frame to the receiver's handler on the
  // SENDER's thread, skipping the destination Env queue entirely. Requires
  // a lock-free re-entrant handler (the pipelined ingest path); links with
  // configured latency still go through the destination Env for timing.
  void set_direct_dispatch(bool on) override {
    direct_dispatch_.store(on, std::memory_order_release);
  }

 private:
  friend class InProcCluster;
  // Gated handler invocation (both the env-queued and direct-dispatch
  // delivery paths): bump the in-flight count, check the armed flag, call.
  // set_receive_handler(nullptr) disarms and waits for the count to drain
  // before destroying the function object, so a tearing-down Stabilizer
  // never races an invocation into freed state.
  void dispatch(NodeId src, BytesView frame, uint64_t wire_size);
  InProcCluster& cluster_;
  NodeId self_;
  ReceiveHandler handler_;  // written only while disarmed and drained
  std::atomic<bool> handler_armed_{false};
  std::atomic<uint32_t> dispatches_in_flight_{0};
  std::atomic<bool> direct_dispatch_{false};
};

class InProcCluster {
 public:
  /// `topology` is optional; when given, per-link latency is applied to
  /// deliveries (bandwidth is not modeled — use SimCluster for that).
  explicit InProcCluster(size_t num_nodes,
                         const Topology* topology = nullptr);
  ~InProcCluster();

  InProcTransport& transport(NodeId node) { return *transports_.at(node); }
  RealtimeEnv& env(NodeId node) { return *envs_.at(node); }
  size_t size() const { return transports_.size(); }

  /// Stop all node threads (idempotent; also done by the destructor).
  void shutdown();

 private:
  friend class InProcTransport;
  void deliver(NodeId src, NodeId dst, std::shared_ptr<const Bytes> frame,
               uint64_t wire_size);

  std::vector<std::unique_ptr<RealtimeEnv>> envs_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;
  std::vector<Duration> latency_;  // row-major [src][dst]
};

}  // namespace stab
