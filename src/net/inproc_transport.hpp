// In-process transport: every node is a RealtimeEnv thread; frames hop
// between threads with an optional configured per-link delay. Used by the
// real-time integration tests and examples that don't need sockets.
#pragma once

#include <memory>
#include <vector>

#include "common/realtime_env.hpp"
#include "config/topology.hpp"
#include "net/transport.hpp"

namespace stab {

class InProcCluster;

class InProcTransport final : public Transport {
 public:
  InProcTransport(InProcCluster& cluster, NodeId self);

  NodeId self() const override { return self_; }
  size_t cluster_size() const override;
  void set_receive_handler(ReceiveHandler handler) override;
  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override;
  void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                   uint64_t wire_size = 0) override;
  Env& env() override;

 private:
  friend class InProcCluster;
  InProcCluster& cluster_;
  NodeId self_;
  ReceiveHandler handler_;
};

class InProcCluster {
 public:
  /// `topology` is optional; when given, per-link latency is applied to
  /// deliveries (bandwidth is not modeled — use SimCluster for that).
  explicit InProcCluster(size_t num_nodes,
                         const Topology* topology = nullptr);
  ~InProcCluster();

  InProcTransport& transport(NodeId node) { return *transports_.at(node); }
  RealtimeEnv& env(NodeId node) { return *envs_.at(node); }
  size_t size() const { return transports_.size(); }

  /// Stop all node threads (idempotent; also done by the destructor).
  void shutdown();

 private:
  friend class InProcTransport;
  void deliver(NodeId src, NodeId dst, std::shared_ptr<const Bytes> frame,
               uint64_t wire_size);

  std::vector<std::unique_ptr<RealtimeEnv>> envs_;
  std::vector<std::unique_ptr<InProcTransport>> transports_;
  std::vector<Duration> latency_;  // row-major [src][dst]
};

}  // namespace stab
