#include "net/metrics_endpoint.hpp"

#if STAB_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "common/logging.hpp"

namespace stab {

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; registry names use
// '.' separators and per-origin suffixes like "o3". Map anything else to '_'
// and prefix "stab_" (which also fixes names starting with a digit).
std::string prom_name(std::string_view name) {
  std::string out = "stab_";
  out.reserve(name.size() + 5);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Label set from a registry's shard dimension (DESIGN.md §9): a sharded
// node's per-shard registries render with {shard="N"} so the per-shard
// series stay separable; an unsharded registry (-1) renders label-free,
// byte-identical to the pre-shard exposition.
std::string shard_labels(const obs::MetricsRegistry& reg) {
  const int s = reg.shard();
  if (s < 0) return {};
  return "shard=\"" + std::to_string(s) + "\"";
}

void render_summary(std::ostream& out, const std::string& name,
                    const obs::Histogram::Snapshot& s,
                    const std::string& labels = {}) {
  // Quantile samples merge the shard label with the quantile label; the
  // _sum/_count samples carry the shard label alone.
  const std::string qpfx = labels.empty() ? "{" : "{" + labels + ",";
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  out << "# TYPE " << name << " summary\n";
  out << name << qpfx << "quantile=\"0.5\"} " << s.p50 << "\n";
  out << name << qpfx << "quantile=\"0.95\"} " << s.p95 << "\n";
  out << name << qpfx << "quantile=\"0.99\"} " << s.p99 << "\n";
  out << name << qpfx << "quantile=\"0.999\"} " << s.p999 << "\n";
  out << name << "_sum" << plain << " " << s.sum << "\n";
  out << name << "_count" << plain << " " << s.count << "\n";
}

void render_registry(std::ostream& out, std::string_view prefix,
                     const obs::MetricsRegistry& reg) {
  const std::string labels = shard_labels(reg);
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  for (const std::string& raw : reg.names()) {
    const std::string name = prom_name(std::string(prefix) + raw);
    if (const obs::Counter* c = reg.find_counter(raw)) {
      out << "# TYPE " << name << " counter\n";
      out << name << plain << " " << c->value() << "\n";
    } else if (const obs::Gauge* g = reg.find_gauge(raw)) {
      out << "# TYPE " << name << " gauge\n";
      out << name << plain << " " << g->value() << "\n";
    } else if (const obs::Histogram* h = reg.find_histogram(raw)) {
      render_summary(out, name, h->snapshot(), labels);
    }
  }
}

bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

MetricsEndpoint::MetricsEndpoint(MetricsEndpointOptions opts)
    : opts_(std::move(opts)) {}

MetricsEndpoint::~MetricsEndpoint() { stop(); }

void MetricsEndpoint::add_registry(std::string prefix,
                                   const obs::MetricsRegistry* reg) {
  std::lock_guard<std::mutex> l(mu_);
  sources_.emplace_back(std::move(prefix), reg);
}

void MetricsEndpoint::add_probe(std::string prefix, obs::LatencyProbe* probe,
                                std::function<TimePoint()> now) {
  std::lock_guard<std::mutex> l(mu_);
  probes_.push_back({std::move(prefix), probe, std::move(now)});
}

void MetricsEndpoint::set_pre_scrape(std::function<void()> hook) {
  std::lock_guard<std::mutex> l(mu_);
  pre_scrape_ = std::move(hook);
}

Status MetricsEndpoint::start() {
  if (listen_fd_ >= 0) return Status::ok();  // already started
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::error("metrics endpoint: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::error("metrics endpoint: bad host " + opts_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    ::close(fd);
    return Status::error("metrics endpoint: bind/listen on " + opts_.host +
                         " failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return Status::ok();
}

void MetricsEndpoint::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  // The serve loop polls with a timeout, so a flagged stop is observed
  // within one poll interval; shutdown() additionally unblocks an accept
  // that already started.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsEndpoint::pre_scrape() const {
  std::function<void()> hook;
  std::vector<ProbeSource> probes;
  {
    std::lock_guard<std::mutex> l(mu_);
    hook = pre_scrape_;
    probes = probes_;
  }
  if (hook) hook();
  for (const ProbeSource& p : probes)
    if (p.probe != nullptr && p.now) p.probe->advance_windows(p.now());
}

std::string MetricsEndpoint::render_prometheus() const {
  pre_scrape();
  std::ostringstream out;
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [prefix, reg] : sources_) render_registry(out, prefix, *reg);
  for (const ProbeSource& p : probes_) {
    if (p.probe == nullptr) continue;
    render_registry(out, p.prefix, p.probe->registry());
    // Windowed views: the same summary shape under a ".window" suffix, so a
    // dashboard can plot recent percentiles next to since-boot ones.
    for (const std::string& w : p.probe->window_names())
      render_summary(out, prom_name(p.prefix + w + ".window"),
                     p.probe->windowed(w), shard_labels(p.probe->registry()));
  }
  return out.str();
}

std::string MetricsEndpoint::render_jsonl() const {
  pre_scrape();
  std::ostringstream out;
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [prefix, reg] : sources_) reg->dump_jsonl(out, prefix);
  for (const ProbeSource& p : probes_) {
    if (p.probe == nullptr) continue;
    p.probe->registry().dump_jsonl(out, p.prefix);
    p.probe->export_windows_jsonl(out);
  }
  return out.str();
}

void MetricsEndpoint::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Scrapes are tiny; blocking I/O with a short timeout keeps this a
    // one-connection-at-a-time server without starving anyone that matters.
    timeval tv{2, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_client(client);
    ::close(client);
  }
}

void MetricsEndpoint::handle_client(int fd) const {
  // Read until the end of the request head (or a 4 KiB bound — scrape
  // requests have no body worth reading).
  std::string req;
  char buf[1024];
  while (req.size() < 4096 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find('\n') != std::string::npos) break;  // request line is enough
  }
  const size_t eol = req.find_first_of("\r\n");
  const std::string line = req.substr(0, eol == std::string::npos ? req.size()
                                                                  : eol);
  std::string body, ctype = "text/plain; charset=utf-8", status = "200 OK";
  if (line.rfind("GET /metrics", 0) == 0) {
    body = render_prometheus();
    ctype = "text/plain; version=0.0.4; charset=utf-8";
  } else if (line.rfind("GET /jsonl", 0) == 0) {
    body = render_jsonl();
    ctype = "application/jsonl";
  } else {
    status = "404 Not Found";
    body = "not found: try /metrics or /jsonl\n";
  }
  std::ostringstream head;
  head << "HTTP/1.0 " << status << "\r\nContent-Type: " << ctype
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n";
  const std::string h = head.str();
  if (write_all(fd, h.data(), h.size())) write_all(fd, body.data(), body.size());
}

}  // namespace stab

#endif  // STAB_OBS_ENABLED
