#include "net/sim_transport.hpp"

namespace stab {

SimTransport::SimTransport(sim::Simulator& simulator,
                           sim::SimNetwork& network, NodeId self)
    : simulator_(simulator), network_(network), self_(self) {}

void SimTransport::set_receive_handler(ReceiveHandler handler) {
  network_.set_delivery_handler(self_, std::move(handler));
}

void SimTransport::send(NodeId dst, Bytes frame, uint64_t wire_size) {
  network_.send(self_, dst, std::move(frame), wire_size);
}

void SimTransport::send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                               uint64_t wire_size) {
  network_.send_shared(self_, dst, std::move(frame), wire_size);
}

void SimTransport::detach() {
  network_.set_node_up(self_, false);
  network_.set_delivery_handler(self_, nullptr);
}

void SimTransport::reattach() { network_.set_node_up(self_, true); }

SimCluster::SimCluster(const Topology& topology, sim::Simulator& simulator)
    : topology_(topology), simulator_(simulator) {
  const size_t n = topology_.num_nodes();
  network_ = std::make_unique<sim::SimNetwork>(simulator_, n);

  std::map<std::string, int> pipes;  // pipe group -> pipe id
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const LinkSpec* spec = topology_.link(a, b);
      if (!spec) continue;
      sim::LinkParams params;
      params.latency = spec->latency;
      params.bandwidth_bps = spec->bandwidth_bps;
      if (!spec->pipe_group.empty()) {
        auto it = pipes.find(spec->pipe_group);
        if (it == pipes.end())
          it = pipes
                   .emplace(spec->pipe_group,
                            network_->make_pipe(spec->bandwidth_bps))
                   .first;
        params.pipe = it->second;
      }
      network_->set_link(a, b, params);
    }
  }

  transports_.reserve(n);
  for (NodeId id = 0; id < n; ++id)
    transports_.push_back(
        std::make_unique<SimTransport>(simulator_, *network_, id));
}

}  // namespace stab
