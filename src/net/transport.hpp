// Transport abstraction.
//
// A Transport gives one WAN node FIFO, loss-reported point-to-point frame
// delivery to every other node in the cluster, plus the Env that drives its
// timers. Three implementations:
//   * SimTransport    — on SimNetwork, deterministic virtual time
//   * InProcTransport — threads + queues in one process, real time
//   * TcpTransport    — epoll sockets, real time (multi-process capable)
//
// FIFO per (src,dst) pair is the transport contract the paper's data plane
// relies on ("a basic reliability mechanism that ensures lossless FIFO
// delivery", §I). SimNetwork can be configured lossy for fault-injection
// tests; the data plane's retransmission recovers losslessness on top.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/env.hpp"
#include "common/types.hpp"

namespace stab {

class Transport {
 public:
  /// Called on the transport's Env thread when a frame arrives. `wire_size`
  /// is the size the frame occupied on the (possibly simulated) wire; it is
  /// >= frame.size() when the sender attached virtual padding.
  using ReceiveHandler =
      std::function<void(NodeId src, Bytes frame, uint64_t wire_size)>;

  virtual ~Transport() = default;

  virtual NodeId self() const = 0;
  virtual size_t cluster_size() const = 0;

  virtual void set_receive_handler(ReceiveHandler handler) = 0;

  /// Queue a frame to `dst`. Never blocks. `wire_size` (0 = frame.size())
  /// models payload bytes that are accounted for bandwidth but not carried
  /// (trace replay); real transports ignore the padding.
  virtual void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) = 0;

  /// The Env all of this node's Stabilizer work runs on.
  virtual Env& env() = 0;
};

}  // namespace stab
