// Transport abstraction.
//
// A Transport gives one WAN node FIFO, loss-reported point-to-point frame
// delivery to every other node in the cluster, plus the Env that drives its
// timers. Three implementations:
//   * SimTransport    — on SimNetwork, deterministic virtual time
//   * InProcTransport — threads + queues in one process, real time
//   * TcpTransport    — epoll sockets, real time (multi-process capable)
//
// FIFO per (src,dst) pair is the transport contract the paper's data plane
// relies on ("a basic reliability mechanism that ensures lossless FIFO
// delivery", §I). SimNetwork can be configured lossy for fault-injection
// tests; the data plane's retransmission recovers losslessness on top.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "common/env.hpp"
#include "common/types.hpp"

namespace stab {

class Transport {
 public:
  /// Called on the transport's Env thread when a frame arrives. `wire_size`
  /// is the size the frame occupied on the (possibly simulated) wire; it is
  /// >= frame.size() when the sender attached virtual padding.
  ///
  /// `frame` is a view into a buffer the transport owns for the duration of
  /// the call only — handlers must decode (or copy) before returning. This
  /// is what lets a broadcast fan out one refcounted buffer with zero
  /// per-receiver copies.
  using ReceiveHandler =
      std::function<void(NodeId src, BytesView frame, uint64_t wire_size)>;

  virtual ~Transport() = default;

  /// This node's id in the cluster. Constant for the transport's lifetime;
  /// callable from any thread.
  virtual NodeId self() const = 0;

  /// Number of nodes in the configured cluster (valid NodeIds are
  /// [0, cluster_size)). Constant; callable from any thread.
  virtual size_t cluster_size() const = 0;

  /// Install (or, with nullptr, remove) the frame sink. Not thread-safe
  /// against concurrent delivery: call before traffic starts, or from the
  /// Env thread itself (a destructing Stabilizer unhooks this way so no
  /// callback can land in freed state). At most one handler is active.
  virtual void set_receive_handler(ReceiveHandler handler) = 0;

  /// Queue a frame to `dst`. Never blocks; safe from any thread (real
  /// transports lock internally; SimTransport is single-threaded by
  /// construction). `wire_size` (0 = frame.size()) models payload bytes
  /// that are accounted for bandwidth but not carried (trace replay); real
  /// transports ignore the padding.
  virtual void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) = 0;

  /// Queue an already-encoded frame that the caller also keeps (encode-once
  /// fan-out: the same buffer goes to every peer and is retained for
  /// retransmits). The default copies for transports that predate the fast
  /// path; Sim/InProc enqueue the refcounted buffer directly and Tcp
  /// scatter-gathers it from the socket queue, so fan-out is zero-copy.
  /// Same blocking/threading contract as send(); the buffer must never be
  /// mutated after handoff (receivers may still be reading it).
  virtual void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                           uint64_t wire_size = 0) {
    send(dst, Bytes(*frame), wire_size);
  }

  /// The Env all of this node's Stabilizer work runs on — its clock stamps
  /// timers, trace records, and eval timings (virtual time on SimTransport,
  /// monotonic real time otherwise). The reference outlives the transport's
  /// users; scheduling into it is thread-safe per the Env contract.
  virtual Env& env() = 0;

  /// True when every ReceiveHandler invocation is serialized with all other
  /// work on this node (the simulator's single virtual thread). The
  /// pipelined Stabilizer uses this to drain its ingestion rings inline —
  /// same code path, deterministic schedule (DESIGN.md §4f).
  virtual bool single_threaded() const { return false; }

  /// Ask the transport to invoke the ReceiveHandler directly on the thread
  /// that produced the frame (Tcp: the epoll IO thread; InProc: the sender's
  /// thread for zero-latency links) instead of bouncing through an Env task.
  /// Only safe when the installed handler is lock-free re-entrant — the
  /// pipelined Stabilizer's ingest path is; the legacy locked path is NOT
  /// (the handler takes the same mutex user threads hold while calling
  /// send(), which re-enters the transport). Default: ignored.
  virtual void set_direct_dispatch(bool) {}
};

}  // namespace stab
