// Real-socket transport: length-prefixed frames over TCP with automatic
// connect/reconnect. One epoll IO thread owns all sockets; received frames
// are handed to the node's RealtimeEnv thread so application callbacks keep
// the single-threaded Stabilizer discipline.
//
// Connection policy: the node with the smaller id dials; the larger id
// accepts. Every connection starts with a HELLO frame carrying the dialer's
// node id. Frames queued while a peer is down are buffered and flushed on
// reconnect (lossless as long as the process lives — the same guarantee the
// paper's data plane asks of its transport).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/realtime_env.hpp"
#include "net/transport.hpp"

namespace stab {

struct TcpPeerAddr {
  std::string host;  // numeric IP or "localhost"
  uint16_t port = 0;
};

class TcpTransport final : public Transport {
 public:
  /// `peers[i]` is node i's listen address; `peers[self]` is where this
  /// transport listens. Starts the IO thread immediately.
  TcpTransport(NodeId self, std::vector<TcpPeerAddr> peers);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  NodeId self() const override { return self_; }
  size_t cluster_size() const override { return peers_.size(); }
  void set_receive_handler(ReceiveHandler handler) override;
  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override;
  Env& env() override { return env_; }

  /// Blocks until a live connection exists to every other node, or the
  /// timeout expires. Returns true when fully connected.
  bool wait_connected(Duration timeout);

  /// Closes sockets and joins the IO thread. Idempotent.
  void shutdown();

  /// Test hook: number of currently connected peers.
  size_t connected_peers() const;

 private:
  struct Conn {
    int fd = -1;
    bool connecting = false;   // non-blocking connect in progress
    bool hello_sent = false;
    Bytes inbuf;
    std::deque<Bytes> outq;    // encoded frames (len prefix included)
    size_t out_offset = 0;     // bytes of outq.front() already written
    TimePoint retry_at = kTimeZero;
  };

  void io_loop();
  void start_listen();
  void try_dial(NodeId peer);
  void close_conn(NodeId peer, const char* why);
  void handle_readable(NodeId peer);
  void handle_writable(NodeId peer);
  void handle_accept();
  void flush_pending_locked(NodeId peer);
  void enqueue_locked(NodeId peer, Bytes encoded);
  void rearm_epoll(NodeId peer);
  static Bytes encode_frame(uint32_t kind, NodeId src, BytesView payload);

  const NodeId self_;
  const std::vector<TcpPeerAddr> peers_;
  RealtimeEnv env_;

  mutable std::mutex mutex_;
  std::vector<Conn> conns_;          // indexed by peer id
  std::vector<std::deque<Bytes>> pending_;  // frames queued while disconnected
  ReceiveHandler handler_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd to kick the IO thread
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
};

/// Convenience: build an n-node loopback cluster on consecutive ports
/// starting at `base_port`. Used by tests and the TCP example.
std::vector<TcpPeerAddr> loopback_addrs(size_t n, uint16_t base_port);

}  // namespace stab
