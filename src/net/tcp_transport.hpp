// Real-socket transport: length-prefixed frames over TCP with automatic
// connect/reconnect. One epoll IO thread owns all sockets; received frames
// are handed to the node's RealtimeEnv thread so application callbacks keep
// the single-threaded Stabilizer discipline.
//
// Connection policy: the node with the smaller id dials; the larger id
// accepts. Every connection starts with a HELLO frame carrying the dialer's
// node id. Frames queued while a peer is down are buffered (up to a
// configurable byte bound, oldest dropped first) and flushed on reconnect.
// Reconnect attempts back off exponentially with jitter up to a cap, so a
// long partition costs neither unbounded memory nor a SYN storm; anything
// dropped is recovered by the data plane's go-back-N retransmission.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/realtime_env.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace stab {

struct TcpPeerAddr {
  std::string host;  // numeric IP or "localhost"
  uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Reconnect backoff: the retry delay starts at `reconnect_initial`,
  /// doubles per consecutive failure up to `reconnect_max`, and resets on a
  /// completed connection. Each delay gets +/- `reconnect_jitter` (as a
  /// fraction) of deterministic jitter so a cluster-wide heal doesn't
  /// produce synchronized dial storms.
  Duration reconnect_initial = millis(50);
  Duration reconnect_max = seconds(2);
  double reconnect_jitter = 0.2;
  uint64_t jitter_seed = 0x7c0ffeeULL;  // mixed with self id per transport

  /// Byte bound on each peer's pending (disconnected) frame buffer; 0 =
  /// unbounded (pre-bound behaviour). When exceeded the oldest frames are
  /// dropped first — cumulative ACK batches are superseded by newer ones
  /// anyway, and dropped DATA frames are re-sent by the retransmit probe —
  /// so a long partition cannot OOM the process.
  size_t max_pending_bytes = 0;
};

class TcpTransport final : public Transport {
 public:
  /// `peers[i]` is node i's listen address; `peers[self]` is where this
  /// transport listens. Starts the IO thread immediately.
  TcpTransport(NodeId self, std::vector<TcpPeerAddr> peers,
               TcpTransportOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  NodeId self() const override { return self_; }
  size_t cluster_size() const override { return peers_.size(); }
  void set_receive_handler(ReceiveHandler handler) override;
  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override;
  void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                   uint64_t wire_size = 0) override;
  Env& env() override { return env_; }
  // Invoke the receive handler on the epoll IO thread (after transport
  // mutex release) instead of bouncing each frame through the RealtimeEnv.
  // Requires a lock-free re-entrant handler — the pipelined ingest path.
  void set_direct_dispatch(bool on) override {
    direct_dispatch_.store(on, std::memory_order_release);
  }

  /// Blocks until a live connection exists to every other node, or the
  /// timeout expires. Returns true when fully connected.
  bool wait_connected(Duration timeout);

  /// Closes sockets and joins the IO thread. Idempotent.
  void shutdown();

  /// Test hook: number of currently connected peers.
  size_t connected_peers() const;
  /// Test hooks: pending-buffer accounting and reconnect backoff state.
  uint64_t pending_dropped_frames() const;
  size_t pending_bytes(NodeId peer) const;
  Duration current_backoff(NodeId peer) const;

 private:
  /// One queued wire frame. Fully-materialized frames (HELLO, plain send)
  /// carry everything in `head`; shared sends carry only the 12-byte length
  /// prefix in `head` and reference the caller's encoded frame as `body`, so
  /// an N-peer broadcast queues N tiny headers plus one shared buffer. The
  /// two parts are written with one writev (scatter-gather).
  struct OutFrame {
    Bytes head;
    std::shared_ptr<const Bytes> body;  // may be null
    size_t size() const { return head.size() + (body ? body->size() : 0); }
  };

  struct Conn {
    int fd = -1;
    bool connecting = false;   // non-blocking connect in progress
    bool hello_sent = false;
    Bytes inbuf;
    std::deque<OutFrame> outq;
    size_t out_offset = 0;     // bytes of outq.front() already written
    TimePoint retry_at = kTimeZero;
  };

  void io_loop();
  void start_listen();
  void try_dial(NodeId peer);
  void close_conn(NodeId peer, const char* why);
  void handle_readable(NodeId peer);
  void handle_writable(NodeId peer);
  void handle_accept();
  void flush_pending_locked(NodeId peer);
  void enqueue_or_pend(NodeId dst, OutFrame frame);
  void enforce_pending_bound_locked(NodeId peer);
  Duration next_retry_delay_locked(NodeId peer);
  void rearm_epoll(NodeId peer);
  static Bytes encode_frame(uint32_t kind, NodeId src, BytesView payload);
  static Bytes encode_header(uint32_t kind, NodeId src, size_t payload_size);

  const NodeId self_;
  const std::vector<TcpPeerAddr> peers_;
  const TcpTransportOptions opts_;
  RealtimeEnv env_;

  mutable std::mutex mutex_;
  std::vector<Conn> conns_;          // indexed by peer id
  std::vector<std::deque<OutFrame>> pending_;  // queued while disconnected
  std::vector<size_t> pending_bytes_;       // bytes in pending_[peer]
  std::vector<Duration> backoff_;           // current reconnect delay per peer
  Rng jitter_rng_;                          // guarded by mutex_
  uint64_t pending_dropped_ = 0;
  ReceiveHandler handler_;
  std::atomic<bool> direct_dispatch_{false};

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd to kick the IO thread
  std::atomic<bool> stop_{false};
  std::thread io_thread_;

#if STAB_OBS_ENABLED
  // Process-wide transport metrics (obs::global(); see
  // docs/OBSERVABILITY.md), resolved once at construction. The counters are
  // bumped from the IO thread and from senders' threads — relaxed atomics,
  // no extra locking. obs_was_connected_ (guarded by mutex_) distinguishes
  // a peer's first connect from a reconnect episode.
  obs::Counter* obs_dial_attempts_ = nullptr;
  obs::Counter* obs_connects_ = nullptr;
  obs::Counter* obs_reconnects_ = nullptr;
  obs::Counter* obs_disconnects_ = nullptr;
  obs::Counter* obs_pending_dropped_ = nullptr;
  obs::Gauge* obs_pending_bytes_ = nullptr;  // summed over peers (delta-kept)
  std::vector<bool> obs_was_connected_;
  void obs_on_connected_locked(NodeId peer);
#endif
};

/// Convenience: build an n-node loopback cluster on consecutive ports
/// starting at `base_port`. Used by tests and the TCP example.
std::vector<TcpPeerAddr> loopback_addrs(size_t n, uint16_t base_port);

}  // namespace stab
