#include "net/inproc_transport.hpp"

#include <thread>

#include "obs/obs.hpp"

namespace stab {

InProcTransport::InProcTransport(InProcCluster& cluster, NodeId self)
    : cluster_(cluster), self_(self) {}

size_t InProcTransport::cluster_size() const { return cluster_.size(); }

void InProcTransport::set_receive_handler(ReceiveHandler handler) {
  // Disarm, then wait for in-flight dispatches on other threads (env tasks,
  // direct-dispatch senders) to finish before touching the function object:
  // ~Stabilizer clears the handler while the rest of the cluster keeps
  // delivering, and an invocation racing the swap would call into freed
  // state. seq_cst pairs with the count-then-check in dispatch().
  handler_armed_.store(false, std::memory_order_seq_cst);
  while (dispatches_in_flight_.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  handler_ = std::move(handler);
  if (handler_) handler_armed_.store(true, std::memory_order_seq_cst);
}

void InProcTransport::dispatch(NodeId src, BytesView frame,
                               uint64_t wire_size) {
  // Dekker-style gate against set_receive_handler: the count bump must be
  // ordered before the armed check, so a concurrent teardown either sees
  // our count and waits, or we see it disarmed and skip. While the count
  // is nonzero the handler object is guaranteed not to be mutated.
  dispatches_in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (handler_armed_.load(std::memory_order_seq_cst))
    handler_(src, frame, wire_size);
  dispatches_in_flight_.fetch_sub(1, std::memory_order_release);
}

void InProcTransport::send(NodeId dst, Bytes frame, uint64_t wire_size) {
  cluster_.deliver(self_, dst,
                   std::make_shared<const Bytes>(std::move(frame)), wire_size);
}

void InProcTransport::send_shared(NodeId dst,
                                  std::shared_ptr<const Bytes> frame,
                                  uint64_t wire_size) {
  cluster_.deliver(self_, dst, std::move(frame), wire_size);
}

Env& InProcTransport::env() { return cluster_.env(self_); }

InProcCluster::InProcCluster(size_t num_nodes, const Topology* topology)
    : latency_(num_nodes * num_nodes, Duration::zero()) {
  envs_.reserve(num_nodes);
  transports_.reserve(num_nodes);
  for (NodeId id = 0; id < num_nodes; ++id) {
    envs_.push_back(std::make_unique<RealtimeEnv>());
    transports_.push_back(std::make_unique<InProcTransport>(*this, id));
  }
  if (topology) {
    for (NodeId a = 0; a < num_nodes; ++a)
      for (NodeId b = 0; b < num_nodes; ++b)
        if (const LinkSpec* l = topology->link(a, b))
          latency_[a * num_nodes + b] = l->latency;
  }
}

InProcCluster::~InProcCluster() { shutdown(); }

void InProcCluster::shutdown() {
  for (auto& env : envs_) env->shutdown();
}

void InProcCluster::deliver(NodeId src, NodeId dst,
                            std::shared_ptr<const Bytes> frame,
                            uint64_t wire_size) {
  if (dst >= size()) return;
  if (wire_size < frame->size()) wire_size = frame->size();
  Duration lat = latency_[src * size() + dst];
  InProcTransport* t = transports_[dst].get();
  // Direct dispatch: zero-latency links skip the destination Env queue and
  // invoke the handler on this (sender's) thread. Only enabled when the
  // receiver's handler is lock-free re-entrant (pipelined ingest).
  if (lat == Duration::zero() &&
      t->direct_dispatch_.load(std::memory_order_acquire)) {
    t->dispatch(src, BytesView(*frame), wire_size);
    return;
  }
  // Queue-depth gauge: frames scheduled on a destination Env but not yet
  // handed to its receive handler, summed over the cluster.
  STAB_OBS({
    static obs::Gauge& inflight = obs::global().gauge("net.inproc.in_flight");
    inflight.add(1);
  });
  // The queued event keeps a reference on the (possibly shared) buffer; a
  // broadcast's N deliveries all point at the same bytes.
  envs_[dst]->schedule_after(lat, [t, src, frame = std::move(frame),
                                   wire_size]() {
    STAB_OBS({
      static obs::Gauge& inflight =
          obs::global().gauge("net.inproc.in_flight");
      inflight.add(-1);
    });
    t->dispatch(src, BytesView(*frame), wire_size);
  });
}

}  // namespace stab
