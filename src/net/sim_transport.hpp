// Transport over the deterministic simulator, plus SimCluster, which turns a
// Topology into a fully wired simulated WAN with one transport per node.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "config/topology.hpp"
#include "net/transport.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace stab {

class SimCluster;

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulator& simulator, sim::SimNetwork& network,
               NodeId self);

  NodeId self() const override { return self_; }
  size_t cluster_size() const override { return network_.num_nodes(); }
  void set_receive_handler(ReceiveHandler handler) override;
  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override;
  void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                   uint64_t wire_size = 0) override;
  Env& env() override { return simulator_; }
  // All sim deliveries run on the single simulator thread, so the pipelined
  // core drains inline and stays schedule-deterministic.
  bool single_threaded() const override { return true; }

  /// Crash-simulation hooks. detach() models the process dying: the node is
  /// marked down (in-flight frames to it are blackholed) and the delivery
  /// handler is cleared so no callback into freed state can fire. A restarted
  /// owner calls reattach() and then installs its own receive handler.
  void detach();
  void reattach();

 private:
  sim::Simulator& simulator_;
  sim::SimNetwork& network_;
  NodeId self_;
};

/// Builds a SimNetwork from a Topology (honoring pipe groups) and exposes a
/// SimTransport per node. The single Simulator is the shared virtual clock.
class SimCluster {
 public:
  SimCluster(const Topology& topology, sim::Simulator& simulator);

  SimTransport& transport(NodeId node) { return *transports_.at(node); }
  sim::SimNetwork& network() { return *network_; }
  sim::Simulator& simulator() { return simulator_; }
  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
  sim::Simulator& simulator_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::vector<std::unique_ptr<SimTransport>> transports_;
};

}  // namespace stab
