#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/bytes.hpp"
#include "common/logging.hpp"

namespace stab {

namespace {

constexpr uint32_t kKindHello = 1;
constexpr uint32_t kKindData = 2;

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(const TcpPeerAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
  inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
  return sa;
}

}  // namespace

std::vector<TcpPeerAddr> loopback_addrs(size_t n, uint16_t base_port) {
  std::vector<TcpPeerAddr> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i)
    out.push_back(TcpPeerAddr{"127.0.0.1",
                              static_cast<uint16_t>(base_port + i)});
  return out;
}

// Frame layout on the wire: u32 body_len | u32 kind | u32 src | body.
Bytes TcpTransport::encode_frame(uint32_t kind, NodeId src, BytesView payload) {
  Writer w(payload.size() + 12);
  w.u32(static_cast<uint32_t>(payload.size()) + 8);
  w.u32(kind);
  w.u32(src);
  w.raw(payload.data(), payload.size());
  return std::move(w).take();
}

// Just the 12-byte prefix; the payload rides separately as OutFrame::body.
Bytes TcpTransport::encode_header(uint32_t kind, NodeId src,
                                  size_t payload_size) {
  Writer w(12);
  w.u32(static_cast<uint32_t>(payload_size) + 8);
  w.u32(kind);
  w.u32(src);
  return std::move(w).take();
}

TcpTransport::TcpTransport(NodeId self, std::vector<TcpPeerAddr> peers,
                           TcpTransportOptions options)
    : self_(self),
      peers_(std::move(peers)),
      opts_(options),
      conns_(peers_.size()),
      pending_(peers_.size()),
      pending_bytes_(peers_.size(), 0),
      backoff_(peers_.size(), Duration::zero()),
      jitter_rng_(options.jitter_seed ^
                  (0x9e3779b97f4a7c15ULL * (self + 1))) {
  STAB_OBS({
    obs::MetricsRegistry& reg = obs::global();
    obs_dial_attempts_ = &reg.counter("net.tcp.dial_attempts");
    obs_connects_ = &reg.counter("net.tcp.connects");
    obs_reconnects_ = &reg.counter("net.tcp.reconnects");
    obs_disconnects_ = &reg.counter("net.tcp.disconnects");
    obs_pending_dropped_ = &reg.counter("net.tcp.pending_dropped_frames");
    obs_pending_bytes_ = &reg.gauge("net.tcp.pending_bytes");
    obs_was_connected_.assign(peers_.size(), false);
  });
  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = 0xfffffffe;  // wake fd marker
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  start_listen();
  io_thread_ = std::thread([this] { io_loop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof one);
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& c : conns_)
      if (c.fd >= 0) {
        close(c.fd);
        c.fd = -1;
      }
    // Return this transport's buffered bytes to the process-wide gauge so
    // it reads 0 once every transport is down.
    STAB_OBS({
      for (size_t b : pending_bytes_)
        if (b > 0) obs_pending_bytes_->add(-static_cast<int64_t>(b));
    });
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  env_.shutdown();
}

void TcpTransport::set_receive_handler(ReceiveHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handler_ = std::move(handler);
}

void TcpTransport::send(NodeId dst, Bytes frame, uint64_t /*wire_size*/) {
  if (dst == self_ || dst >= peers_.size()) return;
  enqueue_or_pend(dst, OutFrame{encode_frame(kKindData, self_, frame), {}});
}

void TcpTransport::send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                               uint64_t /*wire_size*/) {
  if (dst == self_ || dst >= peers_.size()) return;
  // Queue a 12-byte header plus a reference on the caller's buffer; the
  // socket write scatter-gathers both with one writev. A broadcast's N
  // sends share one body allocation.
  OutFrame out{encode_header(kKindData, self_, frame->size()),
               std::move(frame)};
  enqueue_or_pend(dst, std::move(out));
}

void TcpTransport::enqueue_or_pend(NodeId dst, OutFrame frame) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Conn& c = conns_[dst];
    if (c.fd >= 0 && !c.connecting) {
      c.outq.push_back(std::move(frame));
    } else {
      pending_bytes_[dst] += frame.size();
      STAB_OBS(obs_pending_bytes_->add(static_cast<int64_t>(frame.size())));
      pending_[dst].push_back(std::move(frame));  // flushed on reconnect
      enforce_pending_bound_locked(dst);
    }
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof one);
}

size_t TcpTransport::connected_peers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (NodeId p = 0; p < conns_.size(); ++p)
    if (p != self_ && conns_[p].fd >= 0 && !conns_[p].connecting) ++n;
  return n;
}

uint64_t TcpTransport::pending_dropped_frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_dropped_;
}

size_t TcpTransport::pending_bytes(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peer < pending_bytes_.size() ? pending_bytes_[peer] : 0;
}

Duration TcpTransport::current_backoff(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peer < backoff_.size() ? backoff_[peer] : Duration::zero();
}

bool TcpTransport::wait_connected(Duration timeout) {
  TimePoint deadline = env_.now() + timeout;
  while (env_.now() < deadline) {
    if (connected_peers() + 1 == peers_.size()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return connected_peers() + 1 == peers_.size();
}

void TcpTransport::start_listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa = make_addr(peers_[self_]);
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    STAB_ERROR("tcp: bind failed on port " << peers_[self_].port << ": "
                                           << std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  listen(listen_fd_, 64);
  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = 0xffffffff;  // listen fd marker
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void TcpTransport::try_dial(NodeId peer) {
  // caller holds mutex_
  Conn& c = conns_[peer];
  if (c.fd >= 0) return;
  STAB_OBS(obs_dial_attempts_->inc());
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  set_nonblocking(fd);
  set_nodelay(fd);
  sockaddr_in sa = make_addr(peers_[peer]);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    c.retry_at = env_.now() + next_retry_delay_locked(peer);
    return;
  }
  c.fd = fd;
  c.connecting = (rc != 0);
  c.hello_sent = false;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u32 = peer;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void TcpTransport::close_conn(NodeId peer, const char* why) {
  // caller holds mutex_
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  STAB_DEBUG("tcp node " << self_ << ": closing conn to " << peer << " ("
                         << why << ")");
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  close(c.fd);
  STAB_OBS(obs_disconnects_->inc());
  // Unsent frames go back to pending so they survive the reconnect.
  if (!c.outq.empty()) {
    // Drop the partially written frame: the peer would see a torn frame
    // anyway; it is re-sent by the data plane's retransmission layer.
    if (c.out_offset > 0) c.outq.pop_front();
    while (!c.outq.empty()) {
      pending_bytes_[peer] += c.outq.back().size();
      STAB_OBS(obs_pending_bytes_->add(
          static_cast<int64_t>(c.outq.back().size())));
      pending_[peer].push_front(std::move(c.outq.back()));
      c.outq.pop_back();
    }
    enforce_pending_bound_locked(peer);
  }
  c = Conn{};
  c.retry_at = env_.now() + next_retry_delay_locked(peer);
}

Duration TcpTransport::next_retry_delay_locked(NodeId peer) {
  Duration& b = backoff_[peer];
  b = b == Duration::zero() ? opts_.reconnect_initial
                            : std::min(opts_.reconnect_max, b * 2);
  double jitter =
      1.0 + opts_.reconnect_jitter * (jitter_rng_.next_double() * 2.0 - 1.0);
  return std::chrono::duration_cast<Duration>(b * jitter);
}

void TcpTransport::enforce_pending_bound_locked(NodeId peer) {
  if (opts_.max_pending_bytes == 0) return;
  auto& q = pending_[peer];
  // Keep at least the newest frame so a single frame larger than the bound
  // still goes out eventually.
  while (pending_bytes_[peer] > opts_.max_pending_bytes && q.size() > 1) {
    pending_bytes_[peer] -= q.front().size();
    STAB_OBS({
      obs_pending_bytes_->add(-static_cast<int64_t>(q.front().size()));
      obs_pending_dropped_->inc();
    });
    q.pop_front();
    ++pending_dropped_;
  }
}

void TcpTransport::flush_pending_locked(NodeId peer) {
  Conn& c = conns_[peer];
  if (!c.hello_sent) {
    c.outq.push_front(OutFrame{encode_frame(kKindHello, self_, {}), {}});
    c.hello_sent = true;
    c.out_offset = 0;
  }
  while (!pending_[peer].empty()) {
    pending_bytes_[peer] -= pending_[peer].front().size();
    STAB_OBS(obs_pending_bytes_->add(
        -static_cast<int64_t>(pending_[peer].front().size())));
    c.outq.push_back(std::move(pending_[peer].front()));
    pending_[peer].pop_front();
  }
}

#if STAB_OBS_ENABLED
void TcpTransport::obs_on_connected_locked(NodeId peer) {
  obs_connects_->inc();
  if (obs_was_connected_[peer]) obs_reconnects_->inc();
  obs_was_connected_[peer] = true;
}
#endif

void TcpTransport::rearm_epoll(NodeId peer) {
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (!c.outq.empty() || c.connecting) ev.events |= EPOLLOUT;
  ev.data.u32 = peer;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void TcpTransport::handle_accept() {
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
    if (fd < 0) return;
    set_nonblocking(fd);
    set_nodelay(fd);
    // We don't know which peer this is until its HELLO arrives; park it on a
    // temporary id. Read the HELLO synchronously-ish: register under a
    // sentinel by scanning for a free "unknown" slot — to keep the code
    // simple we do a short blocking read loop for the 12-byte HELLO.
    uint8_t buf[12];
    size_t got = 0;
    for (int spin = 0; spin < 2000 && got < sizeof buf; ++spin) {
      ssize_t n = recv(fd, buf + got, sizeof buf - got, 0);
      if (n > 0) {
        got += static_cast<size_t>(n);
      } else if (n == 0) {
        break;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    if (got < sizeof buf) {
      close(fd);
      continue;
    }
    Reader r(BytesView(buf, sizeof buf));
    uint32_t body_len = r.u32();
    uint32_t kind = r.u32();
    NodeId src = r.u32();
    if (body_len != 8 || kind != kKindHello || src >= peers_.size() ||
        src == self_) {
      close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    Conn& c = conns_[src];
    if (c.fd >= 0) {
      // Simultaneous connect race: deterministic winner — keep the
      // connection dialed by the smaller node id. We are the acceptor, so
      // the dialer is `src`; keep this one iff src < self_.
      if (src < self_) {
        close_conn(src, "replaced by accepted conn");
      } else {
        close(fd);
        continue;
      }
    }
    c.fd = fd;
    c.connecting = false;
    c.hello_sent = true;  // acceptor doesn't dial, no hello needed from us
    backoff_[src] = Duration::zero();  // live connection resets the backoff
    STAB_OBS(obs_on_connected_locked(src));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = src;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    flush_pending_locked(src);
    rearm_epoll(src);
  }
}

void TcpTransport::handle_readable(NodeId peer) {
  std::unique_lock<std::mutex> lock(mutex_);
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.inbuf.insert(c.inbuf.end(), buf, buf + n);
    } else if (n == 0) {
      close_conn(peer, "peer closed");
      return;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      close_conn(peer, "recv error");
      return;
    }
  }
  // Parse complete frames. Under direct dispatch the handler is invoked on
  // this IO thread — but never while holding mutex_ (the handler's ingest
  // path may call back into send(), which takes it). Frames are collected
  // under the lock, then dispatched after it is released, preserving
  // per-peer FIFO order.
  const bool direct = direct_dispatch_.load(std::memory_order_acquire);
  struct Parsed {
    NodeId src;
    Bytes payload;
  };
  std::vector<Parsed> ready;
  size_t pos = 0;
  while (c.inbuf.size() - pos >= 4) {
    uint32_t body_len;
    std::memcpy(&body_len, c.inbuf.data() + pos, 4);
    if (c.inbuf.size() - pos < 4 + body_len) break;
    Reader r(BytesView(c.inbuf.data() + pos + 4, body_len));
    uint32_t kind = r.u32();
    NodeId src = r.u32();
    Bytes payload(c.inbuf.begin() + pos + 12,
                  c.inbuf.begin() + pos + 4 + body_len);
    pos += 4 + body_len;
    if (kind == kKindData && handler_) {
      if (direct) {
        ready.push_back(Parsed{src, std::move(payload)});
        continue;
      }
      auto handler = handler_;
      uint64_t wire = payload.size();
      env_.schedule_after(Duration::zero(),
                          [handler, src, payload = std::move(payload),
                           wire]() {
                            handler(src, BytesView(payload), wire);
                          });
    }
  }
  c.inbuf.erase(c.inbuf.begin(), c.inbuf.begin() + pos);
  if (ready.empty()) return;
  auto handler = handler_;
  lock.unlock();
  for (Parsed& p : ready)
    handler(p.src, BytesView(p.payload), p.payload.size());
}

void TcpTransport::handle_writable(NodeId peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  if (c.connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_conn(peer, "connect failed");
      return;
    }
    c.connecting = false;
    backoff_[peer] = Duration::zero();  // live connection resets the backoff
    STAB_OBS(obs_on_connected_locked(peer));
    flush_pending_locked(peer);
  }
  // Scatter-gather up to 16 queued frames (header + shared body each) per
  // writev so a coalesced broadcast flush costs one syscall, not one per
  // frame. out_offset tracks progress within outq.front() only.
  while (!c.outq.empty()) {
    iovec iov[32];
    int iovcnt = 0;
    size_t queued = 0;
    for (const OutFrame& f : c.outq) {
      if (iovcnt + 2 > static_cast<int>(std::size(iov))) break;
      size_t skip = queued == 0 ? c.out_offset : 0;
      if (skip < f.head.size()) {
        iov[iovcnt++] = {const_cast<uint8_t*>(f.head.data() + skip),
                         f.head.size() - skip};
        skip = 0;
      } else {
        skip -= f.head.size();
      }
      if (f.body && skip < f.body->size())
        iov[iovcnt++] = {const_cast<uint8_t*>(f.body->data() + skip),
                         f.body->size() - skip};
      ++queued;
    }
    if (iovcnt == 0) {  // front frame fully written (empty remainder)
      c.outq.pop_front();
      c.out_offset = 0;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      size_t written = static_cast<size_t>(n);
      while (written > 0 && !c.outq.empty()) {
        size_t left = c.outq.front().size() - c.out_offset;
        if (written >= left) {
          written -= left;
          c.outq.pop_front();
          c.out_offset = 0;
        } else {
          c.out_offset += written;
          written = 0;
        }
      }
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      close_conn(peer, "send error");
      return;
    }
  }
  rearm_epoll(peer);
}

void TcpTransport::io_loop() {
  while (!stop_.load()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Dial peers we are responsible for (smaller id dials larger).
      for (NodeId p = 0; p < peers_.size(); ++p) {
        if (p == self_ || self_ > p) continue;
        Conn& c = conns_[p];
        if (c.fd < 0 && env_.now() >= c.retry_at) try_dial(p);
      }
      // Make sure EPOLLOUT is armed where output is queued.
      for (NodeId p = 0; p < peers_.size(); ++p)
        if (p != self_) rearm_epoll(p);
    }
    epoll_event events[32];
    int n = epoll_wait(epoll_fd_, events, 32, 50);
    for (int i = 0; i < n; ++i) {
      uint32_t tag = events[i].data.u32;
      if (tag == 0xffffffff) {
        handle_accept();
      } else if (tag == 0xfffffffe) {
        uint64_t drain;
        while (read(wake_fd_, &drain, sizeof drain) > 0) {
        }
      } else {
        NodeId peer = tag;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          std::lock_guard<std::mutex> lock(mutex_);
          close_conn(peer, "hup/err");
          continue;
        }
        if (events[i].events & EPOLLOUT) handle_writable(peer);
        if (events[i].events & EPOLLIN) handle_readable(peer);
      }
    }
  }
}

}  // namespace stab
