// Live metrics scrape endpoint (docs/OBSERVABILITY.md §7).
//
// A MetricsEndpoint is a deliberately tiny HTTP/1.0 server — one listening
// socket, one serving thread, one connection at a time — that renders the
// registered metric sources on demand:
//
//   GET /metrics   Prometheus text exposition (format 0.0.4). Counters and
//                  gauges map directly; histograms render as summaries with
//                  quantile labels 0.5/0.95/0.99/0.999 plus _count/_sum.
//                  Metric names are the registry names with '.' (and any
//                  other non-[a-zA-Z0-9_:]) mapped to '_', prefixed "stab_".
//   GET /jsonl     The same dump_jsonl lines tests and benches consume,
//                  plus one windowed_histogram line per probe window.
//
// Scrapes are rare and tiny, so serializing them on one thread costs
// nothing and keeps the code a page long; the metric reads themselves are
// the registries' relaxed atomic loads, so a scrape never blocks the data
// path. A pre-scrape hook lets the owner fold batched state (the wire
// codec's thread-local accumulators, a probe's stale window epochs) right
// before rendering, making a scrape a quiesce point.
//
// The endpoint exists only in the -DSTAB_OBS=ON flavor; the OFF build
// compiles this header to nothing and ships no scrape surface at all.
#pragma once

#include "obs/obs.hpp"

#if STAB_OBS_ENABLED

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "obs/latency_probe.hpp"
#include "obs/metrics.hpp"

namespace stab {

struct MetricsEndpointOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned; read the bound port back via port().
  uint16_t port = 0;
};

class MetricsEndpoint {
 public:
  explicit MetricsEndpoint(MetricsEndpointOptions opts = {});
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Expose `reg`'s metrics with `prefix` prepended to every name (per-node
  /// namespacing, same convention as MetricsRegistry::dump_jsonl). The
  /// registry must outlive the endpoint. Callable before or after start().
  void add_registry(std::string prefix, const obs::MetricsRegistry* reg);

  /// Expose a LatencyProbe: its registry (under `prefix`) plus its windowed
  /// percentile views. `now`, when provided, reads the owning node's Env
  /// clock so a scrape ages out stale window epochs first.
  void add_probe(std::string prefix, obs::LatencyProbe* probe,
                 std::function<TimePoint()> now = {});

  /// Invoked at the top of every scrape, before rendering — the owner's
  /// chance to fold batched counters (e.g. data::flush_wire_counters).
  void set_pre_scrape(std::function<void()> hook);

  /// Bind + listen + spawn the serving thread. Error status (and no thread)
  /// when the address cannot be bound.
  Status start();

  /// Close the socket and join the thread. Idempotent; the dtor calls it.
  void stop();

  /// Bound port (the kernel's pick when options.port was 0); 0 before
  /// start().
  uint16_t port() const { return port_; }

  /// Renderers, exposed for tests and offline dumps; a scrape serves
  /// exactly these bytes.
  std::string render_prometheus() const;
  std::string render_jsonl() const;

 private:
  struct ProbeSource {
    std::string prefix;
    obs::LatencyProbe* probe = nullptr;
    std::function<TimePoint()> now;
  };

  void serve_loop();
  void handle_client(int fd) const;
  void pre_scrape() const;

  const MetricsEndpointOptions opts_;
  mutable std::mutex mu_;  // guards sources_/probes_/pre_scrape_
  std::vector<std::pair<std::string, const obs::MetricsRegistry*>> sources_;
  std::vector<ProbeSource> probes_;
  std::function<void()> pre_scrape_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace stab

#endif  // STAB_OBS_ENABLED
