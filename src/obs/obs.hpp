// Observability compile-out layer.
//
// Every instrumentation site in the hot paths (core data plane, control
// plane, transports, wire codec) goes through the macros below instead of
// calling the metrics/trace API directly. A build with STAB_OBS_ENABLED=0
// (cmake -DSTAB_OBS=OFF) expands them to nothing: the macro arguments are
// *not evaluated*, no obs header is included, and the translation unit ends
// up with zero references to stab_obs symbols — verified by
// tests/obs_disabled_test.cpp, which compiles with the flag forced to 0.
//
// In the default (enabled) build the cost model is:
//   * counters / gauges  — one relaxed atomic RMW, no branches;
//   * histograms         — one bit-scan + one relaxed atomic RMW;
//   * trace records      — a null check; when a Tracer is attached, a mutex
//     push of a 64-byte record (tracing is opt-in per node/cluster).
// bench_obs_overhead quantifies all three against the compiled-out build.
#pragma once

#ifndef STAB_OBS_ENABLED
#define STAB_OBS_ENABLED 1
#endif

#if STAB_OBS_ENABLED

#include "obs/latency_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// Execute instrumentation statements (counter bumps, gauge sets, histogram
/// records; wrap multi-statement sites in braces). Compiles to nothing —
/// arguments unevaluated — when observability is disabled.
#define STAB_OBS(...)             \
  do {                            \
    __VA_ARGS__;                  \
  } while (0)

/// Record one lifecycle trace event iff `tracer` (a stab::obs::Tracer*) is
/// attached and subscribed to the event. args = (t, event, node, origin,
/// seq[, peer[, detail]]).
#define STAB_TRACE(tracer, ...)                            \
  do {                                                     \
    if ((tracer) != nullptr) (tracer)->record(__VA_ARGS__); \
  } while (0)

/// True iff `tracer` is attached and wants `ev` — use to skip loops that
/// would emit many records.
#define STAB_TRACE_WANTS(tracer, ev) \
  ((tracer) != nullptr && (tracer)->wants(ev))

/// Invoke one LatencyProbe hook iff `probe` (a stab::obs::LatencyProbe*)
/// is attached: STAB_PROBE(p, on_send(origin, seq, now)). Compiles to
/// nothing — arguments unevaluated — when observability is disabled.
#define STAB_PROBE(probe, call)                \
  do {                                         \
    if ((probe) != nullptr) (probe)->call;     \
  } while (0)

/// True iff `probe` is attached and samples `seq` — gate work that only
/// matters for sampled sequences.
#define STAB_PROBE_SAMPLED(probe, seq) \
  ((probe) != nullptr && (probe)->sampled(seq))

#else  // STAB_OBS_ENABLED == 0: everything vanishes, arguments unevaluated.

#define STAB_OBS(...) \
  do {                \
  } while (0)
#define STAB_TRACE(tracer, ...) \
  do {                          \
  } while (0)
#define STAB_TRACE_WANTS(tracer, ev) false
#define STAB_PROBE(probe, call) \
  do {                          \
  } while (0)
#define STAB_PROBE_SAMPLED(probe, seq) false

#endif  // STAB_OBS_ENABLED
