#include "obs/trace.hpp"

#include <ostream>

namespace stab::obs {

const char* span_event_name(SpanEvent ev) {
  switch (ev) {
    case SpanEvent::kBroadcast: return "broadcast";
    case SpanEvent::kTransmit: return "transmit";
    case SpanEvent::kDeliver: return "deliver";
    case SpanEvent::kAckReport: return "ack_report";
    case SpanEvent::kFrontierFire: return "frontier_fire";
    case SpanEvent::kLeaseExpire: return "lease_expire";
    case SpanEvent::kSuspect: return "suspect";
    case SpanEvent::kPromote: return "promote";
    case SpanEvent::kTakeoverApply: return "takeover_apply";
    case SpanEvent::kFenceDrop: return "fence_drop";
    case SpanEvent::kRingStall: return "ring_stall";
  }
  return "unknown";
}

Tracer::Tracer(size_t capacity, EventMask mask)
    : capacity_(capacity), mask_(mask) {
  records_.reserve(capacity < 4096 ? capacity : 4096);
}

void Tracer::record(TimePoint t, SpanEvent ev, NodeId node, NodeId origin,
                    SeqNum seq, NodeId peer, std::string_view detail) {
  if (!wants(ev)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Record r;
  r.t = t;
  r.ev = ev;
  r.node = node;
  r.origin = origin;
  r.seq = seq;
  r.peer = peer;
  r.shard = shard_;
  r.detail.assign(detail.data(), detail.size());
  records_.push_back(std::move(r));
}

void Tracer::set_shard(int32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_ = shard;
}

int32_t Tracer::shard() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
}

std::vector<Tracer::Record> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void Tracer::export_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Record& r : records_) {
    out << "{\"t_ns\":" << r.t.count() << ",\"ev\":\"" << span_event_name(r.ev)
        << "\",\"node\":" << r.node << ",\"origin\":" << r.origin
        << ",\"seq\":" << r.seq;
    if (r.peer != kInvalidNode) out << ",\"peer\":" << r.peer;
    if (r.shard >= 0) out << ",\"shard\":" << r.shard;
    if (!r.detail.empty()) out << ",\"detail\":\"" << r.detail << "\"";
    out << "}\n";
  }
  // A truncated trace must say so in-band: offline joins (bench/
  // trace_timeline) would otherwise read a capacity-clipped history as a
  // complete one. Omitted entirely when nothing was dropped, so exports of
  // complete traces are unchanged.
  if (dropped_ > 0)
    out << "{\"summary\":\"trace_dropped\",\"dropped\":" << dropped_
        << ",\"kept\":" << records_.size() << "}\n";
}

}  // namespace stab::obs
