// Message-lifecycle tracer (docs/OBSERVABILITY.md §3).
//
// A Tracer records per-sequence spans of the Stabilizer pipeline:
//
//   broadcast ──► transmit(peer)* ──► deliver ──► ack_report* ──► frontier_fire*
//   (origin)      (origin, per peer)  (receiver)  (receiver)      (any observer)
//
// Timestamps come from the caller's active Env clock, so a trace taken on
// the deterministic simulator is bit-for-bit reproducible per seed (the
// chaos acceptance campaign pins this), while the real-time transports
// stamp wall-clock nanoseconds. Recording is opt-in per node: a Stabilizer
// traces iff StabilizerOptions::tracer is set; several nodes may share one
// Tracer to get a single cluster-wide interleaved timeline (what SimCluster
// campaigns do — the sim's FIFO event order makes the interleaving itself
// deterministic).
//
// The record buffer is bounded: once `capacity` records exist, further
// records are counted in dropped() and discarded (deterministically — the
// kept prefix is append-ordered). Subscribe to a subset of events via the
// constructor mask to spend the budget on the spans you care about.
//
// Thread safety: record() and the accessors take an internal mutex — the
// InProc and TCP transports call back from their own threads. Per-record
// cost when attached is one lock + a 64-byte append; when detached the
// instrumentation macros reduce to a null check (see obs/obs.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace stab::obs {

enum class SpanEvent : uint8_t {
  kBroadcast = 0,     // send() sequenced a local message
  kTransmit = 1,      // a DATA/DATABATCH transmission to one peer
  kDeliver = 2,       // in-order delivery upcall at a receiver
  kAckReport = 3,     // a stability report left in an ACKBATCH flush
  kFrontierFire = 4,  // a predicate's frontier advanced (detail = key)
  // Failover episode markers (origin = the guarded stream):
  kLeaseExpire = 5,    // a mirror's lease on the primary ran out
  kSuspect = 6,        // suspicion broadcast (seq = local delivered cursor)
  kPromote = 7,        // this node won promotion (seq = adopted start seq)
  kTakeoverApply = 8,  // a TAKEOVER was applied (peer = new primary)
  kFenceDrop = 9,      // a frame was fenced (detail = reason)
  // Pipelined-ingestion back-pressure (peer = source whose ring filled):
  kRingStall = 10,
};

/// Bit mask of SpanEvents a Tracer subscribes to.
using EventMask = uint32_t;
inline constexpr EventMask event_bit(SpanEvent ev) {
  return EventMask{1} << static_cast<uint8_t>(ev);
}
inline constexpr EventMask kAllEvents = 0x7FF;
/// The five message-lifecycle spans (the pre-failover event set) — chaos
/// campaigns that only care about per-message timelines subscribe to these.
inline constexpr EventMask kLifecycleEvents = 0x1F;
/// The failover / back-pressure episode markers.
inline constexpr EventMask kEpisodeEvents = kAllEvents & ~kLifecycleEvents;

const char* span_event_name(SpanEvent ev);

class Tracer {
 public:
  struct Record {
    TimePoint t = kTimeZero;           // active Env clock at record time
    SpanEvent ev = SpanEvent::kBroadcast;
    NodeId node = kInvalidNode;        // node the event happened on
    NodeId origin = kInvalidNode;      // stream the sequence belongs to
    SeqNum seq = kNoSeq;
    NodeId peer = kInvalidNode;        // transmit dst / deliver src / report subject
    int32_t shard = -1;                // recording instance's shard (-1 = unsharded)
    std::string detail;                // predicate key / stability type name
  };

  explicit Tracer(size_t capacity = 1 << 20, EventMask mask = kAllEvents);

  /// True iff this tracer subscribes to `ev` — check before loops that
  /// would produce one record per element.
  bool wants(SpanEvent ev) const { return (mask_ & event_bit(ev)) != 0; }

  /// Append one record (dropped silently past capacity; see dropped()).
  void record(TimePoint t, SpanEvent ev, NodeId node, NodeId origin,
              SeqNum seq, NodeId peer = kInvalidNode,
              std::string_view detail = {});

  /// Shard dimension (DESIGN.md §9): every record appended after this call
  /// is stamped with `shard`, and export_jsonl emits it as a "shard" field —
  /// so a sharded node's per-shard tracers merge into one timeline without
  /// losing attribution. -1 (the default) leaves records unstamped and the
  /// export format unchanged. Call before traffic starts (a sharded facade
  /// stamps its per-shard tracers at construction); not synchronized against
  /// in-flight record() calls beyond the record mutex.
  void set_shard(int32_t shard);
  int32_t shard() const;

  size_t size() const;
  uint64_t dropped() const;
  void clear();

  /// Copy of the records (tests / offline analysis).
  std::vector<Record> records() const;

  /// JSON-lines export, one record per line in append order:
  ///   {"t_ns":..,"ev":"deliver","node":1,"origin":0,"seq":7,"peer":0}
  /// "peer", "shard", and "detail" are omitted when unset; no other
  /// optional fields — byte-identical across runs whenever the recorded
  /// history is identical.
  void export_jsonl(std::ostream& out) const;

 private:
  const size_t capacity_;
  const EventMask mask_;
  mutable std::mutex mu_;
  std::vector<Record> records_;
  uint64_t dropped_ = 0;
  int32_t shard_ = -1;  // stamped into every record; under mu_
};

}  // namespace stab::obs
