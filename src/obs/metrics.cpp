#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace stab::obs {

// --- Histogram -----------------------------------------------------------------

size_t Histogram::bucket_of(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);
  // b = floor(log2 v) >= 2; sub-bucket = next two bits below the top one.
  const int b = std::bit_width(v) - 1;
  const uint64_t sub = (v >> (b - 2)) & 3;
  return static_cast<size_t>((b - 1) * 4 + sub);
}

uint64_t Histogram::bucket_lo(size_t b) {
  if (b < 4) return b;
  const int exp = static_cast<int>(b / 4) + 1;
  const uint64_t sub = b % 4;
  return (uint64_t{4} + sub) << (exp - 2);
}

uint64_t Histogram::bucket_hi(size_t b) {
  if (b < 4) return b;
  const int exp = static_cast<int>(b / 4) + 1;
  return bucket_lo(b) + (uint64_t{1} << (exp - 2)) - 1;
}

void Histogram::record(uint64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() > 0) {
    uint64_t v = other.min();
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    v = other.max();
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

namespace {
// Nearest-rank percentile over a plain bucket-count array: shared by the
// cumulative histogram (which loads its atomics into the caller's rank
// walk) and the windowed view (which owns plain delta arrays).
uint64_t percentile_over(const uint64_t* buckets, uint64_t n, double p,
                         uint64_t max_clamp) {
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) return std::min(Histogram::bucket_hi(b), max_clamp);
  }
  return max_clamp;
}
}  // namespace

uint64_t Histogram::percentile(double p) const {
  std::array<uint64_t, kNumBuckets> snap;
  for (size_t b = 0; b < kNumBuckets; ++b)
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
  return percentile_over(snap.data(), count(), p, max());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  std::array<uint64_t, kNumBuckets> snap;
  for (size_t b = 0; b < kNumBuckets; ++b)
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
  s.p50 = percentile_over(snap.data(), s.count, 50, s.max);
  s.p95 = percentile_over(snap.data(), s.count, 95, s.max);
  s.p99 = percentile_over(snap.data(), s.count, 99, s.max);
  s.p999 = percentile_over(snap.data(), s.count, 99.9, s.max);
  return s;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n) out.emplace_back(bucket_hi(b), n);
  }
  return out;
}

// --- WindowedHistogram ---------------------------------------------------------

WindowedHistogram::WindowedHistogram(const Histogram& source,
                                     size_t window_epochs)
    : src_(source), window_(window_epochs == 0 ? 1 : window_epochs) {
  ring_.resize(window_);
}

void WindowedHistogram::advance() {
  std::lock_guard<std::mutex> lock(mu_);
  Delta& slot = ring_[static_cast<size_t>(epochs_ % window_)];
  uint64_t epoch_count = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t now = src_.bucket_count(b);
    slot.buckets[b] = now - cum_.buckets[b];
    cum_.buckets[b] = now;
    epoch_count += slot.buckets[b];
  }
  // count/sum read after the buckets: a sample racing this advance may have
  // bumped its bucket but not yet count_/sum_ (or vice versa). Derive the
  // epoch count from the bucket deltas themselves so count == sum(buckets)
  // always holds for a closed epoch; sum is delta'd directly (monotone, so
  // at worst one in-flight sample's value slides into the next epoch).
  const uint64_t src_count = src_.count();
  const uint64_t src_sum = src_.sum();
  slot.count = epoch_count;
  slot.sum = src_sum - cum_.sum;
  cum_.count = src_count;
  cum_.sum = src_sum;
  ++epochs_;
}

uint64_t WindowedHistogram::epochs_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_;
}

Histogram::Snapshot WindowedHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::array<uint64_t, Histogram::kNumBuckets> merged{};
  uint64_t count = 0, sum = 0;
  const size_t live = static_cast<size_t>(
      epochs_ < static_cast<uint64_t>(window_) ? epochs_ : window_);
  for (size_t i = 0; i < live; ++i) {
    const Delta& d = ring_[i];
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b)
      merged[b] += d.buckets[b];
    count += d.count;
    sum += d.sum;
  }
  Histogram::Snapshot s;
  s.count = count;
  s.sum = sum;
  if (count == 0) return s;
  size_t first = 0, last = 0;
  bool seen = false;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (!merged[b]) continue;
    if (!seen) first = b;
    last = b;
    seen = true;
  }
  // Bucket-bound window extremes: exact per-sample min/max of a sub-range
  // cannot be reconstructed from bucket deltas.
  s.min = Histogram::bucket_lo(first);
  s.max = Histogram::bucket_hi(last);
  s.p50 = percentile_over(merged.data(), count, 50, s.max);
  s.p95 = percentile_over(merged.data(), count, 95, s.max);
  s.p99 = percentile_over(merged.data(), count, 99, s.max);
  s.p999 = percentile_over(merged.data(), count, 99.9, s.max);
  return s;
}

// --- MetricsRegistry -----------------------------------------------------------

namespace {
template <typename Map>
auto& get_or_create(Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  return *it->second;
}

template <typename Map>
auto* find_in(const Map& map, std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  return it == map.end() ? static_cast<typename Map::mapped_type::element_type*>(
                               nullptr)
                         : it->second.get();
}

// Metric names are code-controlled identifiers, but escape defensively so
// the JSONL stays well-formed whatever a predicate key contains.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(counters_, name, mu_);
}
Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(gauges_, name, mu_);
}
Histogram& MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(histograms_, name, mu_);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name, mu_);
}
const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name, mu_);
}
const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(histograms_, name, mu_);
}

void MetricsRegistry::dump_jsonl(std::ostream& out,
                                 std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pfx(prefix);
  // Shard dimension as a dedicated field, not folded into the name: readers
  // group by (name, shard). Omitted when unsharded so pre-shard consumers
  // see an unchanged format.
  std::string shard_field;
  if (const int s = shard(); s >= 0)
    shard_field = ",\"shard\":" + std::to_string(s);
  for (const auto& [name, c] : counters_)
    out << "{\"name\":\"" << json_escape(pfx + name)
        << "\",\"type\":\"counter\"" << shard_field
        << ",\"value\":" << c->value() << "}\n";
  for (const auto& [name, g] : gauges_)
    out << "{\"name\":\"" << json_escape(pfx + name)
        << "\",\"type\":\"gauge\"" << shard_field
        << ",\"value\":" << g->value() << "}\n";
  for (const auto& [name, h] : histograms_) {
    auto s = h->snapshot();
    out << "{\"name\":\"" << json_escape(pfx + name)
        << "\",\"type\":\"histogram\"" << shard_field
        << ",\"count\":" << s.count
        << ",\"sum\":" << s.sum << ",\"min\":" << s.min << ",\"max\":" << s.max
        << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99
        << ",\"p999\":" << s.p999 << ",\"buckets\":[";
    bool first = true;
    for (auto [hi, n] : h->nonzero_buckets()) {
      if (!first) out << ",";
      first = false;
      out << "[" << hi << "," << n << "]";
    }
    out << "]}\n";
  }
}

void MetricsRegistry::dump_table(std::ostream& out,
                                 std::string_view title) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!title.empty()) out << "--- " << title << " ---\n";
  size_t width = 12;
  for (const auto& [name, _] : counters_) width = std::max(width, name.size());
  for (const auto& [name, _] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, _] : histograms_)
    width = std::max(width, name.size());
  for (const auto& [name, c] : counters_)
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    auto s = h->snapshot();
    out << "  " << std::left << std::setw(static_cast<int>(width)) << name
        << "  n=" << s.count << " sum=" << s.sum << " min=" << s.min
        << " p50=" << s.p50 << " p95=" << s.p95 << " p99=" << s.p99
        << " p999=" << s.p999 << " max=" << s.max << "\n";
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, _] : counters_) out.push_back(name);
  for (const auto& [name, _] : gauges_) out.push_back(name);
  for (const auto& [name, _] : histograms_) out.push_back(name);
  return out;
}

MetricsRegistry& global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaky: see header
  return *reg;
}

}  // namespace stab::obs
