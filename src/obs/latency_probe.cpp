#include "obs/latency_probe.hpp"

#include <algorithm>
#include <ostream>

namespace stab::obs {

namespace {
constexpr std::string_view kSendToDeliver = "probe.send_to_deliver";
constexpr std::string_view kSendToStablePrefix = "probe.send_to_stable.";
constexpr std::string_view kFrontierLag = "probe.frontier_lag";
}  // namespace

LatencyProbe::LatencyProbe(LatencyProbeOptions opts)
    : opts_(opts),
      sample_every_(opts.sample_every == 0 ? 1 : opts.sample_every),
      sample_pow2_((sample_every_ & (sample_every_ - 1)) == 0),
      sample_mask_(sample_every_ - 1) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pre-create the fixed-name histograms so exports are shaped the same
  // whether or not traffic arrived before the first scrape.
  send_to_deliver_ = &windowed_hist(kSendToDeliver);
  frontier_lag_ = &windowed_hist(kFrontierLag);
}

Histogram& LatencyProbe::windowed_hist(std::string_view name) {
  Histogram& h = reg_.histogram(name);
  auto it = windows_.find(name);
  if (it == windows_.end())
    windows_.emplace(std::string(name), std::make_unique<WindowedHistogram>(
                                            h, opts_.window_epochs));
  return h;
}

void LatencyProbe::maybe_advance_locked(TimePoint t) {
  if (!epoch_started_) {
    epoch_start_ = t;
    epoch_started_ = true;
    return;
  }
  // Close every epoch boundary the clock has crossed, but never more than
  // one full ring per call: older epochs would be evicted immediately, so
  // advancing them individually is pure wasted work on long-idle nodes.
  const auto epoch = opts_.window_epoch;
  if (epoch.count() <= 0) return;
  uint64_t due = 0;
  while (t - epoch_start_ >= epoch) {
    epoch_start_ += epoch;
    ++due;
  }
  if (due == 0) return;
  const uint64_t cap = static_cast<uint64_t>(opts_.window_epochs) + 1;
  for (uint64_t i = 0; i < std::min(due, cap); ++i)
    for (auto& [_, w] : windows_) w->advance();
}

void LatencyProbe::on_send(NodeId origin, SeqNum seq, TimePoint t) {
  if (!sampled(seq)) return;
  std::lock_guard<std::mutex> lock(mu_);
  maybe_advance_locked(t);
  OriginState& st = origins_[origin];
  st.open[seq] = t;
  if (st.open.size() > opts_.max_open_spans) {
    st.open.erase(st.open.begin());
    reg_.counter("probe.spans_evicted").inc();
  }
}

void LatencyProbe::on_deliver(NodeId node, NodeId origin, SeqNum seq,
                              TimePoint t) {
  if (node == origin || !sampled(seq)) return;
  std::lock_guard<std::mutex> lock(mu_);
  maybe_advance_locked(t);
  auto oit = origins_.find(origin);
  if (oit == origins_.end()) return;
  auto sit = oit->second.open.find(seq);
  if (sit == oit->second.open.end()) return;
  const uint64_t ns =
      t >= sit->second ? static_cast<uint64_t>((t - sit->second).count()) : 0;
  send_to_deliver_->record(ns);
}

void LatencyProbe::on_stable(NodeId origin, SeqNum stable_upto,
                             SeqNum high_water, std::string_view type_key,
                             TimePoint t) {
  if (stable_upto < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  maybe_advance_locked(t);

  // Frontier lag: how far the stream's head has run ahead of this type's
  // stability frontier, in sequences. Gauge = latest value per origin,
  // histogram = windowed distribution across all origins/types.
  const int64_t lag =
      high_water > stable_upto ? (high_water - stable_upto) : 0;
  OriginState& st = origins_[origin];
  if (!st.lag_gauge)
    st.lag_gauge = &reg_.gauge("probe.frontier_lag.o" + std::to_string(origin));
  st.lag_gauge->set(lag);
  frontier_lag_->record(static_cast<uint64_t>(lag));

  auto tit = st.types.find(type_key);
  if (tit == st.types.end()) {
    tit = st.types.try_emplace(std::string(type_key)).first;
    tit->second.stable_hist = &windowed_hist(std::string(kSendToStablePrefix) +
                                             std::string(type_key));
  }
  TypeState& ts = tit->second;
  if (stable_upto <= ts.cursor) return;

  for (auto it = st.open.upper_bound(ts.cursor);
       it != st.open.end() && it->first <= stable_upto; ++it) {
    const uint64_t ns =
        t >= it->second ? static_cast<uint64_t>((t - it->second).count()) : 0;
    ts.stable_hist->record(ns);
  }
  ts.cursor = stable_upto;

  // GC: a span no one can close again — stable under every type key seen so
  // far on this origin — is dead weight. Erase the prefix below the minimum
  // cursor (first-type-seen before others register keeps spans alive until
  // those types catch up, bounded by max_open_spans eviction either way).
  SeqNum min_cursor = ts.cursor;
  for (const auto& [_, t2] : st.types) min_cursor = std::min(min_cursor, t2.cursor);
  if (min_cursor >= 0)
    st.open.erase(st.open.begin(), st.open.upper_bound(min_cursor));
}

void LatencyProbe::advance_windows(TimePoint t) {
  std::lock_guard<std::mutex> lock(mu_);
  maybe_advance_locked(t);
}

Histogram::Snapshot LatencyProbe::windowed(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(name);
  return it == windows_.end() ? Histogram::Snapshot{} : it->second->snapshot();
}

std::vector<std::string> LatencyProbe::window_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(windows_.size());
  for (const auto& [name, _] : windows_) out.push_back(name);
  return out;
}

void LatencyProbe::export_windows_jsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, w] : windows_) {
    const Histogram::Snapshot s = w->snapshot();
    out << "{\"name\":\"" << name
        << "\",\"type\":\"windowed_histogram\",\"window_epochs\":"
        << w->window_epochs() << ",\"epochs_closed\":" << w->epochs_closed()
        << ",\"count\":" << s.count << ",\"sum\":" << s.sum
        << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"p50\":" << s.p50
        << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99
        << ",\"p999\":" << s.p999 << "}\n";
  }
}

}  // namespace stab::obs
