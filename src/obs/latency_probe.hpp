// Online stability-latency probe (docs/OBSERVABILITY.md §6).
//
// The tracer answers "what happened to message (origin, seq)" *offline*:
// export the JSONL, join the spans, read the timeline. Operators need the
// same join *online* — p50/p99/p999 of send→deliver and send→stable, per
// stability type, scrapable from a running node. A LatencyProbe does that
// join incrementally:
//
//   * send()      — the origin records the sampled sequence's send time;
//   * deliver     — each *remote* delivery closes a send→deliver leg
//                   (`probe.send_to_deliver`, the per-receiver replication
//                   latency distribution);
//   * frontier advance — each stability type's frontier crossing seq closes
//                   the send→stable leg for every sampled sequence it newly
//                   covers (`probe.send_to_stable.<key>`), and feeds the
//                   per-origin frontier-lag gauge + histogram.
//
// Sampling: only sequences with seq % sample_every == 0 open a span, so the
// non-sampled hot path pays one modulo + branch and the probe stays inside
// the obs layer's ~2.5% budget (bench_obs_overhead pins 1/16 and 1/256).
// Sampling by sequence — not by coin flip — keeps a seeded simulation's
// probe output byte-identical across replays.
//
// Sharing model mirrors the Tracer: StabilizerOptions::probe is a
// shared_ptr; a sim cluster hands all nodes one probe so origin send stamps
// meet remote deliver stamps under the one sim clock. On real transports a
// per-node probe still measures the metric that matters at the origin:
// send→stable uses only the local clock (stability is learned locally from
// the ack frontier).
//
// Windowing: every histogram the probe owns gets a WindowedHistogram view,
// advanced lazily off the caller-supplied timestamps (window_epoch per
// epoch) — no internal clock reads, so windowed exports replay
// byte-identically per seed.
//
// Thread safety: all record paths take one internal mutex (like the
// Tracer); the sampled(seq) pre-check is lock-free, so 15 of 16 sequences
// never touch it at the default rate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace stab::obs {

struct LatencyProbeOptions {
  /// Open a span for 1 in every `sample_every` sequences (>= 1; 1 = all).
  uint32_t sample_every = 16;
  /// Bound on outstanding sampled sends per origin; the oldest span is
  /// evicted (and probe.spans_evicted bumped) past this.
  size_t max_open_spans = 1 << 12;
  /// Windowed-percentile epoch length (measured on the caller's clock).
  Duration window_epoch = std::chrono::milliseconds(250);
  /// Ring depth: exported windowed percentiles cover the last
  /// window_epochs closed epochs.
  size_t window_epochs = 8;
};

class LatencyProbe {
 public:
  explicit LatencyProbe(LatencyProbeOptions opts = {});

  /// Lock-free sampling decision — call before paying for on_send. This
  /// sits on every send/deliver regardless of the sampling rate, so the
  /// power-of-two rates (the common case: 16, 256) take a mask test
  /// instead of a 64-bit division.
  bool sampled(SeqNum seq) const {
    if (seq < 0) return false;
    const uint64_t s = static_cast<uint64_t>(seq);
    return sample_pow2_ ? (s & sample_mask_) == 0 : s % sample_every_ == 0;
  }

  /// Origin sequenced (origin, seq) at time t. No-op unless sampled(seq).
  void on_send(NodeId origin, SeqNum seq, TimePoint t);

  /// Node `node` delivered (origin, seq) at time t. Self-deliveries are
  /// ignored (the origin's own upcall measures no replication).
  void on_deliver(NodeId node, NodeId origin, SeqNum seq, TimePoint t);

  /// The stability frontier of `type_key` on stream `origin` advanced to
  /// `stable_upto` while the stream's high-water sequence was `high_water`.
  /// Closes send→stable for every sampled open span the advance newly
  /// covers and records frontier lag (high_water - stable_upto).
  void on_stable(NodeId origin, SeqNum stable_upto, SeqNum high_water,
                 std::string_view type_key, TimePoint t);

  /// Close every epoch the clock has passed (normally driven internally by
  /// the record hooks; exporters call it before reading windows so a idle
  /// node's stale epochs age out).
  void advance_windows(TimePoint t);

  /// Probe-owned metrics (histograms probe.send_to_deliver,
  /// probe.send_to_stable.<key>, probe.frontier_lag; gauges
  /// probe.frontier_lag.o<origin>; counter probe.spans_evicted).
  MetricsRegistry& registry() { return reg_; }
  const MetricsRegistry& registry() const { return reg_; }

  /// Windowed snapshot of a probe histogram by name ({} when unknown).
  Histogram::Snapshot windowed(std::string_view name) const;

  /// Names of all windowed histograms, sorted.
  std::vector<std::string> window_names() const;

  /// JSONL export of the windowed views, one line per histogram, sorted by
  /// name: {"name":..,"type":"windowed_histogram","window_epochs":..,
  /// "epochs_closed":..,"count":..,"sum":..,"min":..,"max":..,"p50":..,
  /// "p95":..,"p99":..,"p999":..}. Deterministic per seed.
  void export_windows_jsonl(std::ostream& out) const;

  uint32_t sample_every() const { return sample_every_; }

 private:
  struct TypeState {
    // Highest seq already folded into send_to_stable — each (type, seq)
    // pair is recorded exactly once however often frontiers re-fire.
    SeqNum cursor = kNoSeq;
    Histogram* stable_hist = nullptr;  // probe.send_to_stable.<key>, cached
  };
  struct OriginState {
    std::map<SeqNum, TimePoint> open;  // sampled sends awaiting stability
    std::map<std::string, TypeState, std::less<>> types;
    Gauge* lag_gauge = nullptr;  // probe.frontier_lag.o<origin>, cached
  };

  // Get-or-create a probe histogram plus its windowed view. mu_ held.
  Histogram& windowed_hist(std::string_view name);
  void maybe_advance_locked(TimePoint t);

  const LatencyProbeOptions opts_;
  const uint32_t sample_every_;
  const bool sample_pow2_;      // sample_every is a power of two
  const uint64_t sample_mask_;  // sample_every-1 (meaningful when pow2)
  MetricsRegistry reg_;
  // Fixed-name histograms resolved once at construction: on_stable runs on
  // every frontier advance (not just sampled sequences), so its record path
  // must not build names or take registry lookups.
  Histogram* send_to_deliver_ = nullptr;
  Histogram* frontier_lag_ = nullptr;
  mutable std::mutex mu_;
  std::map<NodeId, OriginState> origins_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windows_;
  TimePoint epoch_start_ = kTimeZero;
  bool epoch_started_ = false;
};

}  // namespace stab::obs
