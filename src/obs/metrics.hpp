// Lock-cheap metrics registry: named counters, gauges, and log-bucketed
// latency/size histograms (docs/OBSERVABILITY.md is the metric catalog).
//
// Design (Prometheus-client-style, trimmed to what the hot paths need):
//   * Registration is rare and mutex-guarded; the returned Counter& /
//     Gauge& / Histogram& references are stable for the registry's lifetime,
//     so instrumentation sites resolve their metric once and then touch only
//     relaxed atomics — no lock, no lookup, no branch on the fast path.
//   * All mutation is std::memory_order_relaxed. Counters are never read to
//     make control-flow decisions, only snapshotted for reporting, so torn
//     or stale reads are impossible by construction (each word is a single
//     atomic) and cross-counter skew is acceptable. This is the fix for the
//     pre-obs StabilizerStats hazard: plain uint64_t fields bumped on the
//     TcpTransport IO thread and read from application threads relied
//     entirely on the core's API mutex.
//   * Histograms are log-bucketed with 4 linear sub-buckets per power of
//     two (quarter-octave resolution): values 0..7 are exact, every larger
//     bucket's upper bound is < 1.25x its lower bound, so reported
//     percentiles over-estimate the true nearest-rank sample by at most 25%
//     (tests/obs_test.cpp pins this against a sorted-vector oracle).
//
// One MetricsRegistry per Stabilizer node (its StabilizerStats compat view
// reads through it); obs::global() is the process-wide registry used by
// code without a node identity (the wire codec, transports by default).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stab::obs {

/// Monotonic event count. inc() is one relaxed fetch_add; safe from any
/// thread without external locking.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, frontier lag). set()
/// and add() are single relaxed atomic ops; safe from any thread.
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed histogram of non-negative integer samples (nanoseconds,
/// bytes, sequence lags). record() is one bit-scan plus relaxed atomics;
/// safe from any thread. Percentiles are computed on demand from the bucket
/// counts and report the bucket's upper bound (a <= 25% over-estimate).
class Histogram {
 public:
  // Buckets: 0..3 exact; then 4 linear sub-buckets per power of two up to
  // 2^63, i.e. bucket widths grow 1.19x per step. 252 buckets total.
  static constexpr size_t kNumBuckets = 252;

  static size_t bucket_of(uint64_t v);
  /// Smallest / largest value mapping to bucket `b`.
  static uint64_t bucket_lo(size_t b);
  static uint64_t bucket_hi(size_t b);

  void record(uint64_t v);
  /// Fold `other`'s samples into this histogram (cluster-wide aggregation;
  /// min/max/sum/count merge exactly, buckets add).
  void merge(const Histogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact extremes of the recorded samples (0 when empty).
  uint64_t min() const;
  uint64_t max() const;

  /// Nearest-rank percentile estimate, p in [0,100]. Returns the upper
  /// bound of the bucket holding the rank'th sample, clamped to max().
  /// 0 when empty.
  uint64_t percentile(double p) const;

  struct Snapshot {
    uint64_t count = 0, sum = 0, min = 0, max = 0;
    uint64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0;
  };
  Snapshot snapshot() const;

  /// Raw count of bucket `b` (relaxed load; windowed views delta these).
  uint64_t bucket_count(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Non-empty buckets as (upper_bound, count) pairs, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> nonzero_buckets() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Time-windowed view over a cumulative Histogram.
///
/// A Histogram only accumulates since construction, so its percentiles go
/// stale on long-running nodes: one latency spike an hour ago pins p999
/// forever. A WindowedHistogram watches a source histogram and keeps a ring
/// of the last `window_epochs` *epoch deltas* (bucket-count differences
/// between consecutive advance() calls). snapshot() merges the ring, so the
/// reported p50/p99/p999 reflect only samples recorded during the last
/// N closed epochs — what a scrape wants — while the source histogram keeps
/// its exact since-boot totals.
///
/// advance() is driven by the owner (the LatencyProbe advances lazily off
/// the caller's clock; tests advance explicitly), never by wall time read
/// inside this class — that keeps windowed exports byte-identical across
/// replays of a seeded simulation.
///
/// The window's min/max are bucket-bound estimates (lo of the first /
/// hi of the last non-empty window bucket): deltas cannot recover the exact
/// extremes of a sub-range. Percentiles carry the same <= 25% one-bucket
/// over-estimate bound as Histogram (tests pin both against an oracle).
///
/// Thread safety: advance()/snapshot() take an internal mutex; the source
/// histogram may keep recording concurrently (its bucket loads are relaxed
/// and monotone, so a racing record lands in either the closing or the next
/// epoch — never lost, never double-counted).
class WindowedHistogram {
 public:
  explicit WindowedHistogram(const Histogram& source, size_t window_epochs = 8);

  /// Close the current epoch: fold (source - cumulative-at-last-advance)
  /// into the ring, evicting the oldest epoch once the ring is full.
  void advance();

  size_t window_epochs() const { return window_; }
  /// Total advance() calls so far (epochs closed since construction).
  uint64_t epochs_closed() const;

  /// Merged view of the last window_epochs closed epochs. Samples recorded
  /// after the latest advance() are not included.
  Histogram::Snapshot snapshot() const;

 private:
  struct Delta {
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
    uint64_t count = 0, sum = 0;
  };

  const Histogram& src_;
  const size_t window_;
  mutable std::mutex mu_;
  Delta cum_;                 // cumulative source state at last advance()
  std::vector<Delta> ring_;   // closed epochs, ring_[epochs_ % window_] next
  uint64_t epochs_ = 0;
};

/// Owns named metrics. counter()/gauge()/histogram() get-or-create under a
/// mutex and return stable references — resolve once, mutate lock-free.
/// A name identifies one metric: repeated lookups return the same object.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Optional shard dimension (DESIGN.md §9): a sharded node runs one
  /// registry per shard instance, and the shard id set here rides along in
  /// every export — dump_jsonl emits a "shard" field and the Prometheus
  /// endpoint a {shard="N"} label — so per-shard series stay separable
  /// instead of aggregating silently. -1 (the default) = unsharded: exports
  /// are byte-identical to the pre-shard format.
  void set_shard(int shard) { shard_.store(shard, std::memory_order_relaxed); }
  int shard() const { return shard_.load(std::memory_order_relaxed); }

  /// Lookup without creation (exporters, tests); nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// JSON-lines export: one {"name":...,"type":...} object per metric,
  /// sorted by name. `prefix` is prepended to every name (per-node
  /// namespacing when several registries feed one file). Deterministic for
  /// deterministic metric values — no timestamps, no addresses.
  void dump_jsonl(std::ostream& out, std::string_view prefix = {}) const;

  /// Human-readable aligned table (benches, chaos reports).
  void dump_table(std::ostream& out, std::string_view title = {}) const;

  /// Registered names, sorted (counters, then gauges, then histograms).
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metrics
  std::atomic<int> shard_{-1};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry for instrumentation that has no per-node home:
/// the wire codec's encode/decode accounting and any transport not handed
/// an explicit registry. Never destroyed (leaky singleton), so counters
/// cached in function-local statics stay valid during shutdown.
MetricsRegistry& global();

}  // namespace stab::obs
