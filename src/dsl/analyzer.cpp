#include "dsl/analyzer.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace stab::dsl {

namespace {

class AnalyzeError : public std::runtime_error {
 public:
  explicit AnalyzeError(const std::string& what) : std::runtime_error(what) {}
};

class Analyzer {
 public:
  explicit Analyzer(const AnalyzeContext& ctx) : ctx_(ctx) {
    if (!ctx_.topology) throw AnalyzeError("analyzer: topology is required");
    if (!ctx_.resolve_type)
      throw AnalyzeError("analyzer: type resolver is required");
    if (ctx_.self >= ctx_.topology->num_nodes())
      throw AnalyzeError("analyzer: self node out of range");
  }

  Resolved run(const Expr& root) {
    Resolved out;
    out.root = resolve_call_expr(root);
    out.node_lists = std::move(lists_);
    std::set<NodeId> nodes;
    for (const auto& list : out.node_lists) nodes.insert(list.begin(), list.end());
    out.referenced_nodes.assign(nodes.begin(), nodes.end());
    out.referenced_types.assign(types_.begin(), types_.end());
    return out;
  }

 private:
  // --- set resolution -------------------------------------------------------

  std::vector<NodeId> resolve_atom(const SetAtom& atom) {
    const Topology& topo = *ctx_.topology;
    switch (atom.kind) {
      case SetKind::kAllNodes:
        return topo.all_nodes();
      case SetKind::kMyAzNodes:
        return topo.nodes_in_az(topo.az_of(ctx_.self));
      case SetKind::kMyNode:
        return {ctx_.self};
      case SetKind::kNodeIndex: {
        // $N is the N-th (1-based) entry of the configured node list
        // (paper §III-C: the node "learns its own rank in the overall
        // list"). When node names are numeric (the paper's style), name and
        // rank coincide.
        if (atom.index < 1 ||
            atom.index > static_cast<int64_t>(topo.num_nodes()))
          throw AnalyzeError("unknown WAN node index $" +
                             std::to_string(atom.index));
        return {static_cast<NodeId>(atom.index - 1)};
      }
      case SetKind::kNodeName: {
        auto id = topo.find_node(atom.name);
        if (!id) throw AnalyzeError("unknown WAN node $WNODE_" + atom.name);
        return {*id};
      }
      case SetKind::kAz: {
        if (!topo.has_az(atom.name))
          throw AnalyzeError("unknown availability zone $AZ_" + atom.name);
        return topo.nodes_in_az(atom.name);
      }
    }
    throw AnalyzeError("unreachable set kind");
  }

  std::vector<NodeId> resolve_set(const SetExpr& set) {
    if (set.terms.empty()) throw AnalyzeError("empty set expression");
    std::vector<NodeId> acc = resolve_term(set.terms[0]);
    for (size_t i = 1; i < set.terms.size(); ++i) {
      std::vector<NodeId> minus = resolve_term(set.terms[i]);
      std::erase_if(acc, [&](NodeId n) {
        return std::find(minus.begin(), minus.end(), n) != minus.end();
      });
    }
    return acc;
  }

  std::vector<NodeId> resolve_term(const SetTerm& term) {
    if (std::holds_alternative<SetAtom>(term.node))
      return resolve_atom(std::get<SetAtom>(term.node));
    return resolve_set(*std::get<std::unique_ptr<SetExpr>>(term.node));
  }

  uint32_t intern_list(std::vector<NodeId> list) {
    std::sort(list.begin(), list.end());
    for (uint32_t i = 0; i < lists_.size(); ++i)
      if (lists_[i] == list) return i;
    lists_.push_back(std::move(list));
    return static_cast<uint32_t>(lists_.size() - 1);
  }

  StabilityTypeId resolve_type(const std::string& suffix) {
    const std::string& name = suffix.empty() ? kReceived : suffix;
    auto id = ctx_.resolve_type(name);
    if (!id) throw AnalyzeError("unknown stability type ." + name);
    types_.insert(*id);
    return *id;
  }

  // --- arithmetic folding ---------------------------------------------------

  int64_t fold_arith(const Expr& e) {
    if (std::holds_alternative<IntLit>(e.node))
      return std::get<IntLit>(e.node).value;
    if (std::holds_alternative<SizeOf>(e.node))
      return static_cast<int64_t>(
          resolve_set(std::get<SizeOf>(e.node).set).size());
    if (std::holds_alternative<Arith>(e.node)) {
      const Arith& a = std::get<Arith>(e.node);
      int64_t lhs = fold_arith(*a.lhs);
      int64_t rhs = fold_arith(*a.rhs);
      switch (a.op) {
        case ArithOp::kAdd:
          return lhs + rhs;
        case ArithOp::kSub:
          return lhs - rhs;
        case ArithOp::kMul:
          return lhs * rhs;
        case ArithOp::kDiv:
          if (rhs == 0) throw AnalyzeError("division by zero in predicate");
          return lhs / rhs;
      }
    }
    throw AnalyzeError("expected an arithmetic expression");
  }

  static bool is_arith(const Expr& e) {
    return std::holds_alternative<IntLit>(e.node) ||
           std::holds_alternative<SizeOf>(e.node) ||
           std::holds_alternative<Arith>(e.node);
  }

  // --- expression resolution ------------------------------------------------

  RExprPtr resolve_call_expr(const Expr& e) {
    if (!std::holds_alternative<Call>(e.node))
      throw AnalyzeError("predicate must start with MAX/MIN/KTH_MAX/KTH_MIN");
    const Call& call = std::get<Call>(e.node);
    RCall rc;
    rc.op = call.op;

    size_t first_value_arg = 0;
    if (call.op == Op::kKthMax || call.op == Op::kKthMin) {
      if (call.args.size() < 2)
        throw AnalyzeError(std::string(op_name(call.op)) +
                           " needs a k argument and at least one operand");
      if (!is_arith(*call.args[0]))
        throw AnalyzeError(std::string(op_name(call.op)) +
                           ": first argument (k) must be arithmetic");
      auto k = std::make_unique<RExpr>();
      k->node = RConst{fold_arith(*call.args[0])};
      rc.args.push_back(std::move(k));
      first_value_arg = 1;
    } else if (call.args.empty()) {
      throw AnalyzeError(std::string(op_name(call.op)) +
                         " needs at least one argument");
    }

    for (size_t i = first_value_arg; i < call.args.size(); ++i) {
      const Expr& arg = *call.args[i];
      if (std::holds_alternative<Call>(arg.node)) {
        rc.args.push_back(resolve_call_expr(arg));
      } else if (std::holds_alternative<SetArg>(arg.node)) {
        const SetArg& sa = std::get<SetArg>(arg.node);
        auto g = std::make_unique<RExpr>();
        g->node = RGather{intern_list(resolve_set(sa.set)),
                          resolve_type(sa.suffix)};
        rc.args.push_back(std::move(g));
      } else if (is_arith(arg)) {
        auto c = std::make_unique<RExpr>();
        c->node = RConst{fold_arith(arg)};
        rc.args.push_back(std::move(c));
      } else {
        throw AnalyzeError("unsupported argument kind");
      }
    }
    auto out = std::make_unique<RExpr>();
    out->node = std::move(rc);
    return out;
  }

  static constexpr const char* kReceived = "received";

  const AnalyzeContext& ctx_;
  std::vector<std::vector<NodeId>> lists_;
  std::set<StabilityTypeId> types_;
};

}  // namespace

Result<Resolved> analyze(const Expr& root, const AnalyzeContext& ctx) {
  try {
    Analyzer analyzer(ctx);
    return analyzer.run(root);
  } catch (const AnalyzeError& e) {
    return Result<Resolved>::error(e.what());
  }
}

namespace {
void print_rexpr(std::ostringstream& oss, const RExpr& e,
                 const Resolved& resolved,
                 const std::function<std::string(StabilityTypeId)>& type_name) {
  if (std::holds_alternative<RConst>(e.node)) {
    oss << std::get<RConst>(e.node).value;
  } else if (std::holds_alternative<RGather>(e.node)) {
    const RGather& g = std::get<RGather>(e.node);
    const auto& list = resolved.node_lists[g.list_id];
    std::string suffix;
    std::string tn = type_name ? type_name(g.type) : "";
    if (!tn.empty() && tn != "received") suffix = "." + tn;
    for (size_t i = 0; i < list.size(); ++i) {
      if (i) oss << ",";
      oss << "$" << (list[i] + 1) << suffix;
    }
    if (list.empty()) oss << "<empty>";
  } else {
    const RCall& c = std::get<RCall>(e.node);
    oss << op_name(c.op) << "(";
    for (size_t i = 0; i < c.args.size(); ++i) {
      if (i) oss << ",";
      print_rexpr(oss, *c.args[i], resolved, type_name);
    }
    oss << ")";
  }
}
}  // namespace

std::string expanded_string(
    const Resolved& resolved,
    const std::function<std::string(StabilityTypeId)>& type_name) {
  std::ostringstream oss;
  print_rexpr(oss, *resolved.root, resolved, type_name);
  return oss.str();
}

}  // namespace stab::dsl
