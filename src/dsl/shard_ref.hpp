// Sharded stability suffix for predicate keys (DESIGN.md §9).
//
// A keyspace-sharded deployment registers the same predicate program under
// the same key on every shard's FrontierEngine; a *reference* to the key
// then carries an optional shard scope suffix:
//
//   "checkout"        composite — min-combine the frontier across all shards
//   "checkout@all"    explicit spelling of the composite form
//   "checkout@3"      the frontier of shard 3 alone
//
// The suffix scopes *reads and waits* (which shard's frontier answers), not
// registration — registration always fans out, so every shard can answer
// both scoped and composite references. '@' cannot appear in a plain
// predicate key: registration rejects it (parse_shard_ref on the bare key),
// so suffixed references are unambiguous.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stab::dsl {

struct ShardKeyRef {
  enum class Scope : uint8_t {
    kCombined,  // plain key or "@all": min-combine across every shard
    kOne,       // "@<n>": shard n only
  };

  std::string_view base;  // key without the suffix; aliases the input
  Scope scope = Scope::kCombined;
  uint32_t shard = 0;  // meaningful only when scope == kOne
};

/// Parses a predicate-key reference with an optional "@all" / "@<n>" shard
/// suffix. Returns nullopt on a malformed suffix ("k@", "k@x", "k@1x",
/// "k@@2") or an empty base ("@3") — callers surface that as a bad-key
/// error rather than silently treating the whole string as a key.
inline std::optional<ShardKeyRef> parse_shard_ref(std::string_view ref) {
  ShardKeyRef out;
  const size_t at = ref.rfind('@');
  if (at == std::string_view::npos) {
    if (ref.empty()) return std::nullopt;
    out.base = ref;
    return out;
  }
  out.base = ref.substr(0, at);
  if (out.base.empty() || out.base.find('@') != std::string_view::npos)
    return std::nullopt;
  const std::string_view suffix = ref.substr(at + 1);
  if (suffix == "all") return out;
  if (suffix.empty()) return std::nullopt;
  uint64_t n = 0;
  for (char c : suffix) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<uint64_t>(c - '0');
    if (n > 0xFFFF) return std::nullopt;  // matches the wire envelope range
  }
  out.scope = ShardKeyRef::Scope::kOne;
  out.shard = static_cast<uint32_t>(n);
  return out;
}

/// Canonical printed form: base for kCombined, "base@<n>" for kOne.
inline std::string shard_ref_string(const ShardKeyRef& ref) {
  std::string s(ref.base);
  if (ref.scope == ShardKeyRef::Scope::kOne) {
    s += '@';
    s += std::to_string(ref.shard);
  }
  return s;
}

}  // namespace stab::dsl
