#include "dsl/predicate.hpp"

#include <algorithm>
#include <chrono>

#include "dsl/parser.hpp"

namespace stab::dsl {

Result<Predicate> Predicate::compile(const std::string& source,
                                     const PredicateContext& ctx,
                                     EvalMode mode) {
  auto start = std::chrono::steady_clock::now();
  auto ast = parse(source);
  if (!ast.is_ok()) return Result<Predicate>::error(ast.message());
  auto resolved = analyze(*ast.value(), ctx);
  if (!resolved.is_ok()) return Result<Predicate>::error(resolved.message());

  Predicate p;
  p.source_ = source;
  p.mode_ = mode;
  p.resolved_ = std::move(resolved).value();
  p.program_ = Program::compile(p.resolved_);
  p.compile_time_ = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  return p;
}

int64_t Predicate::eval(const AckSource& acks) const {
  if (!resolved_.root) return kNoSeq;  // empty predicate
  switch (mode_) {
    case EvalMode::kInterpreter:
      return interpret(resolved_, acks);
    case EvalMode::kBytecode:
      return program_.eval_bytecode(acks);
    case EvalMode::kSpecialized:
      return program_.eval_specialized(acks);
  }
  return kNoSeq;
}

bool Predicate::eval_skippable(int64_t old_value, int64_t new_value,
                               int64_t frontier) const {
  if (mode_ != EvalMode::kSpecialized) return false;
  return program_.update_cannot_raise(old_value, new_value, frontier);
}

bool Predicate::references_node(NodeId node) const {
  const auto& nodes = resolved_.referenced_nodes;
  return std::binary_search(nodes.begin(), nodes.end(), node);
}

bool Predicate::references_type(StabilityTypeId type) const {
  const auto& types = resolved_.referenced_types;
  return std::binary_search(types.begin(), types.end(), type);
}

}  // namespace stab::dsl
