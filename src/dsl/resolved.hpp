// Resolved (analyzed) predicate representation.
//
// The analyzer expands macros and variables against a concrete Topology and
// the executing node, folds all arithmetic (SIZEOF is static once the set is
// resolved), and resolves stability-type suffixes through a caller-supplied
// resolver. What remains is a tree of calls over node-list gathers and
// integer constants — trivially compilable to bytecode.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "dsl/ast.hpp"

namespace stab::dsl {

struct RExpr;
using RExprPtr = std::unique_ptr<RExpr>;

/// Reads per-type acked sequence numbers during evaluation. `row(type)` is
/// indexed by NodeId; a missing/short row reads as kNoSeq for those nodes.
class AckSource {
 public:
  virtual ~AckSource() = default;
  virtual std::span<const int64_t> row(StabilityTypeId type) const = 0;
};

struct RGather {
  uint32_t list_id;        // index into Resolved::node_lists
  StabilityTypeId type;
};

struct RConst {
  int64_t value;
};

struct RCall {
  Op op;
  // For kKthMax/kKthMin the first arg is the (already folded) k.
  std::vector<RExprPtr> args;
};

struct RExpr {
  std::variant<RCall, RGather, RConst> node;
};

struct Resolved {
  RExprPtr root;
  std::vector<std::vector<NodeId>> node_lists;
  std::vector<NodeId> referenced_nodes;          // sorted union of lists
  std::vector<StabilityTypeId> referenced_types; // sorted unique
};

}  // namespace stab::dsl
