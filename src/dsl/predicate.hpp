// Public facade of the predicate DSL: one call from source text to an
// executable stability-frontier predicate.
//
//   Predicate::compile("KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)", ctx)
//
// The compiled predicate maps a control-plane snapshot (AckSource) to the
// stability frontier: the highest sequence number for which the predicate's
// consistency condition holds. Because every input counter is monotonic and
// MAX/MIN/KTH_* are monotone functions, the frontier itself is monotonic —
// the property the control plane's incremental re-evaluation relies on.
#pragma once

#include <string>

#include "common/result.hpp"
#include "common/types.hpp"
#include "dsl/analyzer.hpp"
#include "dsl/program.hpp"

namespace stab::dsl {

enum class EvalMode {
  kInterpreter,  // tree-walking reference (ablation baseline)
  kBytecode,     // flat VM
  kSpecialized,  // pattern-specialized loops, bytecode fallback (default)
};

using PredicateContext = AnalyzeContext;

class Predicate {
 public:
  /// Lex + parse + analyze + compile. `mode` selects the execution strategy;
  /// all modes compute identical results.
  static Result<Predicate> compile(const std::string& source,
                                   const PredicateContext& ctx,
                                   EvalMode mode = EvalMode::kSpecialized);

  /// Evaluate the stability frontier against a control-plane snapshot.
  int64_t eval(const AckSource& acks) const;

  /// Eval-avoidance hook (control-plane hot path): true when a monotonic
  /// advance of one referenced ack cell from `old_value` to `new_value`
  /// provably cannot move the frontier away from `frontier` (the cached
  /// result of the last eval against the pre-update table), so eval() may
  /// be skipped. Only answers true on the specialized execution path;
  /// interpreter/bytecode modes always re-evaluate, keeping the ablation
  /// comparison honest. See Program::update_cannot_raise for the proof.
  bool eval_skippable(int64_t old_value, int64_t new_value,
                      int64_t frontier) const;

  const std::string& source() const { return source_; }
  EvalMode mode() const { return mode_; }
  /// True when the specialized fast path is active (not merely requested).
  bool specialized() const { return mode_ == EvalMode::kSpecialized && program_.is_specialized(); }

  /// Nodes whose acks the predicate reads — used by fault handling ("the
  /// primary can adjust the predicate to eliminate the impact", §III-E) and
  /// by the control plane to skip re-evaluation on irrelevant updates.
  const std::vector<NodeId>& referenced_nodes() const {
    return resolved_.referenced_nodes;
  }
  const std::vector<StabilityTypeId>& referenced_types() const {
    return resolved_.referenced_types;
  }
  bool references_node(NodeId node) const;
  bool references_type(StabilityTypeId type) const;

  /// Canonical macro-expanded form (Table III bench / debugging).
  std::string expanded(
      const std::function<std::string(StabilityTypeId)>& type_name = {}) const {
    return expanded_string(resolved_, type_name);
  }

  /// Wall-clock cost of the compile() that produced this predicate.
  Duration compile_time() const { return compile_time_; }

  /// An empty predicate (evaluates to kNoSeq); useful as a container
  /// placeholder before assignment.
  Predicate() = default;

 private:
  std::string source_;
  EvalMode mode_ = EvalMode::kSpecialized;
  Resolved resolved_;
  Program program_;
  Duration compile_time_ = Duration::zero();
};

}  // namespace stab::dsl
