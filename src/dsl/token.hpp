// Token stream for the stability-frontier predicate DSL (paper §III-C).
//
// The lexer substitutes the paper's Flex scanner: same token inventory, but
// hand-written (no generator dependency) and with precise error positions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace stab::dsl {

enum class TokKind {
  kIdent,      // MAX, MIN, KTH_MAX, SIZEOF, suffix names, ...
  kInt,        // 42
  kDollarRef,  // $3, $ALLWNODES, $WNODE_Foo, $AZ_Wisc (text excludes '$')
  kLParen,
  kRParen,
  kComma,
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;   // for kIdent / kDollarRef
  int64_t value = 0;  // for kInt
  size_t pos = 0;     // byte offset in the source, for diagnostics
};

const char* tok_kind_name(TokKind kind);

/// Tokenizes a predicate string. Fails with a position-annotated message on
/// any character outside the DSL alphabet.
Result<std::vector<Token>> lex(const std::string& src);

}  // namespace stab::dsl
