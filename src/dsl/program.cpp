#include "dsl/program.hpp"

#include <algorithm>
#include <cassert>

namespace stab::dsl {

namespace {

int64_t ack_at(const AckSource& acks, StabilityTypeId type, NodeId node) {
  std::span<const int64_t> row = acks.row(type);
  return node < row.size() ? row[node] : kNoSeq;
}

/// k-th largest (kth_max) or k-th smallest (kth_min) of values; 1-based k.
int64_t select_kth(std::vector<int64_t>& values, int64_t k, bool largest) {
  if (k < 1 || k > static_cast<int64_t>(values.size())) return kNoSeq;
  size_t idx = static_cast<size_t>(k - 1);
  if (largest)
    std::nth_element(values.begin(), values.begin() + idx, values.end(),
                     std::greater<int64_t>());
  else
    std::nth_element(values.begin(), values.begin() + idx, values.end());
  return values[idx];
}

// --- interpreter ------------------------------------------------------------

void collect_values(const RExpr& e, const Resolved& resolved,
                    const AckSource& acks, std::vector<int64_t>& out);

int64_t interpret_expr(const RExpr& e, const Resolved& resolved,
                       const AckSource& acks) {
  if (std::holds_alternative<RConst>(e.node))
    return std::get<RConst>(e.node).value;
  if (std::holds_alternative<RGather>(e.node)) {
    // A bare gather used as a scalar (cannot happen from the analyzer, which
    // only places gathers inside calls) — define as MAX of the list.
    const RGather& g = std::get<RGather>(e.node);
    int64_t best = kNoSeq;
    for (NodeId n : resolved.node_lists[g.list_id])
      best = std::max(best, ack_at(acks, g.type, n));
    return best;
  }
  const RCall& call = std::get<RCall>(e.node);
  std::vector<int64_t> values;
  switch (call.op) {
    case Op::kMax: {
      for (const auto& a : call.args) collect_values(*a, resolved, acks, values);
      if (values.empty()) return kNoSeq;
      return *std::max_element(values.begin(), values.end());
    }
    case Op::kMin: {
      for (const auto& a : call.args) collect_values(*a, resolved, acks, values);
      if (values.empty()) return kNoSeq;
      return *std::min_element(values.begin(), values.end());
    }
    case Op::kKthMax:
    case Op::kKthMin: {
      int64_t k = interpret_expr(*call.args[0], resolved, acks);
      for (size_t i = 1; i < call.args.size(); ++i)
        collect_values(*call.args[i], resolved, acks, values);
      return select_kth(values, k, call.op == Op::kKthMax);
    }
  }
  return kNoSeq;
}

void collect_values(const RExpr& e, const Resolved& resolved,
                    const AckSource& acks, std::vector<int64_t>& out) {
  if (std::holds_alternative<RGather>(e.node)) {
    const RGather& g = std::get<RGather>(e.node);
    for (NodeId n : resolved.node_lists[g.list_id])
      out.push_back(ack_at(acks, g.type, n));
    return;
  }
  out.push_back(interpret_expr(e, resolved, acks));
}

}  // namespace

int64_t interpret(const Resolved& resolved, const AckSource& acks) {
  return interpret_expr(*resolved.root, resolved, acks);
}

// --- compiler ---------------------------------------------------------------

namespace {

struct CompileState {
  std::vector<Instr> code;
  std::vector<int64_t> consts;
};

uint32_t intern_const(CompileState& st, int64_t v) {
  for (uint32_t i = 0; i < st.consts.size(); ++i)
    if (st.consts[i] == v) return i;
  st.consts.push_back(v);
  return static_cast<uint32_t>(st.consts.size() - 1);
}

/// Emits code that leaves the flattened values of `e` on the stack; returns
/// how many stack slots were produced.
uint32_t emit_values(const RExpr& e, const Resolved& resolved,
                     CompileState& st);

/// Emits code that leaves exactly one value (the result of `e`) on the stack.
void emit_scalar(const RExpr& e, const Resolved& resolved, CompileState& st) {
  if (std::holds_alternative<RConst>(e.node)) {
    st.code.push_back({OpCode::kPushConst,
                       intern_const(st, std::get<RConst>(e.node).value), 0});
    return;
  }
  if (std::holds_alternative<RGather>(e.node)) {
    const RGather& g = std::get<RGather>(e.node);
    st.code.push_back({OpCode::kGather, g.list_id, g.type});
    st.code.push_back(
        {OpCode::kReduceMax,
         static_cast<uint32_t>(resolved.node_lists[g.list_id].size()), 0});
    return;
  }
  const RCall& call = std::get<RCall>(e.node);
  if (call.op == Op::kMax || call.op == Op::kMin) {
    uint32_t n = 0;
    for (const auto& a : call.args) n += emit_values(*a, resolved, st);
    st.code.push_back({call.op == Op::kMax ? OpCode::kReduceMax
                                           : OpCode::kReduceMin,
                       n, 0});
    return;
  }
  // KTH: push k, then the values, then select.
  emit_scalar(*call.args[0], resolved, st);
  uint32_t n = 0;
  for (size_t i = 1; i < call.args.size(); ++i)
    n += emit_values(*call.args[i], resolved, st);
  st.code.push_back({call.op == Op::kKthMax ? OpCode::kSelectKthMax
                                            : OpCode::kSelectKthMin,
                     n, 0});
}

uint32_t emit_values(const RExpr& e, const Resolved& resolved,
                     CompileState& st) {
  if (std::holds_alternative<RGather>(e.node)) {
    const RGather& g = std::get<RGather>(e.node);
    st.code.push_back({OpCode::kGather, g.list_id, g.type});
    return static_cast<uint32_t>(resolved.node_lists[g.list_id].size());
  }
  emit_scalar(e, resolved, st);
  return 1;
}

}  // namespace

Program Program::compile(const Resolved& resolved) {
  Program p;
  CompileState st;
  emit_scalar(*resolved.root, resolved, st);
  p.code_ = std::move(st.code);
  p.consts_ = std::move(st.consts);
  p.lists_ = resolved.node_lists;

  // --- specialization pass ---------------------------------------------------
  const RCall& root = std::get<RCall>(resolved.root->node);
  auto gather_of = [](const RExpr& e) -> const RGather* {
    return std::holds_alternative<RGather>(e.node) ? &std::get<RGather>(e.node)
                                                   : nullptr;
  };
  // Shape 1: OP(single gather) / KTH(k, single gather).
  bool kth = root.op == Op::kKthMax || root.op == Op::kKthMin;
  size_t first = kth ? 1 : 0;
  if (root.args.size() == first + 1) {
    if (const RGather* g = gather_of(*root.args[first])) {
      p.fast_.kind = FastKind::kSingle;
      p.fast_.op = root.op;
      if (kth) p.fast_.k = std::get<RConst>(root.args[0]->node).value;
      p.fast_.inner.push_back(
          FastInner{root.op == Op::kMin || root.op == Op::kKthMin ? Op::kMin
                                                                  : Op::kMax,
                    g->list_id, g->type});
      // For kSingle the inner op is irrelevant (we reduce/select directly on
      // the gathered row); store the list/type only.
      p.fast_.inner[0].op = root.op;
      return p;
    }
  }
  // Shape 2: OP(MAX(l1), MAX(l2), ...) with every arg a single-gather
  // MAX/MIN — the Table III region predicates.
  bool all_reduced = root.args.size() > first;
  std::vector<FastInner> inner;
  for (size_t i = first; i < root.args.size() && all_reduced; ++i) {
    const RExpr& a = *root.args[i];
    if (!std::holds_alternative<RCall>(a.node)) {
      all_reduced = false;
      break;
    }
    const RCall& c = std::get<RCall>(a.node);
    const RGather* g =
        c.args.size() == 1 ? gather_of(*c.args[0]) : nullptr;
    if ((c.op != Op::kMax && c.op != Op::kMin) || !g) {
      all_reduced = false;
      break;
    }
    inner.push_back(FastInner{c.op, g->list_id, g->type});
  }
  if (all_reduced) {
    p.fast_.kind = FastKind::kOfReduced;
    p.fast_.op = root.op;
    if (kth) p.fast_.k = std::get<RConst>(root.args[0]->node).value;
    p.fast_.inner = std::move(inner);
  }
  return p;
}

bool Program::update_cannot_raise(int64_t old_value, int64_t new_value,
                                  int64_t frontier) const {
  if (fast_.kind == FastKind::kNone) return false;
  // Bound rule: a cell that stays at or below the cached frontier cannot
  // move any MIN/MAX/KTH_* composition away from it.
  if (new_value <= frontier) return true;
  // Binding rule: for a single-gather MIN / KTH_MIN, a cell strictly above
  // the current order statistic is not binding, and raising it keeps it
  // non-binding.
  if (fast_.kind == FastKind::kSingle &&
      (fast_.op == Op::kMin || fast_.op == Op::kKthMin) &&
      old_value > frontier)
    return true;
  return false;
}

// --- bytecode VM --------------------------------------------------------------

int64_t Program::eval_bytecode(const AckSource& acks) const {
  if (code_.empty()) return kNoSeq;  // default-constructed (empty) program
  std::vector<int64_t>& stack = stack_;
  stack.clear();
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushConst:
        stack.push_back(consts_[ins.a]);
        break;
      case OpCode::kGather: {
        std::span<const int64_t> row = acks.row(ins.b);
        for (NodeId n : lists_[ins.a])
          stack.push_back(n < row.size() ? row[n] : kNoSeq);
        break;
      }
      case OpCode::kReduceMax: {
        int64_t best = kNoSeq;
        for (uint32_t i = 0; i < ins.a; ++i) {
          best = std::max(best, stack.back());
          stack.pop_back();
        }
        stack.push_back(best);
        break;
      }
      case OpCode::kReduceMin: {
        int64_t best = kNoSeq;
        bool any = false;
        for (uint32_t i = 0; i < ins.a; ++i) {
          best = any ? std::min(best, stack.back()) : stack.back();
          any = true;
          stack.pop_back();
        }
        stack.push_back(any ? best : kNoSeq);
        break;
      }
      case OpCode::kSelectKthMax:
      case OpCode::kSelectKthMin: {
        scratch_.assign(stack.end() - ins.a, stack.end());
        stack.resize(stack.size() - ins.a);
        int64_t k = stack.back();
        stack.pop_back();
        stack.push_back(
            select_kth(scratch_, k, ins.op == OpCode::kSelectKthMax));
        break;
      }
    }
  }
  assert(stack.size() == 1);
  return stack.back();
}

// --- specialized path ----------------------------------------------------------

int64_t Program::reduce_list(const AckSource& acks, Op op,
                             const std::vector<NodeId>& list,
                             StabilityTypeId type) {
  std::span<const int64_t> row = acks.row(type);
  if (list.empty()) return kNoSeq;
  int64_t best = op == Op::kMax ? kNoSeq : INT64_MAX;
  for (NodeId n : list) {
    int64_t v = n < row.size() ? row[n] : kNoSeq;
    best = op == Op::kMax ? std::max(best, v) : std::min(best, v);
  }
  return best;
}

int64_t Program::eval_specialized(const AckSource& acks) const {
  switch (fast_.kind) {
    case FastKind::kNone:
      return eval_bytecode(acks);
    case FastKind::kSingle: {
      const FastInner& in = fast_.inner[0];
      const std::vector<NodeId>& list = lists_[in.list];
      std::span<const int64_t> row = acks.row(in.type);
      switch (fast_.op) {
        case Op::kMax:
          return reduce_list(acks, Op::kMax, list, in.type);
        case Op::kMin:
          return reduce_list(acks, Op::kMin, list, in.type);
        case Op::kKthMax:
        case Op::kKthMin: {
          scratch_.clear();
          for (NodeId n : list)
            scratch_.push_back(n < row.size() ? row[n] : kNoSeq);
          return select_kth(scratch_, fast_.k, fast_.op == Op::kKthMax);
        }
      }
      return kNoSeq;
    }
    case FastKind::kOfReduced: {
      scratch_.clear();
      for (const FastInner& in : fast_.inner)
        scratch_.push_back(reduce_list(acks, in.op, lists_[in.list], in.type));
      switch (fast_.op) {
        case Op::kMax:
          return *std::max_element(scratch_.begin(), scratch_.end());
        case Op::kMin:
          return *std::min_element(scratch_.begin(), scratch_.end());
        case Op::kKthMax:
        case Op::kKthMin:
          return select_kth(scratch_, fast_.k, fast_.op == Op::kKthMax);
      }
      return kNoSeq;
    }
  }
  return kNoSeq;
}

}  // namespace stab::dsl
