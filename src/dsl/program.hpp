// Compiled predicate program: flat bytecode + a specializing fast path.
//
// This is the repository's substitute for the paper's libgccjit backend
// (DESIGN.md §3). The pipeline is:
//
//   source --lex/parse--> AST --analyze--> Resolved --compile--> Program
//
// and Program offers three execution strategies, all semantically identical
// (differential-tested against each other):
//   * interpreter  — walks the Resolved tree (the ablation baseline),
//   * bytecode VM  — flat instruction array over an operand stack,
//   * specialized  — pattern-matched direct loops for the shapes that occur
//                    in practice (single MAX/MIN/KTH over one gathered list,
//                    and one level of nesting), i.e. "poor man's JIT".
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/resolved.hpp"

namespace stab::dsl {

enum class OpCode : uint8_t {
  kPushConst,    // push imm (a = constant pool index)
  kGather,       // push row[type][n] for each n in list (a = list, b = type)
  kReduceMax,    // pop a values, push max (kNoSeq if a == 0)
  kReduceMin,    // pop a values, push min (kNoSeq if a == 0)
  kSelectKthMax, // pop a values, then pop k; push k-th largest or kNoSeq
  kSelectKthMin, // pop a values, then pop k; push k-th smallest or kNoSeq
};

struct Instr {
  OpCode op;
  uint32_t a = 0;
  uint32_t b = 0;
};

class Program {
 public:
  /// Compiles a resolved predicate. The Resolved's node_lists are copied in.
  static Program compile(const Resolved& resolved);

  /// Bytecode VM execution.
  int64_t eval_bytecode(const AckSource& acks) const;

  /// Specialized fast path; falls back to bytecode when the program shape
  /// was not specializable (is_specialized() tells which).
  int64_t eval_specialized(const AckSource& acks) const;
  bool is_specialized() const { return fast_.kind != FastKind::kNone; }

  /// Binding-cell eval-avoidance hook for the control plane. Given that one
  /// ack cell the program reads advanced monotonically from `old_value` to
  /// `new_value`, and that `frontier` is the cached result of the last full
  /// evaluation against the pre-update table, returns true when a
  /// re-evaluation provably cannot change the result — so the caller may
  /// skip eval() entirely.
  ///
  /// Soundness: every DSL program is a lattice polynomial of the ack cells
  /// (a MIN/MAX/KTH_* composition), so as a function of any single cell v it
  /// has the form g(v) = max(a, min(v, b)) for constants a <= b determined
  /// by the other cells. Two lossless rules follow:
  ///   * bound rule (any specialized shape): if new_value <= frontier, then
  ///     g(old) = frontier and monotonicity give g(new) == frontier;
  ///   * binding rule (MIN / KTH_MIN over a single gather): a cell with
  ///     old_value > frontier sits strictly above the k-th smallest and
  ///     stays there when raised, so the order statistic is unchanged.
  /// Non-specialized shapes conservatively answer false (the bound rule
  /// would still be sound, but only specialized programs cache the shape
  /// information that makes the check O(1) and observable as a counter).
  bool update_cannot_raise(int64_t old_value, int64_t new_value,
                           int64_t frontier) const;

  const std::vector<Instr>& instructions() const { return code_; }
  const std::vector<std::vector<NodeId>>& node_lists() const { return lists_; }

 private:
  // Specialization shapes. kSingle covers OP(list[.type]) and
  // KTH(k, list[.type]); kOfReduced covers OP(MAX(l1), MAX(l2), ...) and the
  // KTH variant — the shape of every Table III predicate.
  enum class FastKind { kNone, kSingle, kOfReduced };
  struct FastInner {
    Op op;  // kMax or kMin reduction over one list
    uint32_t list;
    StabilityTypeId type;
  };
  struct Fast {
    FastKind kind = FastKind::kNone;
    Op op;
    int64_t k = 0;  // for KTH outer ops
    std::vector<FastInner> inner;  // one entry (kSingle) or several
  };

  static int64_t reduce_list(const AckSource& acks, Op op,
                             const std::vector<NodeId>& list,
                             StabilityTypeId type);

  std::vector<Instr> code_;
  std::vector<int64_t> consts_;
  std::vector<std::vector<NodeId>> lists_;
  Fast fast_;
  mutable std::vector<int64_t> stack_;    // reused scratch (single-threaded)
  mutable std::vector<int64_t> scratch_;  // for kth selection
};

/// Reference tree-walking interpreter over the Resolved form. Semantics are
/// the specification; Program must agree with it on every input.
int64_t interpret(const Resolved& resolved, const AckSource& acks);

}  // namespace stab::dsl
