// Abstract syntax tree for the predicate DSL.
//
// Grammar (paper §III-C, "a predicate p has the simple but variadic form
// p = O(x)"):
//
//   predicate := call
//   call      := OP '(' arg (',' arg)* ')'
//   OP        := MAX | MIN | KTH_MAX | KTH_MIN        (also "KTH MAX" etc.)
//   arg       := call | arith | setarg
//   setarg    := setexpr [ '.' IDENT ]                suffix, default .received
//   setexpr   := setterm ( '-' setterm )*             left-assoc set difference
//   setterm   := $-ref | '(' setexpr ')'
//   $-ref     := $<int> | $ALLWNODES | $MYAZWNODES | $MYWNODE | $MYWNODES
//              | $WNODE_<name> | $AZ_<name>
//   arith     := term ( ('+'|'-') term )*
//   term      := factor ( ('*'|'/') factor )*
//   factor    := INT | SIZEOF '(' setexpr ')' | '(' arith ')'
//
// Disambiguation: an argument starting with '$' (or with '(' whose first
// non-'(' token is '$') is a set expression; otherwise it is arithmetic or a
// nested call.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace stab::dsl {

enum class Op { kMax, kMin, kKthMax, kKthMin };
const char* op_name(Op op);

enum class ArithOp { kAdd, kSub, kMul, kDiv };

enum class SetKind {
  kAllNodes,    // $ALLWNODES
  kMyAzNodes,   // $MYAZWNODES
  kMyNode,      // $MYWNODE / $MYWNODES
  kNodeIndex,   // $3   (1-based position in the configured node list)
  kNodeName,    // $WNODE_Foo
  kAz,          // $AZ_Wisc
};

struct SetExpr;

struct SetAtom {
  SetKind kind;
  std::string name;   // for kNodeName / kAz
  int64_t index = 0;  // for kNodeIndex
};

/// A set term: an atom or a parenthesized sub-expression.
struct SetTerm {
  std::variant<SetAtom, std::unique_ptr<SetExpr>> node;
};

/// terms[0] minus terms[1] minus terms[2] ...
struct SetExpr {
  std::vector<SetTerm> terms;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Call {
  Op op;
  std::vector<ExprPtr> args;
};

struct SetArg {
  SetExpr set;
  std::string suffix;  // "" => received
};

struct Arith {
  ArithOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct IntLit {
  int64_t value;
};

struct SizeOf {
  SetExpr set;
};

struct Expr {
  std::variant<Call, SetArg, Arith, IntLit, SizeOf> node;
};

/// Pretty-prints an AST back to (canonical) DSL syntax; used in tests and
/// the Table III bench.
std::string to_dsl_string(const Expr& expr);
std::string to_dsl_string(const SetExpr& set);

}  // namespace stab::dsl
