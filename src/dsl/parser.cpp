#include "dsl/parser.hpp"

#include <cctype>
#include <sstream>

#include "dsl/token.hpp"

namespace stab::dsl {

const char* op_name(Op op) {
  switch (op) {
    case Op::kMax:
      return "MAX";
    case Op::kMin:
      return "MIN";
    case Op::kKthMax:
      return "KTH_MAX";
    case Op::kKthMin:
      return "KTH_MIN";
  }
  return "?";
}

namespace {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  ExprPtr parse_predicate() {
    ExprPtr e = parse_call();
    expect(TokKind::kEnd);
    return e;
  }

 private:
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool check(TokKind kind) const { return peek().kind == kind; }
  bool match(TokKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokKind kind) {
    if (!check(kind)) fail(std::string("expected ") + tok_kind_name(kind));
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream oss;
    oss << "parse error at offset " << peek().pos << ": " << msg << ", got "
        << tok_kind_name(peek().kind);
    if (peek().kind == TokKind::kIdent || peek().kind == TokKind::kDollarRef)
      oss << " '" << peek().text << "'";
    throw ParseError(oss.str());
  }

  static bool ident_is_op(const std::string& s, Op* out) {
    if (s == "MAX") {
      *out = Op::kMax;
      return true;
    }
    if (s == "MIN") {
      *out = Op::kMin;
      return true;
    }
    if (s == "KTH_MAX") {
      *out = Op::kKthMax;
      return true;
    }
    if (s == "KTH_MIN") {
      *out = Op::kKthMin;
      return true;
    }
    return false;
  }

  /// True if the upcoming tokens begin an operator call. Handles the paper's
  /// spaced spelling "KTH MAX(...)" as two idents.
  bool at_call() const {
    if (!check(TokKind::kIdent)) return false;
    Op op;
    if (ident_is_op(peek().text, &op)) return true;
    if (peek().text == "KTH" && peek(1).kind == TokKind::kIdent &&
        (peek(1).text == "MAX" || peek(1).text == "MIN"))
      return true;
    return false;
  }

  ExprPtr parse_call() {
    if (!check(TokKind::kIdent)) fail("expected operator MAX/MIN/KTH_MAX/KTH_MIN");
    Op op;
    std::string head = advance().text;
    if (head == "KTH" && check(TokKind::kIdent)) {
      std::string second = advance().text;
      if (second == "MAX")
        op = Op::kKthMax;
      else if (second == "MIN")
        op = Op::kKthMin;
      else
        fail("expected MAX or MIN after KTH");
    } else if (!ident_is_op(head, &op)) {
      fail("unknown operator '" + head + "'");
    }
    expect(TokKind::kLParen);
    Call call;
    call.op = op;
    call.args.push_back(parse_arg());
    while (match(TokKind::kComma)) call.args.push_back(parse_arg());
    expect(TokKind::kRParen);
    auto e = std::make_unique<Expr>();
    e->node = std::move(call);
    return e;
  }

  /// Is the parenthesized group starting at the current '(' a set
  /// expression? True iff the first token after the run of '('s is a
  /// $-reference.
  bool paren_starts_set() const {
    size_t ahead = 0;
    while (peek(ahead).kind == TokKind::kLParen) ++ahead;
    return peek(ahead).kind == TokKind::kDollarRef;
  }

  ExprPtr parse_arg() {
    if (at_call()) return parse_call();
    if (check(TokKind::kDollarRef) ||
        (check(TokKind::kLParen) && paren_starts_set()))
      return parse_set_arg();
    return parse_arith();
  }

  ExprPtr parse_set_arg() {
    SetArg arg;
    arg.set = parse_set_expr();
    if (match(TokKind::kDot)) {
      if (!check(TokKind::kIdent)) fail("expected stability type after '.'");
      arg.suffix = advance().text;
    }
    auto e = std::make_unique<Expr>();
    e->node = std::move(arg);
    return e;
  }

  SetExpr parse_set_expr() {
    SetExpr set;
    set.terms.push_back(parse_set_term());
    while (check(TokKind::kMinus)) {
      advance();
      set.terms.push_back(parse_set_term());
    }
    return set;
  }

  SetTerm parse_set_term() {
    SetTerm term;
    if (match(TokKind::kLParen)) {
      auto inner = std::make_unique<SetExpr>(parse_set_expr());
      expect(TokKind::kRParen);
      term.node = std::move(inner);
      return term;
    }
    if (!check(TokKind::kDollarRef)) fail("expected $-reference in set expression");
    term.node = classify_ref(advance());
    return term;
  }

  SetAtom classify_ref(const Token& tok) const {
    const std::string& s = tok.text;
    SetAtom atom;
    if (s == "ALLWNODES") {
      atom.kind = SetKind::kAllNodes;
    } else if (s == "MYAZWNODES") {
      atom.kind = SetKind::kMyAzNodes;
    } else if (s == "MYWNODE" || s == "MYWNODES") {
      // The paper uses both spellings ($MYWNODE in §III-C, $MYWNODES in the
      // set-difference example); accept both.
      atom.kind = SetKind::kMyNode;
    } else if (s.rfind("WNODE_", 0) == 0) {
      atom.kind = SetKind::kNodeName;
      atom.name = s.substr(6);
      if (atom.name.empty())
        throw ParseError("parse error at offset " + std::to_string(tok.pos) +
                         ": $WNODE_ needs a node name");
    } else if (s.rfind("AZ_", 0) == 0) {
      atom.kind = SetKind::kAz;
      atom.name = s.substr(3);
      if (atom.name.empty())
        throw ParseError("parse error at offset " + std::to_string(tok.pos) +
                         ": $AZ_ needs an availability zone name");
    } else if (!s.empty() &&
               std::isdigit(static_cast<unsigned char>(s[0]))) {
      atom.kind = SetKind::kNodeIndex;
      atom.index = 0;
      for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
          throw ParseError("parse error at offset " + std::to_string(tok.pos) +
                           ": malformed node index $" + s);
        atom.index = atom.index * 10 + (c - '0');
      }
    } else {
      throw ParseError("parse error at offset " + std::to_string(tok.pos) +
                       ": unknown reference $" + s);
    }
    return atom;
  }

  // arith := term (('+'|'-') term)*
  ExprPtr parse_arith() {
    ExprPtr lhs = parse_term();
    while (check(TokKind::kPlus) || check(TokKind::kMinus)) {
      ArithOp op = advance().kind == TokKind::kPlus ? ArithOp::kAdd
                                                    : ArithOp::kSub;
      ExprPtr rhs = parse_term();
      auto e = std::make_unique<Expr>();
      e->node = Arith{op, std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (check(TokKind::kStar) || check(TokKind::kSlash)) {
      ArithOp op = advance().kind == TokKind::kStar ? ArithOp::kMul
                                                    : ArithOp::kDiv;
      ExprPtr rhs = parse_factor();
      auto e = std::make_unique<Expr>();
      e->node = Arith{op, std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    if (check(TokKind::kInt)) {
      auto e = std::make_unique<Expr>();
      e->node = IntLit{advance().value};
      return e;
    }
    if (check(TokKind::kIdent) && peek().text == "SIZEOF") {
      advance();
      expect(TokKind::kLParen);
      SizeOf so{parse_set_expr()};
      expect(TokKind::kRParen);
      auto e = std::make_unique<Expr>();
      e->node = std::move(so);
      return e;
    }
    if (match(TokKind::kLParen)) {
      ExprPtr inner = parse_arith();
      expect(TokKind::kRParen);
      return inner;
    }
    fail("expected integer, SIZEOF, or '('");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> parse(const std::string& src) {
  auto toks = lex(src);
  if (!toks.is_ok()) return Result<ExprPtr>::error(toks.message());
  try {
    Parser p(std::move(toks).value());
    return p.parse_predicate();
  } catch (const ParseError& e) {
    return Result<ExprPtr>::error(e.what());
  }
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

namespace {
void print_set(std::ostringstream& oss, const SetExpr& set);

void print_term(std::ostringstream& oss, const SetTerm& term) {
  if (std::holds_alternative<SetAtom>(term.node)) {
    const SetAtom& atom = std::get<SetAtom>(term.node);
    switch (atom.kind) {
      case SetKind::kAllNodes:
        oss << "$ALLWNODES";
        break;
      case SetKind::kMyAzNodes:
        oss << "$MYAZWNODES";
        break;
      case SetKind::kMyNode:
        oss << "$MYWNODE";
        break;
      case SetKind::kNodeIndex:
        oss << "$" << atom.index;
        break;
      case SetKind::kNodeName:
        oss << "$WNODE_" << atom.name;
        break;
      case SetKind::kAz:
        oss << "$AZ_" << atom.name;
        break;
    }
  } else {
    oss << "(";
    print_set(oss, *std::get<std::unique_ptr<SetExpr>>(term.node));
    oss << ")";
  }
}

void print_set(std::ostringstream& oss, const SetExpr& set) {
  for (size_t i = 0; i < set.terms.size(); ++i) {
    if (i) oss << "-";
    print_term(oss, set.terms[i]);
  }
}

void print_expr(std::ostringstream& oss, const Expr& expr) {
  if (std::holds_alternative<Call>(expr.node)) {
    const Call& call = std::get<Call>(expr.node);
    oss << op_name(call.op) << "(";
    for (size_t i = 0; i < call.args.size(); ++i) {
      if (i) oss << ",";
      print_expr(oss, *call.args[i]);
    }
    oss << ")";
  } else if (std::holds_alternative<SetArg>(expr.node)) {
    const SetArg& arg = std::get<SetArg>(expr.node);
    bool parens = arg.set.terms.size() > 1 && !arg.suffix.empty();
    if (parens) oss << "(";
    print_set(oss, arg.set);
    if (parens) oss << ")";
    if (!arg.suffix.empty()) oss << "." << arg.suffix;
  } else if (std::holds_alternative<Arith>(expr.node)) {
    const Arith& a = std::get<Arith>(expr.node);
    oss << "(";
    print_expr(oss, *a.lhs);
    switch (a.op) {
      case ArithOp::kAdd:
        oss << "+";
        break;
      case ArithOp::kSub:
        oss << "-";
        break;
      case ArithOp::kMul:
        oss << "*";
        break;
      case ArithOp::kDiv:
        oss << "/";
        break;
    }
    print_expr(oss, *a.rhs);
    oss << ")";
  } else if (std::holds_alternative<IntLit>(expr.node)) {
    oss << std::get<IntLit>(expr.node).value;
  } else {
    oss << "SIZEOF(";
    print_set(oss, std::get<SizeOf>(expr.node).set);
    oss << ")";
  }
}
}  // namespace

std::string to_dsl_string(const Expr& expr) {
  std::ostringstream oss;
  print_expr(oss, expr);
  return oss.str();
}

std::string to_dsl_string(const SetExpr& set) {
  std::ostringstream oss;
  print_set(oss, set);
  return oss.str();
}

}  // namespace stab::dsl
