#include <cctype>

#include "dsl/token.hpp"

namespace stab::dsl {

const char* tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kDollarRef:
      return "$-reference";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kComma:
      return "','";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> lex(const std::string& src) {
  using R = Result<std::vector<Token>>;
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '(':
        out.push_back({TokKind::kLParen, "", 0, start});
        ++i;
        continue;
      case ')':
        out.push_back({TokKind::kRParen, "", 0, start});
        ++i;
        continue;
      case ',':
        out.push_back({TokKind::kComma, "", 0, start});
        ++i;
        continue;
      case '.':
        out.push_back({TokKind::kDot, "", 0, start});
        ++i;
        continue;
      case '+':
        out.push_back({TokKind::kPlus, "", 0, start});
        ++i;
        continue;
      case '-':
        out.push_back({TokKind::kMinus, "", 0, start});
        ++i;
        continue;
      case '*':
        out.push_back({TokKind::kStar, "", 0, start});
        ++i;
        continue;
      case '/':
        out.push_back({TokKind::kSlash, "", 0, start});
        ++i;
        continue;
      default:
        break;
    }
    if (c == '$') {
      ++i;
      size_t ref_start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      if (i == ref_start)
        return R::error("lex error at offset " + std::to_string(start) +
                        ": '$' must be followed by a node reference");
      out.push_back(
          {TokKind::kDollarRef, src.substr(ref_start, i - ref_start), 0,
           start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int64_t value = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) {
        value = value * 10 + (src[i] - '0');
        if (value > (int64_t{1} << 40))
          return R::error("lex error at offset " + std::to_string(start) +
                          ": integer literal too large");
        ++i;
      }
      out.push_back({TokKind::kInt, "", value, start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && is_ident_char(src[i])) ++i;
      out.push_back({TokKind::kIdent, src.substr(start, i - start), 0, start});
      continue;
    }
    return R::error("lex error at offset " + std::to_string(start) +
                    ": unexpected character '" + std::string(1, c) + "'");
  }
  out.push_back({TokKind::kEnd, "", 0, n});
  return out;
}

}  // namespace stab::dsl
