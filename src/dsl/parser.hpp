// Recursive-descent parser for the predicate DSL (substitutes the paper's
// Bison grammar; see ast.hpp for the grammar).
#pragma once

#include <memory>
#include <string>

#include "common/result.hpp"
#include "dsl/ast.hpp"

namespace stab::dsl {

/// Parses a predicate string into an AST. The top level must be a call
/// (MAX/MIN/KTH_MAX/KTH_MIN). Errors carry byte offsets.
Result<ExprPtr> parse(const std::string& src);

}  // namespace stab::dsl
