// Semantic analysis: AST -> Resolved (see resolved.hpp).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/result.hpp"
#include "config/topology.hpp"
#include "dsl/ast.hpp"
#include "dsl/resolved.hpp"

namespace stab::dsl {

struct AnalyzeContext {
  const Topology* topology = nullptr;  // required
  NodeId self = 0;                     // the node evaluating the predicate
  /// Maps a stability-type suffix ("received", "persisted", "verified", ...)
  /// to a type id. Returning nullopt makes analysis fail with "unknown
  /// stability type". The empty suffix is resolved as "received"
  /// (paper §III-C: "If the .type is omitted, we assume .received").
  std::function<std::optional<StabilityTypeId>(const std::string&)>
      resolve_type;
};

/// Resolves macros/variables, folds arithmetic, checks KTH arity rules.
/// Analysis errors (unknown node, unknown AZ, division by zero, non-scalar
/// k, ...) are returned, not thrown.
Result<Resolved> analyze(const Expr& root, const AnalyzeContext& ctx);

/// Canonical fully-expanded form, e.g. `MAX($2,$3,$4)` — node references are
/// printed as 1-based $indices with an explicit `.type` suffix only for
/// non-received types. Used by tests and the Table III bench.
std::string expanded_string(const Resolved& resolved,
                            const std::function<std::string(StabilityTypeId)>&
                                type_name);

}  // namespace stab::dsl
