// Multi-Paxos baseline — the PhxPaxos stand-in for the Fig 6 comparison
// (DESIGN.md §3).
//
// Classic leader-based multi-Paxos over the same transports Stabilizer
// uses:
//   * Phase 1 (PREPARE/PROMISE) establishes a leader ballot covering all
//     instances; competing proposers are resolved by ballot order and NACKs
//     trigger re-prepare with a higher round.
//   * Phase 2 (ACCEPT/ACCEPTED) is pipelined: the leader streams one
//     instance per client value and commits each when a majority of members
//     (leader included) accepted.
//   * COMMIT is broadcast so every member learns; members missing the value
//     (lossy links) fetch it with LEARN_REQ/LEARN catch-up.
//   * A retry timer re-drives uncommitted instances, giving liveness under
//     message loss.
//
// The topology-blind majority quorum is the point of the comparison: unlike
// a Stabilizer predicate, Paxos cannot be told that "one copy in each of two
// remote regions" is enough — it always waits for floor(N/2)+1 members
// (§VI-B: "The Paxos is typically indifferent to topology").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "net/transport.hpp"

namespace stab::paxos {

using Ballot = uint64_t;  // (round << 16) | proposer node id
using InstanceId = int64_t;
inline constexpr InstanceId kNoInstance = -1;

struct PaxosOptions {
  std::vector<NodeId> members;
  NodeId self = 0;
  /// Run Phase 1 immediately (the designated leader in benches/tests).
  bool start_as_leader = false;
  /// Re-drive uncommitted instances this often; zero disables (lossless
  /// transports).
  Duration retry_interval = Duration::zero();
};

struct PaxosStats {
  uint64_t prepares_sent = 0;
  uint64_t accepts_sent = 0;
  uint64_t commits_sent = 0;
  uint64_t nacks_received = 0;
  uint64_t retries = 0;
  uint64_t catchups = 0;
};

class PaxosNode {
 public:
  using CommitHandler = std::function<void(InstanceId, BytesView value)>;

  PaxosNode(PaxosOptions options, Transport& transport);
  ~PaxosNode();

  NodeId self() const { return options_.self; }
  bool is_leader() const { return leading_; }

  /// Proposer API (call on the leader): replicate `value`; `on_commit` fires
  /// when a majority accepted it. Values submitted before leadership is
  /// established are queued behind Phase 1.
  void propose(Bytes value, uint64_t virtual_size,
               std::function<void(InstanceId)> on_commit);

  /// Learner API: fires for every instance in commit order (contiguous).
  void set_commit_handler(CommitHandler handler);

  /// Highest instance such that all instances <= it are learned locally.
  InstanceId learned_through() const;
  /// The learned value of one instance (nullopt if not yet learned).
  std::optional<Bytes> learned_value(InstanceId instance) const;

  const PaxosStats& stats() const { return stats_; }

  /// Force a new, higher ballot and re-run Phase 1 (used by tests to create
  /// competing proposers).
  void start_leadership();

 private:
  struct Proposal {
    Bytes value;
    uint64_t virtual_size = 0;
    /// Highest ballot at which some acceptor reported this instance's value
    /// (0 = our own fresh value). Paxos' Phase 1 rule: the leader must
    /// re-propose the highest-ballot reported value, never its own.
    Ballot adopted_ballot = 0;
    std::set<NodeId> accepted_by;
    bool committed = false;
    std::function<void(InstanceId)> on_commit;
  };
  struct AcceptedEntry {
    Ballot ballot = 0;
    Bytes value;
  };

  size_t majority() const { return options_.members.size() / 2 + 1; }
  Ballot make_ballot(uint64_t round) const {
    return (round << 16) | options_.self;
  }
  void broadcast(const Bytes& frame, uint64_t virtual_size = 0);
  void on_frame(NodeId src, BytesView frame, uint64_t wire_size);
  void adopt_accepted(InstanceId instance, Ballot aballot, Bytes value);
  void reconcile_learned_proposals();
  void on_leadership_established();
  void send_accept(InstanceId instance, bool is_retry);
  void drive_pending();
  void deliver_learned();
  void schedule_retry();

  PaxosOptions options_;
  Transport& transport_;
  CommitHandler commit_handler_;

  // proposer state
  bool leading_ = false;
  uint64_t round_ = 0;
  Ballot my_ballot_ = 0;
  std::set<NodeId> promises_;
  std::map<InstanceId, Proposal> proposals_;
  std::vector<std::pair<Bytes, std::pair<uint64_t, std::function<void(InstanceId)>>>>
      pending_;  // values queued before leadership
  InstanceId next_instance_ = 0;

  // acceptor state
  Ballot promised_ = 0;
  std::map<InstanceId, AcceptedEntry> accepted_;

  // learner state
  std::map<InstanceId, Bytes> learned_;
  InstanceId delivered_through_ = kNoInstance;

  TimerId retry_timer_ = kInvalidTimer;
  bool reprepare_scheduled_ = false;
  bool stopped_ = false;
  PaxosStats stats_;
};

}  // namespace stab::paxos
