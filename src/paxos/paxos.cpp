#include "paxos/paxos.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/logging.hpp"

namespace stab::paxos {

namespace {
// Paxos frames use their own kind space (>= 0x60), distinct from Stabilizer
// and application frames.
constexpr uint8_t kPrepare = 0x60;
constexpr uint8_t kPromise = 0x61;
constexpr uint8_t kAccept = 0x62;
constexpr uint8_t kAccepted = 0x63;
constexpr uint8_t kNack = 0x64;
constexpr uint8_t kCommit = 0x65;
constexpr uint8_t kLearnReq = 0x66;
constexpr uint8_t kLearn = 0x67;
}  // namespace

PaxosNode::PaxosNode(PaxosOptions options, Transport& transport)
    : options_(std::move(options)), transport_(transport) {
  if (std::find(options_.members.begin(), options_.members.end(),
                options_.self) == options_.members.end())
    throw std::invalid_argument("paxos: self must be a member");
  transport_.set_receive_handler(
      [this](NodeId src, BytesView frame, uint64_t wire) {
        on_frame(src, frame, wire);
      });
  if (options_.start_as_leader) start_leadership();
  if (options_.retry_interval > Duration::zero()) schedule_retry();
}

PaxosNode::~PaxosNode() {
  stopped_ = true;
  if (retry_timer_ != kInvalidTimer) transport_.env().cancel(retry_timer_);
}

void PaxosNode::set_commit_handler(CommitHandler handler) {
  commit_handler_ = std::move(handler);
}

void PaxosNode::broadcast(const Bytes& frame, uint64_t virtual_size) {
  for (NodeId m : options_.members) {
    if (m == options_.self) continue;
    transport_.send(m, frame, frame.size() + virtual_size);
  }
}

void PaxosNode::start_leadership() {
  ++round_;
  my_ballot_ = make_ballot(round_);
  leading_ = false;
  promises_.clear();
  // Self-promise; our own acceptor state counts as a promise's report.
  if (my_ballot_ >= promised_) {
    promised_ = my_ballot_;
    promises_.insert(options_.self);
    for (const auto& [instance, entry] : accepted_)
      adopt_accepted(instance, entry.ballot, entry.value);
  }
  Writer w(16);
  w.u8(kPrepare);
  w.u64(my_ballot_);
  broadcast(w.bytes());
  ++stats_.prepares_sent;
  if (promises_.size() >= majority()) on_leadership_established();
}

void PaxosNode::adopt_accepted(InstanceId instance, Ballot aballot,
                               Bytes value) {
  next_instance_ = std::max(next_instance_, instance + 1);
  if (learned_.count(instance)) return;  // already chosen
  auto it = proposals_.find(instance);
  if (it == proposals_.end()) {
    Proposal& p = proposals_[instance];
    p.value = std::move(value);
    p.adopted_ballot = aballot;
    if (leading_) {
      // A promise that straggled in after leadership was established
      // reported an instance we did not know: drive it under our ballot.
      if (my_ballot_ >= promised_) {
        promised_ = my_ballot_;
        accepted_[instance] = AcceptedEntry{my_ballot_, p.value};
        p.accepted_by.insert(options_.self);
      }
      send_accept(instance, false);
    }
  } else if (!leading_ && !it->second.committed &&
             aballot > it->second.adopted_ballot) {
    // Phase 1 adoption rule: highest-ballot reported value wins. Once we
    // are leading, accepts for this instance are already in flight under
    // our ballot and MUST NOT change value (same ballot, one value); the
    // intersection argument guarantees any possibly-chosen value was
    // reported by the first-majority quorum, so late reports are safely
    // ignored for driven instances.
    it->second.value = std::move(value);
    it->second.adopted_ballot = aballot;
  }
}

/// An instance can become learned (via another leader's COMMIT) while we
/// still hold an uncommitted proposal for it. That instance is decided and
/// must never be re-driven: if our fresh value lost the slot, requeue it for
/// a new instance; if our value actually won, fire its callback.
void PaxosNode::reconcile_learned_proposals() {
  for (auto it = proposals_.begin(); it != proposals_.end();) {
    Proposal& p = it->second;
    auto learned = learned_.find(it->first);
    if (p.committed || learned == learned_.end()) {
      ++it;
      continue;
    }
    if (learned->second == p.value) {
      if (p.on_commit) p.on_commit(it->first);
    } else if (p.adopted_ballot == 0) {
      pending_.emplace_back(
          std::move(p.value),
          std::make_pair(p.virtual_size, std::move(p.on_commit)));
    }
    it = proposals_.erase(it);
  }
}

void PaxosNode::on_leadership_established() {
  leading_ = true;
  reconcile_learned_proposals();
  // Re-drive every uncommitted instance under our ballot (with adopted
  // values where Phase 1 reported any), then the queued fresh values.
  for (auto& [instance, p] : proposals_) {
    if (p.committed) continue;
    p.accepted_by.clear();
    if (my_ballot_ >= promised_) {
      promised_ = my_ballot_;
      accepted_[instance] = AcceptedEntry{my_ballot_, p.value};
      p.accepted_by.insert(options_.self);
    }
    send_accept(instance, false);
  }
  drive_pending();
}

void PaxosNode::propose(Bytes value, uint64_t virtual_size,
                        std::function<void(InstanceId)> on_commit) {
  if (!leading_) {
    pending_.emplace_back(
        std::move(value),
        std::make_pair(virtual_size, std::move(on_commit)));
    if (my_ballot_ == 0) start_leadership();
    return;
  }
  // Never assign a decided or occupied instance: another leader may have
  // driven instances we only know through learning.
  InstanceId instance = next_instance_++;
  while (learned_.count(instance) || proposals_.count(instance))
    instance = next_instance_++;
  Proposal& p = proposals_[instance];
  p.value = std::move(value);
  p.virtual_size = virtual_size;
  p.on_commit = std::move(on_commit);
  // Self-accept.
  if (my_ballot_ >= promised_) {
    promised_ = my_ballot_;
    accepted_[instance] = AcceptedEntry{my_ballot_, p.value};
    p.accepted_by.insert(options_.self);
  }
  send_accept(instance, /*is_retry=*/false);
  if (p.accepted_by.size() >= majority() && !p.committed) {
    // Single-member cluster commits immediately.
    p.committed = true;
    learned_[instance] = p.value;
    deliver_learned();
    if (p.on_commit) p.on_commit(instance);
  }
}

void PaxosNode::send_accept(InstanceId instance, bool is_retry) {
  const Proposal& p = proposals_.at(instance);
  Writer w(p.value.size() + 32);
  w.u8(kAccept);
  w.u64(my_ballot_);
  w.i64(instance);
  w.u64(p.virtual_size);
  w.blob(p.value);
  Bytes frame = std::move(w).take();
  for (NodeId m : options_.members) {
    if (m == options_.self || p.accepted_by.count(m)) continue;
    transport_.send(m, frame, frame.size() + p.virtual_size);
    ++stats_.accepts_sent;
    if (is_retry) ++stats_.retries;
  }
}

void PaxosNode::drive_pending() {
  auto queued = std::move(pending_);
  pending_.clear();
  for (auto& [value, rest] : queued)
    propose(std::move(value), rest.first, std::move(rest.second));
}

void PaxosNode::deliver_learned() {
  while (true) {
    auto it = learned_.find(delivered_through_ + 1);
    if (it == learned_.end()) break;
    ++delivered_through_;
    if (commit_handler_) commit_handler_(it->first, it->second);
  }
}

InstanceId PaxosNode::learned_through() const { return delivered_through_; }

std::optional<Bytes> PaxosNode::learned_value(InstanceId instance) const {
  auto it = learned_.find(instance);
  if (it == learned_.end()) return std::nullopt;
  return it->second;
}

void PaxosNode::schedule_retry() {
  retry_timer_ = transport_.env().schedule_after(
      options_.retry_interval, [this] {
        if (stopped_) return;
        if (leading_) {
          reconcile_learned_proposals();
          drive_pending();
          for (auto& [instance, p] : proposals_)
            if (!p.committed) send_accept(instance, /*is_retry=*/true);
        } else if (my_ballot_ != 0 && !pending_.empty()) {
          start_leadership();  // keep trying to become leader
        }
        // Re-request missing learned values below the horizon.
        if (!learned_.empty()) {
          InstanceId horizon = learned_.rbegin()->first;
          for (InstanceId i = delivered_through_ + 1; i < horizon; ++i) {
            if (learned_.count(i)) continue;
            Writer w(16);
            w.u8(kLearnReq);
            w.i64(i);
            broadcast(w.bytes());
            ++stats_.catchups;
          }
        }
        schedule_retry();
      });
}

void PaxosNode::on_frame(NodeId src, BytesView frame, uint64_t wire_size) {
  (void)wire_size;
  try {
    Reader r(frame);
    uint8_t kind = r.u8();
    switch (kind) {
      case kPrepare: {
        Ballot b = r.u64();
        if (b >= promised_) {
          promised_ = b;
          if (leading_ && b > my_ballot_) leading_ = false;  // deposed
          // Promise, reporting everything we've accepted so the new leader
          // can re-propose it.
          Writer w(64);
          w.u8(kPromise);
          w.u64(b);
          w.u32(static_cast<uint32_t>(accepted_.size()));
          for (const auto& [instance, entry] : accepted_) {
            w.i64(instance);
            w.u64(entry.ballot);
            w.blob(entry.value);
          }
          transport_.send(src, std::move(w).take());
        } else {
          Writer w(16);
          w.u8(kNack);
          w.u64(promised_);
          transport_.send(src, std::move(w).take());
        }
        break;
      }
      case kPromise: {
        Ballot b = r.u64();
        if (b != my_ballot_ || leading_) {
          // Stale promise for an old ballot, or already leading — but still
          // adopt reported accepted values if we're collecting.
          if (b != my_ballot_) break;
        }
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i) {
          InstanceId instance = r.i64();
          Ballot aballot = r.u64();
          Bytes value = r.blob();
          adopt_accepted(instance, aballot, std::move(value));
        }
        promises_.insert(src);
        if (!leading_ && promises_.size() >= majority())
          on_leadership_established();
        break;
      }
      case kAccept: {
        Ballot b = r.u64();
        InstanceId instance = r.i64();
        uint64_t virtual_size = r.u64();
        (void)virtual_size;
        Bytes value = r.blob();
        if (b >= promised_) {
          promised_ = b;
          if (leading_ && b > my_ballot_) leading_ = false;
          accepted_[instance] = AcceptedEntry{b, std::move(value)};
          Writer w(24);
          w.u8(kAccepted);
          w.u64(b);
          w.i64(instance);
          transport_.send(src, std::move(w).take());
        } else {
          Writer w(16);
          w.u8(kNack);
          w.u64(promised_);
          transport_.send(src, std::move(w).take());
        }
        break;
      }
      case kAccepted: {
        Ballot b = r.u64();
        InstanceId instance = r.i64();
        if (b != my_ballot_) break;
        auto it = proposals_.find(instance);
        if (it == proposals_.end() || it->second.committed) break;
        Proposal& p = it->second;
        p.accepted_by.insert(src);
        if (p.accepted_by.size() >= majority()) {
          p.committed = true;
          Writer w(24);
          w.u8(kCommit);
          w.i64(instance);
          w.u64(my_ballot_);  // identifies WHICH accepted value was chosen
          broadcast(w.bytes());
          ++stats_.commits_sent;
          if (!learned_.count(instance)) {
            learned_[instance] = p.value;
            deliver_learned();
          }
          if (p.on_commit) p.on_commit(instance);
        }
        break;
      }
      case kNack: {
        Ballot promised = r.u64();
        ++stats_.nacks_received;
        if (promised > my_ballot_) {
          // Someone holds a higher ballot. Step down and re-contend with a
          // higher round after a deposed-proposer backoff — immediate
          // re-prepare would duel forever with the other proposer.
          // Uncommitted proposals keep their instances; they are re-driven
          // under the new ballot once Phase 1 completes.
          leading_ = false;
          round_ = (promised >> 16) + 1;
          if (!reprepare_scheduled_) {
            reprepare_scheduled_ = true;
            Duration backoff = millis(20) * (options_.self + 1);
            transport_.env().schedule_after(backoff, [this] {
              reprepare_scheduled_ = false;
              if (stopped_ || leading_) return;
              bool has_work = !pending_.empty();
              for (auto& [instance, p] : proposals_)
                if (!p.committed) has_work = true;
              if (has_work) start_leadership();
            });
          }
        }
        break;
      }
      case kCommit: {
        InstanceId instance = r.i64();
        Ballot ballot = r.u64();
        if (learned_.count(instance)) break;
        auto it = accepted_.find(instance);
        if (it != accepted_.end() && it->second.ballot == ballot) {
          learned_[instance] = it->second.value;
          deliver_learned();
        } else {
          // We missed the chosen ACCEPT (or hold a stale-ballot value):
          // catch up from the committer.
          Writer w(16);
          w.u8(kLearnReq);
          w.i64(instance);
          transport_.send(src, std::move(w).take());
          ++stats_.catchups;
        }
        break;
      }
      case kLearnReq: {
        InstanceId instance = r.i64();
        auto it = learned_.find(instance);
        if (it == learned_.end()) break;
        Writer w(it->second.size() + 16);
        w.u8(kLearn);
        w.i64(instance);
        w.blob(it->second);
        transport_.send(src, std::move(w).take());
        break;
      }
      case kLearn: {
        InstanceId instance = r.i64();
        Bytes value = r.blob();
        if (!learned_.count(instance)) {
          learned_[instance] = std::move(value);
          deliver_learned();
        }
        break;
      }
      default:
        STAB_WARN("paxos: unknown frame kind " << int(kind));
    }
  } catch (const CodecError& e) {
    STAB_ERROR("paxos: bad frame from " << src << ": " << e.what());
  }
}

}  // namespace stab::paxos
