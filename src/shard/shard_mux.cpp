#include "shard/shard_mux.hpp"

#include "data/wire.hpp"

namespace stab::shard {

/// One shard's view of the muxed link. Sends tag; receives come pre-routed
/// from the mux's demux handler.
class ShardMux::Facet : public Transport {
 public:
  Facet(Transport& base, uint32_t shard) : base_(base), shard_(shard) {}

  NodeId self() const override { return base_.self(); }
  size_t cluster_size() const override { return base_.cluster_size(); }
  Env& env() override { return base_.env(); }
  bool single_threaded() const override { return base_.single_threaded(); }
  void set_direct_dispatch(bool on) override { base_.set_direct_dispatch(on); }

  void set_receive_handler(ReceiveHandler handler) override {
    if (handler) {
      handler_ = std::move(handler);
      armed_.store(true, std::memory_order_release);
      return;
    }
    // Disarm, then wait out dispatches that already passed the armed check.
    armed_.store(false, std::memory_order_release);
    while (in_flight_.load(std::memory_order_acquire) != 0) {
    }
    handler_ = nullptr;
  }

  void send(NodeId dst, Bytes frame, uint64_t wire_size = 0) override {
    const uint64_t inner_wire = wire_size ? wire_size : frame.size();
    base_.send(dst, data::encode_shard_frame(shard_, frame),
               inner_wire + data::kShardEnvelopeBytes);
  }

  void send_shared(NodeId dst, std::shared_ptr<const Bytes> frame,
                   uint64_t wire_size = 0) override {
    // The envelope prepends bytes and the shared buffer is immutable, so a
    // tagged copy is unavoidable here (see the header's tradeoff note).
    const uint64_t inner_wire = wire_size ? wire_size : frame->size();
    base_.send(dst, data::encode_shard_frame(shard_, *frame),
               inner_wire + data::kShardEnvelopeBytes);
  }

  /// Mux-side dispatch of a demuxed inner frame. Returns false when the
  /// facet has no armed handler (the caller counts the drop).
  bool dispatch(NodeId src, BytesView inner, uint64_t wire_size) {
    if (!armed_.load(std::memory_order_acquire)) return false;
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    bool handled = false;
    if (armed_.load(std::memory_order_acquire)) {
      handler_(src, inner, wire_size);
      handled = true;
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return handled;
  }

 private:
  Transport& base_;
  const uint32_t shard_;
  ReceiveHandler handler_;
  std::atomic<bool> armed_{false};
  std::atomic<int> in_flight_{0};
};

ShardMux::ShardMux(Transport& base, uint32_t num_shards) : base_(base) {
  facets_.reserve(num_shards == 0 ? 1 : num_shards);
  for (uint32_t s = 0; s < (num_shards == 0 ? 1 : num_shards); ++s)
    facets_.push_back(std::make_unique<Facet>(base, s));
  base_.set_receive_handler(
      [this](NodeId src, BytesView frame, uint64_t wire_size) {
        on_base_frame(src, frame, wire_size);
      });
}

ShardMux::~ShardMux() { base_.set_receive_handler(nullptr); }

Transport& ShardMux::facet(uint32_t s) { return *facets_[s]; }

void ShardMux::on_base_frame(NodeId src, BytesView frame, uint64_t wire_size) {
  if (!data::is_shard_frame(frame)) {
    unroutable_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const data::ShardFrameView v = data::decode_shard_view(frame);
  const uint64_t inner_wire = wire_size > data::kShardEnvelopeBytes
                                  ? wire_size - data::kShardEnvelopeBytes
                                  : v.inner.size();
  if (v.shard < facets_.size() &&
      facets_[v.shard]->dispatch(src, v.inner, inner_wire)) {
    frames_demuxed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    unroutable_drops_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace stab::shard
