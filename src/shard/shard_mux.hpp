// Shard demultiplexer over one transport link (DESIGN.md §9).
//
// A sharded node runs one Stabilizer instance per shard. When the
// deployment gives every shard its own Transport (one port / one simulated
// network per shard — the scale-out configuration), frames arrive
// pre-separated and no mux is needed. When N shards must share a single
// link, a ShardMux splits that link into N facet Transports:
//
//   * a facet's send() wraps every outgoing frame in the SHARD envelope
//     (data/wire.hpp: u8 0x50 | u16 shard | inner), and
//   * the mux owns the base transport's receive handler, decodes the tag,
//     and dispatches the inner frame to exactly that shard's facet handler —
//     so one shard's delivery path never touches another shard's locks, and
//     per-shard FIFO order is inherited from the base link's FIFO order.
//
// Teardown gate: a facet handler can be disarmed (set_receive_handler
// nullptr, e.g. a per-shard Stabilizer destructing) while the base
// transport's receive thread is mid-dispatch to a *different* shard. Each
// facet therefore guards its handler with an armed flag + in-flight counter
// (the same discipline InProcTransport uses for its base handler): disarm
// flips the flag, then spins until in-flight dispatches drain.
//
// Tradeoff note: send_shared() on a facet must materialize a tagged copy of
// the shared frame (the envelope prepends bytes, and the shared buffer is
// immutable by contract), giving up the encode-once fan-out within a muxed
// link. Deployments that care about data-path throughput give each shard
// its own transport and skip the mux entirely — the mux trades one copy for
// port/link economy, not the other way around.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.hpp"

namespace stab::shard {

class ShardMux {
 public:
  /// Claims `base`'s receive handler slot. `base` must outlive the mux.
  ShardMux(Transport& base, uint32_t num_shards);
  ~ShardMux();

  ShardMux(const ShardMux&) = delete;
  ShardMux& operator=(const ShardMux&) = delete;

  uint32_t num_shards() const { return static_cast<uint32_t>(facets_.size()); }

  /// Shard `s`'s facet. Valid for the mux's lifetime; one Stabilizer (or
  /// FailoverManager-wrapped Stabilizer) attaches per facet.
  Transport& facet(uint32_t s);

  /// Frames routed to a facet since construction.
  uint64_t frames_demuxed() const {
    return frames_demuxed_.load(std::memory_order_relaxed);
  }
  /// Frames dropped: untagged (no SHARD envelope), tagged for a shard id
  /// >= num_shards, or tagged for a facet with no armed handler. A healthy
  /// muxed cluster (every link muxed with the same shard count, every facet
  /// attached before traffic) keeps this at 0.
  uint64_t unroutable_drops() const {
    return unroutable_drops_.load(std::memory_order_relaxed);
  }

 private:
  class Facet;
  void on_base_frame(NodeId src, BytesView frame, uint64_t wire_size);

  Transport& base_;
  std::vector<std::unique_ptr<Facet>> facets_;
  std::atomic<uint64_t> frames_demuxed_{0};
  std::atomic<uint64_t> unroutable_drops_{0};
};

}  // namespace stab::shard
