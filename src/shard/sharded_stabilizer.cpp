#include "shard/sharded_stabilizer.hpp"

#include <condition_variable>
#include <mutex>
#include <stdexcept>

namespace stab::shard {

ShardedStabilizer::ShardedStabilizer(ShardedOptions options,
                                     const std::vector<Transport*>& transports)
    : options_(std::move(options)),
      router_(options_.num_shards, options_.routing) {
  if (transports.size() != router_.num_shards())
    throw std::invalid_argument(
        "ShardedStabilizer: scale-out construction needs exactly one "
        "transport per shard");
  build_shards(transports);
}

ShardedStabilizer::ShardedStabilizer(ShardedOptions options, Transport& link)
    : options_(std::move(options)),
      router_(options_.num_shards, options_.routing),
      mux_(std::make_unique<ShardMux>(link, options_.num_shards)) {
  std::vector<Transport*> facets;
  facets.reserve(mux_->num_shards());
  for (uint32_t s = 0; s < mux_->num_shards(); ++s)
    facets.push_back(&mux_->facet(s));
  build_shards(facets);
}

// Shards tear down before the mux so every facet handler disarms while the
// base link is still alive (the mux destructor then releases the link).
ShardedStabilizer::~ShardedStabilizer() {
  shards_.clear();
  mux_.reset();
}

void ShardedStabilizer::build_shards(const std::vector<Transport*>& transports) {
#if STAB_OBS_ENABLED
  if (!options_.shard_tracers.empty() &&
      options_.shard_tracers.size() != transports.size())
    throw std::invalid_argument(
        "ShardedStabilizer: shard_tracers must be empty or one per shard");
#endif
  shards_.reserve(transports.size());
  for (uint32_t s = 0; s < transports.size(); ++s) {
    StabilizerOptions o = options_.base;
    o.shard_label = static_cast<int>(s);
#if STAB_OBS_ENABLED
    if (!options_.shard_tracers.empty()) {
      o.tracer = options_.shard_tracers[s];
      if (o.tracer) o.tracer->set_shard(static_cast<int32_t>(s));
    }
#endif
    shards_.push_back(std::make_unique<Stabilizer>(std::move(o), *transports[s]));
  }
}

void ShardedStabilizer::set_delivery_handler(DeliveryHandler handler) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (!handler) {
      shards_[s]->set_delivery_handler(nullptr);
      continue;
    }
    auto h = handler;  // each shard owns its copy
    shards_[s]->set_delivery_handler(
        [h = std::move(h), s](NodeId origin, SeqNum seq, BytesView payload,
                              uint64_t wire_size) {
          h(s, origin, seq, payload, wire_size);
        });
  }
}

Status ShardedStabilizer::register_predicate(const std::string& key,
                                             const std::string& source) {
  if (key.find('@') != std::string::npos)
    return Status::error("predicate key '" + key +
                         "' may not contain '@' (the shard-suffix separator)");
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Status rc = shards_[s]->register_predicate(key, source);
    if (!rc.is_ok()) {
      for (uint32_t r = 0; r < s; ++r) shards_[r]->remove_predicate(key);
      return rc;
    }
  }
  return Status::ok();
}

Status ShardedStabilizer::change_predicate(const std::string& key,
                                           const std::string& source) {
  for (auto& sh : shards_) {
    Status rc = sh->change_predicate(key, source);
    if (!rc.is_ok()) return rc;  // no rollback: change is not atomic anyway
  }
  return Status::ok();
}

Status ShardedStabilizer::remove_predicate(const std::string& key) {
  Status first = Status::ok();
  for (auto& sh : shards_) {
    Status rc = sh->remove_predicate(key);
    if (!rc.is_ok() && first.is_ok()) first = rc;
  }
  return first;
}

bool ShardedStabilizer::has_predicate(const std::string& key) const {
  return shards_[0]->has_predicate(key);
}

control::CompositeFrontier ShardedStabilizer::composite(NodeId origin) const {
  std::vector<const FrontierBoard*> boards;
  boards.reserve(shards_.size());
  for (const auto& sh : shards_) boards.push_back(&sh->engine(origin).board());
  return control::CompositeFrontier(std::move(boards));
}

SeqNum ShardedStabilizer::get_stability_frontier(const std::string& ref,
                                                 NodeId origin) const {
  auto parsed = dsl::parse_shard_ref(ref);
  if (!parsed) return kNoSeq;
  if (parsed->scope == dsl::ShardKeyRef::Scope::kOne) {
    if (parsed->shard >= shards_.size()) return kNoSeq;
    return shards_[parsed->shard]->get_stability_frontier(
        std::string(parsed->base), origin);
  }
  return composite(origin).combined(parsed->base);
}

control::ShardCut ShardedStabilizer::frontier_vector(const std::string& key,
                                                     NodeId origin) const {
  return composite(origin).snapshot(key);
}

control::ShardCut ShardedStabilizer::cut() const {
  control::ShardCut c;
  c.reserve(shards_.size());
  for (const auto& sh : shards_) c.push_back(sh->last_sent());
  return c;
}

namespace {

/// Shared resolution state of one composite wait. Waiters of every member
/// shard hold a reference; whoever resolves the cut fires the callback
/// (outside the state lock — the callback may re-enter that shard's API).
struct CutState {
  std::mutex m;
  size_t remaining = 0;
  bool resolved = false;
  ShardedStabilizer::CutWaiterFn fn;
};

}  // namespace

Status ShardedStabilizer::waitfor_cut(const control::ShardCut& cut,
                                      const std::string& key, CutWaiterFn fn,
                                      NodeId origin) {
  // Members: shards with a real requirement. Sentinel entries (kNoSeq = no
  // requirement, kFencedSeq = a fenced send() result) are skipped; entries
  // beyond num_shards are ignored.
  size_t members = 0;
  for (size_t s = 0; s < cut.size() && s < shards_.size(); ++s)
    if (cut[s] >= 0) ++members;
  if (members == 0) {
    fn(WaitStatus::kOk);
    return Status::ok();
  }

  auto st = std::make_shared<CutState>();
  st->remaining = members;
  st->fn = std::move(fn);

  for (size_t s = 0; s < cut.size() && s < shards_.size(); ++s) {
    if (cut[s] < 0) continue;
    Status rc = shards_[s]->waitfor(
        cut[s], key,
        [st](SeqNum frontier) {
          WaitStatus out;
          {
            std::lock_guard<std::mutex> lock(st->m);
            if (st->resolved) return;
            if (frontier == kFencedSeq) {
              out = WaitStatus::kFenced;
            } else if (frontier == kNoSeq) {
              out = WaitStatus::kNoSeq;
            } else if (--st->remaining == 0) {
              out = WaitStatus::kOk;
            } else {
              return;  // covered, but other shards still pending
            }
            st->resolved = true;
          }
          st->fn(out);
        },
        origin);
    if (!rc.is_ok()) {
      // Silence waiters already parked on earlier shards; the caller gets
      // the error instead of a callback.
      std::lock_guard<std::mutex> lock(st->m);
      st->resolved = true;
      return rc;
    }
  }
  return Status::ok();
}

ShardedStabilizer::WaitStatus ShardedStabilizer::waitfor_cut_blocking(
    const control::ShardCut& cut, const std::string& key, Duration timeout,
    NodeId origin) {
  struct Block {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    WaitStatus status = WaitStatus::kTimeout;
  };
  auto b = std::make_shared<Block>();
  Status rc = waitfor_cut(
      cut, key,
      [b](WaitStatus s) {
        {
          std::lock_guard<std::mutex> lock(b->m);
          b->status = s;
          b->done = true;
        }
        b->cv.notify_all();
      },
      origin);
  if (!rc.is_ok()) return WaitStatus::kNoSeq;
  std::unique_lock<std::mutex> lock(b->m);
  if (!b->cv.wait_for(lock, timeout, [&] { return b->done; }))
    return WaitStatus::kTimeout;
  return b->status;
}

ShardedStabilizer::WaitStatus ShardedStabilizer::waitfor_blocking(
    SeqNum seq, const std::string& ref, Duration timeout, NodeId origin) {
  auto parsed = dsl::parse_shard_ref(ref);
  if (!parsed) return WaitStatus::kNoSeq;
  if (parsed->scope == dsl::ShardKeyRef::Scope::kOne) {
    if (parsed->shard >= shards_.size()) return WaitStatus::kNoSeq;
    return shards_[parsed->shard]->waitfor_blocking_status(
        seq, std::string(parsed->base), timeout, origin);
  }
  control::ShardCut all(shards_.size(), seq);
  return waitfor_cut_blocking(all, std::string(parsed->base), timeout, origin);
}

StabilizerStats ShardedStabilizer::stats() const {
  StabilizerStats total;
  for (const auto& sh : shards_) {
    const StabilizerStats s = sh->stats();
    total.messages_sent += s.messages_sent;
    total.frames_transmitted += s.frames_transmitted;
    total.messages_delivered += s.messages_delivered;
    total.ack_batches_sent += s.ack_batches_sent;
    total.ack_entries_applied += s.ack_entries_applied;
    total.duplicates_dropped += s.duplicates_dropped;
    total.gaps_detected += s.gaps_detected;
    total.retransmits_sent += s.retransmits_sent;
    total.peer_stall_episodes += s.peer_stall_episodes;
    total.peer_recover_episodes += s.peer_recover_episodes;
    total.resumes_sent += s.resumes_sent;
    total.resumes_received += s.resumes_received;
    total.predicate_evals += s.predicate_evals;
    total.evals_skipped_index += s.evals_skipped_index;
    total.evals_skipped_binding += s.evals_skipped_binding;
    total.data_encodes += s.data_encodes;
    total.shared_sends += s.shared_sends;
    total.frames_coalesced += s.frames_coalesced;
    total.fanout_bytes_copied += s.fanout_bytes_copied;
    total.fenced_frames += s.fenced_frames;
    total.epoch_ahead_drops += s.epoch_ahead_drops;
    total.takeovers_observed += s.takeovers_observed;
    total.failover_seqs_skipped += s.failover_seqs_skipped;
    total.failover_seqs_rolled_back += s.failover_seqs_rolled_back;
    total.waiters_fenced += s.waiters_fenced;
  }
  return total;
}

}  // namespace stab::shard
