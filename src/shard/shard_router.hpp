// Keyspace partitioning for the sharded facade (DESIGN.md §9).
//
// A ShardRouter maps a routing key (a KV key, a pub/sub topic, any
// application byte string) onto one of N shards. Both parties of a stream —
// the sending facade and every mirror's demux — route with the same
// (mode, num_shards) configuration, so a key's shard is a pure function of
// the key and the placement never has to be communicated.
//
//   kHash  — FNV-1a over the key bytes, mod N. The default: spreads any key
//            population uniformly, no tuning.
//   kRange — the key's first 8 bytes as a big-endian integer, scaled onto
//            [0, N). Preserves key order across shards (lexicographically
//            adjacent keys land in the same or adjacent shards), for
//            workloads that scan ranges and want locality over uniformity.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace stab::shard {

class ShardRouter {
 public:
  enum class Mode : uint8_t { kHash, kRange };

  explicit ShardRouter(uint32_t num_shards, Mode mode = Mode::kHash)
      : num_shards_(num_shards == 0 ? 1 : num_shards), mode_(mode) {}

  uint32_t num_shards() const { return num_shards_; }
  Mode mode() const { return mode_; }

  uint32_t shard_of(BytesView key) const {
    if (num_shards_ == 1) return 0;
    return mode_ == Mode::kHash ? hash_shard(key) : range_shard(key);
  }
  uint32_t shard_of(std::string_view key) const {
    return shard_of(BytesView(reinterpret_cast<const uint8_t*>(key.data()),
                              key.size()));
  }

 private:
  uint32_t hash_shard(BytesView key) const {
    // FNV-1a, 64-bit — same family as the chaos digests; cheap and uniform.
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : key) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return static_cast<uint32_t>(h % num_shards_);
  }

  uint32_t range_shard(BytesView key) const {
    // Big-endian prefix -> the integer order matches lexicographic key
    // order, so contiguous key ranges map to contiguous shard ranges.
    uint64_t prefix = 0;
    for (size_t i = 0; i < 8; ++i) {
      prefix <<= 8;
      if (i < key.size()) prefix |= key[i];
    }
    // Scale via the high 32 bits to avoid u64 overflow in prefix * N.
    return static_cast<uint32_t>((prefix >> 32) * num_shards_ >> 32);
  }

  uint32_t num_shards_;
  Mode mode_;
};

}  // namespace stab::shard
