// Sharded multi-primary facade (DESIGN.md §9).
//
// One ShardedStabilizer per WAN node scales the single-sequencer core out
// across N keyspace shards. Each shard is a full Stabilizer instance — its
// own primary-site Sequencer, send ring (OutBuffer), AckTable + pipelined
// FrontierEngines, and its own primary epoch — so:
//
//   * N independent sequence spaces issue in parallel (the send path of
//     shard s contends only on shard s's lock),
//   * failover (src/failover) promotes per shard: losing one shard's
//     primary fences exactly that shard's waiters while the other shards'
//     frontiers keep advancing,
//   * mirrors demultiplex arriving frames into per-shard delivery FIFOs
//     (pre-separated per-shard transports, or a ShardMux over one link)
//     without touching other shards' locks.
//
// Keys route to shards with a ShardRouter (a pure function of the key, so
// senders and mirrors agree without coordination). A message's identity
// becomes the pair (shard, seq) — ShardSeq — and a *cross-shard cut* is a
// vector of seqs, one per shard (control/composite_frontier.hpp).
//
// Cross-shard predicates: register_predicate fans out to every shard, so
// each shard's engines evaluate the same program over their own streams.
// Reads and waits then scope with the DSL's sharded stability suffix
// (dsl/shard_ref.hpp): "k@3" reads shard 3's frontier, plain "k" (or
// "k@all") min-combines the per-shard frontier vector — wait-free
// FrontierBoard reads, never exceeding any member shard, monotone under
// concurrent per-shard advances. waitfor_cut() is the composite waitfor: it
// parks one waiter per involved shard and resolves once when every shard's
// frontier covers its cut entry (or once with kNoSeq/kFenced as soon as any
// member shard fails its waiter).
//
// Threading: each method delegates to per-shard Stabilizers and inherits
// their locking; methods touching a single shard contend only on that
// shard. waitfor_cut callbacks run on whichever shard's Env thread resolved
// the cut, under that shard's API lock — re-entering *that* shard is
// supported (the core's re-entrancy contract); calling into other shards'
// blocking APIs from the callback is not.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "control/composite_frontier.hpp"
#include "core/stabilizer.hpp"
#include "dsl/shard_ref.hpp"
#include "shard/shard_mux.hpp"
#include "shard/shard_router.hpp"

namespace stab::shard {

using ShardId = uint32_t;

/// A message's identity in a sharded deployment: shard + seq within that
/// shard's sequence space. seq is kFencedSeq when the shard's local
/// instance has been deposed as that shard's primary.
struct ShardSeq {
  ShardId shard = 0;
  SeqNum seq = kNoSeq;
};

struct ShardedOptions {
  /// Per-shard template: topology/self/tuning are copied into every shard
  /// instance. The facade overrides shard_label per shard (obs attribution).
  StabilizerOptions base;
  uint32_t num_shards = 1;
  ShardRouter::Mode routing = ShardRouter::Mode::kHash;
#if STAB_OBS_ENABLED
  /// Optional per-shard tracers (size must be num_shards when non-empty):
  /// each shard's instance records through its own tracer, stamped with the
  /// shard id so merged timelines attribute per shard. When empty, every
  /// shard shares base.tracer (if any) un-stamped.
  std::vector<std::shared_ptr<obs::Tracer>> shard_tracers;
#endif
};

class ShardedStabilizer {
 public:
  using WaitStatus = Stabilizer::WaitStatus;
  /// Delivery upcall with the shard dimension made explicit. Within one
  /// shard the (origin, seq) order is the core's FIFO delivery order;
  /// across shards there is no order — that is the point of sharding.
  using DeliveryHandler =
      std::function<void(ShardId shard, NodeId origin, SeqNum seq,
                         BytesView payload, uint64_t wire_size)>;
  /// Composite waiter: fired exactly once with the cut's outcome.
  using CutWaiterFn = std::function<void(WaitStatus)>;

  /// Scale-out configuration: one Transport per shard (all for the same
  /// node id / cluster). Shard s's traffic — data, acks, failover protocol —
  /// travels on transports[s], pre-separated, so no mux and no envelope.
  ShardedStabilizer(ShardedOptions options,
                    const std::vector<Transport*>& transports);

  /// Muxed configuration: every shard shares `link` through a ShardMux
  /// (frames travel SHARD-enveloped; see shard_mux.hpp for the tradeoff).
  ShardedStabilizer(ShardedOptions options, Transport& link);

  ~ShardedStabilizer();

  ShardedStabilizer(const ShardedStabilizer&) = delete;
  ShardedStabilizer& operator=(const ShardedStabilizer&) = delete;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  NodeId self() const { return shards_[0]->self(); }
  const ShardRouter& router() const { return router_; }
  ShardId shard_of(std::string_view key) const { return router_.shard_of(key); }
  ShardId shard_of(BytesView key) const { return router_.shard_of(key); }

  /// Shard s's full core instance — per-shard APIs (failover adoption,
  /// report_stability, snapshots, raw frames) are used directly on it.
  Stabilizer& shard(ShardId s) { return *shards_[s]; }
  const Stabilizer& shard(ShardId s) const { return *shards_[s]; }
  /// The mux, when built over a single link (null in scale-out mode).
  ShardMux* mux() { return mux_.get(); }

  // --- data plane -------------------------------------------------------------
  /// Route by key, then sequence and stream on that shard's stream.
  ShardSeq send(std::string_view routing_key, BytesView payload,
                uint64_t virtual_size = 0) {
    return send_to_shard(router_.shard_of(routing_key), payload, virtual_size);
  }
  /// Explicit placement (callers that already routed, e.g. a per-topic
  /// broker pinned to its topic's shard).
  ShardSeq send_to_shard(ShardId s, BytesView payload,
                         uint64_t virtual_size = 0) {
    return {s, shards_[s]->send(payload, virtual_size)};
  }

  void set_delivery_handler(DeliveryHandler handler);

  // --- control plane ----------------------------------------------------------
  /// Fan out to every shard (all-or-error: on a failing shard the key is
  /// rolled back from shards already registered). Keys must not contain '@'
  /// — that is the shard-suffix separator in references.
  Status register_predicate(const std::string& key, const std::string& source);
  Status change_predicate(const std::string& key, const std::string& source);
  Status remove_predicate(const std::string& key);
  bool has_predicate(const std::string& key) const;

  /// Frontier of a suffixed reference (dsl/shard_ref.hpp): "k@<n>" = shard
  /// n's frontier, "k" / "k@all" = min-combine across every shard (wait-free
  /// board reads). kNoSeq on a malformed reference.
  SeqNum get_stability_frontier(const std::string& ref,
                                NodeId origin = kInvalidNode) const;

  /// The per-shard frontier vector of `key` for `origin`'s streams — entry
  /// s is shard s's frontier, each a wait-free published snapshot.
  control::ShardCut frontier_vector(const std::string& key,
                                    NodeId origin = kInvalidNode) const;

  /// A cut of this node's own streams: entry s = shard s's last issued seq
  /// (kNoSeq where nothing was sent). waitfor_cut on this = "everything I
  /// sent so far, on every shard, reached `key`-stability".
  control::ShardCut cut() const;

  /// Composite cross-shard waitfor: fires `fn` once with kOk when every
  /// shard s with cut[s] != kNoSeq reaches frontier(key) >= cut[s] on
  /// `origin`'s stream; with kNoSeq/kFenced as soon as any member shard
  /// fails its waiter (predicate removed / shard primary deposed). An empty
  /// cut resolves kOk immediately.
  Status waitfor_cut(const control::ShardCut& cut, const std::string& key,
                     CutWaiterFn fn, NodeId origin = kInvalidNode);

  /// Blocking composite waitfor. Must not be called from any shard's Env
  /// thread. kTimeout when the deadline expires with the cut unresolved.
  WaitStatus waitfor_cut_blocking(const control::ShardCut& cut,
                                  const std::string& key, Duration timeout,
                                  NodeId origin = kInvalidNode);

  /// Single-point blocking wait on a suffixed reference: "k@<n>" waits on
  /// shard n (seq in shard n's space); "k" / "k@all" waits for *every*
  /// shard's frontier to cover seq (the min-combined frontier).
  WaitStatus waitfor_blocking(SeqNum seq, const std::string& ref,
                              Duration timeout, NodeId origin = kInvalidNode);

  // --- introspection ----------------------------------------------------------
  /// Counters summed across every shard instance.
  StabilizerStats stats() const;

 private:
  void build_shards(const std::vector<Transport*>& transports);
  control::CompositeFrontier composite(NodeId origin) const;

  ShardedOptions options_;
  ShardRouter router_;
  std::unique_ptr<ShardMux> mux_;  // muxed configuration only
  std::vector<std::unique_ptr<Stabilizer>> shards_;
};

}  // namespace stab::shard
